// Shared setup for the figure-reproduction benches: scaled TPC-R data,
// the paper's query shapes, and table-style output helpers.
//
// All benches print deterministic byte/tuple counts (exact, from real
// serialization) alongside wall-clock-derived timings (compute measured,
// communication modeled by the simulated network).

#ifndef SKALLA_BENCH_BENCH_COMMON_H_
#define SKALLA_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "data/tpcr_gen.h"
#include "dist/warehouse.h"
#include "expr/builder.h"
#include "obs/obs.h"
#include "obs/session.h"
#include "opt/options.h"
#include "serve/session.h"
#include "storage/partition.h"

namespace skalla {
namespace bench {

// --- Observability harness -------------------------------------------------

// The --trace-out= / --metrics-out= command-line plumbing now lives in
// obs/session.h so the RPC tools share it; the benches keep the old name.
using ObsSession = obs::ObsSession;

// Columns the optimizer is given distribution knowledge about.
inline std::vector<std::string> TrackedColumns() {
  return {"NationKey", "CustKey", "CustName", "Clerk",
          "Quantity", "ExtendedPrice"};
}

// Generates TPCR and splits it 8 ways on NationKey (the paper's layout;
// CustKey and CustName become partition attributes too).
inline std::vector<Table> MakeTpcrPartitions(int64_t total_rows,
                                             int64_t num_customers,
                                             size_t num_partitions = 8,
                                             uint64_t seed = 42) {
  TpcrConfig config;
  config.seed = seed;
  config.num_rows = total_rows;
  config.num_customers = num_customers;
  Table tpcr = GenerateTpcr(config);
  return PartitionByModulo(tpcr, "NationKey", num_partitions).ValueOrDie();
}

// Builds a warehouse over the first `n` of the given partitions — the
// paper's speed-up methodology (fix the 8-way partitioned data set, vary
// the number of participating sites).
inline DistributedWarehouse MakeWarehouse(
    const std::vector<Table>& partitions, size_t n,
    NetworkConfig net = {}, ExecutorOptions exec_options = {}) {
  DistributedWarehouse dw(n, net, exec_options);
  std::vector<Table> subset(partitions.begin(),
                            partitions.begin() + static_cast<int64_t>(n));
  dw.AddPartitionedTable("tpcr", std::move(subset), TrackedColumns())
      .Check();
  return dw;
}

inline ExprPtr GroupEq(const std::string& column) {
  return Eq(RCol(column), BCol(column));
}

// --- The serving path ------------------------------------------------------

// Runs `query` against `dw` through a one-off QuerySession — the public
// submit/future path every tool uses, so the benches measure the same
// code users run. A fresh session per call means an empty sub-aggregate
// cache: timings measure evaluation, never a cache hit.
inline Table Execute(const DistributedWarehouse& dw, const GmdjExpr& query,
                     const OptimizerOptions& opt,
                     ExecStats* stats = nullptr) {
  serve::SessionOptions session_options;
  session_options.exec = dw.exec_options();
  session_options.net = dw.net_config();
  session_options.optimize = opt;
  session_options.scheduler.max_concurrent_queries = 1;
  auto session = serve::QuerySession::Open(&dw, session_options).ValueOrDie();
  serve::QueryResult answer =
      session.Submit(query).ValueOrDie().result.get().ValueOrDie();
  if (stats != nullptr) *stats = std::move(answer.stats);
  return std::move(answer.table);
}

// Same, for an already-built plan on a caller-built engine (async,
// tree, ...): wraps the engine in a session and submits through it.
inline Table ExecutePlan(std::unique_ptr<Executor> executor,
                         const DistributedPlan& plan,
                         ExecStats* stats = nullptr) {
  serve::SessionOptions session_options;
  session_options.scheduler.max_concurrent_queries = 1;
  serve::QuerySession session =
      serve::QuerySession::Wrap(std::move(executor), session_options);
  serve::QueryResult answer =
      session.SubmitPlan(plan).result.get().ValueOrDie();
  if (stats != nullptr) *stats = std::move(answer.stats);
  return std::move(answer.table);
}

// --- The paper's query shapes -------------------------------------------

// "Group reduction query" (Fig. 2) and "synchronization reduction query"
// (Fig. 4): two chained GMDJs; the second references the first's
// aggregates (so it can NOT be coalesced). COUNT and AVG per operator,
// as in Sect. 5.1.
inline GmdjExpr CorrelatedQuery(const std::string& group_col) {
  GmdjExpr expr;
  expr.base = BaseQuery{"tpcr", {group_col}, true, nullptr};
  GmdjOp md1;
  md1.detail_table = "tpcr";
  md1.blocks.push_back(GmdjBlock{
      {{AggKind::kCountStar, "", "cnt1"}, {AggKind::kAvg, "Quantity", "avg1"}},
      GroupEq(group_col)});
  GmdjOp md2;
  md2.detail_table = "tpcr";
  md2.blocks.push_back(GmdjBlock{
      {{AggKind::kCountStar, "", "cnt2"},
       {AggKind::kAvg, "ExtendedPrice", "avg2"}},
      And(GroupEq(group_col), Ge(RCol("Quantity"), BCol("avg1")))});
  expr.ops = {md1, md2};
  return expr;
}

// "Coalescing query" (Fig. 3): two GMDJs whose conditions are mutually
// independent, so they coalesce into a single operator.
inline GmdjExpr CoalescingQuery(const std::string& group_col) {
  GmdjExpr expr;
  expr.base = BaseQuery{"tpcr", {group_col}, true, nullptr};
  GmdjOp md1;
  md1.detail_table = "tpcr";
  md1.blocks.push_back(GmdjBlock{
      {{AggKind::kCountStar, "", "cnt1"}, {AggKind::kAvg, "Quantity", "avg1"}},
      GroupEq(group_col)});
  GmdjOp md2;
  md2.detail_table = "tpcr";
  md2.blocks.push_back(GmdjBlock{
      {{AggKind::kCountStar, "", "cnt2"},
       {AggKind::kAvg, "ExtendedPrice", "avg2"}},
      And(GroupEq(group_col), Ge(RCol("Quantity"), Lit(Value(25))))});
  expr.ops = {md1, md2};
  return expr;
}

// "Combined reductions query" (Fig. 5): three GMDJs — a correlated pair
// plus a third coalescable operator, so coalescing, both group reductions
// and synchronization reduction all contribute.
inline GmdjExpr CombinedQuery(const std::string& group_col) {
  GmdjExpr expr = CorrelatedQuery(group_col);
  GmdjOp md3;
  md3.detail_table = "tpcr";
  md3.blocks.push_back(GmdjBlock{
      {{AggKind::kCountStar, "", "cnt3"}},
      And(GroupEq(group_col), Le(RCol("Discount"), Lit(Value(0.05))))});
  expr.ops.push_back(md3);
  return expr;
}

// --- Output helpers -------------------------------------------------------

inline void PrintRule() {
  std::printf(
      "------------------------------------------------------------------"
      "----------\n");
}

inline void PrintSeriesHeader(const char* key = "sites") {
  std::printf("%5s  %-22s %12s %14s %12s %8s\n", key, "variant",
              "time_ms", "bytes", "tuples", "rounds");
  PrintRule();
}

inline void PrintSeriesRow(size_t sites, const std::string& variant,
                           const ExecStats& stats) {
  std::printf("%5zu  %-22s %12.2f %14llu %12llu %8zu\n", sites,
              variant.c_str(), stats.ResponseTime() * 1e3,
              static_cast<unsigned long long>(stats.TotalBytes()),
              static_cast<unsigned long long>(stats.TotalTuplesTransferred()),
              stats.NumSyncRounds());
}

}  // namespace bench
}  // namespace skalla

#endif  // SKALLA_BENCH_BENCH_COMMON_H_
