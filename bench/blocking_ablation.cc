// Ablation: row blocking (classical distributed-query optimization the
// paper cites as carrying over to GMDJ processing). Fragments ship in
// row blocks, each its own message, merged incrementally at the
// coordinator. The sweep quantifies the trade-off in this simulator's
// serialized-link model: per-block headers and per-message latency grow
// as blocks shrink, while the tuples moved stay constant and peak
// coordinator buffering drops.

#include <cstdio>

#include "bench_common.h"

namespace skalla {
namespace {

void Run() {
  const int64_t kRows = 48000;
  const int64_t kCustomers = 6000;
  const size_t kSites = 8;
  std::vector<Table> partitions =
      bench::MakeTpcrPartitions(kRows, kCustomers, kSites);
  GmdjExpr query = bench::CorrelatedQuery("CustKey");

  std::printf("=== Row-blocking ablation (block size sweep) ===\n");
  std::printf("%12s %14s %12s %12s\n", "block_rows", "bytes", "tuples",
              "time_ms");
  for (size_t block : {size_t{0}, size_t{4096}, size_t{1024}, size_t{256},
                       size_t{64}}) {
    ExecutorOptions exec_options;
    exec_options.ship_block_rows = block;
    DistributedWarehouse dw(kSites, NetworkConfig{}, exec_options);
    std::vector<Table> subset = partitions;
    dw.AddPartitionedTable("tpcr", std::move(subset),
                           bench::TrackedColumns())
        .Check();
    ExecStats stats;
    bench::Execute(dw, query, OptimizerOptions::None(), &stats);
    std::printf("%12s %14llu %12llu %12.2f\n",
                block == 0 ? "unblocked" : StrCat(block).c_str(),
                static_cast<unsigned long long>(stats.TotalBytes()),
                static_cast<unsigned long long>(
                    stats.TotalTuplesTransferred()),
                stats.ResponseTime() * 1e3);
  }
}

}  // namespace
}  // namespace skalla

int main(int argc, char** argv) {
  skalla::bench::ObsSession obs(argc, argv);
  skalla::Run();
  return 0;
}
