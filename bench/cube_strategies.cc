// Ablation: distributed data-cube strategies. Direct evaluation runs one
// distributed GMDJ query per cuboid (2^k round-trips); the roll-up
// strategy (Agarwal et al. [1], cited by the paper) ships only the
// finest cuboid and derives the rest locally. Both produce identical
// cubes; the traffic and round counts diverge exponentially in k.

#include <cstdio>

#include "bench_common.h"
#include "olap/cube.h"

namespace skalla {
namespace {

void Run() {
  const int64_t kRows = 48000;
  const int64_t kCustomers = 6000;
  const size_t kSites = 8;
  std::vector<Table> partitions =
      bench::MakeTpcrPartitions(kRows, kCustomers, kSites);
  DistributedWarehouse dw(kSites);
  {
    std::vector<Table> copy = partitions;
    dw.AddPartitionedTable("tpcr", std::move(copy),
                           {"NationKey", "RegionKey", "MktSegment",
                            "OrderPriority", "Quantity"})
        .Check();
  }

  std::printf("=== Data-cube strategies: per-cuboid queries vs roll-up "
              "===\n");
  std::printf("%5s %10s %12s %14s %12s %14s\n", "dims", "cuboids",
              "direct_ms", "direct_bytes", "rollup_ms", "rollup_bytes");

  const std::vector<std::string> all_dims = {"RegionKey", "MktSegment",
                                             "OrderPriority", "NationKey"};
  for (size_t k = 2; k <= all_dims.size(); ++k) {
    CubeSpec spec;
    spec.detail_table = "tpcr";
    spec.dims.assign(all_dims.begin(),
                     all_dims.begin() + static_cast<int64_t>(k));
    spec.aggs = {{AggKind::kCountStar, "", "n"},
                 {AggKind::kAvg, "Quantity", "avg_qty"}};

    ExecStats direct_stats;
    Table direct = ComputeCubeDistributed(dw, spec, OptimizerOptions::All(),
                                          &direct_stats)
                       .ValueOrDie();
    ExecStats rollup_stats;
    Table rollup = ComputeCubeByRollup(dw, spec, OptimizerOptions::All(),
                                       &rollup_stats)
                       .ValueOrDie();
    if (!direct.SameRows(rollup)) {
      std::printf("MISMATCH at k=%zu!\n", k);
      return;
    }
    std::printf("%5zu %10u %12.2f %14llu %12.2f %14llu\n", k, 1u << k,
                direct_stats.ResponseTime() * 1e3,
                static_cast<unsigned long long>(direct_stats.TotalBytes()),
                rollup_stats.ResponseTime() * 1e3,
                static_cast<unsigned long long>(rollup_stats.TotalBytes()));
  }
}

}  // namespace
}  // namespace skalla

int main(int argc, char** argv) {
  skalla::bench::ObsSession obs(argc, argv);
  skalla::Run();
  return 0;
}
