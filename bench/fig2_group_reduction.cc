// Figure 2 reproduction: the group reduction query (speed-up experiment).
//
// The TPCR relation is divided equally among eight sites (partitioned on
// NationKey); the number of participating sites varies 1..8. Grouping is
// on CustKey, which is a partition attribute, so without reduction the
// coordinator ships a linearly growing group set to a linearly growing
// number of sites — quadratic traffic and evaluation time. Site-side
// (distribution-independent) group reduction halves the inefficiency;
// coordinator-side (distribution-aware) reduction makes both linear.
//
// Also validates the paper's analytic transfer model: the ratio of groups
// transferred with site-side reduction versus without is
// (2c + 2n + 1) / (4n + 1), reported to match measurements within 5%.

#include <cmath>
#include <cstdio>

#include "bench_common.h"

namespace skalla {
namespace {

struct Variant {
  const char* name;
  OptimizerOptions opts;
};

void Run() {
  const int64_t kRows = 64000;
  const int64_t kCustomers = 8000;
  std::vector<Table> partitions =
      bench::MakeTpcrPartitions(kRows, kCustomers);

  GmdjExpr query = bench::CorrelatedQuery("CustKey");

  OptimizerOptions indep;
  indep.indep_group_reduction = true;
  OptimizerOptions both = indep;
  both.aware_group_reduction = true;

  const Variant variants[] = {
      {"no-reduction", OptimizerOptions::None()},
      {"site-GR (indep)", indep},
      {"site+coord-GR (aware)", both},
  };

  std::printf("=== Figure 2: group reduction query (speed-up, 1..8 sites) "
              "===\n");
  std::printf("TPCR: %lld rows, %lld customers, partitioned on NationKey; "
              "grouping on CustKey (partition attribute)\n\n",
              static_cast<long long>(kRows),
              static_cast<long long>(kCustomers));
  bench::PrintSeriesHeader();

  // For the model check, remember tuple counts per site count.
  std::vector<uint64_t> tuples_none(9, 0);
  std::vector<uint64_t> tuples_indep(9, 0);
  std::vector<uint64_t> groups_total(9, 0);
  std::vector<uint64_t> up_per_md_round_indep(9, 0);

  for (size_t n = 1; n <= 8; ++n) {
    DistributedWarehouse dw = bench::MakeWarehouse(partitions, n);
    for (const Variant& variant : variants) {
      ExecStats stats;
      Table result = bench::Execute(dw, query, variant.opts, &stats);
      bench::PrintSeriesRow(n, variant.name, stats);
      if (variant.opts.indep_group_reduction &&
          !variant.opts.aware_group_reduction) {
        tuples_indep[n] = stats.TotalTuplesTransferred();
        // Two GMDJ rounds follow the base round.
        up_per_md_round_indep[n] = (stats.rounds[1].tuples_to_coord +
                                    stats.rounds[2].tuples_to_coord) /
                                   2;
      } else if (!variant.opts.indep_group_reduction) {
        tuples_none[n] = stats.TotalTuplesTransferred();
        groups_total[n] = result.num_rows();
      }
    }
    bench::PrintRule();
  }

  std::printf("\nAnalytic model check (paper Sect. 5.2): groups transferred "
              "ratio = (2c+2n+1)/(4n+1)\n");
  std::printf("%5s %10s %10s %12s %12s %8s\n", "sites", "groups", "c",
              "measured", "model", "dev%");
  for (size_t n = 1; n <= 8; ++n) {
    double g = static_cast<double>(groups_total[n]);
    double c = static_cast<double>(up_per_md_round_indep[n]) / g;
    double measured = static_cast<double>(tuples_indep[n]) /
                      static_cast<double>(tuples_none[n]);
    double model = (2.0 * c + 2.0 * static_cast<double>(n) + 1.0) /
                   (4.0 * static_cast<double>(n) + 1.0);
    double dev = 100.0 * std::fabs(measured - model) / model;
    std::printf("%5zu %10.0f %10.3f %12.4f %12.4f %7.2f%%\n", n, g, c,
                measured, model, dev);
  }
}

}  // namespace
}  // namespace skalla

int main(int argc, char** argv) {
  skalla::bench::ObsSession obs(argc, argv);
  skalla::Run();
  return 0;
}
