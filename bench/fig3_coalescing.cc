// Figure 3 reproduction: the coalescing query (speed-up experiment).
//
// Two GMDJ operators whose conditions are mutually independent. The
// non-coalesced plan runs base + two synchronized rounds; with a
// partition-attribute grouping the coordinator traffic grows
// quadratically in the number of sites. The coalesced plan merges the
// operators and (the conditions being key equalities) runs in a single
// round — linear growth. Left: high-cardinality grouping (CustName,
// 100k unique values at paper scale); right: low-cardinality grouping
// (Clerk, 2000-4000 unique values), where coalescing still wins ~30% via
// reduced site computation.

#include <cstdio>

#include "bench_common.h"

namespace skalla {
namespace {

void RunSeries(const char* title, const std::vector<Table>& partitions,
               const std::string& group_col) {
  std::printf("--- %s (grouping on %s) ---\n", title, group_col.c_str());
  bench::PrintSeriesHeader();
  GmdjExpr query = bench::CoalescingQuery(group_col);

  OptimizerOptions coalesced;
  coalesced.coalescing = true;
  coalesced.sync_reduction = true;

  for (size_t n = 1; n <= 8; ++n) {
    DistributedWarehouse dw = bench::MakeWarehouse(partitions, n);
    ExecStats plain_stats;
    ExecStats coalesced_stats;
    bench::Execute(dw, query, OptimizerOptions::None(), &plain_stats);
    bench::Execute(dw, query, coalesced, &coalesced_stats);
    bench::PrintSeriesRow(n, "non-coalesced", plain_stats);
    bench::PrintSeriesRow(n, "coalesced", coalesced_stats);
  }
  std::printf("\n");
}

void Run() {
  const int64_t kRows = 64000;
  const int64_t kCustomers = 8000;
  std::vector<Table> partitions =
      bench::MakeTpcrPartitions(kRows, kCustomers);

  std::printf("=== Figure 3: coalescing query (speed-up, 1..8 sites) ===\n");
  std::printf("TPCR: %lld rows, %lld customers, 3000 clerks\n\n",
              static_cast<long long>(kRows),
              static_cast<long long>(kCustomers));

  RunSeries("high cardinality", partitions, "CustName");
  RunSeries("low cardinality", partitions, "Clerk");
}

}  // namespace
}  // namespace skalla

int main(int argc, char** argv) {
  skalla::bench::ObsSession obs(argc, argv);
  skalla::Run();
  return 0;
}
