// Figure 4 reproduction: the synchronization reduction query (speed-up
// experiment).
//
// Two chained GMDJs where the second references the first's aggregates —
// NOT coalescable. Without synchronization reduction the plan uses three
// synchronized rounds; with it, Prop. 2 removes the base synchronization
// and (for the partition-attribute grouping) Corollary 1 removes the
// inter-GMDJ synchronization, leaving a single round: evaluation time
// turns from quadratic to linear in the number of sites. For the
// low-cardinality grouping only Prop. 2 applies (Clerk is spread over all
// sites), so the win is smaller — matching the paper.

#include <cstdio>

#include "bench_common.h"

namespace skalla {
namespace {

void RunSeries(const char* title, const std::vector<Table>& partitions,
               const std::string& group_col) {
  std::printf("--- %s (grouping on %s) ---\n", title, group_col.c_str());
  bench::PrintSeriesHeader();
  GmdjExpr query = bench::CorrelatedQuery(group_col);

  OptimizerOptions sync;
  sync.sync_reduction = true;

  for (size_t n = 1; n <= 8; ++n) {
    DistributedWarehouse dw = bench::MakeWarehouse(partitions, n);
    ExecStats plain_stats;
    ExecStats sync_stats;
    bench::Execute(dw, query, OptimizerOptions::None(), &plain_stats);
    bench::Execute(dw, query, sync, &sync_stats);
    bench::PrintSeriesRow(n, "no-sync-reduction", plain_stats);
    bench::PrintSeriesRow(n, "sync-reduction", sync_stats);
  }
  std::printf("\n");
}

void Run() {
  const int64_t kRows = 64000;
  const int64_t kCustomers = 8000;
  std::vector<Table> partitions =
      bench::MakeTpcrPartitions(kRows, kCustomers);

  std::printf(
      "=== Figure 4: synchronization reduction query (speed-up, 1..8 "
      "sites) ===\n");
  std::printf("TPCR: %lld rows, %lld customers, 3000 clerks\n\n",
              static_cast<long long>(kRows),
              static_cast<long long>(kCustomers));

  RunSeries("high cardinality", partitions, "CustName");
  RunSeries("low cardinality", partitions, "Clerk");
}

}  // namespace
}  // namespace skalla

int main(int argc, char** argv) {
  skalla::bench::ObsSession obs(argc, argv);
  skalla::Run();
  return 0;
}
