// Figure 5 at the paper's scale, over real site processes and real
// disk: the combined reductions query against a chunked warehouse
// (skalla-dataset --chunked) served by one skalla-site process per
// partition, each paging its partition through a bounded buffer pool.
//
// The paper ran 6M TPC(R) tuples partitioned by NationKey across 8
// local warehouses whose detail data lived in Daytona, not in memory.
// This bench reproduces that setting end to end:
//
//   skalla-dataset --chunked --out DIR --sites 8 --tpcr-rows 6000000
//       --tpcr-customers 100000 --tpcr-clerks 3000   (one line)
//   fig5_fullscale --data DIR [--budgets 16777216,0] [--json-out F]
//
// For every --buffer-bytes budget in the list (0 = unlimited), a fresh
// 8-process cluster is spawned and the combined query runs unoptimized
// and with all reductions through the RpcExecutor. After each run the
// per-site buffer-pool counters (skalla.storage.buffer.{hit,miss,evict},
// via the kGetStats RPC) are collected, showing how much of the
// partition was paged versus resident. Reply tables must be
// byte-identical across every budget and both plans — the byte-identity
// contract, measured where it matters.
//
// Buffer metrics require a tracing-enabled build of skalla-site
// (-DSKALLA_TRACING=ON, the default); the timings and byte accounting
// work either way.

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/flags.h"
#include "common/string_util.h"
#include "net/serde.h"
#include "rpc/rpc_executor.h"
#include "rpc/tcp.h"

namespace skalla {
namespace {

std::string g_data;
std::string g_site_bin;
size_t g_sites = 8;
std::string g_budgets = "16777216,0";
std::string g_json_out;

std::string SiteBinary() {
  if (!g_site_bin.empty()) return g_site_bin;
  const char* env = std::getenv("SKALLA_SITE_BIN");
  if (env != nullptr && env[0] != '\0') return env;
  for (const char* candidate :
       {"tools/skalla-site", "./build/tools/skalla-site",
        "../tools/skalla-site"}) {
    if (std::filesystem::exists(candidate)) return candidate;
  }
  return "";
}

struct SiteProcess {
  pid_t pid = -1;
  int port = 0;
  int stdout_fd = -1;
};

// Spawns `skalla-site --data DIR --site i --port 0 --buffer-bytes B`
// and scrapes "LISTENING port=<p>" from its stdout.
SiteProcess SpawnSite(const std::string& binary, size_t index,
                      uint64_t buffer_bytes) {
  SiteProcess process;
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) return process;

  pid_t pid = ::fork();
  if (pid < 0) {
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    return process;
  }
  if (pid == 0) {
    ::dup2(pipe_fds[1], STDOUT_FILENO);
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    std::string site_arg = std::to_string(index);
    std::string budget_arg = std::to_string(buffer_bytes);
    ::execl(binary.c_str(), binary.c_str(), "--data", g_data.c_str(),
            "--site", site_arg.c_str(), "--port", "0", "--buffer-bytes",
            budget_arg.c_str(), static_cast<char*>(nullptr));
    ::_exit(127);
  }

  ::close(pipe_fds[1]);
  FILE* out = ::fdopen(pipe_fds[0], "r");
  char line[256];
  while (out != nullptr && std::fgets(line, sizeof line, out) != nullptr) {
    int port = 0;
    if (std::sscanf(line, "LISTENING port=%d", &port) == 1) {
      process.pid = pid;
      process.port = port;
      process.stdout_fd = pipe_fds[0];
      return process;
    }
  }
  if (out != nullptr) std::fclose(out);
  ::waitpid(pid, nullptr, 0);
  return process;
}

void ReapAll(std::vector<SiteProcess>* processes) {
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  for (SiteProcess& process : *processes) {
    if (process.pid < 0) continue;
    for (;;) {
      int status = 0;
      pid_t done = ::waitpid(process.pid, &status, WNOHANG);
      if (done == process.pid || done < 0) break;
      if (std::chrono::steady_clock::now() > deadline) {
        ::kill(process.pid, SIGKILL);
        ::waitpid(process.pid, nullptr, 0);
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    process.pid = -1;
    if (process.stdout_fd >= 0) {
      ::close(process.stdout_fd);
      process.stdout_fd = -1;
    }
  }
}

// Counters serialize as `"name": 123` in MetricsRegistry JSON.
uint64_t ScrapeCounter(const std::string& json, const std::string& name) {
  const std::string key = "\"" + name + "\": ";
  size_t pos = json.find(key);
  if (pos == std::string::npos) return 0;
  return std::strtoull(json.c_str() + pos + key.size(), nullptr, 10);
}

struct BufferTotals {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
};

struct RunRow {
  uint64_t budget = 0;
  std::string variant;
  double wall_ms = 0;
  double response_ms = 0;
  uint64_t bytes = 0;
  uint64_t tuples = 0;
  size_t rounds = 0;
  BufferTotals buffers;
};

// One fresh cluster per run, so the site-side buffer counters belong to
// exactly this query execution.
RunRow RunOnce(const std::string& binary, const DistributedPlan& plan,
               uint64_t budget, const char* variant,
               std::vector<uint8_t>* table_bytes) {
  std::vector<SiteProcess> processes;
  std::vector<rpc::SiteEndpoint> endpoints;
  for (size_t i = 0; i < g_sites; ++i) {
    SiteProcess process = SpawnSite(binary, i, budget);
    if (process.pid < 0) {
      std::fprintf(stderr, "failed to spawn site %zu\n", i);
      ReapAll(&processes);
      std::exit(1);
    }
    endpoints.push_back({"127.0.0.1", process.port});
    processes.push_back(process);
  }

  RunRow row;
  row.budget = budget;
  row.variant = variant;
  {
    rpc::RpcExecutor executor(
        std::make_unique<rpc::TcpTransport>(std::move(endpoints)),
        ExecutorOptions{});
    ExecStats stats;
    auto started = std::chrono::steady_clock::now();
    auto result = executor.Execute(plan, &stats);
    auto elapsed = std::chrono::steady_clock::now() - started;
    if (!result.ok()) {
      std::fprintf(stderr, "execution failed: %s\n",
                   result.status().ToString().c_str());
      ReapAll(&processes);
      std::exit(1);
    }
    row.wall_ms =
        std::chrono::duration<double, std::milli>(elapsed).count();
    row.response_ms = stats.ResponseTime() * 1e3;
    row.bytes = stats.TotalBytes();
    row.tuples = stats.TotalTuplesTransferred();
    row.rounds = stats.NumSyncRounds();
    table_bytes->clear();
    WriteTable(*result, table_bytes);

    for (size_t i = 0; i < g_sites; ++i) {
      auto stats_result = executor.SiteStats(i);
      if (!stats_result.ok()) continue;
      const std::string& json = stats_result->metrics_json;
      row.buffers.hits += ScrapeCounter(json, "skalla.storage.buffer.hit");
      row.buffers.misses +=
          ScrapeCounter(json, "skalla.storage.buffer.miss");
      row.buffers.evictions +=
          ScrapeCounter(json, "skalla.storage.buffer.evict");
    }
    executor.Shutdown().Check();
  }
  ReapAll(&processes);
  return row;
}

void Run() {
  const std::string binary = SiteBinary();
  if (binary.empty() || g_data.empty()) {
    std::fprintf(stderr,
                 "need --data DIR (a skalla-dataset --chunked warehouse) "
                 "and a skalla-site binary\n(--site-bin or "
                 "SKALLA_SITE_BIN)\n");
    std::exit(2);
  }

  // The chunked warehouse loads lazily: opening it here costs only the
  // manifest, STATS, and chunk-file footers, and gives the planner the
  // same distribution knowledge the eager warehouse would have.
  StorageOptions storage;
  storage.buffer_bytes = 1 << 20;
  DistributedWarehouse dw =
      DistributedWarehouse::Load(g_data, {}, {}, storage).ValueOrDie();
  if (dw.num_sites() != g_sites) {
    std::fprintf(stderr, "--sites %zu but the warehouse has %zu\n", g_sites,
                 dw.num_sites());
    std::exit(2);
  }
  uint64_t total_rows = 0;
  auto provider = dw.central_catalog().GetProvider("tpcr");
  if (provider.ok()) total_rows = (*provider)->num_rows();
  uint64_t partition_bytes = 0;
  for (size_t i = 0; i < g_sites; ++i) {
    std::error_code ec;
    uint64_t size = std::filesystem::file_size(
        PartitionChunkPath(g_data, "tpcr", i), ec);
    if (!ec && size > partition_bytes) partition_bytes = size;
  }

  GmdjExpr query = bench::CombinedQuery("CustName");
  DistributedPlan none_plan =
      dw.Plan(query, OptimizerOptions::None()).ValueOrDie();
  DistributedPlan all_plan =
      dw.Plan(query, OptimizerOptions::All()).ValueOrDie();

  std::vector<uint64_t> budgets;
  for (const std::string& piece : Split(g_budgets, ',')) {
    if (piece.empty()) continue;
    budgets.push_back(std::strtoull(piece.c_str(), nullptr, 10));
  }

  std::printf("=== Figure 5 at full scale: %llu tpcr rows, %zu site "
              "processes, largest partition %llu bytes ===\n\n",
              static_cast<unsigned long long>(total_rows), g_sites,
              static_cast<unsigned long long>(partition_bytes));
  std::printf("%12s  %-16s %10s %10s %12s %10s %12s %12s %10s\n",
              "buffer_bytes", "variant", "wall_ms", "resp_ms", "bytes",
              "tuples", "buf_hits", "buf_misses", "evicted");
  bench::PrintRule();

  std::vector<RunRow> rows;
  std::vector<uint8_t> reference;
  for (uint64_t budget : budgets) {
    for (const auto& [plan, variant] :
         {std::pair<const DistributedPlan*, const char*>{&none_plan,
                                                         "no-reductions"},
          {&all_plan, "all-reductions"}}) {
      std::vector<uint8_t> table_bytes;
      RunRow row = RunOnce(binary, *plan, budget, variant, &table_bytes);
      if (reference.empty()) {
        reference = table_bytes;
      } else if (table_bytes != reference) {
        std::fprintf(stderr,
                     "BYTE-IDENTITY VIOLATION: budget=%llu %s diverged\n",
                     static_cast<unsigned long long>(budget), variant);
        std::exit(1);
      }
      std::printf("%12llu  %-16s %10.1f %10.1f %12llu %10llu %12llu "
                  "%12llu %10llu\n",
                  static_cast<unsigned long long>(row.budget),
                  row.variant.c_str(), row.wall_ms, row.response_ms,
                  static_cast<unsigned long long>(row.bytes),
                  static_cast<unsigned long long>(row.tuples),
                  static_cast<unsigned long long>(row.buffers.hits),
                  static_cast<unsigned long long>(row.buffers.misses),
                  static_cast<unsigned long long>(row.buffers.evictions));
      rows.push_back(std::move(row));
    }
  }
  std::printf("\nAll %zu runs returned byte-identical tables.\n",
              rows.size());

  if (!g_json_out.empty()) {
    std::FILE* f = std::fopen(g_json_out.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", g_json_out.c_str());
      std::exit(1);
    }
    std::fprintf(f,
                 "{\n \"bench\": \"fig5_fullscale\",\n \"sites\": %zu,\n"
                 " \"tpcr_rows\": %llu,\n \"largest_partition_bytes\": "
                 "%llu,\n \"byte_identical_across_runs\": true,\n"
                 " \"series\": [\n",
                 g_sites, static_cast<unsigned long long>(total_rows),
                 static_cast<unsigned long long>(partition_bytes));
    for (size_t i = 0; i < rows.size(); ++i) {
      const RunRow& r = rows[i];
      std::fprintf(
          f,
          "  {\"buffer_bytes\": %llu, \"variant\": \"%s\", "
          "\"wall_ms\": %.1f, \"response_ms\": %.1f, \"bytes\": %llu, "
          "\"tuples\": %llu, \"sync_rounds\": %zu, "
          "\"skalla.storage.buffer.hit\": %llu, "
          "\"skalla.storage.buffer.miss\": %llu, "
          "\"skalla.storage.buffer.evict\": %llu}%s\n",
          static_cast<unsigned long long>(r.budget), r.variant.c_str(),
          r.wall_ms, r.response_ms,
          static_cast<unsigned long long>(r.bytes),
          static_cast<unsigned long long>(r.tuples), r.rounds,
          static_cast<unsigned long long>(r.buffers.hits),
          static_cast<unsigned long long>(r.buffers.misses),
          static_cast<unsigned long long>(r.buffers.evictions),
          i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, " ]\n}\n");
    std::fclose(f);
  }
}

}  // namespace
}  // namespace skalla

int main(int argc, char** argv) {
  skalla::FlagSet flags;
  flags.String("--data", &skalla::g_data,
               "chunked warehouse directory (skalla-dataset --chunked)");
  flags.String("--site-bin", &skalla::g_site_bin,
               "skalla-site binary (default: $SKALLA_SITE_BIN)");
  flags.SizeT("--sites", &skalla::g_sites, "number of site processes");
  flags.String("--budgets", &skalla::g_budgets,
               "comma-separated --buffer-bytes values (0 = unlimited)");
  flags.String("--json-out", &skalla::g_json_out,
               "write the series as JSON to this file");
  flags.IgnorePrefix("--trace-out=");
  flags.IgnorePrefix("--metrics-out=");
  skalla::Status parsed = flags.Parse(&argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n%s", parsed.ToString().c_str(),
                 flags.Usage(argv[0]).c_str());
    return 2;
  }
  skalla::bench::ObsSession obs(argc, argv);
  skalla::Run();
  return 0;
}
