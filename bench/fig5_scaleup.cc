// Figure 5 reproduction: the combined reductions query (scale-up
// experiment).
//
// The number of sites is fixed at four; the per-site data size scales
// x1..x4. The combined query (three GMDJ operators: a correlated pair
// plus a coalescable third) runs with either all reductions or none.
// Both configurations grow linearly with database size; the optimized
// plan takes roughly half the time. The right-hand graph of the paper
// breaks the optimized evaluation down into site computation, coordinator
// computation, and communication overhead — all growing linearly. A
// second series keeps the number of groups constant while the database
// grows, as in the paper's final experiment.

#include <cstdio>

#include "bench_common.h"

namespace skalla {
namespace {

constexpr size_t kSites = 4;
constexpr int64_t kBaseRows = 32000;
constexpr int64_t kBaseCustomers = 4000;

void RunSeries(const char* title, bool scale_groups) {
  std::printf("--- %s ---\n", title);
  bench::PrintSeriesHeader("scale");
  GmdjExpr query = bench::CombinedQuery("CustName");

  std::vector<ExecStats> optimized_stats;
  for (int64_t scale = 1; scale <= 4; ++scale) {
    std::vector<Table> partitions = bench::MakeTpcrPartitions(
        kBaseRows * scale,
        scale_groups ? kBaseCustomers * scale : kBaseCustomers, kSites);
    DistributedWarehouse dw = bench::MakeWarehouse(partitions, kSites);

    ExecStats none_stats;
    ExecStats all_stats;
    dw.Execute(query, OptimizerOptions::None(), &none_stats).ValueOrDie();
    dw.Execute(query, OptimizerOptions::All(), &all_stats).ValueOrDie();
    bench::PrintSeriesRow(static_cast<size_t>(scale), "no-reductions",
                          none_stats);
    bench::PrintSeriesRow(static_cast<size_t>(scale), "all-reductions",
                          all_stats);
    optimized_stats.push_back(all_stats);
  }

  std::printf("\nBreakdown of the optimized query (right-hand graph):\n");
  std::printf("%5s %14s %14s %14s %14s\n", "scale", "site_ms", "coord_ms",
              "comm_ms", "total_ms");
  for (size_t i = 0; i < optimized_stats.size(); ++i) {
    const ExecStats& s = optimized_stats[i];
    std::printf("%5zu %14.2f %14.2f %14.2f %14.2f\n", i + 1,
                s.TotalSiteTimeMax() * 1e3, s.TotalCoordTime() * 1e3,
                s.TotalCommTime() * 1e3, s.ResponseTime() * 1e3);
  }
  std::printf("\n");
}

void Run() {
  std::printf(
      "=== Figure 5: combined reductions query (scale-up, 4 sites, x1..x4 "
      "data) ===\n\n");
  RunSeries("groups scale with data (customers x1..x4)", true);
  RunSeries("constant group count (customers fixed)", false);
}

}  // namespace
}  // namespace skalla

int main(int argc, char** argv) {
  skalla::bench::ObsSession obs(argc, argv);
  skalla::Run();
  return 0;
}
