// Figure 5 reproduction: the combined reductions query (scale-up
// experiment).
//
// The number of sites is fixed at four; the per-site data size scales
// x1..x4. The combined query (three GMDJ operators: a correlated pair
// plus a coalescable third) runs with either all reductions or none.
// Both configurations grow linearly with database size; the optimized
// plan takes roughly half the time. The right-hand graph of the paper
// breaks the optimized evaluation down into site computation, coordinator
// computation, and communication overhead — all growing linearly. A
// second series keeps the number of groups constant while the database
// grows, as in the paper's final experiment.
//
// A third series stresses the coordinator: eight sites, every round
// synchronized, so the merge of eight sub-aggregate fragments per round
// dominates coordinator time. `--shards=N` shards that merge structure
// (0 = one shard per hardware thread, the default is 1 = sequential);
// byte/tuple counts and results are invariant under the shard count, so
// running the bench twice with --metrics-out and different --shards
// isolates the coordinator merge wall time (`skalla.coord.merge_us`).
//
// `--eval-threads=N` turns on intra-site morsel parallelism for every
// series (0 = one worker per hardware thread). Like --shards, it leaves
// results and byte/tuple counts untouched, so sweeping it isolates site
// computation time (`skalla.site.eval_us`).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "bench_common.h"
#include "common/flags.h"

namespace skalla {
namespace {

constexpr size_t kSites = 4;
constexpr int64_t kBaseRows = 32000;
constexpr int64_t kBaseCustomers = 4000;

// Coordinator shard count for every executor in this bench (--shards=N).
size_t g_shards = 1;

// Intra-site morsel parallelism for every executor in this bench
// (--eval-threads=N, 0 = one worker per hardware thread). Results and
// byte/tuple counts are invariant under this knob, so comparing
// site_ms (or skalla.site.eval_us in --metrics-out) across runs with
// different values isolates the site-evaluation wall time.
size_t g_eval_threads = 1;

ExecutorOptions ExecOptions() {
  ExecutorOptions options;
  options.coordinator_shards = g_shards;
  options.eval_threads = g_eval_threads;
  return options;
}

void RunSeries(const char* title, bool scale_groups) {
  std::printf("--- %s ---\n", title);
  bench::PrintSeriesHeader("scale");
  GmdjExpr query = bench::CombinedQuery("CustName");

  std::vector<ExecStats> optimized_stats;
  for (int64_t scale = 1; scale <= 4; ++scale) {
    std::vector<Table> partitions = bench::MakeTpcrPartitions(
        kBaseRows * scale,
        scale_groups ? kBaseCustomers * scale : kBaseCustomers, kSites);
    DistributedWarehouse dw =
        bench::MakeWarehouse(partitions, kSites, {}, ExecOptions());

    ExecStats none_stats;
    ExecStats all_stats;
    bench::Execute(dw, query, OptimizerOptions::None(), &none_stats);
    bench::Execute(dw, query, OptimizerOptions::All(), &all_stats);
    bench::PrintSeriesRow(static_cast<size_t>(scale), "no-reductions",
                          none_stats);
    bench::PrintSeriesRow(static_cast<size_t>(scale), "all-reductions",
                          all_stats);
    optimized_stats.push_back(all_stats);
  }

  std::printf("\nBreakdown of the optimized query (right-hand graph):\n");
  std::printf("%5s %14s %14s %14s %14s\n", "scale", "site_ms", "coord_ms",
              "comm_ms", "total_ms");
  for (size_t i = 0; i < optimized_stats.size(); ++i) {
    const ExecStats& s = optimized_stats[i];
    std::printf("%5zu %14.2f %14.2f %14.2f %14.2f\n", i + 1,
                s.TotalSiteTimeMax() * 1e3, s.TotalCoordTime() * 1e3,
                s.TotalCommTime() * 1e3, s.ResponseTime() * 1e3);
  }
  std::printf("\n");
}

// Coordinator-bound configuration: 8 sites, unoptimized plan (every
// round synchronizes), so the root merges 8 fragments per round. This is
// the series where coordinator sharding pays off.
void RunCoordinatorSeries() {
  const size_t kShardSites = 8;
  std::printf("--- coordinator-bound (8 sites, no reductions, shards=%zu) "
              "---\n",
              ResolveCoordinatorShards(g_shards));
  GmdjExpr query = bench::CombinedQuery("CustName");
  std::printf("%5s %14s %14s %14s %14s %12s\n", "scale", "coord_ms",
              "site_ms", "total_ms", "bytes", "tuples");
  for (int64_t scale = 1; scale <= 4; ++scale) {
    std::vector<Table> partitions = bench::MakeTpcrPartitions(
        kBaseRows * scale, kBaseCustomers * scale, kShardSites);
    DistributedWarehouse dw =
        bench::MakeWarehouse(partitions, kShardSites, {}, ExecOptions());
    ExecStats stats;
    bench::Execute(dw, query, OptimizerOptions::None(), &stats);
    std::printf("%5zu %14.2f %14.2f %14.2f %14llu %12llu\n",
                static_cast<size_t>(scale), stats.TotalCoordTime() * 1e3,
                stats.TotalSiteTimeMax() * 1e3, stats.ResponseTime() * 1e3,
                static_cast<unsigned long long>(stats.TotalBytes()),
                static_cast<unsigned long long>(
                    stats.TotalTuplesTransferred()));
  }
  std::printf("\nBytes/tuples are invariant under --shards; compare "
              "coord_ms (or skalla.coord.merge_us\nin --metrics-out) "
              "across runs with different shard counts.\n\n");
}

void Run() {
  std::printf(
      "=== Figure 5: combined reductions query (scale-up, 4 sites, x1..x4 "
      "data) ===\n");
  std::printf("coordinator shards: %zu, eval threads: %zu "
              "(of %u hardware threads)\n\n",
              ResolveCoordinatorShards(g_shards),
              ResolveEvalThreads(g_eval_threads),
              std::thread::hardware_concurrency());
  RunSeries("groups scale with data (customers x1..x4)", true);
  RunSeries("constant group count (customers fixed)", false);
  RunCoordinatorSeries();
}

}  // namespace
}  // namespace skalla

int main(int argc, char** argv) {
  skalla::FlagSet flags;
  flags.SizeT("--shards", &skalla::g_shards, "coordinator merge shards");
  flags.SizeT("--eval-threads", &skalla::g_eval_threads,
              "intra-site eval workers");
  flags.IgnorePrefix("--trace-out=");
  flags.IgnorePrefix("--metrics-out=");
  skalla::Status parsed = flags.Parse(&argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n%s", parsed.ToString().c_str(),
                 flags.Usage(argv[0]).c_str());
    return 2;
  }
  skalla::bench::ObsSession obs(argc, argv);
  skalla::Run();
  return 0;
}
