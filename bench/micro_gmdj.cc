// Micro-benchmarks (google-benchmark) for the performance-critical
// components: local GMDJ evaluation (indexed vs naive vs columnar, each
// honoring --eval-threads=N for intra-site morsel parallelism), hash
// index build and probe, serialization, and coordinator merge.
//
// Flags beyond google-benchmark's own:
//   --eval-threads=N   EvalContext::eval_threads for the GMDJ benches
//                      (0 = one worker per hardware thread)
//   --engine=auto|row|columnar
//                      EvalContext::engine for the BM_GmdjEvaluate bench
//                      (the core::EvaluateGmdj routing path). On startup
//                      the binary prints a `gmdj digest:` line — the
//                      FNV-1a hash of a deterministic evaluation's
//                      serialized bytes under the selected engine — so a
//                      smoke job can run --engine=row and
//                      --engine=columnar and assert identical bytes.
//   --trace-out=PATH / --metrics-out=PATH   (bench_common.h ObsSession)
//
// The GMDJ benches record each evaluation into the skalla.site.eval_us
// histogram, so --metrics-out captures before/after distributions for an
// --eval-threads sweep (use --benchmark_filter to isolate one bench).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench_common.h"
#include "common/flags.h"
#include "columnar/vector_eval.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "core/evaluate.h"
#include "core/local_eval.h"
#include "storage/catalog.h"
#include "data/tpcr_gen.h"
#include "dist/coordinator.h"
#include "expr/builder.h"
#include "net/serde.h"
#include "obs/obs.h"
#include "relalg/operators.h"
#include "storage/hash_index.h"

// Set by main from --eval-threads= / --engine= before benchmarks run.
static size_t g_eval_threads = 1;
static skalla::EvalEngine g_engine = skalla::EvalEngine::kAuto;

namespace skalla {
namespace {

EvalContext BenchContext() {
  EvalContext context;
  context.eval_threads = g_eval_threads;
  context.engine = g_engine;
  return context;
}

Table MakeDetail(size_t rows, int64_t groups) {
  Random rng(7);
  SchemaPtr schema = Schema::Make({{"g", ValueType::kInt64},
                                   {"v", ValueType::kInt64}})
                         .ValueOrDie();
  Table t(schema);
  t.Reserve(rows);
  for (size_t i = 0; i < rows; ++i) {
    t.AppendUnchecked(
        {Value(rng.UniformInt(0, groups - 1)), Value(rng.UniformInt(0, 999))});
  }
  return t;
}

GmdjOp SimpleOp() {
  GmdjOp op;
  op.detail_table = "d";
  op.blocks.push_back(GmdjBlock{
      {{AggKind::kCountStar, "", "c"}, {AggKind::kAvg, "v", "a"}},
      Eq(RCol("g"), BCol("g"))});
  return op;
}

void BM_GmdjIndexed(benchmark::State& state) {
  Table detail = MakeDetail(static_cast<size_t>(state.range(0)), 256);
  Table base = Project(detail, {"g"}, true).ValueOrDie();
  GmdjOp op = SimpleOp();
  EvalContext context = BenchContext();
  for (auto _ : state) {
    SKALLA_OBS_ONLY(Stopwatch watch;)
    Table out = EvalGmdj(base, detail, op, context).ValueOrDie();
    SKALLA_HISTOGRAM_RECORD("skalla.site.eval_us", watch.ElapsedMicros());
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GmdjIndexed)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_GmdjColumnar(benchmark::State& state) {
  Table detail = MakeDetail(static_cast<size_t>(state.range(0)), 256);
  ColumnTable columnar = ColumnTable::FromRowTable(detail).ValueOrDie();
  Table base = Project(detail, {"g"}, true).ValueOrDie();
  GmdjOp op = SimpleOp();
  EvalContext context = BenchContext();
  for (auto _ : state) {
    SKALLA_OBS_ONLY(Stopwatch watch;)
    Table out = EvalGmdjColumnar(base, columnar, op, context).ValueOrDie();
    SKALLA_HISTOGRAM_RECORD("skalla.site.eval_us", watch.ElapsedMicros());
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GmdjColumnar)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_GmdjEvaluate(benchmark::State& state) {
  // The redesigned routing path: core::EvaluateGmdj against a warmed
  // catalog, honoring --engine (kAuto picks the columnar cache here).
  Table detail = MakeDetail(static_cast<size_t>(state.range(0)), 256);
  Table base = Project(detail, {"g"}, true).ValueOrDie();
  Catalog catalog;
  catalog.Register("d", detail);
  catalog.WarmColumnar().Check();
  GmdjOp op = SimpleOp();
  EvalContext context = BenchContext();
  for (auto _ : state) {
    SKALLA_OBS_ONLY(Stopwatch watch;)
    Table out = EvaluateGmdj(base, op, catalog, context).ValueOrDie();
    SKALLA_HISTOGRAM_RECORD("skalla.site.eval_us", watch.ElapsedMicros());
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.SetLabel(std::string(EvalEngineName(g_engine)));
}
BENCHMARK(BM_GmdjEvaluate)->Arg(1000)->Arg(10000)->Arg(100000);

// A deterministic evaluation under the selected engine, reduced to an
// FNV-1a hash of the serialized result bytes. Two runs of the binary
// with different --engine values must print identical digests — the
// byte-identity contract, checkable from a shell.
void PrintEngineDigest() {
  Table detail = skalla::MakeDetail(20000, 128);
  Table base = Project(detail, {"g"}, true).ValueOrDie();
  Catalog catalog;
  catalog.Register("d", detail);
  catalog.WarmColumnar().Check();
  GmdjOp op = SimpleOp();
  op.blocks.push_back(GmdjBlock{
      {{AggKind::kSum, "v", "s"}, {AggKind::kMax, "v", "m"}},
      And(Eq(RCol("g"), BCol("g")), Gt(RCol("v"), Lit(Value(int64_t{250}))))});
  EvalContext context = BenchContext();
  Table out = EvaluateGmdj(base, op, catalog, context).ValueOrDie();
  std::vector<uint8_t> bytes;
  WriteTable(out, &bytes);
  uint64_t hash = 1469598103934665603ull;
  for (uint8_t b : bytes) {
    hash ^= b;
    hash *= 1099511628211ull;
  }
  std::printf("gmdj digest: %016llx (engine=%s)\n",
              static_cast<unsigned long long>(hash),
              std::string(EvalEngineName(g_engine)).c_str());
}

void BM_ColumnTableConvert(benchmark::State& state) {
  Table detail = MakeDetail(static_cast<size_t>(state.range(0)), 256);
  for (auto _ : state) {
    ColumnTable columnar = ColumnTable::FromRowTable(detail).ValueOrDie();
    benchmark::DoNotOptimize(columnar);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ColumnTableConvert)->Arg(10000)->Arg(100000);

void BM_GmdjNaive(benchmark::State& state) {
  Table detail = MakeDetail(static_cast<size_t>(state.range(0)), 64);
  Table base = Project(detail, {"g"}, true).ValueOrDie();
  GmdjOp op = SimpleOp();
  EvalContext context = BenchContext();
  context.use_index = false;
  for (auto _ : state) {
    SKALLA_OBS_ONLY(Stopwatch watch;)
    Table out = EvalGmdj(base, detail, op, context).ValueOrDie();
    SKALLA_HISTOGRAM_RECORD("skalla.site.eval_us", watch.ElapsedMicros());
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GmdjNaive)->Arg(1000)->Arg(4000);

void BM_HashIndexBuild(benchmark::State& state) {
  Table detail = MakeDetail(static_cast<size_t>(state.range(0)), 1024);
  for (auto _ : state) {
    HashIndex index = HashIndex::Build(detail, {0});
    benchmark::DoNotOptimize(index);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HashIndexBuild)->Arg(10000)->Arg(100000);

void BM_HashIndexProbe(benchmark::State& state) {
  Table detail = MakeDetail(100000, 1024);
  HashIndex index = HashIndex::Build(detail, {0});
  Row probe = {Value(int64_t{0}), Value(int64_t{0})};
  Random rng(3);
  for (auto _ : state) {
    probe[0] = Value(rng.UniformInt(0, 1023));
    benchmark::DoNotOptimize(index.Lookup(probe, {0}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashIndexProbe);

void BM_SerializeTable(benchmark::State& state) {
  TpcrConfig config;
  config.num_rows = state.range(0);
  Table t = GenerateTpcr(config);
  uint64_t bytes = SerializedTableSize(t);
  for (auto _ : state) {
    std::vector<uint8_t> buffer;
    WriteTable(t, &buffer);
    benchmark::DoNotOptimize(buffer);
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(bytes));
}
BENCHMARK(BM_SerializeTable)->Arg(1000)->Arg(10000);

void BM_DeserializeTable(benchmark::State& state) {
  TpcrConfig config;
  config.num_rows = state.range(0);
  Table t = GenerateTpcr(config);
  std::vector<uint8_t> buffer;
  WriteTable(t, &buffer);
  for (auto _ : state) {
    Table out = ReadTable(buffer.data(), buffer.size()).ValueOrDie();
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(buffer.size()));
}
BENCHMARK(BM_DeserializeTable)->Arg(1000)->Arg(10000);

void BM_CoordinatorMerge(benchmark::State& state) {
  // One fragment of partial aggregates merged into a seeded structure.
  const int64_t kGroups = state.range(0);
  SchemaPtr base_schema =
      Schema::Make({{"g", ValueType::kInt64}}).ValueOrDie();
  Table base(base_schema);
  for (int64_t g = 0; g < kGroups; ++g) base.AppendUnchecked({Value(g)});

  Table detail = MakeDetail(static_cast<size_t>(kGroups) * 4,
                            kGroups);
  GmdjOp op = SimpleOp();
  EvalContext options;
  options.sub_aggregates = true;
  Table fragment = EvalGmdj(base, detail, op, options).ValueOrDie();

  for (auto _ : state) {
    Coordinator coordinator({"g"});
    coordinator.SetResult(base);
    coordinator
        .BeginRound(op, *base_schema, *detail.schema(),
                    /*from_scratch=*/false)
        .Check();
    coordinator.MergeFragment(fragment).Check();
    coordinator.FinalizeRound().Check();
    benchmark::DoNotOptimize(coordinator.result());
  }
  state.SetItemsProcessed(state.iterations() * kGroups);
}
BENCHMARK(BM_CoordinatorMerge)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace skalla

// BENCHMARK_MAIN() plus our flags: FlagSet consumes --eval-threads (and
// the ObsSession flags, which would otherwise be rejected) in
// keep_unknown mode, leaving google-benchmark's own arguments in argv
// for benchmark::Initialize.
int main(int argc, char** argv) {
  skalla::bench::ObsSession obs(argc, argv);
  skalla::FlagSet flags;
  flags.SizeT("--eval-threads", &g_eval_threads,
              "intra-site eval workers (0 = hardware threads)");
  flags.Func(
      "--engine",
      [](const std::string& value) {
        if (value == "auto") {
          g_engine = skalla::EvalEngine::kAuto;
        } else if (value == "row") {
          g_engine = skalla::EvalEngine::kRow;
        } else if (value == "columnar") {
          g_engine = skalla::EvalEngine::kColumnar;
        } else {
          return skalla::Status::InvalidArgument("unknown --engine: " + value);
        }
        return skalla::Status::OK();
      },
      "GMDJ engine for BM_GmdjEvaluate: auto|row|columnar");
  // ObsSession already read these from the original argv; consume them
  // here so benchmark::Initialize never sees them.
  auto drop = [](const std::string&) { return skalla::Status::OK(); };
  flags.Func("--trace-out", drop, "trace output path (ObsSession)");
  flags.Func("--metrics-out", drop, "metrics output path (ObsSession)");
  skalla::Status parsed = flags.Parse(&argc, argv, /*keep_unknown=*/true);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n%s", parsed.ToString().c_str(),
                 flags.Usage(argv[0]).c_str());
    return 2;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  skalla::PrintEngineDigest();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
