// Ablation: network parameters. The paper argues its setting differs
// from Shatdal & Naughton's parallel-machine work because communication
// is NOT cheap in a distributed warehouse. This bench sweeps the
// simulated network from parallel-machine-like (high bandwidth, low
// latency) to WAN-like and shows where the Sect. 4 optimizations matter:
// the slower the network, the larger the optimized/unoptimized gap;
// on a fast interconnect the gap collapses toward the pure-compute
// difference.

#include <cstdio>

#include "bench_common.h"

namespace skalla {
namespace {

struct NetPoint {
  const char* name;
  NetworkConfig config;
};

void Run() {
  const int64_t kRows = 48000;
  const int64_t kCustomers = 6000;
  const size_t kSites = 8;
  std::vector<Table> partitions =
      bench::MakeTpcrPartitions(kRows, kCustomers, kSites);
  GmdjExpr query = bench::CorrelatedQuery("CustKey");

  const NetPoint points[] = {
      {"parallel-1GB/s-10us", {10e-6, 1e9}},
      {"LAN-100MB/s-100us", {100e-6, 100e6}},
      {"campus-10MB/s-1ms", {1e-3, 10e6}},
      {"WAN-1MB/s-20ms", {20e-3, 1e6}},
  };

  std::printf("=== Network sensitivity: when do the optimizations "
              "matter? ===\n");
  std::printf("%-22s %14s %14s %8s\n", "network", "none_ms", "all_ms",
              "speedup");
  for (const NetPoint& point : points) {
    DistributedWarehouse dw =
        bench::MakeWarehouse(partitions, kSites, point.config);
    ExecStats none_stats;
    ExecStats all_stats;
    bench::Execute(dw, query, OptimizerOptions::None(), &none_stats);
    bench::Execute(dw, query, OptimizerOptions::All(), &all_stats);
    std::printf("%-22s %14.2f %14.2f %7.1fx\n", point.name,
                none_stats.ResponseTime() * 1e3,
                all_stats.ResponseTime() * 1e3,
                none_stats.ResponseTime() / all_stats.ResponseTime());
  }
  std::printf("\nBytes moved are network-independent: %s\n",
              "the optimizations shrink traffic; the network prices it.");
}

}  // namespace
}  // namespace skalla

int main(int argc, char** argv) {
  skalla::bench::ObsSession obs(argc, argv);
  skalla::Run();
  return 0;
}
