// Ablation: incremental (pipelined) synchronization. Sect. 3.2 notes the
// coordinator "can synchronize H with those sub-results it has already
// received ... rather than having to wait for all of H". The
// AsyncExecutor implements exactly that: sites run concurrently and the
// coordinator merges fragments in completion order. This bench compares
// real wall-clock time of the sequential executor, the parallel-sites
// executor (sites concurrent, merge after a barrier), and the async
// executor (sites concurrent, merge overlapped), on a compute-heavy
// unoptimized plan where per-site work dominates.

#include <cstdio>
#include <thread>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "dist/async_exec.h"

namespace skalla {
namespace {

std::vector<Site> MakeSites(const std::vector<Table>& parts, size_t n) {
  std::vector<Site> sites;
  for (size_t i = 0; i < n; ++i) {
    Catalog catalog;
    catalog.Register("tpcr", parts[i]);
    sites.emplace_back(static_cast<int>(i), std::move(catalog));
  }
  return sites;
}

void Run() {
  const size_t kSites = 8;
  const int64_t kRows = 96000;
  const int64_t kCustomers = 12000;
  std::vector<Table> partitions =
      bench::MakeTpcrPartitions(kRows, kCustomers, kSites);

  DistributedWarehouse dw(kSites);
  {
    std::vector<Table> copy = partitions;
    dw.AddPartitionedTable("tpcr", std::move(copy),
                           bench::TrackedColumns())
        .Check();
  }
  GmdjExpr query = bench::CorrelatedQuery("CustKey");
  DistributedPlan plan =
      dw.Plan(query, OptimizerOptions::None()).ValueOrDie();

  std::printf("=== Pipelining ablation: real wall time per engine ===\n");
  unsigned cores = std::thread::hardware_concurrency();
  std::printf("hardware threads: %u%s\n", cores,
              cores <= 1 ? "  (single core: concurrent engines can only "
                           "show their overhead here; gains need real "
                           "parallel hardware)"
                         : "");
  std::printf("%-22s %12s\n", "engine", "wall_ms");

  {
    Stopwatch timer;
    ExecStats stats;
    bench::ExecutePlan(
        std::make_unique<DistributedExecutor>(MakeSites(partitions, kSites)),
        plan, &stats);
    std::printf("%-22s %12.2f\n", "sequential", timer.ElapsedSeconds() * 1e3);
  }
  {
    Stopwatch timer;
    ExecutorOptions options;
    options.parallel_sites = true;
    ExecStats stats;
    bench::ExecutePlan(std::make_unique<DistributedExecutor>(
                           MakeSites(partitions, kSites), NetworkConfig{},
                           options),
                       plan, &stats);
    std::printf("%-22s %12.2f\n", "parallel-sites",
                timer.ElapsedSeconds() * 1e3);
  }
  {
    Stopwatch timer;
    ExecStats stats;
    bench::ExecutePlan(
        std::make_unique<AsyncExecutor>(MakeSites(partitions, kSites)),
        plan, &stats);
    double wall = timer.ElapsedSeconds();
    double round_walls = 0;
    for (const RoundStats& r : stats.rounds) round_walls += r.wall_time;
    std::printf("%-22s %12.2f  (merge overlapped with site compute)\n",
                "async-pipelined", wall * 1e3);
    std::printf("%-22s %12.2f\n", "  sum of round walls", round_walls * 1e3);
  }
}

}  // namespace
}  // namespace skalla

int main(int argc, char** argv) {
  skalla::bench::ObsSession obs(argc, argv);
  skalla::Run();
  return 0;
}
