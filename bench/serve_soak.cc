// serve_soak: latency and throughput of the serving path. One
// QuerySession over a 4-site TPCR warehouse; closed-loop clients submit
// queries and wait for their futures, at concurrency {1, 4, 16}. Per
// query we record submit-to-resolve latency (queue wait included — that
// is what a user of skalla-coord experiences) and report p50/p99 plus
// aggregate QPS per concurrency level, then a cached series showing the
// sub-aggregate cache fast path. Output is the JSON committed as
// BENCH_serve_soak.json.
//
//   ./bench/serve_soak [--queries N] [--rows N] [--trace-out=F]
//                      [--metrics-out=F]
//
// The latency series runs with use_cache = false so every query pays
// full evaluation; mixes of three query shapes x three group columns
// keep the plans distinct. Results are deterministic; timings are
// hardware-dependent.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <ctime>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/flags.h"
#include "common/stopwatch.h"

namespace skalla {
namespace {

int64_t g_queries = 48;  // per concurrency level
int64_t g_rows = 32000;

std::vector<GmdjExpr> QueryMix() {
  std::vector<GmdjExpr> mix;
  for (const char* column : {"CustName", "Clerk", "CustKey"}) {
    mix.push_back(bench::CorrelatedQuery(column));
    mix.push_back(bench::CoalescingQuery(column));
    mix.push_back(bench::CombinedQuery(column));
  }
  return mix;
}

double Percentile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0;
  size_t index = static_cast<size_t>(q * static_cast<double>(sorted.size()));
  return sorted[std::min(index, sorted.size() - 1)];
}

struct SeriesResult {
  size_t concurrency = 0;
  size_t queries = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double qps = 0;
  uint64_t cache_hits = 0;
};

SeriesResult RunSeries(const DistributedWarehouse& dw, size_t concurrency,
                       bool use_cache) {
  serve::SessionOptions session_options;
  session_options.scheduler.max_concurrent_queries = concurrency;
  auto session = serve::QuerySession::Open(&dw, session_options).ValueOrDie();

  const std::vector<GmdjExpr> mix = QueryMix();
  const size_t total = static_cast<size_t>(g_queries);
  std::vector<double> latencies_ms;
  std::mutex latencies_mu;
  std::atomic<size_t> next{0};

  Stopwatch wall;
  std::vector<std::thread> clients;
  for (size_t c = 0; c < concurrency; ++c) {
    clients.emplace_back([&] {
      while (true) {
        const size_t i = next.fetch_add(1);
        if (i >= total) return;
        // The cached series repeats one query; the latency series
        // cycles the mix so consecutive queries differ.
        const GmdjExpr& query = use_cache ? mix[0] : mix[i % mix.size()];
        serve::QueryOptions options;
        options.use_cache = use_cache;
        Stopwatch latency;
        auto submission = session.Submit(query, options).ValueOrDie();
        submission.result.get().ValueOrDie();
        std::lock_guard<std::mutex> lock(latencies_mu);
        latencies_ms.push_back(latency.ElapsedSeconds() * 1e3);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const double wall_s = wall.ElapsedSeconds();

  std::sort(latencies_ms.begin(), latencies_ms.end());
  SeriesResult result;
  result.concurrency = concurrency;
  result.queries = total;
  result.p50_ms = Percentile(latencies_ms, 0.50);
  result.p99_ms = Percentile(latencies_ms, 0.99);
  result.qps = wall_s > 0 ? static_cast<double>(total) / wall_s : 0;
  result.cache_hits = session.scheduler().cache().stats().hits;
  return result;
}

void Run() {
  std::vector<Table> partitions =
      bench::MakeTpcrPartitions(g_rows, g_rows / 8, 4);
  DistributedWarehouse dw = bench::MakeWarehouse(partitions, 4);

  char date[16];
  std::time_t now = std::time(nullptr);
  std::strftime(date, sizeof(date), "%Y-%m-%d", std::localtime(&now));

  std::printf("{\n \"bench\": \"serve_soak\",\n \"date\": \"%s\",\n"
              " \"hardware_threads\": %u,\n"
              " \"command\": [\"./bench/serve_soak --queries %lld --rows "
              "%lld\"],\n"
              " \"note\": \"Closed-loop serving soak through QuerySession: "
              "per-query submit-to-resolve latency (queue wait included) "
              "and aggregate QPS per admission width. The latency series "
              "disables the sub-aggregate cache and cycles nine distinct "
              "plans; the cached series repeats one plan with the cache on, "
              "so all but the first resolutions are lookups. Single-core "
              "container: widening admission mostly reorders the same "
              "work, so QPS stays flat while p99 grows with the queue "
              "depth; on multicore hardware the independent per-site "
              "rounds overlap instead.\",\n \"latency_series\": [\n",
              date, std::thread::hardware_concurrency(),
              static_cast<long long>(g_queries),
              static_cast<long long>(g_rows));
  bool first = true;
  for (size_t concurrency : {size_t{1}, size_t{4}, size_t{16}}) {
    SeriesResult r = RunSeries(dw, concurrency, /*use_cache=*/false);
    std::printf("%s  {\"concurrency\": %zu, \"queries\": %zu, "
                "\"p50_ms\": %.2f, \"p99_ms\": %.2f, \"qps\": %.2f}",
                first ? "" : ",\n", r.concurrency, r.queries, r.p50_ms,
                r.p99_ms, r.qps);
    first = false;
  }
  SeriesResult cached = RunSeries(dw, 4, /*use_cache=*/true);
  std::printf("\n ],\n \"cached_series\": {\"concurrency\": %zu, "
              "\"queries\": %zu, \"p50_ms\": %.2f, \"p99_ms\": %.2f, "
              "\"qps\": %.2f, \"cache_hits\": %llu}\n}\n",
              cached.concurrency, cached.queries, cached.p50_ms,
              cached.p99_ms, cached.qps,
              static_cast<unsigned long long>(cached.cache_hits));
}

}  // namespace
}  // namespace skalla

int main(int argc, char** argv) {
  skalla::FlagSet flags;
  flags.Int64("--queries", &skalla::g_queries,
              "queries per concurrency level");
  flags.Int64("--rows", &skalla::g_rows, "TPCR rows across the 4 sites");
  flags.IgnorePrefix("--trace-out=");
  flags.IgnorePrefix("--metrics-out=");
  skalla::Status parsed = flags.Parse(&argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n%s", parsed.ToString().c_str(),
                 flags.Usage(argv[0]).c_str());
    return 2;
  }
  skalla::bench::ObsSession obs(argc, argv);
  skalla::Run();
  return 0;
}
