// Theorem 2 validation: the data transferred by Alg. GMDJDistribEval is
// bounded by sum_{i=1..m}(2 * s_i * |Q|) + s_0 * |Q| — independent of the
// size of the detail relation.
//
// We grow the fact relation while holding the group count fixed and show
// that measured transfer (tuples and bytes) stays flat and under the
// bound, for both the unoptimized plan (which the theorem is stated for)
// and the fully optimized one.

#include <cstdio>

#include "bench_common.h"

namespace skalla {
namespace {

void Run() {
  const size_t kSites = 6;
  const int64_t kCustomers = 2000;  // Fixed group count.

  std::printf("=== Theorem 2: transfer bound vs detail relation size ===\n");
  std::printf("%10s %8s %10s %12s %12s %14s %9s\n", "rows", "|Q|",
              "bound_tup", "tuples", "tuples_opt", "bytes", "ok");

  GmdjExpr query = bench::CorrelatedQuery("CustKey");
  const size_t m = query.ops.size();

  for (int64_t rows : {20000, 40000, 80000, 160000}) {
    std::vector<Table> partitions =
        bench::MakeTpcrPartitions(rows, kCustomers, kSites);
    DistributedWarehouse dw = bench::MakeWarehouse(partitions, kSites);

    ExecStats stats;
    Table result =
        bench::Execute(dw, query, OptimizerOptions::None(), &stats);
    ExecStats opt_stats;
    bench::Execute(dw, query, OptimizerOptions::All(), &opt_stats);

    uint64_t q = result.num_rows();
    uint64_t bound = kSites * q;  // s_0 * |Q| for the base round.
    for (size_t i = 0; i < m; ++i) bound += 2 * kSites * q;

    bool ok = stats.TotalTuplesTransferred() <= bound &&
              opt_stats.TotalTuplesTransferred() <= bound;
    std::printf("%10lld %8llu %10llu %12llu %12llu %14llu %9s\n",
                static_cast<long long>(rows),
                static_cast<unsigned long long>(q),
                static_cast<unsigned long long>(bound),
                static_cast<unsigned long long>(
                    stats.TotalTuplesTransferred()),
                static_cast<unsigned long long>(
                    opt_stats.TotalTuplesTransferred()),
                static_cast<unsigned long long>(stats.TotalBytes()),
                ok ? "BOUND-OK" : "VIOLATED");
  }
  std::printf(
      "\nTransfer is flat in |R| (the detail relation never moves), as "
      "Theorem 2 requires.\n");
}

}  // namespace
}  // namespace skalla

int main(int argc, char** argv) {
  skalla::bench::ObsSession obs(argc, argv);
  skalla::Run();
  return 0;
}
