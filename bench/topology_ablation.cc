// Ablation: coordinator topology (the paper's Sect. 6 future-work
// direction). Star (flat coordinator) versus balanced coordinator trees
// of fanout 2 and 4, on the unoptimized correlated query whose root
// traffic grows quadratically in the star. Intermediate coordinators
// merge partials level by level, so the root link's traffic drops from
// n fragments per round to `fanout` fragments per round.

#include <cstdio>

#include "bench_common.h"
#include <algorithm>

#include "dist/tree.h"

namespace skalla {
namespace {

void Run() {
  const int64_t kRows = 64000;
  const int64_t kCustomers = 8000;

  std::printf("=== Topology ablation: star vs coordinator trees ===\n");
  std::printf("%5s %8s %7s %14s %14s %12s\n", "sites", "fanout", "depth",
              "root_bytes", "total_bytes", "time_ms");

  GmdjExpr query = bench::CorrelatedQuery("CustKey");

  for (size_t n : {4u, 8u, 16u}) {
    std::vector<Table> partitions =
        bench::MakeTpcrPartitions(kRows, kCustomers, n);
    DistributedWarehouse dw(n);
    std::vector<Table> parts_copy = partitions;
    dw.AddPartitionedTable("tpcr", std::move(parts_copy),
                           bench::TrackedColumns())
        .Check();
    DistributedPlan plan =
        dw.Plan(query, OptimizerOptions::None()).ValueOrDie();

    size_t last_effective_fanout = 0;
    for (size_t fanout : {n /* star */, size_t{4}, size_t{2}}) {
      size_t effective = std::min(fanout, n);
      if (effective == last_effective_fanout) continue;
      last_effective_fanout = effective;
      std::vector<Site> sites;
      for (size_t i = 0; i < n; ++i) {
        Catalog catalog;
        catalog.Register("tpcr", partitions[i]);
        sites.emplace_back(static_cast<int>(i), std::move(catalog));
      }
      CoordinatorTree tree = CoordinatorTree::Balanced(n, fanout);
      size_t depth = tree.depth();
      ExecStats stats;
      bench::ExecutePlan(std::make_unique<TreeExecutor>(std::move(sites),
                                                        std::move(tree)),
                         plan, &stats);
      std::printf("%5zu %8s %7zu %14llu %14llu %12.2f\n", n,
                  fanout >= n ? "star" : StrCat(fanout).c_str(), depth,
                  static_cast<unsigned long long>(stats.RootBytes()),
                  static_cast<unsigned long long>(stats.TotalBytes()),
                  stats.ResponseTime() * 1e3);
    }
    bench::PrintRule();
  }
  std::printf("\nIntermediate merging trades extra total traffic for a "
              "lighter root link and\nparallel per-level transfers.\n");
}

}  // namespace
}  // namespace skalla

int main(int argc, char** argv) {
  skalla::bench::ObsSession obs(argc, argv);
  skalla::Run();
  return 0;
}
