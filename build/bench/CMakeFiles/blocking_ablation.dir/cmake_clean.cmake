file(REMOVE_RECURSE
  "CMakeFiles/blocking_ablation.dir/blocking_ablation.cc.o"
  "CMakeFiles/blocking_ablation.dir/blocking_ablation.cc.o.d"
  "blocking_ablation"
  "blocking_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blocking_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
