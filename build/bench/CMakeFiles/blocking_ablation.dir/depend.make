# Empty dependencies file for blocking_ablation.
# This may be replaced when dependencies are built.
