file(REMOVE_RECURSE
  "CMakeFiles/cube_strategies.dir/cube_strategies.cc.o"
  "CMakeFiles/cube_strategies.dir/cube_strategies.cc.o.d"
  "cube_strategies"
  "cube_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cube_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
