# Empty compiler generated dependencies file for cube_strategies.
# This may be replaced when dependencies are built.
