file(REMOVE_RECURSE
  "CMakeFiles/fig2_group_reduction.dir/fig2_group_reduction.cc.o"
  "CMakeFiles/fig2_group_reduction.dir/fig2_group_reduction.cc.o.d"
  "fig2_group_reduction"
  "fig2_group_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_group_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
