# Empty dependencies file for fig2_group_reduction.
# This may be replaced when dependencies are built.
