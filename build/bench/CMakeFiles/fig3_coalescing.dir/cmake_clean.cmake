file(REMOVE_RECURSE
  "CMakeFiles/fig3_coalescing.dir/fig3_coalescing.cc.o"
  "CMakeFiles/fig3_coalescing.dir/fig3_coalescing.cc.o.d"
  "fig3_coalescing"
  "fig3_coalescing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_coalescing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
