# Empty dependencies file for fig3_coalescing.
# This may be replaced when dependencies are built.
