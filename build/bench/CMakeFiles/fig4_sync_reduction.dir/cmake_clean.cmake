file(REMOVE_RECURSE
  "CMakeFiles/fig4_sync_reduction.dir/fig4_sync_reduction.cc.o"
  "CMakeFiles/fig4_sync_reduction.dir/fig4_sync_reduction.cc.o.d"
  "fig4_sync_reduction"
  "fig4_sync_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_sync_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
