# Empty dependencies file for fig4_sync_reduction.
# This may be replaced when dependencies are built.
