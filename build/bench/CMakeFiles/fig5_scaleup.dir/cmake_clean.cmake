file(REMOVE_RECURSE
  "CMakeFiles/fig5_scaleup.dir/fig5_scaleup.cc.o"
  "CMakeFiles/fig5_scaleup.dir/fig5_scaleup.cc.o.d"
  "fig5_scaleup"
  "fig5_scaleup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_scaleup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
