# Empty compiler generated dependencies file for fig5_scaleup.
# This may be replaced when dependencies are built.
