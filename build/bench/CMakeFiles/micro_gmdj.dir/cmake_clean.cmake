file(REMOVE_RECURSE
  "CMakeFiles/micro_gmdj.dir/micro_gmdj.cc.o"
  "CMakeFiles/micro_gmdj.dir/micro_gmdj.cc.o.d"
  "micro_gmdj"
  "micro_gmdj.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_gmdj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
