# Empty compiler generated dependencies file for micro_gmdj.
# This may be replaced when dependencies are built.
