file(REMOVE_RECURSE
  "CMakeFiles/network_sensitivity.dir/network_sensitivity.cc.o"
  "CMakeFiles/network_sensitivity.dir/network_sensitivity.cc.o.d"
  "network_sensitivity"
  "network_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
