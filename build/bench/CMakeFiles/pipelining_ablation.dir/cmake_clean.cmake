file(REMOVE_RECURSE
  "CMakeFiles/pipelining_ablation.dir/pipelining_ablation.cc.o"
  "CMakeFiles/pipelining_ablation.dir/pipelining_ablation.cc.o.d"
  "pipelining_ablation"
  "pipelining_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipelining_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
