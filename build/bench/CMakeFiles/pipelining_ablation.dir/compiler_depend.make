# Empty compiler generated dependencies file for pipelining_ablation.
# This may be replaced when dependencies are built.
