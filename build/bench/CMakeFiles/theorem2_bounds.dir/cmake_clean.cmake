file(REMOVE_RECURSE
  "CMakeFiles/theorem2_bounds.dir/theorem2_bounds.cc.o"
  "CMakeFiles/theorem2_bounds.dir/theorem2_bounds.cc.o.d"
  "theorem2_bounds"
  "theorem2_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theorem2_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
