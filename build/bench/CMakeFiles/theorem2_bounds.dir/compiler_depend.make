# Empty compiler generated dependencies file for theorem2_bounds.
# This may be replaced when dependencies are built.
