file(REMOVE_RECURSE
  "CMakeFiles/topology_ablation.dir/topology_ablation.cc.o"
  "CMakeFiles/topology_ablation.dir/topology_ablation.cc.o.d"
  "topology_ablation"
  "topology_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topology_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
