# Empty compiler generated dependencies file for topology_ablation.
# This may be replaced when dependencies are built.
