file(REMOVE_RECURSE
  "CMakeFiles/datacube_marginals.dir/datacube_marginals.cpp.o"
  "CMakeFiles/datacube_marginals.dir/datacube_marginals.cpp.o.d"
  "datacube_marginals"
  "datacube_marginals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacube_marginals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
