# Empty dependencies file for datacube_marginals.
# This may be replaced when dependencies are built.
