file(REMOVE_RECURSE
  "CMakeFiles/ip_flow_analysis.dir/ip_flow_analysis.cpp.o"
  "CMakeFiles/ip_flow_analysis.dir/ip_flow_analysis.cpp.o.d"
  "ip_flow_analysis"
  "ip_flow_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ip_flow_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
