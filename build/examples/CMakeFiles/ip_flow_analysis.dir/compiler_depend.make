# Empty compiler generated dependencies file for ip_flow_analysis.
# This may be replaced when dependencies are built.
