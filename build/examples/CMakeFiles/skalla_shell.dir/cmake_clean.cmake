file(REMOVE_RECURSE
  "CMakeFiles/skalla_shell.dir/skalla_shell.cpp.o"
  "CMakeFiles/skalla_shell.dir/skalla_shell.cpp.o.d"
  "skalla_shell"
  "skalla_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skalla_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
