# Empty dependencies file for skalla_shell.
# This may be replaced when dependencies are built.
