file(REMOVE_RECURSE
  "CMakeFiles/tpcr_olap.dir/tpcr_olap.cpp.o"
  "CMakeFiles/tpcr_olap.dir/tpcr_olap.cpp.o.d"
  "tpcr_olap"
  "tpcr_olap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpcr_olap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
