# Empty compiler generated dependencies file for tpcr_olap.
# This may be replaced when dependencies are built.
