file(REMOVE_RECURSE
  "CMakeFiles/workload_driver.dir/workload_driver.cpp.o"
  "CMakeFiles/workload_driver.dir/workload_driver.cpp.o.d"
  "workload_driver"
  "workload_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
