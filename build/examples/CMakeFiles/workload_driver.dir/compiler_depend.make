# Empty compiler generated dependencies file for workload_driver.
# This may be replaced when dependencies are built.
