
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/agg/accumulator.cc" "src/CMakeFiles/skalla.dir/agg/accumulator.cc.o" "gcc" "src/CMakeFiles/skalla.dir/agg/accumulator.cc.o.d"
  "/root/repo/src/agg/aggregate.cc" "src/CMakeFiles/skalla.dir/agg/aggregate.cc.o" "gcc" "src/CMakeFiles/skalla.dir/agg/aggregate.cc.o.d"
  "/root/repo/src/columnar/column.cc" "src/CMakeFiles/skalla.dir/columnar/column.cc.o" "gcc" "src/CMakeFiles/skalla.dir/columnar/column.cc.o.d"
  "/root/repo/src/columnar/column_table.cc" "src/CMakeFiles/skalla.dir/columnar/column_table.cc.o" "gcc" "src/CMakeFiles/skalla.dir/columnar/column_table.cc.o.d"
  "/root/repo/src/columnar/vector_eval.cc" "src/CMakeFiles/skalla.dir/columnar/vector_eval.cc.o" "gcc" "src/CMakeFiles/skalla.dir/columnar/vector_eval.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/skalla.dir/common/random.cc.o" "gcc" "src/CMakeFiles/skalla.dir/common/random.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/skalla.dir/common/status.cc.o" "gcc" "src/CMakeFiles/skalla.dir/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/skalla.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/skalla.dir/common/string_util.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "src/CMakeFiles/skalla.dir/common/thread_pool.cc.o" "gcc" "src/CMakeFiles/skalla.dir/common/thread_pool.cc.o.d"
  "/root/repo/src/core/gmdj.cc" "src/CMakeFiles/skalla.dir/core/gmdj.cc.o" "gcc" "src/CMakeFiles/skalla.dir/core/gmdj.cc.o.d"
  "/root/repo/src/core/local_eval.cc" "src/CMakeFiles/skalla.dir/core/local_eval.cc.o" "gcc" "src/CMakeFiles/skalla.dir/core/local_eval.cc.o.d"
  "/root/repo/src/data/csv.cc" "src/CMakeFiles/skalla.dir/data/csv.cc.o" "gcc" "src/CMakeFiles/skalla.dir/data/csv.cc.o.d"
  "/root/repo/src/data/flow_gen.cc" "src/CMakeFiles/skalla.dir/data/flow_gen.cc.o" "gcc" "src/CMakeFiles/skalla.dir/data/flow_gen.cc.o.d"
  "/root/repo/src/data/table_io.cc" "src/CMakeFiles/skalla.dir/data/table_io.cc.o" "gcc" "src/CMakeFiles/skalla.dir/data/table_io.cc.o.d"
  "/root/repo/src/data/tpcr_gen.cc" "src/CMakeFiles/skalla.dir/data/tpcr_gen.cc.o" "gcc" "src/CMakeFiles/skalla.dir/data/tpcr_gen.cc.o.d"
  "/root/repo/src/dist/async_exec.cc" "src/CMakeFiles/skalla.dir/dist/async_exec.cc.o" "gcc" "src/CMakeFiles/skalla.dir/dist/async_exec.cc.o.d"
  "/root/repo/src/dist/coordinator.cc" "src/CMakeFiles/skalla.dir/dist/coordinator.cc.o" "gcc" "src/CMakeFiles/skalla.dir/dist/coordinator.cc.o.d"
  "/root/repo/src/dist/exec.cc" "src/CMakeFiles/skalla.dir/dist/exec.cc.o" "gcc" "src/CMakeFiles/skalla.dir/dist/exec.cc.o.d"
  "/root/repo/src/dist/fault.cc" "src/CMakeFiles/skalla.dir/dist/fault.cc.o" "gcc" "src/CMakeFiles/skalla.dir/dist/fault.cc.o.d"
  "/root/repo/src/dist/plan.cc" "src/CMakeFiles/skalla.dir/dist/plan.cc.o" "gcc" "src/CMakeFiles/skalla.dir/dist/plan.cc.o.d"
  "/root/repo/src/dist/site.cc" "src/CMakeFiles/skalla.dir/dist/site.cc.o" "gcc" "src/CMakeFiles/skalla.dir/dist/site.cc.o.d"
  "/root/repo/src/dist/tree.cc" "src/CMakeFiles/skalla.dir/dist/tree.cc.o" "gcc" "src/CMakeFiles/skalla.dir/dist/tree.cc.o.d"
  "/root/repo/src/dist/warehouse.cc" "src/CMakeFiles/skalla.dir/dist/warehouse.cc.o" "gcc" "src/CMakeFiles/skalla.dir/dist/warehouse.cc.o.d"
  "/root/repo/src/expr/analysis.cc" "src/CMakeFiles/skalla.dir/expr/analysis.cc.o" "gcc" "src/CMakeFiles/skalla.dir/expr/analysis.cc.o.d"
  "/root/repo/src/expr/expr.cc" "src/CMakeFiles/skalla.dir/expr/expr.cc.o" "gcc" "src/CMakeFiles/skalla.dir/expr/expr.cc.o.d"
  "/root/repo/src/net/channel.cc" "src/CMakeFiles/skalla.dir/net/channel.cc.o" "gcc" "src/CMakeFiles/skalla.dir/net/channel.cc.o.d"
  "/root/repo/src/net/network.cc" "src/CMakeFiles/skalla.dir/net/network.cc.o" "gcc" "src/CMakeFiles/skalla.dir/net/network.cc.o.d"
  "/root/repo/src/net/serde.cc" "src/CMakeFiles/skalla.dir/net/serde.cc.o" "gcc" "src/CMakeFiles/skalla.dir/net/serde.cc.o.d"
  "/root/repo/src/olap/cube.cc" "src/CMakeFiles/skalla.dir/olap/cube.cc.o" "gcc" "src/CMakeFiles/skalla.dir/olap/cube.cc.o.d"
  "/root/repo/src/olap/multifeature.cc" "src/CMakeFiles/skalla.dir/olap/multifeature.cc.o" "gcc" "src/CMakeFiles/skalla.dir/olap/multifeature.cc.o.d"
  "/root/repo/src/olap/unpivot.cc" "src/CMakeFiles/skalla.dir/olap/unpivot.cc.o" "gcc" "src/CMakeFiles/skalla.dir/olap/unpivot.cc.o.d"
  "/root/repo/src/opt/cost_model.cc" "src/CMakeFiles/skalla.dir/opt/cost_model.cc.o" "gcc" "src/CMakeFiles/skalla.dir/opt/cost_model.cc.o.d"
  "/root/repo/src/opt/explain.cc" "src/CMakeFiles/skalla.dir/opt/explain.cc.o" "gcc" "src/CMakeFiles/skalla.dir/opt/explain.cc.o.d"
  "/root/repo/src/opt/optimizer.cc" "src/CMakeFiles/skalla.dir/opt/optimizer.cc.o" "gcc" "src/CMakeFiles/skalla.dir/opt/optimizer.cc.o.d"
  "/root/repo/src/opt/options.cc" "src/CMakeFiles/skalla.dir/opt/options.cc.o" "gcc" "src/CMakeFiles/skalla.dir/opt/options.cc.o.d"
  "/root/repo/src/relalg/operators.cc" "src/CMakeFiles/skalla.dir/relalg/operators.cc.o" "gcc" "src/CMakeFiles/skalla.dir/relalg/operators.cc.o.d"
  "/root/repo/src/sql/lexer.cc" "src/CMakeFiles/skalla.dir/sql/lexer.cc.o" "gcc" "src/CMakeFiles/skalla.dir/sql/lexer.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/CMakeFiles/skalla.dir/sql/parser.cc.o" "gcc" "src/CMakeFiles/skalla.dir/sql/parser.cc.o.d"
  "/root/repo/src/sql/to_sql.cc" "src/CMakeFiles/skalla.dir/sql/to_sql.cc.o" "gcc" "src/CMakeFiles/skalla.dir/sql/to_sql.cc.o.d"
  "/root/repo/src/sql/token.cc" "src/CMakeFiles/skalla.dir/sql/token.cc.o" "gcc" "src/CMakeFiles/skalla.dir/sql/token.cc.o.d"
  "/root/repo/src/storage/catalog.cc" "src/CMakeFiles/skalla.dir/storage/catalog.cc.o" "gcc" "src/CMakeFiles/skalla.dir/storage/catalog.cc.o.d"
  "/root/repo/src/storage/hash_index.cc" "src/CMakeFiles/skalla.dir/storage/hash_index.cc.o" "gcc" "src/CMakeFiles/skalla.dir/storage/hash_index.cc.o.d"
  "/root/repo/src/storage/partition.cc" "src/CMakeFiles/skalla.dir/storage/partition.cc.o" "gcc" "src/CMakeFiles/skalla.dir/storage/partition.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/CMakeFiles/skalla.dir/storage/table.cc.o" "gcc" "src/CMakeFiles/skalla.dir/storage/table.cc.o.d"
  "/root/repo/src/types/row.cc" "src/CMakeFiles/skalla.dir/types/row.cc.o" "gcc" "src/CMakeFiles/skalla.dir/types/row.cc.o.d"
  "/root/repo/src/types/schema.cc" "src/CMakeFiles/skalla.dir/types/schema.cc.o" "gcc" "src/CMakeFiles/skalla.dir/types/schema.cc.o.d"
  "/root/repo/src/types/value.cc" "src/CMakeFiles/skalla.dir/types/value.cc.o" "gcc" "src/CMakeFiles/skalla.dir/types/value.cc.o.d"
  "/root/repo/src/types/value_set.cc" "src/CMakeFiles/skalla.dir/types/value_set.cc.o" "gcc" "src/CMakeFiles/skalla.dir/types/value_set.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
