file(REMOVE_RECURSE
  "CMakeFiles/async_exec_test.dir/async_exec_test.cc.o"
  "CMakeFiles/async_exec_test.dir/async_exec_test.cc.o.d"
  "async_exec_test"
  "async_exec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/async_exec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
