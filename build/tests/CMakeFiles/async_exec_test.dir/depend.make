# Empty dependencies file for async_exec_test.
# This may be replaced when dependencies are built.
