file(REMOVE_RECURSE
  "CMakeFiles/dist_exec_test.dir/dist_exec_test.cc.o"
  "CMakeFiles/dist_exec_test.dir/dist_exec_test.cc.o.d"
  "dist_exec_test"
  "dist_exec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dist_exec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
