# Empty compiler generated dependencies file for dist_exec_test.
# This may be replaced when dependencies are built.
