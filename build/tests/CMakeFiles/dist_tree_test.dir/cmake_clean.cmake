file(REMOVE_RECURSE
  "CMakeFiles/dist_tree_test.dir/dist_tree_test.cc.o"
  "CMakeFiles/dist_tree_test.dir/dist_tree_test.cc.o.d"
  "dist_tree_test"
  "dist_tree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dist_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
