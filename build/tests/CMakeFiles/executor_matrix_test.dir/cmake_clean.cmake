file(REMOVE_RECURSE
  "CMakeFiles/executor_matrix_test.dir/executor_matrix_test.cc.o"
  "CMakeFiles/executor_matrix_test.dir/executor_matrix_test.cc.o.d"
  "executor_matrix_test"
  "executor_matrix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/executor_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
