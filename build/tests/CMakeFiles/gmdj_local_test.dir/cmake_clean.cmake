file(REMOVE_RECURSE
  "CMakeFiles/gmdj_local_test.dir/gmdj_local_test.cc.o"
  "CMakeFiles/gmdj_local_test.dir/gmdj_local_test.cc.o.d"
  "gmdj_local_test"
  "gmdj_local_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmdj_local_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
