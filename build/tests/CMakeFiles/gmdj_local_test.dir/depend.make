# Empty dependencies file for gmdj_local_test.
# This may be replaced when dependencies are built.
