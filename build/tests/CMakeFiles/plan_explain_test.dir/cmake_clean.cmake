file(REMOVE_RECURSE
  "CMakeFiles/plan_explain_test.dir/plan_explain_test.cc.o"
  "CMakeFiles/plan_explain_test.dir/plan_explain_test.cc.o.d"
  "plan_explain_test"
  "plan_explain_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_explain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
