file(REMOVE_RECURSE
  "CMakeFiles/query_suite_test.dir/query_suite_test.cc.o"
  "CMakeFiles/query_suite_test.dir/query_suite_test.cc.o.d"
  "query_suite_test"
  "query_suite_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_suite_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
