# Empty dependencies file for query_suite_test.
# This may be replaced when dependencies are built.
