file(REMOVE_RECURSE
  "CMakeFiles/relalg_test.dir/relalg_test.cc.o"
  "CMakeFiles/relalg_test.dir/relalg_test.cc.o.d"
  "relalg_test"
  "relalg_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relalg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
