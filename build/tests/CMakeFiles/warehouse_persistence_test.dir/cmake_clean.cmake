file(REMOVE_RECURSE
  "CMakeFiles/warehouse_persistence_test.dir/warehouse_persistence_test.cc.o"
  "CMakeFiles/warehouse_persistence_test.dir/warehouse_persistence_test.cc.o.d"
  "warehouse_persistence_test"
  "warehouse_persistence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warehouse_persistence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
