// OLAP query classes beyond plain aggregation (Sect. 2.2 of the paper):
// data cubes [Gray et al.], marginal distributions via unpivot
// [Graefe et al.], and multi-feature queries [Ross et al.] — all expressed
// as GMDJ plans and evaluated distributed.
//
//   ./build/examples/datacube_marginals

#include <cstdio>

#include "data/tpcr_gen.h"
#include "dist/warehouse.h"
#include "olap/cube.h"
#include "olap/multifeature.h"
#include "olap/unpivot.h"
#include "storage/partition.h"

int main() {
  using namespace skalla;

  TpcrConfig config;
  config.num_rows = 24000;
  config.num_customers = 2000;
  Table tpcr = GenerateTpcr(config);

  DistributedWarehouse warehouse(4);
  std::vector<Table> partitions =
      PartitionByModulo(tpcr, "NationKey", 4).ValueOrDie();
  warehouse
      .AddPartitionedTable("tpcr", std::move(partitions),
                           {"NationKey", "RegionKey", "MktSegment",
                            "OrderPriority", "Quantity"})
      .Check();

  // --- 1. Data cube over (RegionKey, MktSegment, OrderPriority) ----------
  CubeSpec cube_spec;
  cube_spec.detail_table = "tpcr";
  cube_spec.dims = {"RegionKey", "MktSegment", "OrderPriority"};
  cube_spec.aggs = {{AggKind::kCountStar, "", "orders"},
                    {AggKind::kSum, "Quantity", "total_qty"}};
  ExecStats cube_stats;
  Table cube = ComputeCubeDistributed(warehouse, cube_spec,
                                      OptimizerOptions::All(), &cube_stats)
                   .ValueOrDie();
  Table cube_ref = ComputeCubeCentralized(warehouse, cube_spec).ValueOrDie();
  std::printf("== CUBE BY (RegionKey, MktSegment, OrderPriority) ==\n");
  std::printf("%zu cube rows across %u cuboids; %llu bytes transferred; "
              "matches centralized: %s\n",
              cube.num_rows(), 1u << cube_spec.dims.size(),
              static_cast<unsigned long long>(cube_stats.TotalBytes()),
              cube.SameRows(cube_ref) ? "yes" : "NO");
  Table sample = cube;
  sample.SortRows();
  std::printf("%s\n", sample.ToString(6).c_str());

  // --- 2. Marginal distributions via the distributed machinery -----------
  ExecStats marginal_stats;
  Table marginals = ComputeMarginalsDistributed(
                        warehouse, "tpcr",
                        {"RegionKey", "MktSegment", "OrderPriority"},
                        OptimizerOptions::All(), &marginal_stats)
                        .ValueOrDie();
  marginals.SortRows();
  std::printf("== Marginal distributions (sufficient statistics) ==\n%s\n",
              marginals.ToString(8).c_str());

  // --- 3. The local unpivot operator itself ------------------------------
  Table narrow = Unpivot(tpcr, {"Quantity", "Discount"}, "Measure", "Val")
                     .ValueOrDie();
  std::printf("== Unpivot(Quantity, Discount) ==\n"
              "%zu input rows -> %zu unpivoted rows, schema %s\n\n",
              tpcr.num_rows(), narrow.num_rows(),
              narrow.schema()->ToString().c_str());

  // --- 4. Multi-feature query: orders at the per-nation minimum quantity -
  MultiFeatureSpec mf;
  mf.detail_table = "tpcr";
  mf.group_columns = {"NationKey"};
  mf.inner = {AggKind::kMin, "Quantity", "min_qty"};
  mf.compare_column = "Quantity";
  mf.compare_op = BinaryOp::kEq;
  mf.outer = {{AggKind::kCountStar, "", "at_min"}};
  GmdjExpr mf_query = BuildMultiFeatureQuery(mf).ValueOrDie();
  Table mf_result =
      warehouse.Execute(mf_query, OptimizerOptions::All()).ValueOrDie();
  mf_result.SortRowsBy({0});
  std::printf("== Multi-feature: rows at the per-nation MIN(Quantity) ==\n%s",
              mf_result.ToString(6).c_str());
  return 0;
}
