// IP network traffic analysis — the paper's motivating application
// (Sect. 1): flow-level statistics are collected at routers spread
// through the network; each router's flows stay in a local warehouse, and
// the analyses run as distributed OLAP queries.
//
// Reproduces both introduction questions:
//  (a) "On an hourly basis, what fraction of the total number of flows is
//      due to Web traffic?"
//  (b) "On an hourly basis, what fraction of the total traffic flowing
//      into the network is from IP subnets (source ASes) whose total
//      hourly traffic is within 10% of the maximum?"
//
//   ./build/examples/ip_flow_analysis

#include <cstdio>

#include "data/flow_gen.h"
#include "dist/warehouse.h"
#include "expr/builder.h"
#include "sql/parser.h"

namespace skalla {
namespace {

// (a) Hourly web fraction: group flows by hour; per hour count all flows
// and web flows (DestPort 80/443), then divide.
void HourlyWebFraction(const DistributedWarehouse& warehouse) {
  std::printf("== Hourly web-traffic fraction ==\n");
  GmdjExpr query = ParseQuery(R"(
    BASE SELECT DISTINCT Hour FROM hourly;
    MD USING hourly
       COMPUTE COUNT(*) AS total, SUM(NumBytes) AS total_bytes
       WHERE r.Hour = b.Hour
       COMPUTE COUNT(*) AS web
       WHERE r.Hour = b.Hour AND (r.DestPort = 80 OR r.DestPort = 443);
  )").ValueOrDie();

  ExecStats stats;
  Table result =
      warehouse.Execute(query, OptimizerOptions::All(), &stats).ValueOrDie();
  result.SortRowsBy({0});
  std::printf("hour  flows   web   fraction\n");
  for (size_t r = 0; r < std::min<size_t>(result.num_rows(), 6); ++r) {
    int64_t total = result.at(r, 1).int64();
    int64_t web = result.at(r, 3).int64();
    std::printf("%4lld %6lld %6lld   %.3f\n",
                static_cast<long long>(result.at(r, 0).int64()),
                static_cast<long long>(total), static_cast<long long>(web),
                total == 0 ? 0.0
                           : static_cast<double>(web) /
                                 static_cast<double>(total));
  }
  std::printf("... (%zu hours), %llu bytes transferred in %zu rounds\n\n",
              result.num_rows(),
              static_cast<unsigned long long>(stats.TotalBytes()),
              stats.NumSyncRounds());
}

// (b) Heavy-hitter sources: per (hour, source AS), total bytes; then per
// hour the max over sources; finally the share of sources within 10% of
// that maximum. The correlated chain runs as three GMDJ operators.
void HeavyHitterShare(const DistributedWarehouse& warehouse) {
  std::printf("== Share of traffic from sources within 10%% of the hourly "
              "max ==\n");

  // Stage 1 expression: per (Hour, SourceAS) traffic. Its result is used
  // as the base of the hour-level analysis below.
  GmdjExpr per_source = ParseQuery(R"(
    BASE SELECT DISTINCT Hour, SourceAS FROM hourly;
    MD USING hourly
       COMPUTE SUM(NumBytes) AS src_bytes
       WHERE r.Hour = b.Hour AND r.SourceAS = b.SourceAS;
  )").ValueOrDie();
  Table per_source_result =
      warehouse.Execute(per_source, OptimizerOptions::All()).ValueOrDie();

  // Hour-level rollup over the (small) per-source table: centralized
  // post-processing at the analysis client, as a network analyst would.
  Catalog client;
  client.Register("per_source", per_source_result);
  GmdjExpr rollup = ParseQuery(R"(
    BASE SELECT DISTINCT Hour FROM per_source;
    MD USING per_source
       COMPUTE MAX(src_bytes) AS max_bytes, SUM(src_bytes) AS all_bytes
       WHERE r.Hour = b.Hour;
    MD USING per_source
       COMPUTE SUM(src_bytes) AS heavy_bytes
       WHERE r.Hour = b.Hour AND r.src_bytes >= 0.9 * b.max_bytes;
  )").ValueOrDie();
  Table hours = EvalCentralized(rollup, client).ValueOrDie();
  hours.SortRowsBy({0});

  std::printf("hour   total_MB  heavy_MB  share\n");
  for (size_t r = 0; r < std::min<size_t>(hours.num_rows(), 6); ++r) {
    double all = hours.at(r, 2).AsDouble() / 1e6;
    double heavy = hours.at(r, 3).AsDouble() / 1e6;
    std::printf("%4lld %10.1f %9.1f  %.3f\n",
                static_cast<long long>(hours.at(r, 0).int64()), all, heavy,
                all == 0 ? 0.0 : heavy / all);
  }
  std::printf("... (%zu hours)\n\n", hours.num_rows());
}

}  // namespace
}  // namespace skalla

int main() {
  using namespace skalla;

  // Generate flows and materialize an Hour column (StartTime bucketed
  // into hours) before loading the warehouse — a real deployment would
  // store the hour at collection time.
  FlowConfig config;
  config.num_flows = 60000;
  config.num_routers = 8;
  config.num_hours = 24;
  Table flow = GenerateFlows(config);
  std::vector<Field> fields = flow.schema()->fields();
  fields.push_back(Field{"Hour", ValueType::kInt64});
  SchemaPtr with_hour = Schema::Make(std::move(fields)).ValueOrDie();
  int start_idx = flow.schema()->IndexOf("StartTime");
  Table hourly(with_hour);
  hourly.Reserve(flow.num_rows());
  for (size_t r = 0; r < flow.num_rows(); ++r) {
    Row row = flow.row(r);
    row.push_back(Value(row[static_cast<size_t>(start_idx)].int64() / 3600));
    hourly.AppendUnchecked(std::move(row));
  }

  DistributedWarehouse dw(8);
  dw.AddTablePartitionedBy(
        "hourly", hourly, "RouterId",
        {"SourceAS", "DestAS", "DestPort", "NumBytes", "Hour"})
      .Check();

  HourlyWebFraction(dw);
  HeavyHitterShare(dw);
  return 0;
}
