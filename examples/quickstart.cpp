// Quickstart: build a tiny distributed warehouse, run the paper's
// Example 1 (written in the Skalla query language), and inspect the plan,
// result, and transfer statistics.
//
//   ./build/examples/quickstart

#include <cstdio>

#include "data/flow_gen.h"
#include "dist/warehouse.h"
#include "sql/parser.h"

int main() {
  using namespace skalla;

  // 1. Generate IP-flow data and spread it over 4 sites, partitioned by
  //    the router that captured each flow (RouterId). The generator homes
  //    every SourceAS at one router, so SourceAS is a partition attribute
  //    too — exactly the premise of the paper's Example 2.
  FlowConfig config;
  config.num_flows = 20000;
  config.num_routers = 4;
  Table flow = GenerateFlows(config);

  DistributedWarehouse warehouse(/*num_sites=*/4);
  warehouse
      .AddTablePartitionedBy("flow", flow, "RouterId",
                             {"SourceAS", "DestAS", "NumBytes"})
      .Check();

  // 2. Example 1 of the paper: per (SourceAS, DestAS) pair, the number of
  //    flows and the number of flows larger than the pair's average.
  GmdjExpr query = ParseQuery(R"(
    BASE SELECT DISTINCT SourceAS, DestAS FROM flow;
    MD USING flow
       COMPUTE COUNT(*) AS cnt1, SUM(NumBytes) AS sum1
       WHERE r.SourceAS = b.SourceAS AND r.DestAS = b.DestAS;
    MD USING flow
       COMPUTE COUNT(*) AS cnt2
       WHERE r.SourceAS = b.SourceAS AND r.DestAS = b.DestAS
         AND r.NumBytes >= b.sum1 / b.cnt1;
  )").ValueOrDie();

  // 3. Plan it twice: naive, and with every Sect. 4 optimization.
  DistributedPlan naive =
      warehouse.Plan(query, OptimizerOptions::None()).ValueOrDie();
  DistributedPlan optimized =
      warehouse.Plan(query, OptimizerOptions::All()).ValueOrDie();
  std::printf("Naive plan:\n%s\n", naive.ToString(4).c_str());
  std::printf("Optimized plan:\n%s\n", optimized.ToString(4).c_str());

  // 4. Execute both; the results are identical, the traffic is not.
  ExecStats naive_stats;
  ExecStats opt_stats;
  Table result =
      warehouse.ExecutePlan(optimized, &opt_stats).ValueOrDie();
  warehouse.ExecutePlan(naive, &naive_stats).ValueOrDie();

  std::printf("Result (%zu groups), first rows:\n%s\n", result.num_rows(),
              result.ToString(8).c_str());
  std::printf("Naive execution:\n%s\n", naive_stats.ToString().c_str());
  std::printf("Optimized execution:\n%s\n", opt_stats.ToString().c_str());
  std::printf("Bytes moved: %llu -> %llu (%.1fx reduction)\n",
              static_cast<unsigned long long>(naive_stats.TotalBytes()),
              static_cast<unsigned long long>(opt_stats.TotalBytes()),
              static_cast<double>(naive_stats.TotalBytes()) /
                  static_cast<double>(opt_stats.TotalBytes()));

  // 5. Sanity: distributed == centralized.
  Table reference = warehouse.ExecuteCentralized(query).ValueOrDie();
  std::printf("Matches centralized evaluation: %s\n",
              result.SameRows(reference) ? "yes" : "NO (bug!)");
  return 0;
}
