// skalla_shell — an interactive client for the distributed warehouse.
//
// Starts with two built-in data sets loaded and partitioned across four
// sites (`flow` by RouterId, `tpcr` by NationKey), reads queries in the
// Skalla query language from stdin (terminate a query with a blank
// line), and prints EXPLAIN output, results, and transfer statistics.
//
//   ./build/examples/skalla_shell            # interactive
//   ./build/examples/skalla_shell < q.sql    # scripted
//
// Meta commands:
//   .help                  this text
//   .tables                list tables
//   .schema <table>        show a table's schema
//   .opt all|none          optimizer configuration
//   .opt +coal +igr +agr +sync   enable individual optimizations
//   .explain on|off        print plans before executing (default on)
//   .analyze on|off        print EXPLAIN ANALYZE after executing: the
//                          plan tree annotated with the measured
//                          per-stage bytes/tuples/timings (default off)
//   .trace <path>|off      enable tracing; after every query, write the
//                          accumulated Chrome trace-event JSON to <path>
//                          (open in chrome://tracing or ui.perfetto.dev)
//   .load <file.csv> <name> <partition_column>
//   .save <directory>      persist the warehouse (binary partitions)
//   .quit

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <utility>

#include "common/string_util.h"
#include "data/csv.h"
#include "data/flow_gen.h"
#include "data/tpcr_gen.h"
#include "dist/warehouse.h"
#include "obs/obs.h"
#include "obs/stats_report.h"
#include "opt/cost_model.h"
#include "opt/explain.h"
#include "serve/session.h"
#include "sql/parser.h"
#include "storage/partition.h"

namespace skalla {
namespace {

constexpr size_t kSites = 4;

class Shell {
 public:
  Shell() : warehouse_(kSites) {
    FlowConfig flow_config;
    flow_config.num_flows = 20000;
    flow_config.num_routers = static_cast<int64_t>(kSites);
    warehouse_
        .AddTablePartitionedBy("flow", GenerateFlows(flow_config),
                               "RouterId",
                               {"SourceAS", "DestAS", "DestPort",
                                "NumBytes", "NumPackets"})
        .Check();
    TpcrConfig tpcr_config;
    tpcr_config.num_rows = 24000;
    tpcr_config.num_customers = 3000;
    warehouse_
        .AddTablePartitionedBy("tpcr", GenerateTpcr(tpcr_config),
                               "NationKey",
                               {"CustKey", "CustName", "Clerk", "Quantity",
                                "ExtendedPrice"})
        .Check();
    options_ = OptimizerOptions::All();
  }

  int Run() {
    std::printf("Skalla shell — %zu sites, tables: %s\n", kSites,
                Join(warehouse_.central_catalog().TableNames(), ", ")
                    .c_str());
    std::printf("Type .help for commands; end a query with a blank "
                "line.\n\n");
    std::string pending;
    std::string line;
    Prompt(pending);
    while (std::getline(std::cin, line)) {
      std::string_view stripped = StripWhitespace(line);
      if (!pending.empty() && stripped.empty()) {
        RunQuery(pending);
        pending.clear();
      } else if (pending.empty() && !stripped.empty() &&
                 stripped[0] == '.') {
        if (!MetaCommand(stripped)) return 0;
      } else if (!stripped.empty()) {
        pending += line;
        pending += "\n";
      }
      Prompt(pending);
    }
    if (!pending.empty()) RunQuery(pending);
    return 0;
  }

 private:
  void Prompt(const std::string& pending) {
    std::printf("%s", pending.empty() ? "skalla> " : "   ...> ");
    std::fflush(stdout);
  }

  // Returns false on .quit.
  bool MetaCommand(std::string_view command) {
    std::vector<std::string> args =
        Split(std::string(StripWhitespace(command)), ' ');
    const std::string& name = args[0];
    if (name == ".quit" || name == ".exit") return false;
    if (name == ".help") {
      std::printf(
          ".tables | .schema <t> | .opt all|none|+coal|+igr|+agr|+sync | "
          ".engine auto|row|columnar | "
          ".explain on|off | .analyze on|off | .trace <path>|off | "
          ".load <csv> <name> <col> | .save <dir> | .quit\n");
    } else if (name == ".tables") {
      for (const std::string& t :
           warehouse_.central_catalog().TableNames()) {
        const Table* table =
            warehouse_.central_catalog().Get(t).ValueOrDie();
        std::printf("%s  (%zu rows)\n", t.c_str(), table->num_rows());
      }
    } else if (name == ".schema" && args.size() >= 2) {
      auto table = warehouse_.central_catalog().Get(args[1]);
      if (!table.ok()) {
        std::printf("%s\n", table.status().ToString().c_str());
      } else {
        std::printf("%s %s\n", args[1].c_str(),
                    (*table)->schema()->ToString().c_str());
      }
    } else if (name == ".opt") {
      for (size_t i = 1; i < args.size(); ++i) {
        const std::string& flag = args[i];
        if (flag == "all") options_ = OptimizerOptions::All();
        else if (flag == "none") options_ = OptimizerOptions::None();
        else if (flag == "+coal") options_.coalescing = true;
        else if (flag == "+igr") options_.indep_group_reduction = true;
        else if (flag == "+agr") options_.aware_group_reduction = true;
        else if (flag == "+sync") options_.sync_reduction = true;
        else std::printf("unknown flag %s\n", flag.c_str());
      }
      std::printf("optimizations: %s\n", options_.ToString().c_str());
    } else if (name == ".engine" && args.size() >= 2) {
      // Byte-identical either way (docs/KERNELS.md); EXPLAIN ANALYZE's
      // `engines:` line reports what actually ran.
      if (args[1] == "auto") warehouse_.set_engine(EvalEngine::kAuto);
      else if (args[1] == "row") warehouse_.set_engine(EvalEngine::kRow);
      else if (args[1] == "columnar")
        warehouse_.set_engine(EvalEngine::kColumnar);
      else {
        std::printf("unknown engine %s (auto|row|columnar)\n",
                    args[1].c_str());
        return true;
      }
      session_.reset();  // Reopen with the new engine on the next query.
      std::printf("engine: %s\n",
                  std::string(EvalEngineName(warehouse_.exec_options().engine))
                      .c_str());
    } else if (name == ".explain" && args.size() >= 2) {
      explain_ = args[1] == "on";
      std::printf("explain %s\n", explain_ ? "on" : "off");
    } else if (name == ".analyze" && args.size() >= 2) {
      analyze_ = args[1] == "on";
      std::printf("analyze %s\n", analyze_ ? "on" : "off");
    } else if (name == ".trace" && args.size() >= 2) {
      if (args[1] == "off") {
        obs::Tracer::Global().set_enabled(false);
        trace_path_.clear();
        std::printf("trace off\n");
      } else if (!obs::TracingCompiledIn()) {
        std::printf("tracing unavailable: built with SKALLA_TRACING=OFF\n");
      } else {
        trace_path_ = args[1];
        obs::Tracer::Global().set_enabled(true);
        std::printf("tracing to %s (written after every query)\n",
                    trace_path_.c_str());
      }
    } else if (name == ".load" && args.size() >= 4) {
      LoadCsv(args[1], args[2], args[3]);
    } else if (name == ".save" && args.size() >= 2) {
      Status s = warehouse_.Save(args[1]);
      std::printf("%s\n", s.ok() ? StrCat("saved warehouse under ",
                                           args[1])
                                      .c_str()
                                  : s.ToString().c_str());
    } else {
      std::printf("unrecognized command; try .help\n");
    }
    return true;
  }

  void LoadCsv(const std::string& path, const std::string& name,
               const std::string& partition_column) {
    auto table = ReadCsvFile(path);
    if (!table.ok()) {
      std::printf("%s\n", table.status().ToString().c_str());
      return;
    }
    std::vector<std::string> tracked;
    for (const Field& f : table->schema()->fields()) {
      tracked.push_back(f.name);
    }
    Status s = warehouse_.AddTablePartitionedBy(name, *table,
                                                partition_column, tracked);
    if (!s.ok()) {
      std::printf("%s\n", s.ToString().c_str());
      return;
    }
    // The session's site pool snapshots the warehouse at open time;
    // drop it so the next query sees the new table (and no stale
    // cached results).
    session_.reset();
    std::printf("loaded %zu rows into '%s', partitioned on %s across %zu "
                "sites\n",
                table->num_rows(), name.c_str(), partition_column.c_str(),
                kSites);
  }

  void RunQuery(const std::string& text) {
    auto parsed = ParseQuery(text);
    if (!parsed.ok()) {
      std::printf("%s\n", parsed.status().ToString().c_str());
      return;
    }
    auto plan = warehouse_.Plan(*parsed, options_);
    if (!plan.ok()) {
      std::printf("%s\n", plan.status().ToString().c_str());
      return;
    }
    if (explain_) {
      CostModel model(kSites);
      for (const std::string& table :
           warehouse_.central_catalog().TableNames()) {
        if (warehouse_.partition_info(table) != nullptr) {
          model.SetPartitionInfo(table, warehouse_.partition_info(table));
        }
      }
      std::printf("%s",
                  ExplainPlan(*parsed, *plan, kSites, options_, &model)
                      .c_str());
    }
    if (session_ == nullptr) {
      serve::SessionOptions session_options;
      // SessionOptions::exec replaces the warehouse's own executor
      // options, so .engine changes must be carried across explicitly.
      session_options.exec = warehouse_.exec_options();
      auto session = serve::QuerySession::Open(&warehouse_, session_options);
      if (!session.ok()) {
        std::printf("%s\n", session.status().ToString().c_str());
        return;
      }
      session_ = std::make_unique<serve::QuerySession>(std::move(*session));
    }
    auto submission = session_->SubmitPlan(*plan);
    auto answer = submission.result.get();
    if (!answer.ok()) {
      std::printf("%s\n", answer.status().ToString().c_str());
      return;
    }
    ExecStats stats = std::move(answer->stats);
    Table table = std::move(answer->table);
    table.SortRows();
    std::printf("%s", table.ToString(20).c_str());
    if (analyze_) {
      obs::StatsReportOptions report_options;
      report_options.include_trace_tree = !trace_path_.empty();
      std::printf("(%zu rows)\n%s\n", table.num_rows(),
                  obs::FormatStatsReport(*plan, stats, kSites,
                                         report_options)
                      .c_str());
    } else {
      std::printf("(%zu rows)\n%s\n", table.num_rows(),
                  stats.ToString().c_str());
    }
    if (!trace_path_.empty()) {
      if (!obs::Tracer::Global().WriteChromeJson(trace_path_)) {
        std::printf("failed to write trace to %s\n", trace_path_.c_str());
      }
    }
  }

  DistributedWarehouse warehouse_;
  // Lazily-opened serving session over warehouse_'s partitions; all
  // shell queries go through it (and share its sub-aggregate cache).
  std::unique_ptr<serve::QuerySession> session_;
  OptimizerOptions options_;
  bool explain_ = true;
  bool analyze_ = false;
  std::string trace_path_;
};

}  // namespace
}  // namespace skalla

int main() { return skalla::Shell().Run(); }
