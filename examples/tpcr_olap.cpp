// TPC-R style distributed OLAP — the paper's evaluation setting: a
// denormalized order/customer relation partitioned on NationKey across
// eight sites. Shows the optimizer's EXPLAIN output and the effect of
// each Sect. 4 optimization on one correlated-aggregate query.
//
//   ./build/examples/tpcr_olap

#include <cstdio>

#include "data/tpcr_gen.h"
#include "dist/warehouse.h"
#include "sql/parser.h"
#include "storage/partition.h"

int main() {
  using namespace skalla;

  TpcrConfig config;
  config.num_rows = 48000;
  config.num_customers = 6000;
  Table tpcr = GenerateTpcr(config);

  DistributedWarehouse warehouse(8);
  std::vector<Table> partitions =
      PartitionByModulo(tpcr, "NationKey", 8).ValueOrDie();
  warehouse
      .AddPartitionedTable("tpcr", std::move(partitions),
                           {"NationKey", "CustKey", "CustName", "Clerk",
                            "Quantity", "ExtendedPrice"})
      .Check();

  // Per customer: order lines, average quantity, and the number and value
  // of above-average lines — a correlated multi-feature query.
  GmdjExpr query = ParseQuery(R"(
    BASE SELECT DISTINCT CustKey, CustName FROM tpcr;
    MD USING tpcr
       COMPUTE COUNT(*) AS lines, AVG(Quantity) AS avg_qty
       WHERE r.CustKey = b.CustKey AND r.CustName = b.CustName;
    MD USING tpcr
       COMPUTE COUNT(*) AS big_lines, SUM(ExtendedPrice) AS big_value
       WHERE r.CustKey = b.CustKey AND r.CustName = b.CustName
         AND r.Quantity >= b.avg_qty;
  )").ValueOrDie();

  struct NamedOptions {
    const char* name;
    OptimizerOptions opts;
  };
  OptimizerOptions indep;
  indep.indep_group_reduction = true;
  OptimizerOptions aware = indep;
  aware.aware_group_reduction = true;
  OptimizerOptions sync;
  sync.sync_reduction = true;
  const NamedOptions variants[] = {
      {"none", OptimizerOptions::None()},
      {"indep-GR", indep},
      {"indep+aware-GR", aware},
      {"sync-reduction", sync},
      {"all", OptimizerOptions::All()},
  };

  Table reference = warehouse.ExecuteCentralized(query).ValueOrDie();
  std::printf("Query groups: %zu customers\n\n", reference.num_rows());

  std::printf("%-16s %10s %14s %8s %8s\n", "optimizations", "time_ms",
              "bytes", "rounds", "correct");
  for (const NamedOptions& variant : variants) {
    ExecStats stats;
    Table result =
        warehouse.Execute(query, variant.opts, &stats).ValueOrDie();
    std::printf("%-16s %10.2f %14llu %8zu %8s\n", variant.name,
                stats.ResponseTime() * 1e3,
                static_cast<unsigned long long>(stats.TotalBytes()),
                stats.NumSyncRounds(),
                result.SameRows(reference) ? "yes" : "NO");
  }

  std::printf("\nEXPLAIN (all optimizations):\n%s",
              warehouse.Plan(query, OptimizerOptions::All())
                  .ValueOrDie()
                  .ToString(8)
                  .c_str());

  Table sample = reference;
  sample.SortRowsBy({0});
  std::printf("\nSample result rows:\n%s", sample.ToString(5).c_str());
  return 0;
}
