// Workload driver: runs a mixed OLAP workload against the distributed
// warehouse under every optimizer configuration and emits a CSV of the
// measurements — the tool you'd point a plotting script at to regenerate
// paper-style charts from your own queries.
//
//   ./build/examples/workload_driver            # prints CSV to stdout

#include <cstdio>

#include "data/tpcr_gen.h"
#include "dist/warehouse.h"
#include "opt/cost_model.h"
#include "sql/parser.h"
#include "storage/partition.h"

namespace skalla {
namespace {

struct WorkloadQuery {
  const char* name;
  const char* text;
};

const WorkloadQuery kWorkload[] = {
    {"q1_customer_profile", R"(
      BASE SELECT DISTINCT CustKey FROM tpcr;
      MD USING tpcr
         COMPUTE COUNT(*) AS lines, AVG(Quantity) AS avg_qty,
                 STDDEV(Quantity) AS sd_qty
         WHERE r.CustKey = b.CustKey;
    )"},
    {"q2_above_average", R"(
      BASE SELECT DISTINCT CustKey FROM tpcr;
      MD USING tpcr
         COMPUTE AVG(ExtendedPrice) AS avg_price
         WHERE r.CustKey = b.CustKey;
      MD USING tpcr
         COMPUTE COUNT(*) AS pricey, SUM(ExtendedPrice) AS pricey_value
         WHERE r.CustKey = b.CustKey AND r.ExtendedPrice >= b.avg_price;
    )"},
    {"q3_clerk_rollup", R"(
      BASE SELECT DISTINCT Clerk FROM tpcr;
      MD USING tpcr
         COMPUTE COUNT(*) AS orders, SUM(Quantity) AS qty
         WHERE r.Clerk = b.Clerk
         COMPUTE COUNT(*) AS urgent
         WHERE r.Clerk = b.Clerk AND r.OrderPriority = '1-URGENT';
    )"},
    {"q4_segment_matrix", R"(
      BASE SELECT DISTINCT MktSegment, OrderPriority FROM tpcr;
      MD USING tpcr
         COMPUTE COUNT(*) AS n, AVG(Quantity) AS avg_qty
         WHERE r.MktSegment = b.MktSegment
           AND r.OrderPriority = b.OrderPriority;
    )"},
};

void Run() {
  const size_t kSites = 8;
  TpcrConfig config;
  config.num_rows = 48000;
  config.num_customers = 6000;
  Table tpcr = GenerateTpcr(config);

  DistributedWarehouse dw(kSites);
  std::vector<Table> partitions =
      PartitionByModulo(tpcr, "NationKey", kSites).ValueOrDie();
  dw.AddPartitionedTable("tpcr", std::move(partitions),
                         {"NationKey", "CustKey", "Clerk", "MktSegment",
                          "OrderPriority", "Quantity", "ExtendedPrice"})
      .Check();

  CostModel model(kSites);
  model.SetPartitionInfo("tpcr", dw.partition_info("tpcr"));

  std::printf("query,optimizations,rounds,groups,bytes,tuples,"
              "estimate_tuples,estimate_exact,time_ms\n");
  for (const WorkloadQuery& wq : kWorkload) {
    GmdjExpr query = ParseQuery(wq.text).ValueOrDie();
    for (int mask = 0; mask < 16; ++mask) {
      OptimizerOptions opts;
      opts.coalescing = mask & 1;
      opts.indep_group_reduction = mask & 2;
      opts.aware_group_reduction = mask & 4;
      opts.sync_reduction = mask & 8;

      DistributedPlan plan = dw.Plan(query, opts).ValueOrDie();
      auto estimate = model.Estimate(plan);

      ExecStats stats;
      Table result = dw.ExecutePlan(plan, &stats).ValueOrDie();
      std::printf(
          "%s,%s,%zu,%zu,%llu,%llu,%s,%s,%.2f\n", wq.name,
          opts.ToString().c_str(), stats.NumSyncRounds(), result.num_rows(),
          static_cast<unsigned long long>(stats.TotalBytes()),
          static_cast<unsigned long long>(stats.TotalTuplesTransferred()),
          estimate.ok()
              ? std::to_string(estimate->TotalTuples()).c_str()
              : "n/a",
          estimate.ok() ? (estimate->exact ? "yes" : "bound") : "n/a",
          stats.ResponseTime() * 1e3);
    }
  }
}

}  // namespace
}  // namespace skalla

int main() {
  skalla::Run();
  return 0;
}
