#!/usr/bin/env python3
"""Validate a Skalla Chrome trace-event JSON dump.

Used by CI after a multi-process `skalla-rpc-query --trace-out=` run to
check the merged cross-process timeline (docs/OBSERVABILITY.md):

  - the file is a valid Chrome trace-event JSON array, every complete
    ("X") event carrying name/cat/ts/dur/pid/tid;
  - complete events span at least --min-pids distinct process lanes
    (coordinator pid 1 + one lane per imported site process), each with
    a process_name metadata record;
  - no unparented remote spans: every X event outside pid 1 has a
    parent reference that resolves to an exported span id, i.e. the
    site subtrees really are grafted under coordinator spans;
  - at least one `site.round:` span exists and parents under an
    `rpc.round` span.

Stdlib only. Exit 0 on success, 1 with a message on any violation.
"""

import argparse
import json
import sys


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace-event JSON file")
    parser.add_argument("--min-pids", type=int, default=2,
                        help="minimum distinct pids among X events")
    args = parser.parse_args()

    try:
        with open(args.trace) as f:
            events = json.load(f)
    except (OSError, ValueError) as e:
        fail(f"cannot load {args.trace}: {e}")
    if not isinstance(events, list) or not events:
        fail("trace is not a non-empty JSON array")

    spans = [e for e in events if e.get("ph") == "X"]
    if not spans:
        fail("no complete (ph=X) events")
    for e in spans:
        for key in ("name", "cat", "ts", "dur", "pid", "tid"):
            if key not in e:
                fail(f"X event missing '{key}': {e}")

    pids = {e["pid"] for e in spans}
    if len(pids) < args.min_pids:
        fail(f"only {len(pids)} process lane(s) {sorted(pids)}, "
             f"need >= {args.min_pids}")

    named = {e["pid"] for e in events
             if e.get("ph") == "M" and e.get("name") == "process_name"}
    unnamed = pids - named
    if unnamed:
        fail(f"pids without a process_name record: {sorted(unnamed)}")

    ids = {e["args"]["id"] for e in spans if "id" in e.get("args", {})}
    rpc_round_ids = {e["args"]["id"] for e in spans
                     if e["name"] == "rpc.round" and "id" in e.get("args", {})}

    site_rounds = 0
    for e in spans:
        attrs = e.get("args", {})
        if e["pid"] != 1:
            parent = attrs.get("parent")
            if parent is None:
                fail(f"remote span without a parent: {e}")
            if parent not in ids:
                fail(f"remote span parent {parent} resolves to no exported "
                     f"id: {e}")
        if e["name"].startswith("site.round:"):
            site_rounds += 1
            if attrs.get("parent") not in rpc_round_ids:
                fail(f"site round not parented under an rpc.round span: {e}")
    if site_rounds == 0:
        fail("no site.round:* spans — site subtrees were not imported")

    print(f"check_trace: OK: {len(spans)} spans across {len(pids)} "
          f"process lanes, {site_rounds} site rounds grafted")


if __name__ == "__main__":
    main()
