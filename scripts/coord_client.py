#!/usr/bin/env python3
"""Minimal skalla-coord client: send one request, print the reply.

    coord_client.py HOST:PORT 'QUERY TEXT'     # query (blank line added)
    coord_client.py HOST:PORT .shutdown        # or .cancel <id>
    echo 'QUERY' | coord_client.py HOST:PORT   # query from stdin

The coordinator's protocol is line-oriented: query text terminated by a
blank line (dot-commands are a single line), reply streamed back and
terminated by a line reading "END" (docs/SERVING.md). Exits 0 on an OK
or BYE reply, 1 otherwise.
"""

import socket
import sys


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    host, _, port = sys.argv[1].rpartition(":")
    text = sys.argv[2] if len(sys.argv) > 2 else sys.stdin.read()
    text = text.strip("\n")
    request = text + "\n" if text.startswith(".") else text + "\n\n"

    with socket.create_connection((host or "127.0.0.1", int(port))) as sock:
        sock.sendall(request.encode())
        reply = b""
        while not reply.endswith(b"\nEND\n") and reply != b"END\n":
            chunk = sock.recv(65536)
            if not chunk:
                break
            reply += chunk

    body = reply.decode(errors="replace")
    sys.stdout.write(body[: -len("END\n")] if body.endswith("END\n") else body)
    return 0 if body.startswith(("OK", "BYE")) else 1


if __name__ == "__main__":
    sys.exit(main())
