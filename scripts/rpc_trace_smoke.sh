#!/usr/bin/env bash
# End-to-end trace smoke: spawn a real multi-process cluster, run one
# query through skalla-rpc-query with --trace-out, and validate the
# merged cross-process timeline with scripts/check_trace.py.
#
#   scripts/rpc_trace_smoke.sh [BUILD_DIR]   (default: ./build)
#
# Exercises the full v4 observability path outside the test binaries:
# TraceContext propagation, site-side RoundTraceCapture, RoundProfile
# shipping, ImportRemoteSpans lane merging, and the ObsSession dump.
set -euo pipefail

BUILD_DIR="${1:-build}"
SITES=4
WORK="$(mktemp -d)"
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

"$BUILD_DIR/tools/skalla-dataset" --out "$WORK/wh" --sites "$SITES" \
    --flows 2000 --tpcr-rows 2000

# Launch one site process per partition on an ephemeral port; each
# announces "LISTENING port=<p>" on stdout once bound.
ENDPOINTS=""
for i in $(seq 0 $((SITES - 1))); do
  "$BUILD_DIR/tools/skalla-site" --data "$WORK/wh" --site "$i" --port 0 \
      >"$WORK/site$i.log" 2>&1 &
  PIDS+=($!)
done
for i in $(seq 0 $((SITES - 1))); do
  port=""
  for _ in $(seq 1 100); do
    port="$(sed -n 's/^LISTENING port=\([0-9]*\).*/\1/p' "$WORK/site$i.log")"
    [ -n "$port" ] && break
    sleep 0.1
  done
  if [ -z "$port" ]; then
    echo "site $i never announced its port:" >&2
    cat "$WORK/site$i.log" >&2
    exit 1
  fi
  ENDPOINTS="${ENDPOINTS:+$ENDPOINTS,}127.0.0.1:$port"
done

# --shutdown skips the stdin read, so the query goes in via --query.
cat >"$WORK/query.gmdj" <<'EOF'
BASE SELECT DISTINCT SourceAS FROM flow;
MD USING flow
   COMPUTE COUNT(*) AS flows, SUM(NumBytes) AS bytes
   WHERE r.SourceAS = b.SourceAS;
EOF
"$BUILD_DIR/tools/skalla-rpc-query" --endpoints "$ENDPOINTS" \
    --query "$WORK/query.gmdj" \
    --trace-out="$WORK/trace.json" --metrics-out="$WORK/metrics.json" \
    --explain --site-stats --shutdown | tee "$WORK/query.out"

# The report must carry the per-site profile table and the wire line,
# and every endpoint must have answered kGetStats.
grep -q 'site    wall_ms' "$WORK/query.out"
grep -q 'bytes on the wire' "$WORK/query.out"
[ "$(grep -c '^SITE [0-9]* STATS {' "$WORK/query.out")" -eq "$SITES" ]

# Coordinator lane + one lane per site process.
python3 "$(dirname "$0")/check_trace.py" "$WORK/trace.json" \
    --min-pids $((SITES + 1))
python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$WORK/metrics.json"
echo "rpc_trace_smoke: OK"
