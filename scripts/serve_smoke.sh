#!/usr/bin/env bash
# Serving-path smoke: a real multi-process cluster behind skalla-coord,
# hit by concurrent clients over the line protocol.
#
#   scripts/serve_smoke.sh [BUILD_DIR]   (default: ./build)
#
# Spawns 4 skalla-site processes, one skalla-coord over their endpoints,
# then 8 concurrent clients (scripts/coord_client.py) submitting 4
# distinct queries twice each. Checks every reply is OK, that both
# submissions of each query return byte-identical tables, that a repeat
# query is served from the sub-aggregate cache (zero bytes transferred),
# and validates the coordinator's merged cross-process trace with
# scripts/check_trace.py.
set -euo pipefail

BUILD_DIR="${1:-build}"
SITES=4
WORK="$(mktemp -d)"
PIDS=()
HERE="$(dirname "$0")"

cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

wait_port() {  # wait_port LOGFILE NAME -> port
  local port=""
  for _ in $(seq 1 100); do
    port="$(sed -n 's/^LISTENING port=\([0-9]*\).*/\1/p' "$1")"
    [ -n "$port" ] && break
    sleep 0.1
  done
  if [ -z "$port" ]; then
    echo "$2 never announced its port:" >&2
    cat "$1" >&2
    exit 1
  fi
  echo "$port"
}

"$BUILD_DIR/tools/skalla-dataset" --out "$WORK/wh" --sites "$SITES" \
    --flows 2000 --tpcr-rows 2000

ENDPOINTS=""
for i in $(seq 0 $((SITES - 1))); do
  "$BUILD_DIR/tools/skalla-site" --data "$WORK/wh" --site "$i" --port 0 \
      >"$WORK/site$i.log" 2>&1 &
  PIDS+=($!)
done
for i in $(seq 0 $((SITES - 1))); do
  port="$(wait_port "$WORK/site$i.log" "site $i")"
  ENDPOINTS="${ENDPOINTS:+$ENDPOINTS,}127.0.0.1:$port"
done

"$BUILD_DIR/tools/skalla-coord" --endpoints "$ENDPOINTS" --port 0 \
    --max-concurrent 8 --shutdown-sites \
    --trace-out="$WORK/trace.json" --metrics-out="$WORK/metrics.json" \
    >"$WORK/coord.log" 2>&1 &
COORD_PID=$!
PIDS+=($COORD_PID)
COORD="127.0.0.1:$(wait_port "$WORK/coord.log" "coord")"

QUERIES=(
  'BASE SELECT DISTINCT SourceAS FROM flow;
   MD USING flow COMPUTE COUNT(*) AS flows, SUM(NumBytes) AS bytes
      WHERE r.SourceAS = b.SourceAS;'
  'BASE SELECT DISTINCT DestAS FROM flow;
   MD USING flow COMPUTE COUNT(*) AS flows WHERE r.DestAS = b.DestAS;'
  'BASE SELECT DISTINCT SourceAS, DestAS FROM flow;
   MD USING flow COMPUTE COUNT(*) AS c, SUM(NumBytes) AS s
      WHERE r.SourceAS = b.SourceAS AND r.DestAS = b.DestAS;
   MD USING flow COMPUTE COUNT(*) AS big
      WHERE r.SourceAS = b.SourceAS AND r.DestAS = b.DestAS
        AND r.NumBytes >= b.s / b.c;'
  'BASE SELECT DISTINCT SourceAS FROM flow;
   MD USING flow COMPUTE MAX(NumBytes) AS peak WHERE r.SourceAS = b.SourceAS;'
)

# 8 concurrent clients: each of the 4 queries submitted twice, all
# in flight at once against the same session.
CLIENT_PIDS=()
for c in $(seq 0 7); do
  q=$((c % ${#QUERIES[@]}))
  python3 "$HERE/coord_client.py" "$COORD" "${QUERIES[$q]}" \
      >"$WORK/client$c.out" 2>"$WORK/client$c.err" &
  CLIENT_PIDS+=($!)
done
for pid in "${CLIENT_PIDS[@]}"; do wait "$pid"; done

# Every reply is OK, and the two submissions of each query returned
# byte-identical tables (the reply is "OK <id> <rows>", the table, then
# the stats block, which may legitimately differ between a cache miss
# and a hit).
table_of() { sed -e 1d -e '/^round \+sync/,$d' -e '/^total:/,$d' "$1"; }
for c in $(seq 0 7); do
  head -1 "$WORK/client$c.out" | grep -q '^OK ' || {
    echo "client $c did not get an OK reply:" >&2
    cat "$WORK/client$c.out" "$WORK/client$c.err" >&2
    exit 1
  }
done
for c in $(seq 0 3); do
  if ! diff <(table_of "$WORK/client$c.out") \
            <(table_of "$WORK/client$((c + 4)).out") >/dev/null; then
    echo "clients $c and $((c + 4)) ran the same query but disagreed:" >&2
    diff <(table_of "$WORK/client$c.out") \
         <(table_of "$WORK/client$((c + 4)).out") >&2 || true
    exit 1
  fi
done

# A sequential repeat is a sub-aggregate cache hit: zero rounds, zero
# bytes, and the table still matches the original answer.
python3 "$HERE/coord_client.py" "$COORD" "${QUERIES[0]}" >"$WORK/repeat.out"
grep -q '^total: 0 bytes, 0 tuples' "$WORK/repeat.out"
diff <(table_of "$WORK/repeat.out") <(table_of "$WORK/client0.out")

python3 "$HERE/coord_client.py" "$COORD" .shutdown
wait "$COORD_PID"

# Coordinator lane + one lane per site process in the merged trace.
python3 "$HERE/check_trace.py" "$WORK/trace.json" --min-pids $((SITES + 1))
python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$WORK/metrics.json"
echo "serve_smoke: OK"
