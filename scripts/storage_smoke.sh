#!/usr/bin/env bash
# Disk-backed storage smoke: the same queries over the same data must be
# byte-identical whether sites serve resident tables or page fixed-size
# chunks through a buffer budget far below the partition size.
#
#   scripts/storage_smoke.sh [BUILD_DIR]   (default: ./build)
#
# Generates the benchmark warehouse twice from one seed — once eager
# (version-1 row files), once chunked (version-2 layout, tpcr streamed
# straight to chunk files) — then runs a query mix against a real
# 4-site cluster over each and diffs the reply tables. The chunked
# cluster runs with --buffer-bytes small enough that every partition
# must be paged.
set -euo pipefail

BUILD_DIR="${1:-build}"
SITES=4
BUDGET=32768
WORK="$(mktemp -d)"
PIDS=()
HERE="$(dirname "$0")"

cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

wait_port() {  # wait_port LOGFILE NAME -> port
  local port=""
  for _ in $(seq 1 100); do
    port="$(sed -n 's/^LISTENING port=\([0-9]*\).*/\1/p' "$1")"
    [ -n "$port" ] && break
    sleep 0.1
  done
  if [ -z "$port" ]; then
    echo "$2 never announced its port:" >&2
    cat "$1" >&2
    exit 1
  fi
  echo "$port"
}

"$BUILD_DIR/tools/skalla-dataset" --out "$WORK/eager" --sites "$SITES" \
    --flows 3000 --tpcr-rows 6000
"$BUILD_DIR/tools/skalla-dataset" --out "$WORK/chunked" --sites "$SITES" \
    --flows 3000 --tpcr-rows 6000 --chunked --chunk-rows 512

# The chunked directory really is the version-2 layout...
head -1 "$WORK/chunked/MANIFEST" | grep -q '^skalla-warehouse 2 chunked$'
test -f "$WORK/chunked/STATS"
ls "$WORK/chunked"/tpcr.part*.skc >/dev/null
# ...and the budget is genuinely below the partitions it will page.
largest="$(wc -c "$WORK/chunked"/tpcr.part*.skc | sort -n | tail -2 | head -1 \
    | awk '{print $1}')"
if [ "$largest" -le "$BUDGET" ]; then
  echo "budget $BUDGET does not undercut partition size $largest" >&2
  exit 1
fi

QUERIES=(
  'BASE SELECT DISTINCT Clerk FROM tpcr;
   MD USING tpcr COMPUTE COUNT(*) AS orders, SUM(Quantity) AS q
      WHERE r.Clerk = b.Clerk;
   MD USING tpcr COMPUTE COUNT(*) AS heavy
      WHERE r.Clerk = b.Clerk AND r.Quantity >= b.q / b.orders;'
  'BASE SELECT DISTINCT NationKey FROM tpcr;
   MD USING tpcr COMPUTE COUNT(*) AS c, SUM(ExtendedPrice) AS revenue
      WHERE r.NationKey = b.NationKey;'
  'BASE SELECT DISTINCT SourceAS FROM flow;
   MD USING flow COMPUTE COUNT(*) AS flows, SUM(NumBytes) AS bytes
      WHERE r.SourceAS = b.SourceAS;'
)

# run_cluster NAME DATA_DIR [EXTRA SITE FLAGS...]: spawn sites + coord,
# run every query, leave tables in $WORK/NAME.q<i>.
run_cluster() {
  local name="$1" data="$2"
  shift 2
  local cluster_pids=() endpoints="" port i
  for i in $(seq 0 $((SITES - 1))); do
    "$BUILD_DIR/tools/skalla-site" --data "$data" --site "$i" --port 0 "$@" \
        >"$WORK/$name-site$i.log" 2>&1 &
    cluster_pids+=($!)
    PIDS+=($!)
  done
  for i in $(seq 0 $((SITES - 1))); do
    port="$(wait_port "$WORK/$name-site$i.log" "$name site $i")"
    endpoints="${endpoints:+$endpoints,}127.0.0.1:$port"
  done
  "$BUILD_DIR/tools/skalla-coord" --endpoints "$endpoints" --port 0 \
      --shutdown-sites >"$WORK/$name-coord.log" 2>&1 &
  local coord_pid=$!
  cluster_pids+=($coord_pid)
  PIDS+=($coord_pid)
  local coord="127.0.0.1:$(wait_port "$WORK/$name-coord.log" "$name coord")"

  for i in "${!QUERIES[@]}"; do
    python3 "$HERE/coord_client.py" "$coord" "${QUERIES[$i]}" \
        >"$WORK/$name.q$i.raw"
    head -1 "$WORK/$name.q$i.raw" | grep -q '^OK ' || {
      echo "$name query $i failed:" >&2
      cat "$WORK/$name.q$i.raw" >&2
      exit 1
    }
    # Keep the table only: the stats block legitimately differs.
    sed -e 1d -e '/^round \+sync/,$d' -e '/^total:/,$d' \
        "$WORK/$name.q$i.raw" >"$WORK/$name.q$i"
  done
  python3 "$HERE/coord_client.py" "$coord" .shutdown
  wait "$coord_pid"
  for pid in "${cluster_pids[@]}"; do wait "$pid" 2>/dev/null || true; done
}

run_cluster eager "$WORK/eager"
run_cluster paged "$WORK/chunked" --buffer-bytes "$BUDGET"

for i in "${!QUERIES[@]}"; do
  if ! diff "$WORK/eager.q$i" "$WORK/paged.q$i" >/dev/null; then
    echo "query $i: paged cluster disagrees with resident cluster:" >&2
    diff "$WORK/eager.q$i" "$WORK/paged.q$i" >&2 || true
    exit 1
  fi
  test -s "$WORK/eager.q$i"  # non-empty answer, not trivially equal
done

echo "storage_smoke: OK"
