#include "agg/accumulator.h"

namespace skalla {

void Accumulator::Update(const Value& v) {
  switch (kind_) {
    case AggKind::kCountStar:
      ++count_;
      return;
    case AggKind::kCount:
      if (!v.is_null()) ++count_;
      return;
    case AggKind::kSum:
      if (v.is_null() || !v.is_numeric()) return;
      any_ = true;
      if (v.is_int64() && all_int_) {
        isum_ += v.int64();
      } else {
        if (all_int_) {
          dsum_ = static_cast<double>(isum_);
          all_int_ = false;
        }
        dsum_ += v.AsDouble();
      }
      return;
    case AggKind::kMin:
      if (v.is_null()) return;
      if (!any_ || v.Compare(extreme_) < 0) extreme_ = v;
      any_ = true;
      return;
    case AggKind::kMax:
      if (v.is_null()) return;
      if (!any_ || v.Compare(extreme_) > 0) extreme_ = v;
      any_ = true;
      return;
    case AggKind::kSumSq:
      if (v.is_null() || !v.is_numeric()) return;
      any_ = true;
      if (all_int_) {
        dsum_ = static_cast<double>(isum_);
        all_int_ = false;
      }
      dsum_ += v.AsDouble() * v.AsDouble();
      return;
    case AggKind::kAvg:
    case AggKind::kVarPop:
    case AggKind::kStdDevPop:
      // Algebraic aggregates never appear as sub-aggregates (Decompose
      // splits them into SUM/SUMSQ/COUNT parts).
      return;
  }
}

void Accumulator::MergeFrom(const Accumulator& other) {
  switch (kind_) {
    case AggKind::kCountStar:
    case AggKind::kCount:
      count_ += other.count_;
      return;
    case AggKind::kSum:
    case AggKind::kSumSq:
      if (!other.any_) return;
      if (other.all_int_ && all_int_) {
        isum_ += other.isum_;
      } else {
        if (all_int_) {
          dsum_ = static_cast<double>(isum_);
          all_int_ = false;
        }
        dsum_ += other.all_int_ ? static_cast<double>(other.isum_)
                                : other.dsum_;
      }
      any_ = true;
      return;
    case AggKind::kMin:
      if (other.any_) Update(other.extreme_);
      return;
    case AggKind::kMax:
      if (other.any_) Update(other.extreme_);
      return;
    case AggKind::kAvg:
    case AggKind::kVarPop:
    case AggKind::kStdDevPop:
      return;
  }
}

Value Accumulator::Final() const {
  switch (kind_) {
    case AggKind::kCountStar:
    case AggKind::kCount:
      return Value(count_);
    case AggKind::kSum:
    case AggKind::kSumSq:
      if (!any_) return Value::Null();
      return all_int_ ? Value(isum_) : Value(dsum_);
    case AggKind::kMin:
    case AggKind::kMax:
      return any_ ? extreme_ : Value::Null();
    case AggKind::kAvg:
    case AggKind::kVarPop:
    case AggKind::kStdDevPop:
      return Value::Null();
  }
  return Value::Null();
}

}  // namespace skalla
