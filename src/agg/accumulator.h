// Streaming accumulators for local (site-side) aggregate evaluation.

#ifndef SKALLA_AGG_ACCUMULATOR_H_
#define SKALLA_AGG_ACCUMULATOR_H_

#include <cstdint>

#include "agg/aggregate.h"
#include "types/value.h"

namespace skalla {

/// Accumulates one sub-aggregate over the detail tuples matched by one
/// base tuple. Cheap to construct and copy; the GMDJ evaluator keeps a
/// matrix of these (|B| rows x #parts).
class Accumulator {
 public:
  Accumulator() = default;
  explicit Accumulator(AggKind kind) : kind_(kind) {}

  /// Folds one input value in. For COUNT(*) the value is ignored; for the
  /// other kinds NULL inputs are skipped per SQL semantics.
  void Update(const Value& v);

  /// Folds a partial value produced by another accumulator of the same
  /// kind (used by the pre-aggregation fast path).
  void MergeFrom(const Accumulator& other);

  /// The sub-aggregate value: COUNT over nothing is 0, SUM/MIN/MAX over
  /// nothing is NULL.
  Value Final() const;

  AggKind kind() const { return kind_; }

 private:
  AggKind kind_ = AggKind::kCountStar;
  int64_t count_ = 0;       // COUNT / non-null input count.
  bool any_ = false;        // Any non-null input folded in.
  bool all_int_ = true;     // SUM stays INT64 while true.
  int64_t isum_ = 0;
  double dsum_ = 0.0;
  Value extreme_;           // MIN/MAX running value.
};

}  // namespace skalla

#endif  // SKALLA_AGG_ACCUMULATOR_H_
