#include "agg/aggregate.h"

#include <cmath>

#include "common/macros.h"
#include "common/string_util.h"

namespace skalla {

std::string_view AggKindToString(AggKind kind) {
  switch (kind) {
    case AggKind::kCountStar:
      return "COUNT(*)";
    case AggKind::kCount:
      return "COUNT";
    case AggKind::kSum:
      return "SUM";
    case AggKind::kAvg:
      return "AVG";
    case AggKind::kMin:
      return "MIN";
    case AggKind::kMax:
      return "MAX";
    case AggKind::kVarPop:
      return "VAR";
    case AggKind::kStdDevPop:
      return "STDDEV";
    case AggKind::kSumSq:
      return "SUMSQ";
  }
  return "?";
}

std::string AggSpec::ToString() const {
  if (kind == AggKind::kCountStar) {
    return StrCat("COUNT(*) AS ", output);
  }
  return StrCat(AggKindToString(kind), "(", input, ") AS ", output);
}

std::vector<SubAggregate> Decompose(const AggSpec& spec) {
  switch (spec.kind) {
    case AggKind::kCountStar:
      return {{AggKind::kCountStar, "", spec.output, MergeKind::kSum}};
    case AggKind::kCount:
      return {{AggKind::kCount, spec.input, spec.output, MergeKind::kSum}};
    case AggKind::kSum:
      return {{AggKind::kSum, spec.input, spec.output, MergeKind::kSum}};
    case AggKind::kMin:
      return {{AggKind::kMin, spec.input, spec.output, MergeKind::kMin}};
    case AggKind::kMax:
      return {{AggKind::kMax, spec.input, spec.output, MergeKind::kMax}};
    case AggKind::kAvg:
      return {
          {AggKind::kSum, spec.input, StrCat(spec.output, "__sum"),
           MergeKind::kSum},
          {AggKind::kCount, spec.input, StrCat(spec.output, "__cnt"),
           MergeKind::kSum},
      };
    case AggKind::kVarPop:
    case AggKind::kStdDevPop:
      return {
          {AggKind::kSum, spec.input, StrCat(spec.output, "__sum"),
           MergeKind::kSum},
          {AggKind::kSumSq, spec.input, StrCat(spec.output, "__sumsq"),
           MergeKind::kSum},
          {AggKind::kCount, spec.input, StrCat(spec.output, "__cnt"),
           MergeKind::kSum},
      };
    case AggKind::kSumSq:
      return {{AggKind::kSumSq, spec.input, spec.output, MergeKind::kSum}};
  }
  return {};
}

Value MergePartial(const Value& cell, const Value& partial, MergeKind merge) {
  if (partial.is_null()) return cell;
  if (cell.is_null()) return partial;
  switch (merge) {
    case MergeKind::kSum:
      if (cell.is_int64() && partial.is_int64()) {
        return Value(cell.int64() + partial.int64());
      }
      return Value(cell.AsDouble() + partial.AsDouble());
    case MergeKind::kMin:
      return partial.Compare(cell) < 0 ? partial : cell;
    case MergeKind::kMax:
      return partial.Compare(cell) > 0 ? partial : cell;
  }
  return cell;
}

Value FinalizeAggregate(const AggSpec& spec,
                        const std::vector<Value>& parts) {
  switch (spec.kind) {
    case AggKind::kCountStar:
    case AggKind::kCount:
      return parts[0].is_null() ? Value(int64_t{0}) : parts[0];
    case AggKind::kSum:
    case AggKind::kMin:
    case AggKind::kMax:
      return parts[0];
    case AggKind::kAvg: {
      const Value& sum = parts[0];
      const Value& cnt = parts[1];
      if (sum.is_null() || cnt.is_null() || cnt.AsDouble() == 0.0) {
        return Value::Null();
      }
      return Value(sum.AsDouble() / cnt.AsDouble());
    }
    case AggKind::kVarPop:
    case AggKind::kStdDevPop: {
      const Value& sum = parts[0];
      const Value& sumsq = parts[1];
      const Value& cnt = parts[2];
      if (sum.is_null() || sumsq.is_null() || cnt.is_null() ||
          cnt.AsDouble() == 0.0) {
        return Value::Null();
      }
      double n = cnt.AsDouble();
      double mean = sum.AsDouble() / n;
      double var = sumsq.AsDouble() / n - mean * mean;
      if (var < 0.0) var = 0.0;  // Guard against rounding.
      return Value(spec.kind == AggKind::kVarPop ? var : std::sqrt(var));
    }
    case AggKind::kSumSq:
      return parts[0];
  }
  return Value::Null();
}

namespace {

Result<ValueType> InputColumnType(const std::string& input,
                                  const Schema& detail) {
  SKALLA_ASSIGN_OR_RETURN(size_t idx, detail.RequireIndex(input));
  ValueType t = detail.field(idx).type;
  if (t != ValueType::kInt64 && t != ValueType::kFloat64) {
    return Status::TypeError(
        StrCat("aggregate input column '", input, "' must be numeric, got ",
               ValueTypeToString(t)));
  }
  return t;
}

}  // namespace

Result<ValueType> AggOutputType(const AggSpec& spec, const Schema& detail) {
  switch (spec.kind) {
    case AggKind::kCountStar:
      return ValueType::kInt64;
    case AggKind::kCount: {
      SKALLA_RETURN_NOT_OK(detail.RequireIndex(spec.input).status());
      return ValueType::kInt64;
    }
    case AggKind::kAvg:
    case AggKind::kVarPop:
    case AggKind::kStdDevPop:
    case AggKind::kSumSq:
      SKALLA_RETURN_NOT_OK(InputColumnType(spec.input, detail).status());
      return ValueType::kFloat64;
    case AggKind::kSum:
    case AggKind::kMin:
    case AggKind::kMax:
      return InputColumnType(spec.input, detail);
  }
  return Status::Internal("unknown aggregate kind");
}

Result<ValueType> PartOutputType(const SubAggregate& part,
                                 const Schema& detail) {
  switch (part.kind) {
    case AggKind::kCountStar:
      return ValueType::kInt64;
    case AggKind::kCount:
      SKALLA_RETURN_NOT_OK(detail.RequireIndex(part.input).status());
      return ValueType::kInt64;
    case AggKind::kSum:
    case AggKind::kMin:
    case AggKind::kMax:
      return InputColumnType(part.input, detail);
    case AggKind::kSumSq:
      SKALLA_RETURN_NOT_OK(InputColumnType(part.input, detail).status());
      return ValueType::kFloat64;
    case AggKind::kAvg:
    case AggKind::kVarPop:
    case AggKind::kStdDevPop:
      return Status::Internal("algebraic aggregates decompose into parts");
  }
  return Status::Internal("unknown aggregate kind");
}

Value InitialPartValue(const SubAggregate& part) {
  if (part.kind == AggKind::kCountStar || part.kind == AggKind::kCount) {
    return Value(int64_t{0});
  }
  return Value::Null();
}

}  // namespace skalla
