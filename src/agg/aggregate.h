// Aggregate function specifications and their decomposition into
// sub-aggregates (computed at Skalla sites) and super-aggregates (merged
// at the coordinator), following Gray et al.'s distributive/algebraic
// classification that Theorem 1 of the paper builds on:
//
//   COUNT   -> sub COUNT,            super SUM
//   SUM     -> sub SUM,              super SUM
//   MIN/MAX -> sub MIN/MAX,          super MIN/MAX
//   AVG     -> sub (SUM, COUNT),     super (SUM, SUM), finalize SUM/COUNT
//   VAR/STDDEV (population) -> sub (SUM, SUMSQ, COUNT), super sums,
//                              finalize E[x^2] - E[x]^2 (and sqrt)

#ifndef SKALLA_AGG_AGGREGATE_H_
#define SKALLA_AGG_AGGREGATE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "types/schema.h"
#include "types/value.h"

namespace skalla {

enum class AggKind : uint8_t {
  kCountStar = 0,  // COUNT(*)
  kCount = 1,      // COUNT(col): non-null count
  kSum = 2,
  kAvg = 3,
  kMin = 4,
  kMax = 5,
  kVarPop = 6,     // Population variance.
  kStdDevPop = 7,  // Population standard deviation.
  kSumSq = 8,      // Internal: sum of squares (sub-aggregate of the two
                   // above; not accepted as a user-facing aggregate).
};

std::string_view AggKindToString(AggKind kind);

/// One aggregate of an l_i list: e.g. `sum(NumBytes) -> sum1`.
struct AggSpec {
  AggKind kind = AggKind::kCountStar;
  /// Input column in the detail relation; empty for COUNT(*).
  std::string input;
  /// Name of the produced column in the GMDJ output.
  std::string output;

  /// e.g. "SUM(NumBytes) AS sum1".
  std::string ToString() const;
};

/// How partial (sub-aggregate) values combine at the coordinator.
enum class MergeKind : uint8_t {
  kSum = 0,
  kMin = 1,
  kMax = 2,
};

/// One column of the partial state a site ships for an aggregate.
struct SubAggregate {
  AggKind kind;           // What the site computes.
  std::string input;      // Detail column (empty for COUNT-like parts).
  std::string part_name;  // Column name in the shipped structure.
  MergeKind merge;        // How the coordinator combines partials.
};

/// The sub-aggregates backing `spec`. Distributive aggregates decompose
/// into one part named after the output; AVG into `<output>__sum` and
/// `<output>__cnt`.
std::vector<SubAggregate> Decompose(const AggSpec& spec);

/// Merges a partial into an accumulated cell. A NULL partial leaves the
/// cell unchanged; a NULL cell adopts the partial.
Value MergePartial(const Value& cell, const Value& partial, MergeKind merge);

/// Computes the declared output from its merged parts (in Decompose
/// order). COUNT of an empty group is 0; SUM/MIN/MAX/AVG are NULL.
Value FinalizeAggregate(const AggSpec& spec,
                        const std::vector<Value>& parts);

/// The declared output type of `spec` over `detail` (COUNT -> INT64,
/// AVG -> FLOAT64, SUM/MIN/MAX -> input column type).
Result<ValueType> AggOutputType(const AggSpec& spec, const Schema& detail);

/// The type of one sub-aggregate part column.
Result<ValueType> PartOutputType(const SubAggregate& part,
                                 const Schema& detail);

/// The neutral initial cell for a merged part column: 0 for COUNT parts,
/// NULL otherwise.
Value InitialPartValue(const SubAggregate& part);

}  // namespace skalla

#endif  // SKALLA_AGG_AGGREGATE_H_
