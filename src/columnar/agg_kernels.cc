#include "columnar/agg_kernels.h"

#include <utility>

#include "common/macros.h"

namespace skalla {

namespace {

// Slot resolution shared by the dense kernels. The Checked variant skips
// rows the predicate selection removed.
template <bool Checked>
inline bool SlotOf(const uint32_t* row_group, size_t r, uint32_t* g) {
  *g = row_group[r];
  return !Checked || *g != kNoSlot;
}

// --- dense folds -----------------------------------------------------------

template <bool Checked>
void DenseCountStar(AggPart& p, const Column*, const uint32_t* rg, size_t n) {
  for (size_t r = 0; r < n; ++r) {
    uint32_t g;
    if (!SlotOf<Checked>(rg, r, &g)) continue;
    ++p.counts[g];
  }
}

template <bool Checked>
void DenseCount(AggPart& p, const Column* in, const uint32_t* rg, size_t n) {
  for (size_t r = 0; r < n; ++r) {
    uint32_t g;
    if (!SlotOf<Checked>(rg, r, &g)) continue;
    if (!in->IsNull(r)) ++p.counts[g];
  }
}

template <bool Checked>
void DenseSumInt(AggPart& p, const Column* in, const uint32_t* rg, size_t n) {
  for (size_t r = 0; r < n; ++r) {
    uint32_t g;
    if (!SlotOf<Checked>(rg, r, &g)) continue;
    if (in->IsNull(r)) continue;
    p.ivals[g] += in->Int64At(r);
    p.any[g] = 1;
  }
}

template <bool Checked>
void DenseSumDouble(AggPart& p, const Column* in, const uint32_t* rg,
                    size_t n) {
  for (size_t r = 0; r < n; ++r) {
    uint32_t g;
    if (!SlotOf<Checked>(rg, r, &g)) continue;
    if (in->IsNull(r)) continue;
    p.dvals[g] += in->Float64At(r);
    p.any[g] = 1;
  }
}

template <bool Checked, bool IsMin>
void DenseExtremeInt(AggPart& p, const Column* in, const uint32_t* rg,
                     size_t n) {
  for (size_t r = 0; r < n; ++r) {
    uint32_t g;
    if (!SlotOf<Checked>(rg, r, &g)) continue;
    if (in->IsNull(r)) continue;
    const int64_t v = in->Int64At(r);
    if (!p.any[g] || (IsMin ? v < p.ivals[g] : v > p.ivals[g])) {
      p.ivals[g] = v;
    }
    p.any[g] = 1;
  }
}

template <bool Checked, bool IsMin>
void DenseExtremeDouble(AggPart& p, const Column* in, const uint32_t* rg,
                        size_t n) {
  for (size_t r = 0; r < n; ++r) {
    uint32_t g;
    if (!SlotOf<Checked>(rg, r, &g)) continue;
    if (in->IsNull(r)) continue;
    const double v = in->Float64At(r);
    if (!p.any[g] || (IsMin ? v < p.dvals[g] : v > p.dvals[g])) {
      p.dvals[g] = v;
    }
    p.any[g] = 1;
  }
}

template <bool Checked, bool IsMin>
void DenseExtremeString(AggPart& p, const Column* in, const uint32_t* rg,
                        size_t n) {
  for (size_t r = 0; r < n; ++r) {
    uint32_t g;
    if (!SlotOf<Checked>(rg, r, &g)) continue;
    if (in->IsNull(r)) continue;
    const std::string& v = in->StringAt(r);
    if (!p.any[g] || (IsMin ? v < p.svals[g] : v > p.svals[g])) {
      p.svals[g] = v;
    }
    p.any[g] = 1;
  }
}

template <bool Checked>
void DenseSumSqInt(AggPart& p, const Column* in, const uint32_t* rg,
                   size_t n) {
  for (size_t r = 0; r < n; ++r) {
    uint32_t g;
    if (!SlotOf<Checked>(rg, r, &g)) continue;
    if (in->IsNull(r)) continue;
    const double v = static_cast<double>(in->Int64At(r));
    p.dvals[g] += v * v;
    p.any[g] = 1;
  }
}

template <bool Checked>
void DenseSumSqDouble(AggPart& p, const Column* in, const uint32_t* rg,
                      size_t n) {
  for (size_t r = 0; r < n; ++r) {
    uint32_t g;
    if (!SlotOf<Checked>(rg, r, &g)) continue;
    if (in->IsNull(r)) continue;
    const double v = in->Float64At(r);
    p.dvals[g] += v * v;
    p.any[g] = 1;
  }
}

void DenseNothing(AggPart&, const Column*, const uint32_t*, size_t) {}

// --- single-row folds ------------------------------------------------------

void OneCountStar(AggPart& p, size_t g, const Column*, size_t) {
  ++p.counts[g];
}

void OneCount(AggPart& p, size_t g, const Column* in, size_t r) {
  if (!in->IsNull(r)) ++p.counts[g];
}

void OneSumInt(AggPart& p, size_t g, const Column* in, size_t r) {
  if (in->IsNull(r)) return;
  p.ivals[g] += in->Int64At(r);
  p.any[g] = 1;
}

void OneSumDouble(AggPart& p, size_t g, const Column* in, size_t r) {
  if (in->IsNull(r)) return;
  p.dvals[g] += in->Float64At(r);
  p.any[g] = 1;
}

template <bool IsMin>
void OneExtremeInt(AggPart& p, size_t g, const Column* in, size_t r) {
  if (in->IsNull(r)) return;
  const int64_t v = in->Int64At(r);
  if (!p.any[g] || (IsMin ? v < p.ivals[g] : v > p.ivals[g])) p.ivals[g] = v;
  p.any[g] = 1;
}

template <bool IsMin>
void OneExtremeDouble(AggPart& p, size_t g, const Column* in, size_t r) {
  if (in->IsNull(r)) return;
  const double v = in->Float64At(r);
  if (!p.any[g] || (IsMin ? v < p.dvals[g] : v > p.dvals[g])) p.dvals[g] = v;
  p.any[g] = 1;
}

template <bool IsMin>
void OneExtremeString(AggPart& p, size_t g, const Column* in, size_t r) {
  if (in->IsNull(r)) return;
  const std::string& v = in->StringAt(r);
  if (!p.any[g] || (IsMin ? v < p.svals[g] : v > p.svals[g])) p.svals[g] = v;
  p.any[g] = 1;
}

void OneSumSqInt(AggPart& p, size_t g, const Column* in, size_t r) {
  if (in->IsNull(r)) return;
  const double v = static_cast<double>(in->Int64At(r));
  p.dvals[g] += v * v;
  p.any[g] = 1;
}

void OneSumSqDouble(AggPart& p, size_t g, const Column* in, size_t r) {
  if (in->IsNull(r)) return;
  const double v = in->Float64At(r);
  p.dvals[g] += v * v;
  p.any[g] = 1;
}

void OneNothing(AggPart&, size_t, const Column*, size_t) {}

// --- slot merges (Accumulator::MergeFrom semantics) ------------------------

void MergeCount(AggPart& d, const AggPart& s, size_t i) {
  d.counts[i] += s.counts[i];
}

void MergeSumInt(AggPart& d, const AggPart& s, size_t i) {
  if (!s.any[i]) return;
  d.ivals[i] += s.ivals[i];
  d.any[i] = 1;
}

void MergeSumDouble(AggPart& d, const AggPart& s, size_t i) {
  if (!s.any[i]) return;
  d.dvals[i] += s.dvals[i];
  d.any[i] = 1;
}

template <bool IsMin>
void MergeExtremeInt(AggPart& d, const AggPart& s, size_t i) {
  if (!s.any[i]) return;
  if (!d.any[i] || (IsMin ? s.ivals[i] < d.ivals[i] : s.ivals[i] > d.ivals[i])) {
    d.ivals[i] = s.ivals[i];
  }
  d.any[i] = 1;
}

template <bool IsMin>
void MergeExtremeDouble(AggPart& d, const AggPart& s, size_t i) {
  if (!s.any[i]) return;
  if (!d.any[i] || (IsMin ? s.dvals[i] < d.dvals[i] : s.dvals[i] > d.dvals[i])) {
    d.dvals[i] = s.dvals[i];
  }
  d.any[i] = 1;
}

template <bool IsMin>
void MergeExtremeString(AggPart& d, const AggPart& s, size_t i) {
  if (!s.any[i]) return;
  if (!d.any[i] || (IsMin ? s.svals[i] < d.svals[i] : s.svals[i] > d.svals[i])) {
    d.svals[i] = s.svals[i];
  }
  d.any[i] = 1;
}

void MergeNothing(AggPart&, const AggPart&, size_t) {}

void SelectNothing(AggPart* part) {
  part->fold_dense = DenseNothing;
  part->fold_dense_checked = DenseNothing;
  part->fold_one = OneNothing;
  part->merge_slot = MergeNothing;
}

}  // namespace

Value AggPart::Final(size_t slot) const {
  switch (spec.kind) {
    case AggKind::kCountStar:
    case AggKind::kCount:
      return Value(counts[slot]);
    case AggKind::kSum:
      if (!any[slot]) return Value::Null();
      return input_type == ValueType::kInt64 ? Value(ivals[slot])
                                             : Value(dvals[slot]);
    case AggKind::kMin:
    case AggKind::kMax:
      if (!any[slot]) return Value::Null();
      switch (input_type) {
        case ValueType::kInt64:
          return Value(ivals[slot]);
        case ValueType::kFloat64:
          return Value(dvals[slot]);
        case ValueType::kString:
          return Value(svals[slot]);
        default:
          return Value::Null();
      }
    case AggKind::kSumSq:
      return any[slot] ? Value(dvals[slot]) : Value::Null();
    case AggKind::kAvg:
    case AggKind::kVarPop:
    case AggKind::kStdDevPop:
      return Value::Null();  // Never sub-aggregates.
  }
  return Value::Null();
}

Result<AggPart> CompileAggPart(SubAggregate spec,
                               const Schema& detail_schema) {
  AggPart part;
  part.spec = std::move(spec);
  if (!part.spec.input.empty()) {
    SKALLA_ASSIGN_OR_RETURN(size_t idx,
                            detail_schema.RequireIndex(part.spec.input));
    part.input_col = static_cast<int>(idx);
    part.input_type = detail_schema.field(idx).type;
  }
  const ValueType t = part.input_type;
  switch (part.spec.kind) {
    case AggKind::kCountStar:
      part.fold_dense = DenseCountStar<false>;
      part.fold_dense_checked = DenseCountStar<true>;
      part.fold_one = OneCountStar;
      part.merge_slot = MergeCount;
      break;
    case AggKind::kCount:
      part.fold_dense = DenseCount<false>;
      part.fold_dense_checked = DenseCount<true>;
      part.fold_one = OneCount;
      part.merge_slot = MergeCount;
      break;
    case AggKind::kSum:
      if (t == ValueType::kInt64) {
        part.fold_dense = DenseSumInt<false>;
        part.fold_dense_checked = DenseSumInt<true>;
        part.fold_one = OneSumInt;
        part.merge_slot = MergeSumInt;
      } else if (t == ValueType::kFloat64) {
        part.fold_dense = DenseSumDouble<false>;
        part.fold_dense_checked = DenseSumDouble<true>;
        part.fold_one = OneSumDouble;
        part.merge_slot = MergeSumDouble;
      } else {
        // Non-numeric input never folds (the row accumulator skips it),
        // so SUM over such a column is NULL.
        SelectNothing(&part);
      }
      break;
    case AggKind::kMin:
    case AggKind::kMax: {
      const bool is_min = part.spec.kind == AggKind::kMin;
      if (t == ValueType::kInt64) {
        part.fold_dense =
            is_min ? DenseExtremeInt<false, true> : DenseExtremeInt<false, false>;
        part.fold_dense_checked =
            is_min ? DenseExtremeInt<true, true> : DenseExtremeInt<true, false>;
        part.fold_one = is_min ? OneExtremeInt<true> : OneExtremeInt<false>;
        part.merge_slot =
            is_min ? MergeExtremeInt<true> : MergeExtremeInt<false>;
      } else if (t == ValueType::kFloat64) {
        part.fold_dense = is_min ? DenseExtremeDouble<false, true>
                                 : DenseExtremeDouble<false, false>;
        part.fold_dense_checked = is_min ? DenseExtremeDouble<true, true>
                                         : DenseExtremeDouble<true, false>;
        part.fold_one =
            is_min ? OneExtremeDouble<true> : OneExtremeDouble<false>;
        part.merge_slot =
            is_min ? MergeExtremeDouble<true> : MergeExtremeDouble<false>;
      } else if (t == ValueType::kString) {
        part.fold_dense = is_min ? DenseExtremeString<false, true>
                                 : DenseExtremeString<false, false>;
        part.fold_dense_checked = is_min ? DenseExtremeString<true, true>
                                         : DenseExtremeString<true, false>;
        part.fold_one =
            is_min ? OneExtremeString<true> : OneExtremeString<false>;
        part.merge_slot =
            is_min ? MergeExtremeString<true> : MergeExtremeString<false>;
      } else {
        SelectNothing(&part);
      }
      break;
    }
    case AggKind::kSumSq:
      if (t == ValueType::kInt64) {
        part.fold_dense = DenseSumSqInt<false>;
        part.fold_dense_checked = DenseSumSqInt<true>;
        part.fold_one = OneSumSqInt;
        part.merge_slot = MergeSumDouble;
      } else if (t == ValueType::kFloat64) {
        part.fold_dense = DenseSumSqDouble<false>;
        part.fold_dense_checked = DenseSumSqDouble<true>;
        part.fold_one = OneSumSqDouble;
        part.merge_slot = MergeSumDouble;
      } else {
        SelectNothing(&part);
      }
      break;
    case AggKind::kAvg:
    case AggKind::kVarPop:
    case AggKind::kStdDevPop:
      // Decomposed before reaching here.
      SelectNothing(&part);
      break;
  }
  return part;
}

void EnsureSlots(AggPart* part, size_t n) {
  switch (part->spec.kind) {
    case AggKind::kCountStar:
    case AggKind::kCount:
      part->counts.resize(n, 0);
      return;
    case AggKind::kSum:
      part->any.resize(n, 0);
      if (part->input_type == ValueType::kInt64) {
        part->ivals.resize(n, 0);
      } else if (part->input_type == ValueType::kFloat64) {
        part->dvals.resize(n, 0.0);
      }
      return;
    case AggKind::kMin:
    case AggKind::kMax:
      part->any.resize(n, 0);
      switch (part->input_type) {
        case ValueType::kInt64:
          part->ivals.resize(n, 0);
          return;
        case ValueType::kFloat64:
          part->dvals.resize(n, 0.0);
          return;
        case ValueType::kString:
          part->svals.resize(n);
          return;
        default:
          return;
      }
    case AggKind::kSumSq:
      part->any.resize(n, 0);
      part->dvals.resize(n, 0.0);
      return;
    case AggKind::kAvg:
    case AggKind::kVarPop:
    case AggKind::kStdDevPop:
      return;  // Decomposed before reaching here.
  }
}

void MergeParts(AggPart* dst, const AggPart& src) {
  const size_t n = src.num_slots();
  for (size_t i = 0; i < n; ++i) dst->merge_slot(*dst, src, i);
}

}  // namespace skalla
