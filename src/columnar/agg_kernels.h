// Type-specialized aggregate accumulation for the columnar GMDJ engine.
//
// An AggPart is the columnar counterpart of one sub-aggregate's
// Accumulator column: unboxed per-slot state (counts / int sums / double
// sums / string extremes) plus function pointers selected once at plan
// stage, keyed on (aggregate kind, input column type, checked-slot
// flag). The kernels replicate agg/accumulator.h fold and merge
// semantics exactly — same null skipping, same INT64-stays-INT64 sums,
// same keep-earlier-on-ties extremes — over tables whose cell
// representations match their declared column types (the well-typed
// contract every columnar materialization enforces), so results are
// byte-identical to the row engine.
//
// Three fold shapes cover the engine's evaluation paths:
//  - fold_dense: one tight pass over a column, row r folding into slot
//    row_group[r] (grouped evaluation);
//  - fold_dense_checked: same, skipping rows whose slot is kNoSlot
//    (rows removed by the predicate selection);
//  - fold_one: a single row into a given slot (per-base-row candidate
//    folds and nested-scan morsels).
// merge_slot combines a partial's slot into an accumulated one with
// Accumulator::MergeFrom semantics, enabling the morsel-partial merge
// discipline of the scan path (Theorem 1 composability).

#ifndef SKALLA_COLUMNAR_AGG_KERNELS_H_
#define SKALLA_COLUMNAR_AGG_KERNELS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "agg/aggregate.h"
#include "columnar/column.h"
#include "common/result.h"
#include "types/schema.h"
#include "types/value.h"

namespace skalla {

/// Sentinel slot id for rows excluded by the predicate selection.
inline constexpr uint32_t kNoSlot = 0xFFFFFFFFu;

struct AggPart {
  SubAggregate spec;
  int input_col = -1;  // Detail column; -1 for COUNT(*).
  ValueType input_type = ValueType::kNull;

  // Per-slot state; which vectors are populated depends on
  // (spec.kind, input_type) — see EnsureSlots.
  std::vector<int64_t> counts;
  std::vector<int64_t> ivals;
  std::vector<double> dvals;
  std::vector<std::string> svals;
  std::vector<uint8_t> any;

  using FoldDenseFn = void (*)(AggPart&, const Column*, const uint32_t*,
                               size_t);
  using FoldOneFn = void (*)(AggPart&, size_t, const Column*, size_t);
  using MergeSlotFn = void (*)(AggPart&, const AggPart&, size_t);

  FoldDenseFn fold_dense = nullptr;
  FoldDenseFn fold_dense_checked = nullptr;
  FoldOneFn fold_one = nullptr;
  MergeSlotFn merge_slot = nullptr;

  /// Number of slots currently allocated.
  size_t num_slots() const {
    switch (spec.kind) {
      case AggKind::kCountStar:
      case AggKind::kCount:
        return counts.size();
      default:
        return any.size();
    }
  }

  /// Boxes slot `slot` with Accumulator::Final semantics: COUNT over
  /// nothing is 0, SUM/MIN/MAX over nothing is NULL.
  Value Final(size_t slot) const;
};

/// Resolves the input column and selects the specialized kernels.
Result<AggPart> CompileAggPart(SubAggregate spec, const Schema& detail_schema);

/// Grows the part's slot vectors to `n`, zero-filling new slots.
void EnsureSlots(AggPart* part, size_t n);

/// Merges every slot of `src` (a morsel partial) into `dst`, in slot
/// order, with Accumulator::MergeFrom semantics. Both parts must be
/// compiled from the same spec; dst must have at least src's slots.
void MergeParts(AggPart* dst, const AggPart& src);

}  // namespace skalla

#endif  // SKALLA_COLUMNAR_AGG_KERNELS_H_
