#include "columnar/column.h"

#include <cmath>

#include "common/hash.h"
#include "common/string_util.h"

namespace skalla {

Status Column::Append(const Value& v) {
  if (v.is_null()) {
    valid_.push_back(0);
    switch (type_) {
      case ValueType::kInt64:
        ints_.push_back(0);
        break;
      case ValueType::kFloat64:
        doubles_.push_back(0.0);
        break;
      case ValueType::kString:
        strings_.emplace_back();
        break;
      default:
        break;
    }
    return Status::OK();
  }
  switch (type_) {
    case ValueType::kInt64: {
      if (!v.is_numeric()) {
        return Status::TypeError(
            StrCat("cannot store ", v.ToString(), " in an INT64 column"));
      }
      int64_t stored;
      if (v.is_int64()) {
        stored = v.int64();
      } else {
        // Only integral doubles may enter an INT64 column: silent
        // truncation would diverge from the row engine's semantics.
        double d = v.float64();
        stored = static_cast<int64_t>(d);
        if (static_cast<double>(stored) != d) {
          return Status::TypeError(
              StrCat("non-integral value ", v.ToString(),
                     " cannot be stored in an INT64 column"));
        }
      }
      valid_.push_back(1);
      ints_.push_back(stored);
      return Status::OK();
    }
    case ValueType::kFloat64:
      if (!v.is_numeric()) {
        return Status::TypeError(
            StrCat("cannot store ", v.ToString(), " in a FLOAT64 column"));
      }
      valid_.push_back(1);
      doubles_.push_back(v.AsDouble());
      return Status::OK();
    case ValueType::kString:
      if (!v.is_string()) {
        return Status::TypeError(
            StrCat("cannot store ", v.ToString(), " in a STRING column"));
      }
      valid_.push_back(1);
      strings_.push_back(v.str());
      return Status::OK();
    case ValueType::kNull:
      return Status::TypeError("cannot store values in an untyped column");
  }
  return Status::Internal("unknown column type");
}

Value Column::GetValue(size_t i) const {
  if (IsNull(i)) return Value::Null();
  switch (type_) {
    case ValueType::kInt64:
      return Value(ints_[i]);
    case ValueType::kFloat64:
      return Value(doubles_[i]);
    case ValueType::kString:
      return Value(strings_[i]);
    default:
      return Value::Null();
  }
}

uint64_t Column::HashAt(size_t i) const {
  if (IsNull(i)) return 0x6b7bull;  // Matches Value::Hash for NULL.
  switch (type_) {
    case ValueType::kInt64:
      return Mix64(static_cast<uint64_t>(ints_[i]));
    case ValueType::kFloat64: {
      double d = doubles_[i];
      if (d >= -9.2e18 && d <= 9.2e18 && d == std::floor(d)) {
        return Mix64(static_cast<uint64_t>(static_cast<int64_t>(d)));
      }
      uint64_t bits;
      __builtin_memcpy(&bits, &d, sizeof(bits));
      return Mix64(bits);
    }
    case ValueType::kString:
      return HashString(strings_[i]);
    default:
      return 0;
  }
}

bool Column::CellEquals(size_t i, const Column& other, size_t j) const {
  bool null_i = IsNull(i);
  bool null_j = other.IsNull(j);
  if (null_i || null_j) return null_i && null_j;
  if (type_ == other.type_) {
    switch (type_) {
      case ValueType::kInt64:
        return ints_[i] == other.ints_[j];
      case ValueType::kFloat64:
        return doubles_[i] == other.doubles_[j];
      case ValueType::kString:
        return strings_[i] == other.strings_[j];
      default:
        return false;
    }
  }
  // Cross-type numeric comparison mirrors Value::Equals.
  return GetValue(i).Equals(other.GetValue(j));
}

void Column::Reserve(size_t n) {
  valid_.reserve(n);
  switch (type_) {
    case ValueType::kInt64:
      ints_.reserve(n);
      break;
    case ValueType::kFloat64:
      doubles_.reserve(n);
      break;
    case ValueType::kString:
      strings_.reserve(n);
      break;
    default:
      break;
  }
}

}  // namespace skalla
