// Typed column storage: the columnar counterpart of a Row's cell. Values
// live in contiguous typed vectors with a separate validity vector, so
// scans touch raw int64/double arrays instead of boxed Values.

#ifndef SKALLA_COLUMNAR_COLUMN_H_
#define SKALLA_COLUMNAR_COLUMN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "types/value.h"

namespace skalla {

/// One typed column. The declared type fixes which typed vector backs
/// the column; NULLs are tracked in the validity vector.
class Column {
 public:
  explicit Column(ValueType type) : type_(type) {}

  ValueType type() const { return type_; }
  size_t size() const { return valid_.size(); }

  /// Appends a cell. The value must be NULL or match the column type
  /// (INT64 accepts integral FLOAT64 per the engine's numeric
  /// compatibility and vice versa).
  Status Append(const Value& v);

  bool IsNull(size_t i) const { return valid_[i] == 0; }

  /// Typed accessors; only meaningful when !IsNull(i) and the type
  /// matches.
  int64_t Int64At(size_t i) const { return ints_[i]; }
  double Float64At(size_t i) const { return doubles_[i]; }
  const std::string& StringAt(size_t i) const { return strings_[i]; }

  /// Boxes cell i back into a Value.
  Value GetValue(size_t i) const;

  /// Hash of cell i, consistent with Value::Hash of the boxed value.
  uint64_t HashAt(size_t i) const;

  /// Whether cells i (here) and j (in `other`) are equal under the
  /// engine's grouping semantics (NULL == NULL).
  bool CellEquals(size_t i, const Column& other, size_t j) const;

  void Reserve(size_t n);

 private:
  ValueType type_;
  std::vector<uint8_t> valid_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
};

}  // namespace skalla

#endif  // SKALLA_COLUMNAR_COLUMN_H_
