#include "columnar/column_table.h"

#include "common/macros.h"
#include "common/string_util.h"

namespace skalla {

Result<ColumnTable> ColumnTable::FromRowTable(const Table& table) {
  ColumnTable out;
  out.schema_ = table.schema();
  out.num_rows_ = table.num_rows();
  out.columns_.reserve(table.num_columns());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    ValueType type = table.schema()->field(c).type;
    if (type == ValueType::kNull) {
      return Status::TypeError(
          StrCat("column '", table.schema()->field(c).name,
                 "' has no declared type; columnar storage needs one"));
    }
    out.columns_.emplace_back(type);
    out.columns_.back().Reserve(table.num_rows());
  }
  for (size_t r = 0; r < table.num_rows(); ++r) {
    const Row& row = table.row(r);
    for (size_t c = 0; c < row.size(); ++c) {
      SKALLA_RETURN_NOT_OK(out.columns_[c].Append(row[c]));
    }
  }
  return out;
}

Table ColumnTable::ToRowTable() const {
  Table out(schema_);
  out.Reserve(num_rows_);
  for (size_t r = 0; r < num_rows_; ++r) {
    Row row;
    row.reserve(columns_.size());
    for (const Column& column : columns_) {
      row.push_back(column.GetValue(r));
    }
    out.AppendUnchecked(std::move(row));
  }
  return out;
}

}  // namespace skalla
