// ColumnTable: a columnar materialization of a relation, converted from
// and to the row-oriented Table. Sites can keep their detail partitions
// in this form to serve the vectorized GMDJ fast path.

#ifndef SKALLA_COLUMNAR_COLUMN_TABLE_H_
#define SKALLA_COLUMNAR_COLUMN_TABLE_H_

#include <vector>

#include "columnar/column.h"
#include "common/result.h"
#include "storage/table.h"

namespace skalla {

class ColumnTable {
 public:
  /// Converts a row table; every column must have a concrete declared
  /// type (INT64/FLOAT64/STRING).
  static Result<ColumnTable> FromRowTable(const Table& table);

  const SchemaPtr& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }

  /// Boxes everything back into a row table (for tests / interop).
  Table ToRowTable() const;

 private:
  SchemaPtr schema_;
  size_t num_rows_ = 0;
  std::vector<Column> columns_;
};

}  // namespace skalla

#endif  // SKALLA_COLUMNAR_COLUMN_TABLE_H_
