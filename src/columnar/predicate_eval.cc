#include "columnar/predicate_eval.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/macros.h"

namespace skalla {

namespace {

// Scalar comparison; std::string operators agree with str().compare
// ordering, so this matches Value::Compare for same-typed operands.
template <typename T>
inline bool CmpOp(BinaryOp op, const T& a, const T& b) {
  switch (op) {
    case BinaryOp::kEq: return a == b;
    case BinaryOp::kNe: return a != b;
    case BinaryOp::kLt: return a < b;
    case BinaryOp::kLe: return a <= b;
    case BinaryOp::kGt: return a > b;
    case BinaryOp::kGe: return a >= b;
    default: return false;
  }
}

// Boxed comparison of two non-null values, replicating EvalComparison.
inline bool CmpBoxed(BinaryOp op, const Value& a, const Value& b) {
  switch (op) {
    case BinaryOp::kEq: return a.Equals(b);
    case BinaryOp::kNe: return !a.Equals(b);
    case BinaryOp::kLt: return a.Compare(b) < 0;
    case BinaryOp::kLe: return a.Compare(b) <= 0;
    case BinaryOp::kGt: return a.Compare(b) > 0;
    case BinaryOp::kGe: return a.Compare(b) >= 0;
    default: return false;
  }
}

// Cell of a numeric column as double, matching Value::AsDouble of the
// boxed cell.
inline double CellAsDouble(const Column& col, size_t r) {
  return col.type() == ValueType::kInt64
             ? static_cast<double>(col.Int64At(r))
             : col.Float64At(r);
}

std::vector<size_t> CollectDetailCols(const ExprPtr& expr,
                                      const Schema& detail_schema) {
  std::vector<std::string> names;
  expr->CollectColumns(ExprSide::kDetail, &names);
  std::vector<size_t> cols;
  for (const std::string& name : names) {
    int idx = detail_schema.IndexOf(name);
    if (idx >= 0) cols.push_back(static_cast<size_t>(idx));
  }
  std::sort(cols.begin(), cols.end());
  cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
  return cols;
}

bool IsBareDetailColumn(const ExprPtr& e) {
  return e->kind() == ExprKind::kColumnRef && e->side() == ExprSide::kDetail;
}

Result<DetailConjunct> CompileDetailConjunct(
    const ExprPtr& conjunct, const Schema& detail_schema,
    const std::function<std::optional<Interval>(const std::string&)>&
        col_range) {
  DetailConjunct out;
  SKALLA_ASSIGN_OR_RETURN(out.bound,
                          conjunct->Bind(nullptr, &detail_schema));
  out.ref_cols = CollectDetailCols(conjunct, detail_schema);
  out.selectivity = EstimateConjunctSelectivity(conjunct, col_range);

  // Specialize `r.X op literal` (either operand order) and `r.X IN {…}`.
  if (conjunct->kind() == ExprKind::kInSet &&
      IsBareDetailColumn(conjunct->operand()) && conjunct->value_set()) {
    out.kind = DetailConjunct::Kind::kInSet;
    out.col = detail_schema.IndexOf(conjunct->operand()->column_name());
    out.set = conjunct->value_set();
    return out;
  }
  if (conjunct->kind() == ExprKind::kBinary &&
      IsComparisonOp(conjunct->binary_op())) {
    BinaryOp op = conjunct->binary_op();
    ExprPtr col_side = conjunct->left();
    ExprPtr lit_side = conjunct->right();
    if (!IsBareDetailColumn(col_side)) {
      std::swap(col_side, lit_side);
      op = FlipComparison(op);
    }
    if (IsBareDetailColumn(col_side) &&
        lit_side->kind() == ExprKind::kLiteral &&
        !lit_side->literal().is_null()) {
      const int idx = detail_schema.IndexOf(col_side->column_name());
      const ValueType col_type =
          idx >= 0 ? detail_schema.field(idx).type : ValueType::kNull;
      const Value& lit = lit_side->literal();
      if (lit.is_int64() && col_type == ValueType::kInt64) {
        out.kind = DetailConjunct::Kind::kCmpInt;
        out.col = idx;
        out.op = op;
        out.ilit = lit.int64();
        out.dlit = static_cast<double>(lit.int64());
        out.prunable = op != BinaryOp::kNe;
        return out;
      }
      if (lit.is_numeric() && (col_type == ValueType::kInt64 ||
                               col_type == ValueType::kFloat64)) {
        out.kind = DetailConjunct::Kind::kCmpDouble;
        out.col = idx;
        out.op = op;
        out.dlit = lit.AsDouble();
        out.prunable = op != BinaryOp::kNe;
        return out;
      }
      if (lit.is_string() && col_type == ValueType::kString) {
        out.kind = DetailConjunct::Kind::kCmpString;
        out.col = idx;
        out.op = op;
        out.slit = lit.str();
        return out;
      }
    }
  }
  // NULL literals, NOT, arithmetic, type mismatches: kGeneric, already
  // set up via `bound`.
  return out;
}

Result<CorrelatedConjunct> CompileCorrelatedConjunct(
    const ExprPtr& conjunct, const Schema& base_schema,
    const Schema& detail_schema) {
  CorrelatedConjunct out;
  SKALLA_ASSIGN_OR_RETURN(out.bound,
                          conjunct->Bind(&base_schema, &detail_schema));
  out.ref_cols = CollectDetailCols(conjunct, detail_schema);
  std::optional<SeparableComparison> sep =
      ExtractSeparableComparison(conjunct);
  if (sep && IsBareDetailColumn(sep->detail_expr)) {
    const int idx = detail_schema.IndexOf(sep->detail_expr->column_name());
    if (idx >= 0) {
      SKALLA_ASSIGN_OR_RETURN(out.base_expr,
                              sep->base_expr->Bind(&base_schema, nullptr));
      out.separable = true;
      out.op = sep->op;
      out.detail_col = idx;
      out.detail_type = detail_schema.field(idx).type;
    }
  }
  return out;
}

}  // namespace

bool CompiledPredicate::has_prunable() const {
  for (const DetailConjunct& c : detail) {
    if (c.prunable) return true;
  }
  return false;
}

Result<CompiledPredicate> CompilePredicate(
    const ConjunctClasses& classes, const Schema& base_schema,
    const Schema& detail_schema,
    const std::function<std::optional<Interval>(const std::string&)>&
        col_range) {
  CompiledPredicate pred;
  pred.detail_width = detail_schema.num_fields();
  for (const ExprPtr& conjunct : classes.detail_only) {
    SKALLA_ASSIGN_OR_RETURN(
        DetailConjunct c,
        CompileDetailConjunct(conjunct, detail_schema, col_range));
    pred.detail.push_back(std::move(c));
  }
  // Most selective first; stable so equal estimates keep textual order.
  std::stable_sort(pred.detail.begin(), pred.detail.end(),
                   [](const DetailConjunct& a, const DetailConjunct& b) {
                     return a.selectivity < b.selectivity;
                   });
  for (const ExprPtr& conjunct : classes.correlated) {
    SKALLA_ASSIGN_OR_RETURN(
        CorrelatedConjunct c,
        CompileCorrelatedConjunct(conjunct, base_schema, detail_schema));
    pred.correlated.push_back(std::move(c));
  }
  for (const ExprPtr& conjunct : classes.base_only) {
    SKALLA_ASSIGN_OR_RETURN(ExprPtr bound,
                            conjunct->Bind(&base_schema, nullptr));
    pred.base_only.push_back(std::move(bound));
  }
  return pred;
}

std::function<std::optional<Interval>(const std::string&)>
ColRangeFromPartition(const PartitionInfo& info, size_t site) {
  return [&info, site](const std::string& column) -> std::optional<Interval> {
    const ColumnDistribution* dist = info.GetDistribution(site, column);
    if (dist == nullptr || !dist->min.has_value() || !dist->max.has_value()) {
      return std::nullopt;
    }
    return Interval{*dist->min, *dist->max};
  };
}

void EvalDetailSelection(const CompiledPredicate& pred,
                         const ColumnSource& src, std::vector<uint8_t>* sel) {
  const size_t n = src.num_rows();
  sel->assign(n, 1);
  Row scratch;
  for (const DetailConjunct& c : pred.detail) {
    uint8_t* s = sel->data();
    // Narrows survivors with one typed test per row.
    auto filter = [&](auto&& test) {
      for (size_t r = 0; r < n; ++r) {
        if (s[r]) s[r] = test(r) ? 1 : 0;
      }
    };
    switch (c.kind) {
      case DetailConjunct::Kind::kCmpInt: {
        const Column& col = src.column(c.col);
        filter([&](size_t r) {
          return !col.IsNull(r) && CmpOp(c.op, col.Int64At(r), c.ilit);
        });
        break;
      }
      case DetailConjunct::Kind::kCmpDouble: {
        const Column& col = src.column(c.col);
        filter([&](size_t r) {
          return !col.IsNull(r) && CmpOp(c.op, CellAsDouble(col, r), c.dlit);
        });
        break;
      }
      case DetailConjunct::Kind::kCmpString: {
        const Column& col = src.column(c.col);
        filter([&](size_t r) {
          return !col.IsNull(r) && CmpOp(c.op, col.StringAt(r), c.slit);
        });
        break;
      }
      case DetailConjunct::Kind::kInSet: {
        const Column& col = src.column(c.col);
        filter([&](size_t r) {
          return !col.IsNull(r) && c.set->Contains(col.GetValue(r));
        });
        break;
      }
      case DetailConjunct::Kind::kGeneric: {
        scratch.assign(pred.detail_width, Value::Null());
        filter([&](size_t r) {
          for (size_t col : c.ref_cols) {
            scratch[col] = src.column(col).GetValue(r);
          }
          return c.bound->EvalBool(nullptr, &scratch);
        });
        break;
      }
    }
  }
}

bool ChunkCannotSatisfy(const DetailConjunct& c,
                        const ChunkColumnStats& stats) {
  // An all-null column fails every comparison.
  if (!stats.has_range) return true;
  // Stats are doubles; widen one ulp so a lossily-rounded int64 bound
  // can never exclude a chunk that contains a satisfying row.
  const double lo =
      std::nextafter(stats.min, -std::numeric_limits<double>::infinity());
  const double hi =
      std::nextafter(stats.max, std::numeric_limits<double>::infinity());
  switch (c.op) {
    case BinaryOp::kEq: return c.dlit < lo || c.dlit > hi;
    case BinaryOp::kLt: return lo >= c.dlit;
    case BinaryOp::kLe: return lo > c.dlit;
    case BinaryOp::kGt: return hi <= c.dlit;
    case BinaryOp::kGe: return hi < c.dlit;
    default: return false;
  }
}

BasePredState PrepareBaseRow(const CompiledPredicate& pred,
                             const Row& base_row) {
  BasePredState state;
  for (const ExprPtr& conjunct : pred.base_only) {
    if (!conjunct->EvalBool(&base_row, nullptr)) {
      state.pass = false;
      break;
    }
  }
  if (!state.pass) return state;
  state.preps.resize(pred.correlated.size());
  for (size_t i = 0; i < pred.correlated.size(); ++i) {
    const CorrelatedConjunct& c = pred.correlated[i];
    BasePredState::Prep& prep = state.preps[i];
    if (!c.separable) {
      prep.mode = BasePredState::Prep::Mode::kGeneric;
      continue;
    }
    Value bv = c.base_expr->Eval(&base_row, nullptr);
    if (bv.is_null()) {
      prep.mode = BasePredState::Prep::Mode::kFalse;
    } else if (bv.is_int64() && c.detail_type == ValueType::kInt64) {
      prep.mode = BasePredState::Prep::Mode::kInt;
      prep.i = bv.int64();
    } else if (bv.is_numeric() && (c.detail_type == ValueType::kInt64 ||
                                   c.detail_type == ValueType::kFloat64)) {
      prep.mode = BasePredState::Prep::Mode::kDouble;
      prep.d = bv.AsDouble();
    } else if (bv.is_string() && c.detail_type == ValueType::kString) {
      prep.mode = BasePredState::Prep::Mode::kString;
      prep.s = bv.str();
    } else {
      prep.mode = BasePredState::Prep::Mode::kBoxed;
      prep.boxed = std::move(bv);
    }
  }
  return state;
}

bool MatchDetailRow(const CompiledPredicate& pred, const BasePredState& state,
                    const Row& base_row, const ColumnSource& src, size_t r,
                    Row* scratch) {
  for (size_t i = 0; i < pred.correlated.size(); ++i) {
    const CorrelatedConjunct& c = pred.correlated[i];
    const BasePredState::Prep& prep = state.preps[i];
    switch (prep.mode) {
      case BasePredState::Prep::Mode::kFalse:
        return false;
      case BasePredState::Prep::Mode::kInt: {
        const Column& col = src.column(c.detail_col);
        if (col.IsNull(r) || !CmpOp(c.op, prep.i, col.Int64At(r))) {
          return false;
        }
        break;
      }
      case BasePredState::Prep::Mode::kDouble: {
        const Column& col = src.column(c.detail_col);
        if (col.IsNull(r) || !CmpOp(c.op, prep.d, CellAsDouble(col, r))) {
          return false;
        }
        break;
      }
      case BasePredState::Prep::Mode::kString: {
        const Column& col = src.column(c.detail_col);
        if (col.IsNull(r) || !CmpOp(c.op, prep.s, col.StringAt(r))) {
          return false;
        }
        break;
      }
      case BasePredState::Prep::Mode::kBoxed: {
        const Column& col = src.column(c.detail_col);
        if (col.IsNull(r)) return false;
        if (!CmpBoxed(c.op, prep.boxed, col.GetValue(r))) return false;
        break;
      }
      case BasePredState::Prep::Mode::kGeneric: {
        if (scratch->size() != pred.detail_width) {
          scratch->assign(pred.detail_width, Value::Null());
        }
        for (size_t col : c.ref_cols) {
          (*scratch)[col] = src.column(col).GetValue(r);
        }
        if (!c.bound->EvalBool(&base_row, scratch)) return false;
        break;
      }
    }
  }
  return true;
}

}  // namespace skalla
