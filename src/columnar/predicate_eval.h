// Vectorized predicate evaluation for the columnar GMDJ engine.
//
// A GMDJ condition θ splits (expr/analysis.h ClassifyCondition) into
// equality atoms, detail-only conjuncts, correlated conjuncts, and
// base-only conjuncts. Since AND evaluates each conjunct independently
// (NULL-as-false per operand), the split is semantically identical to θ
// and each class can be evaluated where it is cheapest:
//
//  - detail-only conjuncts become a selection bitmap computed in typed
//    tight loops over the columns, most-selective conjunct first so
//    later conjuncts only touch surviving rows (short-circuit in batch
//    form). Comparisons against literals and IN-sets are specialized;
//    anything else falls back to a scratch-row EvalBool, still batched.
//  - base-only conjuncts evaluate once per base row.
//  - correlated conjuncts evaluate per candidate pair, with the
//    base-side value of a separable comparison hoisted out of the
//    detail loop (PrepareBaseRow) and the comparison unboxed whenever
//    the types allow.
//
// Range-shaped detail conjuncts additionally prune whole chunks via the
// persisted ChunkColumnStats min/max (ChunkCannotSatisfy): a chunk whose
// stats prove every row fails a conjunct is skipped without pinning.
// Stats are stored as doubles, so bounds are widened by one ulp before
// deciding — pruning never changes results, only skips provably-dead
// work.
//
// Everything here replicates expr.cc evaluation semantics exactly
// (comparisons with NULL are false, Value::Equals/Compare numeric
// coercion), so the selection equals row-by-row EvalBool of the same
// conjuncts — the byte-identity contract with the row engine.

#ifndef SKALLA_COLUMNAR_PREDICATE_EVAL_H_
#define SKALLA_COLUMNAR_PREDICATE_EVAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "columnar/column_table.h"
#include "common/result.h"
#include "expr/analysis.h"
#include "expr/expr.h"
#include "storage/chunk.h"
#include "storage/partition.h"
#include "types/row.h"
#include "types/schema.h"
#include "types/value_set.h"

namespace skalla {

/// Non-owning columnar view: either a resident ColumnTable or one pinned
/// Chunk. Lets the kernels share one code path across both.
class ColumnSource {
 public:
  explicit ColumnSource(const ColumnTable& table) : table_(&table) {}
  explicit ColumnSource(const Chunk& chunk) : chunk_(&chunk) {}

  const Column& column(size_t i) const {
    return table_ != nullptr ? table_->column(i) : chunk_->column(i);
  }
  size_t num_rows() const {
    return table_ != nullptr ? table_->num_rows() : chunk_->num_rows();
  }

 private:
  const ColumnTable* table_ = nullptr;
  const Chunk* chunk_ = nullptr;
};

/// One compiled detail-only conjunct. The kind picks the typed loop;
/// kGeneric evaluates the bound expression against a scratch row.
struct DetailConjunct {
  enum class Kind : uint8_t {
    kCmpInt = 0,     // INT64 column `op` int64 literal, exact.
    kCmpDouble = 1,  // numeric column `op` numeric literal, as doubles.
    kCmpString = 2,  // STRING column `op` string literal.
    kInSet = 3,      // column IN {…}.
    kGeneric = 4,    // anything else: scratch-row EvalBool.
  };

  Kind kind = Kind::kGeneric;
  int col = -1;     // Detail column index (typed kinds and kInSet).
  BinaryOp op = BinaryOp::kEq;
  int64_t ilit = 0;
  double dlit = 0.0;
  std::string slit;
  std::shared_ptr<const ValueSet> set;

  /// Bound against (nullptr, detail schema); always set.
  ExprPtr bound;
  /// Detail columns the bound expression reads (deduped) — the scratch
  /// cells kGeneric fills per row.
  std::vector<size_t> ref_cols;

  /// Estimated accept fraction; evaluation order key.
  double selectivity = 1.0;
  /// Whether ChunkCannotSatisfy can use this conjunct (numeric
  /// comparison other than <>).
  bool prunable = false;
};

/// One compiled correlated conjunct. When the comparison separates as
/// `base_expr op r.col` the base side is evaluated once per base row
/// (PrepareBaseRow) and the detail loop compares unboxed; otherwise the
/// full bound expression evaluates per pair.
struct CorrelatedConjunct {
  /// Bound against (base schema, detail schema); always set.
  ExprPtr bound;
  std::vector<size_t> ref_cols;  // Detail columns for the scratch row.

  bool separable = false;
  ExprPtr base_expr;  // Bound against (base schema, nullptr).
  BinaryOp op = BinaryOp::kEq;
  int detail_col = -1;
  ValueType detail_type = ValueType::kNull;
};

/// The predicate part of one compiled GMDJ block: everything but the
/// equality atoms, ready to evaluate.
struct CompiledPredicate {
  /// Selectivity-ascending (stable: ties keep textual order).
  std::vector<DetailConjunct> detail;
  std::vector<CorrelatedConjunct> correlated;
  /// Bound against (base schema, nullptr).
  std::vector<ExprPtr> base_only;
  size_t detail_width = 0;  // Scratch-row size.

  bool has_detail() const { return !detail.empty(); }
  bool has_prunable() const;
};

/// Compiles the non-equi classes of one block. `col_range` supplies
/// detail-column [min, max] knowledge for selectivity ordering (may be
/// nullptr — heuristic defaults apply).
Result<CompiledPredicate> CompilePredicate(
    const ConjunctClasses& classes, const Schema& base_schema,
    const Schema& detail_schema,
    const std::function<std::optional<Interval>(const std::string&)>&
        col_range);

/// Adapts one site's PartitionInfo column knowledge into the col_range
/// callback CompilePredicate orders conjuncts with: a column maps to its
/// ColumnDistribution's [min, max] when both bounds are known. The
/// returned callback references `info`; the caller keeps it alive.
std::function<std::optional<Interval>(const std::string&)>
ColRangeFromPartition(const PartitionInfo& info, size_t site);

/// Evaluates the detail-only conjuncts over `src` into `sel` (resized to
/// src.num_rows(); 1 = row passes every conjunct). Equivalent to
/// EvalBool of their conjunction on each row.
void EvalDetailSelection(const CompiledPredicate& pred,
                         const ColumnSource& src, std::vector<uint8_t>* sel);

/// Whether `stats` prove no row of a chunk can satisfy `c`. Only
/// meaningful for prunable conjuncts; conservative under the doubled
/// min/max (bounds widened one ulp before deciding).
bool ChunkCannotSatisfy(const DetailConjunct& c, const ChunkColumnStats& stats);

/// Per-base-row predicate state: the base-only gate plus each correlated
/// conjunct's hoisted base side.
struct BasePredState {
  bool pass = true;  // All base-only conjuncts hold for this base row.

  struct Prep {
    enum class Mode : uint8_t {
      kFalse = 0,    // Base side is NULL — comparison fails every row.
      kInt = 1,      // int64 base value vs INT64 column, exact.
      kDouble = 2,   // numeric vs numeric, as doubles.
      kString = 3,   // string vs STRING column.
      kBoxed = 4,    // Separable but type-mixed: boxed compare.
      kGeneric = 5,  // Not separable: full EvalBool per pair.
    };
    Mode mode = Mode::kGeneric;
    int64_t i = 0;
    double d = 0.0;
    std::string s;
    Value boxed;
  };
  std::vector<Prep> preps;  // One per pred.correlated, in order.
};

/// Evaluates the base-only conjuncts and hoists each correlated
/// conjunct's base side for `base_row`.
BasePredState PrepareBaseRow(const CompiledPredicate& pred,
                             const Row& base_row);

/// Whether detail row `r` of `src` satisfies every correlated conjunct
/// against the prepared base row. `scratch` must be a row of
/// pred.detail_width cells (reused across calls). The base-only gate
/// (state.pass) is the caller's job.
bool MatchDetailRow(const CompiledPredicate& pred, const BasePredState& state,
                    const Row& base_row, const ColumnSource& src, size_t r,
                    Row* scratch);

}  // namespace skalla

#endif  // SKALLA_COLUMNAR_PREDICATE_EVAL_H_
