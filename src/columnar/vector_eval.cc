#include "columnar/vector_eval.h"

#include <algorithm>
#include <memory>
#include <unordered_map>

#include "common/hash.h"
#include "common/macros.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "expr/analysis.h"
#include "types/row.h"

namespace skalla {

bool ColumnarEligible(const GmdjOp& op) {
  for (const GmdjBlock& block : op.blocks) {
    if (block.theta == nullptr) return false;
    ConditionAnalysis analysis = AnalyzeCondition(block.theta);
    if (analysis.residual != nullptr || analysis.equi_atoms.empty()) {
      return false;
    }
  }
  return true;
}

namespace {

// Dense group assignment over the detail key columns.
struct GroupMap {
  // group id per detail row.
  std::vector<uint32_t> row_group;
  // Representative detail row per group (defines the group's key).
  std::vector<uint32_t> representatives;
  // hash -> candidate group ids.
  std::unordered_map<uint64_t, std::vector<uint32_t>> buckets;
};

uint64_t DetailKeyHash(const ColumnTable& detail,
                       const std::vector<size_t>& key_cols, size_t row) {
  uint64_t h = 0x5ca11aULL;  // Must match HashRowKey's seed.
  for (size_t c : key_cols) {
    h = HashCombine(h, detail.column(c).HashAt(row));
  }
  return h;
}

bool DetailKeysEqual(const ColumnTable& detail,
                     const std::vector<size_t>& key_cols, size_t a,
                     size_t b) {
  for (size_t c : key_cols) {
    if (!detail.column(c).CellEquals(a, detail.column(c), b)) return false;
  }
  return true;
}

GroupMap BuildGroups(const ColumnTable& detail,
                     const std::vector<size_t>& key_cols) {
  GroupMap map;
  map.row_group.resize(detail.num_rows());
  for (size_t r = 0; r < detail.num_rows(); ++r) {
    uint64_t h = DetailKeyHash(detail, key_cols, r);
    std::vector<uint32_t>& bucket = map.buckets[h];
    int64_t group = -1;
    for (uint32_t g : bucket) {
      if (DetailKeysEqual(detail, key_cols, r, map.representatives[g])) {
        group = g;
        break;
      }
    }
    if (group < 0) {
      group = static_cast<int64_t>(map.representatives.size());
      bucket.push_back(static_cast<uint32_t>(group));
      map.representatives.push_back(static_cast<uint32_t>(r));
    }
    map.row_group[r] = static_cast<uint32_t>(group);
  }
  return map;
}

// Typed accumulation state for one sub-aggregate over all groups.
struct PartState {
  SubAggregate spec;
  int input_col = -1;
  ValueType input_type = ValueType::kNull;
  std::vector<int64_t> counts;   // kCountStar / kCount.
  std::vector<int64_t> isums;    // kSum over INT64, or MIN/MAX holder.
  std::vector<double> dsums;     // kSum/MIN/MAX over FLOAT64.
  std::vector<uint8_t> any;      // Any non-null folded in.

  Value Final(size_t g) const {
    switch (spec.kind) {
      case AggKind::kCountStar:
      case AggKind::kCount:
        return Value(counts[g]);
      case AggKind::kSum:
      case AggKind::kMin:
      case AggKind::kMax:
        if (!any[g]) return Value::Null();
        return input_type == ValueType::kInt64 ? Value(isums[g])
                                               : Value(dsums[g]);
      case AggKind::kSumSq:
        return any[g] ? Value(dsums[g]) : Value::Null();
      case AggKind::kAvg:
      case AggKind::kVarPop:
      case AggKind::kStdDevPop:
        return Value::Null();  // Never sub-aggregates.
    }
    return Value::Null();
  }
};

// One tight pass folding a part's measure column into its group slots.
void Accumulate(PartState* part, const ColumnTable& detail,
                const std::vector<uint32_t>& row_group,
                size_t num_groups) {
  const size_t n = detail.num_rows();
  switch (part->spec.kind) {
    case AggKind::kCountStar:
      part->counts.assign(num_groups, 0);
      for (size_t r = 0; r < n; ++r) ++part->counts[row_group[r]];
      return;
    case AggKind::kCount: {
      part->counts.assign(num_groups, 0);
      const Column& in = detail.column(static_cast<size_t>(part->input_col));
      for (size_t r = 0; r < n; ++r) {
        if (!in.IsNull(r)) ++part->counts[row_group[r]];
      }
      return;
    }
    case AggKind::kSum: {
      part->any.assign(num_groups, 0);
      const Column& in = detail.column(static_cast<size_t>(part->input_col));
      if (part->input_type == ValueType::kInt64) {
        part->isums.assign(num_groups, 0);
        for (size_t r = 0; r < n; ++r) {
          if (in.IsNull(r)) continue;
          part->isums[row_group[r]] += in.Int64At(r);
          part->any[row_group[r]] = 1;
        }
      } else {
        part->dsums.assign(num_groups, 0.0);
        for (size_t r = 0; r < n; ++r) {
          if (in.IsNull(r)) continue;
          part->dsums[row_group[r]] += in.Float64At(r);
          part->any[row_group[r]] = 1;
        }
      }
      return;
    }
    case AggKind::kMin:
    case AggKind::kMax: {
      part->any.assign(num_groups, 0);
      const bool is_min = part->spec.kind == AggKind::kMin;
      const Column& in = detail.column(static_cast<size_t>(part->input_col));
      if (part->input_type == ValueType::kInt64) {
        part->isums.assign(num_groups, 0);
        for (size_t r = 0; r < n; ++r) {
          if (in.IsNull(r)) continue;
          uint32_t g = row_group[r];
          int64_t v = in.Int64At(r);
          if (!part->any[g] || (is_min ? v < part->isums[g]
                                       : v > part->isums[g])) {
            part->isums[g] = v;
          }
          part->any[g] = 1;
        }
      } else {
        part->dsums.assign(num_groups, 0.0);
        for (size_t r = 0; r < n; ++r) {
          if (in.IsNull(r)) continue;
          uint32_t g = row_group[r];
          double v = in.Float64At(r);
          if (!part->any[g] || (is_min ? v < part->dsums[g]
                                       : v > part->dsums[g])) {
            part->dsums[g] = v;
          }
          part->any[g] = 1;
        }
      }
      return;
    }
    case AggKind::kSumSq: {
      part->any.assign(num_groups, 0);
      part->dsums.assign(num_groups, 0.0);
      const Column& in = detail.column(static_cast<size_t>(part->input_col));
      if (part->input_type == ValueType::kInt64) {
        for (size_t r = 0; r < n; ++r) {
          if (in.IsNull(r)) continue;
          double v = static_cast<double>(in.Int64At(r));
          part->dsums[row_group[r]] += v * v;
          part->any[row_group[r]] = 1;
        }
      } else {
        for (size_t r = 0; r < n; ++r) {
          if (in.IsNull(r)) continue;
          double v = in.Float64At(r);
          part->dsums[row_group[r]] += v * v;
          part->any[row_group[r]] = 1;
        }
      }
      return;
    }
    case AggKind::kAvg:
    case AggKind::kVarPop:
    case AggKind::kStdDevPop:
      return;  // Decomposed before reaching here.
  }
}

// Probes a block's group map with a base row.
int64_t LookupGroup(const GroupMap& map, const ColumnTable& detail,
                    const std::vector<size_t>& detail_cols,
                    const Row& base_row,
                    const std::vector<size_t>& base_cols) {
  uint64_t h = HashRowKey(base_row, base_cols);
  auto it = map.buckets.find(h);
  if (it == map.buckets.end()) return -1;
  for (uint32_t g : it->second) {
    size_t repr = map.representatives[g];
    bool equal = true;
    for (size_t c = 0; c < detail_cols.size(); ++c) {
      if (!base_row[base_cols[c]].Equals(
              detail.column(detail_cols[c]).GetValue(repr))) {
        equal = false;
        break;
      }
    }
    if (equal) return g;
  }
  return -1;
}

// Per-block compiled state.
struct BlockExec {
  std::vector<size_t> base_cols;
  std::vector<size_t> detail_cols;
  GroupMap groups;
  std::vector<PartState> parts;
  std::vector<std::pair<size_t, size_t>> agg_part_ranges;
};

}  // namespace

Result<Table> EvalGmdjColumnar(const Table& base, const ColumnTable& detail,
                               const GmdjOp& op, const EvalContext& context) {
  SKALLA_RETURN_NOT_OK(ValidateEvalContext(context));
  if (context.cancellation != nullptr) {
    SKALLA_RETURN_NOT_OK(context.cancellation->Check());
  }
  if (!context.use_index) {
    return Status::InvalidArgument(
        "EvalGmdjColumnar has no nested-loop mode (use_index = false); "
        "oracle evaluation must use the row engine");
  }
  if (!ColumnarEligible(op)) {
    return Status::InvalidArgument(
        "operator has residual conditions; use the row evaluator");
  }
  const Schema& base_schema = *base.schema();
  const Schema& detail_schema = *detail.schema();

  SKALLA_ASSIGN_OR_RETURN(
      SchemaPtr out_schema,
      context.sub_aggregates
          ? op.PartialSchema(base_schema, detail_schema, context.compute_rng)
          : op.OutputSchema(base_schema, detail_schema));
  if (!context.sub_aggregates && context.compute_rng) {
    SKALLA_ASSIGN_OR_RETURN(
        out_schema,
        out_schema->AddField(Field{kRngCountColumn, ValueType::kInt64}));
  }

  // Compile every block (schema resolution can fail, so it stays on the
  // calling thread); the group build + typed folds run afterwards, one
  // task per block — each block's state is private, and within a block
  // the fold order is exactly the sequential one.
  std::vector<BlockExec> blocks(op.blocks.size());
  for (size_t bi = 0; bi < op.blocks.size(); ++bi) {
    const GmdjBlock& block = op.blocks[bi];
    BlockExec& exec = blocks[bi];
    ConditionAnalysis analysis = AnalyzeCondition(block.theta);
    for (const EquiAtom& atom : analysis.equi_atoms) {
      SKALLA_ASSIGN_OR_RETURN(size_t b_idx,
                              base_schema.RequireIndex(atom.base_col));
      SKALLA_ASSIGN_OR_RETURN(size_t d_idx,
                              detail_schema.RequireIndex(atom.detail_col));
      exec.base_cols.push_back(b_idx);
      exec.detail_cols.push_back(d_idx);
    }
    for (const AggSpec& spec : block.aggs) {
      std::vector<SubAggregate> decomposed = Decompose(spec);
      exec.agg_part_ranges.emplace_back(exec.parts.size(),
                                        decomposed.size());
      for (SubAggregate& sub : decomposed) {
        PartState part;
        part.spec = std::move(sub);
        if (!part.spec.input.empty()) {
          SKALLA_ASSIGN_OR_RETURN(
              size_t idx, detail_schema.RequireIndex(part.spec.input));
          part.input_col = static_cast<int>(idx);
          part.input_type = detail_schema.field(idx).type;
        }
        exec.parts.push_back(std::move(part));
      }
    }
  }

  const size_t threads = ResolveEvalThreads(context.eval_threads);
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);

  auto eval_block = [&](size_t bi) {
    if (context.cancellation != nullptr &&
        !context.cancellation->Check().ok()) {
      return;
    }
    BlockExec& exec = blocks[bi];
    exec.groups = BuildGroups(detail, exec.detail_cols);
    const size_t num_groups = exec.groups.representatives.size();
    for (PartState& part : exec.parts) {
      Accumulate(&part, detail, exec.groups.row_group, num_groups);
    }
    if (context.profile != nullptr) {
      // Each block's group build + typed folds stream the whole detail
      // partition once.
      context.profile->rows_scanned.fetch_add(detail.num_rows(),
                                              std::memory_order_relaxed);
    }
  };
  if (pool != nullptr && blocks.size() > 1) {
    pool->ParallelFor(blocks.size(), eval_block);
  } else {
    for (size_t bi = 0; bi < blocks.size(); ++bi) eval_block(bi);
  }

  // Cancelled blocks left their state empty — surface the cancellation
  // before any of it could be misread as a result.
  if (context.cancellation != nullptr) {
    SKALLA_RETURN_NOT_OK(context.cancellation->Check());
  }

  const size_t num_base = base.num_rows();
  // Group-probe counts batched per assembly chunk (one fetch_add per
  // chunk, not per row).
  struct ProbeCounts {
    uint64_t hits = 0;
    uint64_t matched = 0;
  };
  auto flush_counts = [&](const ProbeCounts& counts) {
    if (context.profile == nullptr) return;
    context.profile->index_hits.fetch_add(counts.hits,
                                          std::memory_order_relaxed);
    context.profile->rows_matched.fetch_add(counts.matched,
                                            std::memory_order_relaxed);
  };
  auto build_row = [&](size_t b, ProbeCounts* counts) {
    const Row& base_row = base.row(b);
    Row row = base_row;
    row.reserve(out_schema->num_fields());
    bool matched = false;
    for (size_t bi = 0; bi < op.blocks.size(); ++bi) {
      const BlockExec& exec = blocks[bi];
      int64_t group = LookupGroup(exec.groups, detail, exec.detail_cols,
                                  base_row, exec.base_cols);
      if (group >= 0) {
        matched = true;
        ++counts->hits;
      }
      if (context.sub_aggregates) {
        for (const PartState& part : exec.parts) {
          if (group >= 0) {
            row.push_back(part.Final(static_cast<size_t>(group)));
          } else {
            row.push_back(InitialPartValue(part.spec));
          }
        }
      } else {
        for (size_t ai = 0; ai < op.blocks[bi].aggs.size(); ++ai) {
          auto [start, len] = exec.agg_part_ranges[ai];
          std::vector<Value> cell_parts;
          cell_parts.reserve(len);
          for (size_t p = 0; p < len; ++p) {
            const PartState& part = exec.parts[start + p];
            cell_parts.push_back(group >= 0
                                     ? part.Final(static_cast<size_t>(group))
                                     : InitialPartValue(part.spec));
          }
          row.push_back(
              FinalizeAggregate(op.blocks[bi].aggs[ai], cell_parts));
        }
      }
    }
    if (context.compute_rng) {
      row.push_back(Value(int64_t{matched ? 1 : 0}));
    }
    if (matched) ++counts->matched;
    return row;
  };

  Table out(out_schema);
  out.Reserve(num_base);
  if (pool != nullptr && num_base > context.morsel_rows) {
    // Assemble rows into pre-sized slots in base-row chunks, then append
    // in order — slot writes are disjoint and append order is fixed, so
    // output is byte-identical to the sequential pass.
    std::vector<Row> rows(num_base);
    const size_t chunks =
        (num_base - 1) / context.morsel_rows + 1;
    pool->ParallelFor(chunks, [&](size_t m) {
      if (context.cancellation != nullptr &&
          !context.cancellation->Check().ok()) {
        return;
      }
      const size_t lo = m * context.morsel_rows;
      const size_t hi = std::min(lo + context.morsel_rows, num_base);
      ProbeCounts counts;
      for (size_t b = lo; b < hi; ++b) rows[b] = build_row(b, &counts);
      flush_counts(counts);
    });
    if (context.cancellation != nullptr) {
      SKALLA_RETURN_NOT_OK(context.cancellation->Check());
    }
    for (size_t b = 0; b < num_base; ++b) {
      out.AppendUnchecked(std::move(rows[b]));
    }
  } else {
    ProbeCounts counts;
    for (size_t b = 0; b < num_base; ++b) {
      out.AppendUnchecked(build_row(b, &counts));
    }
    flush_counts(counts);
  }
  return out;
}

}  // namespace skalla
