#include "columnar/vector_eval.h"

#include <algorithm>
#include <functional>
#include <memory>
#include <unordered_map>
#include <utility>

#include "common/hash.h"
#include "common/macros.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "expr/analysis.h"
#include "types/row.h"

namespace skalla {

bool ColumnarEligible(const GmdjOp& op) {
  for (const GmdjBlock& block : op.blocks) {
    if (block.theta == nullptr) return false;
    ConditionAnalysis analysis = AnalyzeCondition(block.theta);
    if (analysis.residual != nullptr || analysis.equi_atoms.empty()) {
      return false;
    }
  }
  return true;
}

namespace {

// Dense group assignment over the detail key columns.
struct GroupMap {
  // group id per detail row.
  std::vector<uint32_t> row_group;
  // Representative detail row per group (defines the group's key).
  std::vector<uint32_t> representatives;
  // hash -> candidate group ids.
  std::unordered_map<uint64_t, std::vector<uint32_t>> buckets;
};

uint64_t DetailKeyHash(const ColumnTable& detail,
                       const std::vector<size_t>& key_cols, size_t row) {
  uint64_t h = 0x5ca11aULL;  // Must match HashRowKey's seed.
  for (size_t c : key_cols) {
    h = HashCombine(h, detail.column(c).HashAt(row));
  }
  return h;
}

bool DetailKeysEqual(const ColumnTable& detail,
                     const std::vector<size_t>& key_cols, size_t a,
                     size_t b) {
  for (size_t c : key_cols) {
    if (!detail.column(c).CellEquals(a, detail.column(c), b)) return false;
  }
  return true;
}

GroupMap BuildGroups(const ColumnTable& detail,
                     const std::vector<size_t>& key_cols) {
  GroupMap map;
  map.row_group.resize(detail.num_rows());
  for (size_t r = 0; r < detail.num_rows(); ++r) {
    uint64_t h = DetailKeyHash(detail, key_cols, r);
    std::vector<uint32_t>& bucket = map.buckets[h];
    int64_t group = -1;
    for (uint32_t g : bucket) {
      if (DetailKeysEqual(detail, key_cols, r, map.representatives[g])) {
        group = g;
        break;
      }
    }
    if (group < 0) {
      group = static_cast<int64_t>(map.representatives.size());
      bucket.push_back(static_cast<uint32_t>(group));
      map.representatives.push_back(static_cast<uint32_t>(r));
    }
    map.row_group[r] = static_cast<uint32_t>(group);
  }
  return map;
}

// Typed accumulation state for one sub-aggregate over all groups.
struct PartState {
  SubAggregate spec;
  int input_col = -1;
  ValueType input_type = ValueType::kNull;
  std::vector<int64_t> counts;   // kCountStar / kCount.
  std::vector<int64_t> isums;    // kSum over INT64, or MIN/MAX holder.
  std::vector<double> dsums;     // kSum/MIN/MAX over FLOAT64.
  std::vector<uint8_t> any;      // Any non-null folded in.

  Value Final(size_t g) const {
    switch (spec.kind) {
      case AggKind::kCountStar:
      case AggKind::kCount:
        return Value(counts[g]);
      case AggKind::kSum:
      case AggKind::kMin:
      case AggKind::kMax:
        if (!any[g]) return Value::Null();
        return input_type == ValueType::kInt64 ? Value(isums[g])
                                               : Value(dsums[g]);
      case AggKind::kSumSq:
        return any[g] ? Value(dsums[g]) : Value::Null();
      case AggKind::kAvg:
      case AggKind::kVarPop:
      case AggKind::kStdDevPop:
        return Value::Null();  // Never sub-aggregates.
    }
    return Value::Null();
  }
};

// Grows a part's group slots to `num_groups`, zero-filling new slots
// (resize-from-empty is exactly the full assignment the one-shot path
// used, so streamed growth folds to the same bytes).
void EnsureGroups(PartState* part, size_t num_groups) {
  switch (part->spec.kind) {
    case AggKind::kCountStar:
    case AggKind::kCount:
      part->counts.resize(num_groups, 0);
      return;
    case AggKind::kSum:
    case AggKind::kMin:
    case AggKind::kMax:
      part->any.resize(num_groups, 0);
      if (part->input_type == ValueType::kInt64) {
        part->isums.resize(num_groups, 0);
      } else {
        part->dsums.resize(num_groups, 0.0);
      }
      return;
    case AggKind::kSumSq:
      part->any.resize(num_groups, 0);
      part->dsums.resize(num_groups, 0.0);
      return;
    case AggKind::kAvg:
    case AggKind::kVarPop:
    case AggKind::kStdDevPop:
      return;  // Decomposed before reaching here.
  }
}

// One tight pass folding `n` rows of `in` (nullptr only for COUNT(*))
// into the part's group slots; row r belongs to group row_group[r]. The
// caller guarantees the slots cover every group id in the range.
void FoldColumn(PartState* part, const Column* in,
                const uint32_t* row_group, size_t n) {
  switch (part->spec.kind) {
    case AggKind::kCountStar:
      for (size_t r = 0; r < n; ++r) ++part->counts[row_group[r]];
      return;
    case AggKind::kCount:
      for (size_t r = 0; r < n; ++r) {
        if (!in->IsNull(r)) ++part->counts[row_group[r]];
      }
      return;
    case AggKind::kSum:
      if (part->input_type == ValueType::kInt64) {
        for (size_t r = 0; r < n; ++r) {
          if (in->IsNull(r)) continue;
          part->isums[row_group[r]] += in->Int64At(r);
          part->any[row_group[r]] = 1;
        }
      } else {
        for (size_t r = 0; r < n; ++r) {
          if (in->IsNull(r)) continue;
          part->dsums[row_group[r]] += in->Float64At(r);
          part->any[row_group[r]] = 1;
        }
      }
      return;
    case AggKind::kMin:
    case AggKind::kMax: {
      const bool is_min = part->spec.kind == AggKind::kMin;
      if (part->input_type == ValueType::kInt64) {
        for (size_t r = 0; r < n; ++r) {
          if (in->IsNull(r)) continue;
          uint32_t g = row_group[r];
          int64_t v = in->Int64At(r);
          if (!part->any[g] || (is_min ? v < part->isums[g]
                                       : v > part->isums[g])) {
            part->isums[g] = v;
          }
          part->any[g] = 1;
        }
      } else {
        for (size_t r = 0; r < n; ++r) {
          if (in->IsNull(r)) continue;
          uint32_t g = row_group[r];
          double v = in->Float64At(r);
          if (!part->any[g] || (is_min ? v < part->dsums[g]
                                       : v > part->dsums[g])) {
            part->dsums[g] = v;
          }
          part->any[g] = 1;
        }
      }
      return;
    }
    case AggKind::kSumSq:
      if (part->input_type == ValueType::kInt64) {
        for (size_t r = 0; r < n; ++r) {
          if (in->IsNull(r)) continue;
          double v = static_cast<double>(in->Int64At(r));
          part->dsums[row_group[r]] += v * v;
          part->any[row_group[r]] = 1;
        }
      } else {
        for (size_t r = 0; r < n; ++r) {
          if (in->IsNull(r)) continue;
          double v = in->Float64At(r);
          part->dsums[row_group[r]] += v * v;
          part->any[row_group[r]] = 1;
        }
      }
      return;
    case AggKind::kAvg:
    case AggKind::kVarPop:
    case AggKind::kStdDevPop:
      return;  // Decomposed before reaching here.
  }
}

// One-shot accumulation over a fully resident column table.
void Accumulate(PartState* part, const ColumnTable& detail,
                const std::vector<uint32_t>& row_group,
                size_t num_groups) {
  EnsureGroups(part, num_groups);
  const Column* in =
      part->input_col >= 0
          ? &detail.column(static_cast<size_t>(part->input_col))
          : nullptr;
  FoldColumn(part, in, row_group.data(), detail.num_rows());
}

// Probes a block's group map with a base row.
int64_t LookupGroup(const GroupMap& map, const ColumnTable& detail,
                    const std::vector<size_t>& detail_cols,
                    const Row& base_row,
                    const std::vector<size_t>& base_cols) {
  uint64_t h = HashRowKey(base_row, base_cols);
  auto it = map.buckets.find(h);
  if (it == map.buckets.end()) return -1;
  for (uint32_t g : it->second) {
    size_t repr = map.representatives[g];
    bool equal = true;
    for (size_t c = 0; c < detail_cols.size(); ++c) {
      if (!base_row[base_cols[c]].Equals(
              detail.column(detail_cols[c]).GetValue(repr))) {
        equal = false;
        break;
      }
    }
    if (equal) return g;
  }
  return -1;
}

// The block fields shared by the resident and chunked evaluations.
struct CompiledBlock {
  std::vector<size_t> base_cols;
  std::vector<size_t> detail_cols;
  std::vector<PartState> parts;
  std::vector<std::pair<size_t, size_t>> agg_part_ranges;
};

Status CompileBlock(const GmdjBlock& block, const Schema& base_schema,
                    const Schema& detail_schema, CompiledBlock* exec) {
  ConditionAnalysis analysis = AnalyzeCondition(block.theta);
  for (const EquiAtom& atom : analysis.equi_atoms) {
    SKALLA_ASSIGN_OR_RETURN(size_t b_idx,
                            base_schema.RequireIndex(atom.base_col));
    SKALLA_ASSIGN_OR_RETURN(size_t d_idx,
                            detail_schema.RequireIndex(atom.detail_col));
    exec->base_cols.push_back(b_idx);
    exec->detail_cols.push_back(d_idx);
  }
  for (const AggSpec& spec : block.aggs) {
    std::vector<SubAggregate> decomposed = Decompose(spec);
    exec->agg_part_ranges.emplace_back(exec->parts.size(),
                                       decomposed.size());
    for (SubAggregate& sub : decomposed) {
      PartState part;
      part.spec = std::move(sub);
      if (!part.spec.input.empty()) {
        SKALLA_ASSIGN_OR_RETURN(size_t idx,
                                detail_schema.RequireIndex(part.spec.input));
        part.input_col = static_cast<int>(idx);
        part.input_type = detail_schema.field(idx).type;
      }
      exec->parts.push_back(std::move(part));
    }
  }
  return Status::OK();
}

Result<SchemaPtr> ColumnarOutSchema(const GmdjOp& op,
                                    const Schema& base_schema,
                                    const Schema& detail_schema,
                                    const EvalContext& context) {
  SKALLA_ASSIGN_OR_RETURN(
      SchemaPtr out_schema,
      context.sub_aggregates
          ? op.PartialSchema(base_schema, detail_schema, context.compute_rng)
          : op.OutputSchema(base_schema, detail_schema));
  if (!context.sub_aggregates && context.compute_rng) {
    SKALLA_ASSIGN_OR_RETURN(
        out_schema,
        out_schema->AddField(Field{kRngCountColumn, ValueType::kInt64}));
  }
  return out_schema;
}

Status CheckColumnarPreconditions(const GmdjOp& op,
                                  const EvalContext& context) {
  SKALLA_RETURN_NOT_OK(ValidateEvalContext(context));
  if (context.cancellation != nullptr) {
    SKALLA_RETURN_NOT_OK(context.cancellation->Check());
  }
  if (!context.use_index) {
    return Status::InvalidArgument(
        "EvalGmdjColumnar has no nested-loop mode (use_index = false); "
        "oracle evaluation must use the row engine");
  }
  if (!ColumnarEligible(op)) {
    return Status::InvalidArgument(
        "operator has residual conditions; use the row evaluator");
  }
  return Status::OK();
}

// Read view of one evaluated block for output assembly: its part states
// plus a probe from base row to group id (or -1).
struct EvaledBlockView {
  const std::vector<PartState>* parts = nullptr;
  const std::vector<std::pair<size_t, size_t>>* agg_part_ranges = nullptr;
  std::function<int64_t(const Row&)> probe;
};

// Output assembly shared by the resident and chunked paths: probe each
// block's group map per base row, finalize or emit sub-aggregates. The
// parallel variant writes rows into pre-sized slots in base-row chunks
// and appends in order, so output is byte-identical to the sequential
// pass.
Result<Table> AssembleColumnar(const Table& base, const GmdjOp& op,
                               const EvalContext& context,
                               const SchemaPtr& out_schema,
                               const std::vector<EvaledBlockView>& blocks,
                               ThreadPool* pool) {
  const size_t num_base = base.num_rows();
  // Group-probe counts batched per assembly chunk (one fetch_add per
  // chunk, not per row).
  struct ProbeCounts {
    uint64_t hits = 0;
    uint64_t matched = 0;
  };
  auto flush_counts = [&](const ProbeCounts& counts) {
    if (context.profile == nullptr) return;
    context.profile->index_hits.fetch_add(counts.hits,
                                          std::memory_order_relaxed);
    context.profile->rows_matched.fetch_add(counts.matched,
                                            std::memory_order_relaxed);
  };
  auto build_row = [&](size_t b, ProbeCounts* counts) {
    const Row& base_row = base.row(b);
    Row row = base_row;
    row.reserve(out_schema->num_fields());
    bool matched = false;
    for (size_t bi = 0; bi < op.blocks.size(); ++bi) {
      const EvaledBlockView& exec = blocks[bi];
      int64_t group = exec.probe(base_row);
      if (group >= 0) {
        matched = true;
        ++counts->hits;
      }
      if (context.sub_aggregates) {
        for (const PartState& part : *exec.parts) {
          if (group >= 0) {
            row.push_back(part.Final(static_cast<size_t>(group)));
          } else {
            row.push_back(InitialPartValue(part.spec));
          }
        }
      } else {
        for (size_t ai = 0; ai < op.blocks[bi].aggs.size(); ++ai) {
          auto [start, len] = (*exec.agg_part_ranges)[ai];
          std::vector<Value> cell_parts;
          cell_parts.reserve(len);
          for (size_t p = 0; p < len; ++p) {
            const PartState& part = (*exec.parts)[start + p];
            cell_parts.push_back(group >= 0
                                     ? part.Final(static_cast<size_t>(group))
                                     : InitialPartValue(part.spec));
          }
          row.push_back(
              FinalizeAggregate(op.blocks[bi].aggs[ai], cell_parts));
        }
      }
    }
    if (context.compute_rng) {
      row.push_back(Value(int64_t{matched ? 1 : 0}));
    }
    if (matched) ++counts->matched;
    return row;
  };

  Table out(out_schema);
  out.Reserve(num_base);
  if (pool != nullptr && num_base > context.morsel_rows) {
    std::vector<Row> rows(num_base);
    const size_t chunks = (num_base - 1) / context.morsel_rows + 1;
    pool->ParallelFor(chunks, [&](size_t m) {
      if (context.cancellation != nullptr &&
          !context.cancellation->Check().ok()) {
        return;
      }
      const size_t lo = m * context.morsel_rows;
      const size_t hi = std::min(lo + context.morsel_rows, num_base);
      ProbeCounts counts;
      for (size_t b = lo; b < hi; ++b) rows[b] = build_row(b, &counts);
      flush_counts(counts);
    });
    if (context.cancellation != nullptr) {
      SKALLA_RETURN_NOT_OK(context.cancellation->Check());
    }
    for (size_t b = 0; b < num_base; ++b) {
      out.AppendUnchecked(std::move(rows[b]));
    }
  } else {
    ProbeCounts counts;
    for (size_t b = 0; b < num_base; ++b) {
      out.AppendUnchecked(build_row(b, &counts));
    }
    flush_counts(counts);
  }
  return out;
}

// --- Chunked grouping ------------------------------------------------------

// Group map over a chunk-paged relation. Unlike GroupMap it owns boxed
// copies of its representative keys: the chunk a representative row
// lives in may be evicted between the build and the probe.
struct ChunkedGroups {
  std::vector<uint32_t> row_group;  // global row -> group id
  std::vector<Row> keys;            // boxed key per group, detail_cols order
  std::unordered_map<uint64_t, std::vector<uint32_t>> buckets;
};

int64_t LookupGroupChunked(const ChunkedGroups& groups, const Row& base_row,
                           const std::vector<size_t>& base_cols) {
  uint64_t h = HashRowKey(base_row, base_cols);
  auto it = groups.buckets.find(h);
  if (it == groups.buckets.end()) return -1;
  for (uint32_t g : it->second) {
    const Row& key = groups.keys[g];
    bool equal = true;
    for (size_t c = 0; c < key.size(); ++c) {
      if (!base_row[base_cols[c]].Equals(key[c])) {
        equal = false;
        break;
      }
    }
    if (equal) return g;
  }
  return -1;
}

struct ChunkedBlockExec {
  CompiledBlock compiled;
  ChunkedGroups groups;
};

// Streams the detail chunks once: group assignment and all part folds
// happen per chunk while it is pinned. Group ids are assigned in
// first-occurrence order over the global row order and every part slot
// sees its updates in ascending row order — both exactly as the resident
// BuildGroups + Accumulate pair — so the block state is byte-identical
// to the in-memory evaluation.
Status EvalBlockChunked(const DataProvider& detail, ChunkedBlockExec* exec,
                        const EvalContext& context) {
  const std::vector<size_t>& key_cols = exec->compiled.detail_cols;
  ChunkedGroups& groups = exec->groups;
  groups.row_group.resize(detail.num_rows());
  Row scratch;
  for (size_t ci = 0; ci < detail.num_chunks(); ++ci) {
    if (context.cancellation != nullptr) {
      SKALLA_RETURN_NOT_OK(context.cancellation->Check());
    }
    SKALLA_ASSIGN_OR_RETURN(PinnedChunk pin, detail.Pin(ci));
    const Chunk& chunk = *pin;
    const size_t row_base = detail.chunk_row_begin(ci);
    const size_t n = chunk.num_rows();
    for (size_t r = 0; r < n; ++r) {
      uint64_t h = 0x5ca11aULL;  // Must match HashRowKey's seed.
      for (size_t c : key_cols) {
        h = HashCombine(h, chunk.column(c).HashAt(r));
      }
      scratch.clear();
      for (size_t c : key_cols) scratch.push_back(chunk.column(c).GetValue(r));
      std::vector<uint32_t>& bucket = groups.buckets[h];
      int64_t group = -1;
      for (uint32_t g : bucket) {
        const Row& key = groups.keys[g];
        bool equal = true;
        for (size_t c = 0; c < key.size(); ++c) {
          if (!scratch[c].Equals(key[c])) {
            equal = false;
            break;
          }
        }
        if (equal) {
          group = g;
          break;
        }
      }
      if (group < 0) {
        group = static_cast<int64_t>(groups.keys.size());
        bucket.push_back(static_cast<uint32_t>(group));
        groups.keys.push_back(scratch);
      }
      groups.row_group[row_base + r] = static_cast<uint32_t>(group);
    }
    const size_t num_groups = groups.keys.size();
    for (PartState& part : exec->compiled.parts) {
      EnsureGroups(&part, num_groups);
      const Column* in =
          part.input_col >= 0
              ? &chunk.column(static_cast<size_t>(part.input_col))
              : nullptr;
      FoldColumn(&part, in, groups.row_group.data() + row_base, n);
    }
  }
  if (context.profile != nullptr) {
    context.profile->rows_scanned.fetch_add(detail.num_rows(),
                                            std::memory_order_relaxed);
  }
  return Status::OK();
}

}  // namespace

Result<Table> EvalGmdjColumnar(const Table& base, const ColumnTable& detail,
                               const GmdjOp& op, const EvalContext& context) {
  SKALLA_RETURN_NOT_OK(CheckColumnarPreconditions(op, context));
  const Schema& base_schema = *base.schema();
  const Schema& detail_schema = *detail.schema();
  SKALLA_ASSIGN_OR_RETURN(
      SchemaPtr out_schema,
      ColumnarOutSchema(op, base_schema, detail_schema, context));

  // Compile every block (schema resolution can fail, so it stays on the
  // calling thread); the group build + typed folds run afterwards, one
  // task per block — each block's state is private, and within a block
  // the fold order is exactly the sequential one.
  struct BlockExec {
    CompiledBlock compiled;
    GroupMap groups;
  };
  std::vector<BlockExec> blocks(op.blocks.size());
  for (size_t bi = 0; bi < op.blocks.size(); ++bi) {
    SKALLA_RETURN_NOT_OK(CompileBlock(op.blocks[bi], base_schema,
                                      detail_schema, &blocks[bi].compiled));
  }

  const size_t threads = ResolveEvalThreads(context.eval_threads);
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);

  auto eval_block = [&](size_t bi) {
    if (context.cancellation != nullptr &&
        !context.cancellation->Check().ok()) {
      return;
    }
    BlockExec& exec = blocks[bi];
    exec.groups = BuildGroups(detail, exec.compiled.detail_cols);
    const size_t num_groups = exec.groups.representatives.size();
    for (PartState& part : exec.compiled.parts) {
      Accumulate(&part, detail, exec.groups.row_group, num_groups);
    }
    if (context.profile != nullptr) {
      // Each block's group build + typed folds stream the whole detail
      // partition once.
      context.profile->rows_scanned.fetch_add(detail.num_rows(),
                                              std::memory_order_relaxed);
    }
  };
  if (pool != nullptr && blocks.size() > 1) {
    pool->ParallelFor(blocks.size(), eval_block);
  } else {
    for (size_t bi = 0; bi < blocks.size(); ++bi) eval_block(bi);
  }

  // Cancelled blocks left their state empty — surface the cancellation
  // before any of it could be misread as a result.
  if (context.cancellation != nullptr) {
    SKALLA_RETURN_NOT_OK(context.cancellation->Check());
  }

  std::vector<EvaledBlockView> views(blocks.size());
  for (size_t bi = 0; bi < blocks.size(); ++bi) {
    BlockExec& exec = blocks[bi];
    views[bi].parts = &exec.compiled.parts;
    views[bi].agg_part_ranges = &exec.compiled.agg_part_ranges;
    views[bi].probe = [&exec, &detail](const Row& base_row) {
      return LookupGroup(exec.groups, detail, exec.compiled.detail_cols,
                         base_row, exec.compiled.base_cols);
    };
  }
  return AssembleColumnar(base, op, context, out_schema, views, pool.get());
}

Result<Table> EvalGmdjColumnar(const Table& base, const DataProvider& detail,
                               const GmdjOp& op, const EvalContext& context) {
  SKALLA_RETURN_NOT_OK(CheckColumnarPreconditions(op, context));
  const Schema& base_schema = *base.schema();
  const Schema& detail_schema = *detail.schema();
  SKALLA_ASSIGN_OR_RETURN(
      SchemaPtr out_schema,
      ColumnarOutSchema(op, base_schema, detail_schema, context));

  std::vector<ChunkedBlockExec> blocks(op.blocks.size());
  for (size_t bi = 0; bi < op.blocks.size(); ++bi) {
    SKALLA_RETURN_NOT_OK(CompileBlock(op.blocks[bi], base_schema,
                                      detail_schema, &blocks[bi].compiled));
  }

  const size_t threads = ResolveEvalThreads(context.eval_threads);
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);

  // Blocks still evaluate concurrently (private state, private chunk
  // pins — the BufferManager deduplicates concurrent loads); each
  // block's Pin failures surface as its status.
  std::vector<Status> block_status(blocks.size());
  auto eval_block = [&](size_t bi) {
    block_status[bi] = EvalBlockChunked(detail, &blocks[bi], context);
  };
  if (pool != nullptr && blocks.size() > 1) {
    pool->ParallelFor(blocks.size(), eval_block);
  } else {
    for (size_t bi = 0; bi < blocks.size(); ++bi) eval_block(bi);
  }
  for (const Status& status : block_status) {
    SKALLA_RETURN_NOT_OK(status);
  }
  if (context.cancellation != nullptr) {
    SKALLA_RETURN_NOT_OK(context.cancellation->Check());
  }

  std::vector<EvaledBlockView> views(blocks.size());
  for (size_t bi = 0; bi < blocks.size(); ++bi) {
    ChunkedBlockExec& exec = blocks[bi];
    views[bi].parts = &exec.compiled.parts;
    views[bi].agg_part_ranges = &exec.compiled.agg_part_ranges;
    views[bi].probe = [&exec](const Row& base_row) {
      return LookupGroupChunked(exec.groups, base_row,
                                exec.compiled.base_cols);
    };
  }
  return AssembleColumnar(base, op, context, out_schema, views, pool.get());
}

}  // namespace skalla
