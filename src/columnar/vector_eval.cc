#include "columnar/vector_eval.h"

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "columnar/agg_kernels.h"
#include "columnar/predicate_eval.h"
#include "common/hash.h"
#include "common/macros.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "core/morsels.h"
#include "expr/analysis.h"
#include "obs/obs.h"
#include "types/row.h"

namespace skalla {

namespace {

// --- Compilation -----------------------------------------------------------

// One block compiled against fixed base/detail schemas: equality-atom
// column pairings, the compiled predicate, and the type-specialized
// aggregate parts.
struct CompiledBlock {
  std::vector<size_t> base_cols;
  std::vector<size_t> detail_cols;
  bool has_equi = false;
  CompiledPredicate pred;
  std::vector<AggPart> parts;
  std::vector<std::pair<size_t, size_t>> agg_part_ranges;
};

enum class BlockPath : uint8_t {
  kGrouped = 0,     // equality atoms, no correlated conjuncts
  kCandidates = 1,  // equality atoms + correlated conjuncts
  kScan = 2,        // no equality atoms
};

BlockPath PathOf(const CompiledBlock& block) {
  if (!block.has_equi) return BlockPath::kScan;
  return block.pred.correlated.empty() ? BlockPath::kGrouped
                                       : BlockPath::kCandidates;
}

Status CompileBlock(
    const GmdjBlock& block, const Schema& base_schema,
    const Schema& detail_schema,
    const std::function<std::optional<Interval>(const std::string&)>&
        col_range,
    CompiledBlock* exec) {
  if (block.theta == nullptr) {
    return Status::InvalidArgument("GMDJ block has no condition");
  }
  ConjunctClasses classes = ClassifyCondition(block.theta);
  for (const EquiAtom& atom : classes.equi_atoms) {
    SKALLA_ASSIGN_OR_RETURN(size_t b_idx,
                            base_schema.RequireIndex(atom.base_col));
    SKALLA_ASSIGN_OR_RETURN(size_t d_idx,
                            detail_schema.RequireIndex(atom.detail_col));
    exec->base_cols.push_back(b_idx);
    exec->detail_cols.push_back(d_idx);
  }
  exec->has_equi = !exec->base_cols.empty();
  SKALLA_ASSIGN_OR_RETURN(
      exec->pred,
      CompilePredicate(classes, base_schema, detail_schema, col_range));
  for (const AggSpec& spec : block.aggs) {
    std::vector<SubAggregate> decomposed = Decompose(spec);
    exec->agg_part_ranges.emplace_back(exec->parts.size(), decomposed.size());
    for (SubAggregate& sub : decomposed) {
      SKALLA_ASSIGN_OR_RETURN(AggPart part,
                              CompileAggPart(std::move(sub), detail_schema));
      exec->parts.push_back(std::move(part));
    }
  }
  return Status::OK();
}

// Column-range knowledge for selectivity ordering, aggregated from the
// provider's persisted chunk stats (nullopt when any chunk lacks them).
// Heuristic only — never used for correctness.
std::function<std::optional<Interval>(const std::string&)>
MakeProviderColRange(const DataProvider& detail) {
  const DataProvider* provider = &detail;
  auto cache =
      std::make_shared<std::map<std::string, std::optional<Interval>>>();
  return [provider, cache](const std::string& name) -> std::optional<Interval> {
    auto it = cache->find(name);
    if (it != cache->end()) return it->second;
    std::optional<Interval> out;
    const int idx = provider->schema()->IndexOf(name);
    if (idx >= 0) {
      bool complete = true, any = false;
      double lo = 0.0, hi = 0.0;
      for (size_t ci = 0; ci < provider->num_chunks(); ++ci) {
        const ChunkColumnStats* stats =
            provider->chunk_column_stats(ci, static_cast<size_t>(idx));
        if (stats == nullptr) {
          complete = false;
          break;
        }
        if (!stats->has_range) continue;  // All-null chunk: no range.
        if (!any) {
          lo = stats->min;
          hi = stats->max;
          any = true;
        } else {
          lo = std::min(lo, stats->min);
          hi = std::max(hi, stats->max);
        }
      }
      if (complete && any) out = Interval{lo, hi};
    }
    (*cache)[name] = out;
    return out;
  };
}

// --- Grouping (resident) ---------------------------------------------------

// Dense group assignment over the detail key columns.
struct GroupMap {
  // Group id per detail row; kNoSlot for rows the selection removed.
  std::vector<uint32_t> row_group;
  // Representative detail row per group (defines the group's key).
  std::vector<uint32_t> representatives;
  // hash -> candidate group ids.
  std::unordered_map<uint64_t, std::vector<uint32_t>> buckets;
  // Selected detail rows per group, ascending (candidates path only).
  std::vector<std::vector<uint32_t>> group_rows;
};

uint64_t DetailKeyHash(const ColumnTable& detail,
                       const std::vector<size_t>& key_cols, size_t row) {
  uint64_t h = 0x5ca11aULL;  // Must match HashRowKey's seed.
  for (size_t c : key_cols) {
    h = HashCombine(h, detail.column(c).HashAt(row));
  }
  return h;
}

bool DetailKeysEqual(const ColumnTable& detail,
                     const std::vector<size_t>& key_cols, size_t a,
                     size_t b) {
  for (size_t c : key_cols) {
    if (!detail.column(c).CellEquals(a, detail.column(c), b)) return false;
  }
  return true;
}

// Groups the selected detail rows (sel == nullptr selects everything) in
// first-occurrence order; unselected rows get kNoSlot.
GroupMap BuildGroups(const ColumnTable& detail,
                     const std::vector<size_t>& key_cols, const uint8_t* sel,
                     bool collect_rows) {
  GroupMap map;
  map.row_group.resize(detail.num_rows());
  for (size_t r = 0; r < detail.num_rows(); ++r) {
    if (sel != nullptr && !sel[r]) {
      map.row_group[r] = kNoSlot;
      continue;
    }
    uint64_t h = DetailKeyHash(detail, key_cols, r);
    std::vector<uint32_t>& bucket = map.buckets[h];
    int64_t group = -1;
    for (uint32_t g : bucket) {
      if (DetailKeysEqual(detail, key_cols, r, map.representatives[g])) {
        group = g;
        break;
      }
    }
    if (group < 0) {
      group = static_cast<int64_t>(map.representatives.size());
      bucket.push_back(static_cast<uint32_t>(group));
      map.representatives.push_back(static_cast<uint32_t>(r));
      if (collect_rows) map.group_rows.emplace_back();
    }
    map.row_group[r] = static_cast<uint32_t>(group);
    if (collect_rows) {
      map.group_rows[static_cast<size_t>(group)].push_back(
          static_cast<uint32_t>(r));
    }
  }
  return map;
}

// Probes a block's group map with a base row.
int64_t LookupGroup(const GroupMap& map, const ColumnTable& detail,
                    const std::vector<size_t>& detail_cols,
                    const Row& base_row,
                    const std::vector<size_t>& base_cols) {
  uint64_t h = HashRowKey(base_row, base_cols);
  auto it = map.buckets.find(h);
  if (it == map.buckets.end()) return -1;
  for (uint32_t g : it->second) {
    size_t repr = map.representatives[g];
    bool equal = true;
    for (size_t c = 0; c < detail_cols.size(); ++c) {
      if (!base_row[base_cols[c]].Equals(
              detail.column(detail_cols[c]).GetValue(repr))) {
        equal = false;
        break;
      }
    }
    if (equal) return g;
  }
  return -1;
}

// --- Grouping (chunked) ----------------------------------------------------

// Group map over a chunk-paged relation. Unlike GroupMap it owns boxed
// copies of its representative keys: the chunk a representative row
// lives in may be evicted between the build and the probe.
struct ChunkedGroups {
  std::vector<uint32_t> row_group;  // global row -> group id / kNoSlot
  std::vector<Row> keys;            // boxed key per group, detail_cols order
  std::unordered_map<uint64_t, std::vector<uint32_t>> buckets;
  // Selected global detail rows per group, ascending (candidates path).
  std::vector<std::vector<uint32_t>> group_rows;
};

int64_t LookupGroupChunked(const ChunkedGroups& groups, const Row& base_row,
                           const std::vector<size_t>& base_cols) {
  uint64_t h = HashRowKey(base_row, base_cols);
  auto it = groups.buckets.find(h);
  if (it == groups.buckets.end()) return -1;
  for (uint32_t g : it->second) {
    const Row& key = groups.keys[g];
    bool equal = true;
    for (size_t c = 0; c < key.size(); ++c) {
      if (!base_row[base_cols[c]].Equals(key[c])) {
        equal = false;
        break;
      }
    }
    if (equal) return g;
  }
  return -1;
}

// Finds or creates the group of chunk-local row `r`; returns its id.
int64_t AssignGroupChunked(ChunkedGroups* groups, const Chunk& chunk,
                           const std::vector<size_t>& key_cols, size_t r,
                           Row* scratch, bool collect_rows) {
  uint64_t h = 0x5ca11aULL;  // Must match HashRowKey's seed.
  for (size_t c : key_cols) {
    h = HashCombine(h, chunk.column(c).HashAt(r));
  }
  scratch->clear();
  for (size_t c : key_cols) scratch->push_back(chunk.column(c).GetValue(r));
  std::vector<uint32_t>& bucket = groups->buckets[h];
  for (uint32_t g : bucket) {
    const Row& key = groups->keys[g];
    bool equal = true;
    for (size_t c = 0; c < key.size(); ++c) {
      if (!(*scratch)[c].Equals(key[c])) {
        equal = false;
        break;
      }
    }
    if (equal) return g;
  }
  int64_t group = static_cast<int64_t>(groups->keys.size());
  bucket.push_back(static_cast<uint32_t>(group));
  groups->keys.push_back(*scratch);
  if (collect_rows) groups->group_rows.emplace_back();
  return group;
}

// --- Shared helpers --------------------------------------------------------

Result<SchemaPtr> ColumnarOutSchema(const GmdjOp& op,
                                    const Schema& base_schema,
                                    const Schema& detail_schema,
                                    const EvalContext& context) {
  SKALLA_ASSIGN_OR_RETURN(
      SchemaPtr out_schema,
      context.sub_aggregates
          ? op.PartialSchema(base_schema, detail_schema, context.compute_rng)
          : op.OutputSchema(base_schema, detail_schema));
  if (!context.sub_aggregates && context.compute_rng) {
    SKALLA_ASSIGN_OR_RETURN(
        out_schema,
        out_schema->AddField(Field{kRngCountColumn, ValueType::kInt64}));
  }
  return out_schema;
}

Status CheckColumnarPreconditions(const EvalContext& context) {
  SKALLA_RETURN_NOT_OK(ValidateEvalContext(context));
  if (context.cancellation != nullptr) {
    SKALLA_RETURN_NOT_OK(context.cancellation->Check());
  }
  if (!context.use_index) {
    return Status::InvalidArgument(
        "EvalGmdjColumnar has no nested-loop oracle mode (use_index = "
        "false); core::EvaluateGmdj routes such requests to the row engine");
  }
  return Status::OK();
}

// Per-part input columns resolved against one source (the whole resident
// table, or one pinned chunk).
std::vector<const Column*> PartColumns(const std::vector<AggPart>& parts,
                                       const ColumnSource& src) {
  std::vector<const Column*> cols(parts.size(), nullptr);
  for (size_t i = 0; i < parts.size(); ++i) {
    if (parts[i].input_col >= 0) {
      cols[i] = &src.column(static_cast<size_t>(parts[i].input_col));
    }
  }
  return cols;
}

// Whether the chunk's persisted stats prove every row fails a prunable
// detail conjunct. Never consults chunk payloads.
bool ShouldPruneChunk(const CompiledPredicate& pred,
                      const DataProvider& detail, size_t ci,
                      const EvalContext& context) {
  if (!context.chunk_pruning) return false;
  for (const DetailConjunct& c : pred.detail) {
    if (!c.prunable) continue;
    const ChunkColumnStats* stats =
        detail.chunk_column_stats(ci, static_cast<size_t>(c.col));
    if (stats != nullptr && ChunkCannotSatisfy(c, *stats)) return true;
  }
  return false;
}

void RecordPrunedChunk(const EvalContext& context) {
  if (context.profile != nullptr) {
    context.profile->chunks_pruned.fetch_add(1, std::memory_order_relaxed);
  }
  SKALLA_COUNTER_ADD("skalla.storage.chunks_pruned", 1);
}

// --- Output assembly -------------------------------------------------------

// Read view of one evaluated block for output assembly: its part states
// plus a probe from base row to part slot (or -1 = no matching detail
// rows). count_probe_stats: grouped blocks count index_hits/rows_matched
// per matching base row at assembly (probing is where their matching
// happens); candidates/scan blocks counted per matched pair during the
// fold, row-engine style, so assembly must not double count.
struct EvaledBlockView {
  const std::vector<AggPart>* parts = nullptr;
  const std::vector<std::pair<size_t, size_t>>* agg_part_ranges = nullptr;
  std::function<int64_t(size_t, const Row&)> probe;
  bool count_probe_stats = true;
};

// Output assembly shared by the resident and chunked paths: probe each
// block per base row, finalize or emit sub-aggregates. The parallel
// variant writes rows into pre-sized slots in base-row chunks and
// appends in order, so output is byte-identical to the sequential pass.
Result<Table> AssembleColumnar(const Table& base, const GmdjOp& op,
                               const EvalContext& context,
                               const SchemaPtr& out_schema,
                               const std::vector<EvaledBlockView>& blocks,
                               ThreadPool* pool) {
  const size_t num_base = base.num_rows();
  // Group-probe counts batched per assembly chunk (one fetch_add per
  // chunk, not per row).
  struct ProbeCounts {
    uint64_t hits = 0;
    uint64_t matched = 0;
  };
  auto flush_counts = [&](const ProbeCounts& counts) {
    if (context.profile == nullptr) return;
    context.profile->index_hits.fetch_add(counts.hits,
                                          std::memory_order_relaxed);
    context.profile->rows_matched.fetch_add(counts.matched,
                                            std::memory_order_relaxed);
  };
  auto build_row = [&](size_t b, ProbeCounts* counts) {
    const Row& base_row = base.row(b);
    Row row = base_row;
    row.reserve(out_schema->num_fields());
    bool matched = false;
    bool counted_match = false;
    for (size_t bi = 0; bi < op.blocks.size(); ++bi) {
      const EvaledBlockView& exec = blocks[bi];
      int64_t group = exec.probe(b, base_row);
      if (group >= 0) {
        matched = true;
        if (exec.count_probe_stats) {
          ++counts->hits;
          counted_match = true;
        }
      }
      if (context.sub_aggregates) {
        for (const AggPart& part : *exec.parts) {
          if (group >= 0) {
            row.push_back(part.Final(static_cast<size_t>(group)));
          } else {
            row.push_back(InitialPartValue(part.spec));
          }
        }
      } else {
        for (size_t ai = 0; ai < op.blocks[bi].aggs.size(); ++ai) {
          auto [start, len] = (*exec.agg_part_ranges)[ai];
          std::vector<Value> cell_parts;
          cell_parts.reserve(len);
          for (size_t p = 0; p < len; ++p) {
            const AggPart& part = (*exec.parts)[start + p];
            cell_parts.push_back(group >= 0
                                     ? part.Final(static_cast<size_t>(group))
                                     : InitialPartValue(part.spec));
          }
          row.push_back(
              FinalizeAggregate(op.blocks[bi].aggs[ai], cell_parts));
        }
      }
    }
    if (context.compute_rng) {
      row.push_back(Value(int64_t{matched ? 1 : 0}));
    }
    if (counted_match) ++counts->matched;
    return row;
  };

  Table out(out_schema);
  out.Reserve(num_base);
  if (pool != nullptr && num_base > context.morsel_rows) {
    std::vector<Row> rows(num_base);
    const size_t chunks = (num_base - 1) / context.morsel_rows + 1;
    pool->ParallelFor(chunks, [&](size_t m) {
      if (context.cancellation != nullptr &&
          !context.cancellation->Check().ok()) {
        return;
      }
      const size_t lo = m * context.morsel_rows;
      const size_t hi = std::min(lo + context.morsel_rows, num_base);
      ProbeCounts counts;
      for (size_t b = lo; b < hi; ++b) rows[b] = build_row(b, &counts);
      flush_counts(counts);
    });
    if (context.cancellation != nullptr) {
      SKALLA_RETURN_NOT_OK(context.cancellation->Check());
    }
    for (size_t b = 0; b < num_base; ++b) {
      out.AppendUnchecked(std::move(rows[b]));
    }
  } else {
    ProbeCounts counts;
    for (size_t b = 0; b < num_base; ++b) {
      out.AppendUnchecked(build_row(b, &counts));
    }
    flush_counts(counts);
  }
  return out;
}

// Per-block evaluation state shared by the path implementations.
struct BlockExec {
  CompiledBlock compiled;
  GroupMap groups;        // grouped/candidates, resident
  ChunkedGroups cgroups;  // grouped/candidates, chunked
  // Candidates/scan: matched[b] = some detail row paired with base row b.
  std::vector<uint8_t> matched;
};

// --- Grouped path ----------------------------------------------------------

// Equality atoms only (plus detail-only / base-only conjuncts): selection
// bitmap, dense groups over selected rows, one dense typed fold per part
// (parallel across parts — each part's state is private and its fold
// order is exactly the sequential one).
void EvalGroupedBlock(const ColumnTable& detail, BlockExec* exec,
                      const EvalContext& context, ThreadPool* pool) {
  const CompiledPredicate& pred = exec->compiled.pred;
  ColumnSource src(detail);
  std::vector<uint8_t> sel;
  const uint8_t* selp = nullptr;
  if (pred.has_detail()) {
    EvalDetailSelection(pred, src, &sel);
    selp = sel.data();
  }
  exec->groups =
      BuildGroups(detail, exec->compiled.detail_cols, selp,
                  /*collect_rows=*/false);
  const size_t num_groups = exec->groups.representatives.size();
  std::vector<AggPart>& parts = exec->compiled.parts;
  auto fold_part = [&](size_t pi) {
    AggPart& part = parts[pi];
    EnsureSlots(&part, num_groups);
    const Column* in =
        part.input_col >= 0
            ? &detail.column(static_cast<size_t>(part.input_col))
            : nullptr;
    AggPart::FoldDenseFn fold =
        selp != nullptr ? part.fold_dense_checked : part.fold_dense;
    fold(part, in, exec->groups.row_group.data(), detail.num_rows());
  };
  if (pool != nullptr && parts.size() > 1) {
    pool->ParallelFor(parts.size(), fold_part);
  } else {
    for (size_t pi = 0; pi < parts.size(); ++pi) fold_part(pi);
  }
  if (context.profile != nullptr) {
    // Selection + group build + typed folds stream the whole detail
    // partition once.
    context.profile->rows_scanned.fetch_add(detail.num_rows(),
                                            std::memory_order_relaxed);
  }
}

// Chunked grouped: streams the detail chunks once — per-chunk selection,
// fused group assignment, and part folds while the chunk is pinned.
// Chunks whose stats prove an all-false selection are skipped without
// pinning; their rows are exactly the rows the selection would have
// removed, so results are byte-identical with pruning on or off.
Status EvalGroupedBlockChunked(const DataProvider& detail, BlockExec* exec,
                               const EvalContext& context) {
  const std::vector<size_t>& key_cols = exec->compiled.detail_cols;
  const CompiledPredicate& pred = exec->compiled.pred;
  ChunkedGroups& groups = exec->cgroups;
  groups.row_group.resize(detail.num_rows());
  std::vector<AggPart>& parts = exec->compiled.parts;
  Row scratch;
  std::vector<uint8_t> sel;
  for (size_t ci = 0; ci < detail.num_chunks(); ++ci) {
    if (context.cancellation != nullptr) {
      SKALLA_RETURN_NOT_OK(context.cancellation->Check());
    }
    const size_t row_base = detail.chunk_row_begin(ci);
    if (ShouldPruneChunk(pred, detail, ci, context)) {
      RecordPrunedChunk(context);
      std::fill_n(groups.row_group.begin() + row_base, detail.chunk_rows(ci),
                  kNoSlot);
      continue;
    }
    SKALLA_ASSIGN_OR_RETURN(PinnedChunk pin, detail.Pin(ci));
    const Chunk& chunk = *pin;
    const size_t n = chunk.num_rows();
    const uint8_t* selp = nullptr;
    if (pred.has_detail()) {
      EvalDetailSelection(pred, ColumnSource(chunk), &sel);
      selp = sel.data();
    }
    for (size_t r = 0; r < n; ++r) {
      if (selp != nullptr && !selp[r]) {
        groups.row_group[row_base + r] = kNoSlot;
        continue;
      }
      int64_t group = AssignGroupChunked(&groups, chunk, key_cols, r,
                                         &scratch, /*collect_rows=*/false);
      groups.row_group[row_base + r] = static_cast<uint32_t>(group);
    }
    const size_t num_groups = groups.keys.size();
    for (AggPart& part : parts) {
      EnsureSlots(&part, num_groups);
      const Column* in =
          part.input_col >= 0
              ? &chunk.column(static_cast<size_t>(part.input_col))
              : nullptr;
      AggPart::FoldDenseFn fold =
          selp != nullptr ? part.fold_dense_checked : part.fold_dense;
      fold(part, in, groups.row_group.data() + row_base, n);
    }
  }
  if (context.profile != nullptr) {
    context.profile->rows_scanned.fetch_add(detail.num_rows(),
                                            std::memory_order_relaxed);
  }
  return Status::OK();
}

// --- Candidates path -------------------------------------------------------

// Equality atoms + correlated conjuncts: per base row, probe the group
// map for the selected same-key detail rows, filter them with the
// hoisted correlated comparisons, and fold matches through single-row
// kernels into per-base-row slots. Base-row morsels partition the slot
// space, so concurrent folds never touch the same slot; per-slot fold
// order is the ascending candidate order — exactly the row engine's
// indexed path.
void EvalCandidatesBlock(const Table& base, const ColumnTable& detail,
                         BlockExec* exec, const EvalContext& context,
                         ThreadPool* pool) {
  const CompiledPredicate& pred = exec->compiled.pred;
  ColumnSource src(detail);
  std::vector<uint8_t> sel;
  const uint8_t* selp = nullptr;
  if (pred.has_detail()) {
    EvalDetailSelection(pred, src, &sel);
    selp = sel.data();
  }
  exec->groups = BuildGroups(detail, exec->compiled.detail_cols, selp,
                             /*collect_rows=*/true);
  const size_t num_base = base.num_rows();
  std::vector<AggPart>& parts = exec->compiled.parts;
  for (AggPart& part : parts) EnsureSlots(&part, num_base);
  exec->matched.assign(num_base, 0);
  std::vector<const Column*> part_cols = PartColumns(parts, src);
  CancellationToken* cancel = context.cancellation;
  EvalProfile* profile = context.profile;
  RunMorsels(pool, MorselCount(num_base, context.morsel_rows), context,
             [&](size_t m) {
    if (cancel != nullptr && !cancel->Check().ok()) return;
    const size_t lo = m * context.morsel_rows;
    const size_t hi = std::min(lo + context.morsel_rows, num_base);
    uint64_t hits = 0, scanned = 0, pairs = 0;
    Row scratch;
    for (size_t b = lo; b < hi; ++b) {
      const Row& base_row = base.row(b);
      BasePredState state = PrepareBaseRow(pred, base_row);
      if (!state.pass) continue;
      int64_t g = LookupGroup(exec->groups, detail, exec->compiled.detail_cols,
                              base_row, exec->compiled.base_cols);
      if (g < 0) continue;
      const std::vector<uint32_t>& cand =
          exec->groups.group_rows[static_cast<size_t>(g)];
      hits += cand.size();
      scanned += cand.size();
      for (uint32_t r : cand) {
        if (!MatchDetailRow(pred, state, base_row, src, r, &scratch)) {
          continue;
        }
        exec->matched[b] = 1;
        ++pairs;
        for (size_t pi = 0; pi < parts.size(); ++pi) {
          parts[pi].fold_one(parts[pi], b, part_cols[pi], r);
        }
      }
    }
    if (profile != nullptr) {
      profile->index_hits.fetch_add(hits, std::memory_order_relaxed);
      profile->rows_scanned.fetch_add(scanned, std::memory_order_relaxed);
      profile->rows_matched.fetch_add(pairs, std::memory_order_relaxed);
    }
  });
}

// Chunked candidates, three passes: (1) stream chunks building the group
// map + global candidate lists over selected rows (pruned chunks
// skipped without pinning — their rows are unselected either way);
// (2) per base row, hoist the correlated base sides and probe the map;
// (3) chunk-outer / base-morsel-inner folding, candidate lists sliced to
// the pinned chunk's row range — ascending global candidate order, so
// per-slot folds match the resident path byte for byte.
Status EvalCandidatesBlockChunked(const Table& base,
                                  const DataProvider& detail, BlockExec* exec,
                                  const EvalContext& context,
                                  ThreadPool* pool) {
  const std::vector<size_t>& key_cols = exec->compiled.detail_cols;
  const CompiledPredicate& pred = exec->compiled.pred;
  ChunkedGroups& groups = exec->cgroups;
  std::vector<uint8_t> chunk_any(detail.num_chunks(), 0);
  {
    Row scratch;
    std::vector<uint8_t> sel;
    for (size_t ci = 0; ci < detail.num_chunks(); ++ci) {
      if (context.cancellation != nullptr) {
        SKALLA_RETURN_NOT_OK(context.cancellation->Check());
      }
      if (ShouldPruneChunk(pred, detail, ci, context)) {
        RecordPrunedChunk(context);
        continue;
      }
      SKALLA_ASSIGN_OR_RETURN(PinnedChunk pin, detail.Pin(ci));
      const Chunk& chunk = *pin;
      const size_t row_base = detail.chunk_row_begin(ci);
      const uint8_t* selp = nullptr;
      if (pred.has_detail()) {
        EvalDetailSelection(pred, ColumnSource(chunk), &sel);
        selp = sel.data();
      }
      for (size_t r = 0; r < chunk.num_rows(); ++r) {
        if (selp != nullptr && !selp[r]) continue;
        int64_t g = AssignGroupChunked(&groups, chunk, key_cols, r, &scratch,
                                       /*collect_rows=*/true);
        groups.group_rows[static_cast<size_t>(g)].push_back(
            static_cast<uint32_t>(row_base + r));
        chunk_any[ci] = 1;
      }
    }
  }

  const size_t num_base = base.num_rows();
  std::vector<BasePredState> states(num_base);
  std::vector<int64_t> group_of(num_base, -1);
  {
    uint64_t hits = 0, scanned = 0;
    for (size_t b = 0; b < num_base; ++b) {
      const Row& base_row = base.row(b);
      states[b] = PrepareBaseRow(pred, base_row);
      if (!states[b].pass) continue;
      int64_t g =
          LookupGroupChunked(groups, base_row, exec->compiled.base_cols);
      group_of[b] = g;
      if (g >= 0) {
        const size_t n = groups.group_rows[static_cast<size_t>(g)].size();
        hits += n;
        scanned += n;
      }
    }
    if (context.profile != nullptr) {
      context.profile->index_hits.fetch_add(hits, std::memory_order_relaxed);
      context.profile->rows_scanned.fetch_add(scanned,
                                              std::memory_order_relaxed);
    }
  }

  std::vector<AggPart>& parts = exec->compiled.parts;
  for (AggPart& part : parts) EnsureSlots(&part, num_base);
  exec->matched.assign(num_base, 0);
  CancellationToken* cancel = context.cancellation;
  EvalProfile* profile = context.profile;
  for (size_t ci = 0; ci < detail.num_chunks(); ++ci) {
    if (!chunk_any[ci]) continue;
    if (cancel != nullptr) SKALLA_RETURN_NOT_OK(cancel->Check());
    SKALLA_ASSIGN_OR_RETURN(PinnedChunk pin, detail.Pin(ci));
    const Chunk& chunk = *pin;
    const uint32_t chunk_lo =
        static_cast<uint32_t>(detail.chunk_row_begin(ci));
    const uint32_t chunk_hi = static_cast<uint32_t>(chunk_lo + chunk.num_rows());
    ColumnSource src(chunk);
    std::vector<const Column*> part_cols = PartColumns(parts, src);
    RunMorsels(pool, MorselCount(num_base, context.morsel_rows), context,
               [&](size_t m) {
      if (cancel != nullptr && !cancel->Check().ok()) return;
      const size_t lo = m * context.morsel_rows;
      const size_t hi = std::min(lo + context.morsel_rows, num_base);
      uint64_t pairs = 0;
      Row scratch;
      for (size_t b = lo; b < hi; ++b) {
        int64_t g = group_of[b];
        if (g < 0) continue;
        const std::vector<uint32_t>& cand =
            groups.group_rows[static_cast<size_t>(g)];
        auto begin = std::lower_bound(cand.begin(), cand.end(), chunk_lo);
        auto end = std::lower_bound(begin, cand.end(), chunk_hi);
        const Row& base_row = base.row(b);
        for (auto it = begin; it != end; ++it) {
          const size_t local = *it - chunk_lo;
          if (!MatchDetailRow(pred, states[b], base_row, src, local,
                              &scratch)) {
            continue;
          }
          exec->matched[b] = 1;
          ++pairs;
          for (size_t pi = 0; pi < parts.size(); ++pi) {
            parts[pi].fold_one(parts[pi], b, part_cols[pi], local);
          }
        }
      }
      if (profile != nullptr) {
        profile->rows_matched.fetch_add(pairs, std::memory_order_relaxed);
      }
    });
  }
  return Status::OK();
}

// --- Scan path -------------------------------------------------------------

// One morsel's private part partials + matched bitmap (scan path).
struct ScanPartial {
  std::vector<AggPart> parts;
  std::vector<uint8_t> matched;
};

ScanPartial MakeScanPartial(const std::vector<AggPart>& protos,
                            size_t num_base) {
  ScanPartial partial;
  partial.parts = protos;
  for (AggPart& part : partial.parts) EnsureSlots(&part, num_base);
  partial.matched.assign(num_base, 0);
  return partial;
}

void MergeScanPartial(const ScanPartial& partial, std::vector<AggPart>* parts,
                      std::vector<uint8_t>* matched) {
  for (size_t pi = 0; pi < parts->size(); ++pi) {
    MergeParts(&(*parts)[pi], partial.parts[pi]);
  }
  for (size_t b = 0; b < partial.matched.size(); ++b) {
    (*matched)[b] |= partial.matched[b];
  }
}

// No equality atoms: the vectorized selection prefilters the detail
// relation, then every (base row, selected detail row) pair evaluates
// the correlated conjuncts. Morsel decomposition and partial-merge order
// are exactly the row engine's nested-loop ones (a pure function of
// morsel_rows), so results are byte-identical at any thread count.
void EvalScanBlock(const Table& base, const ColumnTable& detail,
                   BlockExec* exec, const EvalContext& context,
                   ThreadPool* pool) {
  const CompiledPredicate& pred = exec->compiled.pred;
  ColumnSource src(detail);
  std::vector<uint8_t> sel;
  const uint8_t* selp = nullptr;
  if (pred.has_detail()) {
    EvalDetailSelection(pred, src, &sel);
    selp = sel.data();
  }
  const size_t num_base = base.num_rows();
  const size_t num_detail = detail.num_rows();
  std::vector<BasePredState> states(num_base);
  for (size_t b = 0; b < num_base; ++b) {
    states[b] = PrepareBaseRow(pred, base.row(b));
  }
  std::vector<AggPart>& parts = exec->compiled.parts;
  const std::vector<AggPart> protos = parts;  // pristine, slot-less
  for (AggPart& part : parts) EnsureSlots(&part, num_base);
  exec->matched.assign(num_base, 0);
  std::vector<const Column*> part_cols = PartColumns(parts, src);

  const size_t morsel_rows = context.morsel_rows;
  const size_t morsels = MorselCount(num_detail, morsel_rows);
  CancellationToken* cancel = context.cancellation;
  EvalProfile* profile = context.profile;
  auto record = [&](size_t lo, size_t hi, uint64_t pairs) {
    if (profile == nullptr) return;
    profile->rows_scanned.fetch_add(
        static_cast<uint64_t>(num_base) * (hi - lo),
        std::memory_order_relaxed);
    profile->rows_matched.fetch_add(pairs, std::memory_order_relaxed);
  };
  auto fold = [&](ScanPartial* partial, size_t lo, size_t hi,
                  uint64_t* pairs) {
    Row scratch;
    for (size_t b = 0; b < num_base; ++b) {
      if (!states[b].pass) continue;
      const Row& base_row = base.row(b);
      for (size_t r = lo; r < hi; ++r) {
        if (selp != nullptr && !selp[r]) continue;
        if (!MatchDetailRow(pred, states[b], base_row, src, r, &scratch)) {
          continue;
        }
        partial->matched[b] = 1;
        ++*pairs;
        for (size_t pi = 0; pi < partial->parts.size(); ++pi) {
          partial->parts[pi].fold_one(partial->parts[pi], b, part_cols[pi],
                                      r);
        }
      }
    }
  };

  if (pool == nullptr || morsels <= 1) {
    // Stream morsels in order through a scratch partial, merging each as
    // it completes: the merge sequence is identical to the parallel
    // path's, just without holding every partial live at once.
    RunMorsels(nullptr, morsels, context, [&](size_t m) {
      if (cancel != nullptr && !cancel->Check().ok()) return;
      ScanPartial partial = MakeScanPartial(protos, num_base);
      const size_t lo = m * morsel_rows;
      const size_t hi = std::min((m + 1) * morsel_rows, num_detail);
      uint64_t pairs = 0;
      fold(&partial, lo, hi, &pairs);
      record(lo, hi, pairs);
      MergeScanPartial(partial, &parts, &exec->matched);
    });
    return;
  }
  std::vector<ScanPartial> partials(morsels);
  RunMorsels(pool, morsels, context, [&](size_t m) {
    if (cancel != nullptr && !cancel->Check().ok()) return;
    partials[m] = MakeScanPartial(protos, num_base);
    const size_t lo = m * morsel_rows;
    const size_t hi = std::min((m + 1) * morsel_rows, num_detail);
    uint64_t pairs = 0;
    fold(&partials[m], lo, hi, &pairs);
    record(lo, hi, pairs);
  });
  for (const ScanPartial& partial : partials) {
    // A cancelled morsel leaves its partial empty; the caller surfaces
    // the cancellation status, so skipping it here is safe.
    if (partial.parts.size() != parts.size()) continue;
    MergeScanPartial(partial, &parts, &exec->matched);
  }
}

// Chunked scan: a pre-pass computes the global selection chunk by chunk
// (pruned chunks zero-filled without pinning), then the morsel folds
// walk the chunk segments covering their row range — detail-outer /
// base-inner, same per-slot order — skipping segments with no selected
// rows without pinning. Decomposition and merge order are the global
// ones, so results match the resident scan byte for byte.
Status EvalScanBlockChunked(const Table& base, const DataProvider& detail,
                            BlockExec* exec, const EvalContext& context,
                            ThreadPool* pool) {
  const CompiledPredicate& pred = exec->compiled.pred;
  const size_t num_base = base.num_rows();
  const size_t num_detail = detail.num_rows();
  std::vector<uint8_t> sel;
  const uint8_t* selp = nullptr;
  std::vector<uint8_t> chunk_any(detail.num_chunks(), 1);
  if (pred.has_detail()) {
    sel.assign(num_detail, 0);
    std::vector<uint8_t> chunk_sel;
    for (size_t ci = 0; ci < detail.num_chunks(); ++ci) {
      if (context.cancellation != nullptr) {
        SKALLA_RETURN_NOT_OK(context.cancellation->Check());
      }
      const size_t row_base = detail.chunk_row_begin(ci);
      if (ShouldPruneChunk(pred, detail, ci, context)) {
        RecordPrunedChunk(context);
        chunk_any[ci] = 0;
        continue;
      }
      SKALLA_ASSIGN_OR_RETURN(PinnedChunk pin, detail.Pin(ci));
      const Chunk& chunk = *pin;
      EvalDetailSelection(pred, ColumnSource(chunk), &chunk_sel);
      uint8_t any = 0;
      for (size_t r = 0; r < chunk_sel.size(); ++r) {
        sel[row_base + r] = chunk_sel[r];
        any |= chunk_sel[r];
      }
      chunk_any[ci] = any;
    }
    selp = sel.data();
  }

  std::vector<BasePredState> states(num_base);
  for (size_t b = 0; b < num_base; ++b) {
    states[b] = PrepareBaseRow(pred, base.row(b));
  }
  std::vector<AggPart>& parts = exec->compiled.parts;
  const std::vector<AggPart> protos = parts;  // pristine, slot-less
  for (AggPart& part : parts) EnsureSlots(&part, num_base);
  exec->matched.assign(num_base, 0);

  const size_t morsel_rows = context.morsel_rows;
  const size_t morsels = MorselCount(num_detail, morsel_rows);
  CancellationToken* cancel = context.cancellation;
  EvalProfile* profile = context.profile;
  auto record = [&](size_t lo, size_t hi, uint64_t pairs) {
    if (profile == nullptr) return;
    profile->rows_scanned.fetch_add(
        static_cast<uint64_t>(num_base) * (hi - lo),
        std::memory_order_relaxed);
    profile->rows_matched.fetch_add(pairs, std::memory_order_relaxed);
  };
  auto fold = [&](ScanPartial* partial, size_t lo, size_t hi,
                  uint64_t* pairs) -> Status {
    Row scratch;
    size_t r = lo;
    while (r < hi) {
      const size_t ci = detail.ChunkOfRow(r);
      const size_t chunk_lo = detail.chunk_row_begin(ci);
      const size_t seg_hi = std::min(hi, chunk_lo + detail.chunk_rows(ci));
      if (!chunk_any[ci]) {
        r = seg_hi;
        continue;
      }
      SKALLA_ASSIGN_OR_RETURN(PinnedChunk pin, detail.Pin(ci));
      const Chunk& chunk = *pin;
      ColumnSource src(chunk);
      std::vector<const Column*> part_cols =
          PartColumns(partial->parts, src);
      for (; r < seg_hi; ++r) {
        if (selp != nullptr && !selp[r]) continue;
        const size_t local = r - chunk_lo;
        for (size_t b = 0; b < num_base; ++b) {
          if (!states[b].pass) continue;
          if (!MatchDetailRow(pred, states[b], base.row(b), src, local,
                              &scratch)) {
            continue;
          }
          partial->matched[b] = 1;
          ++*pairs;
          for (size_t pi = 0; pi < partial->parts.size(); ++pi) {
            partial->parts[pi].fold_one(partial->parts[pi], b, part_cols[pi],
                                        local);
          }
        }
      }
    }
    return Status::OK();
  };

  std::vector<Status> morsel_status(morsels);
  if (pool == nullptr || morsels <= 1) {
    RunMorsels(nullptr, morsels, context, [&](size_t m) {
      if (cancel != nullptr && !cancel->Check().ok()) return;
      ScanPartial partial = MakeScanPartial(protos, num_base);
      const size_t lo = m * morsel_rows;
      const size_t hi = std::min((m + 1) * morsel_rows, num_detail);
      uint64_t pairs = 0;
      morsel_status[m] = fold(&partial, lo, hi, &pairs);
      if (!morsel_status[m].ok()) return;
      record(lo, hi, pairs);
      MergeScanPartial(partial, &parts, &exec->matched);
    });
  } else {
    std::vector<ScanPartial> partials(morsels);
    RunMorsels(pool, morsels, context, [&](size_t m) {
      if (cancel != nullptr && !cancel->Check().ok()) return;
      partials[m] = MakeScanPartial(protos, num_base);
      const size_t lo = m * morsel_rows;
      const size_t hi = std::min((m + 1) * morsel_rows, num_detail);
      uint64_t pairs = 0;
      morsel_status[m] = fold(&partials[m], lo, hi, &pairs);
      if (!morsel_status[m].ok()) return;
      record(lo, hi, pairs);
    });
    for (const Status& status : morsel_status) {
      SKALLA_RETURN_NOT_OK(status);
    }
    for (const ScanPartial& partial : partials) {
      if (partial.parts.size() != parts.size()) continue;
      MergeScanPartial(partial, &parts, &exec->matched);
    }
    return Status::OK();
  }
  for (const Status& status : morsel_status) {
    SKALLA_RETURN_NOT_OK(status);
  }
  return Status::OK();
}

// The base-only gate shared by the grouped probes: a base row whose
// base-only conjuncts fail pairs with nothing, whatever its key.
bool BaseOnlyPass(const CompiledPredicate& pred, const Row& base_row) {
  for (const ExprPtr& conjunct : pred.base_only) {
    if (!conjunct->EvalBool(&base_row, nullptr)) return false;
  }
  return true;
}

}  // namespace

Result<Table> EvalGmdjColumnar(const Table& base, const ColumnTable& detail,
                               const GmdjOp& op, const EvalContext& context) {
  SKALLA_RETURN_NOT_OK(CheckColumnarPreconditions(context));
  const Schema& base_schema = *base.schema();
  const Schema& detail_schema = *detail.schema();
  SKALLA_ASSIGN_OR_RETURN(
      SchemaPtr out_schema,
      ColumnarOutSchema(op, base_schema, detail_schema, context));

  std::vector<BlockExec> blocks(op.blocks.size());
  for (size_t bi = 0; bi < op.blocks.size(); ++bi) {
    SKALLA_RETURN_NOT_OK(CompileBlock(op.blocks[bi], base_schema,
                                      detail_schema, /*col_range=*/{},
                                      &blocks[bi].compiled));
  }

  const size_t threads = ResolveEvalThreads(context.eval_threads);
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);

  // Blocks evaluate in order; parallelism lives inside each block (part
  // folds, base-row morsels, detail-row morsels), where it cannot
  // perturb any fold or merge order.
  for (BlockExec& exec : blocks) {
    if (context.cancellation != nullptr &&
        !context.cancellation->Check().ok()) {
      break;
    }
    switch (PathOf(exec.compiled)) {
      case BlockPath::kGrouped:
        EvalGroupedBlock(detail, &exec, context, pool.get());
        break;
      case BlockPath::kCandidates:
        EvalCandidatesBlock(base, detail, &exec, context, pool.get());
        break;
      case BlockPath::kScan:
        EvalScanBlock(base, detail, &exec, context, pool.get());
        break;
    }
  }

  // Cancelled blocks left their state empty — surface the cancellation
  // before any of it could be misread as a result.
  if (context.cancellation != nullptr) {
    SKALLA_RETURN_NOT_OK(context.cancellation->Check());
  }

  std::vector<EvaledBlockView> views(blocks.size());
  for (size_t bi = 0; bi < blocks.size(); ++bi) {
    BlockExec& exec = blocks[bi];
    views[bi].parts = &exec.compiled.parts;
    views[bi].agg_part_ranges = &exec.compiled.agg_part_ranges;
    if (PathOf(exec.compiled) == BlockPath::kGrouped) {
      views[bi].probe = [&exec, &detail](size_t, const Row& base_row) {
        if (!BaseOnlyPass(exec.compiled.pred, base_row)) {
          return int64_t{-1};
        }
        return LookupGroup(exec.groups, detail, exec.compiled.detail_cols,
                           base_row, exec.compiled.base_cols);
      };
      views[bi].count_probe_stats = true;
    } else {
      views[bi].probe = [&exec](size_t b, const Row&) {
        return exec.matched[b] ? static_cast<int64_t>(b) : int64_t{-1};
      };
      views[bi].count_probe_stats = false;
    }
  }
  return AssembleColumnar(base, op, context, out_schema, views, pool.get());
}

Result<Table> EvalGmdjColumnar(const Table& base, const DataProvider& detail,
                               const GmdjOp& op, const EvalContext& context) {
  SKALLA_RETURN_NOT_OK(CheckColumnarPreconditions(context));
  const Schema& base_schema = *base.schema();
  const Schema& detail_schema = *detail.schema();
  SKALLA_ASSIGN_OR_RETURN(
      SchemaPtr out_schema,
      ColumnarOutSchema(op, base_schema, detail_schema, context));

  std::function<std::optional<Interval>(const std::string&)> col_range =
      MakeProviderColRange(detail);
  std::vector<BlockExec> blocks(op.blocks.size());
  for (size_t bi = 0; bi < op.blocks.size(); ++bi) {
    SKALLA_RETURN_NOT_OK(CompileBlock(op.blocks[bi], base_schema,
                                      detail_schema, col_range,
                                      &blocks[bi].compiled));
  }

  const size_t threads = ResolveEvalThreads(context.eval_threads);
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);

  for (BlockExec& exec : blocks) {
    if (context.cancellation != nullptr &&
        !context.cancellation->Check().ok()) {
      break;
    }
    switch (PathOf(exec.compiled)) {
      case BlockPath::kGrouped:
        SKALLA_RETURN_NOT_OK(EvalGroupedBlockChunked(detail, &exec, context));
        break;
      case BlockPath::kCandidates:
        SKALLA_RETURN_NOT_OK(EvalCandidatesBlockChunked(base, detail, &exec,
                                                        context, pool.get()));
        break;
      case BlockPath::kScan:
        SKALLA_RETURN_NOT_OK(
            EvalScanBlockChunked(base, detail, &exec, context, pool.get()));
        break;
    }
  }

  if (context.cancellation != nullptr) {
    SKALLA_RETURN_NOT_OK(context.cancellation->Check());
  }

  std::vector<EvaledBlockView> views(blocks.size());
  for (size_t bi = 0; bi < blocks.size(); ++bi) {
    BlockExec& exec = blocks[bi];
    views[bi].parts = &exec.compiled.parts;
    views[bi].agg_part_ranges = &exec.compiled.agg_part_ranges;
    if (PathOf(exec.compiled) == BlockPath::kGrouped) {
      views[bi].probe = [&exec](size_t, const Row& base_row) {
        if (!BaseOnlyPass(exec.compiled.pred, base_row)) {
          return int64_t{-1};
        }
        return LookupGroupChunked(exec.cgroups, base_row,
                                  exec.compiled.base_cols);
      };
      views[bi].count_probe_stats = true;
    } else {
      views[bi].probe = [&exec](size_t b, const Row&) {
        return exec.matched[b] ? static_cast<int64_t>(b) : int64_t{-1};
      };
      views[bi].count_probe_stats = false;
    }
  }
  return AssembleColumnar(base, op, context, out_schema, views, pool.get());
}

}  // namespace skalla
