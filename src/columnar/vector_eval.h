// Vectorized GMDJ evaluation over columnar detail relations, for
// arbitrary conditions θ.
//
// Each block's θ splits into equality atoms, detail-only conjuncts,
// correlated conjuncts, and base-only conjuncts (predicate_eval.h), and
// the block takes one of three paths:
//
//  - Grouped (equality atoms, no correlated conjuncts): detail-only
//    conjuncts become a selection bitmap, surviving rows get dense group
//    ids via typed hashing, and one type-specialized kernel per
//    sub-aggregate (agg_kernels.h) folds the measure arrays; base rows
//    probe the group map at assembly.
//  - Candidates (equality atoms + correlated conjuncts): the group map
//    additionally records each group's selected detail rows; per base
//    row, the hoisted correlated comparisons filter the candidate list
//    and matching rows fold through single-row kernels.
//  - Scan (no equality atoms): the vectorized selection prefilters the
//    detail relation, then base × selected-detail pairs evaluate the
//    correlated conjuncts under the row engine's exact morsel
//    decomposition and partial-merge order.
//
// Semantics are byte-identical to EvalGmdj for every θ (differential
// tests sweep randomized shapes): the typed kernels replicate
// Accumulator fold/merge math over well-typed tables, and the predicate
// split replicates per-conjunct NULL-as-false evaluation.
//
// Parallelism: within a block, part folds, base-row morsels, and
// detail-row morsels run under EvalContext::eval_threads; decomposition
// and merge order depend only on morsel_rows, so results are
// byte-identical at every thread count.
//
// Chunk-paged detail relations evaluate through the DataProvider
// overload: chunks stream in global row order (pin → select → fold →
// unpin), group maps own boxed representative keys, and chunks whose
// persisted min/max stats prove no row can pass a comparison conjunct
// are skipped without pinning (EvalContext::chunk_pruning) — results
// stay byte-identical at any buffer budget, pruning on or off.

#ifndef SKALLA_COLUMNAR_VECTOR_EVAL_H_
#define SKALLA_COLUMNAR_VECTOR_EVAL_H_

#include "columnar/column_table.h"
#include "common/result.h"
#include "core/eval_context.h"
#include "core/gmdj.h"
#include "storage/data_provider.h"

namespace skalla {

/// Vectorized counterpart of EvalGmdj; handles every condition shape.
/// Sub-aggregate and __rng semantics match the row engine exactly.
/// Fails with InvalidArgument when `context.use_index` is false — this
/// kernel has no nested-loop oracle mode; core::EvaluateGmdj routes
/// such requests to the row engine transparently.
Result<Table> EvalGmdjColumnar(const Table& base, const ColumnTable& detail,
                               const GmdjOp& op,
                               const EvalContext& context = {});

/// Same, streaming a chunk-paged detail relation: the chunks' typed
/// pages fold directly, one chunk resident at a time, with stat-based
/// chunk pruning.
Result<Table> EvalGmdjColumnar(const Table& base, const DataProvider& detail,
                               const GmdjOp& op,
                               const EvalContext& context = {});

}  // namespace skalla

#endif  // SKALLA_COLUMNAR_VECTOR_EVAL_H_
