// Vectorized GMDJ evaluation over columnar detail relations.
//
// Eligible conditions are pure conjunctions of equality atoms
// b.X = r.Y (the dominant case in OLAP groupings). Evaluation is then
// grouped aggregation: one pass assigns every detail row a dense group
// id via typed hashing, one tight typed loop per sub-aggregate folds the
// measure arrays, and one pass over the base rows probes the group map.
// Semantics are identical to EvalGmdj (verified by tests); the win is
// unboxed accumulation.

#ifndef SKALLA_COLUMNAR_VECTOR_EVAL_H_
#define SKALLA_COLUMNAR_VECTOR_EVAL_H_

#include "columnar/column_table.h"
#include "common/result.h"
#include "core/gmdj.h"
#include "core/local_eval.h"

namespace skalla {

/// Whether every block of `op` is a pure conjunction of equality atoms
/// (no residual predicate) — the precondition for EvalGmdjColumnar.
bool ColumnarEligible(const GmdjOp& op);

/// Vectorized counterpart of EvalGmdj. `options.use_index` is ignored
/// (the group map plays that role); sub-aggregate and __rng semantics
/// match the row engine exactly. Fails with InvalidArgument when the
/// operator is not eligible.
Result<Table> EvalGmdjColumnar(const Table& base, const ColumnTable& detail,
                               const GmdjOp& op,
                               const GmdjEvalOptions& options = {});

}  // namespace skalla

#endif  // SKALLA_COLUMNAR_VECTOR_EVAL_H_
