// Vectorized GMDJ evaluation over columnar detail relations.
//
// Eligible conditions are pure conjunctions of equality atoms
// b.X = r.Y (the dominant case in OLAP groupings). Evaluation is then
// grouped aggregation: one pass assigns every detail row a dense group
// id via typed hashing, one tight typed loop per sub-aggregate folds the
// measure arrays, and one pass over the base rows probes the group map.
// Semantics are identical to EvalGmdj (verified by tests); the win is
// unboxed accumulation.
//
// Parallelism: under EvalContext::eval_threads, blocks evaluate
// concurrently (each block's group map and part arrays are private) and
// output rows assemble in base-row chunks of morsel_rows into
// pre-allocated slots. Neither affects any fold order, so results are
// byte-identical at every thread count.
//
// Chunk-paged detail relations evaluate through the DataProvider
// overload: chunks stream in global row order (pin → fold → unpin), the
// group map owns boxed copies of its representative keys so evicted
// chunks never need re-reading, and every fold order matches the
// in-memory kernel — results stay byte-identical at any buffer budget.

#ifndef SKALLA_COLUMNAR_VECTOR_EVAL_H_
#define SKALLA_COLUMNAR_VECTOR_EVAL_H_

#include "columnar/column_table.h"
#include "common/result.h"
#include "core/eval_context.h"
#include "core/gmdj.h"
#include "storage/data_provider.h"

namespace skalla {

/// Whether every block of `op` is a pure conjunction of equality atoms
/// (no residual predicate) — the precondition for EvalGmdjColumnar.
bool ColumnarEligible(const GmdjOp& op);

/// Vectorized counterpart of EvalGmdj. Sub-aggregate and __rng semantics
/// match the row engine exactly. Fails with InvalidArgument when the
/// operator is not eligible, or when `context.use_index` is false — this
/// kernel has no nested-loop mode, so oracle requests must go to the row
/// engine (Site::EvalGmdjRound routes them there).
Result<Table> EvalGmdjColumnar(const Table& base, const ColumnTable& detail,
                               const GmdjOp& op,
                               const EvalContext& context = {});

/// Same, streaming a chunk-paged detail relation: the chunks' typed
/// pages fold directly, one chunk resident at a time.
Result<Table> EvalGmdjColumnar(const Table& base, const DataProvider& detail,
                               const GmdjOp& op,
                               const EvalContext& context = {});

}  // namespace skalla

#endif  // SKALLA_COLUMNAR_VECTOR_EVAL_H_
