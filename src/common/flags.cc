#include "common/flags.h"

#include <cerrno>
#include <cstdlib>

#include "common/macros.h"
#include "common/string_util.h"

namespace skalla {

namespace {

Status ParseInt64(const std::string& name, const std::string& value,
                  int64_t* out) {
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(value.c_str(), &end, 10);
  if (errno != 0 || end == value.c_str() || *end != '\0') {
    return Status::InvalidArgument(
        StrCat(name, ": not an integer: '", value, "'"));
  }
  *out = parsed;
  return Status::OK();
}

}  // namespace

void FlagSet::String(const char* name, std::string* dest, const char* help) {
  flags_.push_back(Flag{name, true,
                        [dest](const std::string& v) {
                          *dest = v;
                          return Status::OK();
                        },
                        help});
}

void FlagSet::Int(const char* name, int* dest, const char* help) {
  std::string flag = name;
  flags_.push_back(Flag{name, true,
                        [flag, dest](const std::string& v) {
                          int64_t parsed = 0;
                          SKALLA_RETURN_NOT_OK(ParseInt64(flag, v, &parsed));
                          *dest = static_cast<int>(parsed);
                          return Status::OK();
                        },
                        help});
}

void FlagSet::Int64(const char* name, int64_t* dest, const char* help) {
  std::string flag = name;
  flags_.push_back(Flag{name, true,
                        [flag, dest](const std::string& v) {
                          return ParseInt64(flag, v, dest);
                        },
                        help});
}

void FlagSet::SizeT(const char* name, size_t* dest, const char* help) {
  std::string flag = name;
  flags_.push_back(Flag{name, true,
                        [flag, dest](const std::string& v) {
                          int64_t parsed = 0;
                          SKALLA_RETURN_NOT_OK(ParseInt64(flag, v, &parsed));
                          if (parsed < 0) {
                            return Status::InvalidArgument(
                                StrCat(flag, ": must be >= 0, got ", v));
                          }
                          *dest = static_cast<size_t>(parsed);
                          return Status::OK();
                        },
                        help});
}

void FlagSet::Uint64(const char* name, uint64_t* dest, const char* help) {
  std::string flag = name;
  flags_.push_back(Flag{name, true,
                        [flag, dest](const std::string& v) {
                          int64_t parsed = 0;
                          SKALLA_RETURN_NOT_OK(ParseInt64(flag, v, &parsed));
                          if (parsed < 0) {
                            return Status::InvalidArgument(
                                StrCat(flag, ": must be >= 0, got ", v));
                          }
                          *dest = static_cast<uint64_t>(parsed);
                          return Status::OK();
                        },
                        help});
}

void FlagSet::Double(const char* name, double* dest, const char* help) {
  std::string flag = name;
  flags_.push_back(Flag{name, true,
                        [flag, dest](const std::string& v) {
                          errno = 0;
                          char* end = nullptr;
                          const double parsed = std::strtod(v.c_str(), &end);
                          if (errno != 0 || end == v.c_str() || *end != '\0') {
                            return Status::InvalidArgument(
                                StrCat(flag, ": not a number: '", v, "'"));
                          }
                          *dest = parsed;
                          return Status::OK();
                        },
                        help});
}

void FlagSet::Bool(const char* name, bool* dest, const char* help) {
  flags_.push_back(Flag{name, false,
                        [dest](const std::string&) {
                          *dest = true;
                          return Status::OK();
                        },
                        help});
}

void FlagSet::Func(const char* name,
                   std::function<Status(const std::string&)> handler,
                   const char* help) {
  flags_.push_back(Flag{name, true, std::move(handler), help});
}

void FlagSet::IgnorePrefix(std::string prefix) {
  ignored_prefixes_.push_back(std::move(prefix));
}

const FlagSet::Flag* FlagSet::Find(std::string_view name) const {
  for (const Flag& flag : flags_) {
    if (flag.name == name) return &flag;
  }
  return nullptr;
}

Status FlagSet::Parse(int* argc, char** argv, bool keep_unknown) {
  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];

    bool ignored = false;
    for (const std::string& prefix : ignored_prefixes_) {
      if (arg.compare(0, prefix.size(), prefix) == 0) {
        ignored = true;
        break;
      }
    }
    if (ignored) {
      argv[kept++] = argv[i];  // pass through for its consumer
      continue;
    }

    // --name=value form.
    const size_t eq = arg.find('=');
    const Flag* flag = nullptr;
    std::string value;
    bool have_value = false;
    if (eq != std::string::npos) {
      flag = Find(arg.substr(0, eq));
      if (flag != nullptr) {
        value = arg.substr(eq + 1);
        have_value = true;
        if (!flag->takes_value) {
          return Status::InvalidArgument(
              StrCat(flag->name, " takes no value"));
        }
      }
    } else {
      flag = Find(arg);
    }

    if (flag == nullptr) {
      if (keep_unknown) {
        argv[kept++] = argv[i];
        continue;
      }
      return Status::InvalidArgument(StrCat("unknown flag '", arg, "'"));
    }

    if (flag->takes_value && !have_value) {
      if (i + 1 >= *argc) {
        return Status::InvalidArgument(StrCat(flag->name, " needs a value"));
      }
      value = argv[++i];
    }
    SKALLA_RETURN_NOT_OK(flag->set(value));
  }
  *argc = kept;
  return Status::OK();
}

std::string FlagSet::Usage(const char* program) const {
  std::string out = StrCat("usage: ", program, "\n");
  for (const Flag& flag : flags_) {
    out += StrCat("  ", flag.name, flag.takes_value ? " VALUE" : "", "  ",
                  flag.help, "\n");
  }
  return out;
}

}  // namespace skalla
