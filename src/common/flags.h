// FlagSet: the one command-line parser every Skalla tool and bench
// uses. Replaces the per-tool strcmp chains with declarative binding:
//
//   std::string data_dir;
//   int port = 0;
//   FlagSet flags;
//   flags.String("--data", &data_dir, "warehouse directory");
//   flags.Int("--port", &port, "listen port (0 = OS-assigned)");
//   Status s = flags.Parse(&argc, argv);   // unknown flags are errors
//
// Known flags accept both spellings: `--name value` and `--name=value`.
// Bool flags are presence-only (`--degrade`). Prefixes registered with
// IgnorePrefix (e.g. obs::ObsSession's --trace-out= / --metrics-out=)
// pass through untouched — some other layer consumes them. Everything
// else is an unknown-flag error naming the offending argument, unless
// Parse runs in keep_unknown mode, which compacts unknown arguments to
// the front of argv for a downstream parser (google-benchmark interop).

#ifndef SKALLA_COMMON_FLAGS_H_
#define SKALLA_COMMON_FLAGS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace skalla {

class FlagSet {
 public:
  /// Binds `--name` (with value) to a destination. The pointer must
  /// outlive Parse. Values keep their registration-time contents until
  /// the flag appears.
  void String(const char* name, std::string* dest, const char* help);
  void Int(const char* name, int* dest, const char* help);
  void Int64(const char* name, int64_t* dest, const char* help);
  void SizeT(const char* name, size_t* dest, const char* help);
  void Uint64(const char* name, uint64_t* dest, const char* help);
  void Double(const char* name, double* dest, const char* help);

  /// Presence flag: `--name` alone sets *dest = true (no value).
  void Bool(const char* name, bool* dest, const char* help);

  /// Custom handler for flags needing bespoke parsing or repetition
  /// (e.g. --replica P:E given many times). The handler returns a
  /// non-OK status to reject the value (surfaced from Parse verbatim).
  void Func(const char* name,
            std::function<Status(const std::string& value)> handler,
            const char* help);

  /// Arguments starting with `prefix` are skipped without error —
  /// registered for flags some other layer consumes (ObsSession).
  void IgnorePrefix(std::string prefix);

  /// Parses argv[1..argc). With keep_unknown = false (default) an
  /// unrecognized argument fails with InvalidArgument naming it; with
  /// keep_unknown = true unrecognized arguments are compacted in place
  /// (argv[1..] rewritten, *argc updated) for a downstream parser.
  Status Parse(int* argc, char** argv, bool keep_unknown = false);

  /// One usage line per registered flag, for --help / parse errors.
  std::string Usage(const char* program) const;

 private:
  struct Flag {
    std::string name;
    bool takes_value = true;
    std::function<Status(const std::string&)> set;
    std::string help;
  };

  const Flag* Find(std::string_view name) const;

  std::vector<Flag> flags_;
  std::vector<std::string> ignored_prefixes_;
};

}  // namespace skalla

#endif  // SKALLA_COMMON_FLAGS_H_
