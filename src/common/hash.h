// Hashing utilities: a 64-bit string/bytes hash and hash combining, used by
// row hashing and the hash index.

#ifndef SKALLA_COMMON_HASH_H_
#define SKALLA_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace skalla {

/// 64-bit FNV-1a over a byte range. Deterministic across platforms.
inline uint64_t HashBytes(const void* data, size_t n,
                          uint64_t seed = 0xcbf29ce484222325ULL) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline uint64_t HashString(std::string_view s) {
  return HashBytes(s.data(), s.size());
}

/// Mixes a 64-bit value (finalizer from MurmurHash3).
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Combines two hash values (order-sensitive).
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return seed ^ (Mix64(value) + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                 (seed >> 2));
}

}  // namespace skalla

#endif  // SKALLA_COMMON_HASH_H_
