// Error-propagation and assertion macros shared across the code base.

#ifndef SKALLA_COMMON_MACROS_H_
#define SKALLA_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "common/status.h"

/// Evaluates `expr` (a Status expression); returns it from the enclosing
/// function if it is not OK.
#define SKALLA_RETURN_NOT_OK(expr)                   \
  do {                                               \
    ::skalla::Status _skalla_status = (expr);        \
    if (!_skalla_status.ok()) return _skalla_status; \
  } while (false)

#define SKALLA_CONCAT_IMPL(x, y) x##y
#define SKALLA_CONCAT(x, y) SKALLA_CONCAT_IMPL(x, y)

/// Evaluates `rexpr` (a Result<T> expression); on error returns its status,
/// otherwise moves the value into `lhs` (which may be a declaration).
#define SKALLA_ASSIGN_OR_RETURN(lhs, rexpr)                              \
  SKALLA_ASSIGN_OR_RETURN_IMPL(SKALLA_CONCAT(_skalla_result, __LINE__), \
                               lhs, rexpr)

#define SKALLA_ASSIGN_OR_RETURN_IMPL(result_name, lhs, rexpr) \
  auto result_name = (rexpr);                                 \
  if (!result_name.ok()) return result_name.status();         \
  lhs = std::move(result_name).ValueOrDie()

/// Internal invariant check: aborts with a message when violated. Used for
/// conditions that indicate bugs (not user errors).
#define SKALLA_CHECK(cond, msg)                                        \
  do {                                                                 \
    if (!(cond)) {                                                     \
      std::fprintf(stderr, "SKALLA_CHECK failed at %s:%d: %s (%s)\n",  \
                   __FILE__, __LINE__, #cond, msg);                    \
      std::abort();                                                    \
    }                                                                  \
  } while (false)

#ifndef NDEBUG
#define SKALLA_DCHECK(cond, msg) SKALLA_CHECK(cond, msg)
#else
#define SKALLA_DCHECK(cond, msg) \
  do {                           \
  } while (false)
#endif

#endif  // SKALLA_COMMON_MACROS_H_
