#include "common/random.h"

#include <cmath>

#include "common/macros.h"

namespace skalla {

namespace {

inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// splitmix64, used to expand the seed into the xoshiro state.
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Random::Random(uint64_t seed) {
  uint64_t sm = seed;
  for (uint64_t& word : s_) word = SplitMix64(&sm);
}

uint64_t Random::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Random::Uniform(uint64_t n) {
  SKALLA_DCHECK(n > 0, "Uniform(0) is undefined");
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -n % n;
  while (true) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Random::UniformInt(int64_t lo, int64_t hi) {
  SKALLA_DCHECK(lo <= hi, "UniformInt requires lo <= hi");
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // Full 64-bit range.
  return lo + static_cast<int64_t>(Uniform(span));
}

double Random::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Random::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

uint64_t Random::Zipf(uint64_t n, double s) {
  SKALLA_DCHECK(n > 0, "Zipf(0) is undefined");
  if (s <= 0.0 || n == 1) return Uniform(n);
  // Approximate inversion of the Zipf CDF via the continuous analogue
  // (bounded Pareto). Adequate for skewed workload generation.
  double u = NextDouble();
  double one_minus_s = 1.0 - s;
  double nn = static_cast<double>(n);
  double x;
  if (std::fabs(one_minus_s) < 1e-9) {
    x = std::exp(u * std::log(nn));
  } else {
    double h_n = (std::pow(nn, one_minus_s) - 1.0) / one_minus_s;
    x = std::pow(u * h_n * one_minus_s + 1.0, 1.0 / one_minus_s);
  }
  uint64_t k = static_cast<uint64_t>(x) - (x >= 1.0 ? 1 : 0);
  if (k >= n) k = n - 1;
  return k;
}

double Random::Exponential(double mean) {
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0.0) u = 1e-18;
  return -mean * std::log(u);
}

std::string Random::NextString(size_t length) {
  std::string out(length, 'a');
  for (char& c : out) {
    c = static_cast<char>('a' + Uniform(26));
  }
  return out;
}

}  // namespace skalla
