// Deterministic pseudo-random number generation for data generators and
// property tests. All Skalla experiments are seeded so results are
// reproducible run-to-run.

#ifndef SKALLA_COMMON_RANDOM_H_
#define SKALLA_COMMON_RANDOM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace skalla {

/// xoshiro256** generator: fast, high-quality, fully deterministic given a
/// seed. Not cryptographically secure (not needed here).
class Random {
 public:
  explicit Random(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform in [0, n). Requires n > 0.
  uint64_t Uniform(uint64_t n);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Zipf-distributed value in [0, n) with skew parameter `s` (s=0 is
  /// uniform). Uses the rejection-inversion free CDF-table method for small
  /// n and approximate inversion for large n.
  uint64_t Zipf(uint64_t n, double s);

  /// Exponentially distributed value with the given mean.
  double Exponential(double mean);

  /// Random lowercase ASCII string of the given length.
  std::string NextString(size_t length);

  /// Shuffles the vector in place (Fisher–Yates).
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(Uniform(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

 private:
  uint64_t s_[4];
};

}  // namespace skalla

#endif  // SKALLA_COMMON_RANDOM_H_
