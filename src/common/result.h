// Result<T>: value-or-Status, the return type of fallible functions that
// produce a value. Mirrors arrow::Result / absl::StatusOr.

#ifndef SKALLA_COMMON_RESULT_H_
#define SKALLA_COMMON_RESULT_H_

#include <cstdlib>
#include <utility>
#include <variant>

#include "common/status.h"

namespace skalla {

/// Holds either a value of type T or a non-OK Status describing why the
/// value could not be produced.
///
/// Typical use:
///
///   Result<Table> r = LoadTable(name);
///   if (!r.ok()) return r.status();
///   Table t = std::move(r).ValueOrDie();
///
/// or with the SKALLA_ASSIGN_OR_RETURN macro from common/macros.h.
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit, so `return value;` works).
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from a non-OK status (implicit, so `return status;` works).
  Result(Status status)  // NOLINT(runtime/explicit)
      : data_(std::move(status)) {
    if (std::get<Status>(data_).ok()) {
      // Storing an OK status in a Result is a programming error: there is
      // no value to return.
      std::abort();
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return std::holds_alternative<T>(data_); }

  /// The error status; OK if a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(data_);
  }

  /// The held value. Aborts if this Result holds an error.
  const T& ValueOrDie() const& {
    DieIfError();
    return std::get<T>(data_);
  }
  T& ValueOrDie() & {
    DieIfError();
    return std::get<T>(data_);
  }
  T&& ValueOrDie() && {
    DieIfError();
    return std::move(std::get<T>(data_));
  }

  /// Alias for ValueOrDie, matching arrow::Result spelling.
  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  T&& operator*() && { return std::move(*this).ValueOrDie(); }

  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  void DieIfError() const {
    if (!ok()) {
      std::get<Status>(data_).Check();
      std::abort();  // Unreachable; Check aborts on error.
    }
  }

  std::variant<T, Status> data_;
};

}  // namespace skalla

#endif  // SKALLA_COMMON_RESULT_H_
