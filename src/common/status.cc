#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace skalla {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kParseError:
      return "Parse error";
    case StatusCode::kTypeError:
      return "Type error";
    case StatusCode::kVersionMismatch:
      return "Version mismatch";
    case StatusCode::kDeadlineExceeded:
      return "Deadline exceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kFailedPrecondition:
      return "Failed precondition";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result(StatusCodeToString(code()));
  result += ": ";
  result += message();
  return result;
}

void Status::Check() const {
  if (ok()) return;
  std::fprintf(stderr, "Status check failed: %s\n", ToString().c_str());
  std::abort();
}

}  // namespace skalla
