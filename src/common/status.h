// Status: error propagation without exceptions, modeled on the
// Arrow/RocksDB style used throughout open-source database engines.
//
// A Status is either OK (the default) or carries an error code plus a
// human-readable message. Functions that can fail return Status (or
// Result<T>, see common/result.h) instead of throwing.

#ifndef SKALLA_COMMON_STATUS_H_
#define SKALLA_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace skalla {

/// Error categories used across the Skalla code base.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kNotImplemented = 5,
  kInternal = 6,
  kIOError = 7,
  kParseError = 8,
  kTypeError = 9,
  kVersionMismatch = 10,
  kDeadlineExceeded = 11,
  kCancelled = 12,
  kFailedPrecondition = 13,
};

/// Returns a stable, human-readable name for a status code ("Invalid
/// argument", "Parse error", ...).
std::string_view StatusCodeToString(StatusCode code);

/// Outcome of an operation: OK, or an error code plus message.
///
/// The OK state is represented by a null internal pointer, so returning and
/// checking an OK status costs a pointer move/compare only.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string msg) {
    if (code != StatusCode::kOk) {
      state_ = std::make_unique<State>(State{code, std::move(msg)});
    }
  }

  Status(const Status& other) { CopyFrom(other); }
  Status& operator=(const Status& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers, one per StatusCode.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status VersionMismatch(std::string msg) {
    return Status(StatusCode::kVersionMismatch, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }

  StatusCode code() const {
    return state_ == nullptr ? StatusCode::kOk : state_->code;
  }

  /// The error message; empty for OK statuses.
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ == nullptr ? kEmpty : state_->msg;
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsNotImplemented() const {
    return code() == StatusCode::kNotImplemented;
  }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsTypeError() const { return code() == StatusCode::kTypeError; }
  bool IsVersionMismatch() const {
    return code() == StatusCode::kVersionMismatch;
  }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  /// Aborts the process with the status message if not OK. Used in contexts
  /// (tests, examples) where failure is a programming error.
  void Check() const;

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };

  void CopyFrom(const Status& other) {
    state_ = other.state_ == nullptr ? nullptr
                                     : std::make_unique<State>(*other.state_);
  }

  std::unique_ptr<State> state_;
};

}  // namespace skalla

#endif  // SKALLA_COMMON_STATUS_H_
