// Wall-clock stopwatch used by the distributed executor to attribute time
// to site computation, coordinator computation, and communication.

#ifndef SKALLA_COMMON_STOPWATCH_H_
#define SKALLA_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace skalla {

/// Measures elapsed wall-clock time with microsecond resolution.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Reset, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in microseconds.
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace skalla

#endif  // SKALLA_COMMON_STOPWATCH_H_
