// Small string helpers (formatting, joining, splitting) used across the
// code base. Kept dependency-free: gcc 12 lacks std::format.

#ifndef SKALLA_COMMON_STRING_UTIL_H_
#define SKALLA_COMMON_STRING_UTIL_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace skalla {

/// printf-style formatting into a std::string.
std::string StrPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Concatenates the string representations of all arguments using
/// operator<<.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream oss;
  (oss << ... << args);
  return oss.str();
}

/// Joins the elements of `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `s` at every occurrence of `sep`; empty pieces are kept.
std::vector<std::string> Split(std::string_view s, char sep);

/// ASCII lower-casing (locale independent).
std::string ToLower(std::string_view s);

/// ASCII upper-casing (locale independent).
std::string ToUpper(std::string_view s);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Strips leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

}  // namespace skalla

#endif  // SKALLA_COMMON_STRING_UTIL_H_
