#include "common/thread_pool.h"

namespace skalla {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_available_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  task_available_.notify_one();
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (n == 1) {
    fn(0);
    return;
  }
  std::mutex latch_mu;
  std::condition_variable latch_cv;
  size_t remaining = n - 1;
  for (size_t i = 1; i < n; ++i) {
    Submit([&, i] {
      fn(i);
      std::lock_guard<std::mutex> lock(latch_mu);
      if (--remaining == 0) latch_cv.notify_one();
    });
  }
  fn(0);
  std::unique_lock<std::mutex> lock(latch_mu);
  latch_cv.wait(lock, [&] { return remaining == 0; });
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace skalla
