// Fixed-size thread pool used to evaluate independent site computations in
// parallel during distributed query execution.

#ifndef SKALLA_COMMON_THREAD_POOL_H_
#define SKALLA_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace skalla {

/// A simple fixed-size pool of worker threads executing queued tasks.
/// Destruction waits for all queued tasks to finish.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  /// Enqueues a task for execution on some worker thread.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has completed.
  void Wait();

  /// Runs fn(0), ..., fn(n - 1) across the pool and returns when all of
  /// them have finished. Unlike Submit + Wait, completion is tracked with
  /// a private latch, so concurrent ParallelFor calls (or a pool that is
  /// simultaneously running unrelated Submit work) do not wait on each
  /// other's tasks. fn(0) runs inline on the calling thread.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace skalla

#endif  // SKALLA_COMMON_THREAD_POOL_H_
