#include "core/cancellation.h"

#include "common/string_util.h"

namespace skalla {

void CancellationToken::ArmDeadline(uint64_t ms, std::string what) {
  std::lock_guard<std::mutex> lock(mu_);
  deadline_ = std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  deadline_what_ = std::move(what);
  deadline_ms_ = ms;
  deadline_armed_.store(true, std::memory_order_release);
}

void CancellationToken::Cancel(Status status) {
  if (status.ok()) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (cancelled_.load(std::memory_order_relaxed)) return;
  status_ = std::move(status);
  cancelled_.store(true, std::memory_order_release);
}

Status CancellationToken::Check() {
  if (cancelled_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(mu_);
    return status_;
  }
  CancellationToken* parent = parent_.load(std::memory_order_acquire);
  if (parent != nullptr) {
    Status from_parent = parent->Check();
    if (!from_parent.ok()) {
      // Latch the parent's cause locally so later Checks are one load.
      Cancel(from_parent);
      return from_parent;
    }
  }
  if (deadline_armed_.load(std::memory_order_acquire) &&
      std::chrono::steady_clock::now() >= deadline_) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!cancelled_.load(std::memory_order_relaxed)) {
      status_ = Status::DeadlineExceeded(
          StrCat("deadline of ", deadline_ms_, " ms exceeded (",
                 deadline_what_, ")"));
      cancelled_.store(true, std::memory_order_release);
    }
    return status_;
  }
  return Status::OK();
}

}  // namespace skalla
