// Cooperative cancellation for in-flight site work. A CancellationToken
// is shared between the coordinator (which arms a deadline or cancels
// explicitly) and the evaluation kernels (which poll it at morsel
// boundaries through EvalContext::cancellation). Polling is cheap — one
// relaxed atomic load on the fast path — so kernels can afford to check
// every morsel, which bounds the cancellation grace period to one
// morsel's worth of work per thread.
//
// The token latches: the first non-OK status wins, later Cancel calls
// are ignored, and a fired deadline converts into a latched
// kDeadlineExceeded. All methods are thread-safe.

#ifndef SKALLA_CORE_CANCELLATION_H_
#define SKALLA_CORE_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/status.h"

namespace skalla {

class CancellationToken {
 public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// Arms a deadline `ms` milliseconds from now; Check() returns
  /// kDeadlineExceeded once it passes. `what` names the deadline in the
  /// error message ("round md1", "query"). ms == 0 is an immediate
  /// deadline (the next Check fires).
  void ArmDeadline(uint64_t ms, std::string what);

  /// Latches `status` as the cancellation cause. The first non-OK status
  /// wins; OK statuses and later cancellations are ignored.
  void Cancel(Status status);

  /// Chains this token under `parent` (not owned, may be nullptr to
  /// unchain): a cancelled parent cancels this token too, observed on the
  /// next Check()/cancelled() call. The scheduler uses this to propagate
  /// a session-level Cancel(query_id) into the per-round tokens the
  /// engines arm, without the kernels knowing about either. The parent
  /// must outlive every Check() on this token.
  void set_parent(CancellationToken* parent) {
    parent_.store(parent, std::memory_order_release);
  }

  /// True once the token is cancelled (or a deadline has fired and been
  /// observed by Check, or a chained parent is cancelled). Fast path: two
  /// atomic loads.
  bool cancelled() const {
    if (cancelled_.load(std::memory_order_acquire)) return true;
    const CancellationToken* parent = parent_.load(std::memory_order_acquire);
    return parent != nullptr && parent->cancelled();
  }

  /// OK while live; the latched cancellation status afterwards. Checks
  /// the armed deadline and the chained parent as a side effect, so a
  /// passed deadline or a parent Cancel fires here even if nobody
  /// cancelled this token explicitly.
  Status Check();

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<CancellationToken*> parent_{nullptr};
  std::atomic<bool> deadline_armed_{false};
  std::chrono::steady_clock::time_point deadline_{};
  std::string deadline_what_;
  uint64_t deadline_ms_ = 0;
  mutable std::mutex mu_;
  Status status_;  // guarded by mu_, readable once cancelled_ is set
};

}  // namespace skalla

#endif  // SKALLA_CORE_CANCELLATION_H_
