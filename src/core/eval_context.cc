#include "core/eval_context.h"

#include <thread>

namespace skalla {

std::string_view EvalEngineName(EvalEngine engine) {
  switch (engine) {
    case EvalEngine::kAuto:
      return "auto";
    case EvalEngine::kRow:
      return "row";
    case EvalEngine::kColumnar:
      return "columnar";
  }
  return "auto";
}

std::string_view EngineSetToString(uint8_t engines_used) {
  const bool row = (engines_used & kEngineBitRow) != 0;
  const bool columnar = (engines_used & kEngineBitColumnar) != 0;
  if (row && columnar) return "row+columnar";
  if (row) return "row";
  if (columnar) return "columnar";
  return "-";
}

size_t ResolveEvalThreads(size_t configured) {
  if (configured != 0) return configured;
  size_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

Status ValidateEvalContext(const EvalContext& context) {
  if (context.morsel_rows == 0) {
    return Status::InvalidArgument("EvalContext::morsel_rows must be > 0");
  }
  return Status::OK();
}

}  // namespace skalla
