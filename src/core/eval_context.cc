#include "core/eval_context.h"

#include <thread>

namespace skalla {

size_t ResolveEvalThreads(size_t configured) {
  if (configured != 0) return configured;
  size_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

Status ValidateEvalContext(const EvalContext& context) {
  if (context.morsel_rows == 0) {
    return Status::InvalidArgument("EvalContext::morsel_rows must be > 0");
  }
  return Status::OK();
}

}  // namespace skalla
