// EvalContext: the single options surface for GMDJ evaluation.
//
// One struct travels from the executor layer (ExecutorOptions) through
// Site::EvalGmdjRound into both evaluation engines — the row kernel
// (core/local_eval.h) and the vectorized columnar kernel
// (columnar/vector_eval.h). It absorbs what used to be three fragmented
// knobs: the old GmdjEvalOptions struct, the columnar path's silently
// ignored use_index flag, and the bare `bool use_index` parameter on
// EvalCentralized.
//
// Determinism contract (Theorem 1): per-thread sub-aggregate partials
// merge exactly like per-site ones, so intra-site parallelism cannot
// change query semantics. The kernels go further and guarantee
// *byte-identical* results at any eval_threads value: work decomposition
// (morsel boundaries, partial-merge order) is a pure function of
// morsel_rows, and eval_threads only decides which worker executes each
// morsel — never how results are combined.

#ifndef SKALLA_CORE_EVAL_CONTEXT_H_
#define SKALLA_CORE_EVAL_CONTEXT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "common/status.h"
#include "core/cancellation.h"

namespace skalla {

/// Which GMDJ kernel evaluates an operator. kAuto (the default) picks
/// the columnar engine whenever the detail relation is available in
/// columnar form (a warmed catalog cache or a chunk-paged provider) and
/// the evaluation is not an explicit nested-loop oracle request
/// (use_index = false, which always takes the row engine — even under
/// an explicit kColumnar request, as a transparent fallback).
enum class EvalEngine : uint8_t {
  kAuto = 0,
  kRow = 1,
  kColumnar = 2,
};

/// "auto", "row", or "columnar".
std::string_view EvalEngineName(EvalEngine engine);

/// Bits of EvalProfile::engines_used / ExecStats::engines_used.
inline constexpr uint8_t kEngineBitRow = 1;
inline constexpr uint8_t kEngineBitColumnar = 2;

/// Renders an engines_used bit set: "row", "columnar", "row+columnar",
/// or "-" when no evaluation ran.
std::string_view EngineSetToString(uint8_t engines_used);

/// Data-plane counters one GMDJ evaluation accumulates, independent of
/// the SKALLA_TRACING build gate (the counts feed RoundProfile on the
/// wire, not just telemetry). Workers batch per-morsel counts locally
/// and fold them in with one relaxed fetch_add per morsel.
struct EvalProfile {
  /// Detail (or candidate) rows examined by theta evaluation.
  std::atomic<uint64_t> rows_scanned{0};
  /// (base row, detail row) pairs that satisfied a block's condition.
  std::atomic<uint64_t> rows_matched{0};
  /// Candidate rows produced by hash-index probes (indexed path only).
  std::atomic<uint64_t> index_hits{0};
  /// Summed per-morsel wall time; with eval_threads > 1 morsels overlap,
  /// so this exceeds the evaluation's wall time.
  std::atomic<uint64_t> morsel_us{0};
  /// Chunks skipped by min/max stat pruning (columnar chunked path).
  std::atomic<uint64_t> chunks_pruned{0};
  /// kEngineBit* OR of the kernels that actually evaluated operators.
  std::atomic<uint8_t> engines_used{0};
};

/// Default number of rows per morsel (nested-loop detail morsels and
/// indexed-path base-row ranges alike). Large enough that single-morsel
/// inputs — every small table — take the exact pre-morsel code path.
inline constexpr size_t kDefaultMorselRows = 1024;

struct EvalContext {
  /// Produce decomposed sub-aggregate part columns (what a site ships)
  /// instead of finalized aggregates.
  bool sub_aggregates = false;

  /// Append the `__rng` indicator column: 1 if RNG(b, R, θ_1 ∨ … ∨ θ_m)
  /// is non-empty, else 0 (Prop. 1, distribution-independent group
  /// reduction).
  bool compute_rng = false;

  /// Which kernel evaluates the operator. kAuto prefers the columnar
  /// engine whenever columnar data is available; kRow forces the
  /// interpreted row kernel (the differential-test oracle);
  /// kColumnar forces the vectorized kernel (building chunked columnar
  /// views on demand for resident relations). use_index = false always
  /// falls back to the row engine regardless of this field.
  EvalEngine engine = EvalEngine::kAuto;

  /// Use hash-index acceleration of equality atoms. Disable to get the
  /// naive nested-loop oracle. The columnar kernel has no nested-loop
  /// mode and rejects use_index = false with InvalidArgument;
  /// core::EvaluateGmdj routes oracle requests to the row engine.
  bool use_index = true;

  /// Skip chunks whose persisted min/max ChunkColumnStats prove that a
  /// detail-side comparison atom of θ can match no row (columnar chunked
  /// path only). Results are byte-identical with pruning on or off; the
  /// flag exists so tests can pin that.
  bool chunk_pruning = true;

  /// Worker threads for intra-site morsel-parallel evaluation.
  /// 1 (default) = evaluate on the calling thread; 0 = one worker per
  /// hardware thread. Results are byte-identical for every value.
  size_t eval_threads = 1;

  /// Rows per morsel. This — not eval_threads — is the knob that can
  /// perturb the last bits of FLOAT64 sums (chunked partial merges
  /// re-associate additions); it is fixed by default so results are
  /// reproducible run to run. Must be > 0.
  size_t morsel_rows = kDefaultMorselRows;

  /// Cooperative cancellation (core/cancellation.h); nullptr = never
  /// cancelled. Not owned. Both kernels poll it at morsel boundaries and
  /// return its latched status (typically kDeadlineExceeded), so a fired
  /// deadline stops in-flight evaluation within one morsel's worth of
  /// work per thread.
  CancellationToken* cancellation = nullptr;

  /// The query this evaluation belongs to (0 = untagged). Worker threads
  /// re-establish the coordinator's query-id scope from this, so morsel
  /// spans and metrics recorded off-thread stay attributable.
  uint64_t query_id = 0;

  /// Span id to parent morsel spans under (0 = the worker's own span
  /// stack). Lets morsel spans recorded on pool threads nest under the
  /// site.eval span that scheduled them.
  uint64_t trace_parent_span = 0;

  /// Where the kernels accumulate data-plane counts; nullptr = skip.
  /// Not owned.
  EvalProfile* profile = nullptr;
};

/// Resolves eval_threads: 0 means one worker per hardware thread (at
/// least 1).
size_t ResolveEvalThreads(size_t configured);

/// Rejects malformed contexts (morsel_rows == 0) with InvalidArgument.
Status ValidateEvalContext(const EvalContext& context);

}  // namespace skalla

#endif  // SKALLA_CORE_EVAL_CONTEXT_H_
