#include "core/evaluate.h"

#include <atomic>

#include "columnar/vector_eval.h"
#include "common/macros.h"
#include "core/local_eval.h"

namespace skalla {

namespace {

void RecordEngine(const EvalContext& context, uint8_t bit) {
  if (context.profile != nullptr) {
    context.profile->engines_used.fetch_or(bit, std::memory_order_relaxed);
  }
}

}  // namespace

Result<Table> EvaluateGmdj(const Table& base, const GmdjOp& op,
                           const Catalog& catalog,
                           const EvalContext& context) {
  SKALLA_ASSIGN_OR_RETURN(const DataProvider* provider,
                          catalog.GetProvider(op.detail_table));
  const ColumnTable* cached = catalog.Columnar(op.detail_table);
  const bool want_columnar =
      context.engine == EvalEngine::kColumnar ||
      (context.engine == EvalEngine::kAuto &&
       (cached != nullptr || provider->ResidentTable() == nullptr));
  if (want_columnar && context.use_index) {
    RecordEngine(context, kEngineBitColumnar);
    if (cached != nullptr) {
      return EvalGmdjColumnar(base, *cached, op, context);
    }
    return EvalGmdjColumnar(base, *provider, op, context);
  }
  RecordEngine(context, kEngineBitRow);
  return EvalGmdj(base, *provider, op, context);
}

}  // namespace skalla
