// core::EvaluateGmdj — the single entry point for GMDJ evaluation.
//
// Callers (sites, executors, tests) name the detail relation through a
// Catalog and pick an engine through EvalContext::engine; routing
// between the row kernel (core/local_eval.h) and the vectorized
// columnar kernels (columnar/vector_eval.h) lives here and nowhere
// else. Both engines produce byte-identical results for every condition
// shape, so the choice is purely a performance one:
//
//  - kAuto (default): columnar when the relation has typed arrays ready
//    — a warmed catalog copy (Catalog::WarmColumnar) or a chunk-paged
//    provider whose chunks already hold typed pages. Resident relations
//    without a warm copy take the row engine rather than paying a
//    per-query conversion.
//  - kColumnar: always the columnar kernels; a resident relation
//    without a warm copy streams through its provider's lazily built
//    chunk views.
//  - kRow: always the row kernel (the differential-test oracle).
//
// The columnar kernels have no nested-loop oracle mode, so
// `use_index = false` routes to the row engine under every setting —
// the transparent fallback EXPLAIN ANALYZE surfaces via engines_used.
//
// The engine actually used is recorded in
// EvalContext::profile->engines_used (kEngineBitRow / kEngineBitColumnar)
// for EXPLAIN ANALYZE and the per-site round profiles.

#ifndef SKALLA_CORE_EVALUATE_H_
#define SKALLA_CORE_EVALUATE_H_

#include "common/result.h"
#include "core/eval_context.h"
#include "core/gmdj.h"
#include "storage/catalog.h"

namespace skalla {

/// Evaluates one GMDJ operator for the given base-values relation
/// against `catalog`'s detail partition, routing to the engine
/// EvalContext::engine selects (see file comment for the policy).
Result<Table> EvaluateGmdj(const Table& base, const GmdjOp& op,
                           const Catalog& catalog,
                           const EvalContext& context = {});

}  // namespace skalla

#endif  // SKALLA_CORE_EVALUATE_H_
