#include "core/gmdj.h"

#include "common/macros.h"
#include "common/string_util.h"

namespace skalla {

std::string GmdjBlock::ToString() const {
  std::vector<std::string> agg_strings;
  agg_strings.reserve(aggs.size());
  for (const AggSpec& spec : aggs) agg_strings.push_back(spec.ToString());
  return StrCat("(", Join(agg_strings, ", "), ") WHERE ",
                theta == nullptr ? "true" : theta->ToString());
}

Result<SchemaPtr> GmdjOp::OutputSchema(const Schema& base,
                                       const Schema& detail) const {
  std::vector<Field> fields = base.fields();
  for (const GmdjBlock& block : blocks) {
    for (const AggSpec& spec : block.aggs) {
      SKALLA_ASSIGN_OR_RETURN(ValueType type, AggOutputType(spec, detail));
      fields.push_back(Field{spec.output, type});
    }
  }
  return Schema::Make(std::move(fields));
}

Result<SchemaPtr> GmdjOp::PartialSchema(const Schema& base,
                                        const Schema& detail,
                                        bool with_rng) const {
  std::vector<Field> fields = base.fields();
  for (const GmdjBlock& block : blocks) {
    for (const AggSpec& spec : block.aggs) {
      for (const SubAggregate& part : Decompose(spec)) {
        SKALLA_ASSIGN_OR_RETURN(ValueType type,
                                PartOutputType(part, detail));
        fields.push_back(Field{part.part_name, type});
      }
    }
  }
  if (with_rng) fields.push_back(Field{kRngCountColumn, ValueType::kInt64});
  return Schema::Make(std::move(fields));
}

std::vector<std::string> GmdjOp::OutputColumnNames() const {
  std::vector<std::string> names;
  for (const GmdjBlock& block : blocks) {
    for (const AggSpec& spec : block.aggs) names.push_back(spec.output);
  }
  return names;
}

std::string GmdjOp::ToString() const {
  std::vector<std::string> block_strings;
  block_strings.reserve(blocks.size());
  for (const GmdjBlock& block : blocks) {
    block_strings.push_back(block.ToString());
  }
  return StrCat("MD[", detail_table, "]{", Join(block_strings, "; "), "}");
}

Result<SchemaPtr> GmdjExpr::OutputSchema(const Catalog& catalog) const {
  SKALLA_ASSIGN_OR_RETURN(const DataProvider* source,
                          catalog.GetProvider(base.table));
  SKALLA_ASSIGN_OR_RETURN(SchemaPtr current,
                          base.OutputSchema(*source->schema()));
  for (const GmdjOp& op : ops) {
    SKALLA_ASSIGN_OR_RETURN(const DataProvider* detail,
                            catalog.GetProvider(op.detail_table));
    SKALLA_ASSIGN_OR_RETURN(current,
                            op.OutputSchema(*current, *detail->schema()));
  }
  return current;
}

std::string GmdjExpr::ToString() const {
  std::string out = base.ToString();
  for (const GmdjOp& op : ops) {
    out = StrCat(op.ToString(), "(", out, ")");
  }
  return out;
}

}  // namespace skalla
