// The GMDJ operator (Definition 1 of the paper) and GMDJ expressions
// (chains of GMDJ operators over a base-values query).
//
//   MD(B, R, (l_1, ..., l_m), (θ_1, ..., θ_m))
//
// extends each tuple b of the base-values relation B with, for every block
// i, the aggregates l_i computed over RNG(b, R, θ_i) — the detail tuples
// satisfying θ_i with respect to b.

#ifndef SKALLA_CORE_GMDJ_H_
#define SKALLA_CORE_GMDJ_H_

#include <string>
#include <vector>

#include "agg/aggregate.h"
#include "common/result.h"
#include "expr/expr.h"
#include "relalg/operators.h"
#include "storage/catalog.h"
#include "storage/table.h"

namespace skalla {

/// One (l_i, θ_i) pair of a GMDJ operator: a list of aggregates computed
/// over the detail tuples matching condition θ_i.
struct GmdjBlock {
  std::vector<AggSpec> aggs;
  ExprPtr theta;

  std::string ToString() const;
};

/// One GMDJ operator: all blocks share the same detail relation.
struct GmdjOp {
  std::string detail_table;
  std::vector<GmdjBlock> blocks;

  /// Schema of the (full-aggregate) output: the base schema followed by
  /// each block's declared aggregate columns. Fails on name collisions or
  /// unknown aggregate inputs.
  Result<SchemaPtr> OutputSchema(const Schema& base,
                                 const Schema& detail) const;

  /// Schema of the sub-aggregate (partial) output shipped by sites: the
  /// base schema followed by each block's decomposed part columns, plus an
  /// `__rng` indicator column when `with_rng` is set (used by
  /// distribution-independent group reduction, Prop. 1).
  Result<SchemaPtr> PartialSchema(const Schema& base, const Schema& detail,
                                  bool with_rng) const;

  /// Names of the columns this operator appends in full-aggregate mode.
  std::vector<std::string> OutputColumnNames() const;

  std::string ToString() const;
};

/// A complex GMDJ expression: the result of each (inner) GMDJ is the
/// base-values relation of the next, as in Example 1 of the paper.
struct GmdjExpr {
  BaseQuery base;
  std::vector<GmdjOp> ops;

  /// Key attributes K of the base-values relation: its grouping columns.
  const std::vector<std::string>& key_columns() const { return base.columns; }

  /// Schema of the final result.
  Result<SchemaPtr> OutputSchema(const Catalog& catalog) const;

  std::string ToString() const;
};

/// Name of the |RNG| > 0 indicator column appended for Prop. 1.
inline constexpr char kRngCountColumn[] = "__rng";

}  // namespace skalla

#endif  // SKALLA_CORE_GMDJ_H_
