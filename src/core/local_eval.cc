#include "core/local_eval.h"

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "agg/accumulator.h"
#include "common/macros.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "core/morsels.h"
#include "expr/analysis.h"
#include "obs/obs.h"
#include "storage/hash_index.h"

namespace skalla {

namespace {

// Per-block evaluation state: decomposed parts, resolved input columns,
// and the accumulator matrix (|B| rows x |parts|).
struct BlockState {
  std::vector<SubAggregate> parts;
  // Ranges into `parts` per AggSpec, for finalization.
  std::vector<std::pair<size_t, size_t>> agg_part_ranges;  // (start, len)
  std::vector<int> part_input_idx;  // Detail column per part; -1 for COUNT(*).
  std::vector<Accumulator> acc;     // base_rows * parts.size().
};

Status InitBlockState(const GmdjBlock& block, const Schema& detail,
                      size_t base_rows, BlockState* state) {
  for (const AggSpec& spec : block.aggs) {
    std::vector<SubAggregate> parts = Decompose(spec);
    state->agg_part_ranges.emplace_back(state->parts.size(), parts.size());
    for (SubAggregate& part : parts) {
      int input_idx = -1;
      if (!part.input.empty()) {
        SKALLA_ASSIGN_OR_RETURN(size_t idx, detail.RequireIndex(part.input));
        input_idx = static_cast<int>(idx);
      }
      state->part_input_idx.push_back(input_idx);
      state->parts.push_back(std::move(part));
    }
  }
  state->acc.reserve(base_rows * state->parts.size());
  for (size_t b = 0; b < base_rows; ++b) {
    for (const SubAggregate& part : state->parts) {
      state->acc.emplace_back(part.kind);
    }
  }
  return Status::OK();
}

// Folds detail row `detail_row` into one base row's accumulator slice.
inline void UpdateRow(const BlockState& meta, Accumulator* row_acc,
                      const Row& detail_row) {
  const size_t n = meta.parts.size();
  static const Value kDummy;
  for (size_t p = 0; p < n; ++p) {
    int idx = meta.part_input_idx[p];
    row_acc[p].Update(idx < 0 ? kDummy : detail_row[static_cast<size_t>(idx)]);
  }
}

// The per-block condition, compiled once before evaluation.
struct BlockPlan {
  bool indexed = false;
  std::vector<size_t> base_cols;    // indexed: probe columns, atom order
  std::vector<size_t> detail_cols;  // indexed: key columns, atom order
  ExprPtr residual;                 // indexed: bound residual (may be null)
  ExprPtr theta;                    // nested loop: bound full condition
  const HashIndex* index = nullptr;
};

using IndexKey = std::pair<std::vector<size_t>, std::vector<size_t>>;

// Indexed path: base rows split into ranges of morsel_rows. Each range
// owns its slice of the accumulator matrix (and of `matched`) outright,
// and the per-base-row candidate fold order is exactly the sequential
// one, so this is bit-identical to single-threaded evaluation.
void EvalIndexedBlock(const Table& base, const Table& detail,
                      const BlockPlan& plan, const EvalContext& context,
                      ThreadPool* pool, BlockState* state, uint8_t* matched) {
  const size_t num_base = base.num_rows();
  const size_t n = state->parts.size();
  const size_t morsel_rows = context.morsel_rows;
  CancellationToken* cancel = context.cancellation;
  EvalProfile* profile = context.profile;
  RunMorsels(pool, MorselCount(num_base, morsel_rows), context,
             [&](size_t m) {
    if (cancel != nullptr && !cancel->Check().ok()) return;
    const size_t lo = m * morsel_rows;
    const size_t hi = std::min(lo + morsel_rows, num_base);
    uint64_t hits = 0, scanned = 0, matched_pairs = 0;
    for (size_t b = lo; b < hi; ++b) {
      const Row& base_row = base.row(b);
      const std::vector<uint32_t>* candidates =
          plan.index->Lookup(base_row, plan.base_cols);
      if (candidates == nullptr) continue;
      hits += candidates->size();
      scanned += candidates->size();
      Accumulator* row_acc = state->acc.data() + b * n;
      for (uint32_t r : *candidates) {
        const Row& detail_row = detail.row(r);
        if (plan.residual != nullptr &&
            !plan.residual->EvalBool(&base_row, &detail_row)) {
          continue;
        }
        if (matched != nullptr) matched[b] = 1;
        ++matched_pairs;
        UpdateRow(*state, row_acc, detail_row);
      }
    }
    if (profile != nullptr) {
      profile->index_hits.fetch_add(hits, std::memory_order_relaxed);
      profile->rows_scanned.fetch_add(scanned, std::memory_order_relaxed);
      profile->rows_matched.fetch_add(matched_pairs,
                                      std::memory_order_relaxed);
    }
  });
}

// Chunked indexed path: chunk-outer so each detail chunk is pinned once,
// base-morsel-inner so workers still own accumulator slices outright.
// Candidate lists are ascending global row ids; restricting each pass to
// the pinned chunk's row range (binary search) and visiting chunks in
// order folds every base row's candidates in exactly the sequential
// ascending order — byte-identical to the in-memory indexed path.
// Profile accounting matches too: index_hits counts each candidate list
// once (first chunk), rows_scanned sums the per-chunk slices, which
// partition the candidate list.
Status EvalIndexedBlockChunked(const Table& base, const DataProvider& detail,
                               const BlockPlan& plan,
                               const EvalContext& context, ThreadPool* pool,
                               BlockState* state, uint8_t* matched) {
  const size_t num_base = base.num_rows();
  const size_t n = state->parts.size();
  const size_t morsel_rows = context.morsel_rows;
  CancellationToken* cancel = context.cancellation;
  EvalProfile* profile = context.profile;
  for (size_t ci = 0; ci < detail.num_chunks(); ++ci) {
    if (cancel != nullptr) SKALLA_RETURN_NOT_OK(cancel->Check());
    SKALLA_ASSIGN_OR_RETURN(PinnedChunk pin, detail.Pin(ci));
    const Chunk& chunk = *pin;
    const uint32_t chunk_lo =
        static_cast<uint32_t>(detail.chunk_row_begin(ci));
    const uint32_t chunk_hi =
        static_cast<uint32_t>(chunk_lo + chunk.num_rows());
    const bool first_chunk = ci == 0;
    RunMorsels(pool, MorselCount(num_base, morsel_rows), context,
               [&](size_t m) {
      if (cancel != nullptr && !cancel->Check().ok()) return;
      const size_t lo = m * morsel_rows;
      const size_t hi = std::min(lo + morsel_rows, num_base);
      uint64_t hits = 0, scanned = 0, matched_pairs = 0;
      for (size_t b = lo; b < hi; ++b) {
        const Row& base_row = base.row(b);
        const std::vector<uint32_t>* candidates =
            plan.index->Lookup(base_row, plan.base_cols);
        if (candidates == nullptr) continue;
        if (first_chunk) hits += candidates->size();
        auto begin = std::lower_bound(candidates->begin(), candidates->end(),
                                      chunk_lo);
        auto end = std::lower_bound(begin, candidates->end(), chunk_hi);
        scanned += static_cast<uint64_t>(end - begin);
        Accumulator* row_acc = state->acc.data() + b * n;
        for (auto it = begin; it != end; ++it) {
          const Row& detail_row = chunk.row(*it - chunk_lo);
          if (plan.residual != nullptr &&
              !plan.residual->EvalBool(&base_row, &detail_row)) {
            continue;
          }
          if (matched != nullptr) matched[b] = 1;
          ++matched_pairs;
          UpdateRow(*state, row_acc, detail_row);
        }
      }
      if (profile != nullptr) {
        profile->index_hits.fetch_add(hits, std::memory_order_relaxed);
        profile->rows_scanned.fetch_add(scanned, std::memory_order_relaxed);
        profile->rows_matched.fetch_add(matched_pairs,
                                        std::memory_order_relaxed);
      }
    });
  }
  return Status::OK();
}

// One morsel's private accumulator partials + matched bitmap
// (nested-loop path).
struct MorselPartial {
  std::vector<Accumulator> acc;  // base_rows * parts.size()
  std::vector<uint8_t> matched;  // base_rows, or empty
};

MorselPartial MakePartial(const BlockState& meta, size_t num_base,
                          bool want_matched) {
  MorselPartial partial;
  partial.acc.reserve(num_base * meta.parts.size());
  for (size_t b = 0; b < num_base; ++b) {
    for (const SubAggregate& part : meta.parts) {
      partial.acc.emplace_back(part.kind);
    }
  }
  if (want_matched) partial.matched.assign(num_base, 0);
  return partial;
}

// Folds detail rows [lo, hi) against every base row into `partial`,
// counting the (base, detail) pairs that matched.
void FoldMorsel(const Table& base, const Table& detail, const BlockPlan& plan,
                const BlockState& meta, size_t lo, size_t hi,
                MorselPartial* partial, uint64_t* matched_pairs) {
  const size_t n = meta.parts.size();
  for (size_t b = 0; b < base.num_rows(); ++b) {
    const Row& base_row = base.row(b);
    Accumulator* row_acc = partial->acc.data() + b * n;
    for (size_t r = lo; r < hi; ++r) {
      const Row& detail_row = detail.row(r);
      if (!plan.theta->EvalBool(&base_row, &detail_row)) continue;
      if (!partial->matched.empty()) partial->matched[b] = 1;
      if (matched_pairs != nullptr) ++*matched_pairs;
      UpdateRow(meta, row_acc, detail_row);
    }
  }
}

// Chunked fold of detail rows [lo, hi): walks the chunk segments covering
// the range, pinning each once, with the loop order inverted to
// detail-outer / base-inner. Each accumulator (b, p) only ever sees its
// own updates, and those still arrive in ascending detail-row order, so
// the resulting partial is byte-identical to FoldMorsel's.
Status FoldMorselChunked(const Table& base, const DataProvider& detail,
                         const BlockPlan& plan, const BlockState& meta,
                         size_t lo, size_t hi, MorselPartial* partial,
                         uint64_t* matched_pairs) {
  const size_t n = meta.parts.size();
  const size_t num_base = base.num_rows();
  size_t r = lo;
  while (r < hi) {
    const size_t ci = detail.ChunkOfRow(r);
    const size_t chunk_lo = detail.chunk_row_begin(ci);
    SKALLA_ASSIGN_OR_RETURN(PinnedChunk pin, detail.Pin(ci));
    const Chunk& chunk = *pin;
    const size_t seg_hi = std::min(hi, chunk_lo + chunk.num_rows());
    for (; r < seg_hi; ++r) {
      const Row& detail_row = chunk.row(r - chunk_lo);
      for (size_t b = 0; b < num_base; ++b) {
        const Row& base_row = base.row(b);
        if (!plan.theta->EvalBool(&base_row, &detail_row)) continue;
        if (!partial->matched.empty()) partial->matched[b] = 1;
        if (matched_pairs != nullptr) ++*matched_pairs;
        UpdateRow(meta, partial->acc.data() + b * n, detail_row);
      }
    }
  }
  return Status::OK();
}

void MergePartial(const MorselPartial& partial, BlockState* state,
                  uint8_t* matched) {
  for (size_t i = 0; i < state->acc.size(); ++i) {
    state->acc[i].MergeFrom(partial.acc[i]);
  }
  if (matched != nullptr) {
    for (size_t b = 0; b < partial.matched.size(); ++b) {
      matched[b] |= partial.matched[b];
    }
  }
}

// Nested-loop path: the detail relation splits into morsels of
// morsel_rows; every morsel folds into a private MorselPartial, and
// partials merge into the block state in morsel index order — the same
// sub-aggregate synchronization the coordinator applies to per-site
// partials (Theorem 1). Decomposition and merge order depend only on
// morsel_rows, never on eval_threads, so any thread count produces the
// same bytes. (With a single morsel, merging into the zero-initialized
// matrix is an exact identity, so small inputs also match the historical
// direct fold bit for bit.)
void EvalNestedLoopBlock(const Table& base, const Table& detail,
                         const BlockPlan& plan, const EvalContext& context,
                         ThreadPool* pool, BlockState* state,
                         uint8_t* matched) {
  const size_t num_base = base.num_rows();
  const size_t num_detail = detail.num_rows();
  const size_t morsel_rows = context.morsel_rows;
  CancellationToken* cancel = context.cancellation;
  EvalProfile* profile = context.profile;
  const size_t morsels = MorselCount(num_detail, morsel_rows);
  const bool want_matched = matched != nullptr;
  auto record = [&](size_t lo, size_t hi, uint64_t matched_pairs) {
    if (profile == nullptr) return;
    profile->rows_scanned.fetch_add(
        static_cast<uint64_t>(num_base) * (hi - lo),
        std::memory_order_relaxed);
    profile->rows_matched.fetch_add(matched_pairs,
                                    std::memory_order_relaxed);
  };
  if (pool == nullptr || morsels <= 1) {
    // Stream morsels in order through a scratch partial, merging each as
    // it completes: the merge sequence is identical to the parallel
    // path's, just without holding every partial live at once.
    RunMorsels(nullptr, morsels, context, [&](size_t m) {
      if (cancel != nullptr && !cancel->Check().ok()) return;
      MorselPartial partial = MakePartial(*state, num_base, want_matched);
      const size_t lo = m * morsel_rows;
      const size_t hi = std::min((m + 1) * morsel_rows, num_detail);
      uint64_t matched_pairs = 0;
      FoldMorsel(base, detail, plan, *state, lo, hi, &partial,
                 &matched_pairs);
      record(lo, hi, matched_pairs);
      MergePartial(partial, state, matched);
    });
    return;
  }
  std::vector<MorselPartial> partials(morsels);
  RunMorsels(pool, morsels, context, [&](size_t m) {
    if (cancel != nullptr && !cancel->Check().ok()) return;
    partials[m] = MakePartial(*state, num_base, want_matched);
    const size_t lo = m * morsel_rows;
    const size_t hi = std::min((m + 1) * morsel_rows, num_detail);
    uint64_t matched_pairs = 0;
    FoldMorsel(base, detail, plan, *state, lo, hi, &partials[m],
               &matched_pairs);
    record(lo, hi, matched_pairs);
  });
  for (const MorselPartial& partial : partials) {
    // A cancelled morsel leaves its partial empty; the caller surfaces
    // the cancellation status, so skipping it here is safe.
    if (partial.acc.size() != state->acc.size()) continue;
    MergePartial(partial, state, matched);
  }
}

// Chunked nested-loop path: the morsel decomposition and merge order are
// the global ones (they depend only on morsel_rows and the relation's
// row count, exactly as in-memory); only the per-morsel fold swaps to
// FoldMorselChunked. Pin failures surface as the first error.
Status EvalNestedLoopBlockChunked(const Table& base,
                                  const DataProvider& detail,
                                  const BlockPlan& plan,
                                  const EvalContext& context,
                                  ThreadPool* pool, BlockState* state,
                                  uint8_t* matched) {
  const size_t num_base = base.num_rows();
  const size_t num_detail = detail.num_rows();
  const size_t morsel_rows = context.morsel_rows;
  CancellationToken* cancel = context.cancellation;
  EvalProfile* profile = context.profile;
  const size_t morsels = MorselCount(num_detail, morsel_rows);
  const bool want_matched = matched != nullptr;
  auto record = [&](size_t lo, size_t hi, uint64_t matched_pairs) {
    if (profile == nullptr) return;
    profile->rows_scanned.fetch_add(
        static_cast<uint64_t>(num_base) * (hi - lo),
        std::memory_order_relaxed);
    profile->rows_matched.fetch_add(matched_pairs,
                                    std::memory_order_relaxed);
  };
  std::vector<Status> morsel_status(morsels);
  if (pool == nullptr || morsels <= 1) {
    RunMorsels(nullptr, morsels, context, [&](size_t m) {
      if (cancel != nullptr && !cancel->Check().ok()) return;
      MorselPartial partial = MakePartial(*state, num_base, want_matched);
      const size_t lo = m * morsel_rows;
      const size_t hi = std::min((m + 1) * morsel_rows, num_detail);
      uint64_t matched_pairs = 0;
      morsel_status[m] = FoldMorselChunked(base, detail, plan, *state, lo,
                                           hi, &partial, &matched_pairs);
      if (!morsel_status[m].ok()) return;
      record(lo, hi, matched_pairs);
      MergePartial(partial, state, matched);
    });
  } else {
    std::vector<MorselPartial> partials(morsels);
    RunMorsels(pool, morsels, context, [&](size_t m) {
      if (cancel != nullptr && !cancel->Check().ok()) return;
      partials[m] = MakePartial(*state, num_base, want_matched);
      const size_t lo = m * morsel_rows;
      const size_t hi = std::min((m + 1) * morsel_rows, num_detail);
      uint64_t matched_pairs = 0;
      morsel_status[m] = FoldMorselChunked(base, detail, plan, *state, lo,
                                           hi, &partials[m], &matched_pairs);
      if (!morsel_status[m].ok()) return;
      record(lo, hi, matched_pairs);
    });
    for (const Status& status : morsel_status) {
      SKALLA_RETURN_NOT_OK(status);
    }
    for (const MorselPartial& partial : partials) {
      if (partial.acc.size() != state->acc.size()) continue;
      MergePartial(partial, state, matched);
    }
    return Status::OK();
  }
  for (const Status& status : morsel_status) {
    SKALLA_RETURN_NOT_OK(status);
  }
  return Status::OK();
}

// Compiled form of one operator against fixed base/detail schemas: the
// output schema, per-block states and plans, and the distinct index key
// pairings in first-use order. Shared by the resident and chunked
// evaluations so the two can never drift.
struct CompiledOp {
  SchemaPtr out_schema;
  std::vector<BlockState> states;
  std::vector<BlockPlan> plans;
  std::vector<IndexKey> index_keys;
};

Result<CompiledOp> CompileOp(const GmdjOp& op, const Schema& base_schema,
                             const Schema& detail_schema, size_t num_base,
                             const EvalContext& context) {
  CompiledOp compiled;
  SKALLA_ASSIGN_OR_RETURN(
      compiled.out_schema,
      context.sub_aggregates
          ? op.PartialSchema(base_schema, detail_schema, context.compute_rng)
          : op.OutputSchema(base_schema, detail_schema));
  if (!context.sub_aggregates && context.compute_rng) {
    SKALLA_ASSIGN_OR_RETURN(
        compiled.out_schema,
        compiled.out_schema->AddField(Field{kRngCountColumn,
                                            ValueType::kInt64}));
  }

  compiled.states.resize(op.blocks.size());
  compiled.plans.resize(op.blocks.size());
  for (size_t bi = 0; bi < op.blocks.size(); ++bi) {
    const GmdjBlock& block = op.blocks[bi];
    BlockPlan& plan = compiled.plans[bi];
    SKALLA_RETURN_NOT_OK(InitBlockState(block, detail_schema, num_base,
                                        &compiled.states[bi]));
    if (block.theta == nullptr) {
      return Status::InvalidArgument("GMDJ block has no condition");
    }

    ConditionAnalysis analysis = AnalyzeCondition(block.theta);
    plan.indexed = context.use_index && !analysis.equi_atoms.empty();
    if (plan.indexed) {
      for (const EquiAtom& atom : analysis.equi_atoms) {
        SKALLA_ASSIGN_OR_RETURN(size_t b_idx,
                                base_schema.RequireIndex(atom.base_col));
        SKALLA_ASSIGN_OR_RETURN(size_t d_idx,
                                detail_schema.RequireIndex(atom.detail_col));
        plan.base_cols.push_back(b_idx);
        plan.detail_cols.push_back(d_idx);
      }
      if (analysis.residual != nullptr) {
        SKALLA_ASSIGN_OR_RETURN(
            plan.residual,
            analysis.residual->Bind(&base_schema, &detail_schema));
      }
      IndexKey key{plan.base_cols, plan.detail_cols};
      if (std::find(compiled.index_keys.begin(), compiled.index_keys.end(),
                    key) == compiled.index_keys.end()) {
        compiled.index_keys.push_back(std::move(key));
      }
    } else {
      SKALLA_ASSIGN_OR_RETURN(
          plan.theta, block.theta->Bind(&base_schema, &detail_schema));
    }
  }
  return compiled;
}

// Assembles the output table from the folded block states. Identical for
// resident and chunked evaluation.
Result<Table> AssembleOutput(const Table& base, const GmdjOp& op,
                             const EvalContext& context,
                             const CompiledOp& compiled,
                             const std::vector<uint8_t>& matched) {
  const size_t num_base = base.num_rows();
  Table out(compiled.out_schema);
  out.Reserve(num_base);
  for (size_t b = 0; b < num_base; ++b) {
    Row row = base.row(b);
    row.reserve(compiled.out_schema->num_fields());
    for (size_t bi = 0; bi < op.blocks.size(); ++bi) {
      const BlockState& state = compiled.states[bi];
      const size_t n = state.parts.size();
      const Accumulator* row_acc = state.acc.data() + b * n;
      if (context.sub_aggregates) {
        for (size_t p = 0; p < n; ++p) row.push_back(row_acc[p].Final());
      } else {
        for (size_t ai = 0; ai < op.blocks[bi].aggs.size(); ++ai) {
          auto [start, len] = state.agg_part_ranges[ai];
          std::vector<Value> parts;
          parts.reserve(len);
          for (size_t p = 0; p < len; ++p) {
            parts.push_back(row_acc[start + p].Final());
          }
          row.push_back(FinalizeAggregate(op.blocks[bi].aggs[ai], parts));
        }
      }
    }
    if (context.compute_rng) {
      row.push_back(Value(int64_t{matched[b] ? 1 : 0}));
    }
    out.AppendUnchecked(std::move(row));
  }
  return out;
}

}  // namespace

Result<Table> EvalGmdj(const Table& base, const Table& detail,
                       const GmdjOp& op, const EvalContext& context) {
  SKALLA_RETURN_NOT_OK(ValidateEvalContext(context));
  if (context.cancellation != nullptr) {
    SKALLA_RETURN_NOT_OK(context.cancellation->Check());
  }
  const Schema& base_schema = *base.schema();
  const Schema& detail_schema = *detail.schema();
  const size_t num_base = base.num_rows();

  SKALLA_ASSIGN_OR_RETURN(
      CompiledOp compiled,
      CompileOp(op, base_schema, detail_schema, num_base, context));

  // matched[b] = 1 iff RNG(b, R, θ_1 ∨ … ∨ θ_m) non-empty.
  std::vector<uint8_t> matched;
  if (context.compute_rng) matched.assign(num_base, 0);
  uint8_t* matched_ptr = context.compute_rng ? matched.data() : nullptr;

  const size_t threads = ResolveEvalThreads(context.eval_threads);
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);

  // Blocks of a (possibly coalesced) operator frequently share their
  // equality atoms; the detail-side hash index is built once per distinct
  // key pairing — concurrently when a pool is available. This is the
  // source of the site-computation savings the paper attributes to
  // coalescing (Fig. 3, low cardinality). The cache key is the full
  // (base_cols, detail_cols) pairing, not detail_cols alone: two blocks
  // indexing the same detail columns but pairing them with differently
  // ordered base columns must not share probe contracts.
  std::map<IndexKey, HashIndex> index_cache;
  std::vector<HashIndex*> index_slots;
  index_slots.reserve(compiled.index_keys.size());
  for (const IndexKey& key : compiled.index_keys) {
    index_slots.push_back(&index_cache[key]);
  }
  auto build_index = [&](size_t i) {
    *index_slots[i] = HashIndex::Build(detail, compiled.index_keys[i].second);
  };
  if (pool != nullptr && compiled.index_keys.size() > 1) {
    pool->ParallelFor(compiled.index_keys.size(), build_index);
  } else {
    for (size_t i = 0; i < compiled.index_keys.size(); ++i) build_index(i);
  }

  for (size_t bi = 0; bi < op.blocks.size(); ++bi) {
    BlockPlan& plan = compiled.plans[bi];
    if (plan.indexed) {
      plan.index = &index_cache.at(IndexKey{plan.base_cols, plan.detail_cols});
      EvalIndexedBlock(base, detail, plan, context, pool.get(),
                       &compiled.states[bi], matched_ptr);
    } else {
      EvalNestedLoopBlock(base, detail, plan, context, pool.get(),
                          &compiled.states[bi], matched_ptr);
    }
  }

  // A fired deadline (or explicit cancel) may have skipped morsels above;
  // the partially-folded accumulators must never surface as a result.
  if (context.cancellation != nullptr) {
    SKALLA_RETURN_NOT_OK(context.cancellation->Check());
  }

  return AssembleOutput(base, op, context, compiled, matched);
}

Result<Table> EvalGmdj(const Table& base, const DataProvider& detail,
                       const GmdjOp& op, const EvalContext& context) {
  if (const Table* resident = detail.ResidentTable(); resident != nullptr) {
    return EvalGmdj(base, *resident, op, context);
  }
  SKALLA_RETURN_NOT_OK(ValidateEvalContext(context));
  if (context.cancellation != nullptr) {
    SKALLA_RETURN_NOT_OK(context.cancellation->Check());
  }
  const Schema& base_schema = *base.schema();
  const Schema& detail_schema = *detail.schema();
  const size_t num_base = base.num_rows();

  SKALLA_ASSIGN_OR_RETURN(
      CompiledOp compiled,
      CompileOp(op, base_schema, detail_schema, num_base, context));

  std::vector<uint8_t> matched;
  if (context.compute_rng) matched.assign(num_base, 0);
  uint8_t* matched_ptr = context.compute_rng ? matched.data() : nullptr;

  const size_t threads = ResolveEvalThreads(context.eval_threads);
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);

  // Index builds stream the detail chunks once per distinct key pairing;
  // the index owns its group keys, so the chunks can be evicted between
  // build and probe.
  std::map<IndexKey, HashIndex> index_cache;
  for (const IndexKey& key : compiled.index_keys) {
    SKALLA_ASSIGN_OR_RETURN(index_cache[key],
                            HashIndex::BuildChunked(detail, key.second));
  }

  for (size_t bi = 0; bi < op.blocks.size(); ++bi) {
    BlockPlan& plan = compiled.plans[bi];
    if (plan.indexed) {
      plan.index = &index_cache.at(IndexKey{plan.base_cols, plan.detail_cols});
      SKALLA_RETURN_NOT_OK(
          EvalIndexedBlockChunked(base, detail, plan, context, pool.get(),
                                  &compiled.states[bi], matched_ptr));
    } else {
      SKALLA_RETURN_NOT_OK(
          EvalNestedLoopBlockChunked(base, detail, plan, context, pool.get(),
                                     &compiled.states[bi], matched_ptr));
    }
  }

  if (context.cancellation != nullptr) {
    SKALLA_RETURN_NOT_OK(context.cancellation->Check());
  }

  return AssembleOutput(base, op, context, compiled, matched);
}

Result<Table> EvalCentralized(const GmdjExpr& expr, const Catalog& catalog,
                              const EvalContext& context) {
  SKALLA_ASSIGN_OR_RETURN(Table current, expr.base.Execute(catalog));
  // A reference evaluation always finalizes: partial output or the __rng
  // indicator only make sense site-side.
  EvalContext local = context;
  local.sub_aggregates = false;
  local.compute_rng = false;
  for (const GmdjOp& op : expr.ops) {
    SKALLA_ASSIGN_OR_RETURN(const DataProvider* detail,
                            catalog.GetProvider(op.detail_table));
    SKALLA_ASSIGN_OR_RETURN(current, EvalGmdj(current, *detail, op, local));
  }
  return current;
}

}  // namespace skalla
