#include "core/local_eval.h"

#include <map>
#include <vector>

#include "agg/accumulator.h"
#include "common/macros.h"
#include "common/string_util.h"
#include "expr/analysis.h"
#include "storage/hash_index.h"

namespace skalla {

namespace {

// Per-block evaluation state: decomposed parts, resolved input columns,
// and the accumulator matrix (|B| rows x |parts|).
struct BlockState {
  std::vector<SubAggregate> parts;
  // Ranges into `parts` per AggSpec, for finalization.
  std::vector<std::pair<size_t, size_t>> agg_part_ranges;  // (start, len)
  std::vector<int> part_input_idx;  // Detail column per part; -1 for COUNT(*).
  std::vector<Accumulator> acc;     // base_rows * parts.size().
};

Status InitBlockState(const GmdjBlock& block, const Schema& detail,
                      size_t base_rows, BlockState* state) {
  for (const AggSpec& spec : block.aggs) {
    std::vector<SubAggregate> parts = Decompose(spec);
    state->agg_part_ranges.emplace_back(state->parts.size(), parts.size());
    for (SubAggregate& part : parts) {
      int input_idx = -1;
      if (!part.input.empty()) {
        SKALLA_ASSIGN_OR_RETURN(size_t idx, detail.RequireIndex(part.input));
        input_idx = static_cast<int>(idx);
      }
      state->part_input_idx.push_back(input_idx);
      state->parts.push_back(std::move(part));
    }
  }
  state->acc.reserve(base_rows * state->parts.size());
  for (size_t b = 0; b < base_rows; ++b) {
    for (const SubAggregate& part : state->parts) {
      state->acc.emplace_back(part.kind);
    }
  }
  return Status::OK();
}

// Folds detail row `r` into base row `b`'s accumulators.
inline void UpdateBlock(BlockState* state, size_t b, const Row& detail_row) {
  const size_t n = state->parts.size();
  Accumulator* row_acc = state->acc.data() + b * n;
  static const Value kDummy;
  for (size_t p = 0; p < n; ++p) {
    int idx = state->part_input_idx[p];
    row_acc[p].Update(idx < 0 ? kDummy : detail_row[static_cast<size_t>(idx)]);
  }
}

}  // namespace

Result<Table> EvalGmdj(const Table& base, const Table& detail,
                       const GmdjOp& op, const GmdjEvalOptions& options) {
  const Schema& base_schema = *base.schema();
  const Schema& detail_schema = *detail.schema();

  SKALLA_ASSIGN_OR_RETURN(
      SchemaPtr out_schema,
      options.sub_aggregates
          ? op.PartialSchema(base_schema, detail_schema, options.compute_rng)
          : op.OutputSchema(base_schema, detail_schema));
  if (!options.sub_aggregates && options.compute_rng) {
    SKALLA_ASSIGN_OR_RETURN(out_schema, out_schema->AddField(Field{
                                            kRngCountColumn,
                                            ValueType::kInt64}));
  }

  const size_t num_base = base.num_rows();
  std::vector<BlockState> states(op.blocks.size());
  // matched[b] = 1 iff RNG(b, R, θ_1 ∨ … ∨ θ_m) non-empty.
  std::vector<uint8_t> matched;
  if (options.compute_rng) matched.assign(num_base, 0);

  // Blocks of a (possibly coalesced) operator frequently share their
  // equality atoms; the detail-side hash index is built once per distinct
  // key column set. This is the source of the site-computation savings
  // the paper attributes to coalescing (Fig. 3, low cardinality).
  std::map<std::vector<size_t>, HashIndex> index_cache;

  for (size_t bi = 0; bi < op.blocks.size(); ++bi) {
    const GmdjBlock& block = op.blocks[bi];
    BlockState& state = states[bi];
    SKALLA_RETURN_NOT_OK(
        InitBlockState(block, detail_schema, num_base, &state));
    if (block.theta == nullptr) {
      return Status::InvalidArgument("GMDJ block has no condition");
    }

    ConditionAnalysis analysis = AnalyzeCondition(block.theta);
    const bool indexed = options.use_index && !analysis.equi_atoms.empty();

    if (indexed) {
      std::vector<size_t> base_cols;
      std::vector<size_t> detail_cols;
      for (const EquiAtom& atom : analysis.equi_atoms) {
        SKALLA_ASSIGN_OR_RETURN(size_t b_idx,
                                base_schema.RequireIndex(atom.base_col));
        SKALLA_ASSIGN_OR_RETURN(size_t d_idx,
                                detail_schema.RequireIndex(atom.detail_col));
        base_cols.push_back(b_idx);
        detail_cols.push_back(d_idx);
      }
      ExprPtr residual;
      if (analysis.residual != nullptr) {
        SKALLA_ASSIGN_OR_RETURN(
            residual, analysis.residual->Bind(&base_schema, &detail_schema));
      }
      auto cache_it = index_cache.find(detail_cols);
      if (cache_it == index_cache.end()) {
        cache_it = index_cache
                       .emplace(detail_cols,
                                HashIndex::Build(detail, detail_cols))
                       .first;
      }
      const HashIndex& index = cache_it->second;
      for (size_t b = 0; b < num_base; ++b) {
        const Row& base_row = base.row(b);
        const std::vector<uint32_t>* candidates =
            index.Lookup(base_row, base_cols);
        if (candidates == nullptr) continue;
        for (uint32_t r : candidates[0]) {
          const Row& detail_row = detail.row(r);
          if (residual != nullptr &&
              !residual->EvalBool(&base_row, &detail_row)) {
            continue;
          }
          if (options.compute_rng) matched[b] = 1;
          UpdateBlock(&state, b, detail_row);
        }
      }
    } else {
      SKALLA_ASSIGN_OR_RETURN(ExprPtr theta,
                              block.theta->Bind(&base_schema, &detail_schema));
      for (size_t b = 0; b < num_base; ++b) {
        const Row& base_row = base.row(b);
        for (size_t r = 0; r < detail.num_rows(); ++r) {
          const Row& detail_row = detail.row(r);
          if (!theta->EvalBool(&base_row, &detail_row)) continue;
          if (options.compute_rng) matched[b] = 1;
          UpdateBlock(&state, b, detail_row);
        }
      }
    }
  }

  // Assemble output rows.
  Table out(out_schema);
  out.Reserve(num_base);
  for (size_t b = 0; b < num_base; ++b) {
    Row row = base.row(b);
    row.reserve(out_schema->num_fields());
    for (size_t bi = 0; bi < op.blocks.size(); ++bi) {
      const BlockState& state = states[bi];
      const size_t n = state.parts.size();
      const Accumulator* row_acc = state.acc.data() + b * n;
      if (options.sub_aggregates) {
        for (size_t p = 0; p < n; ++p) row.push_back(row_acc[p].Final());
      } else {
        for (size_t ai = 0; ai < op.blocks[bi].aggs.size(); ++ai) {
          auto [start, len] = state.agg_part_ranges[ai];
          std::vector<Value> parts;
          parts.reserve(len);
          for (size_t p = 0; p < len; ++p) {
            parts.push_back(row_acc[start + p].Final());
          }
          row.push_back(FinalizeAggregate(op.blocks[bi].aggs[ai], parts));
        }
      }
    }
    if (options.compute_rng) {
      row.push_back(Value(int64_t{matched[b] ? 1 : 0}));
    }
    out.AppendUnchecked(std::move(row));
  }
  return out;
}

Result<Table> EvalCentralized(const GmdjExpr& expr, const Catalog& catalog,
                              bool use_index) {
  SKALLA_ASSIGN_OR_RETURN(Table current, expr.base.Execute(catalog));
  GmdjEvalOptions options;
  options.use_index = use_index;
  for (const GmdjOp& op : expr.ops) {
    SKALLA_ASSIGN_OR_RETURN(const Table* detail, catalog.Get(op.detail_table));
    SKALLA_ASSIGN_OR_RETURN(current, EvalGmdj(current, *detail, op, options));
  }
  return current;
}

}  // namespace skalla
