// Local (single-site / centralized) evaluation of GMDJ operators.
//
// Conventional groupwise/hash aggregation does not directly apply to GMDJ
// conditions because RNG(b1, R, θ) and RNG(b2, R, θ) may overlap
// (Sect. 2.2). Following the centralized evaluation techniques of
// [Akinde & Böhlen 2001; Chatziantoniou et al. 2001], the evaluator splits
// each θ into hash-joinable equality atoms plus a residual predicate:
// equality atoms key a hash index over the detail relation; candidates are
// filtered by the residual. A naive nested-loop path (use_index = false)
// serves as the test oracle.

#ifndef SKALLA_CORE_LOCAL_EVAL_H_
#define SKALLA_CORE_LOCAL_EVAL_H_

#include "common/result.h"
#include "core/gmdj.h"
#include "storage/catalog.h"
#include "storage/table.h"

namespace skalla {

struct GmdjEvalOptions {
  /// Produce decomposed sub-aggregate part columns (what a site ships)
  /// instead of finalized aggregates.
  bool sub_aggregates = false;

  /// Append the `__rng` indicator column: 1 if RNG(b, R, θ_1 ∨ … ∨ θ_m) is
  /// non-empty, else 0 (Prop. 1, distribution-independent group reduction).
  bool compute_rng = false;

  /// Use hash-index acceleration of equality atoms. Disable to get the
  /// naive nested-loop oracle.
  bool use_index = true;
};

/// Evaluates one GMDJ operator: one output row per base row, extended with
/// the block aggregates (finalized or partial per `options`).
Result<Table> EvalGmdj(const Table& base, const Table& detail,
                       const GmdjOp& op, const GmdjEvalOptions& options = {});

/// Reference semantics of a whole GMDJ expression against a centralized
/// catalog: evaluates the base query, then each GMDJ in turn with full
/// aggregates.
Result<Table> EvalCentralized(const GmdjExpr& expr, const Catalog& catalog,
                              bool use_index = true);

}  // namespace skalla

#endif  // SKALLA_CORE_LOCAL_EVAL_H_
