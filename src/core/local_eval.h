// Local (single-site / centralized) evaluation of GMDJ operators.
//
// Conventional groupwise/hash aggregation does not directly apply to GMDJ
// conditions because RNG(b1, R, θ) and RNG(b2, R, θ) may overlap
// (Sect. 2.2). Following the centralized evaluation techniques of
// [Akinde & Böhlen 2001; Chatziantoniou et al. 2001], the evaluator splits
// each θ into hash-joinable equality atoms plus a residual predicate:
// equality atoms key a hash index over the detail relation; candidates are
// filtered by the residual. A naive nested-loop path (use_index = false)
// serves as the test oracle.
//
// Both paths are morsel-parallel under EvalContext::eval_threads:
//  - indexed: base rows split into ranges of morsel_rows; each worker
//    probes one shared immutable hash index per distinct key-column
//    pairing (built once up front, concurrently per pairing) and owns
//    its slice of the accumulator matrix outright;
//  - nested-loop: the detail relation splits into morsels of morsel_rows;
//    each worker folds its morsel into private BlockState partials, and
//    partials merge in morsel order with the same sub-aggregate
//    synchronization the coordinator applies to per-site partials
//    (Theorem 1).
// Work decomposition depends only on morsel_rows, so results are
// byte-identical at every eval_threads value.
//
// The detail relation may also be chunk-paged (a DataProvider without a
// resident table): chunks are pinned, scanned, and unpinned one at a
// time, and every fold sequence is arranged so the bytes match the
// in-memory evaluation at any buffer budget (see EvalGmdj below).

#ifndef SKALLA_CORE_LOCAL_EVAL_H_
#define SKALLA_CORE_LOCAL_EVAL_H_

#include "common/result.h"
#include "core/eval_context.h"
#include "core/gmdj.h"
#include "storage/catalog.h"
#include "storage/data_provider.h"
#include "storage/table.h"

namespace skalla {

/// Evaluates one GMDJ operator: one output row per base row, extended with
/// the block aggregates (finalized or partial per `context`).
Result<Table> EvalGmdj(const Table& base, const Table& detail,
                       const GmdjOp& op, const EvalContext& context = {});

/// Same, against a chunk-paged detail relation. Providers with a resident
/// table take the exact in-memory path above; paged providers stream
/// pin → scan → unpin with fold orders chosen to stay byte-identical to
/// the in-memory evaluation at any buffer budget.
Result<Table> EvalGmdj(const Table& base, const DataProvider& detail,
                       const GmdjOp& op, const EvalContext& context = {});

/// Reference semantics of a whole GMDJ expression against a centralized
/// catalog: evaluates the base query, then each GMDJ in turn with full
/// aggregates (the sub_aggregates / compute_rng fields of `context` are
/// overridden — a reference evaluation always finalizes). Works for both
/// resident and chunk-backed catalog entries.
Result<Table> EvalCentralized(const GmdjExpr& expr, const Catalog& catalog,
                              const EvalContext& context = {});

}  // namespace skalla

#endif  // SKALLA_CORE_LOCAL_EVAL_H_
