#include "core/morsels.h"

#include "common/stopwatch.h"
#include "obs/obs.h"

namespace skalla {

void RunMorsels(ThreadPool* pool, size_t n, const EvalContext& context,
                const std::function<void(size_t)>& fn) {
  EvalProfile* profile = context.profile;
  auto timed = [&fn, &context, profile](size_t m) {
    obs::QueryIdScope query_scope(context.query_id != 0
                                      ? context.query_id
                                      : obs::CurrentQueryId());
    SKALLA_TRACE_SPAN_UNDER(morsel_span, "site.eval.morsel", "site",
                            context.trace_parent_span);
    SKALLA_SPAN_ATTR(morsel_span, "morsel", static_cast<uint64_t>(m));
    Stopwatch morsel_watch;
    fn(m);
    if (profile != nullptr) {
      profile->morsel_us.fetch_add(
          static_cast<uint64_t>(morsel_watch.ElapsedMicros()),
          std::memory_order_relaxed);
    }
    SKALLA_HISTOGRAM_RECORD("skalla.site.morsel_us",
                            morsel_watch.ElapsedMicros());
  };
  if (pool != nullptr && n > 1) {
    pool->ParallelFor(n, timed);
  } else {
    for (size_t m = 0; m < n; ++m) timed(m);
  }
}

}  // namespace skalla
