// Morsel scheduling shared by the row and columnar GMDJ kernels: the
// count of fixed-size morsels covering a row range, and a runner that
// dispatches morsels over an optional ThreadPool while wrapping each one
// in a site.eval.morsel span timed into skalla.site.morsel_us and
// EvalContext::profile->morsel_us. Both kernels scheduling through one
// runner is what keeps the per-morsel observability identical no matter
// which engine evaluated a round.

#ifndef SKALLA_CORE_MORSELS_H_
#define SKALLA_CORE_MORSELS_H_

#include <cstddef>
#include <functional>

#include "common/thread_pool.h"
#include "core/eval_context.h"

namespace skalla {

/// Number of morsels covering `rows` rows at `morsel_rows` each (0 for an
/// empty range).
inline size_t MorselCount(size_t rows, size_t morsel_rows) {
  return rows == 0 ? 0 : (rows - 1) / morsel_rows + 1;
}

/// Dispatches fn(0), ..., fn(n - 1) over `pool` when given (inline
/// otherwise), wrapping each invocation in a site.eval.morsel span and
/// timing it into skalla.site.morsel_us and context.profile->morsel_us.
/// Worker threads re-establish the context's query-id scope and parent
/// their morsel spans under context.trace_parent_span, so off-thread
/// morsels stay attributable to the round that scheduled them.
void RunMorsels(ThreadPool* pool, size_t n, const EvalContext& context,
                const std::function<void(size_t)>& fn);

}  // namespace skalla

#endif  // SKALLA_CORE_MORSELS_H_
