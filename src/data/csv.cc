#include "data/csv.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/macros.h"
#include "common/string_util.h"

namespace skalla {

namespace {

// One raw field: its text plus whether it was quoted (a quoted "NULL"
// stays the string NULL; only bare tokens read as SQL NULL).
struct RawField {
  std::string text;
  bool quoted = false;
};

// Splits one CSV record honoring quotes; advances *pos past the record's
// trailing newline.
Result<std::vector<RawField>> ParseRecord(std::string_view text,
                                          size_t* pos, char delimiter,
                                          size_t line_number) {
  std::vector<RawField> fields;
  RawField current;
  bool in_quotes = false;
  size_t i = *pos;
  for (; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          current.text.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.text.push_back(c);
      }
      continue;
    }
    if (c == '"') {
      in_quotes = true;
      current.quoted = true;
    } else if (c == delimiter) {
      fields.push_back(std::move(current));
      current = RawField();
    } else if (c == '\n') {
      ++i;
      break;
    } else if (c == '\r') {
      // Swallow; \r\n handled by the \n branch next iteration.
    } else {
      current.text.push_back(c);
    }
  }
  if (in_quotes) {
    return Status::ParseError(
        StrCat("unterminated quoted field at line ", line_number));
  }
  fields.push_back(std::move(current));
  *pos = i;
  return fields;
}

bool IsNullField(const RawField& field, const CsvOptions& options) {
  return !field.quoted &&
         (field.text.empty() || field.text == options.null_token);
}

bool ParseInt(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno == ERANGE || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool NeedsQuoting(const std::string& s, char delimiter) {
  for (char c : s) {
    if (c == delimiter || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

}  // namespace

Result<Table> ReadCsv(std::string_view text, const CsvOptions& options) {
  size_t pos = 0;
  size_t line = 1;

  std::vector<std::string> names;
  std::vector<std::vector<RawField>> records;
  bool first = true;
  while (pos < text.size()) {
    SKALLA_ASSIGN_OR_RETURN(
        std::vector<RawField> fields,
        ParseRecord(text, &pos, options.delimiter, line));
    ++line;
    if (fields.size() == 1 && !fields[0].quoted && fields[0].text.empty()) {
      continue;  // Blank line.
    }
    if (first && options.header) {
      for (RawField& f : fields) names.push_back(std::move(f.text));
      first = false;
      continue;
    }
    first = false;
    records.push_back(std::move(fields));
  }
  size_t num_columns = options.header ? names.size()
                       : (records.empty() ? 0 : records[0].size());
  if (num_columns == 0) {
    return Status::InvalidArgument("CSV input has no columns");
  }
  if (!options.header) {
    for (size_t c = 0; c < num_columns; ++c) {
      names.push_back(StrCat("col", c));
    }
  }
  for (size_t r = 0; r < records.size(); ++r) {
    if (records[r].size() != num_columns) {
      return Status::ParseError(
          StrCat("record ", r + 1, " has ", records[r].size(),
                 " fields, expected ", num_columns));
    }
  }

  // Infer types column by column.
  std::vector<ValueType> types(num_columns, ValueType::kNull);
  for (size_t c = 0; c < num_columns; ++c) {
    bool all_int = true;
    bool all_num = true;
    bool any_value = false;
    for (const std::vector<RawField>& record : records) {
      const RawField& field = record[c];
      if (IsNullField(field, options)) continue;
      any_value = true;
      int64_t iv;
      double dv;
      if (!ParseInt(field.text, &iv)) all_int = false;
      if (!ParseDouble(field.text, &dv)) all_num = false;
      if (!all_num) break;
    }
    if (!any_value) {
      types[c] = ValueType::kString;  // All-null column: arbitrary.
    } else if (all_int) {
      types[c] = ValueType::kInt64;
    } else if (all_num) {
      types[c] = ValueType::kFloat64;
    } else {
      types[c] = ValueType::kString;
    }
  }

  std::vector<Field> schema_fields;
  for (size_t c = 0; c < num_columns; ++c) {
    schema_fields.push_back(Field{names[c], types[c]});
  }
  SKALLA_ASSIGN_OR_RETURN(SchemaPtr schema,
                          Schema::Make(std::move(schema_fields)));
  Table table(schema);
  table.Reserve(records.size());
  for (std::vector<RawField>& record : records) {
    Row row;
    row.reserve(num_columns);
    for (size_t c = 0; c < num_columns; ++c) {
      RawField& field = record[c];
      if (IsNullField(field, options)) {
        row.push_back(Value::Null());
        continue;
      }
      switch (types[c]) {
        case ValueType::kInt64: {
          int64_t v = 0;
          ParseInt(field.text, &v);
          row.push_back(Value(v));
          break;
        }
        case ValueType::kFloat64: {
          double v = 0;
          ParseDouble(field.text, &v);
          row.push_back(Value(v));
          break;
        }
        default:
          row.push_back(Value(std::move(field.text)));
          break;
      }
    }
    table.AppendUnchecked(std::move(row));
  }
  return table;
}

Result<Table> ReadCsvFile(const std::string& path,
                          const CsvOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError(StrCat("cannot open '", path, "' for reading"));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ReadCsv(buffer.str(), options);
}

std::string WriteCsv(const Table& table, const CsvOptions& options) {
  std::string out;
  const Schema& schema = *table.schema();
  if (options.header) {
    for (size_t c = 0; c < schema.num_fields(); ++c) {
      if (c > 0) out.push_back(options.delimiter);
      out += schema.field(c).name;
    }
    out.push_back('\n');
  }
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out.push_back(options.delimiter);
      const Value& v = table.at(r, c);
      switch (v.type()) {
        case ValueType::kNull:
          out += options.null_token;
          break;
        case ValueType::kInt64:
          out += StrCat(v.int64());
          break;
        case ValueType::kFloat64:
          out += StrPrintf("%.17g", v.float64());
          break;
        case ValueType::kString: {
          const std::string& s = v.str();
          if (NeedsQuoting(s, options.delimiter) ||
              s == options.null_token) {
            out.push_back('"');
            for (char ch : s) {
              if (ch == '"') out += "\"\"";
              else out.push_back(ch);
            }
            out.push_back('"');
          } else {
            out += s;
          }
          break;
        }
      }
    }
    out.push_back('\n');
  }
  return out;
}

Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvOptions& options) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::IOError(StrCat("cannot open '", path, "' for writing"));
  }
  out << WriteCsv(table, options);
  if (!out) return Status::IOError(StrCat("failed writing '", path, "'"));
  return Status::OK();
}

}  // namespace skalla
