// CSV import/export for Tables: the practical ingestion path for a
// downstream user loading their own collection-point data into a Skalla
// warehouse.

#ifndef SKALLA_DATA_CSV_H_
#define SKALLA_DATA_CSV_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "storage/table.h"

namespace skalla {

struct CsvOptions {
  char delimiter = ',';
  /// First row holds column names.
  bool header = true;
  /// Literal text (case-sensitive) read as NULL; empty fields are NULL
  /// too.
  std::string null_token = "NULL";
};

/// Parses CSV text into a table. Column types are inferred per column
/// from the data: INT64 if every non-null value parses as an integer,
/// FLOAT64 if every non-null value parses as a number, else STRING.
/// Quoted fields ("a,b" with "" escapes) are supported.
Result<Table> ReadCsv(std::string_view text, const CsvOptions& options = {});

/// Reads a CSV file from disk.
Result<Table> ReadCsvFile(const std::string& path,
                          const CsvOptions& options = {});

/// Renders a table as CSV (strings quoted when needed; NULLs as the
/// null token).
std::string WriteCsv(const Table& table, const CsvOptions& options = {});

/// Writes a table to a CSV file.
Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvOptions& options = {});

}  // namespace skalla

#endif  // SKALLA_DATA_CSV_H_
