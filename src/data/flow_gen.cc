#include "data/flow_gen.h"

#include <algorithm>

#include "common/random.h"

namespace skalla {

Table GenerateFlows(const FlowConfig& config) {
  SchemaPtr schema = Schema::Make({{"RouterId", ValueType::kInt64},
                                   {"SourceIP", ValueType::kInt64},
                                   {"SourcePort", ValueType::kInt64},
                                   {"SourceMask", ValueType::kInt64},
                                   {"SourceAS", ValueType::kInt64},
                                   {"DestIP", ValueType::kInt64},
                                   {"DestPort", ValueType::kInt64},
                                   {"DestMask", ValueType::kInt64},
                                   {"DestAS", ValueType::kInt64},
                                   {"StartTime", ValueType::kInt64},
                                   {"EndTime", ValueType::kInt64},
                                   {"NumPackets", ValueType::kInt64},
                                   {"NumBytes", ValueType::kInt64}})
                         .ValueOrDie();
  Random rng(config.seed);
  Table table(schema);
  table.Reserve(static_cast<size_t>(config.num_flows));

  for (int64_t i = 0; i < config.num_flows; ++i) {
    // Zipf-skewed AS popularity: a few ASes originate most traffic.
    int64_t source_as = static_cast<int64_t>(
        rng.Zipf(static_cast<uint64_t>(config.num_as), 0.8));
    int64_t dest_as =
        static_cast<int64_t>(rng.Zipf(static_cast<uint64_t>(config.num_as),
                                      0.6));
    int64_t router = config.as_router_affinity
                         ? RouterOfSourceAs(source_as, config.num_routers)
                         : rng.UniformInt(0, config.num_routers - 1);

    bool web = rng.Bernoulli(config.web_fraction);
    int64_t dest_port = web ? (rng.Bernoulli(0.7) ? 80 : 443)
                            : rng.UniformInt(1024, 65535);

    int64_t start = rng.UniformInt(0, config.num_hours * 3600 - 1);
    int64_t duration = std::max<int64_t>(
        1, static_cast<int64_t>(rng.Exponential(30.0)));

    // Heavy-tailed flow sizes: packets ~ Zipf over a wide range.
    int64_t packets =
        1 + static_cast<int64_t>(rng.Zipf(100000, 1.1));
    int64_t bytes =
        packets * rng.UniformInt(40, 1500);  // 40B ACKs to full MTU.

    table.AppendUnchecked(
        {Value(router),
         Value(rng.UniformInt(0, (int64_t{1} << 32) - 1)),
         Value(rng.UniformInt(1024, 65535)), Value(int64_t{24}),
         Value(source_as),
         Value(rng.UniformInt(0, (int64_t{1} << 32) - 1)),
         Value(dest_port), Value(int64_t{24}), Value(dest_as),
         Value(start), Value(start + duration), Value(packets),
         Value(bytes)});
  }
  return table;
}

}  // namespace skalla
