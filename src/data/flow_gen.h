// Deterministic IP-flow data generator for the paper's motivating
// application (Sect. 2.1): NetFlow-style records collected at routers,
// each router adjacent to a local warehouse (RouterId is the partition
// attribute).
//
// The paper could rely on AT&T's production NetFlow feeds; we synthesize
// the equivalent structure: heavy-tailed flow sizes, a configurable
// fraction of web traffic, and source-AS -> router affinity (all packets
// of a given SourceAS pass through one router, the premise of Example 2
// and Example 5).

#ifndef SKALLA_DATA_FLOW_GEN_H_
#define SKALLA_DATA_FLOW_GEN_H_

#include <cstdint>

#include "storage/table.h"

namespace skalla {

struct FlowConfig {
  uint64_t seed = 1;
  int64_t num_flows = 50000;
  int64_t num_routers = 8;
  int64_t num_as = 200;      // Autonomous systems.
  int64_t num_hours = 24;    // StartTime spans this many hours.
  double web_fraction = 0.6; // Flows with DestPort 80/443.

  /// When true, SourceAS determines RouterId (AS -> router affinity): the
  /// condition under which SourceAS is itself a partition attribute.
  bool as_router_affinity = true;
};

/// Schema (per the paper's Flow relation, ports/masks/IPs as integers):
///   (RouterId, SourceIP, SourcePort, SourceMask, SourceAS,
///    DestIP, DestPort, DestMask, DestAS,
///    StartTime, EndTime, NumPackets, NumBytes)
Table GenerateFlows(const FlowConfig& config);

/// The router a source AS is homed at under as_router_affinity.
inline int64_t RouterOfSourceAs(int64_t source_as, int64_t num_routers) {
  return source_as % num_routers;
}

}  // namespace skalla

#endif  // SKALLA_DATA_FLOW_GEN_H_
