#include "data/table_io.h"

#include <cstring>
#include <fstream>
#include <sstream>

#include "common/macros.h"
#include "common/string_util.h"
#include "net/serde.h"

namespace skalla {

namespace {

constexpr char kMagic[8] = {'S', 'K', 'A', 'L', 'L', 'A', 'T', '1'};

std::string PartitionPath(const std::string& directory,
                          const std::string& name, size_t index) {
  return StrCat(directory, "/", name, ".part", index, ".skt");
}

}  // namespace

Status WriteTableFile(const Table& table, const std::string& path) {
  std::vector<uint8_t> payload;
  WriteTable(table, &payload);
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::IOError(StrCat("cannot open '", path, "' for writing"));
  }
  out.write(kMagic, sizeof(kMagic));
  out.write(reinterpret_cast<const char*>(payload.data()),
            static_cast<std::streamsize>(payload.size()));
  if (!out) return Status::IOError(StrCat("failed writing '", path, "'"));
  return Status::OK();
}

Result<Table> ReadTableFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError(StrCat("cannot open '", path, "' for reading"));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string data = buffer.str();
  if (data.size() < sizeof(kMagic) ||
      std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::IOError(
        StrCat("'", path, "' is not a Skalla table file"));
  }
  return ReadTable(
      reinterpret_cast<const uint8_t*>(data.data()) + sizeof(kMagic),
      data.size() - sizeof(kMagic));
}

Status SavePartitions(const std::vector<Table>& partitions,
                      const std::string& directory,
                      const std::string& name) {
  for (size_t i = 0; i < partitions.size(); ++i) {
    SKALLA_RETURN_NOT_OK(
        WriteTableFile(partitions[i], PartitionPath(directory, name, i)));
  }
  return Status::OK();
}

Result<std::vector<Table>> LoadPartitions(const std::string& directory,
                                          const std::string& name) {
  std::vector<Table> partitions;
  for (size_t i = 0;; ++i) {
    std::string path = PartitionPath(directory, name, i);
    std::ifstream probe(path, std::ios::binary);
    if (!probe) break;
    probe.close();
    SKALLA_ASSIGN_OR_RETURN(Table table, ReadTableFile(path));
    partitions.push_back(std::move(table));
  }
  if (partitions.empty()) {
    return Status::NotFound(
        StrCat("no partitions for '", name, "' under ", directory));
  }
  return partitions;
}

Result<Table> LoadPartition(const std::string& directory,
                            const std::string& name, size_t index) {
  return ReadTableFile(PartitionPath(directory, name, index));
}

}  // namespace skalla
