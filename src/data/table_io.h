// Binary table files: persist Tables (and whole partitioned warehouses)
// using the same wire format the network layer ships, so a saved file is
// bit-identical to a transferred fragment.

#ifndef SKALLA_DATA_TABLE_IO_H_
#define SKALLA_DATA_TABLE_IO_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "storage/table.h"

namespace skalla {

/// File layout: 8-byte magic "SKALLAT1", then the serde table payload.
Status WriteTableFile(const Table& table, const std::string& path);

Result<Table> ReadTableFile(const std::string& path);

/// Saves one file per partition: <dir>/<name>.partN.skt. The directory
/// must exist.
Status SavePartitions(const std::vector<Table>& partitions,
                      const std::string& directory,
                      const std::string& name);

/// Loads <dir>/<name>.part0.skt .. consecutively until a file is missing.
Result<std::vector<Table>> LoadPartitions(const std::string& directory,
                                          const std::string& name);

/// Loads the single partition <dir>/<name>.part<index>.skt — what a site
/// process loads at startup, without touching its peers' partitions.
Result<Table> LoadPartition(const std::string& directory,
                            const std::string& name, size_t index);

}  // namespace skalla

#endif  // SKALLA_DATA_TABLE_IO_H_
