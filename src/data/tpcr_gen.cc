#include "data/tpcr_gen.h"

#include <algorithm>

#include "common/string_util.h"

namespace skalla {

namespace {

const char* kMktSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                              "HOUSEHOLD", "MACHINERY"};
const char* kOrderPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                                  "4-NOT SPECIFIED", "5-LOW"};

SchemaPtr TpcrSchema() {
  return Schema::Make({{"CustKey", ValueType::kInt64},
                       {"CustName", ValueType::kString},
                       {"NationKey", ValueType::kInt64},
                       {"RegionKey", ValueType::kInt64},
                       {"MktSegment", ValueType::kString},
                       {"OrderKey", ValueType::kInt64},
                       {"OrderDate", ValueType::kInt64},
                       {"OrderPriority", ValueType::kString},
                       {"Clerk", ValueType::kString},
                       {"PartKey", ValueType::kInt64},
                       {"Quantity", ValueType::kInt64},
                       {"ExtendedPrice", ValueType::kFloat64},
                       {"Discount", ValueType::kFloat64},
                       {"ShipDate", ValueType::kInt64}})
      .ValueOrDie();
}

}  // namespace

TpcrStream::TpcrStream(const TpcrConfig& config)
    : config_(config),
      schema_(TpcrSchema()),
      rng_(config.seed),
      rows_remaining_(config.num_rows) {}

Table TpcrStream::NextBatch(size_t max_rows) {
  Table table(schema_);
  const int64_t n =
      std::min<int64_t>(rows_remaining_, static_cast<int64_t>(max_rows));
  table.Reserve(static_cast<size_t>(n));

  for (int64_t i = 0; i < n; ++i) {
    if (lines_left_in_order_ == 0) {
      // Start a new order: 1-4 line rows.
      ++order_key_;
      lines_left_in_order_ = rng_.UniformInt(1, 4);
      cust_key_ = rng_.UniformInt(1, config_.num_customers);
      order_date_ = rng_.UniformInt(0, 2557);  // ~7 years of days.
      clerk_ = StrPrintf("Clerk#%05lld",
                         static_cast<long long>(
                             rng_.UniformInt(1, config_.num_clerks)));
      priority_ = kOrderPriorities[rng_.Uniform(5)];
    }
    --lines_left_in_order_;

    int64_t nation = NationOfCustomer(cust_key_, config_.num_nations);
    int64_t region = nation % 5;
    int64_t quantity = rng_.UniformInt(1, 50);
    double price = static_cast<double>(quantity) *
                   (900.0 + static_cast<double>(rng_.UniformInt(0, 100100)) /
                                100.0);
    double discount =
        static_cast<double>(rng_.UniformInt(0, 10)) / 100.0;
    int64_t ship_date = order_date_ + rng_.UniformInt(1, 121);

    table.AppendUnchecked(
        {Value(cust_key_),
         Value(StrPrintf("Customer#%09lld",
                         static_cast<long long>(cust_key_))),
         Value(nation), Value(region),
         Value(std::string(
             kMktSegments[static_cast<size_t>(cust_key_) % 5])),
         Value(order_key_), Value(order_date_), Value(priority_),
         Value(clerk_), Value(rng_.UniformInt(1, 20000)), Value(quantity),
         Value(price), Value(discount), Value(ship_date)});
  }
  rows_remaining_ -= n;
  return table;
}

Table GenerateTpcr(const TpcrConfig& config) {
  TpcrStream stream(config);
  return stream.NextBatch(static_cast<size_t>(
      std::max<int64_t>(0, config.num_rows)));
}

}  // namespace skalla
