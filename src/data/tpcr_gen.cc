#include "data/tpcr_gen.h"

#include "common/random.h"
#include "common/string_util.h"

namespace skalla {

namespace {

const char* kMktSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                              "HOUSEHOLD", "MACHINERY"};
const char* kOrderPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                                  "4-NOT SPECIFIED", "5-LOW"};

}  // namespace

Table GenerateTpcr(const TpcrConfig& config) {
  SchemaPtr schema =
      Schema::Make({{"CustKey", ValueType::kInt64},
                    {"CustName", ValueType::kString},
                    {"NationKey", ValueType::kInt64},
                    {"RegionKey", ValueType::kInt64},
                    {"MktSegment", ValueType::kString},
                    {"OrderKey", ValueType::kInt64},
                    {"OrderDate", ValueType::kInt64},
                    {"OrderPriority", ValueType::kString},
                    {"Clerk", ValueType::kString},
                    {"PartKey", ValueType::kInt64},
                    {"Quantity", ValueType::kInt64},
                    {"ExtendedPrice", ValueType::kFloat64},
                    {"Discount", ValueType::kFloat64},
                    {"ShipDate", ValueType::kInt64}})
          .ValueOrDie();
  Random rng(config.seed);
  Table table(schema);
  table.Reserve(static_cast<size_t>(config.num_rows));

  int64_t order_key = 0;
  int64_t lines_left_in_order = 0;
  int64_t cust_key = 1;
  int64_t order_date = 0;
  std::string clerk;
  std::string priority;

  for (int64_t i = 0; i < config.num_rows; ++i) {
    if (lines_left_in_order == 0) {
      // Start a new order: 1-4 line rows.
      ++order_key;
      lines_left_in_order = rng.UniformInt(1, 4);
      cust_key = rng.UniformInt(1, config.num_customers);
      order_date = rng.UniformInt(0, 2557);  // ~7 years of days.
      clerk = StrPrintf("Clerk#%05lld",
                        static_cast<long long>(
                            rng.UniformInt(1, config.num_clerks)));
      priority = kOrderPriorities[rng.Uniform(5)];
    }
    --lines_left_in_order;

    int64_t nation = NationOfCustomer(cust_key, config.num_nations);
    int64_t region = nation % 5;
    int64_t quantity = rng.UniformInt(1, 50);
    double price = static_cast<double>(quantity) *
                   (900.0 + static_cast<double>(rng.UniformInt(0, 100100)) /
                                100.0);
    double discount =
        static_cast<double>(rng.UniformInt(0, 10)) / 100.0;
    int64_t ship_date = order_date + rng.UniformInt(1, 121);

    table.AppendUnchecked(
        {Value(cust_key),
         Value(StrPrintf("Customer#%09lld",
                         static_cast<long long>(cust_key))),
         Value(nation), Value(region),
         Value(std::string(
             kMktSegments[static_cast<size_t>(cust_key) % 5])),
         Value(order_key), Value(order_date), Value(priority), Value(clerk),
         Value(rng.UniformInt(1, 20000)), Value(quantity), Value(price),
         Value(discount), Value(ship_date)});
  }
  return table;
}

}  // namespace skalla
