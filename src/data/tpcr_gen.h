// Deterministic TPC-R-style data generator.
//
// The paper derives its test database from the TPC(R) dbgen program as a
// single denormalized relation (lineitem joined through orders, customer,
// nation), 6M tuples / 900 MB, partitioned on NationKey — and therefore
// also on CustKey, since each customer belongs to one nation. We generate
// the same *structure* at configurable scale:
//
//  - NationKey / CustKey / CustName: partition-correlated attributes
//    (each value occurs at exactly one site after partitioning by nation);
//    CustName plays the paper's high-cardinality grouping role
//    (100,000 unique values at full scale).
//  - Clerk / OrderPriority / MktSegment: low-cardinality attributes spread
//    across all sites (the paper's 2000-4000-value groupings).
//  - Quantity / ExtendedPrice / Discount: measures.

#ifndef SKALLA_DATA_TPCR_GEN_H_
#define SKALLA_DATA_TPCR_GEN_H_

#include <cstdint>
#include <string>

#include "common/random.h"
#include "storage/table.h"

namespace skalla {

struct TpcrConfig {
  uint64_t seed = 42;

  /// Distinct customers (CustKey in [1, num_customers]); CustName is
  /// unique per customer. The paper uses 100,000.
  int64_t num_customers = 10000;

  /// Distinct nations; TPC uses 25.
  int64_t num_nations = 25;

  /// Distinct clerks: the low-cardinality grouping attribute (paper:
  /// 2000-4000 unique values), uniform across nations.
  int64_t num_clerks = 3000;

  /// Total denormalized line rows to generate.
  int64_t num_rows = 60000;
};

/// Schema:
///   (CustKey, CustName, NationKey, RegionKey, MktSegment, OrderKey,
///    OrderDate, OrderPriority, Clerk, PartKey, Quantity, ExtendedPrice,
///    Discount, ShipDate)
Table GenerateTpcr(const TpcrConfig& config);

/// Streams exactly the rows GenerateTpcr(config) produces, in order, in
/// caller-sized batches — the paper-scale generator path, where the 6M-
/// tuple relation is never resident at once (skalla-dataset routes each
/// batch straight into per-site chunk files). GenerateTpcr itself is one
/// full-size batch of this stream, so identity holds by construction.
class TpcrStream {
 public:
  explicit TpcrStream(const TpcrConfig& config);

  const SchemaPtr& schema() const { return schema_; }
  int64_t rows_remaining() const { return rows_remaining_; }

  /// The next at-most-`max_rows` rows; an empty table once exhausted.
  Table NextBatch(size_t max_rows);

 private:
  TpcrConfig config_;
  SchemaPtr schema_;
  Random rng_;
  int64_t rows_remaining_;
  // Order state carried across batches (orders span batch boundaries).
  int64_t order_key_ = 0;
  int64_t lines_left_in_order_ = 0;
  int64_t cust_key_ = 1;
  int64_t order_date_ = 0;
  std::string clerk_;
  std::string priority_;
};

/// The nation a customer belongs to (used by tests to reason about
/// partition correlation).
inline int64_t NationOfCustomer(int64_t cust_key, int64_t num_nations) {
  return cust_key % num_nations;
}

}  // namespace skalla

#endif  // SKALLA_DATA_TPCR_GEN_H_
