#include "dist/async_exec.h"

#include <algorithm>
#include <mutex>

#include "common/macros.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "dist/coordinator.h"
#include "net/channel.h"
#include "net/serde.h"
#include "obs/obs.h"
#include "rpc/frame.h"

namespace skalla {

namespace {

// Fragments travel through the in-process channel inside the same
// versioned wire frame the TCP transport uses (rpc/frame.h): a success is
// a kTableResult frame around the serde table bytes, a failure a kError
// frame (the status itself is reported out of band through first_error).
std::vector<uint8_t> FrameTable(const Table& table) {
  std::vector<uint8_t> payload;
  WriteTable(table, &payload);
  return rpc::EncodeFrame(rpc::MessageType::kTableResult, payload);
}

std::vector<uint8_t> FrameError() {
  return rpc::EncodeFrame(rpc::MessageType::kError, {});
}

// Teardown guard for one round's fragment channel: on every exit path —
// including early error returns while site tasks are still running —
// closes the channel (late fragments are dropped, a blocked Receive
// wakes) and waits for the tasks, so no task can touch a destroyed
// channel.
class ChannelDrain {
 public:
  ChannelDrain(MessageChannel* channel, ThreadPool* pool)
      : channel_(channel), pool_(pool) {}
  ~ChannelDrain() {
    channel_->Close();
    pool_->Wait();
  }

 private:
  MessageChannel* channel_;
  ThreadPool* pool_;
};

}  // namespace

AsyncExecutor::AsyncExecutor(std::vector<Site> sites,
                             NetworkConfig net_config,
                             ExecutorOptions options)
    : sites_(std::move(sites)),
      network_(net_config),
      options_(options) {}

void AsyncExecutor::AddReplica(size_t partition, Site replica) {
  replicas_[partition].push_back(std::move(replica));
}

std::vector<int> AsyncExecutor::ReplicaIds(size_t i) const {
  std::vector<int> ids{sites_[i].id()};
  auto it = replicas_.find(i);
  if (it != replicas_.end()) {
    for (const Site& replica : it->second) ids.push_back(replica.id());
  }
  return ids;
}

Site& AsyncExecutor::ReplicaSite(size_t i, size_t r) {
  return r == 0 ? sites_[i] : replicas_.at(i)[r - 1];
}

Result<Table> AsyncExecutor::Execute(const DistributedPlan& plan,
                                     const QueryRun& run, ExecStats* stats) {
  if (sites_.empty()) {
    return Status::InvalidArgument("executor has no sites");
  }
  if (!plan.stages.empty() && !plan.stages.back().sync_after) {
    return Status::InvalidArgument(
        "the final plan stage must synchronize at the coordinator");
  }
  if (plan.stages.empty() && !plan.sync_base) {
    return Status::InvalidArgument(
        "a plan without GMDJ stages must synchronize its base query");
  }
  for (const PlanStage& stage : plan.stages) {
    if (!stage.site_base_filters.empty() &&
        stage.site_base_filters.size() != sites_.size()) {
      return Status::InvalidArgument("site filter count mismatch");
    }
  }
  for (const auto& [partition, replicas] : replicas_) {
    if (partition >= sites_.size()) {
      return Status::InvalidArgument(
          StrCat("replica registered for partition ", partition, " but only ",
                 sites_.size(), " partitions exist"));
    }
    (void)replicas;
  }
  if (options_.columnar_sites) {
    for (Site& site : sites_) {
      if (!site.columnar_enabled()) {
        SKALLA_RETURN_NOT_OK(site.EnableColumnarCache());
      }
    }
    for (auto& [partition, replicas] : replicas_) {
      (void)partition;
      for (Site& replica : replicas) {
        if (!replica.columnar_enabled()) {
          SKALLA_RETURN_NOT_OK(replica.EnableColumnarCache());
        }
      }
    }
  }

  const size_t n = sites_.size();
  ExecStats local_stats;
  ExecStats& st = stats == nullptr ? local_stats : *stats;
  st.rounds.clear();

  const uint64_t query_id = ResolveQueryId(run);
  obs::QueryIdScope query_scope(query_id);
  st.query_id = query_id;

  SKALLA_TRACE_SPAN(exec_span, "exec.plan", "executor");
  SKALLA_SPAN_ATTR(exec_span, "sites", static_cast<uint64_t>(n));
  SKALLA_SPAN_ATTR(exec_span, "stages",
                   static_cast<uint64_t>(plan.stages.size()));
  SKALLA_SPAN_ATTR(exec_span, "mode", "async");
  SKALLA_COUNTER_ADD("skalla.exec.plans", 1);

  ThreadPool pool(options_.num_threads == 0 ? n : options_.num_threads);
  // The coordinator owns a separate merge pool when sharded, so shard
  // merges never contend with the site tasks for workers — an arriving
  // fragment merges shard-parallel while slower sites keep computing.
  Coordinator coordinator(plan.key_columns,
                          ResolveCoordinatorShards(
                              options_.coordinator_shards));
  std::vector<Table> local_base(n);
  bool have_global = false;
  const QueryDeadline deadline(options_, run);
  // Partitions lost with every replica exhausted; set only under
  // OnSiteLoss::kDegrade (see dist/exec.cc for the semantics).
  std::vector<uint8_t> lost(n, 0);
  st.lost_sites.clear();

  std::mutex err_mu;
  Status first_error;
  auto record_error = [&](const Status& s) {
    std::lock_guard<std::mutex> lock(err_mu);
    if (first_error.ok()) first_error = s;
  };
  std::mutex time_mu;

  SKALLA_ASSIGN_OR_RETURN(const DataProvider* probe,
                          sites_[0].catalog().GetProvider(plan.base.table));
  SKALLA_ASSIGN_OR_RETURN(SchemaPtr upstream,
                          plan.base.OutputSchema(*probe->schema()));

  // ---- Base round ---------------------------------------------------------
  {
    RoundStats rs;
    rs.label = "base";
    rs.synchronized = plan.sync_base;
    SKALLA_TRACE_SPAN(round_span, "round:base", "executor");
    SKALLA_SPAN_ATTR(round_span, "sync",
                     plan.sync_base ? "true" : "false");
    Stopwatch wall;
    CancellationToken round_cancel;
    SKALLA_RETURN_NOT_OK(deadline.ArmRound(rs.label, &round_cancel));
    std::vector<SiteRoundProfile> profiles(n);
    MessageChannel channel;
    ChannelDrain drain(&channel, &pool);
    for (size_t i = 0; i < n; ++i) {
      pool.Submit([&, i] {
        obs::QueryIdScope site_scope(query_id);
        SKALLA_TRACE_SPAN(site_span, "site.eval", "site");
        SKALLA_SPAN_ATTR(site_span, "site",
                         static_cast<int64_t>(sites_[i].id()));
        SKALLA_SPAN_ATTR(site_span, "round", "base");
        Stopwatch timer;
        SiteRoundCounts counts;
        Result<Table> b_i = ExecuteSiteRoundReplicated(
            options_, ReplicaIds(i), "base",
            [&](size_t r) {
              return ReplicaSite(i, r).ExecuteBaseQuery(plan.base);
            },
            &counts, &round_cancel);
        double elapsed = timer.ElapsedSeconds();
        SKALLA_HISTOGRAM_RECORD("skalla.site.eval_us", elapsed * 1e6);
        {
          std::lock_guard<std::mutex> lock(time_mu);
          rs.site_time_max = std::max(rs.site_time_max, elapsed);
          rs.site_time_sum += elapsed;
          rs.site_retries += counts.retries;
          rs.site_failovers += counts.failovers;
          profiles[i].site_id = sites_[i].id();
          profiles[i].wall_us = static_cast<uint64_t>(elapsed * 1e6);
          profiles[i].eval_us = profiles[i].wall_us;
          if (b_i.ok()) profiles[i].result_rows = b_i->num_rows();
        }
        if (!b_i.ok()) {
          if (options_.on_site_loss == OnSiteLoss::kDegrade &&
              !b_i.status().IsDeadlineExceeded()) {
            std::lock_guard<std::mutex> lock(time_mu);
            lost[i] = 1;
            st.lost_sites.push_back(sites_[i].id());
          } else {
            record_error(b_i.status());
          }
          if (plan.sync_base) channel.Send(static_cast<int>(i), FrameError());
          return;
        }
        if (plan.sync_base) {
          channel.Send(static_cast<int>(i), FrameTable(*b_i));
        } else {
          local_base[i] = std::move(*b_i);
        }
      });
    }
    if (plan.sync_base) {
      SKALLA_RETURN_NOT_OK(coordinator.InitBase(upstream));
      for (size_t received = 0; received < n; ++received) {
        std::optional<ChannelMessage> message = channel.Receive();
        if (!message.has_value()) {
          return Status::Internal(
              "fragment channel closed before all base fragments arrived");
        }
        SKALLA_ASSIGN_OR_RETURN(rpc::Frame frame,
                                rpc::DecodeFrame(message->bytes));
        if (frame.type != rpc::MessageType::kTableResult) continue;
        uint64_t table_bytes = frame.payload.size();
        rs.bytes_to_coord += table_bytes;
        if (message->from >= 0 && static_cast<size_t>(message->from) < n) {
          profiles[message->from].bytes_out += table_bytes;
        }
        rs.comm_time += network_.Transfer(message->from, kCoordinatorId,
                                          table_bytes);
        SKALLA_ASSIGN_OR_RETURN(
            Table fragment, ReadTable(frame.payload.data(), table_bytes));
        rs.tuples_to_coord += fragment.num_rows();
        Stopwatch merge_timer;
        SKALLA_RETURN_NOT_OK(coordinator.MergeBaseFragment(fragment));
        rs.coord_time += merge_timer.ElapsedSeconds();
      }
      {
        Stopwatch finalize_timer;
        SKALLA_RETURN_NOT_OK(coordinator.FinalizeBase());
        rs.coord_time += finalize_timer.ElapsedSeconds();
      }
      have_global = true;
    }
    pool.Wait();
    SKALLA_RETURN_NOT_OK(first_error);
    for (size_t i = 0; i < n; ++i) rs.sites_lost += lost[i];
    for (size_t i = 0; i < n; ++i) {
      if (!lost[i]) rs.site_profiles.push_back(profiles[i]);
    }
    rs.wall_time = wall.ElapsedSeconds();
    SKALLA_COUNTER_ADD("skalla.round.bytes_to_coord", rs.bytes_to_coord);
    SKALLA_COUNTER_ADD("skalla.round.tuples_to_coord", rs.tuples_to_coord);
    st.rounds.push_back(std::move(rs));
  }

  // ---- GMDJ stages ---------------------------------------------------------
  for (size_t k = 0; k < plan.stages.size(); ++k) {
    const PlanStage& stage = plan.stages[k];
    RoundStats rs;
    rs.label = StrCat("md", k + 1);
    rs.synchronized = stage.sync_after;
    SKALLA_TRACE_SPAN(round_span, StrCat("round:", rs.label), "executor");
    SKALLA_SPAN_ATTR(round_span, "sync",
                     stage.sync_after ? "true" : "false");
    Stopwatch wall;

    SKALLA_ASSIGN_OR_RETURN(const DataProvider* detail_probe,
                            sites_[0].catalog().GetProvider(stage.op.detail_table));
    const Schema& detail_schema = *detail_probe->schema();

    // Distribution: serialize per site at the coordinator; sites
    // deserialize inside their own tasks (in parallel).
    std::vector<SiteRoundProfile> profiles(n);
    std::vector<std::vector<uint8_t>> downstream(n);
    std::vector<uint8_t> active(n, 1);
    if (have_global) {
      const Table& x = coordinator.result();
      for (size_t i = 0; i < n; ++i) {
        if (lost[i]) continue;
        const ExprPtr& filter = stage.site_base_filters.empty()
                                    ? nullptr
                                    : stage.site_base_filters[i];
        Table to_send;
        {
          Stopwatch coord_timer;
          if (filter != nullptr) {
            SKALLA_ASSIGN_OR_RETURN(to_send, FilterBaseRows(x, filter));
          } else {
            to_send = x;
          }
          rs.coord_time += coord_timer.ElapsedSeconds();
        }
        if (filter != nullptr && to_send.empty() && stage.sync_after) {
          active[i] = 0;
          ++rs.sites_skipped;
          continue;
        }
        // Byte accounting counts the table payload only; the constant
        // frame header is transport overhead, not shipped data.
        std::vector<uint8_t> payload;
        WriteTable(to_send, &payload);
        rs.bytes_to_sites += payload.size();
        profiles[i].bytes_in += payload.size();
        rs.tuples_to_sites += to_send.num_rows();
        rs.comm_time += network_.Transfer(kCoordinatorId, sites_[i].id(),
                                          payload.size());
        downstream[i] =
            rpc::EncodeFrame(rpc::MessageType::kTableResult, payload);
      }
    }

    CancellationToken round_cancel;
    SKALLA_RETURN_NOT_OK(deadline.ArmRound(rs.label, &round_cancel));
    EvalContext eval_context = StageEvalContext(options_, run, stage);
    eval_context.cancellation = &round_cancel;
    eval_context.query_id = query_id;

    MessageChannel channel;
    ChannelDrain drain(&channel, &pool);
    const bool distribute = have_global;
    // Captured at submission time: tasks may mark sites lost while this
    // round runs, but each submitted task still sends exactly one frame.
    size_t submitted = 0;
    for (size_t i = 0; i < n; ++i) {
      if (!active[i] || lost[i]) continue;
      ++submitted;
      pool.Submit([&, i, distribute] {
        obs::QueryIdScope site_scope(query_id);
        SKALLA_TRACE_SPAN(site_span, "site.eval", "site");
        SKALLA_SPAN_ATTR(site_span, "site",
                         static_cast<int64_t>(sites_[i].id()));
        SKALLA_SPAN_ATTR(site_span, "round", rs.label);
        Stopwatch timer;
        Status status = Status::OK();
        Table base_in;
        if (distribute) {
          Result<rpc::Frame> frame = rpc::DecodeFrame(downstream[i]);
          Result<Table> decoded =
              frame.ok()
                  ? ReadTable(frame->payload.data(), frame->payload.size())
                  : Result<Table>(frame.status());
          if (!decoded.ok()) {
            status = decoded.status();
          } else {
            base_in = std::move(*decoded);
          }
        } else {
          base_in = std::move(local_base[i]);
        }
        Result<Table> result = Status::Internal("unset");
        SiteRoundCounts counts;
        EvalProfile eval_profile;
        if (status.ok()) {
          EvalContext site_context = eval_context;
          site_context.profile = &eval_profile;
          SKALLA_OBS_ONLY(site_context.trace_parent_span = site_span.id());
          result = ExecuteSiteRoundReplicated(
              options_, ReplicaIds(i), rs.label,
              [&](size_t r) {
                return ReplicaSite(i, r).EvalGmdjRound(base_in, stage.op,
                                                       site_context);
              },
              &counts, &round_cancel);
          if (result.ok() && eval_context.compute_rng) {
            result = ApplyRngFilter(*result);
          }
          if (!result.ok()) status = result.status();
        }
        double elapsed = timer.ElapsedSeconds();
        SKALLA_HISTOGRAM_RECORD("skalla.site.eval_us", elapsed * 1e6);
        {
          std::lock_guard<std::mutex> lock(time_mu);
          rs.site_time_max = std::max(rs.site_time_max, elapsed);
          rs.site_time_sum += elapsed;
          rs.site_retries += counts.retries;
          rs.site_failovers += counts.failovers;
          profiles[i].site_id = sites_[i].id();
          profiles[i].wall_us = static_cast<uint64_t>(elapsed * 1e6);
          profiles[i].eval_us = profiles[i].wall_us;
          profiles[i].morsel_us =
              eval_profile.morsel_us.load(std::memory_order_relaxed);
          profiles[i].rows_scanned =
              eval_profile.rows_scanned.load(std::memory_order_relaxed);
          profiles[i].rows_matched =
              eval_profile.rows_matched.load(std::memory_order_relaxed);
          profiles[i].index_hits =
              eval_profile.index_hits.load(std::memory_order_relaxed);
          profiles[i].engines_used =
              eval_profile.engines_used.load(std::memory_order_relaxed);
          if (result.ok()) profiles[i].result_rows = result->num_rows();
        }
        if (!status.ok()) {
          if (options_.on_site_loss == OnSiteLoss::kDegrade &&
              !status.IsDeadlineExceeded()) {
            std::lock_guard<std::mutex> lock(time_mu);
            lost[i] = 1;
            st.lost_sites.push_back(sites_[i].id());
            local_base[i] = Table();
          } else {
            record_error(status);
          }
          if (stage.sync_after) {
            channel.Send(static_cast<int>(i), FrameError());
          }
          return;
        }
        if (stage.sync_after) {
          channel.Send(static_cast<int>(i), FrameTable(*result));
        } else {
          local_base[i] = std::move(*result);
        }
      });
    }

    if (stage.sync_after) {
      // Incremental synchronization: merge fragments in completion order
      // while slower sites are still working.
      {
        Stopwatch begin_timer;
        SKALLA_RETURN_NOT_OK(
            coordinator.BeginRound(stage.op, *upstream, detail_schema,
                                   /*from_scratch=*/!have_global));
        rs.coord_time += begin_timer.ElapsedSeconds();
      }
      const size_t expected = submitted;
      for (size_t received = 0; received < expected; ++received) {
        std::optional<ChannelMessage> message = channel.Receive();
        if (!message.has_value()) {
          return Status::Internal(
              "fragment channel closed before all round fragments arrived");
        }
        SKALLA_ASSIGN_OR_RETURN(rpc::Frame frame,
                                rpc::DecodeFrame(message->bytes));
        if (frame.type != rpc::MessageType::kTableResult) continue;
        uint64_t table_bytes = frame.payload.size();
        rs.bytes_to_coord += table_bytes;
        if (message->from >= 0 && static_cast<size_t>(message->from) < n) {
          profiles[message->from].bytes_out += table_bytes;
        }
        rs.comm_time += network_.Transfer(message->from, kCoordinatorId,
                                          table_bytes);
        SKALLA_ASSIGN_OR_RETURN(
            Table fragment, ReadTable(frame.payload.data(), table_bytes));
        rs.tuples_to_coord += fragment.num_rows();
        Stopwatch merge_timer;
        SKALLA_RETURN_NOT_OK(coordinator.MergeFragment(fragment));
        rs.coord_time += merge_timer.ElapsedSeconds();
      }
      pool.Wait();
      SKALLA_RETURN_NOT_OK(first_error);
      Stopwatch finalize_timer;
      SKALLA_RETURN_NOT_OK(coordinator.FinalizeRound());
      rs.coord_time += finalize_timer.ElapsedSeconds();
      have_global = true;
      for (size_t i = 0; i < n; ++i) local_base[i] = Table();
    } else {
      pool.Wait();
      SKALLA_RETURN_NOT_OK(first_error);
      have_global = false;
    }

    SKALLA_ASSIGN_OR_RETURN(upstream,
                            stage.op.OutputSchema(*upstream, detail_schema));
    for (size_t i = 0; i < n; ++i) rs.sites_lost += lost[i];
    for (size_t i = 0; i < n; ++i) {
      if (active[i] && !lost[i]) {
        st.engines_used |= profiles[i].engines_used;
        rs.site_profiles.push_back(profiles[i]);
      }
    }
    rs.wall_time = wall.ElapsedSeconds();
    SKALLA_COUNTER_ADD("skalla.round.bytes_to_sites", rs.bytes_to_sites);
    SKALLA_COUNTER_ADD("skalla.round.bytes_to_coord", rs.bytes_to_coord);
    SKALLA_COUNTER_ADD("skalla.round.tuples_to_sites", rs.tuples_to_sites);
    SKALLA_COUNTER_ADD("skalla.round.tuples_to_coord", rs.tuples_to_coord);
    st.rounds.push_back(std::move(rs));
  }

  if (!have_global) {
    return Status::Internal("plan finished without a global result");
  }
  std::sort(st.lost_sites.begin(), st.lost_sites.end());
  return coordinator.result();
}

}  // namespace skalla
