#include "dist/async_exec.h"

#include <algorithm>
#include <mutex>

#include "common/macros.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "dist/coordinator.h"
#include "net/channel.h"
#include "net/serde.h"
#include "obs/obs.h"

namespace skalla {

namespace {

// Message framing: payload[0] = 1 for success followed by the table
// bytes, 0 for failure (the status is reported out of band).
std::vector<uint8_t> FrameTable(const Table& table) {
  std::vector<uint8_t> payload;
  payload.push_back(1);
  WriteTable(table, &payload);
  return payload;
}

std::vector<uint8_t> FrameError() { return {0}; }

// Applies the __rng > 0 filter and drops the indicator column.
Result<Table> ApplyRngFilter(const Table& h) {
  int rng_idx = h.schema()->IndexOf(kRngCountColumn);
  if (rng_idx < 0) {
    return Status::Internal("partial result lacks __rng column");
  }
  std::vector<size_t> keep;
  for (size_t c = 0; c < h.num_columns(); ++c) {
    if (c != static_cast<size_t>(rng_idx)) keep.push_back(c);
  }
  Table out(h.schema()->Project(keep));
  for (size_t r = 0; r < h.num_rows(); ++r) {
    const Value& flag = h.at(r, static_cast<size_t>(rng_idx));
    if (!flag.is_null() && flag.AsDouble() > 0) {
      out.AppendUnchecked(ProjectRow(h.row(r), keep));
    }
  }
  return out;
}

Result<Table> FilterBase(const Table& table, const ExprPtr& predicate) {
  SKALLA_ASSIGN_OR_RETURN(ExprPtr bound,
                          predicate->Bind(table.schema().get(), nullptr));
  Table out(table.schema());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    if (bound->EvalBool(&table.row(r), nullptr)) {
      out.AppendUnchecked(table.row(r));
    }
  }
  return out;
}

}  // namespace

AsyncExecutor::AsyncExecutor(std::vector<Site> sites,
                             NetworkConfig net_config,
                             ExecutorOptions options)
    : sites_(std::move(sites)),
      network_(net_config),
      options_(options) {}

Result<Table> AsyncExecutor::Execute(const DistributedPlan& plan,
                                     ExecStats* stats) {
  if (sites_.empty()) {
    return Status::InvalidArgument("executor has no sites");
  }
  if (!plan.stages.empty() && !plan.stages.back().sync_after) {
    return Status::InvalidArgument(
        "the final plan stage must synchronize at the coordinator");
  }
  if (plan.stages.empty() && !plan.sync_base) {
    return Status::InvalidArgument(
        "a plan without GMDJ stages must synchronize its base query");
  }
  for (const PlanStage& stage : plan.stages) {
    if (!stage.site_base_filters.empty() &&
        stage.site_base_filters.size() != sites_.size()) {
      return Status::InvalidArgument("site filter count mismatch");
    }
  }
  if (options_.columnar_sites) {
    for (Site& site : sites_) {
      if (!site.columnar_enabled()) {
        SKALLA_RETURN_NOT_OK(site.EnableColumnarCache());
      }
    }
  }

  const size_t n = sites_.size();
  ExecStats local_stats;
  ExecStats& st = stats == nullptr ? local_stats : *stats;
  st.rounds.clear();

  SKALLA_TRACE_SPAN(exec_span, "exec.plan", "executor");
  SKALLA_SPAN_ATTR(exec_span, "sites", static_cast<uint64_t>(n));
  SKALLA_SPAN_ATTR(exec_span, "stages",
                   static_cast<uint64_t>(plan.stages.size()));
  SKALLA_SPAN_ATTR(exec_span, "mode", "async");
  SKALLA_COUNTER_ADD("skalla.exec.plans", 1);

  ThreadPool pool(options_.num_threads == 0 ? n : options_.num_threads);
  // The coordinator owns a separate merge pool when sharded, so shard
  // merges never contend with the site tasks for workers — an arriving
  // fragment merges shard-parallel while slower sites keep computing.
  Coordinator coordinator(plan.key_columns,
                          ResolveCoordinatorShards(
                              options_.coordinator_shards));
  std::vector<Table> local_base(n);
  bool have_global = false;

  std::mutex err_mu;
  Status first_error;
  auto record_error = [&](const Status& s) {
    std::lock_guard<std::mutex> lock(err_mu);
    if (first_error.ok()) first_error = s;
  };
  std::mutex time_mu;

  SKALLA_ASSIGN_OR_RETURN(const Table* probe,
                          sites_[0].catalog().Get(plan.base.table));
  SKALLA_ASSIGN_OR_RETURN(SchemaPtr upstream,
                          plan.base.OutputSchema(*probe->schema()));

  // ---- Base round ---------------------------------------------------------
  {
    RoundStats rs;
    rs.label = "base";
    rs.synchronized = plan.sync_base;
    SKALLA_TRACE_SPAN(round_span, "round:base", "executor");
    SKALLA_SPAN_ATTR(round_span, "sync",
                     plan.sync_base ? "true" : "false");
    Stopwatch wall;
    MessageChannel channel;
    for (size_t i = 0; i < n; ++i) {
      pool.Submit([&, i] {
        SKALLA_TRACE_SPAN(site_span, "site.eval", "site");
        SKALLA_SPAN_ATTR(site_span, "site",
                         static_cast<int64_t>(sites_[i].id()));
        SKALLA_SPAN_ATTR(site_span, "round", "base");
        Stopwatch timer;
        size_t retries = 0;
        Result<Table> b_i = ExecuteSiteRound(
            options_, sites_[i].id(), "base",
            [&] { return sites_[i].ExecuteBaseQuery(plan.base); }, &retries);
        double elapsed = timer.ElapsedSeconds();
        SKALLA_HISTOGRAM_RECORD("skalla.site.eval_us", elapsed * 1e6);
        {
          std::lock_guard<std::mutex> lock(time_mu);
          rs.site_time_max = std::max(rs.site_time_max, elapsed);
          rs.site_time_sum += elapsed;
          rs.site_retries += retries;
        }
        if (!b_i.ok()) {
          record_error(b_i.status());
          if (plan.sync_base) channel.Send(static_cast<int>(i), FrameError());
          return;
        }
        if (plan.sync_base) {
          channel.Send(static_cast<int>(i), FrameTable(*b_i));
        } else {
          local_base[i] = std::move(*b_i);
        }
      });
    }
    if (plan.sync_base) {
      SKALLA_RETURN_NOT_OK(coordinator.InitBase(upstream));
      for (size_t received = 0; received < n; ++received) {
        ChannelMessage message = channel.Receive();
        if (message.bytes.empty() || message.bytes[0] == 0) continue;
        uint64_t table_bytes = message.bytes.size() - 1;
        rs.bytes_to_coord += table_bytes;
        rs.comm_time += network_.Transfer(message.from, kCoordinatorId,
                                          table_bytes);
        SKALLA_ASSIGN_OR_RETURN(
            Table fragment,
            ReadTable(message.bytes.data() + 1, table_bytes));
        rs.tuples_to_coord += fragment.num_rows();
        Stopwatch merge_timer;
        SKALLA_RETURN_NOT_OK(coordinator.MergeBaseFragment(fragment));
        rs.coord_time += merge_timer.ElapsedSeconds();
      }
      {
        Stopwatch finalize_timer;
        SKALLA_RETURN_NOT_OK(coordinator.FinalizeBase());
        rs.coord_time += finalize_timer.ElapsedSeconds();
      }
      have_global = true;
    }
    pool.Wait();
    SKALLA_RETURN_NOT_OK(first_error);
    rs.wall_time = wall.ElapsedSeconds();
    SKALLA_COUNTER_ADD("skalla.round.bytes_to_coord", rs.bytes_to_coord);
    SKALLA_COUNTER_ADD("skalla.round.tuples_to_coord", rs.tuples_to_coord);
    st.rounds.push_back(std::move(rs));
  }

  // ---- GMDJ stages ---------------------------------------------------------
  for (size_t k = 0; k < plan.stages.size(); ++k) {
    const PlanStage& stage = plan.stages[k];
    RoundStats rs;
    rs.label = StrCat("md", k + 1);
    rs.synchronized = stage.sync_after;
    SKALLA_TRACE_SPAN(round_span, StrCat("round:", rs.label), "executor");
    SKALLA_SPAN_ATTR(round_span, "sync",
                     stage.sync_after ? "true" : "false");
    Stopwatch wall;

    SKALLA_ASSIGN_OR_RETURN(const Table* detail_probe,
                            sites_[0].catalog().Get(stage.op.detail_table));
    const Schema& detail_schema = *detail_probe->schema();

    // Distribution: serialize per site at the coordinator; sites
    // deserialize inside their own tasks (in parallel).
    std::vector<std::vector<uint8_t>> downstream(n);
    std::vector<uint8_t> active(n, 1);
    if (have_global) {
      const Table& x = coordinator.result();
      for (size_t i = 0; i < n; ++i) {
        const ExprPtr& filter = stage.site_base_filters.empty()
                                    ? nullptr
                                    : stage.site_base_filters[i];
        Table to_send;
        {
          Stopwatch coord_timer;
          if (filter != nullptr) {
            SKALLA_ASSIGN_OR_RETURN(to_send, FilterBase(x, filter));
          } else {
            to_send = x;
          }
          rs.coord_time += coord_timer.ElapsedSeconds();
        }
        if (filter != nullptr && to_send.empty() && stage.sync_after) {
          active[i] = 0;
          ++rs.sites_skipped;
          continue;
        }
        WriteTable(to_send, &downstream[i]);
        rs.bytes_to_sites += downstream[i].size();
        rs.tuples_to_sites += to_send.num_rows();
        rs.comm_time += network_.Transfer(kCoordinatorId, sites_[i].id(),
                                          downstream[i].size());
      }
    }

    GmdjEvalOptions eval_options;
    eval_options.sub_aggregates = stage.sync_after;
    eval_options.compute_rng =
        stage.sync_after && stage.indep_group_reduction;

    MessageChannel channel;
    const bool distribute = have_global;
    for (size_t i = 0; i < n; ++i) {
      if (!active[i]) continue;
      pool.Submit([&, i, distribute] {
        SKALLA_TRACE_SPAN(site_span, "site.eval", "site");
        SKALLA_SPAN_ATTR(site_span, "site",
                         static_cast<int64_t>(sites_[i].id()));
        SKALLA_SPAN_ATTR(site_span, "round", rs.label);
        Stopwatch timer;
        Status status = Status::OK();
        Table base_in;
        if (distribute) {
          Result<Table> decoded =
              ReadTable(downstream[i].data(), downstream[i].size());
          if (!decoded.ok()) {
            status = decoded.status();
          } else {
            base_in = std::move(*decoded);
          }
        } else {
          base_in = std::move(local_base[i]);
        }
        Result<Table> result = Status::Internal("unset");
        size_t retries = 0;
        if (status.ok()) {
          result = ExecuteSiteRound(
              options_, sites_[i].id(), rs.label,
              [&] {
                return sites_[i].EvalGmdjRound(base_in, stage.op,
                                               eval_options);
              },
              &retries);
          if (result.ok() && eval_options.compute_rng) {
            result = ApplyRngFilter(*result);
          }
          if (!result.ok()) status = result.status();
        }
        double elapsed = timer.ElapsedSeconds();
        SKALLA_HISTOGRAM_RECORD("skalla.site.eval_us", elapsed * 1e6);
        {
          std::lock_guard<std::mutex> lock(time_mu);
          rs.site_time_max = std::max(rs.site_time_max, elapsed);
          rs.site_time_sum += elapsed;
          rs.site_retries += retries;
        }
        if (!status.ok()) {
          record_error(status);
          if (stage.sync_after) {
            channel.Send(static_cast<int>(i), FrameError());
          }
          return;
        }
        if (stage.sync_after) {
          channel.Send(static_cast<int>(i), FrameTable(*result));
        } else {
          local_base[i] = std::move(*result);
        }
      });
    }

    if (stage.sync_after) {
      // Incremental synchronization: merge fragments in completion order
      // while slower sites are still working.
      {
        Stopwatch begin_timer;
        SKALLA_RETURN_NOT_OK(
            coordinator.BeginRound(stage.op, *upstream, detail_schema,
                                   /*from_scratch=*/!have_global));
        rs.coord_time += begin_timer.ElapsedSeconds();
      }
      size_t expected = 0;
      for (size_t i = 0; i < n; ++i) expected += active[i] ? 1 : 0;
      for (size_t received = 0; received < expected; ++received) {
        ChannelMessage message = channel.Receive();
        if (message.bytes.empty() || message.bytes[0] == 0) continue;
        uint64_t table_bytes = message.bytes.size() - 1;
        rs.bytes_to_coord += table_bytes;
        rs.comm_time += network_.Transfer(message.from, kCoordinatorId,
                                          table_bytes);
        SKALLA_ASSIGN_OR_RETURN(
            Table fragment,
            ReadTable(message.bytes.data() + 1, table_bytes));
        rs.tuples_to_coord += fragment.num_rows();
        Stopwatch merge_timer;
        SKALLA_RETURN_NOT_OK(coordinator.MergeFragment(fragment));
        rs.coord_time += merge_timer.ElapsedSeconds();
      }
      pool.Wait();
      SKALLA_RETURN_NOT_OK(first_error);
      Stopwatch finalize_timer;
      SKALLA_RETURN_NOT_OK(coordinator.FinalizeRound());
      rs.coord_time += finalize_timer.ElapsedSeconds();
      have_global = true;
      for (size_t i = 0; i < n; ++i) local_base[i] = Table();
    } else {
      pool.Wait();
      SKALLA_RETURN_NOT_OK(first_error);
      have_global = false;
    }

    SKALLA_ASSIGN_OR_RETURN(upstream,
                            stage.op.OutputSchema(*upstream, detail_schema));
    rs.wall_time = wall.ElapsedSeconds();
    SKALLA_COUNTER_ADD("skalla.round.bytes_to_sites", rs.bytes_to_sites);
    SKALLA_COUNTER_ADD("skalla.round.bytes_to_coord", rs.bytes_to_coord);
    SKALLA_COUNTER_ADD("skalla.round.tuples_to_sites", rs.tuples_to_sites);
    SKALLA_COUNTER_ADD("skalla.round.tuples_to_coord", rs.tuples_to_coord);
    st.rounds.push_back(std::move(rs));
  }

  if (!have_global) {
    return Status::Internal("plan finished without a global result");
  }
  return coordinator.result();
}

}  // namespace skalla
