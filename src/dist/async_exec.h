// AsyncExecutor: the pipelined form of Alg. GMDJDistribEval. Sites
// evaluate concurrently on a thread pool and ship serialized fragments
// through a message channel; the coordinator synchronizes each fragment
// *as it arrives*, overlapping merge work with the remaining sites'
// computation — the incremental-synchronization property Sect. 3.2
// highlights ("the coordinator can synchronize H with those sub-results
// it has already received ... rather than having to wait for all of H").
//
// Produces byte-for-byte the same results and transfer counts as
// DistributedExecutor; wall-clock time additionally reflects the real
// overlap.

#ifndef SKALLA_DIST_ASYNC_EXEC_H_
#define SKALLA_DIST_ASYNC_EXEC_H_

#include <vector>

#include "common/result.h"
#include "dist/exec.h"
#include "dist/plan.h"
#include "dist/site.h"
#include "net/network.h"

namespace skalla {

class AsyncExecutor {
 public:
  /// `num_threads` = 0 uses one worker per site.
  explicit AsyncExecutor(std::vector<Site> sites,
                         NetworkConfig net_config = {},
                         size_t num_threads = 0);

  /// Runs the plan. Reuses ExecStats; in addition to the modeled
  /// communication time, each round's `wall_time` captures the real
  /// overlapped duration.
  Result<Table> Execute(const DistributedPlan& plan, ExecStats* stats);

  size_t num_sites() const { return sites_.size(); }

 private:
  std::vector<Site> sites_;
  SimulatedNetwork network_;
  size_t num_threads_;
};

}  // namespace skalla

#endif  // SKALLA_DIST_ASYNC_EXEC_H_
