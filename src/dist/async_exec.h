// AsyncExecutor: the pipelined form of Alg. GMDJDistribEval. Sites
// evaluate concurrently on a thread pool and ship serialized fragments
// through a message channel; the coordinator synchronizes each fragment
// *as it arrives*, overlapping merge work with the remaining sites'
// computation — the incremental-synchronization property Sect. 3.2
// highlights ("the coordinator can synchronize H with those sub-results
// it has already received ... rather than having to wait for all of H").
// With coordinator_shards > 1 the overlap is two-level: each arriving
// fragment is itself merged shard-parallel (on the coordinator's own
// merge pool, separate from the site pool) while later fragments are
// still being produced.
//
// Produces byte-for-byte the same results and transfer counts as
// DistributedExecutor; wall-clock time additionally reflects the real
// overlap. Implements the unified skalla::Executor interface.

#ifndef SKALLA_DIST_ASYNC_EXEC_H_
#define SKALLA_DIST_ASYNC_EXEC_H_

#include <map>
#include <vector>

#include "common/result.h"
#include "dist/executor.h"
#include "dist/plan.h"
#include "dist/site.h"
#include "net/network.h"

namespace skalla {

/// Pipelined executor. Always evaluates sites concurrently
/// (options.parallel_sites is ignored; options.num_threads sizes the site
/// pool, 0 = one worker per site). Fragments ship whole —
/// options.ship_block_rows does not apply.
class AsyncExecutor : public Executor {
 public:
  explicit AsyncExecutor(std::vector<Site> sites,
                         NetworkConfig net_config = {},
                         ExecutorOptions options = {});

  /// Runs the plan. In addition to the modeled communication time, each
  /// round's `wall_time` captures the real overlapped duration.
  using Executor::Execute;
  Result<Table> Execute(const DistributedPlan& plan, const QueryRun& run,
                        ExecStats* stats) override;

  /// Registers `replica` as another host of partition `partition`'s data
  /// (same catalog contents, its own site id); rounds fail over to
  /// replicas in registration order when the primary exhausts retries.
  void AddReplica(size_t partition, Site replica);

  const char* name() const override { return "async"; }
  size_t num_sites() const override { return sites_.size(); }

 private:
  // Site ids of partition i's evaluation chain: primary, then replicas.
  std::vector<int> ReplicaIds(size_t i) const;
  // Replica r of partition i (r == 0 is the primary).
  Site& ReplicaSite(size_t i, size_t r);

  std::vector<Site> sites_;
  std::map<size_t, std::vector<Site>> replicas_;
  SimulatedNetwork network_;
  ExecutorOptions options_;
};

}  // namespace skalla

#endif  // SKALLA_DIST_ASYNC_EXEC_H_
