#include "dist/coordinator.h"

#include <algorithm>
#include <mutex>

#include "common/macros.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "obs/obs.h"
#include "types/row.h"

namespace skalla {

ThreadPool* Coordinator::MergePool() {
  if (merge_pool_ != nullptr) return merge_pool_;
  if (owned_pool_ == nullptr) {
    // ParallelFor runs shard 0 inline, so num_shards - 1 workers suffice.
    owned_pool_ = std::make_unique<ThreadPool>(num_shards_ - 1);
  }
  return owned_pool_.get();
}

void Coordinator::RunSharded(const std::function<void(size_t)>& fn) {
  if (num_shards_ == 1) {
    fn(0);
    return;
  }
  MergePool()->ParallelFor(num_shards_, fn);
}

std::vector<Coordinator::HashedRows> Coordinator::BucketRows(
    const Table& fragment,
    const std::function<uint64_t(const Row&)>& hash_row) const {
  std::vector<HashedRows> buckets(num_shards_);
  for (HashedRows& b : buckets) {
    b.reserve(fragment.num_rows() / num_shards_ + 1);
  }
  for (size_t r = 0; r < fragment.num_rows(); ++r) {
    uint64_t h = hash_row(fragment.row(r));
    buckets[h % num_shards_].emplace_back(static_cast<uint32_t>(r), h);
  }
  return buckets;
}

Table Coordinator::ConcatShards(std::vector<Shard>& shards,
                                SchemaPtr schema) {
  size_t total = 0;
  for (const Shard& s : shards) total += s.rows.num_rows();
  Table out(std::move(schema));
  out.Reserve(total);
  if (shards.size() == 1) {
    Shard& s = shards[0];
    for (size_t r = 0; r < s.rows.num_rows(); ++r) {
      out.AppendUnchecked(std::move(s.rows.mutable_row(r)));
    }
    return out;
  }
  // Each shard's rows are already in stream order; a k-way cursor merge
  // on seq restores the exact order of the sequential merge.
  std::vector<size_t> cursor(shards.size(), 0);
  for (size_t emitted = 0; emitted < total; ++emitted) {
    size_t best = shards.size();
    uint64_t best_seq = 0;
    for (size_t s = 0; s < shards.size(); ++s) {
      if (cursor[s] >= shards[s].rows.num_rows()) continue;
      uint64_t seq = shards[s].seq[cursor[s]];
      if (best == shards.size() || seq < best_seq) {
        best = s;
        best_seq = seq;
      }
    }
    out.AppendUnchecked(
        std::move(shards[best].rows.mutable_row(cursor[best])));
    ++cursor[best];
  }
  return out;
}

// --- Base-values round ----------------------------------------------------

Status Coordinator::InitBase(SchemaPtr base_schema) {
  base_schema_ = std::move(base_schema);
  base_shards_.assign(num_shards_, Shard{});
  for (Shard& s : base_shards_) s.rows = Table(base_schema_);
  base_seq_ = 0;
  x_ = Table(base_schema_);
  in_base_ = true;
  in_round_ = false;
  return Status::OK();
}

void Coordinator::MergeBaseFragmentShard(size_t shard, const Table& fragment,
                                         const HashedRows& rows,
                                         uint64_t base_seq) {
  SKALLA_TRACE_SPAN(shard_span, "coord.merge.shard", "coordinator");
  SKALLA_SPAN_ATTR(shard_span, "shard", static_cast<uint64_t>(shard));
  SKALLA_SPAN_ATTR(shard_span, "rows", static_cast<uint64_t>(rows.size()));
  SKALLA_OBS_ONLY(Stopwatch shard_timer;)
  Shard& s = base_shards_[shard];
  for (const auto& [r, h] : rows) {
    const Row& row = fragment.row(r);
    std::vector<uint32_t>& bucket = s.map[h];
    bool duplicate = false;
    for (uint32_t prev : bucket) {
      if (RowEquals(s.rows.row(prev), row)) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) {
      bucket.push_back(static_cast<uint32_t>(s.rows.num_rows()));
      s.seq.push_back(base_seq + r);
      s.rows.AppendUnchecked(row);
    }
  }
  SKALLA_HISTOGRAM_RECORD("skalla.coord.merge_shard_us",
                          static_cast<double>(shard_timer.ElapsedMicros()));
}

Status Coordinator::MergeBaseFragment(const Table& fragment) {
  if (!in_base_) {
    return Status::Internal("MergeBaseFragment outside a base round");
  }
  if (fragment.num_columns() != base_schema_->num_fields()) {
    return Status::InvalidArgument(
        StrCat("base fragment arity ", fragment.num_columns(),
               " does not match base schema arity ",
               base_schema_->num_fields()));
  }
  SKALLA_TRACE_SPAN(merge_span, "coord.merge_base", "coordinator");
  SKALLA_SPAN_ATTR(merge_span, "rows",
                   static_cast<uint64_t>(fragment.num_rows()));
  SKALLA_OBS_ONLY(Stopwatch merge_timer;)
  std::vector<HashedRows> buckets =
      BucketRows(fragment, [](const Row& row) { return HashRow(row); });
  uint64_t base_seq = base_seq_;
  base_seq_ += fragment.num_rows();
  RunSharded([&](size_t shard) {
    MergeBaseFragmentShard(shard, fragment, buckets[shard], base_seq);
  });
  SKALLA_HISTOGRAM_RECORD("skalla.coord.merge_us",
                          static_cast<double>(merge_timer.ElapsedMicros()));
  return Status::OK();
}

Status Coordinator::FinalizeBase() {
  if (!in_base_) return Status::Internal("FinalizeBase outside a base round");
  x_ = ConcatShards(base_shards_, base_schema_);
  base_shards_.clear();
  in_base_ = false;
  return Status::OK();
}

Result<Table> Coordinator::TakeBaseFragment() {
  if (!in_base_) {
    return Status::Internal("TakeBaseFragment outside a base round");
  }
  Table fragment = ConcatShards(base_shards_, base_schema_);
  base_shards_.clear();
  x_ = Table();
  in_base_ = false;
  return fragment;
}

// --- GMDJ round -----------------------------------------------------------

int64_t Coordinator::LookupKeyInShard(const Shard& s, const Row& key_row,
                                      uint64_t hash) const {
  auto it = s.map.find(hash);
  if (it == s.map.end()) return -1;
  for (uint32_t row_id : it->second) {
    if (RowKeyEquals(key_row, key_indices_, s.rows.row(row_id),
                     key_indices_)) {
      return row_id;
    }
  }
  return -1;
}

Status Coordinator::BeginRound(const GmdjOp& op,
                               const Schema& upstream_schema,
                               const Schema& detail_schema,
                               bool from_scratch) {
  if (in_round_) {
    return Status::Internal("BeginRound during an unfinished round");
  }
  in_base_ = false;
  base_shards_.clear();
  in_round_ = true;
  from_scratch_ = from_scratch;
  round_op_ = op;
  upstream_width_ = upstream_schema.num_fields();
  merge_seq_ = 0;

  parts_.clear();
  agg_part_ranges_.clear();
  agg_specs_.clear();
  std::vector<Field> fields = upstream_schema.fields();
  for (const GmdjBlock& block : round_op_.blocks) {
    for (const AggSpec& spec : block.aggs) {
      agg_specs_.push_back(&spec);
      std::vector<SubAggregate> parts = Decompose(spec);
      agg_part_ranges_.emplace_back(parts_.size(), parts.size());
      for (SubAggregate& part : parts) {
        SKALLA_ASSIGN_OR_RETURN(ValueType type,
                                PartOutputType(part, detail_schema));
        fields.push_back(Field{part.part_name, type});
        parts_.push_back(std::move(part));
      }
    }
  }
  SKALLA_ASSIGN_OR_RETURN(working_schema_, Schema::Make(std::move(fields)));

  key_indices_.clear();
  for (const std::string& key : key_columns_) {
    SKALLA_ASSIGN_OR_RETURN(size_t idx, upstream_schema.RequireIndex(key));
    key_indices_.push_back(idx);
  }

  work_shards_.assign(num_shards_, Shard{});
  for (Shard& s : work_shards_) s.rows = Table(working_schema_);

  if (!from_scratch_) {
    if (!x_.schema()->Equals(upstream_schema)) {
      return Status::Internal(
          StrCat("coordinator structure schema ", x_.schema()->ToString(),
                 " does not match stage upstream schema ",
                 upstream_schema.ToString()));
    }
    // Seed the shards with X's rows (seq = X row index, so concatenation
    // restores X's order), splitting by key hash as fragments will.
    std::vector<HashedRows> buckets = BucketRows(x_, [this](const Row& row) {
      return HashRowKey(row, key_indices_);
    });
    RunSharded([&](size_t shard) {
      Shard& s = work_shards_[shard];
      s.rows.Reserve(buckets[shard].size());
      for (const auto& [r, h] : buckets[shard]) {
        Row row = x_.row(r);
        row.reserve(row.size() + parts_.size());
        for (const SubAggregate& part : parts_) {
          row.push_back(InitialPartValue(part));
        }
        s.map[h].push_back(static_cast<uint32_t>(s.rows.num_rows()));
        s.seq.push_back(r);
        s.rows.AppendUnchecked(std::move(row));
      }
    });
  }
  return Status::OK();
}

Status Coordinator::MergeFragmentShard(size_t shard, const Table& h,
                                       const HashedRows& rows,
                                       uint64_t base_seq) {
  SKALLA_TRACE_SPAN(shard_span, "coord.merge.shard", "coordinator");
  SKALLA_SPAN_ATTR(shard_span, "shard", static_cast<uint64_t>(shard));
  SKALLA_SPAN_ATTR(shard_span, "rows", static_cast<uint64_t>(rows.size()));
  SKALLA_OBS_ONLY(Stopwatch shard_timer;)
  Shard& s = work_shards_[shard];
  const size_t expected = upstream_width_ + parts_.size();
  for (const auto& [r, hash] : rows) {
    const Row& incoming = h.row(r);
    int64_t row_id = LookupKeyInShard(s, incoming, hash);
    if (row_id < 0) {
      if (!from_scratch_) {
        return Status::Internal(
            StrCat("site shipped unknown group ", RowToString(incoming)));
      }
      Row fresh(incoming.begin(),
                incoming.begin() + static_cast<int64_t>(upstream_width_));
      fresh.reserve(expected);
      for (const SubAggregate& part : parts_) {
        fresh.push_back(InitialPartValue(part));
      }
      row_id = static_cast<int64_t>(s.rows.num_rows());
      s.map[hash].push_back(static_cast<uint32_t>(row_id));
      s.seq.push_back(base_seq + r);
      s.rows.AppendUnchecked(std::move(fresh));
    }
    Row& target = s.rows.mutable_row(static_cast<size_t>(row_id));
    for (size_t p = 0; p < parts_.size(); ++p) {
      size_t col = upstream_width_ + p;
      target[col] =
          MergePartial(target[col], incoming[col], parts_[p].merge);
    }
  }
  SKALLA_HISTOGRAM_RECORD("skalla.coord.merge_shard_us",
                          static_cast<double>(shard_timer.ElapsedMicros()));
  return Status::OK();
}

Status Coordinator::MergeFragment(const Table& h) {
  if (!in_round_) return Status::Internal("MergeFragment outside a round");
  const size_t expected = upstream_width_ + parts_.size();
  if (h.num_columns() != expected) {
    return Status::InvalidArgument(
        StrCat("partial result arity ", h.num_columns(), ", expected ",
               expected));
  }
  SKALLA_TRACE_SPAN(merge_span, "coord.merge", "coordinator");
  SKALLA_SPAN_ATTR(merge_span, "rows", static_cast<uint64_t>(h.num_rows()));
  SKALLA_OBS_ONLY(Stopwatch merge_timer;)
  std::vector<HashedRows> buckets = BucketRows(h, [this](const Row& row) {
    return HashRowKey(row, key_indices_);
  });
  uint64_t base_seq = merge_seq_;
  merge_seq_ += h.num_rows();
  std::vector<Status> shard_status(num_shards_);
  RunSharded([&](size_t shard) {
    shard_status[shard] =
        MergeFragmentShard(shard, h, buckets[shard], base_seq);
  });
  for (Status& s : shard_status) {
    SKALLA_RETURN_NOT_OK(s);
  }
  SKALLA_HISTOGRAM_RECORD("skalla.coord.merge_us",
                          static_cast<double>(merge_timer.ElapsedMicros()));
  return Status::OK();
}

Result<Table> Coordinator::TakeWorkingFragment() {
  if (!in_round_) {
    return Status::Internal("TakeWorkingFragment outside a round");
  }
  Table fragment = ConcatShards(work_shards_, working_schema_);
  work_shards_.clear();
  in_round_ = false;
  return fragment;
}

Status Coordinator::FinalizeRound() {
  if (!in_round_) return Status::Internal("FinalizeRound outside a round");
  size_t groups = 0;
  for (const Shard& s : work_shards_) groups += s.rows.num_rows();
  SKALLA_TRACE_SPAN(finalize_span, "coord.finalize", "coordinator");
  SKALLA_SPAN_ATTR(finalize_span, "groups", static_cast<uint64_t>(groups));
  std::vector<Field> fields;
  fields.reserve(upstream_width_ + agg_specs_.size());
  for (size_t i = 0; i < upstream_width_; ++i) {
    fields.push_back(working_schema_->field(i));
  }
  // Output types: algebraic aggregates finalize to FLOAT64; distributive
  // (single-part) aggregates keep their part column type.
  for (size_t ai = 0; ai < agg_specs_.size(); ++ai) {
    auto [start, len] = agg_part_ranges_[ai];
    ValueType type;
    switch (agg_specs_[ai]->kind) {
      case AggKind::kAvg:
      case AggKind::kVarPop:
      case AggKind::kStdDevPop:
      case AggKind::kSumSq:
        type = ValueType::kFloat64;
        break;
      default:
        type = working_schema_->field(upstream_width_ + start).type;
        break;
    }
    fields.push_back(Field{agg_specs_[ai]->output, type});
    (void)len;
  }
  SKALLA_ASSIGN_OR_RETURN(SchemaPtr out_schema,
                          Schema::Make(std::move(fields)));
  // Super-aggregate each shard in place (shard-parallel), then
  // concatenate in stream order.
  std::vector<Shard> out_shards(num_shards_);
  RunSharded([&](size_t shard) {
    SKALLA_TRACE_SPAN(shard_span, "coord.finalize.shard", "coordinator");
    SKALLA_SPAN_ATTR(shard_span, "shard", static_cast<uint64_t>(shard));
    Shard& in = work_shards_[shard];
    Shard& fin = out_shards[shard];
    fin.rows = Table(out_schema);
    fin.rows.Reserve(in.rows.num_rows());
    fin.seq = std::move(in.seq);
    for (size_t r = 0; r < in.rows.num_rows(); ++r) {
      const Row& w = in.rows.row(r);
      Row row(w.begin(), w.begin() + static_cast<int64_t>(upstream_width_));
      row.reserve(out_schema->num_fields());
      for (size_t ai = 0; ai < agg_specs_.size(); ++ai) {
        auto [start, len] = agg_part_ranges_[ai];
        std::vector<Value> parts;
        parts.reserve(len);
        for (size_t p = 0; p < len; ++p) {
          parts.push_back(w[upstream_width_ + start + p]);
        }
        row.push_back(FinalizeAggregate(*agg_specs_[ai], parts));
      }
      fin.rows.AppendUnchecked(std::move(row));
    }
  });
  x_ = ConcatShards(out_shards, out_schema);
  work_shards_.clear();
  in_round_ = false;
  return Status::OK();
}

}  // namespace skalla
