#include "dist/coordinator.h"

#include "common/macros.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "obs/obs.h"
#include "types/row.h"

namespace skalla {

Status Coordinator::InitBase(SchemaPtr base_schema) {
  x_ = Table(std::move(base_schema));
  base_row_map_.clear();
  in_base_ = true;
  in_round_ = false;
  return Status::OK();
}

Status Coordinator::MergeBaseFragment(const Table& fragment) {
  if (!in_base_) {
    return Status::Internal("MergeBaseFragment outside a base round");
  }
  if (fragment.num_columns() != x_.num_columns()) {
    return Status::InvalidArgument(
        StrCat("base fragment arity ", fragment.num_columns(),
               " does not match base schema arity ", x_.num_columns()));
  }
  SKALLA_TRACE_SPAN(merge_span, "coord.merge_base", "coordinator");
  SKALLA_SPAN_ATTR(merge_span, "rows",
                   static_cast<uint64_t>(fragment.num_rows()));
  SKALLA_OBS_ONLY(Stopwatch merge_timer;)
  for (size_t r = 0; r < fragment.num_rows(); ++r) {
    const Row& row = fragment.row(r);
    uint64_t h = HashRow(row);
    std::vector<uint32_t>& bucket = base_row_map_[h];
    bool duplicate = false;
    for (uint32_t prev : bucket) {
      if (RowEquals(x_.row(prev), row)) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) {
      bucket.push_back(static_cast<uint32_t>(x_.num_rows()));
      x_.AppendUnchecked(row);
    }
  }
  SKALLA_HISTOGRAM_RECORD("skalla.coord.merge_us",
                          static_cast<double>(merge_timer.ElapsedMicros()));
  return Status::OK();
}

int64_t Coordinator::LookupKey(const Row& key_row) const {
  uint64_t h = HashRowKey(key_row, key_indices_);
  auto it = key_map_.find(h);
  if (it == key_map_.end()) return -1;
  for (uint32_t row_id : it->second) {
    if (RowKeyEquals(key_row, key_indices_, working_.row(row_id),
                     key_indices_)) {
      return row_id;
    }
  }
  return -1;
}

void Coordinator::InsertKey(const Row& row, uint32_t row_id) {
  key_map_[HashRowKey(row, key_indices_)].push_back(row_id);
}

Status Coordinator::BeginRound(const GmdjOp& op,
                               const Schema& upstream_schema,
                               const Schema& detail_schema,
                               bool from_scratch) {
  if (in_round_) {
    return Status::Internal("BeginRound during an unfinished round");
  }
  in_base_ = false;
  base_row_map_.clear();
  in_round_ = true;
  from_scratch_ = from_scratch;
  round_op_ = op;
  upstream_width_ = upstream_schema.num_fields();

  parts_.clear();
  agg_part_ranges_.clear();
  agg_specs_.clear();
  std::vector<Field> fields = upstream_schema.fields();
  for (const GmdjBlock& block : round_op_.blocks) {
    for (const AggSpec& spec : block.aggs) {
      agg_specs_.push_back(&spec);
      std::vector<SubAggregate> parts = Decompose(spec);
      agg_part_ranges_.emplace_back(parts_.size(), parts.size());
      for (SubAggregate& part : parts) {
        SKALLA_ASSIGN_OR_RETURN(ValueType type,
                                PartOutputType(part, detail_schema));
        fields.push_back(Field{part.part_name, type});
        parts_.push_back(std::move(part));
      }
    }
  }
  SKALLA_ASSIGN_OR_RETURN(SchemaPtr working_schema,
                          Schema::Make(std::move(fields)));

  key_indices_.clear();
  for (const std::string& key : key_columns_) {
    SKALLA_ASSIGN_OR_RETURN(size_t idx, upstream_schema.RequireIndex(key));
    key_indices_.push_back(idx);
  }

  working_ = Table(std::move(working_schema));
  key_map_.clear();

  if (!from_scratch_) {
    if (!x_.schema()->Equals(upstream_schema)) {
      return Status::Internal(
          StrCat("coordinator structure schema ", x_.schema()->ToString(),
                 " does not match stage upstream schema ",
                 upstream_schema.ToString()));
    }
    working_.Reserve(x_.num_rows());
    for (size_t r = 0; r < x_.num_rows(); ++r) {
      Row row = x_.row(r);
      row.reserve(row.size() + parts_.size());
      for (const SubAggregate& part : parts_) {
        row.push_back(InitialPartValue(part));
      }
      InsertKey(row, static_cast<uint32_t>(working_.num_rows()));
      working_.AppendUnchecked(std::move(row));
    }
  }
  return Status::OK();
}

Status Coordinator::MergeFragment(const Table& h) {
  if (!in_round_) return Status::Internal("MergeFragment outside a round");
  const size_t expected = upstream_width_ + parts_.size();
  if (h.num_columns() != expected) {
    return Status::InvalidArgument(
        StrCat("partial result arity ", h.num_columns(), ", expected ",
               expected));
  }
  SKALLA_TRACE_SPAN(merge_span, "coord.merge", "coordinator");
  SKALLA_SPAN_ATTR(merge_span, "rows", static_cast<uint64_t>(h.num_rows()));
  SKALLA_OBS_ONLY(Stopwatch merge_timer;)
  for (size_t r = 0; r < h.num_rows(); ++r) {
    const Row& incoming = h.row(r);
    int64_t row_id = LookupKey(incoming);
    if (row_id < 0) {
      if (!from_scratch_) {
        return Status::Internal(
            StrCat("site shipped unknown group ", RowToString(incoming)));
      }
      Row fresh(incoming.begin(),
                incoming.begin() + static_cast<int64_t>(upstream_width_));
      fresh.reserve(expected);
      for (const SubAggregate& part : parts_) {
        fresh.push_back(InitialPartValue(part));
      }
      row_id = static_cast<int64_t>(working_.num_rows());
      InsertKey(fresh, static_cast<uint32_t>(row_id));
      working_.AppendUnchecked(std::move(fresh));
    }
    Row& target = working_.mutable_row(static_cast<size_t>(row_id));
    for (size_t p = 0; p < parts_.size(); ++p) {
      size_t col = upstream_width_ + p;
      target[col] =
          MergePartial(target[col], incoming[col], parts_[p].merge);
    }
  }
  SKALLA_HISTOGRAM_RECORD("skalla.coord.merge_us",
                          static_cast<double>(merge_timer.ElapsedMicros()));
  return Status::OK();
}

Result<Table> Coordinator::TakeWorkingFragment() {
  if (!in_round_) {
    return Status::Internal("TakeWorkingFragment outside a round");
  }
  Table fragment = std::move(working_);
  working_ = Table();
  key_map_.clear();
  in_round_ = false;
  return fragment;
}

Result<Table> Coordinator::TakeBaseFragment() {
  if (!in_base_) {
    return Status::Internal("TakeBaseFragment outside a base round");
  }
  Table fragment = std::move(x_);
  x_ = Table();
  base_row_map_.clear();
  in_base_ = false;
  return fragment;
}

Status Coordinator::FinalizeRound() {
  if (!in_round_) return Status::Internal("FinalizeRound outside a round");
  SKALLA_TRACE_SPAN(finalize_span, "coord.finalize", "coordinator");
  SKALLA_SPAN_ATTR(finalize_span, "groups",
                   static_cast<uint64_t>(working_.num_rows()));
  std::vector<Field> fields;
  fields.reserve(upstream_width_ + agg_specs_.size());
  for (size_t i = 0; i < upstream_width_; ++i) {
    fields.push_back(working_.schema()->field(i));
  }
  // Output types: algebraic aggregates finalize to FLOAT64; distributive
  // (single-part) aggregates keep their part column type.
  for (size_t ai = 0; ai < agg_specs_.size(); ++ai) {
    auto [start, len] = agg_part_ranges_[ai];
    ValueType type;
    switch (agg_specs_[ai]->kind) {
      case AggKind::kAvg:
      case AggKind::kVarPop:
      case AggKind::kStdDevPop:
      case AggKind::kSumSq:
        type = ValueType::kFloat64;
        break;
      default:
        type = working_.schema()->field(upstream_width_ + start).type;
        break;
    }
    fields.push_back(Field{agg_specs_[ai]->output, type});
    (void)len;
  }
  SKALLA_ASSIGN_OR_RETURN(SchemaPtr out_schema,
                          Schema::Make(std::move(fields)));
  Table out(out_schema);
  out.Reserve(working_.num_rows());
  for (size_t r = 0; r < working_.num_rows(); ++r) {
    const Row& w = working_.row(r);
    Row row(w.begin(), w.begin() + static_cast<int64_t>(upstream_width_));
    row.reserve(out_schema->num_fields());
    for (size_t ai = 0; ai < agg_specs_.size(); ++ai) {
      auto [start, len] = agg_part_ranges_[ai];
      std::vector<Value> parts;
      parts.reserve(len);
      for (size_t p = 0; p < len; ++p) {
        parts.push_back(w[upstream_width_ + start + p]);
      }
      row.push_back(FinalizeAggregate(*agg_specs_[ai], parts));
    }
    out.AppendUnchecked(std::move(row));
  }
  x_ = std::move(out);
  working_ = Table();
  key_map_.clear();
  in_round_ = false;
  return Status::OK();
}

}  // namespace skalla
