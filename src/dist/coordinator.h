// Coordinator: maintains the base-result structure X and synchronizes the
// sub-results H_i shipped by the sites, per Theorem 1:
//
//   X = MD(B, H_1 ⊔ … ⊔ H_n, l'', θ_K)
//
// specialised to a hash merge on the key attributes K — O(|H_i|) per
// arriving fragment, and incremental: fragments merge as they arrive.
//
// The merge structure is sharded by hash of the group-by key into
// `num_shards` independent (key map, working table) pairs. Arriving
// fragments are split once in a bucketing pass and merged shard-parallel
// on a ThreadPool; FinalizeRound computes super-aggregates shard-parallel
// too. Equal keys always hash to the same shard, so shards are
// key-disjoint and merging stays associative — results are bit-identical
// to the sequential (num_shards = 1) merge. Row order is preserved
// exactly as well: every inserted row remembers its position in the
// arrival stream, and concatenation restores that order.

#ifndef SKALLA_DIST_COORDINATOR_H_
#define SKALLA_DIST_COORDINATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "agg/aggregate.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "core/gmdj.h"
#include "storage/table.h"

namespace skalla {

class Coordinator {
 public:
  /// `num_shards` (at least 1) splits the merge structures by key hash;
  /// 1 keeps the sequential merge. Shard merges run on `merge_pool` when
  /// given (not owned; must outlive the coordinator); with num_shards > 1
  /// and no pool, the coordinator lazily creates its own. Sharing one
  /// pool across coordinators (e.g. every tier of a coordinator tree) is
  /// safe: dispatch uses ThreadPool::ParallelFor, which never waits on
  /// another client's tasks.
  explicit Coordinator(std::vector<std::string> key_columns,
                       size_t num_shards = 1,
                       ThreadPool* merge_pool = nullptr)
      : key_columns_(std::move(key_columns)),
        num_shards_(num_shards == 0 ? 1 : num_shards),
        merge_pool_(merge_pool) {}

  const std::vector<std::string>& key_columns() const { return key_columns_; }
  size_t num_shards() const { return num_shards_; }

  // --- Base-values round -------------------------------------------------

  /// Starts collecting the global base-values relation.
  Status InitBase(SchemaPtr base_schema);

  /// Distinct-unions a site's local base result into the sharded base
  /// structure.
  Status MergeBaseFragment(const Table& fragment);

  /// Ends the base round: concatenates the base shards (in arrival
  /// order) and installs the deduplicated union as X.
  Status FinalizeBase();

  // --- GMDJ round ---------------------------------------------------------

  /// Starts a synchronization round for `op`.
  ///
  /// `upstream_schema` is the schema of the base-result structure as the
  /// sites see it entering this stage (X's schema when the previous stage
  /// synchronized; the chain-derived schema otherwise). `detail_schema`
  /// types the sub-aggregate part columns.
  ///
  /// When `from_scratch` is false, the working structure is seeded with
  /// X's rows (every global group present, aggregates at their neutral
  /// values); fragments may only update existing groups. When true
  /// (Prop. 2 / Corollary 1 plans), the working structure starts empty and
  /// fragments insert groups as they arrive.
  Status BeginRound(const GmdjOp& op, const Schema& upstream_schema,
                    const Schema& detail_schema, bool from_scratch);

  /// Merges one site's partial result (schema: upstream columns followed
  /// by part columns) into the working structure, shard-parallel.
  Status MergeFragment(const Table& h);

  /// Computes super-aggregates' final values (shard-parallel) and
  /// installs the round result as the new X.
  Status FinalizeRound();

  /// For multi-tier coordinator topologies (Sect. 6's future-work
  /// architecture): ends the round by returning the merged but NOT
  /// finalized working structure (upstream columns + part columns). The
  /// returned table is itself a valid fragment for a parent coordinator's
  /// MergeFragment — super-aggregation is associative, so partials can be
  /// combined level by level up a tree.
  Result<Table> TakeWorkingFragment();

  /// For multi-tier topologies, base round: returns the deduplicated
  /// base-values union collected so far and ends the base round.
  Result<Table> TakeBaseFragment();

  /// The current base-result structure.
  const Table& result() const { return x_; }

  /// Replaces X (used when a plan starts from a precomputed structure).
  void SetResult(Table x) { x_ = std::move(x); }

 private:
  // One hash shard of the round's merge structure. `seq[r]` is the
  // position row r's key first appeared at in the arrival stream (or its
  // X row index for seeded rounds) — concatenating shards sorted by seq
  // reproduces the sequential merge's row order exactly.
  struct Shard {
    Table rows;
    std::vector<uint64_t> seq;
    // Key hash -> row ids in `rows` (chained for hash collisions).
    std::unordered_map<uint64_t, std::vector<uint32_t>> map;

    void Clear() {
      rows = Table();
      seq.clear();
      map.clear();
    }
  };

  // (row index in the arriving fragment, its key hash): the bucketing
  // pass computes each hash once; shard merges reuse it.
  using HashedRows = std::vector<std::pair<uint32_t, uint64_t>>;

  // Splits fragment rows across shards by hash. `hash_row` computes the
  // shard-selection (and map) hash for one row.
  std::vector<HashedRows> BucketRows(
      const Table& fragment,
      const std::function<uint64_t(const Row&)>& hash_row) const;

  // Runs fn(shard) for every shard — inline when there is one shard,
  // otherwise on the merge pool.
  void RunSharded(const std::function<void(size_t)>& fn);

  // Returns the row id in shard s holding `key_row`'s key, or -1.
  int64_t LookupKeyInShard(const Shard& s, const Row& key_row,
                           uint64_t hash) const;

  // Merges one shard's slice of an arriving GMDJ fragment.
  Status MergeFragmentShard(size_t shard, const Table& h,
                            const HashedRows& rows, uint64_t base_seq);
  // Dedups one shard's slice of an arriving base fragment.
  void MergeBaseFragmentShard(size_t shard, const Table& fragment,
                              const HashedRows& rows, uint64_t base_seq);

  // Concatenates shard tables into one with `schema`, restoring arrival
  // order via the per-row sequence numbers.
  Table ConcatShards(std::vector<Shard>& shards, SchemaPtr schema);

  ThreadPool* MergePool();

  std::vector<std::string> key_columns_;
  size_t num_shards_;
  ThreadPool* merge_pool_;                    // Not owned; may be null.
  std::unique_ptr<ThreadPool> owned_pool_;    // Lazily created fallback.

  Table x_;

  // Round state.
  bool in_round_ = false;
  bool from_scratch_ = false;
  GmdjOp round_op_;
  size_t upstream_width_ = 0;
  std::vector<SubAggregate> parts_;  // Flattened across blocks/aggs.
  std::vector<std::pair<size_t, size_t>> agg_part_ranges_;
  std::vector<const AggSpec*> agg_specs_;
  SchemaPtr working_schema_;
  std::vector<Shard> work_shards_;
  std::vector<size_t> key_indices_;  // Into working rows (== fragments).
  uint64_t merge_seq_ = 0;  // Rows merged so far this round (stream pos).

  // Base-round state.
  bool in_base_ = false;
  SchemaPtr base_schema_;
  std::vector<Shard> base_shards_;
  uint64_t base_seq_ = 0;
};

}  // namespace skalla

#endif  // SKALLA_DIST_COORDINATOR_H_
