// Coordinator: maintains the base-result structure X and synchronizes the
// sub-results H_i shipped by the sites, per Theorem 1:
//
//   X = MD(B, H_1 ⊔ … ⊔ H_n, l'', θ_K)
//
// specialised to a hash merge on the key attributes K — O(|H_i|) per
// arriving fragment, and incremental: fragments merge as they arrive.

#ifndef SKALLA_DIST_COORDINATOR_H_
#define SKALLA_DIST_COORDINATOR_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "agg/aggregate.h"
#include "common/result.h"
#include "core/gmdj.h"
#include "storage/table.h"

namespace skalla {

class Coordinator {
 public:
  explicit Coordinator(std::vector<std::string> key_columns)
      : key_columns_(std::move(key_columns)) {}

  const std::vector<std::string>& key_columns() const { return key_columns_; }

  // --- Base-values round -------------------------------------------------

  /// Starts collecting the global base-values relation.
  Status InitBase(SchemaPtr base_schema);

  /// Distinct-unions a site's local base result into X.
  Status MergeBaseFragment(const Table& fragment);

  // --- GMDJ round ---------------------------------------------------------

  /// Starts a synchronization round for `op`.
  ///
  /// `upstream_schema` is the schema of the base-result structure as the
  /// sites see it entering this stage (X's schema when the previous stage
  /// synchronized; the chain-derived schema otherwise). `detail_schema`
  /// types the sub-aggregate part columns.
  ///
  /// When `from_scratch` is false, the working structure is seeded with
  /// X's rows (every global group present, aggregates at their neutral
  /// values); fragments may only update existing groups. When true
  /// (Prop. 2 / Corollary 1 plans), the working structure starts empty and
  /// fragments insert groups as they arrive.
  Status BeginRound(const GmdjOp& op, const Schema& upstream_schema,
                    const Schema& detail_schema, bool from_scratch);

  /// Merges one site's partial result (schema: upstream columns followed
  /// by part columns) into the working structure.
  Status MergeFragment(const Table& h);

  /// Computes super-aggregates' final values and installs the round result
  /// as the new X.
  Status FinalizeRound();

  /// For multi-tier coordinator topologies (Sect. 6's future-work
  /// architecture): ends the round by returning the merged but NOT
  /// finalized working structure (upstream columns + part columns). The
  /// returned table is itself a valid fragment for a parent coordinator's
  /// MergeFragment — super-aggregation is associative, so partials can be
  /// combined level by level up a tree.
  Result<Table> TakeWorkingFragment();

  /// For multi-tier topologies, base round: returns the deduplicated
  /// base-values union collected so far and ends the base round.
  Result<Table> TakeBaseFragment();

  /// The current base-result structure.
  const Table& result() const { return x_; }

  /// Replaces X (used when a plan starts from a precomputed structure).
  void SetResult(Table x) { x_ = std::move(x); }

 private:
  // Returns the row id in `working_` holding `key_row`'s key, or -1.
  int64_t LookupKey(const Row& key_row) const;
  void InsertKey(const Row& row, uint32_t row_id);

  std::vector<std::string> key_columns_;
  Table x_;

  // Round state.
  bool in_round_ = false;
  bool from_scratch_ = false;
  GmdjOp round_op_;
  size_t upstream_width_ = 0;
  std::vector<SubAggregate> parts_;  // Flattened across blocks/aggs.
  std::vector<std::pair<size_t, size_t>> agg_part_ranges_;
  std::vector<const AggSpec*> agg_specs_;
  Table working_;
  std::vector<size_t> key_indices_;  // Into working_ (== into fragments).
  std::unordered_map<uint64_t, std::vector<uint32_t>> key_map_;

  // Base-round state.
  bool in_base_ = false;
  std::unordered_map<uint64_t, std::vector<uint32_t>> base_row_map_;
};

}  // namespace skalla

#endif  // SKALLA_DIST_COORDINATOR_H_
