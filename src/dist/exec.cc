#include "dist/exec.h"

#include <algorithm>
#include <functional>
#include <mutex>

#include "common/macros.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "net/serde.h"
#include "obs/obs.h"
#include "relalg/operators.h"
#include "rpc/frame.h"

namespace skalla {

DistributedExecutor::DistributedExecutor(std::vector<Site> sites,
                                         NetworkConfig net_config,
                                         ExecutorOptions options)
    : sites_(std::move(sites)),
      network_(net_config),
      options_(options) {}

void DistributedExecutor::AddReplica(size_t partition, Site replica) {
  replicas_[partition].push_back(std::move(replica));
}

std::vector<int> DistributedExecutor::ReplicaIds(size_t i) const {
  std::vector<int> ids{sites_[i].id()};
  auto it = replicas_.find(i);
  if (it != replicas_.end()) {
    for (const Site& replica : it->second) ids.push_back(replica.id());
  }
  return ids;
}

Site& DistributedExecutor::ReplicaSite(size_t i, size_t r) {
  return r == 0 ? sites_[i] : replicas_.at(i)[r - 1];
}

Status DistributedExecutor::ForEachSite(
    const std::function<Status(size_t)>& fn) {
  if (!options_.parallel_sites || sites_.size() <= 1) {
    for (size_t i = 0; i < sites_.size(); ++i) {
      SKALLA_RETURN_NOT_OK(fn(i));
    }
    return Status::OK();
  }
  size_t workers = options_.num_threads == 0 ? sites_.size()
                                             : options_.num_threads;
  ThreadPool pool(workers);
  std::mutex mu;
  Status first_error;
  for (size_t i = 0; i < sites_.size(); ++i) {
    pool.Submit([&, i] {
      Status s = fn(i);
      if (!s.ok()) {
        std::lock_guard<std::mutex> lock(mu);
        if (first_error.ok()) first_error = s;
      }
    });
  }
  pool.Wait();
  return first_error;
}

namespace {

// One framed transfer: serializes `table`, wraps it in the versioned
// wire frame (rpc/frame.h) exactly as the TCP transport would, and
// decodes it on the receiving end. Accounting counts the table payload
// only — the constant per-message frame header is transport overhead,
// excluded so byte counts stay comparable across transports and with the
// paper's bounds.
Result<Table> ShipFramed(SimulatedNetwork* network, const Table& table,
                         int from, int to, uint64_t* bytes_acc,
                         double* comm_acc) {
  std::vector<uint8_t> payload;
  WriteTable(table, &payload);
  *bytes_acc += payload.size();
  *comm_acc += network->Transfer(from, to, payload.size());
  std::vector<uint8_t> wire =
      rpc::EncodeFrame(rpc::MessageType::kTableResult, payload);
  SKALLA_ASSIGN_OR_RETURN(rpc::Frame frame, rpc::DecodeFrame(wire));
  return ReadTable(frame.payload.data(), frame.payload.size());
}

// Ships `table` over the network with real serialization; returns the
// deserialized copy on the receiving end, charging bytes/time to `stats`.
// With `block_rows` > 0, the table travels as row blocks of at most that
// many rows, each block its own message (receivers reassemble).
Result<Table> Ship(SimulatedNetwork* network, const Table& table, int from,
                   int to, size_t block_rows, uint64_t* bytes_acc,
                   uint64_t* tuples_acc, double* comm_acc) {
  *tuples_acc += table.num_rows();
  if (block_rows == 0 || table.num_rows() <= block_rows) {
    return ShipFramed(network, table, from, to, bytes_acc, comm_acc);
  }
  Table assembled;
  bool first = true;
  for (size_t start = 0; start < table.num_rows(); start += block_rows) {
    size_t end = std::min(start + block_rows, table.num_rows());
    Table block(table.schema());
    block.Reserve(end - start);
    for (size_t r = start; r < end; ++r) {
      block.AppendUnchecked(table.row(r));
    }
    SKALLA_ASSIGN_OR_RETURN(
        Table received,
        ShipFramed(network, block, from, to, bytes_acc, comm_acc));
    if (first) {
      assembled = std::move(received);
      first = false;
    } else {
      SKALLA_ASSIGN_OR_RETURN(assembled,
                              UnionAll(assembled, received));
    }
  }
  return assembled;
}

}  // namespace

Result<Table> DistributedExecutor::Execute(const DistributedPlan& plan,
                                           const QueryRun& run,
                                           ExecStats* stats) {
  if (sites_.empty()) {
    return Status::InvalidArgument("executor has no sites");
  }
  if (!plan.stages.empty() && !plan.stages.back().sync_after) {
    return Status::InvalidArgument(
        "the final plan stage must synchronize at the coordinator");
  }
  if (plan.stages.empty() && !plan.sync_base) {
    return Status::InvalidArgument(
        "a plan without GMDJ stages must synchronize its base query");
  }
  for (const PlanStage& stage : plan.stages) {
    if (!stage.site_base_filters.empty() &&
        stage.site_base_filters.size() != sites_.size()) {
      return Status::InvalidArgument(
          StrCat("stage has ", stage.site_base_filters.size(),
                 " site filters for ", sites_.size(), " sites"));
    }
  }
  for (const auto& [partition, replicas] : replicas_) {
    if (partition >= sites_.size()) {
      return Status::InvalidArgument(
          StrCat("replica registered for partition ", partition, " but only ",
                 sites_.size(), " partitions exist"));
    }
    (void)replicas;
  }
  if (options_.columnar_sites) {
    for (Site& site : sites_) {
      if (!site.columnar_enabled()) {
        SKALLA_RETURN_NOT_OK(site.EnableColumnarCache());
      }
    }
    for (auto& [partition, replicas] : replicas_) {
      (void)partition;
      for (Site& replica : replicas) {
        if (!replica.columnar_enabled()) {
          SKALLA_RETURN_NOT_OK(replica.EnableColumnarCache());
        }
      }
    }
  }

  const size_t n = sites_.size();
  ExecStats local_stats;
  ExecStats& st = stats == nullptr ? local_stats : *stats;
  st.rounds.clear();

  // Tag every span and metric this execution records with the run's
  // query id (worker threads re-establish the scope per site).
  const uint64_t query_id = ResolveQueryId(run);
  obs::QueryIdScope query_scope(query_id);
  st.query_id = query_id;

  SKALLA_TRACE_SPAN(exec_span, "exec.plan", "executor");
  SKALLA_SPAN_ATTR(exec_span, "sites", static_cast<uint64_t>(n));
  SKALLA_SPAN_ATTR(exec_span, "stages",
                   static_cast<uint64_t>(plan.stages.size()));
  SKALLA_COUNTER_ADD("skalla.exec.plans", 1);

  Coordinator coordinator(plan.key_columns,
                          ResolveCoordinatorShards(
                              options_.coordinator_shards));
  std::vector<Table> local_base(n);
  bool have_global = false;
  const QueryDeadline deadline(options_, run);
  // Partitions whose every replica is gone; only OnSiteLoss::kDegrade
  // sets these — the query completes over the survivors and the loss is
  // reported in st.lost_sites / RoundStats::sites_lost.
  std::vector<uint8_t> lost(n, 0);
  st.lost_sites.clear();

  // Schema inference chain: upstream schema entering each stage.
  SKALLA_ASSIGN_OR_RETURN(const DataProvider* probe,
                          sites_[0].catalog().GetProvider(plan.base.table));
  SKALLA_ASSIGN_OR_RETURN(SchemaPtr upstream,
                          plan.base.OutputSchema(*probe->schema()));

  // ---- Base-values stage -------------------------------------------------
  {
    RoundStats rs;
    rs.label = "base";
    rs.synchronized = plan.sync_base;
    SKALLA_TRACE_SPAN(round_span, "round:base", "executor");
    SKALLA_SPAN_ATTR(round_span, "sync",
                     plan.sync_base ? "true" : "false");
    CancellationToken round_cancel;
    SKALLA_RETURN_NOT_OK(deadline.ArmRound(rs.label, &round_cancel));
    std::vector<SiteRoundProfile> profiles(n);
    std::mutex mu;
    Status status = ForEachSite([&](size_t i) -> Status {
      obs::QueryIdScope site_scope(query_id);
      SKALLA_TRACE_SPAN(site_span, "site.eval", "site");
      SKALLA_SPAN_ATTR(site_span, "site",
                       static_cast<int64_t>(sites_[i].id()));
      SKALLA_SPAN_ATTR(site_span, "round", rs.label);
      Stopwatch timer;
      SiteRoundCounts counts;
      Result<Table> b_i = ExecuteSiteRoundReplicated(
          options_, ReplicaIds(i), rs.label,
          [&](size_t r) {
            return ReplicaSite(i, r).ExecuteBaseQuery(plan.base);
          },
          &counts, &round_cancel);
      double elapsed = timer.ElapsedSeconds();
      std::lock_guard<std::mutex> lock(mu);
      rs.site_retries += counts.retries;
      rs.site_failovers += counts.failovers;
      if (!b_i.ok()) {
        if (options_.on_site_loss != OnSiteLoss::kDegrade ||
            b_i.status().IsDeadlineExceeded()) {
          return b_i.status();
        }
        lost[i] = 1;
        st.lost_sites.push_back(sites_[i].id());
        local_base[i] = Table();
        return Status::OK();
      }
      SKALLA_HISTOGRAM_RECORD("skalla.site.eval_us", elapsed * 1e6);
      rs.site_time_max = std::max(rs.site_time_max, elapsed);
      rs.site_time_sum += elapsed;
      profiles[i].site_id = sites_[i].id();
      profiles[i].wall_us = static_cast<uint64_t>(elapsed * 1e6);
      profiles[i].eval_us = profiles[i].wall_us;
      profiles[i].result_rows = b_i->num_rows();
      local_base[i] = std::move(*b_i);
      return Status::OK();
    });
    SKALLA_RETURN_NOT_OK(status);
    for (size_t i = 0; i < n; ++i) rs.sites_lost += lost[i];

    if (plan.sync_base) {
      SKALLA_RETURN_NOT_OK(coordinator.InitBase(upstream));
      for (size_t i = 0; i < n; ++i) {
        if (lost[i]) continue;
        uint64_t bytes_before = rs.bytes_to_coord;
        SKALLA_ASSIGN_OR_RETURN(
            Table received,
            Ship(&network_, local_base[i], sites_[i].id(), kCoordinatorId,
                 options_.ship_block_rows, &rs.bytes_to_coord,
                 &rs.tuples_to_coord, &rs.comm_time));
        profiles[i].bytes_out = rs.bytes_to_coord - bytes_before;
        Stopwatch merge_timer;
        SKALLA_RETURN_NOT_OK(coordinator.MergeBaseFragment(received));
        rs.coord_time += merge_timer.ElapsedSeconds();
        local_base[i] = Table();
      }
      {
        Stopwatch finalize_timer;
        SKALLA_RETURN_NOT_OK(coordinator.FinalizeBase());
        rs.coord_time += finalize_timer.ElapsedSeconds();
      }
      have_global = true;
    }
    for (size_t i = 0; i < n; ++i) {
      if (!lost[i]) rs.site_profiles.push_back(profiles[i]);
    }
    SKALLA_COUNTER_ADD("skalla.round.bytes_to_coord", rs.bytes_to_coord);
    SKALLA_COUNTER_ADD("skalla.round.tuples_to_coord", rs.tuples_to_coord);
    st.rounds.push_back(std::move(rs));
  }

  // ---- GMDJ stages ---------------------------------------------------------
  for (size_t k = 0; k < plan.stages.size(); ++k) {
    const PlanStage& stage = plan.stages[k];
    RoundStats rs;
    rs.label = StrCat("md", k + 1);
    rs.synchronized = stage.sync_after;
    SKALLA_TRACE_SPAN(round_span, StrCat("round:", rs.label), "executor");
    SKALLA_SPAN_ATTR(round_span, "sync",
                     stage.sync_after ? "true" : "false");

    SKALLA_ASSIGN_OR_RETURN(const DataProvider* detail_probe,
                            sites_[0].catalog().GetProvider(stage.op.detail_table));
    const Schema& detail_schema = *detail_probe->schema();

    // Distribute the global structure to the sites, applying
    // distribution-aware group reduction where the optimizer derived
    // per-site predicates. A site whose reduced structure is empty holds
    // no group that could match: it sits the round out entirely
    // (S_MD_k ⊂ S_B, Sect. 3.2).
    CancellationToken round_cancel;
    SKALLA_RETURN_NOT_OK(deadline.ArmRound(rs.label, &round_cancel));

    std::vector<SiteRoundProfile> profiles(n);
    std::vector<uint8_t> active(n, 1);
    if (have_global) {
      const Table& x = coordinator.result();
      for (size_t i = 0; i < n; ++i) {
        if (lost[i]) continue;
        const ExprPtr& filter = stage.site_base_filters.empty()
                                    ? nullptr
                                    : stage.site_base_filters[i];
        Table to_send;
        {
          Stopwatch coord_timer;
          if (filter != nullptr) {
            SKALLA_ASSIGN_OR_RETURN(to_send, FilterBaseRows(x, filter));
          } else {
            to_send = x;
          }
          rs.coord_time += coord_timer.ElapsedSeconds();
        }
        // Only synchronized stages may drop a site outright: a local
        // continuation stage still needs the (empty, but schema-typed)
        // structure to evaluate the next operator against.
        if (filter != nullptr && to_send.empty() && stage.sync_after) {
          active[i] = 0;
          ++rs.sites_skipped;
          local_base[i] = Table();
          continue;
        }
        uint64_t bytes_before = rs.bytes_to_sites;
        SKALLA_ASSIGN_OR_RETURN(
            local_base[i],
            Ship(&network_, to_send, kCoordinatorId, sites_[i].id(),
                 options_.ship_block_rows, &rs.bytes_to_sites,
                 &rs.tuples_to_sites, &rs.comm_time));
        profiles[i].bytes_in = rs.bytes_to_sites - bytes_before;
      }
    }

    // Local GMDJ evaluation at every site.
    EvalContext eval_context = StageEvalContext(options_, run, stage);
    eval_context.cancellation = &round_cancel;
    eval_context.query_id = query_id;
    std::vector<Table> outputs(n);
    std::mutex mu;
    Status status = ForEachSite([&](size_t i) -> Status {
      if (!active[i] || lost[i]) return Status::OK();
      obs::QueryIdScope site_scope(query_id);
      SKALLA_TRACE_SPAN(site_span, "site.eval", "site");
      SKALLA_SPAN_ATTR(site_span, "site",
                       static_cast<int64_t>(sites_[i].id()));
      SKALLA_SPAN_ATTR(site_span, "round", rs.label);
      Stopwatch timer;
      SiteRoundCounts counts;
      EvalProfile eval_profile;
      EvalContext site_context = eval_context;
      site_context.profile = &eval_profile;
      SKALLA_OBS_ONLY(site_context.trace_parent_span = site_span.id());
      Result<Table> attempt_result = ExecuteSiteRoundReplicated(
          options_, ReplicaIds(i), rs.label,
          [&](size_t r) {
            return ReplicaSite(i, r).EvalGmdjRound(local_base[i], stage.op,
                                                   site_context);
          },
          &counts, &round_cancel);
      double elapsed = timer.ElapsedSeconds();
      {
        std::lock_guard<std::mutex> lock(mu);
        rs.site_retries += counts.retries;
        rs.site_failovers += counts.failovers;
      }
      if (!attempt_result.ok()) {
        if (options_.on_site_loss != OnSiteLoss::kDegrade ||
            attempt_result.status().IsDeadlineExceeded()) {
          return attempt_result.status();
        }
        std::lock_guard<std::mutex> lock(mu);
        lost[i] = 1;
        st.lost_sites.push_back(sites_[i].id());
        outputs[i] = Table();
        local_base[i] = Table();
        return Status::OK();
      }
      Table result = std::move(*attempt_result);
      if (eval_context.compute_rng) {
        SKALLA_ASSIGN_OR_RETURN(result, ApplyRngFilter(result));
      }
      SKALLA_HISTOGRAM_RECORD("skalla.site.eval_us", elapsed * 1e6);
      std::lock_guard<std::mutex> lock(mu);
      rs.site_time_max = std::max(rs.site_time_max, elapsed);
      rs.site_time_sum += elapsed;
      profiles[i].site_id = sites_[i].id();
      profiles[i].wall_us = static_cast<uint64_t>(elapsed * 1e6);
      profiles[i].eval_us = profiles[i].wall_us;
      profiles[i].morsel_us =
          eval_profile.morsel_us.load(std::memory_order_relaxed);
      profiles[i].rows_scanned =
          eval_profile.rows_scanned.load(std::memory_order_relaxed);
      profiles[i].rows_matched =
          eval_profile.rows_matched.load(std::memory_order_relaxed);
      profiles[i].index_hits =
          eval_profile.index_hits.load(std::memory_order_relaxed);
      profiles[i].engines_used =
          eval_profile.engines_used.load(std::memory_order_relaxed);
      profiles[i].result_rows = result.num_rows();
      outputs[i] = std::move(result);
      return Status::OK();
    });
    SKALLA_RETURN_NOT_OK(status);
    for (size_t i = 0; i < n; ++i) rs.sites_lost += lost[i];

    if (stage.sync_after) {
      Stopwatch coord_timer;
      SKALLA_RETURN_NOT_OK(coordinator.BeginRound(
          stage.op, *upstream, detail_schema, /*from_scratch=*/!have_global));
      double begin_time = coord_timer.ElapsedSeconds();
      rs.coord_time += begin_time;
      for (size_t i = 0; i < n; ++i) {
        if (!active[i] || lost[i]) continue;
        uint64_t bytes_before = rs.bytes_to_coord;
        SKALLA_ASSIGN_OR_RETURN(
            Table received,
            Ship(&network_, outputs[i], sites_[i].id(), kCoordinatorId,
                 options_.ship_block_rows, &rs.bytes_to_coord,
                 &rs.tuples_to_coord, &rs.comm_time));
        profiles[i].bytes_out = rs.bytes_to_coord - bytes_before;
        Stopwatch merge_timer;
        SKALLA_RETURN_NOT_OK(coordinator.MergeFragment(received));
        rs.coord_time += merge_timer.ElapsedSeconds();
        outputs[i] = Table();
        local_base[i] = Table();
      }
      Stopwatch finalize_timer;
      SKALLA_RETURN_NOT_OK(coordinator.FinalizeRound());
      rs.coord_time += finalize_timer.ElapsedSeconds();
      have_global = true;
    } else {
      for (size_t i = 0; i < n; ++i) {
        local_base[i] = std::move(outputs[i]);
      }
      have_global = false;
    }

    SKALLA_ASSIGN_OR_RETURN(
        upstream, stage.op.OutputSchema(*upstream, detail_schema));
    for (size_t i = 0; i < n; ++i) {
      if (active[i] && !lost[i]) {
        st.engines_used |= profiles[i].engines_used;
        rs.site_profiles.push_back(profiles[i]);
      }
    }
    SKALLA_COUNTER_ADD("skalla.round.bytes_to_sites", rs.bytes_to_sites);
    SKALLA_COUNTER_ADD("skalla.round.bytes_to_coord", rs.bytes_to_coord);
    SKALLA_COUNTER_ADD("skalla.round.tuples_to_sites", rs.tuples_to_sites);
    SKALLA_COUNTER_ADD("skalla.round.tuples_to_coord", rs.tuples_to_coord);
    st.rounds.push_back(std::move(rs));
  }

  if (!have_global) {
    return Status::Internal("plan finished without a global result");
  }
  // Losses are recorded in completion order, which parallel_sites makes
  // nondeterministic; report them sorted.
  std::sort(st.lost_sites.begin(), st.lost_sites.end());
  return coordinator.result();
}

}  // namespace skalla
