// DistributedExecutor: Alg. GMDJDistribEval of the paper. Executes a
// DistributedPlan against a set of Skalla sites and a coordinator over a
// simulated network, producing the query result plus detailed per-round
// cost accounting (bytes, tuples, site/coordinator compute time, modeled
// communication time). Implements the unified skalla::Executor interface
// (dist/executor.h).

#ifndef SKALLA_DIST_EXEC_H_
#define SKALLA_DIST_EXEC_H_

#include <functional>
#include <map>
#include <vector>

#include "common/result.h"
#include "dist/coordinator.h"
#include "dist/executor.h"
#include "dist/plan.h"
#include "dist/site.h"
#include "net/network.h"

namespace skalla {

/// Synchronous star executor. Owns the sites and the simulated network.
class DistributedExecutor : public Executor {
 public:
  explicit DistributedExecutor(std::vector<Site> sites,
                               NetworkConfig net_config = {},
                               ExecutorOptions options = {});

  using Executor::Execute;
  Result<Table> Execute(const DistributedPlan& plan, const QueryRun& run,
                        ExecStats* stats) override;

  /// Registers `replica` as another host of partition `partition`'s data
  /// (same catalog contents, its own site id). When the primary exhausts
  /// its retries, rounds fail over to replicas in registration order.
  void AddReplica(size_t partition, Site replica);

  const char* name() const override { return "star"; }
  size_t num_sites() const override { return sites_.size(); }
  const std::vector<Site>& sites() const { return sites_; }
  SimulatedNetwork& network() { return network_; }

 private:
  // Runs fn(site_index) for every site, sequentially or on the pool;
  // returns the first non-OK status.
  Status ForEachSite(const std::function<Status(size_t)>& fn);

  // Site ids of partition i's evaluation chain: primary, then replicas.
  std::vector<int> ReplicaIds(size_t i) const;
  // Replica r of partition i (r == 0 is the primary).
  Site& ReplicaSite(size_t i, size_t r);

  std::vector<Site> sites_;
  std::map<size_t, std::vector<Site>> replicas_;
  SimulatedNetwork network_;
  ExecutorOptions options_;
};

}  // namespace skalla

#endif  // SKALLA_DIST_EXEC_H_
