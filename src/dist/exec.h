// DistributedExecutor: Alg. GMDJDistribEval of the paper. Executes a
// DistributedPlan against a set of Skalla sites and a coordinator over a
// simulated network, producing the query result plus detailed per-round
// cost accounting (bytes, tuples, site/coordinator compute time, modeled
// communication time).

#ifndef SKALLA_DIST_EXEC_H_
#define SKALLA_DIST_EXEC_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "dist/coordinator.h"
#include "dist/fault.h"
#include "dist/plan.h"
#include "dist/site.h"
#include "net/network.h"

namespace skalla {

/// Cost accounting for one round (base stage or one GMDJ stage).
struct RoundStats {
  std::string label;
  bool synchronized = false;

  uint64_t bytes_to_sites = 0;
  uint64_t bytes_to_coord = 0;
  uint64_t tuples_to_sites = 0;
  uint64_t tuples_to_coord = 0;

  /// Sites that sat this round out: distribution-aware analysis proved
  /// they hold no group that could match (the paper's S_MD ⊂ S_B case).
  size_t sites_skipped = 0;

  /// Site-round attempts that failed and were retried.
  size_t site_retries = 0;

  /// Site compute: max over sites (parallel response time) and total work.
  double site_time_max = 0;
  double site_time_sum = 0;
  /// Coordinator compute (filtering, merging, finalizing).
  double coord_time = 0;
  /// Modeled communication time (coordinator link serialized).
  double comm_time = 0;
  /// Real elapsed duration of the round (only the AsyncExecutor fills
  /// this in; it reflects actual site/merge overlap).
  double wall_time = 0;

  /// Contribution of this round to plan response time.
  double ResponseTime() const {
    return comm_time + site_time_max + coord_time;
  }
};

/// Cost accounting for a whole plan execution.
struct ExecStats {
  std::vector<RoundStats> rounds;

  uint64_t TotalBytes() const;
  uint64_t TotalBytesToSites() const;
  uint64_t TotalBytesToCoord() const;
  uint64_t TotalTuplesTransferred() const;
  double TotalSiteTimeMax() const;
  double TotalSiteTimeSum() const;
  double TotalCoordTime() const;
  double TotalCommTime() const;

  /// Modeled end-to-end response time: per round, communication plus the
  /// slowest site plus coordinator work.
  double ResponseTime() const;

  /// Number of synchronization rounds performed.
  size_t NumSyncRounds() const;

  std::string ToString() const;
};

struct ExecutorOptions {
  /// Evaluate sites concurrently on a thread pool. Off by default: byte
  /// counts are identical either way, and sequential execution gives
  /// stable compute timings.
  bool parallel_sites = false;
  /// Worker count when parallel_sites is set; 0 = one per site.
  size_t num_threads = 0;

  /// Row blocking (one of the classical distributed optimizations the
  /// paper notes carries over, Sect. 4): tables ship in blocks of at most
  /// this many rows, each block its own message, merged incrementally as
  /// it arrives. Bounds coordinator buffering at the cost of per-message
  /// latency and repeated headers. 0 = one message per table.
  size_t ship_block_rows = 0;

  /// Sites keep columnar copies of their partitions and use the
  /// vectorized evaluator for pure-equality GMDJ rounds.
  bool columnar_sites = false;

  /// Fault hook (dist/fault.h); nullptr = no injection. Not owned.
  FaultInjector* fault_injector = nullptr;

  /// How many times a failed site round is re-attempted before the
  /// failure surfaces. Recovery re-runs the round against the site's
  /// durable local partition.
  size_t max_site_retries = 0;
};

/// Executes distributed plans. Owns the sites and the simulated network.
class DistributedExecutor {
 public:
  explicit DistributedExecutor(std::vector<Site> sites,
                               NetworkConfig net_config = {},
                               ExecutorOptions options = {});

  /// Runs the plan; returns the final base-result structure. `stats` (may
  /// be nullptr) receives per-round accounting.
  Result<Table> Execute(const DistributedPlan& plan, ExecStats* stats);

  size_t num_sites() const { return sites_.size(); }
  const std::vector<Site>& sites() const { return sites_; }
  SimulatedNetwork& network() { return network_; }

 private:
  // Runs fn(site_index) for every site, sequentially or on the pool;
  // returns the first non-OK status.
  Status ForEachSite(const std::function<Status(size_t)>& fn);

  std::vector<Site> sites_;
  SimulatedNetwork network_;
  ExecutorOptions options_;
};

}  // namespace skalla

#endif  // SKALLA_DIST_EXEC_H_
