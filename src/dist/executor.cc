#include "dist/executor.h"

#include <thread>

#include "common/macros.h"
#include "common/string_util.h"
#include "obs/obs.h"
#include "relalg/operators.h"

namespace skalla {

size_t ResolveCoordinatorShards(size_t configured) {
  if (configured != 0) return configured;
  size_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

EvalContext StageEvalContext(const ExecutorOptions& options,
                             const PlanStage& stage) {
  EvalContext context;
  context.sub_aggregates = stage.sync_after;
  context.compute_rng = stage.sync_after && stage.indep_group_reduction;
  context.eval_threads = options.eval_threads;
  return context;
}

uint64_t ExecStats::TotalBytes() const {
  return TotalBytesToSites() + TotalBytesToCoord();
}
uint64_t ExecStats::TotalBytesToSites() const {
  uint64_t n = 0;
  for (const RoundStats& r : rounds) n += r.bytes_to_sites;
  return n;
}
uint64_t ExecStats::TotalBytesToCoord() const {
  uint64_t n = 0;
  for (const RoundStats& r : rounds) n += r.bytes_to_coord;
  return n;
}
uint64_t ExecStats::TotalTuplesTransferred() const {
  uint64_t n = 0;
  for (const RoundStats& r : rounds) {
    n += r.tuples_to_sites + r.tuples_to_coord;
  }
  return n;
}
uint64_t ExecStats::RootBytes() const {
  uint64_t n = 0;
  for (const RoundStats& r : rounds) n += r.root_bytes;
  return n;
}
double ExecStats::TotalSiteTimeMax() const {
  double t = 0;
  for (const RoundStats& r : rounds) t += r.site_time_max;
  return t;
}
double ExecStats::TotalSiteTimeSum() const {
  double t = 0;
  for (const RoundStats& r : rounds) t += r.site_time_sum;
  return t;
}
double ExecStats::TotalCoordTime() const {
  double t = 0;
  for (const RoundStats& r : rounds) t += r.coord_time;
  return t;
}
double ExecStats::TotalCommTime() const {
  double t = 0;
  for (const RoundStats& r : rounds) t += r.comm_time;
  return t;
}
double ExecStats::ResponseTime() const {
  double t = 0;
  for (const RoundStats& r : rounds) t += r.ResponseTime();
  return t;
}
size_t ExecStats::NumSyncRounds() const {
  size_t n = 0;
  for (const RoundStats& r : rounds) {
    if (r.synchronized) ++n;
  }
  return n;
}

std::string ExecStats::ToString() const {
  std::string out = StrPrintf(
      "%-8s %5s %12s %12s %10s %10s %10s %10s\n", "round", "sync",
      "B->sites", "B->coord", "site_max", "coord", "comm", "resp");
  for (const RoundStats& r : rounds) {
    out += StrPrintf("%-8s %5s %12llu %12llu %9.3fms %9.3fms %9.3fms %9.3fms\n",
                     r.label.c_str(), r.synchronized ? "yes" : "no",
                     static_cast<unsigned long long>(r.bytes_to_sites),
                     static_cast<unsigned long long>(r.bytes_to_coord),
                     r.site_time_max * 1e3, r.coord_time * 1e3,
                     r.comm_time * 1e3, r.ResponseTime() * 1e3);
  }
  out += StrPrintf(
      "total: %llu bytes, %llu tuples, response %.3f ms (%zu sync rounds)\n",
      static_cast<unsigned long long>(TotalBytes()),
      static_cast<unsigned long long>(TotalTuplesTransferred()),
      ResponseTime() * 1e3, NumSyncRounds());
  return out;
}

Result<Table> ExecuteSiteRound(const ExecutorOptions& options, int site_id,
                               const std::string& round,
                               const std::function<Result<Table>()>& attempt,
                               size_t* retries_out) {
  Result<Table> result = Status::Internal("unset");
  for (size_t tries = 0;; ++tries) {
    Status injected = options.fault_injector == nullptr
                          ? Status::OK()
                          : options.fault_injector->BeforeSiteRound(site_id,
                                                                    round);
    result = injected.ok() ? attempt() : Result<Table>(injected);
    if (result.ok() || tries >= options.max_site_retries) break;
    if (retries_out != nullptr) ++*retries_out;
    SKALLA_COUNTER_ADD("skalla.net.retries", 1);
  }
  return result;
}

Result<Table> FilterBaseRows(const Table& table, const ExprPtr& predicate) {
  SKALLA_ASSIGN_OR_RETURN(ExprPtr bound,
                          predicate->Bind(table.schema().get(), nullptr));
  Table out(table.schema());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    if (bound->EvalBool(&table.row(r), nullptr)) {
      out.AppendUnchecked(table.row(r));
    }
  }
  return out;
}

Result<Table> ApplyRngFilter(const Table& h) {
  int rng_idx = h.schema()->IndexOf(kRngCountColumn);
  if (rng_idx < 0) {
    return Status::Internal("partial result lacks __rng column");
  }
  size_t rng = static_cast<size_t>(rng_idx);
  std::vector<size_t> keep;
  keep.reserve(h.num_columns() - 1);
  for (size_t c = 0; c < h.num_columns(); ++c) {
    if (c != rng) keep.push_back(c);
  }
  Table out(h.schema()->Project(keep));
  for (size_t r = 0; r < h.num_rows(); ++r) {
    const Value& flag = h.at(r, rng);
    if (!flag.is_null() && flag.AsDouble() > 0) {
      out.AppendUnchecked(ProjectRow(h.row(r), keep));
    }
  }
  return out;
}

}  // namespace skalla
