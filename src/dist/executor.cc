#include "dist/executor.h"

#include <thread>

#include "common/macros.h"
#include "common/string_util.h"
#include "obs/obs.h"
#include "relalg/operators.h"

namespace skalla {

size_t ResolveCoordinatorShards(size_t configured) {
  if (configured != 0) return configured;
  size_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

EvalContext StageEvalContext(const ExecutorOptions& options,
                             const PlanStage& stage) {
  EvalContext context;
  context.sub_aggregates = stage.sync_after;
  context.compute_rng = stage.sync_after && stage.indep_group_reduction;
  context.eval_threads = options.eval_threads;
  context.engine = options.engine;
  return context;
}

EvalContext StageEvalContext(const ExecutorOptions& options,
                             const QueryRun& run, const PlanStage& stage) {
  EvalContext context = StageEvalContext(options, stage);
  if (run.eval_threads > 0) context.eval_threads = run.eval_threads;
  return context;
}

uint64_t ResolveQueryId(const QueryRun& run) {
  return run.query_id != 0 ? run.query_id : obs::NextQueryId();
}

uint64_t ExecStats::TotalBytes() const {
  return TotalBytesToSites() + TotalBytesToCoord();
}
uint64_t ExecStats::TotalBytesToSites() const {
  uint64_t n = 0;
  for (const RoundStats& r : rounds) n += r.bytes_to_sites;
  return n;
}
uint64_t ExecStats::TotalBytesToCoord() const {
  uint64_t n = 0;
  for (const RoundStats& r : rounds) n += r.bytes_to_coord;
  return n;
}
uint64_t ExecStats::TotalTuplesTransferred() const {
  uint64_t n = 0;
  for (const RoundStats& r : rounds) {
    n += r.tuples_to_sites + r.tuples_to_coord;
  }
  return n;
}
uint64_t ExecStats::TotalSiteFailovers() const {
  uint64_t n = 0;
  for (const RoundStats& r : rounds) n += r.site_failovers;
  return n;
}
uint64_t ExecStats::TotalSiteRetries() const {
  uint64_t n = 0;
  for (const RoundStats& r : rounds) n += r.site_retries;
  return n;
}
uint64_t ExecStats::RootBytes() const {
  uint64_t n = 0;
  for (const RoundStats& r : rounds) n += r.root_bytes;
  return n;
}
double ExecStats::TotalSiteTimeMax() const {
  double t = 0;
  for (const RoundStats& r : rounds) t += r.site_time_max;
  return t;
}
double ExecStats::TotalSiteTimeSum() const {
  double t = 0;
  for (const RoundStats& r : rounds) t += r.site_time_sum;
  return t;
}
double ExecStats::TotalCoordTime() const {
  double t = 0;
  for (const RoundStats& r : rounds) t += r.coord_time;
  return t;
}
double ExecStats::TotalCommTime() const {
  double t = 0;
  for (const RoundStats& r : rounds) t += r.comm_time;
  return t;
}
double ExecStats::ResponseTime() const {
  double t = 0;
  for (const RoundStats& r : rounds) t += r.ResponseTime();
  return t;
}
size_t ExecStats::NumSyncRounds() const {
  size_t n = 0;
  for (const RoundStats& r : rounds) {
    if (r.synchronized) ++n;
  }
  return n;
}

std::string ExecStats::ToString() const {
  std::string out = StrPrintf(
      "%-8s %5s %12s %12s %10s %10s %10s %10s\n", "round", "sync",
      "B->sites", "B->coord", "site_max", "coord", "comm", "resp");
  for (const RoundStats& r : rounds) {
    out += StrPrintf("%-8s %5s %12llu %12llu %9.3fms %9.3fms %9.3fms %9.3fms\n",
                     r.label.c_str(), r.synchronized ? "yes" : "no",
                     static_cast<unsigned long long>(r.bytes_to_sites),
                     static_cast<unsigned long long>(r.bytes_to_coord),
                     r.site_time_max * 1e3, r.coord_time * 1e3,
                     r.comm_time * 1e3, r.ResponseTime() * 1e3);
  }
  out += StrPrintf(
      "total: %llu bytes, %llu tuples, response %.3f ms (%zu sync rounds)\n",
      static_cast<unsigned long long>(TotalBytes()),
      static_cast<unsigned long long>(TotalTuplesTransferred()),
      ResponseTime() * 1e3, NumSyncRounds());
  if (TotalSiteRetries() > 0 || TotalSiteFailovers() > 0 ||
      !lost_sites.empty()) {
    out += StrPrintf("faults: %llu retries, %llu failovers",
                     static_cast<unsigned long long>(TotalSiteRetries()),
                     static_cast<unsigned long long>(TotalSiteFailovers()));
    if (!lost_sites.empty()) {
      out += ", lost sites [";
      for (size_t i = 0; i < lost_sites.size(); ++i) {
        out += StrPrintf(i == 0 ? "%d" : " %d", lost_sites[i]);
      }
      out += "] (result degraded to the surviving sites)";
    }
    out += "\n";
  }
  return out;
}

Result<Table> ExecuteSiteRound(const ExecutorOptions& options, int site_id,
                               const std::string& round,
                               const std::function<Result<Table>()>& attempt,
                               size_t* retries_out,
                               CancellationToken* cancel) {
  Result<Table> result = Status::Internal("unset");
  for (size_t tries = 0;; ++tries) {
    if (cancel != nullptr) {
      Status live = cancel->Check();
      if (!live.ok()) return live;
    }
    Status injected = options.fault_injector == nullptr
                          ? Status::OK()
                          : options.fault_injector->BeforeSiteRound(site_id,
                                                                    round);
    result = injected.ok() ? attempt() : Result<Table>(injected);
    if (options.fault_injector != nullptr) {
      // Response-path fault: the site computed, the answer was lost. The
      // result is discarded and the attempt counts as failed; re-running
      // the round is safe (rounds are idempotent against the durable
      // partition).
      Status after = options.fault_injector->AfterSiteRound(
          site_id, round, result.status());
      if (result.ok() && !after.ok()) result = after;
    }
    if (result.ok() || tries >= options.max_site_retries) break;
    // A deadline failure is not transient: the budget is as gone for the
    // retry as it was for the attempt.
    if (result.status().IsDeadlineExceeded()) break;
    if (retries_out != nullptr) ++*retries_out;
    SKALLA_COUNTER_ADD("skalla.net.retries", 1);
  }
  return result;
}

Result<Table> ExecuteSiteRoundReplicated(
    const ExecutorOptions& options, const std::vector<int>& replica_site_ids,
    const std::string& round,
    const std::function<Result<Table>(size_t)>& attempt,
    SiteRoundCounts* counts, CancellationToken* cancel) {
  Result<Table> result = Status::Internal("no replica attempted");
  for (size_t r = 0; r < replica_site_ids.size(); ++r) {
    if (r > 0) {
      if (counts != nullptr) ++counts->failovers;
      SKALLA_COUNTER_ADD("skalla.coord.failover", 1);
      SKALLA_TRACE_INSTANT_ATTRS(
          "coord.failover", "coord",
          {{"round", round},
           {"from", StrCat(replica_site_ids[r - 1])},
           {"to", StrCat(replica_site_ids[r])}});
    }
    result = ExecuteSiteRound(
        options, replica_site_ids[r], round, [&]() { return attempt(r); },
        counts == nullptr ? nullptr : &counts->retries, cancel);
    if (result.ok()) return result;
    if (result.status().IsDeadlineExceeded()) return result;
  }
  return result;
}

Status QueryDeadline::ArmRound(const std::string& round,
                               CancellationToken* token) const {
  if (external_ != nullptr) {
    // Chain the round token under the submission-level token so a
    // session Cancel stops this round's morsel loops; refuse to start
    // the round at all when the query is already cancelled.
    token->set_parent(external_);
    Status live = external_->Check();
    if (!live.ok()) return live;
  }
  int64_t query_left = RemainingQueryMs();
  if (query_left == 0) {
    return Status::DeadlineExceeded(
        StrCat("query deadline of ", query_ms_, " ms exceeded before round ",
               round));
  }
  uint64_t budget = 0;
  bool bounded = false;
  if (round_ms_ > 0) {
    budget = round_ms_;
    bounded = true;
  }
  if (query_left > 0 &&
      (!bounded || static_cast<uint64_t>(query_left) < budget)) {
    budget = static_cast<uint64_t>(query_left);
    bounded = true;
  }
  if (bounded) token->ArmDeadline(budget, StrCat("round ", round));
  return Status::OK();
}

int64_t QueryDeadline::RemainingQueryMs() const {
  if (query_ms_ == 0) return -1;
  double elapsed_ms = timer_.ElapsedSeconds() * 1e3;
  if (elapsed_ms >= static_cast<double>(query_ms_)) return 0;
  return static_cast<int64_t>(static_cast<double>(query_ms_) - elapsed_ms);
}

Result<Table> FilterBaseRows(const Table& table, const ExprPtr& predicate) {
  SKALLA_ASSIGN_OR_RETURN(ExprPtr bound,
                          predicate->Bind(table.schema().get(), nullptr));
  Table out(table.schema());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    if (bound->EvalBool(&table.row(r), nullptr)) {
      out.AppendUnchecked(table.row(r));
    }
  }
  return out;
}

Result<Table> ApplyRngFilter(const Table& h) {
  int rng_idx = h.schema()->IndexOf(kRngCountColumn);
  if (rng_idx < 0) {
    return Status::Internal("partial result lacks __rng column");
  }
  size_t rng = static_cast<size_t>(rng_idx);
  std::vector<size_t> keep;
  keep.reserve(h.num_columns() - 1);
  for (size_t c = 0; c < h.num_columns(); ++c) {
    if (c != rng) keep.push_back(c);
  }
  Table out(h.schema()->Project(keep));
  for (size_t r = 0; r < h.num_rows(); ++r) {
    const Value& flag = h.at(r, rng);
    if (!flag.is_null() && flag.AsDouble() > 0) {
      out.AppendUnchecked(ProjectRow(h.row(r), keep));
    }
  }
  return out;
}

}  // namespace skalla
