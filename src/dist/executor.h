// The unified executor API. Every engine — synchronous star
// (DistributedExecutor), pipelined (AsyncExecutor), multi-tier
// (TreeExecutor) — implements skalla::Executor, is configured through the
// one shared ExecutorOptions struct, and reports per-round accounting
// into the one shared ExecStats. Engines differ only in *how* they move
// fragments; results are bit-identical across all of them, and byte
// counts are identical wherever the accounting is defined the same way.
//
// See docs/EXECUTORS.md for the option-by-option semantics per engine.

#ifndef SKALLA_DIST_EXECUTOR_H_
#define SKALLA_DIST_EXECUTOR_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/stopwatch.h"
#include "core/cancellation.h"
#include "core/eval_context.h"
#include "dist/fault.h"
#include "dist/plan.h"
#include "storage/table.h"

namespace skalla {

/// What an engine does when every replica of a partition is lost (all
/// retries and failovers exhausted).
enum class OnSiteLoss {
  /// Surface the error; the query fails (default).
  kFail,
  /// Complete the query over the surviving sites. The answer is partial:
  /// the lost partition's rows never contribute. RoundStats::sites_lost
  /// and ExecStats::lost_sites report exactly what is missing so callers
  /// can tell exact answers from degraded ones.
  kDegrade,
};

/// Options shared by every executor. Each engine honors the subset that
/// is meaningful for it (documented per field and in docs/EXECUTORS.md);
/// none of the knobs changes query results or transfer byte counts.
struct ExecutorOptions {
  /// Evaluate sites concurrently on a thread pool. Off by default: byte
  /// counts are identical either way, and sequential execution gives
  /// stable compute timings. AsyncExecutor is inherently concurrent and
  /// ignores the flag; TreeExecutor evaluates sites sequentially (its
  /// cost model already charges the per-level maximum).
  bool parallel_sites = false;
  /// Worker count for site evaluation when it is concurrent
  /// (parallel_sites here, always in AsyncExecutor); 0 = one per site.
  size_t num_threads = 0;

  /// Row blocking (one of the classical distributed optimizations the
  /// paper notes carries over, Sect. 4): tables ship in blocks of at most
  /// this many rows, each block its own message, merged incrementally as
  /// it arrives. Bounds coordinator buffering at the cost of per-message
  /// latency and repeated headers. 0 = one message per table. Only the
  /// DistributedExecutor blocks shipments; the other engines send one
  /// message per fragment.
  size_t ship_block_rows = 0;

  /// Sites keep columnar copies of their partitions
  /// (Catalog::WarmColumnar), so engine-kAuto GMDJ rounds on resident
  /// partitions take the vectorized kernels over prebuilt typed arrays.
  /// Honored by all engines (caches are built lazily on first Execute).
  bool columnar_sites = false;

  /// Which GMDJ kernel sites evaluate rounds with
  /// (EvalContext::engine; routing policy in core/evaluate.h). Results
  /// are byte-identical across engines — this is a performance knob and
  /// a differential-testing lever. Honored by all engines through
  /// StageEvalContext; the rpc executor ships it to site servers in
  /// BeginPlan. ExecStats::engines_used reports what actually ran.
  EvalEngine engine = EvalEngine::kAuto;

  /// Fault hook (dist/fault.h); nullptr = no injection. Not owned.
  /// Honored by all engines.
  FaultInjector* fault_injector = nullptr;

  /// How many times a failed site round is re-attempted before the
  /// failure escalates (to a replica when one exists, else to the
  /// failure surfacing / degrading). Recovery re-runs the round against
  /// the site's durable local partition. Honored by all engines.
  size_t max_site_retries = 0;

  /// Escalation policy once a partition is lost (every replica
  /// exhausted its retries). Honored by all engines.
  OnSiteLoss on_site_loss = OnSiteLoss::kFail;

  /// Deadline for one round / the whole query, in milliseconds; 0 =
  /// unbounded. A fired deadline cancels in-flight site evaluation via
  /// the CancellationToken in EvalContext (morsel-granular, so the grace
  /// period is bounded) and surfaces as Status::DeadlineExceeded.
  /// Honored by all engines; the rpc executor additionally ships the
  /// remaining budget to site servers with each round request.
  uint64_t round_deadline_ms = 0;
  uint64_t query_deadline_ms = 0;

  /// Number of hash shards the coordinator's merge structures split
  /// into. Arriving fragments are split once by hash of the group-by key
  /// and merged shard-parallel on a thread pool; super-aggregation
  /// finalizes shard-parallel too. 1 (default) = the sequential merge;
  /// 0 = one shard per hardware thread. Results and transfer byte counts
  /// are identical for every value (sub-aggregate merging is associative
  /// and key-disjoint across shards). In TreeExecutor every tier's
  /// coordinator shards.
  size_t coordinator_shards = 1;

  /// Worker threads for intra-site morsel-parallel GMDJ evaluation
  /// (EvalContext::eval_threads at every site): 1 (default) = evaluate
  /// each site round on one thread, 0 = one worker per hardware thread.
  /// Honored by all engines through StageEvalContext — the rpc executor
  /// ships the value to site servers in BeginPlan. Results are
  /// byte-identical for every value (see core/eval_context.h).
  size_t eval_threads = 1;
};

/// Resolves the coordinator_shards option: 0 means one shard per
/// hardware thread (at least 1).
size_t ResolveCoordinatorShards(size_t configured);

/// Per-submission parameters, distinct from the per-engine
/// ExecutorOptions an executor is constructed around: ExecutorOptions
/// describe the engine (topology, shards, fault policy), a QueryRun
/// describes one query flowing through it. The scheduler submits many
/// QueryRuns against one executor concurrently; each carries its own
/// identity, cancellation hook, and budget carve-outs. Every field's
/// zero value means "inherit from ExecutorOptions / assign for me", so
/// `Execute(plan, {}, &stats)` behaves exactly like the classic
/// two-argument call.
struct QueryRun {
  /// Query id tagging spans/metrics and (rpc) every round frame.
  /// 0 = allocate a fresh id via obs::NextQueryId().
  uint64_t query_id = 0;

  /// External cancellation hook (not owned, may be nullptr): the engines
  /// chain every round token under it, so cancelling this token —
  /// QuerySession::Cancel does — stops in-flight evaluation at the next
  /// morsel boundary and surfaces as Status::Cancelled. Must outlive the
  /// Execute call.
  CancellationToken* cancellation = nullptr;

  /// Per-query deadline override in milliseconds; 0 = inherit
  /// options.query_deadline_ms. The scheduler carves per-query budgets
  /// out of a global limit here (queue wait included).
  uint64_t query_deadline_ms = 0;

  /// Per-query intra-site parallelism override; 0 = inherit
  /// options.eval_threads. Fair-share admission divides a global worker
  /// budget across the queries currently running.
  size_t eval_threads = 0;
};

/// The query id this run executes under: the run's own id when set, a
/// freshly allocated obs::NextQueryId() otherwise.
uint64_t ResolveQueryId(const QueryRun& run);

/// The EvalContext a site evaluates `stage` with: sub-aggregate mode when
/// the stage synchronizes, the __rng indicator when it additionally runs
/// the distribution-independent group reduction (Prop. 1), and intra-site
/// parallelism from options.eval_threads. Every engine derives its
/// per-round context here so evaluation semantics cannot drift apart.
EvalContext StageEvalContext(const ExecutorOptions& options,
                             const PlanStage& stage);

/// Same, with the run's per-query eval_threads override applied
/// (0 = inherit the options value).
EvalContext StageEvalContext(const ExecutorOptions& options,
                             const QueryRun& run, const PlanStage& stage);

/// What one site measured evaluating one round, as reported back to the
/// coordinator. The rpc engine fills every field from the RoundProfile
/// each kRoundResult carries; the in-process engines fill the fields the
/// site-side EvalProfile provides (wall/eval timings and data-plane
/// counts) and leave the transport-only ones zero.
struct SiteRoundProfile {
  int site_id = 0;
  uint64_t wall_us = 0;
  uint64_t eval_us = 0;
  uint64_t morsel_us = 0;
  uint64_t rows_scanned = 0;
  uint64_t rows_matched = 0;
  uint64_t index_hits = 0;
  uint64_t bytes_in = 0;   // table payload bytes shipped to the site
  uint64_t bytes_out = 0;  // table payload bytes shipped back
  uint64_t result_rows = 0;
  uint64_t duplicate_rounds = 0;  // idempotency-cache replays (rpc only)
  uint64_t chaos_faults = 0;      // transport faults injected (rpc only)
  /// Engines the site's evaluation actually used this round
  /// (kEngineBitRow / kEngineBitColumnar OR-ed; see
  /// EvalProfile::engines_used).
  uint8_t engines_used = 0;
};

/// Cost accounting for one round (base stage or one GMDJ stage).
struct RoundStats {
  std::string label;
  bool synchronized = false;

  uint64_t bytes_to_sites = 0;
  uint64_t bytes_to_coord = 0;
  uint64_t tuples_to_sites = 0;
  uint64_t tuples_to_coord = 0;

  /// Sites that sat this round out: distribution-aware analysis proved
  /// they hold no group that could match (the paper's S_MD ⊂ S_B case).
  size_t sites_skipped = 0;

  /// Site-round attempts that failed and were retried.
  size_t site_retries = 0;

  /// Rounds that exhausted their retries at one replica and moved to the
  /// next (each primary->replica or replica->replica hop counts once).
  size_t site_failovers = 0;

  /// Partitions whose data is missing from this round's answer
  /// (cumulative over the query so far; only ever non-zero under
  /// OnSiteLoss::kDegrade). Zero means the round is complete.
  size_t sites_lost = 0;

  /// Site compute: max over sites (parallel response time) and total work.
  double site_time_max = 0;
  double site_time_sum = 0;
  /// Coordinator compute (filtering, merging, finalizing). For the tree
  /// executor this is the per-level maximum summed over levels.
  double coord_time = 0;
  /// Modeled communication time (coordinator link serialized; per-level
  /// maxima for the tree executor).
  double comm_time = 0;
  /// Real elapsed duration of the round (only the AsyncExecutor fills
  /// this in; it reflects actual site/merge overlap).
  double wall_time = 0;

  /// Bytes over the root coordinator's own links. Only the TreeExecutor
  /// distinguishes the root from the rest of the topology; for it,
  /// root_bytes <= bytes_to_sites + bytes_to_coord, with equality in the
  /// degenerate star tree. The flat executors leave it 0.
  uint64_t root_bytes = 0;

  /// Per-site profiles for this round, ordered by site id. Filled by the
  /// star, async, and rpc engines; empty for the tree engine (its
  /// multi-tier topology has no per-site round boundary at the root).
  std::vector<SiteRoundProfile> site_profiles;

  /// Framed wire bytes this round moved (headers + payloads + CRCs).
  /// Only the rpc engine fills it; always >= bytes_to_sites +
  /// bytes_to_coord there, since the byte-accounting fields count table
  /// payload bytes only.
  uint64_t wire_bytes = 0;

  /// Contribution of this round to plan response time.
  double ResponseTime() const {
    return comm_time + site_time_max + coord_time;
  }
};

/// Cost accounting for a whole plan execution.
struct ExecStats {
  std::vector<RoundStats> rounds;

  /// Primary site ids of partitions that were lost and (under
  /// OnSiteLoss::kDegrade) excluded from the answer, sorted by id.
  /// Empty means the answer is exact.
  std::vector<int> lost_sites;

  /// Coordinator-assigned query id: every span and metric the execution
  /// recorded is tagged with it (obs::QueryIdScope). 0 = untagged.
  uint64_t query_id = 0;

  /// The answer was served from the coordinator's SubAggregateCache
  /// (serve/cache.h): no evaluation rounds ran, `rounds` is empty, and
  /// no bytes moved. Only the serving layer ever sets this.
  bool from_cache = false;

  /// GMDJ kernels used across every site round of the execution
  /// (kEngineBitRow / kEngineBitColumnar OR-ed over all
  /// SiteRoundProfile::engines_used; EngineSetToString renders it).
  /// EXPLAIN ANALYZE prints it per site and in the totals line.
  uint8_t engines_used = 0;

  /// Rpc engine only: framed wire bytes this execution moved, measured
  /// from after Connect (the once-per-session hello/catalog traffic is
  /// excluded); setup_wire_bytes is the non-round share — BeginPlan and
  /// its acks. Zero elsewhere.
  uint64_t total_wire_bytes = 0;
  uint64_t setup_wire_bytes = 0;

  /// Replica failovers performed across all rounds.
  uint64_t TotalSiteFailovers() const;
  /// Site-round retry attempts across all rounds.
  uint64_t TotalSiteRetries() const;
  /// True when no partition's data is missing from the answer.
  bool complete() const { return lost_sites.empty(); }

  uint64_t TotalBytes() const;
  uint64_t TotalBytesToSites() const;
  uint64_t TotalBytesToCoord() const;
  uint64_t TotalTuplesTransferred() const;
  /// Tree executor only: bytes over the root's own links (its star-vs-tree
  /// bottleneck figure). Zero for the flat executors.
  uint64_t RootBytes() const;
  double TotalSiteTimeMax() const;
  double TotalSiteTimeSum() const;
  double TotalCoordTime() const;
  double TotalCommTime() const;

  /// Modeled end-to-end response time: per round, communication plus the
  /// slowest site plus coordinator work.
  double ResponseTime() const;

  /// Number of synchronization rounds performed.
  size_t NumSyncRounds() const;

  std::string ToString() const;
};

/// The one interface every engine implements. Call sites that do not care
/// about engine-specific accessors (the tree shape, the network) should
/// depend on this, not on a concrete executor.
class Executor {
 public:
  virtual ~Executor() = default;

  /// Runs the plan under the per-submission parameters in `run`; returns
  /// the final base-result structure. `stats` (may be nullptr) receives
  /// per-round accounting. Engines are safe to call concurrently from
  /// multiple threads with distinct runs: per-query state lives on the
  /// Execute stack, and the shared site pool serializes per-site rounds
  /// internally (Site round locks in-process, per-connection locks over
  /// rpc).
  virtual Result<Table> Execute(const DistributedPlan& plan,
                                const QueryRun& run, ExecStats* stats) = 0;

  /// Classic single-query entry point: Execute with default QueryRun.
  Result<Table> Execute(const DistributedPlan& plan, ExecStats* stats) {
    return Execute(plan, QueryRun{}, stats);
  }

  /// Engine name, for logs and test labels.
  virtual const char* name() const = 0;

  virtual size_t num_sites() const = 0;
};

/// Shared retry policy: runs `attempt` for site `site_id` in round
/// `round`, consulting options.fault_injector before each try (and after
/// each, via AfterSiteRound — a non-OK response fault discards a
/// successful attempt's result) and re-attempting up to
/// options.max_site_retries times. Adds the number of retries performed
/// to *retries_out (may be nullptr). `cancel` (may be nullptr) is
/// checked between attempts; a latched cancellation — typically a fired
/// deadline — stops retrying immediately, as does an attempt failing
/// with kDeadlineExceeded (deadlines are not transient). Thread-safe as
/// long as the injector is (the FaultInjector contract).
Result<Table> ExecuteSiteRound(const ExecutorOptions& options, int site_id,
                               const std::string& round,
                               const std::function<Result<Table>()>& attempt,
                               size_t* retries_out,
                               CancellationToken* cancel = nullptr);

/// Per-site-round retry/failover accounting, filled by
/// ExecuteSiteRoundReplicated (single-writer; the caller folds it into
/// RoundStats under its own locking discipline).
struct SiteRoundCounts {
  size_t retries = 0;
  size_t failovers = 0;
};

/// The full escalation ladder for one partition's round: run the retry
/// policy at the primary (replica 0); when it exhausts its budget, fail
/// over to the next replica and repeat. `replica_site_ids[r]` is the
/// site id of replica r (index 0 = primary) — each replica is consulted
/// in the fault injector under its *own* id, so a primary's permanent
/// failure does not condemn its replicas. `attempt(r)` evaluates the
/// round at replica r; because every replica holds the same partition
/// and the round runs under the same EvalContext, a failed-over round's
/// result is byte-identical to the primary's. Deadline failures do not
/// fail over (the budget is gone everywhere). Returns the last replica's
/// error when all are exhausted.
Result<Table> ExecuteSiteRoundReplicated(
    const ExecutorOptions& options, const std::vector<int>& replica_site_ids,
    const std::string& round,
    const std::function<Result<Table>(size_t)>& attempt,
    SiteRoundCounts* counts, CancellationToken* cancel = nullptr);

/// Per-query deadline bookkeeping shared by every engine: one instance
/// per Execute() call; ArmRound arms a round's CancellationToken with
/// the tighter of round_deadline_ms and the remaining query budget, or
/// returns DeadlineExceeded outright when the query budget is already
/// spent. With neither deadline configured the token stays unarmed
/// (Check() is always OK), so the plumbing costs nothing.
class QueryDeadline {
 public:
  explicit QueryDeadline(const ExecutorOptions& options)
      : round_ms_(options.round_deadline_ms),
        query_ms_(options.query_deadline_ms) {}

  /// Per-submission form: the run's query_deadline_ms overrides the
  /// engine default when non-zero, and the run's external cancellation
  /// token (when present) is chained under every round token ArmRound
  /// arms — so QuerySession::Cancel propagates into morsel loops through
  /// the same polling the deadlines use.
  QueryDeadline(const ExecutorOptions& options, const QueryRun& run)
      : round_ms_(options.round_deadline_ms),
        query_ms_(run.query_deadline_ms > 0 ? run.query_deadline_ms
                                            : options.query_deadline_ms),
        external_(run.cancellation) {}

  Status ArmRound(const std::string& round, CancellationToken* token) const;

  /// Milliseconds of query budget left: 0 = spent, negative = unbounded.
  int64_t RemainingQueryMs() const;

 private:
  uint64_t round_ms_;
  uint64_t query_ms_;
  CancellationToken* external_ = nullptr;  // not owned, may be nullptr
  Stopwatch timer_;
};

/// Rows of `table` satisfying `predicate`, a base-side expression (the
/// coordinator's distribution-aware reduction filter, Theorem 4).
Result<Table> FilterBaseRows(const Table& table, const ExprPtr& predicate);

/// Drops rows whose `__rng` indicator is 0 and projects the indicator
/// column away (Prop. 1 site-side group reduction). Shared by every
/// engine and by the rpc site service, so the shipped bytes agree.
Result<Table> ApplyRngFilter(const Table& h);

}  // namespace skalla

#endif  // SKALLA_DIST_EXECUTOR_H_
