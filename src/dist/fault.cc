#include "dist/fault.h"

#include "common/string_util.h"
#include "obs/obs.h"

namespace skalla {

Status TransientFaultInjector::BeforeSiteRound(int site,
                                               const std::string& round) {
  int attempt;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = attempts_.emplace(std::make_pair(site, round), 0).first;
    attempt = it->second++;
    // This attempt is past the fault budget and will pass: the pair has
    // recovered, its bookkeeping is done. Dropping the entry bounds the
    // map by the number of concurrently failing pairs instead of every
    // (site, round) ever seen.
    if (attempt >= failures_) attempts_.erase(it);
  }
  if (attempt < failures_) {
    injected_.fetch_add(1);
    SKALLA_TRACE_INSTANT_ATTRS("fault.injected", "fault",
                               {{"site", StrCat(site)},
                                {"round", round},
                                {"kind", "transient"}});
    SKALLA_COUNTER_ADD("skalla.fault.injected", 1);
    return Status::IOError(StrCat("injected transient failure at site ",
                                  site, " round ", round, " (attempt ",
                                  attempt + 1, ")"));
  }
  return Status::OK();
}

size_t TransientFaultInjector::tracked_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return attempts_.size();
}

Status PermanentSiteFailure::BeforeSiteRound(int site,
                                             const std::string& round) {
  if (site == site_) {
    SKALLA_TRACE_INSTANT_ATTRS("fault.injected", "fault",
                               {{"site", StrCat(site)},
                                {"round", round},
                                {"kind", "permanent"}});
    SKALLA_COUNTER_ADD("skalla.fault.injected", 1);
    return Status::IOError(
        StrCat("site ", site, " is down (round ", round, ")"));
  }
  return Status::OK();
}

namespace {

// splitmix64 finalizer: decisions must be a pure function of the chaos
// coordinates, so the schedule replays exactly from the seed.
uint64_t MixChaos(uint64_t h) {
  h += 0x9E3779B97F4A7C15ULL;
  h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ULL;
  h = (h ^ (h >> 27)) * 0x94D049BB133111EBULL;
  return h ^ (h >> 31);
}

double ChaosUnit(uint64_t seed, int site, const std::string& round, int phase,
                 int attempt) {
  uint64_t h = seed;
  h = MixChaos(h ^ static_cast<uint64_t>(site));
  for (char c : round) h = MixChaos(h ^ static_cast<uint64_t>(c));
  h = MixChaos(h ^ (static_cast<uint64_t>(phase) << 32 |
                    static_cast<uint64_t>(static_cast<uint32_t>(attempt))));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

Status ChaosInjector::MaybeInject(int site, const std::string& round,
                                  int phase, double probability) {
  for (int dead : config_.dead_sites) {
    if (dead == site && phase == 0) {
      injected_.fetch_add(1);
      SKALLA_COUNTER_ADD("skalla.fault.injected", 1);
      return Status::IOError(
          StrCat("chaos: site ", site, " is dead (round ", round, ")"));
    }
  }
  if (probability <= 0.0) return Status::OK();
  int attempt;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it =
        attempts_.emplace(std::make_tuple(site, round, phase), 0).first;
    attempt = it->second++;
    // Entries persist until Reset(): erasing on a passing attempt would
    // restart this phase's counter while the *other* phase keeps
    // faulting, replaying attempt 0's (deterministic) fault forever and
    // breaking the max_faults_per_site_round recovery guarantee. The map
    // is bounded by the distinct (site, round, phase) tuples touched.
  }
  if (attempt >= config_.max_faults_per_site_round) return Status::OK();
  if (ChaosUnit(config_.seed, site, round, phase, attempt) >= probability) {
    return Status::OK();
  }
  injected_.fetch_add(1);
  SKALLA_TRACE_INSTANT_ATTRS("fault.injected", "fault",
                             {{"site", StrCat(site)},
                              {"round", round},
                              {"kind", phase == 0 ? "chaos-request"
                                                  : "chaos-response"}});
  SKALLA_COUNTER_ADD("skalla.fault.injected", 1);
  return Status::IOError(StrCat("chaos: injected ",
                                phase == 0 ? "request" : "response",
                                " fault at site ", site, " round ", round,
                                " (attempt ", attempt + 1, ")"));
}

Status ChaosInjector::BeforeSiteRound(int site, const std::string& round) {
  return MaybeInject(site, round, /*phase=*/0, config_.before_fail_prob);
}

Status ChaosInjector::AfterSiteRound(int site, const std::string& round,
                                     const Status& status) {
  if (!status.ok()) return Status::OK();  // Attempt already failed.
  return MaybeInject(site, round, /*phase=*/1, config_.after_fail_prob);
}

void ChaosInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  attempts_.clear();
}

}  // namespace skalla
