#include "dist/fault.h"

#include "common/string_util.h"
#include "obs/obs.h"

namespace skalla {

Status TransientFaultInjector::BeforeSiteRound(int site,
                                               const std::string& round) {
  int attempt;
  {
    std::lock_guard<std::mutex> lock(mu_);
    attempt = attempts_[{site, round}]++;
  }
  if (attempt < failures_) {
    injected_.fetch_add(1);
    SKALLA_TRACE_INSTANT_ATTRS("fault.injected", "fault",
                               {{"site", StrCat(site)},
                                {"round", round},
                                {"kind", "transient"}});
    SKALLA_COUNTER_ADD("skalla.fault.injected", 1);
    return Status::IOError(StrCat("injected transient failure at site ",
                                  site, " round ", round, " (attempt ",
                                  attempt + 1, ")"));
  }
  return Status::OK();
}

Status PermanentSiteFailure::BeforeSiteRound(int site,
                                             const std::string& round) {
  if (site == site_) {
    SKALLA_TRACE_INSTANT_ATTRS("fault.injected", "fault",
                               {{"site", StrCat(site)},
                                {"round", round},
                                {"kind", "permanent"}});
    SKALLA_COUNTER_ADD("skalla.fault.injected", 1);
    return Status::IOError(
        StrCat("site ", site, " is down (round ", round, ")"));
  }
  return Status::OK();
}

}  // namespace skalla
