// Fault injection for the distributed executor: a chaos hook that makes
// site-round evaluations fail on demand, plus the retry policy knobs in
// ExecutorOptions that recover from such transient failures. A local
// warehouse's data survives a site-process crash (it is the durable copy
// adjacent to the collection point), so re-running the round at the
// recovered site is the natural recovery strategy.

#ifndef SKALLA_DIST_FAULT_H_
#define SKALLA_DIST_FAULT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>

#include "common/status.h"

namespace skalla {

/// Decides whether a site operation fails. Implementations must be
/// thread-safe: parallel executors call concurrently.
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;

  /// Called before site `site` evaluates round `round`. A non-OK status
  /// simulates a site failure for this attempt.
  virtual Status BeforeSiteRound(int site, const std::string& round) = 0;
};

/// Fails the first `failures` attempts of every (site, round) pair — the
/// classic transient-crash model: the site comes back and the retry
/// succeeds.
class TransientFaultInjector : public FaultInjector {
 public:
  explicit TransientFaultInjector(int failures = 1)
      : failures_(failures) {}

  Status BeforeSiteRound(int site, const std::string& round) override;

  /// Total failures injected so far.
  int64_t injected() const { return injected_.load(); }

 private:
  int failures_;
  std::atomic<int64_t> injected_{0};
  std::mutex mu_;
  std::map<std::pair<int, std::string>, int> attempts_;
};

/// Fails every attempt at one site — the permanent-loss model; execution
/// must surface the error once retries are exhausted.
class PermanentSiteFailure : public FaultInjector {
 public:
  explicit PermanentSiteFailure(int site) : site_(site) {}

  Status BeforeSiteRound(int site, const std::string& round) override;

 private:
  int site_;
};

}  // namespace skalla

#endif  // SKALLA_DIST_FAULT_H_
