// Fault injection for the distributed executor: chaos hooks that make
// site-round evaluations fail on demand, plus the retry policy knobs in
// ExecutorOptions that recover from such transient failures. A local
// warehouse's data survives a site-process crash (it is the durable copy
// adjacent to the collection point), so re-running the round at the
// recovered site is the natural recovery strategy; when a partition is
// replicated, the same round can instead fail over to a replica (see
// docs/FAULTS.md for the full retry -> failover -> degrade ladder).

#ifndef SKALLA_DIST_FAULT_H_
#define SKALLA_DIST_FAULT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/status.h"

namespace skalla {

/// Decides whether a site operation fails. Implementations must be
/// thread-safe: parallel executors call concurrently.
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;

  /// Called before site `site` evaluates round `round`. A non-OK status
  /// simulates a site failure for this attempt.
  virtual Status BeforeSiteRound(int site, const std::string& round) = 0;

  /// Called after every attempt with the attempt's outcome in `status`.
  /// Returning non-OK from a *successful* attempt simulates a lost
  /// response: the coordinator discards the site's result and the retry
  /// machinery re-runs the round (idempotent, like a re-sent rpc round).
  /// The default injects nothing.
  virtual Status AfterSiteRound(int site, const std::string& round,
                                const Status& status) {
    (void)site;
    (void)round;
    (void)status;
    return Status::OK();
  }
};

/// Fails the first `failures` attempts of every (site, round) pair — the
/// classic transient-crash model: the site comes back and the retry
/// succeeds. The (site, round) bookkeeping entry is dropped on the
/// attempt that passes, so long-lived injectors do not grow without
/// bound across rounds.
class TransientFaultInjector : public FaultInjector {
 public:
  explicit TransientFaultInjector(int failures = 1)
      : failures_(failures) {}

  Status BeforeSiteRound(int site, const std::string& round) override;

  /// Total failures injected so far.
  int64_t injected() const { return injected_.load(); }

  /// (site, round) pairs currently tracked — zero once every started
  /// pair has recovered (regression guard for unbounded growth).
  size_t tracked_entries() const;

 private:
  int failures_;
  std::atomic<int64_t> injected_{0};
  mutable std::mutex mu_;
  std::map<std::pair<int, std::string>, int> attempts_;
};

/// Fails every attempt at one site — the permanent-loss model; execution
/// must fail over to a replica, degrade, or surface the error once
/// retries are exhausted.
class PermanentSiteFailure : public FaultInjector {
 public:
  explicit PermanentSiteFailure(int site) : site_(site) {}

  Status BeforeSiteRound(int site, const std::string& round) override;

 private:
  int site_;
};

/// Deterministic chaos: a seeded probability x fault-type schedule over
/// (site, round, attempt, phase) tuples. Every decision is a pure
/// function of the seed and those coordinates — never of wall-clock time
/// or thread interleaving — so a chaos run is exactly reproducible from
/// its seed even under parallel_sites / AsyncExecutor concurrency.
///
/// Fault classes:
///   - request faults  (BeforeSiteRound, probability before_fail_prob)
///   - response faults (AfterSiteRound on success, after_fail_prob) —
///     the site computed, the answer was lost
///   - dead sites: every attempt at a listed site fails permanently
///     (exercises failover / kDegrade)
///
/// At most `max_faults_per_site_round` faults are injected per
/// (site, round) pair, so any retry budget >= that bound always
/// recovers (dead sites excepted).
struct ChaosConfig {
  uint64_t seed = 0;
  double before_fail_prob = 0.0;
  double after_fail_prob = 0.0;
  int max_faults_per_site_round = 2;
  std::vector<int> dead_sites;
};

class ChaosInjector : public FaultInjector {
 public:
  explicit ChaosInjector(ChaosConfig config) : config_(std::move(config)) {}

  Status BeforeSiteRound(int site, const std::string& round) override;
  Status AfterSiteRound(int site, const std::string& round,
                        const Status& status) override;

  /// Total faults injected so far (dead-site failures included).
  int64_t injected() const { return injected_.load(); }

  /// Forgets per-(site, round) attempt history, so the next query replays
  /// the same schedule from the same seed.
  void Reset();

 private:
  Status MaybeInject(int site, const std::string& round, int phase,
                     double probability);

  ChaosConfig config_;
  std::atomic<int64_t> injected_{0};
  std::mutex mu_;
  // (site, round, phase) -> attempts seen; bounded by the distinct
  // tuples touched and cleared only by Reset(), so the per-phase fault
  // budget holds across a whole retry chain.
  std::map<std::tuple<int, std::string, int>, int> attempts_;
};

}  // namespace skalla

#endif  // SKALLA_DIST_FAULT_H_
