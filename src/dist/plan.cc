#include "dist/plan.h"

#include "common/string_util.h"

namespace skalla {

std::string PlanStage::ToString(size_t num_sites) const {
  std::string out = op.ToString();
  std::vector<std::string> flags;
  if (!sync_after) flags.push_back("no-sync");
  if (indep_group_reduction) flags.push_back("indep-GR");
  if (!site_base_filters.empty()) {
    size_t reduced = 0;
    for (const ExprPtr& f : site_base_filters) {
      if (f != nullptr) ++reduced;
    }
    flags.push_back(StrCat("aware-GR(", reduced, "/",
                           num_sites == 0 ? site_base_filters.size()
                                          : num_sites,
                           " sites)"));
  }
  if (!flags.empty()) out += StrCat(" [", Join(flags, ", "), "]");
  return out;
}

size_t DistributedPlan::NumSyncRounds() const {
  size_t rounds = sync_base ? 1 : 0;
  for (const PlanStage& stage : stages) {
    if (stage.sync_after) ++rounds;
  }
  return rounds;
}

std::string DistributedPlan::ToString(size_t num_sites) const {
  std::string out = StrCat("PLAN base: ", base.ToString(),
                           sync_base ? " [sync]" : " [no-sync]", "\n");
  for (size_t i = 0; i < stages.size(); ++i) {
    out += StrCat("  stage ", i + 1, ": ", stages[i].ToString(num_sites),
                  "\n");
  }
  out += StrCat("  sync rounds: ", NumSyncRounds(), "\n");
  return out;
}

}  // namespace skalla
