// DistributedPlan: the executable form of a GMDJ expression for the
// coordinator/sites architecture — a sequence of stages, each evaluating
// one GMDJ operator at the sites, with flags recording which of the
// paper's optimizations apply.
//
// Plans are produced by the Egil optimizer (opt/optimizer.h); a
// conservative plan (every optimization off) is always correct.

#ifndef SKALLA_DIST_PLAN_H_
#define SKALLA_DIST_PLAN_H_

#include <string>
#include <vector>

#include "core/gmdj.h"
#include "expr/expr.h"

namespace skalla {

/// One GMDJ stage of a plan.
struct PlanStage {
  GmdjOp op;

  /// Ship partial results to the coordinator and synchronize after this
  /// stage. When false (Theorem 5 / Corollary 1), sites carry their local
  /// base-result structures straight into the next stage. The final stage
  /// must always synchronize.
  bool sync_after = true;

  /// Distribution-independent group reduction (Prop. 1): sites ship only
  /// base tuples with |RNG| > 0. Only meaningful when sync_after is set.
  bool indep_group_reduction = false;

  /// Distribution-aware group reduction (Theorem 4): per-site predicates
  /// ¬ψ_i over the base-result structure; the coordinator sends site i
  /// only the tuples satisfying site_base_filters[i]. Empty: no reduction.
  /// A nullptr entry means "send everything" for that site.
  std::vector<ExprPtr> site_base_filters;

  std::string ToString(size_t num_sites) const;
};

/// A full plan: base-values stage plus GMDJ stages.
struct DistributedPlan {
  BaseQuery base;

  /// Synchronize the base-values relation at the coordinator before the
  /// first GMDJ stage. When false (Prop. 2), sites compute the base query
  /// locally and proceed without synchronization.
  bool sync_base = true;

  std::vector<PlanStage> stages;

  /// Key attributes K of the base-values relation (indexes the coordinator
  /// structure; θ_K equality in Theorem 1).
  std::vector<std::string> key_columns;

  /// Number of synchronization rounds this plan performs (the paper counts
  /// m + 1 rounds for an unoptimized m-operator expression).
  size_t NumSyncRounds() const;

  std::string ToString(size_t num_sites) const;
};

}  // namespace skalla

#endif  // SKALLA_DIST_PLAN_H_
