#include "dist/site.h"

#include "columnar/vector_eval.h"
#include "common/macros.h"

namespace skalla {

Result<Table> Site::EvalGmdjRound(const Table& base, const GmdjOp& op,
                                  const EvalContext& context) const {
  std::lock_guard<std::mutex> round(*round_mu_);
  if (context.use_index && !columnar_.empty() && ColumnarEligible(op)) {
    auto it = columnar_.find(op.detail_table);
    if (it != columnar_.end()) {
      return EvalGmdjColumnar(base, it->second, op, context);
    }
  }
  SKALLA_ASSIGN_OR_RETURN(const DataProvider* detail,
                          catalog_.GetProvider(op.detail_table));
  if (detail->ResidentTable() == nullptr && context.use_index &&
      ColumnarEligible(op)) {
    // Chunk-paged partitions are already columnar on disk; eligible
    // operators stream the typed pages directly.
    return EvalGmdjColumnar(base, *detail, op, context);
  }
  return EvalGmdj(base, *detail, op, context);
}

Status Site::EnableColumnarCache() {
  std::lock_guard<std::mutex> round(*round_mu_);
  if (!columnar_.empty()) return Status::OK();
  for (const std::string& name : catalog_.TableNames()) {
    // Chunk-backed relations stay paged: their chunks already hold typed
    // pages, and materializing a resident copy would defeat the budget.
    if (catalog_.IsChunkBacked(name)) continue;
    SKALLA_ASSIGN_OR_RETURN(const Table* table, catalog_.Get(name));
    SKALLA_ASSIGN_OR_RETURN(ColumnTable columnar,
                            ColumnTable::FromRowTable(*table));
    columnar_.emplace(name, std::move(columnar));
  }
  return Status::OK();
}

}  // namespace skalla
