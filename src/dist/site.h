// Site: a local data warehouse adjacent to a collection point. Each site
// holds a partition of every fact relation (its local Catalog) and is
// fully capable of evaluating GMDJ operators against its local data.

#ifndef SKALLA_DIST_SITE_H_
#define SKALLA_DIST_SITE_H_

#include <memory>
#include <mutex>
#include <string_view>
#include <utility>

#include "common/result.h"
#include "core/evaluate.h"
#include "core/gmdj.h"
#include "relalg/operators.h"
#include "storage/catalog.h"

namespace skalla {

/// One Skalla site. Stateless across rounds: the distributed executor
/// owns the per-site base-result structures.
///
/// Concurrency: a site evaluates one round at a time. Every entry point
/// that touches local data takes the site's round lock, so concurrent
/// queries sharing one site pool queue behind each other per site — the
/// in-process analogue of the RPC path's per-connection serialization.
/// The lock is shared across copies of a Site (executors copy sites out
/// of a warehouse), so the queue covers every handle to the partition.
class Site {
 public:
  Site(int id, Catalog catalog)
      : id_(id),
        catalog_(std::move(catalog)),
        round_mu_(std::make_shared<std::mutex>()) {}

  int id() const { return id_; }
  const Catalog& catalog() const { return catalog_; }

  /// Evaluates the base-values query against the local partition.
  Result<Table> ExecuteBaseQuery(const BaseQuery& query) const {
    std::lock_guard<std::mutex> round(*round_mu_);
    return query.Execute(catalog_);
  }

  /// Evaluates one GMDJ operator against the local detail partition for
  /// the given base-values relation. All engine routing lives in
  /// core::EvaluateGmdj — `context.engine` picks the kernel, and the
  /// engine actually used lands in `context.profile->engines_used`.
  Result<Table> EvalGmdjRound(const Table& base, const GmdjOp& op,
                              const EvalContext& context) const {
    std::lock_guard<std::mutex> round(*round_mu_);
    return EvaluateGmdj(base, op, catalog_, context);
  }

  /// The local partition of the named detail relation.
  Result<const Table*> DetailTable(std::string_view name) const {
    return catalog_.Get(name);
  }

  /// Precomputes columnar copies of every resident local relation
  /// (Catalog::WarmColumnar), so engine-kAuto GMDJ rounds take the
  /// vectorized kernels. Idempotent and safe to race: the first caller
  /// through the round lock builds, the rest see the built cache and
  /// return.
  Status EnableColumnarCache() {
    std::lock_guard<std::mutex> round(*round_mu_);
    return catalog_.WarmColumnar();
  }

  bool columnar_enabled() const {
    std::lock_guard<std::mutex> round(*round_mu_);
    return catalog_.columnar_warm();
  }

 private:
  int id_;
  Catalog catalog_;
  // Per-site round queue; shared_ptr so copies of this Site queue on the
  // same lock.
  std::shared_ptr<std::mutex> round_mu_;
};

}  // namespace skalla

#endif  // SKALLA_DIST_SITE_H_
