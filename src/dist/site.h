// Site: a local data warehouse adjacent to a collection point. Each site
// holds a partition of every fact relation (its local Catalog) and is
// fully capable of evaluating GMDJ operators against its local data.

#ifndef SKALLA_DIST_SITE_H_
#define SKALLA_DIST_SITE_H_

#include <string_view>
#include <unordered_map>
#include <utility>

#include "columnar/column_table.h"
#include "common/result.h"
#include "core/gmdj.h"
#include "core/local_eval.h"
#include "relalg/operators.h"
#include "storage/catalog.h"

namespace skalla {

/// One Skalla site. Stateless across rounds: the distributed executor
/// owns the per-site base-result structures.
class Site {
 public:
  Site(int id, Catalog catalog) : id_(id), catalog_(std::move(catalog)) {}

  int id() const { return id_; }
  const Catalog& catalog() const { return catalog_; }

  /// Evaluates the base-values query against the local partition.
  Result<Table> ExecuteBaseQuery(const BaseQuery& query) const {
    return query.Execute(catalog_);
  }

  /// Evaluates one GMDJ operator against the local detail partition for
  /// the given base-values relation. Routes to the vectorized evaluator
  /// when the columnar cache holds the detail table and the operator is
  /// eligible — except when `context.use_index` is false (the columnar
  /// kernel has no nested-loop mode, so oracle requests always take the
  /// row engine).
  Result<Table> EvalGmdjRound(const Table& base, const GmdjOp& op,
                              const EvalContext& context) const;

  /// The local partition of the named detail relation.
  Result<const Table*> DetailTable(std::string_view name) const {
    return catalog_.Get(name);
  }

  /// Precomputes columnar copies of every local relation. Subsequent
  /// GMDJ rounds whose conditions are pure equality conjunctions run on
  /// the vectorized evaluator instead of the row engine.
  Status EnableColumnarCache();

  bool columnar_enabled() const { return !columnar_.empty(); }

 private:
  int id_;
  Catalog catalog_;
  std::unordered_map<std::string, ColumnTable> columnar_;
};

}  // namespace skalla

#endif  // SKALLA_DIST_SITE_H_
