#include "dist/tree.h"

#include <algorithm>
#include <functional>
#include <memory>

#include "common/macros.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "dist/coordinator.h"
#include "net/serde.h"
#include "obs/trace.h"
#include "rpc/frame.h"

namespace skalla {

CoordinatorTree CoordinatorTree::Balanced(size_t num_sites, size_t fanout) {
  if (fanout < 2) fanout = 2;
  CoordinatorTree tree;
  if (num_sites == 0) {
    tree.nodes.push_back(Node{});
    return tree;
  }
  // Creates the node covering sites [lo, hi); returns its index.
  std::function<int(size_t, size_t, int, size_t)> build =
      [&](size_t lo, size_t hi, int parent, size_t depth) -> int {
    int idx = static_cast<int>(tree.nodes.size());
    tree.nodes.push_back(Node{parent, {}, {}, depth});
    size_t count = hi - lo;
    if (count <= fanout) {
      for (size_t s = lo; s < hi; ++s) {
        tree.nodes[static_cast<size_t>(idx)].child_sites.push_back(
            static_cast<int>(s));
      }
      return idx;
    }
    size_t base = count / fanout;
    size_t rem = count % fanout;
    size_t start = lo;
    for (size_t c = 0; c < fanout; ++c) {
      size_t len = base + (c < rem ? 1 : 0);
      if (len == 0) continue;
      if (len == 1) {
        tree.nodes[static_cast<size_t>(idx)].child_sites.push_back(
            static_cast<int>(start));
      } else {
        int child = build(start, start + len, idx, depth + 1);
        tree.nodes[static_cast<size_t>(idx)].child_nodes.push_back(child);
      }
      start += len;
    }
    return idx;
  };
  build(0, num_sites, -1, 0);
  return tree;
}

size_t CoordinatorTree::depth() const {
  size_t d = 0;
  for (const Node& node : nodes) d = std::max(d, node.depth);
  return d + 1;
}

std::string CoordinatorTree::ToString() const {
  std::string out;
  for (size_t i = 0; i < nodes.size(); ++i) {
    out += StrCat(std::string(nodes[i].depth * 2, ' '), "coord", i, ": ");
    std::vector<std::string> parts;
    for (int c : nodes[i].child_nodes) parts.push_back(StrCat("coord", c));
    for (int s : nodes[i].child_sites) parts.push_back(StrCat("site", s));
    out += Join(parts, ", ");
    out += "\n";
  }
  return out;
}

std::vector<int> CoordinatorTree::SitesUnder(int node) const {
  std::vector<int> sites;
  std::vector<int> stack{node};
  while (!stack.empty()) {
    int n = stack.back();
    stack.pop_back();
    const Node& current = nodes[static_cast<size_t>(n)];
    sites.insert(sites.end(), current.child_sites.begin(),
                 current.child_sites.end());
    stack.insert(stack.end(), current.child_nodes.begin(),
                 current.child_nodes.end());
  }
  return sites;
}

TreeExecutor::TreeExecutor(std::vector<Site> sites, CoordinatorTree tree,
                           NetworkConfig net_config, ExecutorOptions options)
    : sites_(std::move(sites)),
      tree_(std::move(tree)),
      network_(net_config),
      options_(options) {}

void TreeExecutor::AddReplica(size_t partition, Site replica) {
  replicas_[partition].push_back(std::move(replica));
}

std::vector<int> TreeExecutor::ReplicaIds(size_t i) const {
  std::vector<int> ids{sites_[i].id()};
  auto it = replicas_.find(i);
  if (it != replicas_.end()) {
    for (const Site& replica : it->second) ids.push_back(replica.id());
  }
  return ids;
}

Site& TreeExecutor::ReplicaSite(size_t i, size_t r) {
  return r == 0 ? sites_[i] : replicas_.at(i)[r - 1];
}

namespace {

// Per-round accounting shared by the recursive phases.
struct RoundAccum {
  explicit RoundAccum(size_t num_nodes)
      : link_time(num_nodes, 0.0), merge_time(num_nodes, 0.0) {}
  std::vector<double> link_time;   // Transfer time charged per node.
  std::vector<double> merge_time;  // Merge/filter compute per node.
  uint64_t root_bytes = 0;
  // Split by direction: down = toward the sites, up = toward the root.
  uint64_t bytes_down = 0;
  uint64_t bytes_up = 0;
  uint64_t tuples_down = 0;
  uint64_t tuples_up = 0;
};

// Network endpoint id of coordinator node i (sites use their own ids).
int NodeEndpoint(int node) { return -(node + 1); }

Result<Table> ShipOverLink(SimulatedNetwork* network, const Table& table,
                           int from, int to, int charged_node, bool downward,
                           RoundAccum* accum) {
  // Every hop travels inside the versioned wire frame (rpc/frame.h), the
  // same envelope the TCP transport uses. Byte accounting counts the
  // table payload only; the constant frame header is transport overhead.
  std::vector<uint8_t> payload;
  WriteTable(table, &payload);
  if (downward) {
    accum->bytes_down += payload.size();
    accum->tuples_down += table.num_rows();
  } else {
    accum->bytes_up += payload.size();
    accum->tuples_up += table.num_rows();
  }
  if (charged_node == 0) accum->root_bytes += payload.size();
  accum->link_time[static_cast<size_t>(charged_node)] +=
      network->Transfer(from, to, payload.size());
  std::vector<uint8_t> wire =
      rpc::EncodeFrame(rpc::MessageType::kTableResult, payload);
  SKALLA_ASSIGN_OR_RETURN(rpc::Frame frame, rpc::DecodeFrame(wire));
  return ReadTable(frame.payload.data(), frame.payload.size());
}

// Folds per-node values into a response-time contribution: levels are
// sequential, nodes within a level work in parallel.
double SumOfLevelMaxima(const CoordinatorTree& tree,
                        const std::vector<double>& per_node) {
  std::vector<double> level_max(tree.depth(), 0.0);
  for (size_t i = 0; i < tree.nodes.size(); ++i) {
    level_max[tree.nodes[i].depth] =
        std::max(level_max[tree.nodes[i].depth], per_node[i]);
  }
  double total = 0;
  for (double v : level_max) total += v;
  return total;
}

// Copies the direction-split accumulators into the round's stats.
void FoldAccum(const CoordinatorTree& tree, const RoundAccum& accum,
               RoundStats* rs) {
  rs->bytes_to_sites = accum.bytes_down;
  rs->bytes_to_coord = accum.bytes_up;
  rs->tuples_to_sites = accum.tuples_down;
  rs->tuples_to_coord = accum.tuples_up;
  rs->root_bytes = accum.root_bytes;
  rs->comm_time = SumOfLevelMaxima(tree, accum.link_time);
  rs->coord_time = SumOfLevelMaxima(tree, accum.merge_time);
}

}  // namespace

Result<Table> TreeExecutor::Execute(const DistributedPlan& plan,
                                    const QueryRun& run, ExecStats* stats) {
  if (sites_.empty()) {
    return Status::InvalidArgument("executor has no sites");
  }
  if (!plan.stages.empty() && !plan.stages.back().sync_after) {
    return Status::InvalidArgument(
        "the final plan stage must synchronize at the coordinator");
  }
  if (plan.stages.empty() && !plan.sync_base) {
    return Status::InvalidArgument(
        "a plan without GMDJ stages must synchronize its base query");
  }
  for (const PlanStage& stage : plan.stages) {
    if (!stage.site_base_filters.empty() &&
        stage.site_base_filters.size() != sites_.size()) {
      return Status::InvalidArgument("site filter count mismatch");
    }
  }
  for (const auto& [partition, replicas] : replicas_) {
    if (partition >= sites_.size()) {
      return Status::InvalidArgument(
          StrCat("replica registered for partition ", partition, " but only ",
                 sites_.size(), " partitions exist"));
    }
    (void)replicas;
  }
  if (options_.columnar_sites) {
    for (Site& site : sites_) {
      if (!site.columnar_enabled()) {
        SKALLA_RETURN_NOT_OK(site.EnableColumnarCache());
      }
    }
    for (auto& [partition, replicas] : replicas_) {
      (void)partition;
      for (Site& replica : replicas) {
        if (!replica.columnar_enabled()) {
          SKALLA_RETURN_NOT_OK(replica.EnableColumnarCache());
        }
      }
    }
  }

  ExecStats local_stats;
  ExecStats& st = stats == nullptr ? local_stats : *stats;
  st.rounds.clear();

  // Tree rounds aggregate through intermediate tiers, so there is no
  // per-site coordinator-visible round; site_profiles stay empty here.
  const uint64_t query_id = ResolveQueryId(run);
  obs::QueryIdScope query_scope(query_id);
  st.query_id = query_id;

  const size_t n = sites_.size();
  std::vector<Table> local_base(n);
  bool have_global = false;
  const QueryDeadline deadline(options_, run);
  // Partitions whose every replica is gone; only OnSiteLoss::kDegrade
  // sets these — the query completes over the survivors and the loss is
  // reported in st.lost_sites / RoundStats::sites_lost.
  std::vector<uint8_t> lost(n, 0);
  st.lost_sites.clear();

  // One merge pool shared by every tier's coordinator (safe: dispatch is
  // ThreadPool::ParallelFor, which never waits on other clients' tasks).
  const size_t shards = ResolveCoordinatorShards(options_.coordinator_shards);
  std::unique_ptr<ThreadPool> merge_pool;
  if (shards > 1) merge_pool = std::make_unique<ThreadPool>(shards - 1);
  Coordinator root(plan.key_columns, shards, merge_pool.get());

  SKALLA_ASSIGN_OR_RETURN(const DataProvider* probe,
                          sites_[0].catalog().GetProvider(plan.base.table));
  SKALLA_ASSIGN_OR_RETURN(SchemaPtr upstream,
                          plan.base.OutputSchema(*probe->schema()));

  // ---- Base round ---------------------------------------------------------
  {
    RoundStats rs;
    rs.label = "base";
    rs.synchronized = plan.sync_base;
    RoundAccum accum(tree_.nodes.size());
    CancellationToken round_cancel;
    SKALLA_RETURN_NOT_OK(deadline.ArmRound(rs.label, &round_cancel));
    for (size_t i = 0; i < n; ++i) {
      Stopwatch timer;
      SiteRoundCounts counts;
      Result<Table> b_i = ExecuteSiteRoundReplicated(
          options_, ReplicaIds(i), rs.label,
          [&](size_t r) {
            return ReplicaSite(i, r).ExecuteBaseQuery(plan.base);
          },
          &counts, &round_cancel);
      rs.site_retries += counts.retries;
      rs.site_failovers += counts.failovers;
      if (!b_i.ok()) {
        if (options_.on_site_loss != OnSiteLoss::kDegrade ||
            b_i.status().IsDeadlineExceeded()) {
          return b_i.status();
        }
        lost[i] = 1;
        st.lost_sites.push_back(sites_[i].id());
        local_base[i] = Table();
        continue;
      }
      local_base[i] = std::move(*b_i);
      double elapsed = timer.ElapsedSeconds();
      rs.site_time_max = std::max(rs.site_time_max, elapsed);
      rs.site_time_sum += elapsed;
    }
    for (size_t i = 0; i < n; ++i) rs.sites_lost += lost[i];
    if (plan.sync_base) {
      // Post-order distinct-union up the tree.
      std::function<Result<Table>(int)> merge_up =
          [&](int node) -> Result<Table> {
        Coordinator c({}, shards, merge_pool.get());
        SKALLA_RETURN_NOT_OK(c.InitBase(upstream));
        const CoordinatorTree::Node& current =
            tree_.nodes[static_cast<size_t>(node)];
        for (int s : current.child_sites) {
          if (lost[static_cast<size_t>(s)]) continue;
          SKALLA_ASSIGN_OR_RETURN(
              Table received,
              ShipOverLink(&network_, local_base[static_cast<size_t>(s)], s,
                           NodeEndpoint(node), node, /*downward=*/false,
                           &accum));
          Stopwatch timer;
          SKALLA_RETURN_NOT_OK(c.MergeBaseFragment(received));
          accum.merge_time[static_cast<size_t>(node)] +=
              timer.ElapsedSeconds();
          local_base[static_cast<size_t>(s)] = Table();
        }
        for (int child : current.child_nodes) {
          SKALLA_ASSIGN_OR_RETURN(Table fragment, merge_up(child));
          SKALLA_ASSIGN_OR_RETURN(
              Table received,
              ShipOverLink(&network_, fragment, NodeEndpoint(child),
                           NodeEndpoint(node), node, /*downward=*/false,
                           &accum));
          Stopwatch timer;
          SKALLA_RETURN_NOT_OK(c.MergeBaseFragment(received));
          accum.merge_time[static_cast<size_t>(node)] +=
              timer.ElapsedSeconds();
        }
        return c.TakeBaseFragment();
      };
      SKALLA_ASSIGN_OR_RETURN(Table global_base, merge_up(0));
      root.SetResult(std::move(global_base));
      have_global = true;
    }
    FoldAccum(tree_, accum, &rs);
    st.rounds.push_back(std::move(rs));
  }

  // ---- GMDJ stages ---------------------------------------------------------
  for (size_t k = 0; k < plan.stages.size(); ++k) {
    const PlanStage& stage = plan.stages[k];
    RoundStats rs;
    rs.label = StrCat("md", k + 1);
    rs.synchronized = stage.sync_after;
    RoundAccum accum(tree_.nodes.size());
    CancellationToken round_cancel;
    SKALLA_RETURN_NOT_OK(deadline.ArmRound(rs.label, &round_cancel));

    SKALLA_ASSIGN_OR_RETURN(const DataProvider* detail_probe,
                            sites_[0].catalog().GetProvider(stage.op.detail_table));
    const Schema& detail_schema = *detail_probe->schema();

    // Bind the per-site aware-GR filters once against the upstream schema.
    std::vector<ExprPtr> bound_filters(n);
    bool any_filter = false;
    if (!stage.site_base_filters.empty()) {
      for (size_t i = 0; i < n; ++i) {
        if (stage.site_base_filters[i] == nullptr) continue;
        SKALLA_ASSIGN_OR_RETURN(
            bound_filters[i],
            stage.site_base_filters[i]->Bind(upstream.get(), nullptr));
        any_filter = true;
      }
    }

    if (have_global) {
      // Relay the global structure down the tree, pruning each subtree
      // link to the rows some descendant site can match.
      std::function<Status(int, const Table&)> distribute =
          [&](int node, const Table& table) -> Status {
        const CoordinatorTree::Node& current =
            tree_.nodes[static_cast<size_t>(node)];
        for (int s : current.child_sites) {
          if (lost[static_cast<size_t>(s)]) continue;
          Table to_send(table.schema());
          {
            Stopwatch timer;
            if (any_filter && bound_filters[static_cast<size_t>(s)]) {
              const ExprPtr& f = bound_filters[static_cast<size_t>(s)];
              for (size_t r = 0; r < table.num_rows(); ++r) {
                if (f->EvalBool(&table.row(r), nullptr)) {
                  to_send.AppendUnchecked(table.row(r));
                }
              }
            } else {
              to_send = table;
            }
            accum.merge_time[static_cast<size_t>(node)] +=
                timer.ElapsedSeconds();
          }
          SKALLA_ASSIGN_OR_RETURN(
              local_base[static_cast<size_t>(s)],
              ShipOverLink(&network_, to_send, NodeEndpoint(node), s, node,
                           /*downward=*/true, &accum));
        }
        for (int child : current.child_nodes) {
          Table to_send(table.schema());
          {
            Stopwatch timer;
            if (any_filter) {
              std::vector<int> subtree = tree_.SitesUnder(child);
              bool all_unfiltered = false;
              for (int s : subtree) {
                if (bound_filters[static_cast<size_t>(s)] == nullptr) {
                  all_unfiltered = true;
                  break;
                }
              }
              if (all_unfiltered) {
                to_send = table;
              } else {
                for (size_t r = 0; r < table.num_rows(); ++r) {
                  for (int s : subtree) {
                    if (bound_filters[static_cast<size_t>(s)]->EvalBool(
                            &table.row(r), nullptr)) {
                      to_send.AppendUnchecked(table.row(r));
                      break;
                    }
                  }
                }
              }
            } else {
              to_send = table;
            }
            accum.merge_time[static_cast<size_t>(node)] +=
                timer.ElapsedSeconds();
          }
          SKALLA_ASSIGN_OR_RETURN(
              Table received,
              ShipOverLink(&network_, to_send, NodeEndpoint(node),
                           NodeEndpoint(child), node, /*downward=*/true,
                           &accum));
          SKALLA_RETURN_NOT_OK(distribute(child, received));
        }
        return Status::OK();
      };
      SKALLA_RETURN_NOT_OK(distribute(0, root.result()));
    }

    // Local evaluation at every site.
    EvalContext eval_context = StageEvalContext(options_, run, stage);
    eval_context.cancellation = &round_cancel;
    std::vector<Table> outputs(n);
    for (size_t i = 0; i < n; ++i) {
      if (lost[i]) continue;
      Stopwatch timer;
      SiteRoundCounts counts;
      Result<Table> attempt_result = ExecuteSiteRoundReplicated(
          options_, ReplicaIds(i), rs.label,
          [&](size_t r) {
            return ReplicaSite(i, r).EvalGmdjRound(local_base[i], stage.op,
                                                   eval_context);
          },
          &counts, &round_cancel);
      rs.site_retries += counts.retries;
      rs.site_failovers += counts.failovers;
      if (!attempt_result.ok()) {
        if (options_.on_site_loss != OnSiteLoss::kDegrade ||
            attempt_result.status().IsDeadlineExceeded()) {
          return attempt_result.status();
        }
        lost[i] = 1;
        st.lost_sites.push_back(sites_[i].id());
        local_base[i] = Table();
        continue;
      }
      Table result = std::move(*attempt_result);
      if (eval_context.compute_rng) {
        // Reuse the flat executor's filter semantics: keep |RNG| > 0 rows
        // and drop the indicator column.
        int rng_idx = result.schema()->IndexOf(kRngCountColumn);
        if (rng_idx < 0) return Status::Internal("missing __rng column");
        std::vector<size_t> keep;
        for (size_t c = 0; c < result.num_columns(); ++c) {
          if (c != static_cast<size_t>(rng_idx)) keep.push_back(c);
        }
        Table filtered(result.schema()->Project(keep));
        for (size_t r = 0; r < result.num_rows(); ++r) {
          const Value& flag = result.at(r, static_cast<size_t>(rng_idx));
          if (!flag.is_null() && flag.AsDouble() > 0) {
            filtered.AppendUnchecked(ProjectRow(result.row(r), keep));
          }
        }
        result = std::move(filtered);
      }
      double elapsed = timer.ElapsedSeconds();
      rs.site_time_max = std::max(rs.site_time_max, elapsed);
      rs.site_time_sum += elapsed;
      outputs[i] = std::move(result);
    }

    if (stage.sync_after) {
      // Post-order partial merge up the tree; the root finalizes.
      std::function<Result<Table>(int)> merge_up =
          [&](int node) -> Result<Table> {
        Coordinator c(plan.key_columns, shards, merge_pool.get());
        SKALLA_RETURN_NOT_OK(c.BeginRound(stage.op, *upstream,
                                          detail_schema,
                                          /*from_scratch=*/true));
        const CoordinatorTree::Node& current =
            tree_.nodes[static_cast<size_t>(node)];
        for (int s : current.child_sites) {
          if (lost[static_cast<size_t>(s)]) continue;
          SKALLA_ASSIGN_OR_RETURN(
              Table received,
              ShipOverLink(&network_, outputs[static_cast<size_t>(s)], s,
                           NodeEndpoint(node), node, /*downward=*/false,
                           &accum));
          Stopwatch timer;
          SKALLA_RETURN_NOT_OK(c.MergeFragment(received));
          accum.merge_time[static_cast<size_t>(node)] +=
              timer.ElapsedSeconds();
        }
        for (int child : current.child_nodes) {
          SKALLA_ASSIGN_OR_RETURN(Table fragment, merge_up(child));
          SKALLA_ASSIGN_OR_RETURN(
              Table received,
              ShipOverLink(&network_, fragment, NodeEndpoint(child),
                           NodeEndpoint(node), node, /*downward=*/false,
                           &accum));
          Stopwatch timer;
          SKALLA_RETURN_NOT_OK(c.MergeFragment(received));
          accum.merge_time[static_cast<size_t>(node)] +=
              timer.ElapsedSeconds();
        }
        return c.TakeWorkingFragment();
      };

      // The root merges like any node, but seeded from X when the global
      // structure exists, and finalizing super-aggregates at the end.
      SKALLA_RETURN_NOT_OK(root.BeginRound(stage.op, *upstream,
                                           detail_schema,
                                           /*from_scratch=*/!have_global));
      const CoordinatorTree::Node& root_node = tree_.nodes[0];
      for (int s : root_node.child_sites) {
        if (lost[static_cast<size_t>(s)]) continue;
        SKALLA_ASSIGN_OR_RETURN(
            Table received,
            ShipOverLink(&network_, outputs[static_cast<size_t>(s)], s,
                         NodeEndpoint(0), 0, /*downward=*/false, &accum));
        Stopwatch timer;
        SKALLA_RETURN_NOT_OK(root.MergeFragment(received));
        accum.merge_time[0] += timer.ElapsedSeconds();
      }
      for (int child : root_node.child_nodes) {
        SKALLA_ASSIGN_OR_RETURN(Table fragment, merge_up(child));
        SKALLA_ASSIGN_OR_RETURN(
            Table received,
            ShipOverLink(&network_, fragment, NodeEndpoint(child),
                         NodeEndpoint(0), 0, /*downward=*/false, &accum));
        Stopwatch timer;
        SKALLA_RETURN_NOT_OK(root.MergeFragment(received));
        accum.merge_time[0] += timer.ElapsedSeconds();
      }
      {
        Stopwatch timer;
        SKALLA_RETURN_NOT_OK(root.FinalizeRound());
        accum.merge_time[0] += timer.ElapsedSeconds();
      }
      have_global = true;
      for (size_t i = 0; i < n; ++i) {
        outputs[i] = Table();
        local_base[i] = Table();
      }
    } else {
      for (size_t i = 0; i < n; ++i) {
        local_base[i] = std::move(outputs[i]);
      }
      have_global = false;
    }

    SKALLA_ASSIGN_OR_RETURN(upstream,
                            stage.op.OutputSchema(*upstream, detail_schema));
    for (size_t i = 0; i < n; ++i) rs.sites_lost += lost[i];
    FoldAccum(tree_, accum, &rs);
    st.rounds.push_back(std::move(rs));
  }

  if (!have_global) {
    return Status::Internal("plan finished without a global result");
  }
  std::sort(st.lost_sites.begin(), st.lost_sites.end());
  return root.result();
}

}  // namespace skalla
