// Multi-tier coordinator architecture — the first of the paper's "future
// research topics" (Sect. 6): instead of every site talking to one
// coordinator (a star), sites hang off a tree of coordinators. Because
// super-aggregation is associative (Theorem 1 merges compose), each
// internal coordinator merges its children's partial base-result
// structures and forwards one merged partial upward; the root finalizes.
// Downward, the global structure is relayed level by level, with
// distribution-aware group reduction pushed down the tree: a fragment
// travels into a subtree only if some descendant site's ¬ψ_i accepts it.
//
// The payoff is at the root: with n sites and fanout f, the root link
// carries f partials per round instead of n — the star topology's
// quadratic coordinator traffic becomes logarithmic in depth.

#ifndef SKALLA_DIST_TREE_H_
#define SKALLA_DIST_TREE_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "dist/executor.h"
#include "dist/plan.h"
#include "dist/site.h"
#include "net/network.h"

namespace skalla {

/// A tree of coordinators over the sites. Node 0 is the root; every site
/// is attached to exactly one node.
struct CoordinatorTree {
  struct Node {
    int parent = -1;                // -1 for the root.
    std::vector<int> child_nodes;   // Indices into `nodes`.
    std::vector<int> child_sites;   // Site indices (leaves).
    size_t depth = 0;
  };

  std::vector<Node> nodes;

  /// Builds a balanced tree with the given fanout: sites are grouped
  /// `fanout` per leaf coordinator, leaf coordinators are grouped
  /// `fanout` per parent, and so on up to a single root. fanout >= n
  /// degenerates to the flat star topology.
  static CoordinatorTree Balanced(size_t num_sites, size_t fanout);

  size_t depth() const;
  std::string ToString() const;

  /// All site indices in the subtree rooted at `node`.
  std::vector<int> SitesUnder(int node) const;
};

/// Executes DistributedPlans over a coordinator tree. Results are
/// bit-identical to DistributedExecutor's; only the traffic pattern and
/// cost change. Implements the unified skalla::Executor interface.
///
/// Accounting: ExecStats byte/tuple fields split by direction — shipments
/// down the tree (toward the sites) count as *_to_sites, shipments up
/// (toward the root) as *_to_coord, over every link. RoundStats.root_bytes
/// isolates the root's own links (the star topology's bottleneck).
/// coord_time and comm_time fold per-node costs as the sum over levels of
/// the per-level maximum (levels are sequential, nodes within a level work
/// in parallel).
///
/// With coordinator_shards > 1, every tier's coordinator shards its merge
/// structure; one merge pool is shared across all tiers. Sites evaluate
/// sequentially (parallel_sites is ignored; the cost model already
/// charges the per-level maximum); ship_block_rows does not apply.
class TreeExecutor : public Executor {
 public:
  TreeExecutor(std::vector<Site> sites, CoordinatorTree tree,
               NetworkConfig net_config = {}, ExecutorOptions options = {});

  using Executor::Execute;
  Result<Table> Execute(const DistributedPlan& plan, const QueryRun& run,
                        ExecStats* stats) override;

  /// Registers `replica` as another host of partition `partition`'s data
  /// (same catalog contents, its own site id); rounds fail over to
  /// replicas in registration order when the primary exhausts retries.
  void AddReplica(size_t partition, Site replica);

  const char* name() const override { return "tree"; }
  size_t num_sites() const override { return sites_.size(); }
  const CoordinatorTree& tree() const { return tree_; }

 private:
  // Site ids of partition i's evaluation chain: primary, then replicas.
  std::vector<int> ReplicaIds(size_t i) const;
  // Replica r of partition i (r == 0 is the primary).
  Site& ReplicaSite(size_t i, size_t r);

  std::vector<Site> sites_;
  std::map<size_t, std::vector<Site>> replicas_;
  CoordinatorTree tree_;
  SimulatedNetwork network_;
  ExecutorOptions options_;
};

}  // namespace skalla

#endif  // SKALLA_DIST_TREE_H_
