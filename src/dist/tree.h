// Multi-tier coordinator architecture — the first of the paper's "future
// research topics" (Sect. 6): instead of every site talking to one
// coordinator (a star), sites hang off a tree of coordinators. Because
// super-aggregation is associative (Theorem 1 merges compose), each
// internal coordinator merges its children's partial base-result
// structures and forwards one merged partial upward; the root finalizes.
// Downward, the global structure is relayed level by level, with
// distribution-aware group reduction pushed down the tree: a fragment
// travels into a subtree only if some descendant site's ¬ψ_i accepts it.
//
// The payoff is at the root: with n sites and fanout f, the root link
// carries f partials per round instead of n — the star topology's
// quadratic coordinator traffic becomes logarithmic in depth.

#ifndef SKALLA_DIST_TREE_H_
#define SKALLA_DIST_TREE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "dist/exec.h"
#include "dist/plan.h"
#include "dist/site.h"
#include "net/network.h"

namespace skalla {

/// A tree of coordinators over the sites. Node 0 is the root; every site
/// is attached to exactly one node.
struct CoordinatorTree {
  struct Node {
    int parent = -1;                // -1 for the root.
    std::vector<int> child_nodes;   // Indices into `nodes`.
    std::vector<int> child_sites;   // Site indices (leaves).
    size_t depth = 0;
  };

  std::vector<Node> nodes;

  /// Builds a balanced tree with the given fanout: sites are grouped
  /// `fanout` per leaf coordinator, leaf coordinators are grouped
  /// `fanout` per parent, and so on up to a single root. fanout >= n
  /// degenerates to the flat star topology.
  static CoordinatorTree Balanced(size_t num_sites, size_t fanout);

  size_t depth() const;
  std::string ToString() const;

  /// All site indices in the subtree rooted at `node`.
  std::vector<int> SitesUnder(int node) const;
};

/// Per-round accounting for the tree executor.
struct TreeRoundStats {
  std::string label;
  bool synchronized = false;
  /// Bytes over the root's own links (the star topology's bottleneck).
  uint64_t root_bytes = 0;
  /// Bytes over every link of the tree.
  uint64_t total_bytes = 0;
  /// Max over sites of local compute.
  double site_time_max = 0;
  /// Merge/filter compute summed over coordinator nodes.
  double coord_time = 0;
  /// Modeled communication: per level, links transfer in parallel; the
  /// slowest node per level gates the round.
  double comm_time = 0;

  double ResponseTime() const {
    return comm_time + site_time_max + coord_time;
  }
};

struct TreeExecStats {
  std::vector<TreeRoundStats> rounds;

  uint64_t TotalBytes() const;
  uint64_t RootBytes() const;
  double ResponseTime() const;
  std::string ToString() const;
};

/// Executes DistributedPlans over a coordinator tree. Results are
/// bit-identical to DistributedExecutor's; only the traffic pattern and
/// cost change.
class TreeExecutor {
 public:
  TreeExecutor(std::vector<Site> sites, CoordinatorTree tree,
               NetworkConfig net_config = {});

  Result<Table> Execute(const DistributedPlan& plan, TreeExecStats* stats);

  size_t num_sites() const { return sites_.size(); }
  const CoordinatorTree& tree() const { return tree_; }

 private:
  std::vector<Site> sites_;
  CoordinatorTree tree_;
  SimulatedNetwork network_;
};

}  // namespace skalla

#endif  // SKALLA_DIST_TREE_H_
