#include "dist/warehouse.h"

#include <cstdlib>
#include <fstream>

#include "common/macros.h"
#include "common/string_util.h"
#include "data/table_io.h"
#include "relalg/operators.h"

namespace skalla {

DistributedWarehouse::DistributedWarehouse(size_t num_sites,
                                           NetworkConfig net_config,
                                           ExecutorOptions exec_options)
    : num_sites_(num_sites == 0 ? 1 : num_sites),
      net_config_(net_config),
      exec_options_(exec_options),
      site_catalogs_(num_sites_) {}

Status DistributedWarehouse::AddPartitionedTable(
    const std::string& name, std::vector<Table> partitions,
    const std::vector<std::string>& tracked_columns) {
  if (partitions.size() != num_sites_) {
    return Status::InvalidArgument(
        StrCat("got ", partitions.size(), " partitions for ", num_sites_,
               " sites"));
  }
  if (!tracked_columns.empty()) {
    SKALLA_ASSIGN_OR_RETURN(
        PartitionInfo info,
        PartitionInfo::ComputeFromPartitions(partitions, tracked_columns));
    partition_info_[name] = std::move(info);
  }
  tracked_columns_[name] = tracked_columns;
  Table whole(partitions[0].schema());
  for (const Table& part : partitions) {
    SKALLA_ASSIGN_OR_RETURN(whole, UnionAll(whole, part));
  }
  central_.Register(name, std::move(whole));
  for (size_t i = 0; i < num_sites_; ++i) {
    site_catalogs_[i].Register(name, std::move(partitions[i]));
  }
  return Status::OK();
}

Status DistributedWarehouse::AddTablePartitionedBy(
    const std::string& name, const Table& table,
    const std::string& partition_column,
    std::vector<std::string> extra_tracked) {
  SKALLA_ASSIGN_OR_RETURN(
      std::vector<Table> partitions,
      PartitionByValue(table, partition_column, num_sites_));
  std::vector<std::string> tracked = std::move(extra_tracked);
  tracked.push_back(partition_column);
  return AddPartitionedTable(name, std::move(partitions), tracked);
}

Result<DistributedPlan> DistributedWarehouse::Plan(
    const GmdjExpr& expr, const OptimizerOptions& options) const {
  Egil optimizer(options, num_sites_);
  for (const auto& [table, info] : partition_info_) {
    optimizer.SetPartitionInfo(table, &info);
  }
  return optimizer.Optimize(expr);
}

Result<Table> DistributedWarehouse::Execute(const GmdjExpr& expr,
                                            const OptimizerOptions& options,
                                            ExecStats* stats) const {
  SKALLA_ASSIGN_OR_RETURN(DistributedPlan plan, Plan(expr, options));
  return ExecutePlan(plan, stats);
}

Result<Table> DistributedWarehouse::ExecutePlan(const DistributedPlan& plan,
                                                ExecStats* stats) const {
  return MakeExecutor(net_config_, exec_options_)->Execute(plan, stats);
}

std::unique_ptr<DistributedExecutor> DistributedWarehouse::MakeExecutor(
    NetworkConfig net_config, ExecutorOptions exec_options) const {
  std::vector<Site> sites;
  sites.reserve(num_sites_);
  // Columnar caches are built by the executor itself (columnar_sites).
  for (size_t i = 0; i < num_sites_; ++i) {
    sites.emplace_back(static_cast<int>(i), site_catalogs_[i]);
  }
  auto executor = std::make_unique<DistributedExecutor>(
      std::move(sites), net_config, exec_options);
  for (size_t r = 1; r < replication_; ++r) {
    for (size_t i = 0; i < num_sites_; ++i) {
      int replica_id = static_cast<int>(num_sites_ + (r - 1) * num_sites_ + i);
      executor->AddReplica(i, Site(replica_id, site_catalogs_[i]));
    }
  }
  return executor;
}

Result<Table> DistributedWarehouse::ExecuteCentralized(
    const GmdjExpr& expr) const {
  return EvalCentralized(expr, central_);
}

const PartitionInfo* DistributedWarehouse::partition_info(
    const std::string& name) const {
  auto it = partition_info_.find(name);
  return it == partition_info_.end() ? nullptr : &it->second;
}

Status DistributedWarehouse::Save(const std::string& directory) const {
  std::string manifest = StrCat("skalla-warehouse 1\nsites ", num_sites_,
                                "\n");
  for (const std::string& name : central_.TableNames()) {
    std::vector<Table> partitions;
    partitions.reserve(num_sites_);
    for (size_t i = 0; i < num_sites_; ++i) {
      SKALLA_ASSIGN_OR_RETURN(const Table* part, site_catalogs_[i].Get(name));
      partitions.push_back(*part);
    }
    SKALLA_RETURN_NOT_OK(SavePartitions(partitions, directory, name));
    auto tracked = tracked_columns_.find(name);
    manifest += StrCat(
        "table ", name, " tracked ",
        tracked == tracked_columns_.end() ? "" : Join(tracked->second, ","),
        "\n");
  }
  std::ofstream out(directory + "/MANIFEST", std::ios::binary);
  if (!out) {
    return Status::IOError(
        StrCat("cannot write manifest under '", directory, "'"));
  }
  out << manifest;
  if (!out) return Status::IOError("failed writing manifest");
  return Status::OK();
}

Result<WarehouseManifest> ReadWarehouseManifest(
    const std::string& directory) {
  std::ifstream in(directory + "/MANIFEST", std::ios::binary);
  if (!in) {
    return Status::IOError(
        StrCat("no warehouse manifest under '", directory, "'"));
  }
  std::string line;
  if (!std::getline(in, line) || line != "skalla-warehouse 1") {
    return Status::IOError("unrecognized warehouse manifest header");
  }
  if (!std::getline(in, line) || line.rfind("sites ", 0) != 0) {
    return Status::IOError("manifest missing site count");
  }
  WarehouseManifest manifest;
  manifest.num_sites = static_cast<size_t>(
      std::strtoull(line.c_str() + 6, nullptr, 10));
  if (manifest.num_sites == 0) {
    return Status::IOError("manifest has zero sites");
  }
  while (std::getline(in, line)) {
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty()) continue;
    std::vector<std::string> fields = Split(std::string(stripped), ' ');
    if (fields.size() < 3 || fields[0] != "table" ||
        fields[2] != "tracked") {
      return Status::IOError(StrCat("bad manifest line: ", line));
    }
    WarehouseManifest::TableEntry entry;
    entry.name = fields[1];
    if (fields.size() >= 4 && !fields[3].empty()) {
      entry.tracked = Split(fields[3], ',');
    }
    manifest.tables.push_back(std::move(entry));
  }
  return manifest;
}

Result<Catalog> LoadSiteCatalog(const std::string& directory,
                                size_t site_index) {
  SKALLA_ASSIGN_OR_RETURN(WarehouseManifest manifest,
                          ReadWarehouseManifest(directory));
  if (site_index >= manifest.num_sites) {
    return Status::InvalidArgument(
        StrCat("site ", site_index, " out of range: warehouse has ",
               manifest.num_sites, " sites"));
  }
  Catalog catalog;
  for (const WarehouseManifest::TableEntry& entry : manifest.tables) {
    SKALLA_ASSIGN_OR_RETURN(
        Table partition, LoadPartition(directory, entry.name, site_index));
    catalog.Register(entry.name, std::move(partition));
  }
  return catalog;
}

Result<DistributedWarehouse> DistributedWarehouse::Load(
    const std::string& directory, NetworkConfig net_config,
    ExecutorOptions exec_options) {
  SKALLA_ASSIGN_OR_RETURN(WarehouseManifest manifest,
                          ReadWarehouseManifest(directory));
  DistributedWarehouse dw(manifest.num_sites, net_config, exec_options);
  for (const WarehouseManifest::TableEntry& entry : manifest.tables) {
    SKALLA_ASSIGN_OR_RETURN(std::vector<Table> partitions,
                            LoadPartitions(directory, entry.name));
    if (partitions.size() != manifest.num_sites) {
      return Status::IOError(
          StrCat("table '", entry.name, "' has ", partitions.size(),
                 " partitions, manifest says ", manifest.num_sites,
                 " sites"));
    }
    SKALLA_RETURN_NOT_OK(dw.AddPartitionedTable(
        entry.name, std::move(partitions), entry.tracked));
  }
  return dw;
}

}  // namespace skalla
