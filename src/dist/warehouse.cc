#include "dist/warehouse.h"

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>

#include "common/macros.h"
#include "common/string_util.h"
#include "data/table_io.h"
#include "net/serde.h"
#include "relalg/operators.h"
#include "storage/chunk_file.h"
#include "storage/data_provider.h"

namespace skalla {

namespace {

// --- STATS file: serialized distribution knowledge ------------------------
//
// A chunked warehouse persists its PartitionInfo map at save time so that
// a lazy load plans identically to the eager warehouse it came from
// without scanning a single chunk. Binary layout (varint/WriteValue from
// net/serde.h):
//
//   "SKALLASTATS1"
//   varint num_tables
//   per table: string name, varint num_sites, varint num_columns,
//     per column: string name,
//       per site: flags u8 (1 = value set, 2 = min, 4 = max,
//                 8 = histogram),
//         [varint count, count * WriteValue]  (value set)
//         [WriteValue]                        (min)   as FLOAT64
//         [WriteValue]                        (max)   as FLOAT64
//         [varint len, len * varint]          (histogram)

constexpr char kStatsMagic[] = "SKALLASTATS1";
constexpr size_t kStatsMagicLen = 12;

void PutString(std::vector<uint8_t>* out, const std::string& s) {
  PutVarint(out, s.size());
  out->insert(out->end(), s.begin(), s.end());
}

Result<std::string> ReadString(ByteReader* reader) {
  SKALLA_ASSIGN_OR_RETURN(uint64_t len, reader->ReadVarint());
  SKALLA_ASSIGN_OR_RETURN(const uint8_t* bytes,
                          reader->ReadBytes(static_cast<size_t>(len)));
  return std::string(reinterpret_cast<const char*>(bytes),
                     static_cast<size_t>(len));
}

std::vector<uint8_t> EncodePartitionStats(
    const std::map<std::string, PartitionInfo>& infos) {
  std::vector<uint8_t> out(kStatsMagicLen);
  std::memcpy(out.data(), kStatsMagic, kStatsMagicLen);
  PutVarint(&out, infos.size());
  for (const auto& [table, info] : infos) {
    PutString(&out, table);
    PutVarint(&out, info.num_sites());
    std::vector<std::string> columns = info.TrackedColumns();
    PutVarint(&out, columns.size());
    for (const std::string& column : columns) {
      PutString(&out, column);
      for (size_t site = 0; site < info.num_sites(); ++site) {
        const ColumnDistribution* dist = info.GetDistribution(site, column);
        uint8_t flags = 0;
        if (dist != nullptr) {
          if (dist->values.has_value()) flags |= 1;
          if (dist->min.has_value()) flags |= 2;
          if (dist->max.has_value()) flags |= 4;
          if (!dist->histogram.empty()) flags |= 8;
        }
        out.push_back(flags);
        if (dist == nullptr) continue;
        if (dist->values.has_value()) {
          PutVarint(&out, dist->values->size());
          dist->values->ForEach(
              [&out](const Value& v) { WriteValue(&out, v); });
        }
        if (dist->min.has_value()) WriteValue(&out, Value(*dist->min));
        if (dist->max.has_value()) WriteValue(&out, Value(*dist->max));
        if (!dist->histogram.empty()) {
          PutVarint(&out, dist->histogram.size());
          for (uint32_t bucket : dist->histogram) PutVarint(&out, bucket);
        }
      }
    }
  }
  return out;
}

Result<std::map<std::string, PartitionInfo>> DecodePartitionStats(
    const std::vector<uint8_t>& bytes) {
  ByteReader reader(bytes.data(), bytes.size());
  SKALLA_ASSIGN_OR_RETURN(const uint8_t* magic,
                          reader.ReadBytes(kStatsMagicLen));
  if (std::memcmp(magic, kStatsMagic, kStatsMagicLen) != 0) {
    return Status::ParseError("bad STATS magic");
  }
  std::map<std::string, PartitionInfo> infos;
  SKALLA_ASSIGN_OR_RETURN(uint64_t num_tables, reader.ReadVarint());
  for (uint64_t t = 0; t < num_tables; ++t) {
    SKALLA_ASSIGN_OR_RETURN(std::string table, ReadString(&reader));
    SKALLA_ASSIGN_OR_RETURN(uint64_t num_sites, reader.ReadVarint());
    PartitionInfo info(static_cast<size_t>(num_sites));
    SKALLA_ASSIGN_OR_RETURN(uint64_t num_columns, reader.ReadVarint());
    for (uint64_t c = 0; c < num_columns; ++c) {
      SKALLA_ASSIGN_OR_RETURN(std::string column, ReadString(&reader));
      for (uint64_t site = 0; site < num_sites; ++site) {
        SKALLA_ASSIGN_OR_RETURN(uint8_t flags, reader.ReadByte());
        ColumnDistribution dist;
        if (flags & 1) {
          SKALLA_ASSIGN_OR_RETURN(uint64_t count, reader.ReadVarint());
          ValueSet set;
          for (uint64_t i = 0; i < count; ++i) {
            SKALLA_ASSIGN_OR_RETURN(Value v, ReadValue(&reader));
            set.Insert(v);
          }
          dist.values = std::move(set);
        }
        if (flags & 2) {
          SKALLA_ASSIGN_OR_RETURN(Value v, ReadValue(&reader));
          dist.min = v.AsDouble();
        }
        if (flags & 4) {
          SKALLA_ASSIGN_OR_RETURN(Value v, ReadValue(&reader));
          dist.max = v.AsDouble();
        }
        if (flags & 8) {
          SKALLA_ASSIGN_OR_RETURN(uint64_t len, reader.ReadVarint());
          dist.histogram.reserve(static_cast<size_t>(len));
          for (uint64_t i = 0; i < len; ++i) {
            SKALLA_ASSIGN_OR_RETURN(uint64_t bucket, reader.ReadVarint());
            dist.histogram.push_back(static_cast<uint32_t>(bucket));
          }
        }
        if (flags != 0) {
          info.SetDistribution(static_cast<size_t>(site), column,
                               std::move(dist));
        }
      }
    }
    infos[std::move(table)] = std::move(info);
  }
  return infos;
}

Status WriteFileBytes(const std::string& path,
                      const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError(StrCat("cannot write '", path, "'"));
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) return Status::IOError(StrCat("failed writing '", path, "'"));
  return Status::OK();
}

Result<std::vector<uint8_t>> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError(StrCat("cannot read '", path, "'"));
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  return bytes;
}

}  // namespace

DistributedWarehouse::DistributedWarehouse(size_t num_sites,
                                           NetworkConfig net_config,
                                           ExecutorOptions exec_options)
    : num_sites_(num_sites == 0 ? 1 : num_sites),
      net_config_(net_config),
      exec_options_(exec_options),
      site_catalogs_(num_sites_) {}

Status DistributedWarehouse::AddPartitionedTable(
    const std::string& name, std::vector<Table> partitions,
    const std::vector<std::string>& tracked_columns) {
  if (partitions.size() != num_sites_) {
    return Status::InvalidArgument(
        StrCat("got ", partitions.size(), " partitions for ", num_sites_,
               " sites"));
  }
  if (!tracked_columns.empty()) {
    SKALLA_ASSIGN_OR_RETURN(
        PartitionInfo info,
        PartitionInfo::ComputeFromPartitions(partitions, tracked_columns));
    partition_info_[name] = std::move(info);
  }
  tracked_columns_[name] = tracked_columns;
  if (central_.Contains(name)) {
    // Replacing a registered table invalidates anything derived from the
    // old rows (serving-layer result caches key on this epoch).
    data_epoch_->fetch_add(1, std::memory_order_relaxed);
  }
  Table whole(partitions[0].schema());
  for (const Table& part : partitions) {
    SKALLA_ASSIGN_OR_RETURN(whole, UnionAll(whole, part));
  }
  central_.Register(name, std::move(whole));
  for (size_t i = 0; i < num_sites_; ++i) {
    site_catalogs_[i].Register(name, std::move(partitions[i]));
  }
  return Status::OK();
}

Status DistributedWarehouse::AddTablePartitionedBy(
    const std::string& name, const Table& table,
    const std::string& partition_column,
    std::vector<std::string> extra_tracked) {
  SKALLA_ASSIGN_OR_RETURN(
      std::vector<Table> partitions,
      PartitionByValue(table, partition_column, num_sites_));
  std::vector<std::string> tracked = std::move(extra_tracked);
  tracked.push_back(partition_column);
  return AddPartitionedTable(name, std::move(partitions), tracked);
}

Result<DistributedPlan> DistributedWarehouse::Plan(
    const GmdjExpr& expr, const OptimizerOptions& options) const {
  Egil optimizer(options, num_sites_);
  for (const auto& [table, info] : partition_info_) {
    optimizer.SetPartitionInfo(table, &info);
  }
  return optimizer.Optimize(expr);
}

Result<Table> DistributedWarehouse::Execute(const GmdjExpr& expr,
                                            const OptimizerOptions& options,
                                            ExecStats* stats) const {
  SKALLA_ASSIGN_OR_RETURN(DistributedPlan plan, Plan(expr, options));
  return ExecutePlan(plan, stats);
}

Result<Table> DistributedWarehouse::ExecutePlan(const DistributedPlan& plan,
                                                ExecStats* stats) const {
  return MakeExecutor(net_config_, exec_options_)->Execute(plan, stats);
}

std::unique_ptr<DistributedExecutor> DistributedWarehouse::MakeExecutor(
    NetworkConfig net_config, ExecutorOptions exec_options) const {
  std::vector<Site> sites;
  sites.reserve(num_sites_);
  // Columnar caches are built by the executor itself (columnar_sites).
  for (size_t i = 0; i < num_sites_; ++i) {
    sites.emplace_back(static_cast<int>(i), site_catalogs_[i]);
  }
  auto executor = std::make_unique<DistributedExecutor>(
      std::move(sites), net_config, exec_options);
  for (size_t r = 1; r < replication_; ++r) {
    for (size_t i = 0; i < num_sites_; ++i) {
      int replica_id = static_cast<int>(num_sites_ + (r - 1) * num_sites_ + i);
      executor->AddReplica(i, Site(replica_id, site_catalogs_[i]));
    }
  }
  return executor;
}

Result<Table> DistributedWarehouse::ExecuteCentralized(
    const GmdjExpr& expr) const {
  return EvalCentralized(expr, central_);
}

const PartitionInfo* DistributedWarehouse::partition_info(
    const std::string& name) const {
  auto it = partition_info_.find(name);
  return it == partition_info_.end() ? nullptr : &it->second;
}

Status DistributedWarehouse::Save(const std::string& directory) const {
  std::string manifest = StrCat("skalla-warehouse 1\nsites ", num_sites_,
                                "\n");
  for (const std::string& name : central_.TableNames()) {
    std::vector<Table> partitions;
    partitions.reserve(num_sites_);
    for (size_t i = 0; i < num_sites_; ++i) {
      SKALLA_ASSIGN_OR_RETURN(const Table* part, site_catalogs_[i].Get(name));
      partitions.push_back(*part);
    }
    SKALLA_RETURN_NOT_OK(SavePartitions(partitions, directory, name));
    auto tracked = tracked_columns_.find(name);
    manifest += StrCat(
        "table ", name, " tracked ",
        tracked == tracked_columns_.end() ? "" : Join(tracked->second, ","),
        "\n");
  }
  std::ofstream out(directory + "/MANIFEST", std::ios::binary);
  if (!out) {
    return Status::IOError(
        StrCat("cannot write manifest under '", directory, "'"));
  }
  out << manifest;
  if (!out) return Status::IOError("failed writing manifest");
  return Status::OK();
}

Status DistributedWarehouse::SaveChunked(const std::string& directory,
                                         size_t chunk_rows) const {
  std::vector<WarehouseManifest::TableEntry> tables;
  for (const std::string& name : central_.TableNames()) {
    for (size_t i = 0; i < num_sites_; ++i) {
      SKALLA_ASSIGN_OR_RETURN(const Table* part, site_catalogs_[i].Get(name));
      SKALLA_RETURN_NOT_OK(WriteChunkFile(
          *part, PartitionChunkPath(directory, name, i), chunk_rows));
    }
    auto tracked = tracked_columns_.find(name);
    tables.push_back(WarehouseManifest::TableEntry{
        name, tracked == tracked_columns_.end() ? std::vector<std::string>{}
                                                : tracked->second});
  }
  return WriteChunkedWarehouseMeta(directory, num_sites_, tables,
                                   partition_info_);
}

Status WriteChunkedWarehouseMeta(
    const std::string& directory, size_t num_sites,
    const std::vector<WarehouseManifest::TableEntry>& tables,
    const std::map<std::string, PartitionInfo>& stats) {
  std::string manifest = StrCat("skalla-warehouse 2 chunked\nsites ",
                                num_sites, "\n");
  for (const WarehouseManifest::TableEntry& entry : tables) {
    manifest += StrCat("table ", entry.name, " tracked ",
                       Join(entry.tracked, ","), "\n");
  }
  SKALLA_RETURN_NOT_OK(
      WriteFileBytes(directory + "/STATS", EncodePartitionStats(stats)));
  std::ofstream out(directory + "/MANIFEST", std::ios::binary);
  if (!out) {
    return Status::IOError(
        StrCat("cannot write manifest under '", directory, "'"));
  }
  out << manifest;
  if (!out) return Status::IOError("failed writing manifest");
  return Status::OK();
}

std::string PartitionChunkPath(const std::string& directory,
                               const std::string& name, size_t site_index) {
  return StrCat(directory, "/", name, ".part", site_index, ".skc");
}

Result<WarehouseManifest> ReadWarehouseManifest(
    const std::string& directory) {
  std::ifstream in(directory + "/MANIFEST", std::ios::binary);
  if (!in) {
    return Status::IOError(
        StrCat("no warehouse manifest under '", directory, "'"));
  }
  std::string line;
  if (!std::getline(in, line)) {
    return Status::IOError("unrecognized warehouse manifest header");
  }
  WarehouseManifest parsed_header;
  if (line == "skalla-warehouse 1") {
    parsed_header.chunked = false;
  } else if (line == "skalla-warehouse 2 chunked") {
    parsed_header.chunked = true;
  } else {
    return Status::IOError("unrecognized warehouse manifest header");
  }
  if (!std::getline(in, line) || line.rfind("sites ", 0) != 0) {
    return Status::IOError("manifest missing site count");
  }
  WarehouseManifest manifest = std::move(parsed_header);
  manifest.num_sites = static_cast<size_t>(
      std::strtoull(line.c_str() + 6, nullptr, 10));
  if (manifest.num_sites == 0) {
    return Status::IOError("manifest has zero sites");
  }
  while (std::getline(in, line)) {
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty()) continue;
    std::vector<std::string> fields = Split(std::string(stripped), ' ');
    if (fields.size() < 3 || fields[0] != "table" ||
        fields[2] != "tracked") {
      return Status::IOError(StrCat("bad manifest line: ", line));
    }
    WarehouseManifest::TableEntry entry;
    entry.name = fields[1];
    if (fields.size() >= 4 && !fields[3].empty()) {
      entry.tracked = Split(fields[3], ',');
    }
    manifest.tables.push_back(std::move(entry));
  }
  return manifest;
}

Result<Catalog> LoadSiteCatalog(const std::string& directory,
                                size_t site_index,
                                const StorageOptions& storage) {
  SKALLA_ASSIGN_OR_RETURN(WarehouseManifest manifest,
                          ReadWarehouseManifest(directory));
  if (site_index >= manifest.num_sites) {
    return Status::InvalidArgument(
        StrCat("site ", site_index, " out of range: warehouse has ",
               manifest.num_sites, " sites"));
  }
  Catalog catalog;
  if (manifest.chunked) {
    std::shared_ptr<BufferManager> buffers =
        storage.buffer_manager != nullptr
            ? storage.buffer_manager
            : std::make_shared<BufferManager>(storage.buffer_bytes);
    for (const WarehouseManifest::TableEntry& entry : manifest.tables) {
      SKALLA_ASSIGN_OR_RETURN(
          std::shared_ptr<ChunkFileDataProvider> provider,
          ChunkFileDataProvider::Open(
              PartitionChunkPath(directory, entry.name, site_index),
              buffers));
      catalog.RegisterProvider(entry.name, std::move(provider));
    }
    return catalog;
  }
  for (const WarehouseManifest::TableEntry& entry : manifest.tables) {
    SKALLA_ASSIGN_OR_RETURN(
        Table partition, LoadPartition(directory, entry.name, site_index));
    catalog.Register(entry.name, std::move(partition));
  }
  return catalog;
}

Result<Catalog> LoadSiteCatalog(const std::string& directory,
                                size_t site_index) {
  return LoadSiteCatalog(directory, site_index, StorageOptions{});
}

Result<DistributedWarehouse> DistributedWarehouse::Load(
    const std::string& directory, NetworkConfig net_config,
    ExecutorOptions exec_options, const StorageOptions& storage) {
  SKALLA_ASSIGN_OR_RETURN(WarehouseManifest manifest,
                          ReadWarehouseManifest(directory));
  DistributedWarehouse dw(manifest.num_sites, net_config, exec_options);
  if (manifest.chunked) {
    dw.storage_dir_ = directory;
    dw.buffers_ = storage.buffer_manager != nullptr
                      ? storage.buffer_manager
                      : std::make_shared<BufferManager>(storage.buffer_bytes);
    for (const WarehouseManifest::TableEntry& entry : manifest.tables) {
      SKALLA_RETURN_NOT_OK(dw.OpenChunkedTable(entry.name));
      dw.tracked_columns_[entry.name] = entry.tracked;
    }
    SKALLA_ASSIGN_OR_RETURN(std::vector<uint8_t> stats_bytes,
                            ReadFileBytes(directory + "/STATS"));
    SKALLA_ASSIGN_OR_RETURN(dw.partition_info_,
                            DecodePartitionStats(stats_bytes));
    return dw;
  }
  for (const WarehouseManifest::TableEntry& entry : manifest.tables) {
    SKALLA_ASSIGN_OR_RETURN(std::vector<Table> partitions,
                            LoadPartitions(directory, entry.name));
    if (partitions.size() != manifest.num_sites) {
      return Status::IOError(
          StrCat("table '", entry.name, "' has ", partitions.size(),
                 " partitions, manifest says ", manifest.num_sites,
                 " sites"));
    }
    SKALLA_RETURN_NOT_OK(dw.AddPartitionedTable(
        entry.name, std::move(partitions), entry.tracked));
  }
  return dw;
}

Status DistributedWarehouse::OpenChunkedTable(const std::string& name) {
  std::vector<DataProviderPtr> parts;
  parts.reserve(num_sites_);
  for (size_t i = 0; i < num_sites_; ++i) {
    SKALLA_ASSIGN_OR_RETURN(
        std::shared_ptr<ChunkFileDataProvider> provider,
        ChunkFileDataProvider::Open(
            PartitionChunkPath(storage_dir_, name, i), buffers_));
    site_catalogs_[i].RegisterProvider(name, provider);
    parts.push_back(std::move(provider));
  }
  // Site order matches the UnionAll order of an eager load, so the
  // centralized reference evaluation stays byte-identical.
  central_.RegisterProvider(
      name, std::make_shared<ConcatDataProvider>(std::move(parts)));
  return Status::OK();
}

Status DistributedWarehouse::ReloadTable(const std::string& name) {
  if (storage_dir_.empty()) {
    return Status::FailedPrecondition(
        "ReloadTable requires a chunk-loaded warehouse");
  }
  if (!central_.Contains(name)) {
    return Status::NotFound(StrCat("no table '", name, "'"));
  }
  // Re-registering replaces the providers; the old ones' destructors
  // drop their stale chunks from the buffer pool. Executors built
  // earlier hold catalog copies and keep the old providers alive — the
  // epoch bump is what invalidates results cached against them.
  SKALLA_RETURN_NOT_OK(OpenChunkedTable(name));
  data_epoch_->fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

}  // namespace skalla
