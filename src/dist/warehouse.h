// DistributedWarehouse: the top-level Skalla API. Owns the partitioned
// relations, the distribution knowledge, the optimizer, and the executor.
//
//   DistributedWarehouse dw(8);
//   dw.AddPartitionedTable("flow", std::move(partitions), {"SourceAS"});
//   ExecStats stats;
//   Table result = dw.Execute(expr, OptimizerOptions::All(), &stats)
//                      .ValueOrDie();

#ifndef SKALLA_DIST_WAREHOUSE_H_
#define SKALLA_DIST_WAREHOUSE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/gmdj.h"
#include "core/local_eval.h"
#include "dist/exec.h"
#include "dist/plan.h"
#include "net/network.h"
#include "opt/optimizer.h"
#include "storage/partition.h"

namespace skalla {

/// Parsed MANIFEST of a warehouse saved with DistributedWarehouse::Save.
struct WarehouseManifest {
  size_t num_sites = 0;
  struct TableEntry {
    std::string name;
    std::vector<std::string> tracked;
  };
  std::vector<TableEntry> tables;
};

Result<WarehouseManifest> ReadWarehouseManifest(const std::string& directory);

/// Loads site `site_index`'s partition of every manifest table — what a
/// skalla-site process loads at startup. Unlike DistributedWarehouse::
/// Load it reads only that site's files, never the peers' partitions.
Result<Catalog> LoadSiteCatalog(const std::string& directory,
                                size_t site_index);

class DistributedWarehouse {
 public:
  explicit DistributedWarehouse(size_t num_sites,
                                NetworkConfig net_config = {},
                                ExecutorOptions exec_options = {});

  size_t num_sites() const { return num_sites_; }
  const NetworkConfig& net_config() const { return net_config_; }
  const ExecutorOptions& exec_options() const { return exec_options_; }

  /// Registers a fact relation given one partition per site. Distribution
  /// knowledge (exact per-site value sets and numeric ranges) is computed
  /// for `tracked_columns` and made available to the optimizer. The union
  /// of the partitions is kept for centralized reference evaluation.
  Status AddPartitionedTable(const std::string& name,
                             std::vector<Table> partitions,
                             const std::vector<std::string>& tracked_columns);

  /// Convenience: partitions `table` by value of `partition_column` and
  /// registers it, tracking the partition column plus `extra_tracked`.
  Status AddTablePartitionedBy(const std::string& name, const Table& table,
                               const std::string& partition_column,
                               std::vector<std::string> extra_tracked = {});

  /// Builds the optimized distributed plan for `expr`.
  Result<DistributedPlan> Plan(const GmdjExpr& expr,
                               const OptimizerOptions& options) const;

  /// Optimizes and executes `expr`; per-round cost accounting lands in
  /// `stats` when non-null.
  Result<Table> Execute(const GmdjExpr& expr,
                        const OptimizerOptions& options,
                        ExecStats* stats = nullptr) const;

  /// Executes an already-built plan.
  Result<Table> ExecutePlan(const DistributedPlan& plan,
                            ExecStats* stats = nullptr) const;

  /// Builds a star executor over this warehouse's partitions (replicas
  /// included per SetReplication) with the given network/executor
  /// configuration. ExecutePlan builds one per call with the
  /// warehouse's own configuration; the serving layer builds one here
  /// and keeps it, so every query it admits shares one pool of sites —
  /// concurrent rounds queue on the per-site round locks.
  std::unique_ptr<DistributedExecutor> MakeExecutor(
      NetworkConfig net_config, ExecutorOptions exec_options) const;

  /// Hosts every partition at `factor` sites (the primary plus
  /// factor - 1 replicas, each a full copy of the partition under its
  /// own site id). Replica site ids are num_sites + (r-1)*num_sites + i
  /// for replica r of partition i. Combined with
  /// ExecutorOptions::max_site_retries this lets ExecutePlan survive a
  /// permanent site loss with byte-identical results; see docs/FAULTS.md.
  void SetReplication(size_t factor) { replication_ = factor == 0 ? 1 : factor; }
  size_t replication() const { return replication_; }

  /// Centralized reference evaluation against the unioned relations (the
  /// semantics any plan must match).
  Result<Table> ExecuteCentralized(const GmdjExpr& expr) const;

  /// Distribution knowledge for a registered table; nullptr if untracked.
  const PartitionInfo* partition_info(const std::string& name) const;

  /// The centralized (union) catalog, for direct inspection.
  const Catalog& central_catalog() const { return central_; }

  /// Persists the warehouse (every table's partitions plus a manifest)
  /// under `directory`, which must exist.
  Status Save(const std::string& directory) const;

  /// Restores a warehouse saved with Save. Network/executor options are
  /// the caller's; distribution knowledge is recomputed from the loaded
  /// partitions over the manifest's tracked columns.
  static Result<DistributedWarehouse> Load(
      const std::string& directory, NetworkConfig net_config = {},
      ExecutorOptions exec_options = {});

 private:
  size_t num_sites_;
  size_t replication_ = 1;
  NetworkConfig net_config_;
  ExecutorOptions exec_options_;
  std::vector<Catalog> site_catalogs_;
  Catalog central_;
  std::map<std::string, PartitionInfo> partition_info_;
  // Tracked columns per table, for Save/Load round trips.
  std::map<std::string, std::vector<std::string>> tracked_columns_;
};

}  // namespace skalla

#endif  // SKALLA_DIST_WAREHOUSE_H_
