// DistributedWarehouse: the top-level Skalla API. Owns the partitioned
// relations, the distribution knowledge, the optimizer, and the executor.
//
//   DistributedWarehouse dw(8);
//   dw.AddPartitionedTable("flow", std::move(partitions), {"SourceAS"});
//   ExecStats stats;
//   Table result = dw.Execute(expr, OptimizerOptions::All(), &stats)
//                      .ValueOrDie();

#ifndef SKALLA_DIST_WAREHOUSE_H_
#define SKALLA_DIST_WAREHOUSE_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/gmdj.h"
#include "core/local_eval.h"
#include "dist/exec.h"
#include "dist/plan.h"
#include "net/network.h"
#include "opt/optimizer.h"
#include "storage/buffer_manager.h"
#include "storage/partition.h"

namespace skalla {

/// How a loaded warehouse/site pages its chunk-backed relations.
struct StorageOptions {
  /// BufferManager byte budget shared by every chunk-backed relation of
  /// the load; 0 = unlimited. Ignored when `buffer_manager` is set.
  uint64_t buffer_bytes = 0;

  /// An existing manager to share (e.g. across warehouses); created from
  /// `buffer_bytes` when null.
  std::shared_ptr<BufferManager> buffer_manager;
};

/// Parsed MANIFEST of a warehouse saved with DistributedWarehouse::Save
/// (version 1, eager row files) or SaveChunked (version 2, chunk files
/// read lazily through a BufferManager).
struct WarehouseManifest {
  size_t num_sites = 0;
  bool chunked = false;
  struct TableEntry {
    std::string name;
    std::vector<std::string> tracked;
  };
  std::vector<TableEntry> tables;
};

Result<WarehouseManifest> ReadWarehouseManifest(const std::string& directory);

/// Path of one site's chunk file for `name` under a chunked warehouse
/// directory: <directory>/<name>.part<site>.skc.
std::string PartitionChunkPath(const std::string& directory,
                               const std::string& name, size_t site_index);

/// Writes the MANIFEST (version 2) and STATS files of a chunked
/// warehouse directory whose chunk files were produced externally —
/// skalla-dataset streams generated rows through ChunkFileWriter and
/// then stamps the directory loadable with this. `tables` lists each
/// table's tracked columns; `stats` the distribution knowledge to
/// persist.
Status WriteChunkedWarehouseMeta(
    const std::string& directory, size_t num_sites,
    const std::vector<WarehouseManifest::TableEntry>& tables,
    const std::map<std::string, PartitionInfo>& stats);

/// Loads site `site_index`'s partition of every manifest table — what a
/// skalla-site process loads at startup. Unlike DistributedWarehouse::
/// Load it reads only that site's files, never the peers' partitions.
/// Chunked warehouses register paged providers (nothing resident until
/// pinned); `storage` sizes their shared BufferManager.
Result<Catalog> LoadSiteCatalog(const std::string& directory,
                                size_t site_index,
                                const StorageOptions& storage);
Result<Catalog> LoadSiteCatalog(const std::string& directory,
                                size_t site_index);

class DistributedWarehouse {
 public:
  explicit DistributedWarehouse(size_t num_sites,
                                NetworkConfig net_config = {},
                                ExecutorOptions exec_options = {});

  size_t num_sites() const { return num_sites_; }
  const NetworkConfig& net_config() const { return net_config_; }
  const ExecutorOptions& exec_options() const { return exec_options_; }

  /// Selects the evaluation engine for subsequent executions (results
  /// are byte-identical across engines — docs/KERNELS.md). Executors
  /// already constructed from these options keep their old setting.
  void set_engine(EvalEngine engine) { exec_options_.engine = engine; }

  /// Registers a fact relation given one partition per site. Distribution
  /// knowledge (exact per-site value sets and numeric ranges) is computed
  /// for `tracked_columns` and made available to the optimizer. The union
  /// of the partitions is kept for centralized reference evaluation.
  Status AddPartitionedTable(const std::string& name,
                             std::vector<Table> partitions,
                             const std::vector<std::string>& tracked_columns);

  /// Convenience: partitions `table` by value of `partition_column` and
  /// registers it, tracking the partition column plus `extra_tracked`.
  Status AddTablePartitionedBy(const std::string& name, const Table& table,
                               const std::string& partition_column,
                               std::vector<std::string> extra_tracked = {});

  /// Builds the optimized distributed plan for `expr`.
  Result<DistributedPlan> Plan(const GmdjExpr& expr,
                               const OptimizerOptions& options) const;

  /// Optimizes and executes `expr`; per-round cost accounting lands in
  /// `stats` when non-null.
  Result<Table> Execute(const GmdjExpr& expr,
                        const OptimizerOptions& options,
                        ExecStats* stats = nullptr) const;

  /// Executes an already-built plan.
  Result<Table> ExecutePlan(const DistributedPlan& plan,
                            ExecStats* stats = nullptr) const;

  /// Builds a star executor over this warehouse's partitions (replicas
  /// included per SetReplication) with the given network/executor
  /// configuration. ExecutePlan builds one per call with the
  /// warehouse's own configuration; the serving layer builds one here
  /// and keeps it, so every query it admits shares one pool of sites —
  /// concurrent rounds queue on the per-site round locks.
  std::unique_ptr<DistributedExecutor> MakeExecutor(
      NetworkConfig net_config, ExecutorOptions exec_options) const;

  /// Hosts every partition at `factor` sites (the primary plus
  /// factor - 1 replicas, each a full copy of the partition under its
  /// own site id). Replica site ids are num_sites + (r-1)*num_sites + i
  /// for replica r of partition i. Combined with
  /// ExecutorOptions::max_site_retries this lets ExecutePlan survive a
  /// permanent site loss with byte-identical results; see docs/FAULTS.md.
  void SetReplication(size_t factor) { replication_ = factor == 0 ? 1 : factor; }
  size_t replication() const { return replication_; }

  /// Centralized reference evaluation against the unioned relations (the
  /// semantics any plan must match).
  Result<Table> ExecuteCentralized(const GmdjExpr& expr) const;

  /// Distribution knowledge for a registered table; nullptr if untracked.
  const PartitionInfo* partition_info(const std::string& name) const;

  /// The centralized (union) catalog, for direct inspection.
  const Catalog& central_catalog() const { return central_; }

  /// Persists the warehouse (every table's partitions plus a manifest)
  /// under `directory`, which must exist. Requires resident partitions
  /// (a chunk-loaded warehouse saves nothing new — its chunk files ARE
  /// the persistent form).
  Status Save(const std::string& directory) const;

  /// Persists the warehouse as a version-2 chunked layout: per-site
  /// chunk files (<name>.part<i>.skc), a STATS file carrying the
  /// serialized distribution knowledge (so a lazy load plans exactly
  /// like this eager warehouse without scanning any chunk), and the
  /// manifest. Requires resident partitions.
  Status SaveChunked(const std::string& directory,
                     size_t chunk_rows = kDefaultChunkRows) const;

  /// Restores a warehouse saved with Save or SaveChunked. Network/
  /// executor options are the caller's. Version-1 directories load
  /// eagerly and recompute distribution knowledge from the partitions;
  /// version-2 directories register lazy chunk providers (paged through
  /// one shared BufferManager per `storage`) and read the distribution
  /// knowledge from STATS.
  static Result<DistributedWarehouse> Load(
      const std::string& directory, NetworkConfig net_config = {},
      ExecutorOptions exec_options = {}, const StorageOptions& storage = {});

  /// Monotonic data epoch: bumped whenever a registered table's data is
  /// replaced (AddPartitionedTable over an existing name, ReloadTable).
  /// Serving layers fold it into their cache epoch, so results computed
  /// against older data stop being served (QuerySession::Open wires
  /// this automatically).
  uint64_t data_epoch() const {
    return data_epoch_->load(std::memory_order_relaxed);
  }
  std::shared_ptr<const std::atomic<uint64_t>> data_epoch_handle() const {
    return data_epoch_;
  }

  /// Re-opens a chunk-backed table's providers from disk (picking up
  /// rewritten chunk files), drops the old chunks from the buffer pool,
  /// and bumps the data epoch. Only valid on a chunk-loaded warehouse.
  Status ReloadTable(const std::string& name);

  /// The shared BufferManager of a chunk-loaded warehouse; null when
  /// every relation is resident.
  const std::shared_ptr<BufferManager>& buffer_manager() const {
    return buffers_;
  }

 private:
  // Opens (or re-opens) every site's chunk file for `name` under
  // storage_dir_ and registers the providers site-wise plus concatenated
  // centrally.
  Status OpenChunkedTable(const std::string& name);

  size_t num_sites_;
  size_t replication_ = 1;
  NetworkConfig net_config_;
  ExecutorOptions exec_options_;
  std::vector<Catalog> site_catalogs_;
  Catalog central_;
  std::map<std::string, PartitionInfo> partition_info_;
  // Tracked columns per table, for Save/Load round trips.
  std::map<std::string, std::vector<std::string>> tracked_columns_;
  // Bumped on data replacement. shared_ptr: the warehouse is moved by
  // value, but epoch observers (sessions) must keep seeing bumps.
  std::shared_ptr<std::atomic<uint64_t>> data_epoch_ =
      std::make_shared<std::atomic<uint64_t>>(0);
  // Chunk-loaded state (empty/null for resident warehouses).
  std::string storage_dir_;
  std::shared_ptr<BufferManager> buffers_;
};

}  // namespace skalla

#endif  // SKALLA_DIST_WAREHOUSE_H_
