#include "expr/analysis.h"

#include <algorithm>

namespace skalla {

std::vector<ExprPtr> SplitConjuncts(const ExprPtr& expr) {
  std::vector<ExprPtr> out;
  std::vector<ExprPtr> stack{expr};
  while (!stack.empty()) {
    ExprPtr e = stack.back();
    stack.pop_back();
    if (e->kind() == ExprKind::kBinary &&
        e->binary_op() == BinaryOp::kAnd) {
      stack.push_back(e->right());
      stack.push_back(e->left());
    } else {
      out.push_back(std::move(e));
    }
  }
  // Left is pushed last, so it pops first: `out` is already in textual
  // left-to-right order.
  return out;
}

ExprPtr MakeConjunction(std::vector<ExprPtr> conjuncts) {
  if (conjuncts.empty()) return Expr::Literal(Value(int64_t{1}));
  ExprPtr acc = conjuncts.front();
  for (size_t i = 1; i < conjuncts.size(); ++i) {
    acc = Expr::Binary(BinaryOp::kAnd, std::move(acc),
                       std::move(conjuncts[i]));
  }
  return acc;
}

ExprPtr MakeDisjunction(std::vector<ExprPtr> disjuncts) {
  if (disjuncts.empty()) return Expr::Literal(Value(int64_t{0}));
  ExprPtr acc = disjuncts.front();
  for (size_t i = 1; i < disjuncts.size(); ++i) {
    acc = Expr::Binary(BinaryOp::kOr, std::move(acc),
                       std::move(disjuncts[i]));
  }
  return acc;
}

namespace {

bool IsBareColumn(const ExprPtr& e, ExprSide side) {
  return e->kind() == ExprKind::kColumnRef && e->side() == side;
}

// Recognizes `b.X = r.Y` in either operand order.
std::optional<EquiAtom> MatchEquiAtom(const ExprPtr& conjunct) {
  if (conjunct->kind() != ExprKind::kBinary ||
      conjunct->binary_op() != BinaryOp::kEq) {
    return std::nullopt;
  }
  const ExprPtr& l = conjunct->left();
  const ExprPtr& r = conjunct->right();
  if (IsBareColumn(l, ExprSide::kBase) && IsBareColumn(r, ExprSide::kDetail)) {
    return EquiAtom{l->column_name(), r->column_name()};
  }
  if (IsBareColumn(l, ExprSide::kDetail) && IsBareColumn(r, ExprSide::kBase)) {
    return EquiAtom{r->column_name(), l->column_name()};
  }
  return std::nullopt;
}

}  // namespace

ConditionAnalysis AnalyzeCondition(const ExprPtr& theta) {
  ConditionAnalysis out;
  std::vector<ExprPtr> residuals;
  for (ExprPtr& conjunct : SplitConjuncts(theta)) {
    if (std::optional<EquiAtom> atom = MatchEquiAtom(conjunct)) {
      out.equi_atoms.push_back(std::move(*atom));
    } else {
      residuals.push_back(std::move(conjunct));
    }
  }
  if (!residuals.empty()) out.residual = MakeConjunction(std::move(residuals));
  return out;
}

ConjunctClasses ClassifyCondition(const ExprPtr& theta) {
  ConjunctClasses out;
  for (ExprPtr& conjunct : SplitConjuncts(theta)) {
    if (std::optional<EquiAtom> atom = MatchEquiAtom(conjunct)) {
      out.equi_atoms.push_back(std::move(*atom));
      continue;
    }
    const bool base = conjunct->ReferencesSide(ExprSide::kBase);
    const bool detail = conjunct->ReferencesSide(ExprSide::kDetail);
    if (base && detail) {
      out.correlated.push_back(std::move(conjunct));
    } else if (detail) {
      out.detail_only.push_back(std::move(conjunct));
    } else {
      out.base_only.push_back(std::move(conjunct));
    }
  }
  return out;
}

namespace {

double ClampSelectivity(double s) {
  return std::max(0.001, std::min(1.0, s));
}

// Fraction of a known interval [lo, hi] a comparison against constant
// `v` accepts, assuming a uniform spread.
double IntervalFraction(BinaryOp op, const Interval& range, double v) {
  const double width = range.hi - range.lo;
  if (width <= 0.0) {
    // Single-point column: the comparison is decided outright.
    bool accepts = false;
    switch (op) {
      case BinaryOp::kEq: accepts = range.lo == v; break;
      case BinaryOp::kNe: accepts = range.lo != v; break;
      case BinaryOp::kLt: accepts = range.lo < v; break;
      case BinaryOp::kLe: accepts = range.lo <= v; break;
      case BinaryOp::kGt: accepts = range.lo > v; break;
      case BinaryOp::kGe: accepts = range.lo >= v; break;
      default: return 0.5;
    }
    return accepts ? 1.0 : 0.001;
  }
  switch (op) {
    case BinaryOp::kEq:
      return 1.0 / (width + 1.0);
    case BinaryOp::kNe:
      return 1.0 - 1.0 / (width + 1.0);
    case BinaryOp::kLt:
    case BinaryOp::kLe:
      return (v - range.lo) / width;
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return (range.hi - v) / width;
    default:
      return 0.5;
  }
}

}  // namespace

double EstimateConjunctSelectivity(
    const ExprPtr& conjunct,
    const std::function<std::optional<Interval>(const std::string&)>&
        col_range) {
  if (conjunct->kind() == ExprKind::kUnary &&
      conjunct->unary_op() == UnaryOp::kNot) {
    return ClampSelectivity(
        1.0 - EstimateConjunctSelectivity(conjunct->operand(), col_range));
  }
  if (conjunct->kind() == ExprKind::kInSet) {
    const size_t n = conjunct->value_set() ? conjunct->value_set()->size() : 0;
    if (col_range != nullptr && n > 0) {
      if (auto range = EvalDetailInterval(conjunct->operand(), col_range)) {
        const double width = range->hi - range->lo;
        return ClampSelectivity(static_cast<double>(n) / (width + 1.0));
      }
    }
    return ClampSelectivity(std::min(0.5, 0.05 * static_cast<double>(n)));
  }
  if (conjunct->kind() == ExprKind::kBinary &&
      IsComparisonOp(conjunct->binary_op())) {
    // Normalize to `detail_expr op constant` when one side is a numeric
    // literal; interval arithmetic then bounds the accepted fraction.
    BinaryOp op = conjunct->binary_op();
    ExprPtr expr_side = conjunct->left();
    ExprPtr lit_side = conjunct->right();
    if (expr_side->kind() == ExprKind::kLiteral) {
      std::swap(expr_side, lit_side);
      op = FlipComparison(op);
    }
    if (col_range != nullptr && lit_side->kind() == ExprKind::kLiteral &&
        lit_side->literal().is_numeric()) {
      if (auto range = EvalDetailInterval(expr_side, col_range)) {
        return ClampSelectivity(
            IntervalFraction(op, *range, lit_side->literal().AsDouble()));
      }
    }
    switch (op) {
      case BinaryOp::kEq:
        return 0.1;
      case BinaryOp::kNe:
        return 0.9;
      default:
        return 0.33;
    }
  }
  return 0.5;
}

std::optional<SeparableComparison> ExtractSeparableComparison(
    const ExprPtr& conjunct) {
  if (conjunct->kind() != ExprKind::kBinary ||
      !IsComparisonOp(conjunct->binary_op())) {
    return std::nullopt;
  }
  const ExprPtr& l = conjunct->left();
  const ExprPtr& r = conjunct->right();
  bool l_base = l->ReferencesSide(ExprSide::kBase);
  bool l_detail = l->ReferencesSide(ExprSide::kDetail);
  bool r_base = r->ReferencesSide(ExprSide::kBase);
  bool r_detail = r->ReferencesSide(ExprSide::kDetail);
  // base-side operand may not reference detail and vice versa.
  if (!l_detail && !r_base && (l_base || r_detail)) {
    return SeparableComparison{l, conjunct->binary_op(), r};
  }
  if (!l_base && !r_detail && (r_base || l_detail)) {
    return SeparableComparison{r, FlipComparison(conjunct->binary_op()), l};
  }
  return std::nullopt;
}

std::optional<Interval> EvalDetailInterval(
    const ExprPtr& expr,
    const std::function<std::optional<Interval>(const std::string&)>&
        col_range) {
  switch (expr->kind()) {
    case ExprKind::kLiteral: {
      const Value& v = expr->literal();
      if (!v.is_numeric()) return std::nullopt;
      double d = v.AsDouble();
      return Interval{d, d};
    }
    case ExprKind::kColumnRef: {
      if (expr->side() != ExprSide::kDetail) return std::nullopt;
      return col_range(expr->column_name());
    }
    case ExprKind::kUnary: {
      if (expr->unary_op() != UnaryOp::kNeg) return std::nullopt;
      auto inner = EvalDetailInterval(expr->operand(), col_range);
      if (!inner) return std::nullopt;
      return Interval{-inner->hi, -inner->lo};
    }
    case ExprKind::kBinary: {
      auto l = EvalDetailInterval(expr->left(), col_range);
      auto r = EvalDetailInterval(expr->right(), col_range);
      if (!l || !r) return std::nullopt;
      switch (expr->binary_op()) {
        case BinaryOp::kAdd:
          return Interval{l->lo + r->lo, l->hi + r->hi};
        case BinaryOp::kSub:
          return Interval{l->lo - r->hi, l->hi - r->lo};
        case BinaryOp::kMul: {
          double candidates[4] = {l->lo * r->lo, l->lo * r->hi,
                                  l->hi * r->lo, l->hi * r->hi};
          double lo = candidates[0];
          double hi = candidates[0];
          for (double c : candidates) {
            lo = std::min(lo, c);
            hi = std::max(hi, c);
          }
          return Interval{lo, hi};
        }
        case BinaryOp::kDiv: {
          // Only division by a non-zero constant is supported.
          if (r->lo != r->hi || r->lo == 0.0) return std::nullopt;
          double a = l->lo / r->lo;
          double b = l->hi / r->lo;
          return Interval{std::min(a, b), std::max(a, b)};
        }
        default:
          return std::nullopt;
      }
    }
  }
  return std::nullopt;
}

bool EntailsEquality(const ExprPtr& theta, const std::string& base_col,
                     const std::string& detail_col) {
  for (const ExprPtr& conjunct : SplitConjuncts(theta)) {
    if (std::optional<EquiAtom> atom = MatchEquiAtom(conjunct)) {
      if (atom->base_col == base_col && atom->detail_col == detail_col) {
        return true;
      }
    }
  }
  return false;
}

bool EntailsAllEqualities(const ExprPtr& theta,
                          const std::vector<EquiAtom>& pairs) {
  for (const EquiAtom& pair : pairs) {
    if (!EntailsEquality(theta, pair.base_col, pair.detail_col)) return false;
  }
  return true;
}

}  // namespace skalla
