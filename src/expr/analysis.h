// Static analysis of GMDJ grouping conditions. These routines power:
//  - hash-accelerated local GMDJ evaluation (equality atoms -> index keys),
//  - Prop. 2 / Corollary 1 synchronization reduction (entailment tests),
//  - Theorem 4 distribution-aware group reduction (separable comparisons
//    plus interval arithmetic over per-site column ranges).

#ifndef SKALLA_EXPR_ANALYSIS_H_
#define SKALLA_EXPR_ANALYSIS_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "expr/expr.h"

namespace skalla {

/// An equality conjunct `b.base_col = r.detail_col`.
struct EquiAtom {
  std::string base_col;
  std::string detail_col;
};

/// Flattens nested ANDs into a conjunct list.
std::vector<ExprPtr> SplitConjuncts(const ExprPtr& expr);

/// ANDs the conjuncts back together; an empty list yields literal true.
ExprPtr MakeConjunction(std::vector<ExprPtr> conjuncts);

/// ORs the disjuncts together; an empty list yields literal false.
ExprPtr MakeDisjunction(std::vector<ExprPtr> disjuncts);

/// Decomposition of a condition θ into hash-joinable equality atoms plus a
/// residual predicate evaluated per candidate pair.
struct ConditionAnalysis {
  std::vector<EquiAtom> equi_atoms;
  /// Remaining conjuncts ANDed together; nullptr when none (always true).
  ExprPtr residual;
};

/// Splits θ's top-level conjuncts into equality atoms of the form
/// `b.X = r.Y` (either operand order) and everything else.
ConditionAnalysis AnalyzeCondition(const ExprPtr& theta);

/// Full classification of θ's top-level conjuncts by the relation sides
/// they reference — the plan-stage shape the columnar kernel evaluates
/// from. Equality atoms `b.X = r.Y` are pulled out as in
/// AnalyzeCondition; every remaining conjunct lands in exactly one class
/// and each class preserves the conjuncts' textual order. Since AND
/// evaluates each conjunct independently (NULL-as-false per operand),
/// the conjunction of the classes is semantically identical to θ, which
/// is what lets the kernel evaluate detail-only conjuncts as a batched
/// selection before grouping.
struct ConjunctClasses {
  std::vector<EquiAtom> equi_atoms;
  /// Conjuncts referencing only detail columns — vectorizable per row.
  std::vector<ExprPtr> detail_only;
  /// Conjuncts referencing both sides — evaluated per candidate pair.
  std::vector<ExprPtr> correlated;
  /// Conjuncts referencing only base columns (or no columns at all) —
  /// evaluated once per base row.
  std::vector<ExprPtr> base_only;
};

ConjunctClasses ClassifyCondition(const ExprPtr& theta);

/// A comparison conjunct whose operands cleanly separate by side,
/// normalized to `base_expr op detail_expr`.
struct SeparableComparison {
  ExprPtr base_expr;    // References only base columns (or constants).
  BinaryOp op;          // A comparison operator.
  ExprPtr detail_expr;  // References only detail columns (or constants).
};

/// Recognizes a separable comparison; nullopt otherwise. At least one side
/// must reference its relation's columns (constant-vs-constant is not
/// interesting to the optimizer and yields nullopt).
std::optional<SeparableComparison> ExtractSeparableComparison(
    const ExprPtr& conjunct);

/// A closed numeric interval.
struct Interval {
  double lo;
  double hi;
};

/// Interval arithmetic over a detail-side expression: computes bounds of
/// the expression's value given per-column bounds supplied by `col_range`
/// (returning nullopt when a column's range is unknown). Supports
/// +, -, *, unary minus, literals, and division by a non-zero constant.
std::optional<Interval> EvalDetailInterval(
    const ExprPtr& expr,
    const std::function<std::optional<Interval>(const std::string&)>&
        col_range);

/// Cheap selectivity estimate for one conjunct: the expected fraction of
/// detail rows it accepts, in (0, 1]. `col_range` supplies per-column
/// [min, max] knowledge when available — aggregated chunk stats, or a
/// PartitionInfo ColumnDistribution's range — and may always return
/// nullopt. Heuristic and deterministic; used only to order conjunct
/// evaluation (most selective first), never for correctness.
double EstimateConjunctSelectivity(
    const ExprPtr& conjunct,
    const std::function<std::optional<Interval>(const std::string&)>&
        col_range);

/// Whether θ entails `b.base_col = r.detail_col`, i.e. contains that
/// equality as a top-level conjunct.
bool EntailsEquality(const ExprPtr& theta, const std::string& base_col,
                     const std::string& detail_col);

/// Whether θ entails, for every pair in `pairs`, the corresponding
/// equality conjunct.
bool EntailsAllEqualities(const ExprPtr& theta,
                          const std::vector<EquiAtom>& pairs);

}  // namespace skalla

#endif  // SKALLA_EXPR_ANALYSIS_H_
