// Terse construction helpers for expression trees, used by tests,
// examples, and the OLAP query helpers. Example 1 of the paper reads:
//
//   And(Eq(RCol("SourceAS"), BCol("SourceAS")),
//       Eq(RCol("DestAS"), BCol("DestAS")))

#ifndef SKALLA_EXPR_BUILDER_H_
#define SKALLA_EXPR_BUILDER_H_

#include <string>
#include <utility>

#include "expr/expr.h"

namespace skalla {

/// Reference to a base-relation column (b.name).
inline ExprPtr BCol(std::string name) {
  return Expr::ColumnRef(ExprSide::kBase, std::move(name));
}

/// Reference to a detail-relation column (r.name).
inline ExprPtr RCol(std::string name) {
  return Expr::ColumnRef(ExprSide::kDetail, std::move(name));
}

inline ExprPtr Lit(Value v) { return Expr::Literal(std::move(v)); }

inline ExprPtr Eq(ExprPtr a, ExprPtr b) {
  return Expr::Binary(BinaryOp::kEq, std::move(a), std::move(b));
}
inline ExprPtr Ne(ExprPtr a, ExprPtr b) {
  return Expr::Binary(BinaryOp::kNe, std::move(a), std::move(b));
}
inline ExprPtr Lt(ExprPtr a, ExprPtr b) {
  return Expr::Binary(BinaryOp::kLt, std::move(a), std::move(b));
}
inline ExprPtr Le(ExprPtr a, ExprPtr b) {
  return Expr::Binary(BinaryOp::kLe, std::move(a), std::move(b));
}
inline ExprPtr Gt(ExprPtr a, ExprPtr b) {
  return Expr::Binary(BinaryOp::kGt, std::move(a), std::move(b));
}
inline ExprPtr Ge(ExprPtr a, ExprPtr b) {
  return Expr::Binary(BinaryOp::kGe, std::move(a), std::move(b));
}
inline ExprPtr And(ExprPtr a, ExprPtr b) {
  return Expr::Binary(BinaryOp::kAnd, std::move(a), std::move(b));
}
inline ExprPtr Or(ExprPtr a, ExprPtr b) {
  return Expr::Binary(BinaryOp::kOr, std::move(a), std::move(b));
}
inline ExprPtr Not(ExprPtr a) {
  return Expr::Unary(UnaryOp::kNot, std::move(a));
}
inline ExprPtr Add(ExprPtr a, ExprPtr b) {
  return Expr::Binary(BinaryOp::kAdd, std::move(a), std::move(b));
}
inline ExprPtr Sub(ExprPtr a, ExprPtr b) {
  return Expr::Binary(BinaryOp::kSub, std::move(a), std::move(b));
}
inline ExprPtr Mul(ExprPtr a, ExprPtr b) {
  return Expr::Binary(BinaryOp::kMul, std::move(a), std::move(b));
}
inline ExprPtr Div(ExprPtr a, ExprPtr b) {
  return Expr::Binary(BinaryOp::kDiv, std::move(a), std::move(b));
}

}  // namespace skalla

#endif  // SKALLA_EXPR_BUILDER_H_
