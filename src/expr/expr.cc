#include "expr/expr.h"

#include <cmath>

#include "common/macros.h"
#include "common/string_util.h"

namespace skalla {

bool IsComparisonOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

bool IsArithmeticOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
    case BinaryOp::kMod:
      return true;
    default:
      return false;
  }
}

BinaryOp FlipComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt:
      return BinaryOp::kGt;
    case BinaryOp::kLe:
      return BinaryOp::kGe;
    case BinaryOp::kGt:
      return BinaryOp::kLt;
    case BinaryOp::kGe:
      return BinaryOp::kLe;
    default:
      return op;  // Eq/Ne are symmetric.
  }
}

std::string_view BinaryOpToString(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kMod:
      return "%";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
  }
  return "?";
}

ExprPtr Expr::Literal(Value v) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kLiteral;
  e->literal_ = std::move(v);
  return e;
}

ExprPtr Expr::ColumnRef(ExprSide side, std::string name) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kColumnRef;
  e->side_ = side;
  e->name_ = std::move(name);
  return e;
}

ExprPtr Expr::Unary(UnaryOp op, ExprPtr operand) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kUnary;
  e->unary_op_ = op;
  e->left_ = std::move(operand);
  return e;
}

ExprPtr Expr::Binary(BinaryOp op, ExprPtr left, ExprPtr right) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kBinary;
  e->binary_op_ = op;
  e->left_ = std::move(left);
  e->right_ = std::move(right);
  return e;
}

ExprPtr Expr::InSet(ExprPtr operand, std::shared_ptr<const ValueSet> set) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kInSet;
  e->left_ = std::move(operand);
  e->set_ = std::move(set);
  return e;
}

bool Expr::is_bound() const {
  switch (kind_) {
    case ExprKind::kLiteral:
      return true;
    case ExprKind::kColumnRef:
      return index_ >= 0;
    case ExprKind::kUnary:
      return left_->is_bound();
    case ExprKind::kBinary:
      return left_->is_bound() && right_->is_bound();
    case ExprKind::kInSet:
      return left_->is_bound();
  }
  return false;
}

Result<ExprPtr> Expr::Bind(const Schema* base, const Schema* detail) const {
  switch (kind_) {
    case ExprKind::kLiteral:
      return Expr::Literal(literal_);
    case ExprKind::kColumnRef: {
      const Schema* schema = side_ == ExprSide::kBase ? base : detail;
      const char* side_name = side_ == ExprSide::kBase ? "base" : "detail";
      if (schema == nullptr) {
        return Status::InvalidArgument(
            StrCat("column ", name_, " references the ", side_name,
                   " side, but no ", side_name, " schema was provided"));
      }
      SKALLA_ASSIGN_OR_RETURN(size_t idx, schema->RequireIndex(name_));
      auto e = std::shared_ptr<Expr>(new Expr());
      e->kind_ = ExprKind::kColumnRef;
      e->side_ = side_;
      e->name_ = name_;
      e->index_ = static_cast<int>(idx);
      return ExprPtr(e);
    }
    case ExprKind::kUnary: {
      SKALLA_ASSIGN_OR_RETURN(ExprPtr operand, left_->Bind(base, detail));
      return Expr::Unary(unary_op_, std::move(operand));
    }
    case ExprKind::kBinary: {
      SKALLA_ASSIGN_OR_RETURN(ExprPtr l, left_->Bind(base, detail));
      SKALLA_ASSIGN_OR_RETURN(ExprPtr r, right_->Bind(base, detail));
      return Expr::Binary(binary_op_, std::move(l), std::move(r));
    }
    case ExprKind::kInSet: {
      SKALLA_ASSIGN_OR_RETURN(ExprPtr operand, left_->Bind(base, detail));
      return Expr::InSet(std::move(operand), set_);
    }
  }
  return Status::Internal("unknown expression kind");
}

namespace {

Value EvalArithmetic(BinaryOp op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  if (!a.is_numeric() || !b.is_numeric()) return Value::Null();
  if (op == BinaryOp::kDiv) {
    double denom = b.AsDouble();
    if (denom == 0.0) return Value::Null();
    return Value(a.AsDouble() / denom);
  }
  if (a.is_int64() && b.is_int64()) {
    int64_t x = a.int64();
    int64_t y = b.int64();
    switch (op) {
      case BinaryOp::kAdd:
        return Value(x + y);
      case BinaryOp::kSub:
        return Value(x - y);
      case BinaryOp::kMul:
        return Value(x * y);
      case BinaryOp::kMod:
        return y == 0 ? Value::Null() : Value(x % y);
      default:
        break;
    }
  }
  double x = a.AsDouble();
  double y = b.AsDouble();
  switch (op) {
    case BinaryOp::kAdd:
      return Value(x + y);
    case BinaryOp::kSub:
      return Value(x - y);
    case BinaryOp::kMul:
      return Value(x * y);
    case BinaryOp::kMod:
      return y == 0.0 ? Value::Null() : Value(std::fmod(x, y));
    default:
      break;
  }
  return Value::Null();
}

Value EvalComparison(BinaryOp op, const Value& a, const Value& b) {
  // SQL semantics: comparisons with NULL are not true.
  if (a.is_null() || b.is_null()) return Value::Null();
  bool result = false;
  switch (op) {
    case BinaryOp::kEq:
      result = a.Equals(b);
      break;
    case BinaryOp::kNe:
      result = !a.Equals(b);
      break;
    case BinaryOp::kLt:
      result = a.Compare(b) < 0;
      break;
    case BinaryOp::kLe:
      result = a.Compare(b) <= 0;
      break;
    case BinaryOp::kGt:
      result = a.Compare(b) > 0;
      break;
    case BinaryOp::kGe:
      result = a.Compare(b) >= 0;
      break;
    default:
      break;
  }
  return Value(int64_t{result ? 1 : 0});
}

inline bool Truthy(const Value& v) {
  if (v.is_null()) return false;
  if (v.is_int64()) return v.int64() != 0;
  if (v.is_float64()) return v.float64() != 0.0;
  return false;
}

}  // namespace

Value Expr::Eval(const Row* base, const Row* detail) const {
  switch (kind_) {
    case ExprKind::kLiteral:
      return literal_;
    case ExprKind::kColumnRef: {
      SKALLA_DCHECK(index_ >= 0, "evaluating unbound column reference");
      const Row* row = side_ == ExprSide::kBase ? base : detail;
      SKALLA_DCHECK(row != nullptr, "missing tuple for referenced side");
      return (*row)[static_cast<size_t>(index_)];
    }
    case ExprKind::kUnary: {
      Value v = left_->Eval(base, detail);
      if (unary_op_ == UnaryOp::kNot) {
        if (v.is_null()) return Value::Null();
        return Value(int64_t{Truthy(v) ? 0 : 1});
      }
      // kNeg
      if (v.is_null()) return Value::Null();
      if (v.is_int64()) return Value(-v.int64());
      if (v.is_float64()) return Value(-v.float64());
      return Value::Null();
    }
    case ExprKind::kBinary: {
      if (binary_op_ == BinaryOp::kAnd) {
        // Short-circuit; NULL treated as false at predicate level.
        Value l = left_->Eval(base, detail);
        if (!Truthy(l)) return Value(int64_t{0});
        Value r = right_->Eval(base, detail);
        return Value(int64_t{Truthy(r) ? 1 : 0});
      }
      if (binary_op_ == BinaryOp::kOr) {
        Value l = left_->Eval(base, detail);
        if (Truthy(l)) return Value(int64_t{1});
        Value r = right_->Eval(base, detail);
        return Value(int64_t{Truthy(r) ? 1 : 0});
      }
      Value l = left_->Eval(base, detail);
      Value r = right_->Eval(base, detail);
      if (IsArithmeticOp(binary_op_)) return EvalArithmetic(binary_op_, l, r);
      return EvalComparison(binary_op_, l, r);
    }
    case ExprKind::kInSet: {
      Value v = left_->Eval(base, detail);
      if (v.is_null()) return Value::Null();
      return Value(int64_t{set_ != nullptr && set_->Contains(v) ? 1 : 0});
    }
  }
  return Value::Null();
}

bool Expr::EvalBool(const Row* base, const Row* detail) const {
  return Truthy(Eval(base, detail));
}

bool Expr::Equals(const Expr& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case ExprKind::kLiteral:
      return literal_.Equals(other.literal_) &&
             literal_.type() == other.literal_.type();
    case ExprKind::kColumnRef:
      return side_ == other.side_ && name_ == other.name_;
    case ExprKind::kUnary:
      return unary_op_ == other.unary_op_ && left_->Equals(*other.left_);
    case ExprKind::kBinary:
      return binary_op_ == other.binary_op_ && left_->Equals(*other.left_) &&
             right_->Equals(*other.right_);
    case ExprKind::kInSet:
      return set_ == other.set_ && left_->Equals(*other.left_);
  }
  return false;
}

void Expr::CollectColumns(ExprSide side,
                          std::vector<std::string>* out) const {
  switch (kind_) {
    case ExprKind::kLiteral:
      return;
    case ExprKind::kColumnRef:
      if (side_ == side) out->push_back(name_);
      return;
    case ExprKind::kUnary:
      left_->CollectColumns(side, out);
      return;
    case ExprKind::kBinary:
      left_->CollectColumns(side, out);
      right_->CollectColumns(side, out);
      return;
    case ExprKind::kInSet:
      left_->CollectColumns(side, out);
      return;
  }
}

bool Expr::ReferencesSide(ExprSide side) const {
  switch (kind_) {
    case ExprKind::kLiteral:
      return false;
    case ExprKind::kColumnRef:
      return side_ == side;
    case ExprKind::kUnary:
      return left_->ReferencesSide(side);
    case ExprKind::kBinary:
      return left_->ReferencesSide(side) || right_->ReferencesSide(side);
    case ExprKind::kInSet:
      return left_->ReferencesSide(side);
  }
  return false;
}

std::string Expr::ToString() const {
  switch (kind_) {
    case ExprKind::kLiteral:
      return literal_.ToString();
    case ExprKind::kColumnRef:
      return StrCat(side_ == ExprSide::kBase ? "b." : "r.", name_);
    case ExprKind::kUnary:
      // Parenthesized so the operand cannot re-associate with a
      // following operator when the text is reparsed.
      return StrCat("(", unary_op_ == UnaryOp::kNot ? "NOT " : "-",
                    left_->ToString(), ")");
    case ExprKind::kBinary:
      return StrCat("(", left_->ToString(), " ",
                    BinaryOpToString(binary_op_), " ", right_->ToString(),
                    ")");
    case ExprKind::kInSet:
      return StrCat("(", left_->ToString(), " IN {",
                    set_ == nullptr ? size_t{0} : set_->size(), " values})");
  }
  return "?";
}

}  // namespace skalla
