// Scalar expressions over (base tuple b, detail tuple r) pairs: the GMDJ
// grouping conditions θ_i of Definition 1, as well as single-relation
// predicates and derived-column expressions.
//
// An Expr is an immutable AST whose column references carry a side marker
// (base or detail) and a column name. Bind() resolves names against
// concrete schemas, producing a new tree whose column references carry
// positional indices; only bound trees can be evaluated.

#ifndef SKALLA_EXPR_EXPR_H_
#define SKALLA_EXPR_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "types/row.h"
#include "types/schema.h"
#include "types/value.h"
#include "types/value_set.h"

namespace skalla {

/// Which tuple a column reference reads from.
enum class ExprSide : uint8_t {
  kBase = 0,    // b.X — the base-values relation B.
  kDetail = 1,  // r.Y — the detail relation R.
};

enum class ExprKind : uint8_t {
  kLiteral = 0,
  kColumnRef = 1,
  kUnary = 2,
  kBinary = 3,
  kInSet = 4,  // operand IN {v1, v2, ...}
};

enum class UnaryOp : uint8_t {
  kNot = 0,
  kNeg = 1,
};

enum class BinaryOp : uint8_t {
  kAdd = 0,
  kSub = 1,
  kMul = 2,
  kDiv = 3,   // Always real-valued division.
  kMod = 4,
  kEq = 5,
  kNe = 6,
  kLt = 7,
  kLe = 8,
  kGt = 9,
  kGe = 10,
  kAnd = 11,
  kOr = 12,
};

/// Whether `op` is a comparison (=, <>, <, <=, >, >=).
bool IsComparisonOp(BinaryOp op);

/// Whether `op` is arithmetic (+, -, *, /, %).
bool IsArithmeticOp(BinaryOp op);

/// The comparison with operands swapped: a OP b == b OP' a.
BinaryOp FlipComparison(BinaryOp op);

std::string_view BinaryOpToString(BinaryOp op);

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Immutable expression node.
///
/// Evaluation semantics (simplified SQL three-valued logic):
///  - arithmetic with a NULL operand yields NULL;
///  - comparisons involving NULL yield false;
///  - AND/OR treat NULL operands as false;
///  - kDiv yields FLOAT64; division by zero yields NULL;
///  - other arithmetic preserves INT64 when both operands are INT64.
class Expr {
 public:
  /// Factories.
  static ExprPtr Literal(Value v);
  static ExprPtr ColumnRef(ExprSide side, std::string name);
  static ExprPtr Unary(UnaryOp op, ExprPtr operand);
  static ExprPtr Binary(BinaryOp op, ExprPtr left, ExprPtr right);
  /// Set-membership predicate; the distribution-aware group reduction
  /// filters of Theorem 4 are built from these.
  static ExprPtr InSet(ExprPtr operand, std::shared_ptr<const ValueSet> set);

  ExprKind kind() const { return kind_; }

  // --- kLiteral ---
  const Value& literal() const { return literal_; }

  // --- kColumnRef ---
  ExprSide side() const { return side_; }
  const std::string& column_name() const { return name_; }
  /// Resolved column index; -1 when unbound.
  int column_index() const { return index_; }
  bool is_bound() const;

  // --- kUnary / kBinary / kInSet ---
  UnaryOp unary_op() const { return unary_op_; }
  BinaryOp binary_op() const { return binary_op_; }
  const ExprPtr& left() const { return left_; }
  const ExprPtr& right() const { return right_; }
  const ExprPtr& operand() const { return left_; }
  const std::shared_ptr<const ValueSet>& value_set() const { return set_; }

  /// Resolves all column references against the given schemas. Detail-only
  /// expressions may pass nullptr for `base` (and vice versa); referencing
  /// a side with no schema is an error.
  Result<ExprPtr> Bind(const Schema* base, const Schema* detail) const;

  /// Evaluates a bound tree. `base`/`detail` may be nullptr if no column
  /// of that side occurs.
  Value Eval(const Row* base, const Row* detail) const;

  /// Evaluates a bound predicate tree to a boolean (NULL -> false).
  bool EvalBool(const Row* base, const Row* detail) const;

  /// Structural equality (names, not resolved indices).
  bool Equals(const Expr& other) const;

  /// Collects the names of columns referenced on `side` into `out`
  /// (duplicates possible).
  void CollectColumns(ExprSide side, std::vector<std::string>* out) const;

  /// Whether any column of `side` is referenced.
  bool ReferencesSide(ExprSide side) const;

  /// e.g. "(b.SourceAS = r.SourceAS AND r.NumBytes >= (b.sum1 / b.cnt1))".
  std::string ToString() const;

 private:
  Expr() = default;

  ExprKind kind_ = ExprKind::kLiteral;
  // kLiteral:
  Value literal_;
  // kColumnRef:
  ExprSide side_ = ExprSide::kBase;
  std::string name_;
  int index_ = -1;
  // kUnary (left_ = operand) / kBinary:
  UnaryOp unary_op_ = UnaryOp::kNot;
  BinaryOp binary_op_ = BinaryOp::kAnd;
  ExprPtr left_;
  ExprPtr right_;
  // kInSet:
  std::shared_ptr<const ValueSet> set_;
};

}  // namespace skalla

#endif  // SKALLA_EXPR_EXPR_H_
