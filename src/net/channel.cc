#include "net/channel.h"

namespace skalla {

void MessageChannel::Send(int from, std::vector<uint8_t> bytes) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(ChannelMessage{from, std::move(bytes)});
  }
  available_.notify_one();
}

ChannelMessage MessageChannel::Receive() {
  std::unique_lock<std::mutex> lock(mu_);
  available_.wait(lock, [this] { return !queue_.empty(); });
  ChannelMessage message = std::move(queue_.front());
  queue_.pop_front();
  return message;
}

size_t MessageChannel::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace skalla
