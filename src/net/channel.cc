#include "net/channel.h"

#include "common/string_util.h"
#include "obs/obs.h"

namespace skalla {

void MessageChannel::Send(int from, std::vector<uint8_t> bytes) {
  SKALLA_TRACE_INSTANT_ATTRS(
      "channel.send", "network",
      {{"from", StrCat(from)}, {"bytes", StrCat(bytes.size())}});
  SKALLA_COUNTER_ADD("skalla.net.channel.sends", 1);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return;
    queue_.push_back(ChannelMessage{from, std::move(bytes)});
  }
  available_.notify_one();
}

std::optional<ChannelMessage> MessageChannel::Receive() {
  // The span covers the blocking wait: in the async executor this is the
  // coordinator idling for the next site fragment.
  SKALLA_TRACE_SPAN(recv_span, "channel.recv", "network");
  std::unique_lock<std::mutex> lock(mu_);
  available_.wait(lock, [this] { return !queue_.empty() || closed_; });
  if (queue_.empty()) return std::nullopt;  // closed and drained
  ChannelMessage message = std::move(queue_.front());
  queue_.pop_front();
  SKALLA_SPAN_ATTR(recv_span, "from", static_cast<int64_t>(message.from));
  SKALLA_SPAN_ATTR(recv_span, "bytes",
                   static_cast<uint64_t>(message.bytes.size()));
  SKALLA_COUNTER_ADD("skalla.net.channel.recvs", 1);
  return message;
}

void MessageChannel::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  available_.notify_all();
}

bool MessageChannel::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

size_t MessageChannel::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace skalla
