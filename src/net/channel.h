// MessageChannel: a multi-producer single-consumer queue of serialized
// messages, used by the asynchronous executor to deliver site fragments
// to the coordinator as they complete.

#ifndef SKALLA_NET_CHANNEL_H_
#define SKALLA_NET_CHANNEL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

namespace skalla {

/// One in-flight message: the sender's endpoint id plus its payload.
struct ChannelMessage {
  int from = 0;
  std::vector<uint8_t> bytes;
};

/// Thread-safe FIFO. Senders never block; Receive blocks until a message
/// is available or the channel is closed.
class MessageChannel {
 public:
  MessageChannel() = default;
  MessageChannel(const MessageChannel&) = delete;
  MessageChannel& operator=(const MessageChannel&) = delete;

  /// Enqueues a message. Sends after Close are dropped (the consumer has
  /// declared it will not read further).
  void Send(int from, std::vector<uint8_t> bytes);

  /// Blocks until a message arrives and returns it. Returns nullopt once
  /// the channel is closed *and* drained: messages queued before Close
  /// are still delivered (drain-then-fail), so a producer can flush its
  /// final fragments and then close. Without Close, a Receive against a
  /// dead producer would block forever — teardown paths must Close.
  std::optional<ChannelMessage> Receive();

  /// Closes the channel: wakes any blocked Receive, lets queued messages
  /// drain, and makes every subsequent Receive after the drain return
  /// nullopt. Idempotent; callable from any thread.
  void Close();

  bool closed() const;

  /// Number of queued messages (racy; for tests/diagnostics).
  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable available_;
  std::deque<ChannelMessage> queue_;
  bool closed_ = false;
};

}  // namespace skalla

#endif  // SKALLA_NET_CHANNEL_H_
