// MessageChannel: a multi-producer single-consumer queue of serialized
// messages, used by the asynchronous executor to deliver site fragments
// to the coordinator as they complete.

#ifndef SKALLA_NET_CHANNEL_H_
#define SKALLA_NET_CHANNEL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

namespace skalla {

/// One in-flight message: the sender's endpoint id plus its payload.
struct ChannelMessage {
  int from = 0;
  std::vector<uint8_t> bytes;
};

/// Thread-safe FIFO. Senders never block; Receive blocks until a message
/// is available.
class MessageChannel {
 public:
  MessageChannel() = default;
  MessageChannel(const MessageChannel&) = delete;
  MessageChannel& operator=(const MessageChannel&) = delete;

  void Send(int from, std::vector<uint8_t> bytes);

  /// Blocks until a message arrives and returns it.
  ChannelMessage Receive();

  /// Number of queued messages (racy; for tests/diagnostics).
  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable available_;
  std::deque<ChannelMessage> queue_;
};

}  // namespace skalla

#endif  // SKALLA_NET_CHANNEL_H_
