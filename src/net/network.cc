#include "net/network.h"

namespace skalla {

double SimulatedNetwork::Transfer(int from, int to, uint64_t bytes) {
  total_bytes_ += bytes;
  total_messages_ += 1;
  LinkStats& link = links_[{from, to}];
  link.messages += 1;
  link.bytes += bytes;
  return TransferTime(bytes);
}

LinkStats SimulatedNetwork::Link(int from, int to) const {
  auto it = links_.find({from, to});
  return it == links_.end() ? LinkStats{} : it->second;
}

void SimulatedNetwork::Reset() {
  total_bytes_ = 0;
  total_messages_ = 0;
  links_.clear();
}

}  // namespace skalla
