#include "net/network.h"

#include "common/string_util.h"
#include "obs/obs.h"

namespace skalla {

double SimulatedNetwork::Transfer(int from, int to, uint64_t bytes) {
  SKALLA_TRACE_SPAN(send_span, "net.send", "network");
  SKALLA_SPAN_ATTR(send_span, "from", static_cast<int64_t>(from));
  SKALLA_SPAN_ATTR(send_span, "to", static_cast<int64_t>(to));
  SKALLA_SPAN_ATTR(send_span, "bytes", bytes);
  SKALLA_COUNTER_ADD("skalla.net.messages", 1);
  SKALLA_COUNTER_ADD("skalla.net.bytes", bytes);
  {
    std::lock_guard<std::mutex> lock(mu_);
    total_bytes_ += bytes;
    total_messages_ += 1;
    LinkStats& link = links_[{from, to}];
    link.messages += 1;
    link.bytes += bytes;
  }
  double modeled = TransferTime(bytes);
  SKALLA_SPAN_ATTR(send_span, "modeled_ms", modeled * 1e3);
  return modeled;
}

LinkStats SimulatedNetwork::Link(int from, int to) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = links_.find({from, to});
  return it == links_.end() ? LinkStats{} : it->second;
}

void SimulatedNetwork::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  total_bytes_ = 0;
  total_messages_ = 0;
  links_.clear();
}

}  // namespace skalla
