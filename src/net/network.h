// SimulatedNetwork: accounting and cost model for coordinator <-> site
// traffic.
//
// Byte counts come from real serialization (net/serde.h), so they are
// exact. Time is modeled: each message costs a fixed latency plus
// bytes / bandwidth. The coordinator's link is the shared bottleneck —
// messages it sends or receives are serialized on that link — which is
// what turns quadratic byte growth into quadratic response-time growth in
// the paper's speed-up experiments.

#ifndef SKALLA_NET_NETWORK_H_
#define SKALLA_NET_NETWORK_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <utility>

namespace skalla {

/// Endpoint id of the coordinator (sites use their non-negative ids).
inline constexpr int kCoordinatorId = -1;

struct NetworkConfig {
  /// Per-message fixed latency, seconds. Default 1 ms (WAN-ish RTT/2).
  double latency_s = 0.001;
  /// Link bandwidth, bytes/second. Default 10 MB/s, the order of a 100
  /// Mbit research WAN circa the paper.
  double bandwidth_bytes_per_s = 10.0 * 1000 * 1000;
};

struct LinkStats {
  uint64_t messages = 0;
  uint64_t bytes = 0;
};

/// Records transfers and charges modeled time. Thread-safe: concurrent
/// queries sharing one executor record transfers from multiple threads
/// (accounting serializes on an internal mutex; the modeled time is a
/// pure function of the byte count).
class SimulatedNetwork {
 public:
  SimulatedNetwork() = default;
  explicit SimulatedNetwork(NetworkConfig config) : config_(config) {}

  /// Records a message of `bytes` from endpoint `from` to `to` and
  /// returns its modeled transfer time in seconds.
  double Transfer(int from, int to, uint64_t bytes);

  /// Modeled time for a message of `bytes`, without recording it.
  double TransferTime(uint64_t bytes) const {
    return config_.latency_s +
           static_cast<double>(bytes) / config_.bandwidth_bytes_per_s;
  }

  const NetworkConfig& config() const { return config_; }
  uint64_t total_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_bytes_;
  }
  uint64_t total_messages() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_messages_;
  }

  /// Stats for the (from, to) directed link.
  LinkStats Link(int from, int to) const;

  void Reset();

 private:
  NetworkConfig config_;
  mutable std::mutex mu_;  // guards the counters and the link map
  uint64_t total_bytes_ = 0;
  uint64_t total_messages_ = 0;
  std::map<std::pair<int, int>, LinkStats> links_;
};

}  // namespace skalla

#endif  // SKALLA_NET_NETWORK_H_
