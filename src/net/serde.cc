#include "net/serde.h"

#include <cstring>

#include "common/macros.h"
#include "common/string_util.h"

namespace skalla {

void PutVarint(std::vector<uint8_t>* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

namespace {

size_t VarintSize(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

uint64_t ValueSize(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return 1;
    case ValueType::kInt64:
      return 1 + VarintSize(ZigzagEncode(v.int64()));
    case ValueType::kFloat64:
      return 1 + 8;
    case ValueType::kString:
      return 1 + VarintSize(v.str().size()) + v.str().size();
  }
  return 1;
}

}  // namespace

void WriteValue(std::vector<uint8_t>* out, const Value& v) {
  out->push_back(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      return;
    case ValueType::kInt64:
      PutVarint(out, ZigzagEncode(v.int64()));
      return;
    case ValueType::kFloat64: {
      double d = v.float64();
      uint8_t raw[8];
      std::memcpy(raw, &d, 8);
      out->insert(out->end(), raw, raw + 8);
      return;
    }
    case ValueType::kString: {
      const std::string& s = v.str();
      PutVarint(out, s.size());
      out->insert(out->end(), s.begin(), s.end());
      return;
    }
  }
}

Result<Value> ReadValue(ByteReader* reader) {
  SKALLA_ASSIGN_OR_RETURN(uint8_t tag, reader->ReadByte());
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kInt64: {
      SKALLA_ASSIGN_OR_RETURN(uint64_t raw, reader->ReadVarint());
      return Value(ZigzagDecode(raw));
    }
    case ValueType::kFloat64: {
      SKALLA_ASSIGN_OR_RETURN(const uint8_t* raw, reader->ReadBytes(8));
      double d;
      std::memcpy(&d, raw, 8);
      return Value(d);
    }
    case ValueType::kString: {
      SKALLA_ASSIGN_OR_RETURN(uint64_t len, reader->ReadVarint());
      SKALLA_ASSIGN_OR_RETURN(const uint8_t* bytes, reader->ReadBytes(len));
      return Value(std::string(reinterpret_cast<const char*>(bytes), len));
    }
    default:
      return Status::IOError(StrCat("bad value type tag ", int{tag}));
  }
}

Result<uint64_t> ByteReader::ReadVarint() {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (pos_ >= size_) return Status::IOError("truncated varint");
    uint8_t b = data_[pos_++];
    v |= static_cast<uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
    if (shift >= 64) return Status::IOError("varint too long");
  }
}

Result<uint8_t> ByteReader::ReadByte() {
  if (pos_ >= size_) return Status::IOError("truncated buffer");
  return data_[pos_++];
}

Result<const uint8_t*> ByteReader::ReadBytes(size_t n) {
  if (pos_ + n > size_) return Status::IOError("truncated buffer");
  const uint8_t* p = data_ + pos_;
  pos_ += n;
  return p;
}

void WriteTable(const Table& table, std::vector<uint8_t>* out) {
  const Schema& schema = *table.schema();
  PutVarint(out, schema.num_fields());
  for (const Field& f : schema.fields()) {
    PutVarint(out, f.name.size());
    out->insert(out->end(), f.name.begin(), f.name.end());
    out->push_back(static_cast<uint8_t>(f.type));
  }
  PutVarint(out, table.num_rows());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (const Value& v : table.row(r)) WriteValue(out, v);
  }
}

Result<Table> ReadTable(const uint8_t* data, size_t size) {
  ByteReader reader(data, size);
  SKALLA_ASSIGN_OR_RETURN(uint64_t num_fields, reader.ReadVarint());
  if (num_fields > 1u << 20) return Status::IOError("implausible field count");
  std::vector<Field> fields;
  fields.reserve(num_fields);
  for (uint64_t i = 0; i < num_fields; ++i) {
    SKALLA_ASSIGN_OR_RETURN(uint64_t name_len, reader.ReadVarint());
    SKALLA_ASSIGN_OR_RETURN(const uint8_t* name_bytes,
                            reader.ReadBytes(name_len));
    SKALLA_ASSIGN_OR_RETURN(uint8_t type, reader.ReadByte());
    if (type > static_cast<uint8_t>(ValueType::kString)) {
      return Status::IOError(StrCat("bad field type tag ", int{type}));
    }
    fields.push_back(
        Field{std::string(reinterpret_cast<const char*>(name_bytes),
                          name_len),
              static_cast<ValueType>(type)});
  }
  SKALLA_ASSIGN_OR_RETURN(SchemaPtr schema, Schema::Make(std::move(fields)));
  SKALLA_ASSIGN_OR_RETURN(uint64_t num_rows, reader.ReadVarint());
  Table table(schema);
  table.Reserve(num_rows);
  for (uint64_t r = 0; r < num_rows; ++r) {
    Row row;
    row.reserve(num_fields);
    for (uint64_t c = 0; c < num_fields; ++c) {
      SKALLA_ASSIGN_OR_RETURN(Value v, ReadValue(&reader));
      row.push_back(std::move(v));
    }
    table.AppendUnchecked(std::move(row));
  }
  if (reader.remaining() != 0) {
    return Status::IOError("trailing bytes after table payload");
  }
  return table;
}

uint64_t SerializedTableSize(const Table& table) {
  const Schema& schema = *table.schema();
  uint64_t size = VarintSize(schema.num_fields());
  for (const Field& f : schema.fields()) {
    size += VarintSize(f.name.size()) + f.name.size() + 1;
  }
  size += VarintSize(table.num_rows());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (const Value& v : table.row(r)) size += ValueSize(v);
  }
  return size;
}

}  // namespace skalla
