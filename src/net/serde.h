// Binary (de)serialization of rows and tables. Every transfer between
// Skalla sites and the coordinator serializes through this module, so the
// byte counts reported by the simulated network are real encoded sizes,
// not estimates.
//
// Wire format (little-endian, varint-based):
//   table   := field_count:varint field* row_count:varint row*
//   field   := name_len:varint name_bytes type:u8
//   row     := cell*                          (arity from schema)
//   cell    := type:u8 payload
//   payload := (null: empty) | (int64: zigzag varint)
//            | (float64: 8 raw bytes) | (string: len:varint bytes)

#ifndef SKALLA_NET_SERDE_H_
#define SKALLA_NET_SERDE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "storage/table.h"

namespace skalla {

/// Appends a varint-encoded unsigned integer to `out`.
void PutVarint(std::vector<uint8_t>* out, uint64_t v);

/// Zigzag encoding for signed integers.
inline uint64_t ZigzagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigzagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

/// Cursor over an encoded buffer.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  Result<uint64_t> ReadVarint();
  Result<uint8_t> ReadByte();
  /// Reads `n` raw bytes; the returned pointer aliases the buffer.
  Result<const uint8_t*> ReadBytes(size_t n);

  size_t remaining() const { return size_ - pos_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// Appends one value (type tag + payload per the cell format above).
void WriteValue(std::vector<uint8_t>* out, const Value& v);

/// Reads one value written by WriteValue.
Result<Value> ReadValue(ByteReader* reader);

/// Serializes a full table (schema + rows).
void WriteTable(const Table& table, std::vector<uint8_t>* out);

/// Deserializes a table written by WriteTable.
Result<Table> ReadTable(const uint8_t* data, size_t size);

/// The exact encoded size of `table`, without materializing the buffer
/// (used for byte accounting on the hot path).
uint64_t SerializedTableSize(const Table& table);

}  // namespace skalla

#endif  // SKALLA_NET_SERDE_H_
