#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

#include "common/macros.h"
#include "common/string_util.h"

namespace skalla {
namespace obs {

// --- Histogram -----------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)) {
  SKALLA_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()),
               "histogram bucket bounds must be sorted ascending");
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Record(double value) {
  size_t bucket =
      static_cast<size_t>(std::lower_bound(bounds_.begin(), bounds_.end(),
                                           value) -
                          bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> Histogram::LatencyBucketsUs() {
  std::vector<double> bounds;
  for (double decade = 1.0; decade <= 1e6; decade *= 10.0) {
    bounds.push_back(decade);
    bounds.push_back(2.0 * decade);
    bounds.push_back(5.0 * decade);
  }
  bounds.push_back(1e7);  // 10 s.
  return bounds;
}

// --- MetricsRegistry -------------------------------------------------------

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // Leaked.
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  Instrument& instrument = instruments_[name];
  SKALLA_CHECK(instrument.gauge == nullptr && instrument.histogram == nullptr,
               name.c_str());
  if (instrument.counter == nullptr) {
    instrument.counter = std::make_unique<Counter>();
  }
  return *instrument.counter;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  Instrument& instrument = instruments_[name];
  SKALLA_CHECK(instrument.counter == nullptr &&
                   instrument.histogram == nullptr,
               name.c_str());
  if (instrument.gauge == nullptr) {
    instrument.gauge = std::make_unique<Gauge>();
  }
  return *instrument.gauge;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  Instrument& instrument = instruments_[name];
  SKALLA_CHECK(instrument.counter == nullptr && instrument.gauge == nullptr,
               name.c_str());
  if (instrument.histogram == nullptr) {
    if (bounds.empty()) bounds = Histogram::LatencyBucketsUs();
    instrument.histogram = std::make_unique<Histogram>(std::move(bounds));
  }
  return *instrument.histogram;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\n";
  bool first = true;
  for (const auto& [name, instrument] : instruments_) {
    if (!first) out += ",\n";
    first = false;
    out += StrPrintf("  \"%s\": ", name.c_str());
    if (instrument.counter != nullptr) {
      out += StrPrintf("%llu", static_cast<unsigned long long>(
                                   instrument.counter->value()));
    } else if (instrument.gauge != nullptr) {
      out += StrPrintf("%.6g", instrument.gauge->value());
    } else {
      const Histogram& h = *instrument.histogram;
      out += StrPrintf("{\"count\":%llu,\"sum\":%.6g,\"mean\":%.6g,"
                       "\"buckets\":[",
                       static_cast<unsigned long long>(h.count()), h.sum(),
                       h.mean());
      for (size_t i = 0; i <= h.bounds().size(); ++i) {
        if (i > 0) out += ",";
        if (i < h.bounds().size()) {
          out += StrPrintf("{\"le\":%.6g,\"n\":%llu}", h.bounds()[i],
                           static_cast<unsigned long long>(
                               h.bucket_count(i)));
        } else {
          out += StrPrintf("{\"le\":\"inf\",\"n\":%llu}",
                           static_cast<unsigned long long>(
                               h.bucket_count(i)));
        }
      }
      out += "]}";
    }
  }
  out += "\n}\n";
  return out;
}

bool MetricsRegistry::WriteJson(const std::string& path) const {
  std::string json = ToJson();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  bool ok = written == json.size();
  ok = std::fclose(f) == 0 && ok;
  return ok;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, instrument] : instruments_) {
    (void)name;
    if (instrument.counter != nullptr) {
      instrument.counter->Reset();
    } else if (instrument.gauge != nullptr) {
      instrument.gauge->Set(0.0);
    } else if (instrument.histogram != nullptr) {
      instrument.histogram->Reset();
    }
  }
}

}  // namespace obs
}  // namespace skalla
