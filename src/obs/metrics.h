// MetricsRegistry: named counters, gauges, and fixed-bucket histograms
// for the executor and network layers, dumpable as JSON for the bench
// harness (BENCH_*.json trajectories).
//
// Naming scheme: dotted lowercase paths, subsystem first —
//   skalla.round.bytes_to_coord     counter   bytes shipped up per plan
//   skalla.round.bytes_to_sites     counter   bytes shipped down
//   skalla.site.eval_us             histogram per-site round eval time
//   skalla.coord.merge_us           histogram per-fragment merge time
//   skalla.net.messages             counter   simulated-network messages
//   skalla.net.retries              counter   site-round retry attempts
//
// All instruments are lock-free on the update path (atomics); the
// registry mutex is taken only on first lookup of a name and during
// dumps. Instruments are never deleted: references returned by the
// Get* functions stay valid for the registry's lifetime.

#ifndef SKALLA_OBS_METRICS_H_
#define SKALLA_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace skalla {
namespace obs {

/// Monotonically increasing integer metric.
class Counter {
 public:
  void Add(uint64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-value-wins floating-point metric.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. Bucket i counts samples <= bounds[i]; one
/// overflow bucket counts the rest. Bounds are set at creation and
/// immutable afterwards.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Record(double value);

  /// Drops all samples in place (bounds are kept, references stay valid).
  void Reset();

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const {
    uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }
  const std::vector<double>& bounds() const { return bounds_; }
  /// Count in bucket `i`; i == bounds().size() is the overflow bucket.
  uint64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Default bucket bounds for microsecond latencies: 1us .. 10s,
  /// decade-spaced with a 1-2-5 pattern.
  static std::vector<double> LatencyBucketsUs();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1.
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Name -> instrument registry. One global instance serves the process;
/// tests may construct private registries.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry used by the SKALLA_METRIC_* macros.
  static MetricsRegistry& Global();

  /// Finds or creates the named instrument. A name identifies exactly
  /// one kind: requesting an existing name as a different kind aborts
  /// (instrumentation bug, not a user error).
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  /// `bounds` applies only on first creation.
  Histogram& GetHistogram(const std::string& name,
                          std::vector<double> bounds = {});

  /// Serializes every instrument as a JSON object keyed by name.
  /// Counters/gauges map to numbers; histograms to
  /// {"count","sum","mean","buckets":[{"le",n},...]}.
  std::string ToJson() const;

  /// Writes ToJson() to `path`. Returns false on I/O failure.
  bool WriteJson(const std::string& path) const;

  /// Zeroes all counters and gauges and drops histogram samples.
  /// (Instrument references stay valid.)
  void Reset();

 private:
  struct Instrument {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu_;
  std::map<std::string, Instrument> instruments_;
};

}  // namespace obs
}  // namespace skalla

#endif  // SKALLA_OBS_METRICS_H_
