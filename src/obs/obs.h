// Instrumentation macros: the only way production code should touch the
// tracing/metrics layer.
//
// Compile-time gate: when the build defines SKALLA_TRACING=1 (the CMake
// option of the same name, ON by default), the macros emit spans into
// obs::Tracer::Global() and updates into obs::MetricsRegistry::Global().
// When it is off, every macro expands to a no-op statement — zero code
// in the hot path, and argument expressions are never evaluated.
//
// Run-time gate: even when compiled in, spans record nothing until
// obs::Tracer::Global().set_enabled(true); disabled-tracer spans cost a
// single relaxed atomic load. Metric updates are always live when
// compiled in (a relaxed fetch_add).
//
//   {
//     SKALLA_TRACE_SPAN(span, "round:md1", "executor");
//     SKALLA_SPAN_ATTR(span, "sites", num_sites);
//     ...
//   }                         // span ends here
//   SKALLA_TRACE_INSTANT("fault.injected", "fault");
//   SKALLA_COUNTER_ADD("skalla.net.retries", 1);
//   SKALLA_HISTOGRAM_RECORD("skalla.site.eval_us", elapsed_us);

#ifndef SKALLA_OBS_OBS_H_
#define SKALLA_OBS_OBS_H_

#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace skalla {
namespace obs {

/// True when the build compiled the instrumentation macros in.
constexpr bool TracingCompiledIn() {
#if defined(SKALLA_TRACING) && SKALLA_TRACING
  return true;
#else
  return false;
#endif
}

// Metric update helpers behind the SKALLA_COUNTER_ADD /
// SKALLA_GAUGE_SET / SKALLA_HISTOGRAM_RECORD macros. Besides the named
// global instrument, each update is mirrored into a per-query
// "name@q<id>" instrument when a query-id scope is active *and* the
// tracer is enabled — the tracer gate bounds instrument cardinality to
// sessions that asked for telemetry.

inline void CounterAdd(const std::string& name, uint64_t delta) {
  MetricsRegistry::Global().GetCounter(name).Add(delta);
  uint64_t qid = CurrentQueryId();
  if (qid != 0 && Tracer::Global().enabled()) {
    MetricsRegistry::Global().GetCounter(StrCat(name, "@q", qid)).Add(delta);
  }
}

inline void GaugeSet(const std::string& name, double value) {
  MetricsRegistry::Global().GetGauge(name).Set(value);
  uint64_t qid = CurrentQueryId();
  if (qid != 0 && Tracer::Global().enabled()) {
    MetricsRegistry::Global().GetGauge(StrCat(name, "@q", qid)).Set(value);
  }
}

inline void HistogramRecord(const std::string& name, double value) {
  MetricsRegistry::Global().GetHistogram(name).Record(value);
  uint64_t qid = CurrentQueryId();
  if (qid != 0 && Tracer::Global().enabled()) {
    MetricsRegistry::Global()
        .GetHistogram(StrCat(name, "@q", qid))
        .Record(value);
  }
}

}  // namespace obs
}  // namespace skalla

#if defined(SKALLA_TRACING) && SKALLA_TRACING

/// Declares a RAII span named `var` covering the rest of the scope.
#define SKALLA_TRACE_SPAN(var, name, category) \
  ::skalla::obs::Span var =                    \
      ::skalla::obs::Tracer::Global().StartSpan((name), (category))

/// Like SKALLA_TRACE_SPAN but parented under the given span id instead
/// of the calling thread's innermost open span (0 = stack behavior).
/// For work handed to another thread, e.g. morsels on a worker pool.
#define SKALLA_TRACE_SPAN_UNDER(var, name, category, parent_id)      \
  ::skalla::obs::Span var =                                          \
      ::skalla::obs::Tracer::Global().StartSpanWithParent((name),    \
                                                          (category), \
                                                          (parent_id))

/// Attaches an attribute to a span declared with SKALLA_TRACE_SPAN.
#define SKALLA_SPAN_ATTR(var, key, value) var.AddAttr((key), (value))

/// Ends a span declared with SKALLA_TRACE_SPAN before scope exit.
#define SKALLA_SPAN_END(var) var.End()

/// Records an instant event (a zero-duration mark on the timeline).
#define SKALLA_TRACE_INSTANT(name, category) \
  ::skalla::obs::Tracer::Global().Instant((name), (category))

/// Instant event with attributes: pass a braced initializer list of
/// {"key", "value"} string pairs as the third argument.
#define SKALLA_TRACE_INSTANT_ATTRS(name, category, ...) \
  ::skalla::obs::Tracer::Global().Instant((name), (category), __VA_ARGS__)

/// Adds `delta` to the named global counter (and its per-query mirror
/// when a query-id scope is active and the tracer enabled).
#define SKALLA_COUNTER_ADD(name, delta) \
  ::skalla::obs::CounterAdd((name), (delta))

/// Sets the named global gauge.
#define SKALLA_GAUGE_SET(name, value) \
  ::skalla::obs::GaugeSet((name), (value))

/// Records a sample into the named global histogram (latency buckets).
#define SKALLA_HISTOGRAM_RECORD(name, value) \
  ::skalla::obs::HistogramRecord((name), (value))

/// Emits the enclosed statements only in tracing builds — for setup code
/// (timers, locals) that exists solely to feed the other macros.
#define SKALLA_OBS_ONLY(...) __VA_ARGS__

#else  // !SKALLA_TRACING: everything expands to a no-op statement.

#define SKALLA_TRACE_SPAN(var, name, category) \
  do {                                         \
  } while (false)
#define SKALLA_TRACE_SPAN_UNDER(var, name, category, parent_id) \
  do {                                                          \
  } while (false)
#define SKALLA_SPAN_ATTR(var, key, value) \
  do {                                    \
  } while (false)
#define SKALLA_SPAN_END(var) \
  do {                       \
  } while (false)
#define SKALLA_TRACE_INSTANT(name, category) \
  do {                                       \
  } while (false)
#define SKALLA_TRACE_INSTANT_ATTRS(name, category, ...) \
  do {                                                  \
  } while (false)
#define SKALLA_COUNTER_ADD(name, delta) \
  do {                                  \
  } while (false)
#define SKALLA_GAUGE_SET(name, value) \
  do {                                \
  } while (false)
#define SKALLA_HISTOGRAM_RECORD(name, value) \
  do {                                       \
  } while (false)
#define SKALLA_OBS_ONLY(...)

#endif  // SKALLA_TRACING

#endif  // SKALLA_OBS_OBS_H_
