// ObsSession: command-line plumbing for the obs layer, shared by the
// benches and the RPC tools. Construct one at the top of main with
// (argc, argv) and the whole run is covered:
//
//   --trace-out=<path>     enable tracing; write Chrome trace-event JSON
//                          (open in chrome://tracing or ui.perfetto.dev)
//                          on clean shutdown
//   --metrics-out=<path>   write the global metrics registry as JSON on
//                          clean shutdown
//
// In builds with SKALLA_TRACING=OFF the flags are accepted but produce a
// note instead of a file (the instrumentation is compiled out).

#ifndef SKALLA_OBS_SESSION_H_
#define SKALLA_OBS_SESSION_H_

#include <cstdio>
#include <cstring>
#include <string>

#include "obs/obs.h"

namespace skalla {
namespace obs {

class ObsSession {
 public:
  ObsSession(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strncmp(arg, "--trace-out=", 12) == 0) {
        trace_path_ = arg + 12;
      } else if (std::strncmp(arg, "--metrics-out=", 14) == 0) {
        metrics_path_ = arg + 14;
      }
    }
    if (!trace_path_.empty()) {
      if (TracingCompiledIn()) {
        Tracer::Global().set_enabled(true);
      } else {
        std::fprintf(stderr,
                     "--trace-out ignored: built with SKALLA_TRACING=OFF\n");
      }
    }
  }

  ~ObsSession() {
    if (!trace_path_.empty() && TracingCompiledIn()) {
      if (Tracer::Global().WriteChromeJson(trace_path_)) {
        std::fprintf(stderr, "trace written to %s (%zu events)\n",
                     trace_path_.c_str(), Tracer::Global().NumEvents());
      } else {
        std::fprintf(stderr, "failed to write trace to %s\n",
                     trace_path_.c_str());
      }
    }
    if (!metrics_path_.empty()) {
      if (TracingCompiledIn() &&
          MetricsRegistry::Global().WriteJson(metrics_path_)) {
        std::fprintf(stderr, "metrics written to %s\n",
                     metrics_path_.c_str());
      } else {
        std::fprintf(stderr, "failed to write metrics to %s%s\n",
                     metrics_path_.c_str(),
                     TracingCompiledIn()
                         ? ""
                         : " (built with SKALLA_TRACING=OFF)");
      }
    }
  }

  /// Whether a given argv entry is one of the session's flags (so strict
  /// flag parsers can skip them instead of rejecting the invocation).
  static bool IsSessionFlag(const char* arg) {
    return std::strncmp(arg, "--trace-out=", 12) == 0 ||
           std::strncmp(arg, "--metrics-out=", 14) == 0;
  }

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

 private:
  std::string trace_path_;
  std::string metrics_path_;
};

}  // namespace obs
}  // namespace skalla

#endif  // SKALLA_OBS_SESSION_H_
