#include "obs/stats_report.h"

#include "common/string_util.h"
#include "core/eval_context.h"
#include "obs/obs.h"

namespace skalla {
namespace obs {

namespace {

// One annotated stage line: the measured RoundStats columns.
std::string RoundLine(const RoundStats& r) {
  std::string out;
  out += StrPrintf(
      "    analyzed: %llu bytes / %llu tuples down, %llu bytes / %llu "
      "tuples up\n",
      static_cast<unsigned long long>(r.bytes_to_sites),
      static_cast<unsigned long long>(r.tuples_to_sites),
      static_cast<unsigned long long>(r.bytes_to_coord),
      static_cast<unsigned long long>(r.tuples_to_coord));
  out += StrPrintf(
      "              site max %.3f ms (sum %.3f ms), coord %.3f ms, comm "
      "%.3f ms -> response %.3f ms\n",
      r.site_time_max * 1e3, r.site_time_sum * 1e3, r.coord_time * 1e3,
      r.comm_time * 1e3, r.ResponseTime() * 1e3);
  if (r.sites_skipped > 0 || r.site_retries > 0) {
    out += StrPrintf("              sites skipped %zu, retries %zu\n",
                     r.sites_skipped, r.site_retries);
  }
  if (r.wall_time > 0) {
    out += StrPrintf("              wall (overlapped) %.3f ms\n",
                     r.wall_time * 1e3);
  }
  if (r.wire_bytes > 0) {
    out += StrPrintf("              wire %llu bytes (frame headers incl.)\n",
                     static_cast<unsigned long long>(r.wire_bytes));
  }
  return out;
}

// Per-site breakdown under a round, present when the engine recorded
// SiteRoundProfiles (star, async, and rpc do; the tree engine aggregates
// through intermediate tiers and leaves the vector empty).
std::string SiteProfileLines(const RoundStats& r) {
  std::string out;
  if (r.site_profiles.empty()) return out;
  out +=
      "              site    wall_ms    eval_ms  morsel_ms    scanned"
      "    matched   idx_hits   bytes_in  bytes_out       rows\n";
  for (const SiteRoundProfile& p : r.site_profiles) {
    out += StrPrintf(
        "              %4d  %9.3f  %9.3f  %9.3f  %9llu  %9llu  %9llu"
        "  %9llu  %9llu  %9llu",
        p.site_id, p.wall_us / 1e3, p.eval_us / 1e3, p.morsel_us / 1e3,
        static_cast<unsigned long long>(p.rows_scanned),
        static_cast<unsigned long long>(p.rows_matched),
        static_cast<unsigned long long>(p.index_hits),
        static_cast<unsigned long long>(p.bytes_in),
        static_cast<unsigned long long>(p.bytes_out),
        static_cast<unsigned long long>(p.result_rows));
    if (p.engines_used != 0) {
      out += StrCat("  [", EngineSetToString(p.engines_used), "]");
    }
    if (p.duplicate_rounds > 0 || p.chaos_faults > 0) {
      out += StrPrintf("  (dup %llu, chaos %llu)",
                       static_cast<unsigned long long>(p.duplicate_rounds),
                       static_cast<unsigned long long>(p.chaos_faults));
    }
    out += "\n";
  }
  return out;
}

}  // namespace

std::string FormatStatsReport(const DistributedPlan& plan,
                              const ExecStats& stats, size_t num_sites,
                              const StatsReportOptions& options) {
  std::string out = "EXPLAIN ANALYZE\n";
  if (stats.query_id > 0) {
    out += StrPrintf("  query id: %llu\n",
                     static_cast<unsigned long long>(stats.query_id));
  }

  if (stats.from_cache) {
    out += StrPrintf(
        "  cache: HIT (sub-aggregate cache) — 0 evaluation rounds, 0 "
        "bytes transferred\n"
        "  total: 0 bytes, 0 tuples, 0 sync rounds over %zu stages + "
        "base\n",
        plan.stages.size());
    return out;
  }

  if (stats.rounds.size() != plan.stages.size() + 1) {
    out += StrPrintf(
        "  (stats have %zu rounds for a plan with %zu stages + base; "
        "was this ExecStats produced by this plan?)\n",
        stats.rounds.size(), plan.stages.size());
    out += stats.ToString();
    return out;
  }

  out += StrCat("  base: ", plan.base.ToString(),
                plan.sync_base ? " [sync]" : " [no-sync]", "\n");
  out += RoundLine(stats.rounds[0]);
  out += SiteProfileLines(stats.rounds[0]);
  for (size_t k = 0; k < plan.stages.size(); ++k) {
    out += StrCat("  stage ", k + 1, ": ",
                  plan.stages[k].ToString(num_sites), "\n");
    out += RoundLine(stats.rounds[k + 1]);
    out += SiteProfileLines(stats.rounds[k + 1]);
  }

  out += StrPrintf(
      "  total: %llu bytes (%llu down, %llu up), %llu tuples, %zu sync "
      "rounds, response %.3f ms\n",
      static_cast<unsigned long long>(stats.TotalBytes()),
      static_cast<unsigned long long>(stats.TotalBytesToSites()),
      static_cast<unsigned long long>(stats.TotalBytesToCoord()),
      static_cast<unsigned long long>(stats.TotalTuplesTransferred()),
      stats.NumSyncRounds(), stats.ResponseTime() * 1e3);
  if (stats.engines_used != 0) {
    out += StrCat("  engines: ", EngineSetToString(stats.engines_used), "\n");
  }
  if (stats.total_wire_bytes > 0) {
    out += StrPrintf(
        "  wire: %llu bytes on the wire (%llu outside rounds)\n",
        static_cast<unsigned long long>(stats.total_wire_bytes),
        static_cast<unsigned long long>(stats.setup_wire_bytes));
  }

  if (options.include_trace_tree) {
    if (TracingCompiledIn() && Tracer::Global().enabled()) {
      out += "  trace:\n";
      std::string tree = Tracer::Global().ToTreeString();
      // Indent the tree under the report.
      size_t start = 0;
      while (start < tree.size()) {
        size_t end = tree.find('\n', start);
        if (end == std::string::npos) end = tree.size();
        out += "    " + tree.substr(start, end - start) + "\n";
        start = end + 1;
      }
    } else {
      out += TracingCompiledIn()
                 ? "  trace: (tracer disabled; enable with .trace)\n"
                 : "  trace: (built with SKALLA_TRACING=OFF)\n";
    }
  }
  return out;
}

}  // namespace obs
}  // namespace skalla
