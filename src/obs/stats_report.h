// EXPLAIN ANALYZE: joins the distributed plan tree with the per-round
// ExecStats the executor measured (and, when tracing is enabled, the
// recorded span tree) into one annotated report — what EXPLAIN predicts,
// ANALYZE confirms.
//
// Every per-stage number is taken from the same RoundStats the executor
// filled in, so the report's byte/tuple columns sum exactly to the
// ExecStats totals (tested in tests/exec_stats_test.cc).

#ifndef SKALLA_OBS_STATS_REPORT_H_
#define SKALLA_OBS_STATS_REPORT_H_

#include <string>

#include "dist/exec.h"
#include "dist/plan.h"

namespace skalla {
namespace obs {

struct StatsReportOptions {
  /// Append the recorded span tree (Tracer::Global().ToTreeString())
  /// under the per-stage table. Only meaningful when the build has
  /// SKALLA_TRACING and the global tracer is enabled.
  bool include_trace_tree = false;
};

/// Renders the EXPLAIN ANALYZE report for an executed plan. `stats` must
/// come from executing `plan` (rounds[0] is the base stage; rounds[k+1]
/// annotates plan.stages[k]); a mismatched pair yields a diagnostic
/// header instead of per-stage rows.
std::string FormatStatsReport(const DistributedPlan& plan,
                              const ExecStats& stats, size_t num_sites,
                              const StatsReportOptions& options = {});

}  // namespace obs
}  // namespace skalla

#endif  // SKALLA_OBS_STATS_REPORT_H_
