#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <unordered_map>

#include "common/string_util.h"

namespace skalla {
namespace obs {

namespace {

// Tracer identity for the per-thread buffer cache. Serial numbers are
// never reused, so a died-and-reallocated Tracer cannot alias a stale
// cache entry.
std::atomic<uint64_t> g_tracer_serial{0};

std::atomic<uint64_t> g_next_query_id{0};
thread_local uint64_t t_current_query_id = 0;

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrPrintf("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

// --- Query-id scoping ---------------------------------------------------

uint64_t NextQueryId() { return g_next_query_id.fetch_add(1) + 1; }

uint64_t CurrentQueryId() { return t_current_query_id; }

QueryIdScope::QueryIdScope(uint64_t query_id) : saved_(t_current_query_id) {
  t_current_query_id = query_id;
}

QueryIdScope::~QueryIdScope() { t_current_query_id = saved_; }

// --- Span --------------------------------------------------------------

Span::Span(Tracer* tracer, std::string name, std::string category)
    : tracer_(tracer) {
  event_.name = std::move(name);
  event_.category = std::move(category);
  event_.ts_us = tracer_->NowMicros();
  event_.id = tracer_->NextSpanId();
  Tracer::ThreadBuffer* buffer = tracer_->LocalBuffer();
  event_.tid = buffer->tid;
  event_.parent_id =
      buffer->open_spans.empty() ? 0 : buffer->open_spans.back();
  buffer->open_spans.push_back(event_.id);
  if (t_current_query_id != 0) {
    event_.attrs.emplace_back("query_id", StrCat(t_current_query_id));
  }
}

Span& Span::operator=(Span&& other) noexcept {
  End();
  tracer_ = other.tracer_;
  event_ = std::move(other.event_);
  other.tracer_ = nullptr;
  return *this;
}

void Span::AddAttr(const std::string& key, std::string value) {
  if (tracer_ == nullptr) return;
  event_.attrs.emplace_back(key, std::move(value));
}
void Span::AddAttr(const std::string& key, const char* value) {
  AddAttr(key, std::string(value));
}
void Span::AddAttr(const std::string& key, int64_t value) {
  AddAttr(key, StrCat(value));
}
void Span::AddAttr(const std::string& key, uint64_t value) {
  AddAttr(key, StrCat(value));
}
void Span::AddAttr(const std::string& key, double value) {
  AddAttr(key, StrPrintf("%.6g", value));
}

void Span::End() {
  if (tracer_ == nullptr) return;
  event_.dur_us = tracer_->NowMicros() - event_.ts_us;
  Tracer::ThreadBuffer* buffer = tracer_->LocalBuffer();
  // Pop this span from the open stack (normally the top; search backwards
  // to stay correct if a caller ends spans out of scope order).
  for (size_t i = buffer->open_spans.size(); i > 0; --i) {
    if (buffer->open_spans[i - 1] == event_.id) {
      buffer->open_spans.erase(buffer->open_spans.begin() +
                               static_cast<int64_t>(i - 1));
      break;
    }
  }
  tracer_->Commit(std::move(event_));
  tracer_ = nullptr;
}

// --- Tracer --------------------------------------------------------------

Tracer::Tracer()
    : epoch_(std::chrono::steady_clock::now()),
      serial_(g_tracer_serial.fetch_add(1) + 1) {}

Tracer::~Tracer() {
  std::lock_guard<std::mutex> lock(registry_mu_);
  for (ThreadBuffer* buffer : buffers_) delete buffer;
  buffers_.clear();
}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();  // Leaked: outlives static dtors.
  return *tracer;
}

Tracer::ThreadBuffer* Tracer::LocalBuffer() const {
  // Per-thread cache keyed by tracer serial (never reused, so a stale
  // entry for a destroyed tracer can never alias a live one); one map
  // lookup per call, no global lock after first use.
  thread_local std::unordered_map<uint64_t, ThreadBuffer*> cache;
  auto it = cache.find(serial_);
  if (it != cache.end()) return it->second;
  ThreadBuffer* buffer = new ThreadBuffer();
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    buffer->tid = static_cast<uint32_t>(buffers_.size());
    buffers_.push_back(buffer);
  }
  cache.emplace(serial_, buffer);
  return buffer;
}

void Tracer::Commit(TraceEvent event) {
  event.seq = next_seq_.fetch_add(1, std::memory_order_acq_rel) + 1;
  ThreadBuffer* buffer = LocalBuffer();
  std::lock_guard<std::mutex> lock(buffer->mu);
  buffer->events.push_back(std::move(event));
}

Span Tracer::StartSpanWithParent(std::string name, std::string category,
                                 uint64_t parent_id) {
  Span span = StartSpan(std::move(name), std::move(category));
  if (span.armed() && parent_id != 0) span.event_.parent_id = parent_id;
  return span;
}

uint64_t Tracer::CurrentSpanId() const {
  if (!enabled()) return 0;
  ThreadBuffer* buffer = LocalBuffer();
  return buffer->open_spans.empty() ? 0 : buffer->open_spans.back();
}

void Tracer::Instant(
    std::string name, std::string category,
    std::vector<std::pair<std::string, std::string>> attrs) {
  if (!enabled()) return;
  TraceEvent event;
  event.name = std::move(name);
  event.category = std::move(category);
  event.ts_us = NowMicros();
  event.dur_us = -1;
  ThreadBuffer* buffer = LocalBuffer();
  event.tid = buffer->tid;
  event.parent_id =
      buffer->open_spans.empty() ? 0 : buffer->open_spans.back();
  event.attrs = std::move(attrs);
  if (t_current_query_id != 0) {
    event.attrs.emplace_back("query_id", StrCat(t_current_query_id));
  }
  Commit(std::move(event));
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  std::vector<TraceEvent> all;
  std::lock_guard<std::mutex> lock(registry_mu_);
  for (ThreadBuffer* buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    all.insert(all.end(), buffer->events.begin(), buffer->events.end());
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });
  return all;
}

std::vector<TraceEvent> Tracer::SnapshotSince(uint64_t mark) const {
  std::vector<TraceEvent> all;
  std::lock_guard<std::mutex> lock(registry_mu_);
  for (ThreadBuffer* buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    for (const TraceEvent& e : buffer->events) {
      if (e.seq > mark) all.push_back(e);
    }
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });
  return all;
}

void Tracer::ImportRemoteSpans(const std::vector<TraceEvent>& events,
                               uint64_t local_parent_id, int64_t ts_offset_us,
                               uint32_t pid,
                               const std::string& process_name) {
  if (!enabled() || events.empty()) return;
  RegisterProcessName(pid, process_name);
  // Two passes so forward parent references remap correctly regardless
  // of the order the remote process recorded its spans in: first assign
  // every remote id a fresh local id, then rewrite links. Parents that
  // point outside the batch (the remote process's ambient spans, e.g.
  // its rpc.handle) graft onto `local_parent_id`.
  std::unordered_map<uint64_t, uint64_t> id_map;
  id_map.reserve(events.size());
  for (const TraceEvent& e : events) {
    if (e.id != 0) id_map.emplace(e.id, NextSpanId());
  }
  for (const TraceEvent& e : events) {
    TraceEvent imported = e;
    if (imported.id != 0) imported.id = id_map[e.id];
    auto parent = id_map.find(e.parent_id);
    imported.parent_id =
        parent != id_map.end() ? parent->second : local_parent_id;
    imported.ts_us += ts_offset_us;
    imported.pid = pid;
    Commit(std::move(imported));
  }
}

void Tracer::RegisterProcessName(uint32_t pid, std::string name) {
  std::lock_guard<std::mutex> lock(registry_mu_);
  for (auto& [existing, existing_name] : process_names_) {
    if (existing == pid) {
      existing_name = std::move(name);
      return;
    }
  }
  process_names_.emplace_back(pid, std::move(name));
}

size_t Tracer::NumEvents() const {
  size_t n = 0;
  std::lock_guard<std::mutex> lock(registry_mu_);
  for (ThreadBuffer* buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    n += buffer->events.size();
  }
  return n;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(registry_mu_);
  for (ThreadBuffer* buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    buffer->events.clear();
  }
}

std::string Tracer::ToChromeJson() const {
  std::vector<TraceEvent> events = Snapshot();
  std::vector<std::pair<uint32_t, std::string>> process_names;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    process_names = process_names_;
  }
  // The local process always owns lane 1; imported lanes register their
  // names explicitly (ImportRemoteSpans).
  bool has_local = false;
  for (const auto& [pid, name] : process_names) {
    if (pid == kLocalPid) has_local = true;
  }
  if (!has_local) {
    process_names.emplace_back(kLocalPid, "coordinator");
  }
  std::string out = "[\n";
  bool first = true;
  for (const auto& [pid, name] : process_names) {
    if (!first) out += ",\n";
    first = false;
    out += StrPrintf(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%u,\"tid\":0,"
        "\"args\":{\"name\":\"%s\"}}",
        static_cast<unsigned>(pid), JsonEscape(name).c_str());
  }
  for (const TraceEvent& e : events) {
    if (!first) out += ",\n";
    first = false;
    out += StrPrintf(
        "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\",\"ts\":%lld,",
        JsonEscape(e.name).c_str(), JsonEscape(e.category).c_str(),
        e.dur_us < 0 ? "i" : "X", static_cast<long long>(e.ts_us));
    if (e.dur_us >= 0) {
      out += StrPrintf("\"dur\":%lld,", static_cast<long long>(e.dur_us));
    } else {
      out += "\"s\":\"t\",";
    }
    out += StrPrintf("\"pid\":%u,\"tid\":%u,\"args\":{",
                     static_cast<unsigned>(e.pid),
                     static_cast<unsigned>(e.tid));
    bool first_attr = true;
    if (e.id != 0) {
      // Exporting the span's own id (not just its parent) makes the
      // dump self-describing: scripts/check_trace.py resolves every
      // parent reference without the in-memory Tracer state.
      out += StrPrintf("\"id\":\"%llu\"",
                       static_cast<unsigned long long>(e.id));
      first_attr = false;
    }
    if (e.parent_id != 0) {
      if (!first_attr) out += ",";
      out += StrPrintf("\"parent\":\"%llu\"",
                       static_cast<unsigned long long>(e.parent_id));
      first_attr = false;
    }
    for (const auto& [key, value] : e.attrs) {
      if (!first_attr) out += ",";
      first_attr = false;
      out += StrPrintf("\"%s\":\"%s\"", JsonEscape(key).c_str(),
                       JsonEscape(value).c_str());
    }
    out += "}}";
  }
  out += "\n]\n";
  return out;
}

bool Tracer::WriteChromeJson(const std::string& path) const {
  std::string json = ToChromeJson();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  bool ok = written == json.size();
  ok = std::fclose(f) == 0 && ok;
  return ok;
}

std::string Tracer::ToTreeString() const {
  std::vector<TraceEvent> events = Snapshot();

  // Children of each span id (0 = per-thread roots), in timestamp order
  // (Snapshot already sorted).
  std::map<uint64_t, std::vector<const TraceEvent*>> children;
  std::map<uint32_t, std::vector<const TraceEvent*>> roots_by_tid;
  for (const TraceEvent& e : events) {
    if (e.parent_id == 0) {
      roots_by_tid[e.tid].push_back(&e);
    } else {
      children[e.parent_id].push_back(&e);
    }
  }

  std::string out;
  auto render = [&](const TraceEvent* e, size_t depth,
                    const auto& self) -> void {
    out.append(2 * depth, ' ');
    if (e->dur_us < 0) {
      out += StrPrintf("* %s", e->name.c_str());
    } else {
      out += StrPrintf("%s  %.3f ms", e->name.c_str(),
                       static_cast<double>(e->dur_us) / 1e3);
    }
    if (!e->attrs.empty()) {
      out += "  [";
      for (size_t i = 0; i < e->attrs.size(); ++i) {
        if (i > 0) out += " ";
        out += e->attrs[i].first + "=" + e->attrs[i].second;
      }
      out += "]";
    }
    out += "\n";
    auto it = children.find(e->id);
    if (e->id != 0 && it != children.end()) {
      for (const TraceEvent* child : it->second) {
        self(child, depth + 1, self);
      }
    }
  };

  for (const auto& [tid, roots] : roots_by_tid) {
    out += StrPrintf("thread %u\n", static_cast<unsigned>(tid));
    for (const TraceEvent* root : roots) render(root, 1, render);
  }
  return out;
}

}  // namespace obs
}  // namespace skalla
