// Tracer: low-overhead execution tracing for the distributed executor.
//
// RAII Span objects record name, category, start/end timestamps, the
// enclosing span (per-thread nesting) and arbitrary key/value attributes
// into per-thread buffers — no locking on the hot path; the global mutex
// is taken only when a thread registers its buffer (once per thread) and
// when the trace is drained for export.
//
// Two export formats:
//   * Chrome trace-event JSON ("X" complete events and "i" instants),
//     loadable in chrome://tracing and https://ui.perfetto.dev;
//   * a human-readable span tree, for terminal inspection.
//
// The tracer is doubly gated: compile-time via the SKALLA_TRACING macro
// (the SKALLA_TRACE_* / SKALLA_METRIC_* macros in obs/obs.h expand to
// nothing when it is off, so instrumented hot paths carry zero code) and
// run-time via Tracer::set_enabled (spans created while disabled record
// nothing and cost one relaxed atomic load).

#ifndef SKALLA_OBS_TRACE_H_
#define SKALLA_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace skalla {
namespace obs {

/// Process lane of spans recorded in this process; imported remote
/// batches land on lanes > 1 (ImportRemoteSpans).
inline constexpr uint32_t kLocalPid = 1;

/// One recorded trace event. `dur_us` < 0 marks an instant event.
struct TraceEvent {
  std::string name;
  std::string category;
  int64_t ts_us = 0;   // Start, microseconds since the tracer epoch.
  int64_t dur_us = 0;  // Duration in microseconds; -1 for instants.
  uint64_t id = 0;     // Span id (0 = none assigned).
  uint64_t parent_id = 0;  // Enclosing span on the same thread, 0 = root.
  uint32_t tid = 0;        // Tracer-assigned dense thread id.
  uint32_t pid = 1;        // Process lane; 1 = this process, >1 = imported.
  uint64_t seq = 0;        // Commit order, assigned by the tracer.
  std::vector<std::pair<std::string, std::string>> attrs;
};

class Tracer;

/// Query-id scoping: a monotonically increasing per-process id that tags
/// every span, instant, and metric recorded while a scope is active, so
/// telemetry from concurrent queries stays separable. The current id is
/// thread-local; executors re-establish it on worker threads through
/// EvalContext::query_id.
uint64_t NextQueryId();
uint64_t CurrentQueryId();

/// RAII: sets the calling thread's current query id, restoring the
/// previous one on destruction (scopes nest).
class QueryIdScope {
 public:
  explicit QueryIdScope(uint64_t query_id);
  ~QueryIdScope();
  QueryIdScope(const QueryIdScope&) = delete;
  QueryIdScope& operator=(const QueryIdScope&) = delete;

 private:
  uint64_t saved_;
};

/// RAII span: records a complete ("X") event covering its lifetime.
/// Movable so helpers can return spans; not copyable.
class Span {
 public:
  /// A disarmed span (records nothing). Used when tracing is disabled.
  Span() = default;

  Span(Tracer* tracer, std::string name, std::string category);
  ~Span() { End(); }

  Span(Span&& other) noexcept { *this = std::move(other); }
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches a key/value attribute (exported under "args").
  void AddAttr(const std::string& key, std::string value);
  void AddAttr(const std::string& key, const char* value);
  void AddAttr(const std::string& key, int64_t value);
  void AddAttr(const std::string& key, uint64_t value);
  void AddAttr(const std::string& key, double value);

  /// Ends the span early (idempotent; the destructor is then a no-op).
  void End();

  bool armed() const { return tracer_ != nullptr; }
  uint64_t id() const { return event_.id; }

 private:
  friend class Tracer;

  Tracer* tracer_ = nullptr;  // nullptr = disarmed.
  TraceEvent event_;
};

/// Collects events from any number of threads. One global instance
/// (Tracer::Global()) serves the whole process; tests may construct
/// private tracers.
class Tracer {
 public:
  Tracer();
  ~Tracer();

  /// The process-wide tracer used by the SKALLA_TRACE_* macros.
  static Tracer& Global();

  /// Run-time switch. Disabled tracers hand out disarmed spans.
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Starts a span (disarmed when the tracer is disabled).
  Span StartSpan(std::string name, std::string category) {
    if (!enabled()) return Span();
    return Span(this, std::move(name), std::move(category));
  }

  /// Starts a span with an explicit parent span id instead of the
  /// calling thread's innermost open span. `parent_id` 0 falls back to
  /// the stack behavior. Used to parent work handed to another thread
  /// (morsel workers) under the span that scheduled it.
  Span StartSpanWithParent(std::string name, std::string category,
                           uint64_t parent_id);

  /// The calling thread's innermost open span id (0 when none or when
  /// the tracer is disabled).
  uint64_t CurrentSpanId() const;

  /// Records an instant event ("i" phase) on the calling thread.
  void Instant(std::string name, std::string category,
               std::vector<std::pair<std::string, std::string>> attrs = {});

  /// Microseconds since this tracer's epoch (its construction).
  int64_t NowMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  /// Snapshots every event recorded so far (all threads), ordered by
  /// start timestamp.
  std::vector<TraceEvent> Snapshot() const;

  /// A watermark for SnapshotSince: events committed after this call
  /// have `seq` greater than the returned mark.
  uint64_t CommitMark() const {
    return next_seq_.load(std::memory_order_acquire);
  }

  /// Snapshots only the events committed after `mark` (any thread),
  /// ordered by start timestamp. How a site captures exactly the spans
  /// recorded while it evaluated one round.
  std::vector<TraceEvent> SnapshotSince(uint64_t mark) const;

  /// Merges spans recorded by another process into this tracer:
  /// assigns fresh local span ids (remapping parent links that stay
  /// inside the batch), reparents batch-external roots under
  /// `local_parent_id`, shifts timestamps by `ts_offset_us` to this
  /// tracer's epoch, and files every event under process lane `pid`
  /// (named `process_name` in the Chrome export). Import order is
  /// deterministic: events are processed in the given order.
  void ImportRemoteSpans(const std::vector<TraceEvent>& events,
                         uint64_t local_parent_id, int64_t ts_offset_us,
                         uint32_t pid, const std::string& process_name);

  /// Names a process lane in the Chrome export ("M" metadata event).
  void RegisterProcessName(uint32_t pid, std::string name);

  /// Number of events recorded so far.
  size_t NumEvents() const;

  /// Drops all recorded events (buffers stay registered).
  void Clear();

  /// Serializes the trace as Chrome trace-event JSON: an array of
  /// {"name","cat","ph","ts","dur","pid","tid","args"} objects.
  std::string ToChromeJson() const;

  /// Writes ToChromeJson() to `path`. Returns false on I/O failure.
  bool WriteChromeJson(const std::string& path) const;

  /// Renders the span forest as an indented tree with durations,
  /// grouped by thread.
  std::string ToTreeString() const;

 private:
  friend class Span;

  struct ThreadBuffer {
    uint32_t tid = 0;
    std::vector<TraceEvent> events;
    // Stack of open span ids on this thread, for parent links.
    std::vector<uint64_t> open_spans;
    std::mutex mu;  // Guards `events` against concurrent Snapshot().
  };

  // The calling thread's buffer for this tracer (registered on first use).
  ThreadBuffer* LocalBuffer() const;

  void Commit(TraceEvent event);
  uint64_t NextSpanId() {
    return next_span_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  std::chrono::steady_clock::time_point epoch_;
  const uint64_t serial_;  // Process-unique; keys the per-thread cache.
  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_span_id_{0};
  std::atomic<uint64_t> next_seq_{0};

  mutable std::mutex registry_mu_;  // Guards `buffers_`/`process_names_`.
  // Owned; never freed until the tracer dies (threads may outlive their
  // first use and re-register cheaply via the thread-local cache).
  mutable std::vector<ThreadBuffer*> buffers_;
  std::vector<std::pair<uint32_t, std::string>> process_names_;
};

}  // namespace obs
}  // namespace skalla

#endif  // SKALLA_OBS_TRACE_H_
