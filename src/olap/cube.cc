#include "olap/cube.h"

#include <unordered_map>

#include "common/macros.h"
#include "common/string_util.h"
#include "expr/analysis.h"
#include "expr/builder.h"

namespace skalla {

Result<GmdjExpr> CuboidExpr(const CubeSpec& spec, uint32_t dim_mask) {
  if (spec.dims.size() > 20) {
    return Status::InvalidArgument("cube with more than 20 dimensions");
  }
  if (dim_mask >= (1u << spec.dims.size())) {
    return Status::InvalidArgument(
        StrCat("dim_mask ", dim_mask, " out of range for ",
               spec.dims.size(), " dimensions"));
  }
  GmdjExpr expr;
  expr.base.table = spec.detail_table;
  expr.base.distinct = true;
  std::vector<ExprPtr> conjuncts;
  for (size_t i = 0; i < spec.dims.size(); ++i) {
    if (dim_mask & (1u << i)) {
      expr.base.columns.push_back(spec.dims[i]);
      conjuncts.push_back(Eq(RCol(spec.dims[i]), BCol(spec.dims[i])));
    }
  }
  GmdjOp op;
  op.detail_table = spec.detail_table;
  op.blocks.push_back(
      GmdjBlock{spec.aggs, MakeConjunction(std::move(conjuncts))});
  expr.ops.push_back(std::move(op));
  return expr;
}

namespace {

// Expands a cuboid result to the full cube schema: every dimension column
// present (NULL where rolled up), aggregates behind them.
Result<Table> ExpandToCubeSchema(const Table& cuboid, const CubeSpec& spec,
                                 uint32_t dim_mask, SchemaPtr cube_schema) {
  Table out(cube_schema);
  out.Reserve(cuboid.num_rows());
  // Positions of selected dimensions within the cuboid result (which is
  // dims-in-order followed by aggregates).
  size_t num_selected = 0;
  for (size_t i = 0; i < spec.dims.size(); ++i) {
    if (dim_mask & (1u << i)) ++num_selected;
  }
  for (size_t r = 0; r < cuboid.num_rows(); ++r) {
    const Row& in = cuboid.row(r);
    Row row;
    row.reserve(cube_schema->num_fields());
    size_t next_selected = 0;
    for (size_t i = 0; i < spec.dims.size(); ++i) {
      if (dim_mask & (1u << i)) {
        row.push_back(in[next_selected++]);
      } else {
        row.push_back(Value::Null());
      }
    }
    for (size_t a = 0; a < spec.aggs.size(); ++a) {
      row.push_back(in[num_selected + a]);
    }
    out.AppendUnchecked(std::move(row));
  }
  return out;
}

Result<SchemaPtr> CubeSchema(const DistributedWarehouse& warehouse,
                             const CubeSpec& spec) {
  SKALLA_ASSIGN_OR_RETURN(const DataProvider* detail,
                          warehouse.central_catalog().GetProvider(spec.detail_table));
  std::vector<Field> fields;
  for (const std::string& dim : spec.dims) {
    SKALLA_ASSIGN_OR_RETURN(size_t idx,
                            detail->schema()->RequireIndex(dim));
    fields.push_back(detail->schema()->field(idx));
  }
  for (const AggSpec& agg : spec.aggs) {
    SKALLA_ASSIGN_OR_RETURN(ValueType type,
                            AggOutputType(agg, *detail->schema()));
    fields.push_back(Field{agg.output, type});
  }
  return Schema::Make(std::move(fields));
}

template <typename EvalOneCuboid>
Result<Table> ComputeCube(const DistributedWarehouse& warehouse,
                          const CubeSpec& spec,
                          const EvalOneCuboid& eval_cuboid) {
  SKALLA_ASSIGN_OR_RETURN(SchemaPtr cube_schema,
                          CubeSchema(warehouse, spec));
  Table cube(cube_schema);
  const uint32_t num_cuboids = 1u << spec.dims.size();
  for (uint32_t mask = 0; mask < num_cuboids; ++mask) {
    SKALLA_ASSIGN_OR_RETURN(GmdjExpr expr, CuboidExpr(spec, mask));
    SKALLA_ASSIGN_OR_RETURN(Table cuboid, eval_cuboid(expr, mask));
    SKALLA_ASSIGN_OR_RETURN(
        Table expanded, ExpandToCubeSchema(cuboid, spec, mask, cube_schema));
    for (size_t r = 0; r < expanded.num_rows(); ++r) {
      cube.AppendUnchecked(expanded.row(r));
    }
  }
  return cube;
}

}  // namespace

Result<Table> ComputeCubeDistributed(const DistributedWarehouse& warehouse,
                                     const CubeSpec& spec,
                                     const OptimizerOptions& options,
                                     ExecStats* stats) {
  return ComputeCube(
      warehouse, spec,
      [&](const GmdjExpr& expr, uint32_t) -> Result<Table> {
        ExecStats cuboid_stats;
        SKALLA_ASSIGN_OR_RETURN(
            Table result, warehouse.Execute(expr, options, &cuboid_stats));
        if (stats != nullptr) {
          for (RoundStats& round : cuboid_stats.rounds) {
            stats->rounds.push_back(std::move(round));
          }
        }
        return result;
      });
}

Result<Table> ComputeCubeCentralized(const DistributedWarehouse& warehouse,
                                     const CubeSpec& spec) {
  return ComputeCube(warehouse, spec,
                     [&](const GmdjExpr& expr, uint32_t) -> Result<Table> {
                       return warehouse.ExecuteCentralized(expr);
                     });
}

namespace {

// Roll-up plumbing: each user aggregate is carried through the finest
// cuboid as one or two part columns with an associative merge.
struct RollupPart {
  MergeKind merge;
};

}  // namespace

Result<Table> ComputeCubeByRollup(const DistributedWarehouse& warehouse,
                                  const CubeSpec& spec,
                                  const OptimizerOptions& options,
                                  ExecStats* stats) {
  SKALLA_ASSIGN_OR_RETURN(SchemaPtr cube_schema,
                          CubeSchema(warehouse, spec));
  const size_t k = spec.dims.size();
  if (k > 20) {
    return Status::InvalidArgument("cube with more than 20 dimensions");
  }

  // Rewrite the aggregate list into part columns (AVG -> SUM + COUNT).
  CubeSpec part_spec = spec;
  part_spec.aggs.clear();
  std::vector<RollupPart> parts;
  // Per user aggregate: (first part index, part count).
  std::vector<std::pair<size_t, size_t>> agg_parts;
  for (const AggSpec& agg : spec.aggs) {
    agg_parts.emplace_back(parts.size(), agg.kind == AggKind::kAvg ? 2 : 1);
    if (agg.kind == AggKind::kAvg) {
      part_spec.aggs.push_back(
          AggSpec{AggKind::kSum, agg.input, StrCat(agg.output, "__sum")});
      part_spec.aggs.push_back(
          AggSpec{AggKind::kCount, agg.input, StrCat(agg.output, "__cnt")});
      parts.push_back(RollupPart{MergeKind::kSum});
      parts.push_back(RollupPart{MergeKind::kSum});
    } else {
      part_spec.aggs.push_back(agg);
      MergeKind merge = MergeKind::kSum;
      if (agg.kind == AggKind::kMin) merge = MergeKind::kMin;
      if (agg.kind == AggKind::kMax) merge = MergeKind::kMax;
      parts.push_back(RollupPart{merge});
    }
  }

  // One distributed query: the finest cuboid over the part aggregates.
  const uint32_t finest_mask = (1u << k) - 1;
  SKALLA_ASSIGN_OR_RETURN(GmdjExpr finest_expr,
                          CuboidExpr(part_spec, finest_mask));
  ExecStats finest_stats;
  SKALLA_ASSIGN_OR_RETURN(
      Table finest, warehouse.Execute(finest_expr, options, &finest_stats));
  if (stats != nullptr) {
    for (RoundStats& round : finest_stats.rounds) {
      stats->rounds.push_back(std::move(round));
    }
  }

  // Roll every cuboid up from the finest, locally.
  Table cube(cube_schema);
  for (uint32_t mask = 0; mask <= finest_mask; ++mask) {
    std::vector<size_t> selected;  // Dim positions kept by this cuboid.
    for (size_t d = 0; d < k; ++d) {
      if (mask & (1u << d)) selected.push_back(d);
    }
    // Group the finest rows on the selected dims.
    std::unordered_map<uint64_t, std::vector<size_t>> groups;
    std::vector<Row> group_rows;  // Accumulated part rows per group.
    for (size_t r = 0; r < finest.num_rows(); ++r) {
      const Row& row = finest.row(r);
      uint64_t h = HashRowKey(row, selected);
      std::vector<size_t>& bucket = groups[h];
      int64_t target = -1;
      for (size_t g : bucket) {
        if (RowKeyEquals(row, selected, group_rows[g], selected)) {
          target = static_cast<int64_t>(g);
          break;
        }
      }
      if (target < 0) {
        target = static_cast<int64_t>(group_rows.size());
        bucket.push_back(group_rows.size());
        Row fresh(k + parts.size(), Value::Null());
        for (size_t d = 0; d < k; ++d) fresh[d] = row[d];
        group_rows.push_back(std::move(fresh));
      }
      Row& acc = group_rows[static_cast<size_t>(target)];
      for (size_t p = 0; p < parts.size(); ++p) {
        acc[k + p] =
            MergePartial(acc[k + p], row[k + p], parts[p].merge);
      }
    }
    // Emit cube rows: NULL out rolled dims, finalize aggregates.
    for (Row& acc : group_rows) {
      Row out;
      out.reserve(cube_schema->num_fields());
      for (size_t d = 0; d < k; ++d) {
        out.push_back((mask & (1u << d)) ? acc[d] : Value::Null());
      }
      for (size_t a = 0; a < spec.aggs.size(); ++a) {
        auto [start, len] = agg_parts[a];
        std::vector<Value> cell_parts;
        for (size_t p = 0; p < len; ++p) {
          cell_parts.push_back(acc[k + start + p]);
        }
        out.push_back(FinalizeAggregate(spec.aggs[a], cell_parts));
      }
      cube.AppendUnchecked(std::move(out));
    }
  }
  return cube;
}

}  // namespace skalla
