// Data cube (Gray et al. [12]) on top of distributed GMDJ evaluation.
//
// CUBE BY(d_1..d_k) computes aggregates for every subset of the grouping
// dimensions. Each cuboid is one GMDJ expression (distinct projection of
// its dimensions as the base-values query, equality conditions on those
// dimensions), evaluated through the ordinary Skalla machinery — so every
// optimization of Sect. 4 applies per cuboid. Rolled-up dimensions are
// NULL in the result, as in SQL's CUBE.

#ifndef SKALLA_OLAP_CUBE_H_
#define SKALLA_OLAP_CUBE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/gmdj.h"
#include "dist/warehouse.h"

namespace skalla {

struct CubeSpec {
  std::string detail_table;
  std::vector<std::string> dims;
  std::vector<AggSpec> aggs;
};

/// The GMDJ expression computing one cuboid: the subset of `spec.dims`
/// selected by `dim_mask` (bit i selects dims[i]).
Result<GmdjExpr> CuboidExpr(const CubeSpec& spec, uint32_t dim_mask);

/// Computes the full cube (all 2^k cuboids) over the distributed
/// warehouse. Result schema: all dimensions (NULL where rolled up)
/// followed by the aggregates. When `stats` is non-null, the per-cuboid
/// execution stats are accumulated into it.
Result<Table> ComputeCubeDistributed(const DistributedWarehouse& warehouse,
                                     const CubeSpec& spec,
                                     const OptimizerOptions& options,
                                     ExecStats* stats = nullptr);

/// Centralized reference implementation (same result, no distribution).
Result<Table> ComputeCubeCentralized(const DistributedWarehouse& warehouse,
                                     const CubeSpec& spec);

/// Computes the cube by evaluating only the finest cuboid distributed and
/// rolling every coarser cuboid up from it at the client — the classic
/// cube optimization of Agarwal et al. [1] adapted to the distributed
/// setting: one distributed round-trip instead of 2^k. AVG is carried as
/// (SUM, COUNT) parts through the roll-up and finalized at the end, so
/// results are identical to ComputeCubeDistributed.
Result<Table> ComputeCubeByRollup(const DistributedWarehouse& warehouse,
                                  const CubeSpec& spec,
                                  const OptimizerOptions& options,
                                  ExecStats* stats = nullptr);

}  // namespace skalla

#endif  // SKALLA_OLAP_CUBE_H_
