#include "olap/multifeature.h"

#include "expr/analysis.h"
#include "expr/builder.h"

namespace skalla {

Result<GmdjExpr> BuildMultiFeatureQuery(const MultiFeatureSpec& spec) {
  if (spec.group_columns.empty()) {
    return Status::InvalidArgument(
        "multi-feature query needs grouping columns");
  }
  if (spec.outer.empty()) {
    return Status::InvalidArgument(
        "multi-feature query needs outer aggregates");
  }
  if (!IsComparisonOp(spec.compare_op)) {
    return Status::InvalidArgument("compare_op must be a comparison");
  }

  GmdjExpr expr;
  expr.base = BaseQuery{spec.detail_table, spec.group_columns, true,
                        nullptr};

  std::vector<ExprPtr> group_conjuncts;
  for (const std::string& column : spec.group_columns) {
    group_conjuncts.push_back(Eq(RCol(column), BCol(column)));
  }
  ExprPtr group = MakeConjunction(group_conjuncts);

  GmdjOp inner_op;
  inner_op.detail_table = spec.detail_table;
  inner_op.blocks.push_back(GmdjBlock{{spec.inner}, group});

  GmdjOp outer_op;
  outer_op.detail_table = spec.detail_table;
  outer_op.blocks.push_back(GmdjBlock{
      spec.outer,
      And(group, Expr::Binary(spec.compare_op, RCol(spec.compare_column),
                              BCol(spec.inner.output)))});

  expr.ops = {std::move(inner_op), std::move(outer_op)};
  return expr;
}

}  // namespace skalla
