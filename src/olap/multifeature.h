// Multi-feature queries (Ross, Srivastava & Chatziantoniou [18]):
// queries that relate detail tuples to group-level aggregates, e.g.
// "for each group, the number of rows whose value equals the group
// minimum" or "the average of values above the group average". These are
// exactly the correlated-aggregate chains GMDJ expressions express; this
// helper builds the canonical two-operator pattern.

#ifndef SKALLA_OLAP_MULTIFEATURE_H_
#define SKALLA_OLAP_MULTIFEATURE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/gmdj.h"
#include "expr/expr.h"

namespace skalla {

struct MultiFeatureSpec {
  std::string detail_table;
  /// Grouping columns (shared by both operators' conditions).
  std::vector<std::string> group_columns;

  /// The group-level feature, e.g. MIN(Quantity) AS min_q.
  AggSpec inner;

  /// The relation between a detail column and the inner feature, e.g.
  /// r.<compare_column> = b.<inner.output>.
  std::string compare_column;
  BinaryOp compare_op = BinaryOp::kEq;

  /// Aggregates over the detail tuples selected by the comparison, e.g.
  /// COUNT(*) AS at_min.
  std::vector<AggSpec> outer;
};

/// Builds the two-operator GMDJ expression for `spec`. The result is a
/// regular GmdjExpr: evaluate it centralized or hand it to a
/// DistributedWarehouse with any optimizer options.
Result<GmdjExpr> BuildMultiFeatureQuery(const MultiFeatureSpec& spec);

}  // namespace skalla

#endif  // SKALLA_OLAP_MULTIFEATURE_H_
