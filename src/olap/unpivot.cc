#include "olap/unpivot.h"

#include "common/macros.h"
#include "common/string_util.h"
#include "expr/builder.h"

namespace skalla {

Result<Table> Unpivot(const Table& in,
                      const std::vector<std::string>& value_columns,
                      const std::string& attr_column,
                      const std::string& value_column) {
  if (value_columns.empty()) {
    return Status::InvalidArgument("unpivot needs at least one column");
  }
  std::vector<size_t> value_indices;
  ValueType common_type = ValueType::kNull;
  for (const std::string& name : value_columns) {
    SKALLA_ASSIGN_OR_RETURN(size_t idx, in.schema()->RequireIndex(name));
    value_indices.push_back(idx);
    ValueType t = in.schema()->field(idx).type;
    if (common_type == ValueType::kNull) {
      common_type = t;
    } else if (common_type != t) {
      // Mixed numeric types widen to FLOAT64; anything else is an error.
      bool both_numeric = (common_type == ValueType::kInt64 ||
                           common_type == ValueType::kFloat64) &&
                          (t == ValueType::kInt64 ||
                           t == ValueType::kFloat64);
      if (!both_numeric) {
        return Status::TypeError(
            StrCat("unpivot columns have incompatible types: ",
                   ValueTypeToString(common_type), " vs ",
                   ValueTypeToString(t)));
      }
      common_type = ValueType::kFloat64;
    }
  }

  std::vector<size_t> passthrough;
  std::vector<Field> fields;
  for (size_t i = 0; i < in.schema()->num_fields(); ++i) {
    bool is_value_col = false;
    for (size_t v : value_indices) {
      if (v == i) {
        is_value_col = true;
        break;
      }
    }
    if (!is_value_col) {
      passthrough.push_back(i);
      fields.push_back(in.schema()->field(i));
    }
  }
  fields.push_back(Field{attr_column, ValueType::kString});
  fields.push_back(Field{value_column, common_type});
  SKALLA_ASSIGN_OR_RETURN(SchemaPtr schema, Schema::Make(std::move(fields)));

  Table out(schema);
  out.Reserve(in.num_rows() * value_columns.size());
  for (size_t r = 0; r < in.num_rows(); ++r) {
    const Row& row = in.row(r);
    for (size_t v = 0; v < value_indices.size(); ++v) {
      const Value& value = row[value_indices[v]];
      if (value.is_null()) continue;  // Unpivot drops NULLs.
      Row o = ProjectRow(row, passthrough);
      o.push_back(Value(value_columns[v]));
      o.push_back(value);
      out.AppendUnchecked(std::move(o));
    }
  }
  return out;
}

Result<Table> ComputeMarginalsDistributed(
    const DistributedWarehouse& warehouse, const std::string& detail_table,
    const std::vector<std::string>& attributes,
    const OptimizerOptions& options, ExecStats* stats) {
  SchemaPtr out_schema = nullptr;
  Table out;
  for (const std::string& attribute : attributes) {
    GmdjExpr expr;
    expr.base = BaseQuery{detail_table, {attribute}, true, nullptr};
    GmdjOp op;
    op.detail_table = detail_table;
    op.blocks.push_back(GmdjBlock{{{AggKind::kCountStar, "", "Count"}},
                                  Eq(RCol(attribute), BCol(attribute))});
    expr.ops.push_back(std::move(op));

    ExecStats attr_stats;
    SKALLA_ASSIGN_OR_RETURN(Table result,
                            warehouse.Execute(expr, options, &attr_stats));
    if (stats != nullptr) {
      for (RoundStats& round : attr_stats.rounds) {
        stats->rounds.push_back(std::move(round));
      }
    }
    if (out_schema == nullptr) {
      SKALLA_ASSIGN_OR_RETURN(
          out_schema, Schema::Make({{"Attribute", ValueType::kString},
                                    {"Value", ValueType::kString},
                                    {"Count", ValueType::kInt64}}));
      out = Table(out_schema);
    }
    for (size_t r = 0; r < result.num_rows(); ++r) {
      out.AppendUnchecked({Value(attribute),
                           Value(result.at(r, 0).ToString()),
                           result.at(r, 1)});
    }
  }
  if (out_schema == nullptr) {
    return Status::InvalidArgument("no attributes given");
  }
  return out;
}

}  // namespace skalla
