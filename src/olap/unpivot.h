// Unpivot and marginal distributions (Graefe, Fayyad & Chaudhuri [11]).
//
// Unpivot turns a set of value columns into (attribute, value) rows; the
// marginal-distribution helper computes, for each listed attribute, the
// count of detail tuples per attribute value — one GMDJ expression per
// attribute, evaluated through the distributed machinery.

#ifndef SKALLA_OLAP_UNPIVOT_H_
#define SKALLA_OLAP_UNPIVOT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "dist/warehouse.h"
#include "storage/table.h"

namespace skalla {

/// Local unpivot operator. For every input row and every column in
/// `value_columns`, emits one row: the untouched passthrough columns
/// (those not listed), then `attr_column` (the unpivoted column's name as
/// a string) and `value_column` (its value). NULL values are skipped, per
/// the classic operator definition.
Result<Table> Unpivot(const Table& in,
                      const std::vector<std::string>& value_columns,
                      const std::string& attr_column,
                      const std::string& value_column);

/// One row per (attribute, value): the number of detail tuples holding
/// `value` in `attribute`, for each attribute listed. Schema:
/// (Attribute STRING, Value <col type>, Count INT64) — the sufficient
/// statistics ("marginals") of [11], computed distributed.
Result<Table> ComputeMarginalsDistributed(
    const DistributedWarehouse& warehouse, const std::string& detail_table,
    const std::vector<std::string>& attributes,
    const OptimizerOptions& options, ExecStats* stats = nullptr);

}  // namespace skalla

#endif  // SKALLA_OLAP_UNPIVOT_H_
