#include "opt/cost_model.h"

#include "common/macros.h"
#include "common/string_util.h"
#include "expr/analysis.h"

namespace skalla {

uint64_t TransferEstimate::TotalTuples() const {
  uint64_t total = 0;
  for (const RoundEstimate& r : rounds) {
    total += r.tuples_to_sites + r.tuples_to_coord;
  }
  return total;
}

std::string TransferEstimate::ToString() const {
  std::string out = StrPrintf("%-8s %14s %14s %7s\n", "round", "->sites",
                              "->coord", "exact");
  for (const RoundEstimate& r : rounds) {
    out += StrPrintf("%-8s %14llu %14llu %7s\n", r.label.c_str(),
                     static_cast<unsigned long long>(r.tuples_to_sites),
                     static_cast<unsigned long long>(r.tuples_to_coord),
                     r.exact ? "yes" : "<=");
  }
  out += StrPrintf("total: %llu tuples (%s)\n",
                   static_cast<unsigned long long>(TotalTuples()),
                   exact ? "exact" : "upper bound");
  return out;
}

const PartitionInfo* CostModel::InfoFor(const std::string& table) const {
  auto it = partition_info_.find(table);
  return it == partition_info_.end() ? nullptr : it->second;
}

namespace {

// Whether `filter` is exactly the single-column IN-set predicate the
// optimizer derives for pure key-equality conditions (the case the model
// can price exactly).
bool IsPlainInSetFilter(const ExprPtr& filter, const std::string& key) {
  return filter != nullptr && filter->kind() == ExprKind::kInSet &&
         filter->operand()->kind() == ExprKind::kColumnRef &&
         filter->operand()->side() == ExprSide::kBase &&
         filter->operand()->column_name() == key;
}

// Whether every block of `op` is a pure equality condition on exactly
// the key columns (no residual, no extra atoms).
bool PureKeyEquality(const GmdjOp& op,
                     const std::vector<std::string>& keys) {
  for (const GmdjBlock& block : op.blocks) {
    if (block.theta == nullptr) return false;
    ConditionAnalysis analysis = AnalyzeCondition(block.theta);
    if (analysis.residual != nullptr) return false;
    if (analysis.equi_atoms.size() != keys.size()) return false;
    for (const std::string& key : keys) {
      bool found = false;
      for (const EquiAtom& atom : analysis.equi_atoms) {
        if (atom.base_col == key && atom.detail_col == key) {
          found = true;
          break;
        }
      }
      if (!found) return false;
    }
  }
  return true;
}

}  // namespace

Result<TransferEstimate> CostModel::Estimate(
    const DistributedPlan& plan) const {
  const PartitionInfo* info = InfoFor(plan.base.table);
  if (info == nullptr) {
    return Status::NotImplemented(
        StrCat("no distribution knowledge for '", plan.base.table, "'"));
  }
  const std::vector<std::string>& keys = plan.key_columns;
  if (keys.empty()) {
    return Status::NotImplemented(
        "cannot estimate a plan without key columns");
  }

  TransferEstimate estimate;
  bool groups_exact = keys.size() == 1 && plan.base.where == nullptr;

  // Per-site group counts and the global distinct count.
  std::vector<uint64_t> site_groups(num_sites_, 1);
  for (const std::string& key : keys) {
    for (size_t i = 0; i < num_sites_; ++i) {
      const ColumnDistribution* dist = info->GetDistribution(i, key);
      if (dist == nullptr || !dist->values.has_value()) {
        return Status::NotImplemented(
            StrCat("no per-site value sets for grouping column '", key,
                   "'"));
      }
      // Multi-column joint distincts: product is an upper bound.
      site_groups[i] *= dist->values->size();
    }
  }
  uint64_t global_groups = 0;
  if (keys.size() == 1) {
    ValueSet global_set;
    for (size_t i = 0; i < num_sites_; ++i) {
      const ColumnDistribution* dist = info->GetDistribution(i, keys[0]);
      dist->values->ForEach([&](const Value& v) { global_set.Insert(v); });
    }
    global_groups = global_set.size();
  } else {
    for (uint64_t g : site_groups) global_groups += g;
    groups_exact = false;
  }

  bool have_global = false;
  if (plan.sync_base) {
    RoundEstimate round;
    round.label = "base";
    round.exact = groups_exact;
    for (uint64_t g : site_groups) round.tuples_to_coord += g;
    have_global = true;
    estimate.rounds.push_back(round);
  }

  for (size_t k = 0; k < plan.stages.size(); ++k) {
    const PlanStage& stage = plan.stages[k];
    if (!stage.sync_after && !have_global) continue;  // Fully local.

    RoundEstimate round;
    round.label = StrCat("md", k + 1);
    round.exact = groups_exact;

    std::vector<uint64_t> sent(num_sites_, 0);
    if (have_global) {
      for (size_t i = 0; i < num_sites_; ++i) {
        const ExprPtr& filter = stage.site_base_filters.empty()
                                    ? nullptr
                                    : stage.site_base_filters[i];
        if (filter == nullptr) {
          sent[i] = global_groups;
        } else if (keys.size() == 1 &&
                   IsPlainInSetFilter(filter, keys[0])) {
          sent[i] = site_groups[i];
        } else {
          // Some further restriction we cannot price: bound by the
          // unfiltered size.
          sent[i] = global_groups;
          round.exact = false;
        }
        round.tuples_to_sites += sent[i];
      }
    } else {
      // Local continuation: each site holds exactly its own groups.
      for (size_t i = 0; i < num_sites_; ++i) sent[i] = site_groups[i];
    }

    if (stage.sync_after) {
      bool pure = PureKeyEquality(stage.op, keys);
      for (size_t i = 0; i < num_sites_; ++i) {
        uint64_t returned;
        if (stage.indep_group_reduction) {
          // Site i returns the groups it actually holds (among those it
          // received); with residual conditions this is an upper bound.
          returned = std::min(sent[i], site_groups[i]);
          if (!pure) round.exact = false;
        } else {
          returned = sent[i];
        }
        round.tuples_to_coord += returned;
      }
      have_global = true;
    } else {
      have_global = false;
      // The downward distribution still happened this round.
    }
    estimate.rounds.push_back(round);
  }

  estimate.exact = true;
  for (const RoundEstimate& r : estimate.rounds) {
    estimate.exact = estimate.exact && r.exact;
  }
  return estimate;
}

}  // namespace skalla
