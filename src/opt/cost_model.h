// Transfer cost model: predicts, before execution, how many tuples a
// DistributedPlan will move per synchronization round, from distribution
// knowledge alone (per-site distinct counts of the grouping columns).
//
// For single-attribute, pure-equality groupings with exact value-set
// knowledge the prediction is exact; otherwise it is an upper bound and
// flagged as such. The paper's Sect. 5.2 byte analysis — ng groups up,
// n·G down, c·G back per round — is this model's closed form; the bench
// validates model vs measurement the same way the paper does.

#ifndef SKALLA_OPT_COST_MODEL_H_
#define SKALLA_OPT_COST_MODEL_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "dist/plan.h"
#include "storage/partition.h"

namespace skalla {

/// Predicted transfer for one synchronized round.
struct RoundEstimate {
  std::string label;
  uint64_t tuples_to_sites = 0;
  uint64_t tuples_to_coord = 0;
  /// False when any approximation forced an upper bound.
  bool exact = true;
};

struct TransferEstimate {
  std::vector<RoundEstimate> rounds;
  /// All rounds exact?
  bool exact = true;

  uint64_t TotalTuples() const;
  std::string ToString() const;
};

/// Estimates plan transfers. Register the same PartitionInfo the
/// optimizer used.
class CostModel {
 public:
  explicit CostModel(size_t num_sites) : num_sites_(num_sites) {}

  void SetPartitionInfo(const std::string& table,
                        const PartitionInfo* info) {
    partition_info_[table] = info;
  }

  /// Predicts per-round tuple transfers for `plan`. Exact predictions
  /// require: single grouping column, no base WHERE, exact per-site value
  /// sets for it, and conditions that are pure key equality (residual
  /// conjuncts make site-side group reduction counts upper bounds).
  Result<TransferEstimate> Estimate(const DistributedPlan& plan) const;

 private:
  const PartitionInfo* InfoFor(const std::string& table) const;

  size_t num_sites_;
  std::unordered_map<std::string, const PartitionInfo*> partition_info_;
};

}  // namespace skalla

#endif  // SKALLA_OPT_COST_MODEL_H_
