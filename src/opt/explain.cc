#include "opt/explain.h"

#include "common/string_util.h"

namespace skalla {

std::string ExplainPlan(const GmdjExpr& expr, const DistributedPlan& plan,
                        size_t num_sites, const OptimizerOptions& options,
                        const CostModel* model) {
  std::string out;
  out += StrCat("QUERY: ", expr.ToString(), "\n");
  out += StrCat("OPTIMIZATIONS REQUESTED: ", options.ToString(), "\n");
  out += plan.ToString(num_sites);

  // Narrate which structural optimizations actually fired.
  std::vector<std::string> notes;
  if (expr.ops.size() > plan.stages.size()) {
    notes.push_back(StrCat("coalescing merged ", expr.ops.size(),
                           " operators into ", plan.stages.size(),
                           " stage(s)"));
  }
  if (!plan.sync_base) {
    notes.push_back(
        "Prop. 2: base-values synchronization skipped (sites compute "
        "their base locally)");
  }
  size_t skipped = 0;
  for (const PlanStage& stage : plan.stages) {
    if (!stage.sync_after) ++skipped;
  }
  if (skipped > 0) {
    notes.push_back(StrCat("Cor. 1: ", skipped,
                           " inter-GMDJ synchronization(s) skipped "
                           "(partition-attribute entailment)"));
  }
  for (size_t k = 0; k < plan.stages.size(); ++k) {
    const PlanStage& stage = plan.stages[k];
    if (stage.indep_group_reduction) {
      notes.push_back(StrCat("stage ", k + 1,
                             ": sites ship only |RNG| > 0 groups "
                             "(Prop. 1)"));
    }
    if (!stage.site_base_filters.empty()) {
      size_t filtered = 0;
      for (const ExprPtr& f : stage.site_base_filters) {
        if (f != nullptr) ++filtered;
      }
      notes.push_back(StrCat("stage ", k + 1, ": ¬ψ filters derived for ",
                             filtered, "/", num_sites,
                             " site(s) (Theorem 4)"));
    }
  }
  if (notes.empty()) {
    out += "  (no distributed optimizations applied)\n";
  } else {
    for (const std::string& note : notes) {
      out += StrCat("  * ", note, "\n");
    }
  }

  if (model != nullptr) {
    auto estimate = model->Estimate(plan);
    if (estimate.ok()) {
      out += "PREDICTED TRANSFER:\n";
      out += estimate->ToString();
    } else {
      out += StrCat("PREDICTED TRANSFER: unavailable (",
                    estimate.status().message(), ")\n");
    }
  }
  return out;
}

}  // namespace skalla
