// EXPLAIN: a human-readable report for a planned query — the optimized
// plan, which optimizations fired and why, and the cost model's
// transfer prediction when distribution knowledge allows one.

#ifndef SKALLA_OPT_EXPLAIN_H_
#define SKALLA_OPT_EXPLAIN_H_

#include <string>

#include "common/result.h"
#include "core/gmdj.h"
#include "dist/plan.h"
#include "opt/cost_model.h"
#include "opt/options.h"

namespace skalla {

/// Renders the full EXPLAIN text for `plan`. `model` may be null (no
/// distribution knowledge); the prediction section is then omitted.
std::string ExplainPlan(const GmdjExpr& expr, const DistributedPlan& plan,
                        size_t num_sites, const OptimizerOptions& options,
                        const CostModel* model);

}  // namespace skalla

#endif  // SKALLA_OPT_EXPLAIN_H_
