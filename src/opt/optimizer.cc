#include "opt/optimizer.h"

#include <algorithm>
#include <memory>

#include "expr/analysis.h"
#include "expr/builder.h"

namespace skalla {

void Egil::SetPartitionInfo(const std::string& table,
                            const PartitionInfo* info) {
  partition_info_[table] = info;
}

const PartitionInfo* Egil::InfoFor(const std::string& table) const {
  auto it = partition_info_.find(table);
  return it == partition_info_.end() ? nullptr : it->second;
}

bool Egil::CanCoalesce(const GmdjOp& earlier, const GmdjOp& later) {
  if (earlier.detail_table != later.detail_table) return false;
  std::vector<std::string> generated = earlier.OutputColumnNames();
  for (const GmdjBlock& block : later.blocks) {
    if (block.theta == nullptr) continue;
    std::vector<std::string> referenced;
    block.theta->CollectColumns(ExprSide::kBase, &referenced);
    for (const std::string& name : referenced) {
      if (std::find(generated.begin(), generated.end(), name) !=
          generated.end()) {
        return false;
      }
    }
  }
  return true;
}

bool Egil::BaseSyncSkippable(const BaseQuery& base, const GmdjOp& first) {
  // Prop. 2 preconditions: B is a plain distinct projection of the detail
  // relation, so every detail tuple's key lands in the local base result,
  // and every block condition entails equality on all base columns.
  if (!base.distinct || base.where != nullptr) return false;
  if (first.detail_table != base.table) return false;
  if (base.columns.empty()) return false;
  for (const GmdjBlock& block : first.blocks) {
    if (block.theta == nullptr) return false;
    for (const std::string& column : base.columns) {
      if (!EntailsEquality(block.theta, column, column)) return false;
    }
  }
  return true;
}

bool Egil::HasPartitionEntailment(
    const GmdjOp& op, const std::vector<std::string>& key_columns) const {
  const PartitionInfo* info = InfoFor(op.detail_table);
  if (info == nullptr) return false;
  for (const std::string& attr : key_columns) {
    if (!info->IsPartitionAttribute(attr)) continue;
    bool all_blocks = true;
    for (const GmdjBlock& block : op.blocks) {
      if (block.theta == nullptr ||
          !EntailsEquality(block.theta, attr, attr)) {
        all_blocks = false;
        break;
      }
    }
    if (all_blocks) return true;
  }
  return false;
}

ExprPtr Egil::DeriveSiteFilter(const GmdjOp& op, size_t site) const {
  const PartitionInfo* info = InfoFor(op.detail_table);
  if (info == nullptr || site >= info->num_sites()) return nullptr;

  auto col_range = [&](const std::string& column) -> std::optional<Interval> {
    const ColumnDistribution* dist = info->GetDistribution(site, column);
    if (dist == nullptr || !dist->min.has_value() || !dist->max.has_value()) {
      return std::nullopt;
    }
    return Interval{*dist->min, *dist->max};
  };

  std::vector<ExprPtr> block_preds;
  for (const GmdjBlock& block : op.blocks) {
    if (block.theta == nullptr) return nullptr;
    std::vector<ExprPtr> preds;
    for (const ExprPtr& conjunct : SplitConjuncts(block.theta)) {
      std::optional<SeparableComparison> sep =
          ExtractSeparableComparison(conjunct);
      if (!sep.has_value()) continue;
      if (sep->op == BinaryOp::kNe) continue;

      // Plan-time pruning for constant-vs-detail conjuncts like
      // `r.C = 5`: if the value provably cannot occur at the site (value
      // set, histogram, or range all consulted), the whole block is dead
      // there.
      if (sep->op == BinaryOp::kEq &&
          !sep->base_expr->ReferencesSide(ExprSide::kBase) &&
          sep->detail_expr->kind() == ExprKind::kColumnRef) {
        const ColumnDistribution* dist = info->GetDistribution(
            site, sep->detail_expr->column_name());
        if (dist != nullptr) {
          Value constant = sep->base_expr->Eval(nullptr, nullptr);
          preds.push_back(Expr::Literal(
              Value(int64_t{dist->MayContain(constant) ? 1 : 0})));
          continue;
        }
      }

      // Exact value-set reduction for `base_expr = r.C` where the site's
      // values of C are known precisely.
      if (sep->op == BinaryOp::kEq &&
          sep->detail_expr->kind() == ExprKind::kColumnRef) {
        const ColumnDistribution* dist = info->GetDistribution(
            site, sep->detail_expr->column_name());
        if (dist != nullptr && dist->values.has_value()) {
          // The set is copied so the plan stays valid independently of the
          // PartitionInfo's lifetime.
          preds.push_back(Expr::InSet(
              sep->base_expr, std::make_shared<ValueSet>(*dist->values)));
          continue;
        }
      }

      // Interval reduction: bound the detail side over the site's column
      // ranges; b may match only if base_expr lands against that interval.
      std::optional<Interval> interval =
          EvalDetailInterval(sep->detail_expr, col_range);
      if (!interval.has_value()) continue;
      switch (sep->op) {
        case BinaryOp::kEq:
          preds.push_back(And(Ge(sep->base_expr, Lit(Value(interval->lo))),
                              Le(sep->base_expr, Lit(Value(interval->hi)))));
          break;
        case BinaryOp::kLt:
          preds.push_back(Lt(sep->base_expr, Lit(Value(interval->hi))));
          break;
        case BinaryOp::kLe:
          preds.push_back(Le(sep->base_expr, Lit(Value(interval->hi))));
          break;
        case BinaryOp::kGt:
          preds.push_back(Gt(sep->base_expr, Lit(Value(interval->lo))));
          break;
        case BinaryOp::kGe:
          preds.push_back(Ge(sep->base_expr, Lit(Value(interval->lo))));
          break;
        default:
          break;
      }
    }
    if (preds.empty()) {
      // This block imposes no restriction: ¬ψ_i is identically true.
      return nullptr;
    }
    block_preds.push_back(MakeConjunction(std::move(preds)));
  }
  if (block_preds.empty()) return nullptr;
  return MakeDisjunction(std::move(block_preds));
}

Result<DistributedPlan> Egil::Optimize(const GmdjExpr& expr) const {
  DistributedPlan plan;
  plan.base = expr.base;
  plan.key_columns = expr.base.columns;

  std::vector<GmdjOp> ops = expr.ops;

  // --- Coalescing (Sect. 4.3) --------------------------------------------
  if (options_.coalescing) {
    for (size_t k = 0; k + 1 < ops.size();) {
      if (CanCoalesce(ops[k], ops[k + 1])) {
        for (GmdjBlock& block : ops[k + 1].blocks) {
          ops[k].blocks.push_back(std::move(block));
        }
        ops.erase(ops.begin() + static_cast<int64_t>(k) + 1);
      } else {
        ++k;
      }
    }
  }

  // --- Synchronization reduction (Prop. 2, Theorem 5 / Cor. 1) ------------
  bool base_skip = options_.sync_reduction && !ops.empty() &&
                   BaseSyncSkippable(plan.base, ops[0]);
  plan.sync_base = !base_skip;

  plan.stages.clear();
  plan.stages.reserve(ops.size());
  for (GmdjOp& op : ops) {
    PlanStage stage;
    stage.op = std::move(op);
    plan.stages.push_back(std::move(stage));
  }

  if (base_skip && plan.stages.size() >= 2) {
    // Longest prefix of operators with partition entailment; stage k may
    // skip its synchronization when both ops k and k+1 entail equality on
    // a partition attribute (Theorem 5), and all earlier stages were
    // skipped too (site-locality of the running structure).
    size_t entailed_prefix = 0;
    while (entailed_prefix < plan.stages.size() &&
           HasPartitionEntailment(plan.stages[entailed_prefix].op,
                                  plan.key_columns)) {
      ++entailed_prefix;
    }
    for (size_t k = 0; k + 1 < entailed_prefix; ++k) {
      plan.stages[k].sync_after = false;
    }
  }

  // --- Group reductions (Prop. 1, Theorem 4) -------------------------------
  bool have_global = plan.sync_base;
  for (PlanStage& stage : plan.stages) {
    if (options_.indep_group_reduction && stage.sync_after && have_global) {
      // When the merge starts from the global structure, dropping
      // zero-|RNG| groups is safe: their rows are already present at the
      // coordinator with neutral aggregate values.
      stage.indep_group_reduction = true;
    }
    if (options_.aware_group_reduction && have_global) {
      std::vector<ExprPtr> filters(num_sites_);
      bool any = false;
      for (size_t site = 0; site < num_sites_; ++site) {
        filters[site] = DeriveSiteFilter(stage.op, site);
        if (filters[site] != nullptr) any = true;
      }
      if (any) stage.site_base_filters = std::move(filters);
    }
    have_global = stage.sync_after;
  }

  return plan;
}

}  // namespace skalla
