#include "opt/options.h"

#include <vector>

#include "common/string_util.h"

namespace skalla {

std::string OptimizerOptions::ToString() const {
  std::vector<std::string> on;
  if (coalescing) on.push_back("coalescing");
  if (indep_group_reduction) on.push_back("indep-GR");
  if (aware_group_reduction) on.push_back("aware-GR");
  if (sync_reduction) on.push_back("sync-reduction");
  if (on.empty()) return "none";
  return Join(on, "+");
}

}  // namespace skalla
