// Toggles for the distributed-evaluation optimizations of Sect. 4. Every
// combination produces a correct plan; the benches sweep these to
// reproduce the paper's ablations.

#ifndef SKALLA_OPT_OPTIONS_H_
#define SKALLA_OPT_OPTIONS_H_

#include <string>

namespace skalla {

struct OptimizerOptions {
  /// Sect. 4.3: merge adjacent GMDJs whose outer conditions do not
  /// reference inner-generated attributes.
  bool coalescing = false;

  /// Prop. 1: sites ship only groups with |RNG| > 0.
  bool indep_group_reduction = false;

  /// Theorem 4: the coordinator sends each site only the groups that can
  /// match there, derived from distribution knowledge.
  bool aware_group_reduction = false;

  /// Prop. 2 + Theorem 5 / Corollary 1: skip base-values synchronization
  /// and inter-GMDJ synchronizations when entailment analysis allows.
  bool sync_reduction = false;

  static OptimizerOptions None() { return OptimizerOptions{}; }
  static OptimizerOptions All() {
    return OptimizerOptions{true, true, true, true};
  }

  std::string ToString() const;
};

}  // namespace skalla

#endif  // SKALLA_OPT_OPTIONS_H_
