#include "relalg/operators.h"

#include <algorithm>

#include <unordered_map>

#include "common/macros.h"
#include "common/string_util.h"
#include "types/row.h"

namespace skalla {

Result<Table> Project(const Table& in,
                      const std::vector<std::string>& columns,
                      bool distinct) {
  std::vector<size_t> indices;
  indices.reserve(columns.size());
  for (const std::string& name : columns) {
    SKALLA_ASSIGN_OR_RETURN(size_t idx, in.schema()->RequireIndex(name));
    indices.push_back(idx);
  }
  Table out(in.schema()->Project(indices));
  out.Reserve(in.num_rows());
  for (size_t r = 0; r < in.num_rows(); ++r) {
    out.AppendUnchecked(ProjectRow(in.row(r), indices));
  }
  if (distinct) return Distinct(out);
  return out;
}

Result<Table> Select(const Table& in, const ExprPtr& predicate) {
  SKALLA_ASSIGN_OR_RETURN(ExprPtr bound,
                          predicate->Bind(nullptr, in.schema().get()));
  Table out(in.schema());
  for (size_t r = 0; r < in.num_rows(); ++r) {
    if (bound->EvalBool(nullptr, &in.row(r))) {
      out.AppendUnchecked(in.row(r));
    }
  }
  return out;
}

Result<Table> UnionAll(const Table& a, const Table& b) {
  if (a.num_columns() != b.num_columns()) {
    return Status::InvalidArgument(
        StrCat("UNION ALL arity mismatch: ", a.num_columns(), " vs ",
               b.num_columns()));
  }
  Table out(a.schema());
  out.Reserve(a.num_rows() + b.num_rows());
  for (size_t r = 0; r < a.num_rows(); ++r) out.AppendUnchecked(a.row(r));
  for (size_t r = 0; r < b.num_rows(); ++r) out.AppendUnchecked(b.row(r));
  return out;
}

Table Distinct(const Table& in) {
  Table out(in.schema());
  std::unordered_map<uint64_t, std::vector<size_t>> seen;
  for (size_t r = 0; r < in.num_rows(); ++r) {
    const Row& row = in.row(r);
    uint64_t h = HashRow(row);
    std::vector<size_t>& bucket = seen[h];
    bool duplicate = false;
    for (size_t prev : bucket) {
      if (RowEquals(out.row(prev), row)) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) {
      bucket.push_back(out.num_rows());
      out.AppendUnchecked(row);
    }
  }
  return out;
}

Result<Table> SortBy(const Table& in, const std::vector<std::string>& by) {
  std::vector<size_t> indices;
  indices.reserve(by.size());
  for (const std::string& name : by) {
    SKALLA_ASSIGN_OR_RETURN(size_t idx, in.schema()->RequireIndex(name));
    indices.push_back(idx);
  }
  Table out = in;
  out.SortRowsBy(indices);
  return out;
}

Result<Table> TopK(const Table& in, const std::string& column, size_t k,
                   bool descending) {
  SKALLA_ASSIGN_OR_RETURN(size_t key, in.schema()->RequireIndex(column));
  std::vector<size_t> order(in.num_rows());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::vector<size_t> all_columns(in.num_columns());
  for (size_t i = 0; i < all_columns.size(); ++i) all_columns[i] = i;
  auto better = [&](size_t a, size_t b) {
    int c = in.row(a)[key].Compare(in.row(b)[key]);
    if (c != 0) return descending ? c > 0 : c < 0;
    // Deterministic tie-break on the full row.
    return CompareRowKey(in.row(a), in.row(b), all_columns) < 0;
  };
  size_t keep = std::min(k, order.size());
  std::partial_sort(order.begin(),
                    order.begin() + static_cast<int64_t>(keep), order.end(),
                    better);
  Table out(in.schema());
  out.Reserve(keep);
  for (size_t i = 0; i < keep; ++i) out.AppendUnchecked(in.row(order[i]));
  return out;
}

Result<Table> BaseQuery::Execute(const Catalog& catalog) const {
  if (catalog.IsChunkBacked(table)) {
    SKALLA_ASSIGN_OR_RETURN(const DataProvider* provider,
                            catalog.GetProvider(table));
    return Execute(*provider);
  }
  SKALLA_ASSIGN_OR_RETURN(const Table* source, catalog.Get(table));
  if (where != nullptr) {
    SKALLA_ASSIGN_OR_RETURN(Table filtered, Select(*source, where));
    return Project(filtered, columns, distinct);
  }
  return Project(*source, columns, distinct);
}

Result<Table> BaseQuery::Execute(const DataProvider& provider) const {
  const SchemaPtr& schema = provider.schema();
  ExprPtr bound;
  if (where != nullptr) {
    SKALLA_ASSIGN_OR_RETURN(bound, where->Bind(nullptr, schema.get()));
  }
  std::vector<size_t> indices;
  indices.reserve(columns.size());
  for (const std::string& name : columns) {
    SKALLA_ASSIGN_OR_RETURN(size_t idx, schema->RequireIndex(name));
    indices.push_back(idx);
  }
  Table out(schema->Project(indices));
  // First-occurrence dedup, identical to Distinct() but applied as rows
  // stream so the filtered/projected intermediate never materializes.
  std::unordered_map<uint64_t, std::vector<size_t>> seen;
  for (size_t c = 0; c < provider.num_chunks(); ++c) {
    SKALLA_ASSIGN_OR_RETURN(PinnedChunk pin, provider.Pin(c));
    for (size_t r = 0; r < pin->num_rows(); ++r) {
      const Row& source_row = pin->row(r);
      if (bound != nullptr && !bound->EvalBool(nullptr, &source_row)) {
        continue;
      }
      Row row = ProjectRow(source_row, indices);
      if (distinct) {
        uint64_t h = HashRow(row);
        std::vector<size_t>& bucket = seen[h];
        bool duplicate = false;
        for (size_t prev : bucket) {
          if (RowEquals(out.row(prev), row)) {
            duplicate = true;
            break;
          }
        }
        if (duplicate) continue;
        bucket.push_back(out.num_rows());
      }
      out.AppendUnchecked(std::move(row));
    }
  }
  return out;
}

Result<SchemaPtr> BaseQuery::OutputSchema(const Schema& input) const {
  std::vector<size_t> indices;
  indices.reserve(columns.size());
  for (const std::string& name : columns) {
    SKALLA_ASSIGN_OR_RETURN(size_t idx, input.RequireIndex(name));
    indices.push_back(idx);
  }
  return input.Project(indices);
}

std::string BaseQuery::ToString() const {
  std::string out = StrCat("SELECT ", distinct ? "DISTINCT " : "",
                           Join(columns, ", "), " FROM ", table);
  if (where != nullptr) out += StrCat(" WHERE ", where->ToString());
  return out;
}

}  // namespace skalla
