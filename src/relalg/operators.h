// Minimal relational operators over Tables: enough to compute the
// base-values queries 𝔅 of GMDJ expressions (projection/distinct/selection
// over the fact relation) and to combine partial results (union).

#ifndef SKALLA_RELALG_OPERATORS_H_
#define SKALLA_RELALG_OPERATORS_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "expr/expr.h"
#include "storage/catalog.h"
#include "storage/table.h"

namespace skalla {

/// π: projects `in` onto the named columns, optionally deduplicating.
Result<Table> Project(const Table& in, const std::vector<std::string>& columns,
                      bool distinct);

/// σ: rows of `in` satisfying `predicate`. The predicate references the
/// detail side (r.col) and is bound against `in`'s schema here.
Result<Table> Select(const Table& in, const ExprPtr& predicate);

/// Multiset union. Schemas must have identical field counts and types
/// (names may differ; the left schema wins).
Result<Table> UnionAll(const Table& a, const Table& b);

/// Deduplicates full rows.
Table Distinct(const Table& in);

/// Sorts by the named columns ascending.
Result<Table> SortBy(const Table& in, const std::vector<std::string>& by);

/// The k rows with the largest (descending = true) or smallest values of
/// `column`, ties broken by the remaining columns for determinism. The
/// classic "top talkers" post-processing step over a GMDJ result.
Result<Table> TopK(const Table& in, const std::string& column, size_t k,
                   bool descending = true);

/// The base-values query 𝔅 of a GMDJ expression: a (usually distinct)
/// projection of grouping columns from a named relation, with an optional
/// selection. Executable against any catalog — the whole warehouse for
/// centralized evaluation, or one site's partition for local evaluation.
struct BaseQuery {
  std::string table;
  std::vector<std::string> columns;
  bool distinct = true;
  ExprPtr where;  // Optional; references r.<col> of `table`.

  /// Resident relations run σ then π over the table; chunk-backed ones
  /// stream pin → filter → project → dedup one chunk at a time, which
  /// yields the same rows in the same order (σ, π, and first-occurrence
  /// dedup are all row-order preserving).
  Result<Table> Execute(const Catalog& catalog) const;

  /// The streaming path, directly against a provider.
  Result<Table> Execute(const DataProvider& provider) const;

  /// Schema of the result given the source relation's schema.
  Result<SchemaPtr> OutputSchema(const Schema& input) const;

  std::string ToString() const;
};

}  // namespace skalla

#endif  // SKALLA_RELALG_OPERATORS_H_
