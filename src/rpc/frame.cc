#include "rpc/frame.h"

#include <array>

#include "common/macros.h"
#include "common/string_util.h"

namespace skalla {
namespace rpc {

namespace {

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

void PutLe32(std::vector<uint8_t>* out, uint32_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v >> 16));
  out->push_back(static_cast<uint8_t>(v >> 24));
}

uint32_t GetLe32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

}  // namespace

uint32_t Crc32Init() { return 0xFFFFFFFFu; }

uint32_t Crc32Update(uint32_t state, const uint8_t* data, size_t size) {
  static const std::array<uint32_t, 256> kTable = MakeCrcTable();
  for (size_t i = 0; i < size; ++i) {
    state = kTable[(state ^ data[i]) & 0xFF] ^ (state >> 8);
  }
  return state;
}

uint32_t Crc32Final(uint32_t state) { return state ^ 0xFFFFFFFFu; }

uint32_t Crc32(const uint8_t* data, size_t size) {
  return Crc32Final(Crc32Update(Crc32Init(), data, size));
}

uint32_t FrameCrc(const uint8_t* header, const uint8_t* payload,
                  size_t payload_size) {
  uint32_t state = Crc32Update(Crc32Init(), header, 12);
  state = Crc32Update(state, payload, payload_size);
  return Crc32Final(state);
}

void EncodeFrame(MessageType type, const std::vector<uint8_t>& payload,
                 std::vector<uint8_t>* out) {
  uint8_t header[12];
  header[0] = static_cast<uint8_t>(kFrameMagic);
  header[1] = static_cast<uint8_t>(kFrameMagic >> 8);
  header[2] = static_cast<uint8_t>(kFrameMagic >> 16);
  header[3] = static_cast<uint8_t>(kFrameMagic >> 24);
  header[4] = kProtocolVersion;
  header[5] = static_cast<uint8_t>(type);
  header[6] = 0;
  header[7] = 0;
  const uint32_t len = static_cast<uint32_t>(payload.size());
  header[8] = static_cast<uint8_t>(len);
  header[9] = static_cast<uint8_t>(len >> 8);
  header[10] = static_cast<uint8_t>(len >> 16);
  header[11] = static_cast<uint8_t>(len >> 24);
  out->reserve(out->size() + kFrameHeaderSize + payload.size());
  out->insert(out->end(), header, header + 12);
  PutLe32(out, FrameCrc(header, payload.data(), payload.size()));
  out->insert(out->end(), payload.begin(), payload.end());
}

std::vector<uint8_t> EncodeFrame(MessageType type,
                                 const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> out;
  EncodeFrame(type, payload, &out);
  return out;
}

Result<uint32_t> DecodeFrameHeader(const uint8_t* header, size_t size,
                                   MessageType* type_out, uint32_t* crc_out) {
  if (size < kFrameHeaderSize) {
    return Status::IOError(
        StrCat("truncated frame header: ", size, " of ", kFrameHeaderSize,
               " bytes"));
  }
  if (GetLe32(header) != kFrameMagic) {
    return Status::IOError("bad frame magic (not a Skalla rpc stream)");
  }
  if (header[4] != kProtocolVersion) {
    return Status::VersionMismatch(
        StrCat("peer speaks rpc protocol version ", int{header[4]},
               ", this build speaks ", int{kProtocolVersion}));
  }
  if (header[5] > kMaxMessageType) {
    return Status::IOError(StrCat("unknown message type ", int{header[5]}));
  }
  if (header[6] != 0 || header[7] != 0) {
    return Status::IOError("reserved frame header bytes are non-zero");
  }
  if (type_out != nullptr) {
    *type_out = static_cast<MessageType>(header[5]);
  }
  if (crc_out != nullptr) *crc_out = GetLe32(header + 12);
  return GetLe32(header + 8);
}

Result<Frame> DecodeFrame(const uint8_t* data, size_t size) {
  Frame frame;
  uint32_t expected_crc = 0;
  SKALLA_ASSIGN_OR_RETURN(
      uint32_t payload_len,
      DecodeFrameHeader(data, size, &frame.type, &expected_crc));
  if (size != kFrameHeaderSize + payload_len) {
    return Status::IOError(
        StrCat("frame length mismatch: header announces ", payload_len,
               " payload bytes, buffer holds ", size - kFrameHeaderSize));
  }
  const uint8_t* payload = data + kFrameHeaderSize;
  uint32_t actual_crc = FrameCrc(data, payload, payload_len);
  if (actual_crc != expected_crc) {
    return Status::IOError(
        StrPrintf("frame checksum mismatch: expected %08x, computed %08x",
                  expected_crc, actual_crc));
  }
  frame.payload.assign(payload, payload + payload_len);
  return frame;
}

}  // namespace rpc
}  // namespace skalla
