#include "rpc/frame.h"

#include <array>

#include "common/macros.h"
#include "common/string_util.h"

namespace skalla {
namespace rpc {

namespace {

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

void PutLe32(std::vector<uint8_t>* out, uint32_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v >> 16));
  out->push_back(static_cast<uint8_t>(v >> 24));
}

uint32_t GetLe32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t size) {
  static const std::array<uint32_t, 256> kTable = MakeCrcTable();
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = kTable[(crc ^ data[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void EncodeFrame(MessageType type, const std::vector<uint8_t>& payload,
                 std::vector<uint8_t>* out) {
  out->reserve(out->size() + kFrameHeaderSize + payload.size());
  PutLe32(out, kFrameMagic);
  out->push_back(kProtocolVersion);
  out->push_back(static_cast<uint8_t>(type));
  out->push_back(0);
  out->push_back(0);
  PutLe32(out, static_cast<uint32_t>(payload.size()));
  PutLe32(out, Crc32(payload.data(), payload.size()));
  out->insert(out->end(), payload.begin(), payload.end());
}

std::vector<uint8_t> EncodeFrame(MessageType type,
                                 const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> out;
  EncodeFrame(type, payload, &out);
  return out;
}

Result<uint32_t> DecodeFrameHeader(const uint8_t* header, size_t size,
                                   MessageType* type_out, uint32_t* crc_out) {
  if (size < kFrameHeaderSize) {
    return Status::IOError(
        StrCat("truncated frame header: ", size, " of ", kFrameHeaderSize,
               " bytes"));
  }
  if (GetLe32(header) != kFrameMagic) {
    return Status::IOError("bad frame magic (not a Skalla rpc stream)");
  }
  if (header[4] != kProtocolVersion) {
    return Status::VersionMismatch(
        StrCat("peer speaks rpc protocol version ", int{header[4]},
               ", this build speaks ", int{kProtocolVersion}));
  }
  if (header[5] > kMaxMessageType) {
    return Status::IOError(StrCat("unknown message type ", int{header[5]}));
  }
  if (header[6] != 0 || header[7] != 0) {
    return Status::IOError("reserved frame header bytes are non-zero");
  }
  if (type_out != nullptr) {
    *type_out = static_cast<MessageType>(header[5]);
  }
  if (crc_out != nullptr) *crc_out = GetLe32(header + 12);
  return GetLe32(header + 8);
}

Result<Frame> DecodeFrame(const uint8_t* data, size_t size) {
  Frame frame;
  uint32_t expected_crc = 0;
  SKALLA_ASSIGN_OR_RETURN(
      uint32_t payload_len,
      DecodeFrameHeader(data, size, &frame.type, &expected_crc));
  if (size != kFrameHeaderSize + payload_len) {
    return Status::IOError(
        StrCat("frame length mismatch: header announces ", payload_len,
               " payload bytes, buffer holds ", size - kFrameHeaderSize));
  }
  const uint8_t* payload = data + kFrameHeaderSize;
  uint32_t actual_crc = Crc32(payload, payload_len);
  if (actual_crc != expected_crc) {
    return Status::IOError(
        StrPrintf("frame checksum mismatch: expected %08x, computed %08x",
                  expected_crc, actual_crc));
  }
  frame.payload.assign(payload, payload + payload_len);
  return frame;
}

}  // namespace rpc
}  // namespace skalla
