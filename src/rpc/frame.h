// The Skalla wire frame: every message between a coordinator and a site
// — over TCP, over an in-process channel, or through the simulated
// network — travels inside one of these.
//
// Layout (little-endian, fixed 16-byte header):
//
//   offset  size  field
//        0     4  magic            "SKLA" (0x414C4B53)
//        4     1  protocol version (kProtocolVersion)
//        5     1  message type     (MessageType)
//        6     2  reserved         (zero)
//        8     4  payload length   (bytes following the header)
//       12     4  CRC32 of header bytes [0, 12) + payload (ISO-HDLC)
//
// The header is deliberately free of varints: a receiver reads exactly
// kFrameHeaderSize bytes, validates magic/version/type, then knows how
// many payload bytes follow. A version byte other than kProtocolVersion
// is rejected with Status::VersionMismatch so mixed deployments fail
// loudly instead of misparsing payloads. Since v3 the checksum covers
// the header (all bytes before the CRC field itself) as well as the
// payload, so a corrupted type or length byte can never decode silently:
// every single-byte flip is caught either by a field validity check or
// by the checksum.

#ifndef SKALLA_RPC_FRAME_H_
#define SKALLA_RPC_FRAME_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace skalla {
namespace rpc {

inline constexpr uint32_t kFrameMagic = 0x414C4B53;  // "SKLA"
// Version history:
//   1  initial protocol
//   2  BeginPlan payload grows an eval_threads varint after the flags
//      byte (intra-site morsel parallelism)
//   3  frame CRC covers the header (bytes [0, 12)) as well as the
//      payload; BaseRound/GmdjRound payloads grow a deadline_ms varint
//      after the flags byte (coordinator-propagated round deadline)
//   4  BaseRound/GmdjRound payloads grow a TraceContext (trace id,
//      parent span id, query id varints) after deadline_ms; round
//      responses switch from kTableResult to kRoundResult (flags byte +
//      serialized RoundProfile + optional table tail); new kGetStats /
//      kStatsResult message pair for pulling a site's metrics snapshot
//   5  multi-query frame multiplexing: BeginPlan payload grows a
//      query_id varint after eval_threads, sites keep per-query round
//      state keyed by the TraceContext query id (so rounds of different
//      queries interleave over one connection), and the new kEndPlan
//      message (varint query id) releases a query's site-side state
//   6  engine plumbing: BeginPlan payload grows an engine varint after
//      query_id (the EvalContext::engine every GMDJ round of the plan
//      runs under), and RoundProfile grows an engines_used varint after
//      chaos_faults (which kernels the round's evaluation actually used)
inline constexpr uint8_t kProtocolVersion = 6;
inline constexpr size_t kFrameHeaderSize = 16;

/// What a frame carries. Requests flow coordinator -> site; responses
/// site -> coordinator; kTableResult doubles as the payload type for
/// fragments on the in-process channel transport.
enum class MessageType : uint8_t {
  kError = 0,        // response: encoded Status (rpc/plan_serde.h)
  kAck = 1,          // response: empty payload
  kHello = 2,        // both ways: varint site id (connection handshake)
  kCatalogRequest = 3,   // request: empty payload
  kCatalogResponse = 4,  // response: table names + schemas
  kBeginPlan = 5,    // request: per-plan flags; resets site round state
  kBaseRound = 6,    // request: BaseRoundRequest
  kGmdjRound = 7,    // request: GmdjRoundRequest
  kTableResult = 8,  // response: net/serde table payload
  kShutdown = 9,     // request: site server stops after acknowledging
  kGetStats = 10,    // request: empty payload; pulls a metrics snapshot
  kStatsResult = 11,  // response: varint site id + JSON metrics string
  kRoundResult = 12,  // response: flags + RoundProfile + table payload
  kEndPlan = 13,      // request: varint query id; frees per-query state
};

inline constexpr uint8_t kMaxMessageType =
    static_cast<uint8_t>(MessageType::kEndPlan);

/// One decoded message.
struct Frame {
  MessageType type = MessageType::kError;
  std::vector<uint8_t> payload;
};

/// CRC-32 (ISO-HDLC / zlib polynomial, reflected). Crc32("123456789")
/// == 0xCBF43926.
uint32_t Crc32(const uint8_t* data, size_t size);

/// Incremental CRC-32 over discontiguous buffers: start from
/// Crc32Init(), fold each buffer with Crc32Update(), then finalize.
/// Crc32Final(Crc32Update(Crc32Init(), d, n)) == Crc32(d, n).
uint32_t Crc32Init();
uint32_t Crc32Update(uint32_t state, const uint8_t* data, size_t size);
uint32_t Crc32Final(uint32_t state);

/// The frame checksum: CRC-32 over the first 12 header bytes followed
/// by the payload.
uint32_t FrameCrc(const uint8_t* header, const uint8_t* payload,
                  size_t payload_size);

/// Appends the 16-byte header followed by the payload to `out`.
void EncodeFrame(MessageType type, const std::vector<uint8_t>& payload,
                 std::vector<uint8_t>* out);

/// Convenience: a freshly encoded frame buffer.
std::vector<uint8_t> EncodeFrame(MessageType type,
                                 const std::vector<uint8_t>& payload);

/// Validates a 16-byte header. On success returns the payload length;
/// `type_out` (may be nullptr) receives the message type and `crc_out`
/// (may be nullptr) the expected frame CRC (header bytes [0, 12) +
/// payload). Wrong magic/garbled headers are IOError; a foreign
/// protocol version is VersionMismatch.
Result<uint32_t> DecodeFrameHeader(const uint8_t* header, size_t size,
                                   MessageType* type_out, uint32_t* crc_out);

/// Decodes a whole buffer (header + payload, nothing trailing),
/// verifying the frame checksum.
Result<Frame> DecodeFrame(const uint8_t* data, size_t size);
inline Result<Frame> DecodeFrame(const std::vector<uint8_t>& buffer) {
  return DecodeFrame(buffer.data(), buffer.size());
}

}  // namespace rpc
}  // namespace skalla

#endif  // SKALLA_RPC_FRAME_H_
