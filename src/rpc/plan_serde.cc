#include "rpc/plan_serde.h"

#include <utility>

#include "common/macros.h"
#include "common/string_util.h"
#include "types/value_set.h"

namespace skalla {
namespace rpc {

namespace {

// Deep-but-degenerate expression trees (a parser can nest thousands of
// parentheses) must not overflow the decoder's stack.
constexpr int kMaxExprDepth = 512;

constexpr uint8_t kAbsent = 0;
constexpr uint8_t kPresent = 1;

Result<ExprPtr> ReadExprImpl(ByteReader* reader, int depth);

void WriteExprImpl(std::vector<uint8_t>* out, const Expr& expr) {
  out->push_back(static_cast<uint8_t>(expr.kind()));
  switch (expr.kind()) {
    case ExprKind::kLiteral:
      WriteValue(out, expr.literal());
      return;
    case ExprKind::kColumnRef:
      out->push_back(static_cast<uint8_t>(expr.side()));
      WriteString(out, expr.column_name());
      return;
    case ExprKind::kUnary:
      out->push_back(static_cast<uint8_t>(expr.unary_op()));
      WriteExprImpl(out, *expr.operand());
      return;
    case ExprKind::kBinary:
      out->push_back(static_cast<uint8_t>(expr.binary_op()));
      WriteExprImpl(out, *expr.left());
      WriteExprImpl(out, *expr.right());
      return;
    case ExprKind::kInSet: {
      WriteExprImpl(out, *expr.operand());
      const auto& set = expr.value_set();
      PutVarint(out, set == nullptr ? 0 : set->size());
      if (set != nullptr) {
        set->ForEach([out](const Value& v) { WriteValue(out, v); });
      }
      return;
    }
  }
}

Result<ExprPtr> ReadExprImpl(ByteReader* reader, int depth) {
  if (depth > kMaxExprDepth) {
    return Status::IOError("expression tree too deep");
  }
  SKALLA_ASSIGN_OR_RETURN(uint8_t kind_tag, reader->ReadByte());
  switch (static_cast<ExprKind>(kind_tag)) {
    case ExprKind::kLiteral: {
      SKALLA_ASSIGN_OR_RETURN(Value v, ReadValue(reader));
      return Expr::Literal(std::move(v));
    }
    case ExprKind::kColumnRef: {
      SKALLA_ASSIGN_OR_RETURN(uint8_t side, reader->ReadByte());
      if (side > static_cast<uint8_t>(ExprSide::kDetail)) {
        return Status::IOError(StrCat("bad expr side tag ", int{side}));
      }
      SKALLA_ASSIGN_OR_RETURN(std::string name, ReadString(reader));
      return Expr::ColumnRef(static_cast<ExprSide>(side), std::move(name));
    }
    case ExprKind::kUnary: {
      SKALLA_ASSIGN_OR_RETURN(uint8_t op, reader->ReadByte());
      if (op > static_cast<uint8_t>(UnaryOp::kNeg)) {
        return Status::IOError(StrCat("bad unary op tag ", int{op}));
      }
      SKALLA_ASSIGN_OR_RETURN(ExprPtr operand,
                              ReadExprImpl(reader, depth + 1));
      return Expr::Unary(static_cast<UnaryOp>(op), std::move(operand));
    }
    case ExprKind::kBinary: {
      SKALLA_ASSIGN_OR_RETURN(uint8_t op, reader->ReadByte());
      if (op > static_cast<uint8_t>(BinaryOp::kOr)) {
        return Status::IOError(StrCat("bad binary op tag ", int{op}));
      }
      SKALLA_ASSIGN_OR_RETURN(ExprPtr left, ReadExprImpl(reader, depth + 1));
      SKALLA_ASSIGN_OR_RETURN(ExprPtr right, ReadExprImpl(reader, depth + 1));
      return Expr::Binary(static_cast<BinaryOp>(op), std::move(left),
                          std::move(right));
    }
    case ExprKind::kInSet: {
      SKALLA_ASSIGN_OR_RETURN(ExprPtr operand,
                              ReadExprImpl(reader, depth + 1));
      SKALLA_ASSIGN_OR_RETURN(uint64_t count, reader->ReadVarint());
      auto set = std::make_shared<ValueSet>();
      for (uint64_t i = 0; i < count; ++i) {
        SKALLA_ASSIGN_OR_RETURN(Value v, ReadValue(reader));
        set->Insert(v);
      }
      return Expr::InSet(std::move(operand), std::move(set));
    }
    default:
      return Status::IOError(StrCat("bad expr kind tag ", int{kind_tag}));
  }
}

Result<uint8_t> ReadFlags(ByteReader* reader) { return reader->ReadByte(); }

// A RoundProfile's span subtree is bounded by the instrumentation (a few
// spans per morsel at worst); anything beyond this is a corrupt payload.
constexpr uint64_t kMaxProfileSpans = 1u << 20;
constexpr uint64_t kMaxSpanAttrs = 1u << 12;

}  // namespace

void WriteTraceContext(std::vector<uint8_t>* out, const TraceContext& ctx) {
  PutVarint(out, ctx.trace_id);
  PutVarint(out, ctx.parent_span_id);
  PutVarint(out, ctx.query_id);
}

Result<TraceContext> ReadTraceContext(ByteReader* reader) {
  TraceContext ctx;
  SKALLA_ASSIGN_OR_RETURN(ctx.trace_id, reader->ReadVarint());
  SKALLA_ASSIGN_OR_RETURN(ctx.parent_span_id, reader->ReadVarint());
  SKALLA_ASSIGN_OR_RETURN(ctx.query_id, reader->ReadVarint());
  return ctx;
}

void WriteRoundProfile(std::vector<uint8_t>* out,
                       const RoundProfile& profile) {
  PutVarint(out, ZigzagEncode(profile.site_id));
  PutVarint(out, profile.wall_us);
  PutVarint(out, profile.eval_us);
  PutVarint(out, profile.morsel_us);
  PutVarint(out, profile.rows_scanned);
  PutVarint(out, profile.rows_matched);
  PutVarint(out, profile.index_hits);
  PutVarint(out, profile.bytes_in);
  PutVarint(out, profile.bytes_out);
  PutVarint(out, profile.result_rows);
  PutVarint(out, profile.duplicate_rounds);
  PutVarint(out, profile.chaos_faults);
  PutVarint(out, profile.engines_used);
  PutVarint(out, profile.spans.size());
  for (const obs::TraceEvent& e : profile.spans) {
    WriteString(out, e.name);
    WriteString(out, e.category);
    PutVarint(out, ZigzagEncode(e.ts_us));
    PutVarint(out, ZigzagEncode(e.dur_us));
    PutVarint(out, e.id);
    PutVarint(out, e.parent_id);
    PutVarint(out, e.tid);
    PutVarint(out, e.attrs.size());
    for (const auto& [key, value] : e.attrs) {
      WriteString(out, key);
      WriteString(out, value);
    }
  }
}

Result<RoundProfile> ReadRoundProfile(ByteReader* reader) {
  RoundProfile profile;
  SKALLA_ASSIGN_OR_RETURN(uint64_t site_raw, reader->ReadVarint());
  profile.site_id = static_cast<int>(ZigzagDecode(site_raw));
  SKALLA_ASSIGN_OR_RETURN(profile.wall_us, reader->ReadVarint());
  SKALLA_ASSIGN_OR_RETURN(profile.eval_us, reader->ReadVarint());
  SKALLA_ASSIGN_OR_RETURN(profile.morsel_us, reader->ReadVarint());
  SKALLA_ASSIGN_OR_RETURN(profile.rows_scanned, reader->ReadVarint());
  SKALLA_ASSIGN_OR_RETURN(profile.rows_matched, reader->ReadVarint());
  SKALLA_ASSIGN_OR_RETURN(profile.index_hits, reader->ReadVarint());
  SKALLA_ASSIGN_OR_RETURN(profile.bytes_in, reader->ReadVarint());
  SKALLA_ASSIGN_OR_RETURN(profile.bytes_out, reader->ReadVarint());
  SKALLA_ASSIGN_OR_RETURN(profile.result_rows, reader->ReadVarint());
  SKALLA_ASSIGN_OR_RETURN(profile.duplicate_rounds, reader->ReadVarint());
  SKALLA_ASSIGN_OR_RETURN(profile.chaos_faults, reader->ReadVarint());
  SKALLA_ASSIGN_OR_RETURN(uint64_t engines_raw, reader->ReadVarint());
  if (engines_raw > 0xFF) {
    return Status::IOError("implausible engine set");
  }
  profile.engines_used = static_cast<uint8_t>(engines_raw);
  SKALLA_ASSIGN_OR_RETURN(uint64_t num_spans, reader->ReadVarint());
  if (num_spans > kMaxProfileSpans) {
    return Status::IOError("implausible profile span count");
  }
  profile.spans.reserve(num_spans);
  for (uint64_t i = 0; i < num_spans; ++i) {
    obs::TraceEvent e;
    SKALLA_ASSIGN_OR_RETURN(e.name, ReadString(reader));
    SKALLA_ASSIGN_OR_RETURN(e.category, ReadString(reader));
    SKALLA_ASSIGN_OR_RETURN(uint64_t ts_raw, reader->ReadVarint());
    e.ts_us = ZigzagDecode(ts_raw);
    SKALLA_ASSIGN_OR_RETURN(uint64_t dur_raw, reader->ReadVarint());
    e.dur_us = ZigzagDecode(dur_raw);
    SKALLA_ASSIGN_OR_RETURN(e.id, reader->ReadVarint());
    SKALLA_ASSIGN_OR_RETURN(e.parent_id, reader->ReadVarint());
    SKALLA_ASSIGN_OR_RETURN(uint64_t tid, reader->ReadVarint());
    e.tid = static_cast<uint32_t>(tid);
    SKALLA_ASSIGN_OR_RETURN(uint64_t num_attrs, reader->ReadVarint());
    if (num_attrs > kMaxSpanAttrs) {
      return Status::IOError("implausible span attribute count");
    }
    e.attrs.reserve(num_attrs);
    for (uint64_t a = 0; a < num_attrs; ++a) {
      SKALLA_ASSIGN_OR_RETURN(std::string key, ReadString(reader));
      SKALLA_ASSIGN_OR_RETURN(std::string value, ReadString(reader));
      e.attrs.emplace_back(std::move(key), std::move(value));
    }
    profile.spans.push_back(std::move(e));
  }
  return profile;
}

void WriteString(std::vector<uint8_t>* out, std::string_view s) {
  PutVarint(out, s.size());
  out->insert(out->end(), s.begin(), s.end());
}

Result<std::string> ReadString(ByteReader* reader) {
  SKALLA_ASSIGN_OR_RETURN(uint64_t len, reader->ReadVarint());
  SKALLA_ASSIGN_OR_RETURN(const uint8_t* bytes, reader->ReadBytes(len));
  return std::string(reinterpret_cast<const char*>(bytes), len);
}

void WriteExpr(std::vector<uint8_t>* out, const ExprPtr& expr) {
  if (expr == nullptr) {
    out->push_back(kAbsent);
    return;
  }
  out->push_back(kPresent);
  WriteExprImpl(out, *expr);
}

Result<ExprPtr> ReadExpr(ByteReader* reader) {
  SKALLA_ASSIGN_OR_RETURN(uint8_t marker, reader->ReadByte());
  if (marker == kAbsent) return ExprPtr(nullptr);
  if (marker != kPresent) {
    return Status::IOError(StrCat("bad expr presence marker ", int{marker}));
  }
  return ReadExprImpl(reader, 0);
}

void WriteSchema(std::vector<uint8_t>* out, const Schema& schema) {
  PutVarint(out, schema.num_fields());
  for (const Field& f : schema.fields()) {
    WriteString(out, f.name);
    out->push_back(static_cast<uint8_t>(f.type));
  }
}

Result<SchemaPtr> ReadSchema(ByteReader* reader) {
  SKALLA_ASSIGN_OR_RETURN(uint64_t num_fields, reader->ReadVarint());
  if (num_fields > 1u << 20) {
    return Status::IOError("implausible field count");
  }
  std::vector<Field> fields;
  fields.reserve(num_fields);
  for (uint64_t i = 0; i < num_fields; ++i) {
    SKALLA_ASSIGN_OR_RETURN(std::string name, ReadString(reader));
    SKALLA_ASSIGN_OR_RETURN(uint8_t type, reader->ReadByte());
    if (type > static_cast<uint8_t>(ValueType::kString)) {
      return Status::IOError(StrCat("bad field type tag ", int{type}));
    }
    fields.push_back(Field{std::move(name), static_cast<ValueType>(type)});
  }
  return Schema::Make(std::move(fields));
}

void WriteStatusPayload(std::vector<uint8_t>* out, const Status& status) {
  out->push_back(static_cast<uint8_t>(status.code()));
  WriteString(out, status.message());
}

Status ReadStatusPayload(const std::vector<uint8_t>& payload) {
  ByteReader reader(payload.data(), payload.size());
  Result<uint8_t> code = reader.ReadByte();
  if (!code.ok()) {
    return Status::IOError("truncated status payload");
  }
  if (*code > static_cast<uint8_t>(StatusCode::kDeadlineExceeded)) {
    return Status::IOError(StrCat("bad status code tag ", int{*code}));
  }
  Result<std::string> message = ReadString(&reader);
  if (!message.ok()) {
    return Status::IOError("truncated status payload");
  }
  return Status(static_cast<StatusCode>(*code), std::move(*message));
}

void WriteBaseQuery(std::vector<uint8_t>* out, const BaseQuery& query) {
  WriteString(out, query.table);
  PutVarint(out, query.columns.size());
  for (const std::string& column : query.columns) WriteString(out, column);
  out->push_back(query.distinct ? 1 : 0);
  WriteExpr(out, query.where);
}

Result<BaseQuery> ReadBaseQuery(ByteReader* reader) {
  BaseQuery query;
  SKALLA_ASSIGN_OR_RETURN(query.table, ReadString(reader));
  SKALLA_ASSIGN_OR_RETURN(uint64_t num_columns, reader->ReadVarint());
  query.columns.reserve(num_columns);
  for (uint64_t i = 0; i < num_columns; ++i) {
    SKALLA_ASSIGN_OR_RETURN(std::string column, ReadString(reader));
    query.columns.push_back(std::move(column));
  }
  SKALLA_ASSIGN_OR_RETURN(uint8_t distinct, reader->ReadByte());
  query.distinct = distinct != 0;
  SKALLA_ASSIGN_OR_RETURN(query.where, ReadExpr(reader));
  return query;
}

void WriteGmdjOp(std::vector<uint8_t>* out, const GmdjOp& op) {
  WriteString(out, op.detail_table);
  PutVarint(out, op.blocks.size());
  for (const GmdjBlock& block : op.blocks) {
    PutVarint(out, block.aggs.size());
    for (const AggSpec& agg : block.aggs) {
      out->push_back(static_cast<uint8_t>(agg.kind));
      WriteString(out, agg.input);
      WriteString(out, agg.output);
    }
    WriteExpr(out, block.theta);
  }
}

Result<GmdjOp> ReadGmdjOp(ByteReader* reader) {
  GmdjOp op;
  SKALLA_ASSIGN_OR_RETURN(op.detail_table, ReadString(reader));
  SKALLA_ASSIGN_OR_RETURN(uint64_t num_blocks, reader->ReadVarint());
  op.blocks.reserve(num_blocks);
  for (uint64_t b = 0; b < num_blocks; ++b) {
    GmdjBlock block;
    SKALLA_ASSIGN_OR_RETURN(uint64_t num_aggs, reader->ReadVarint());
    block.aggs.reserve(num_aggs);
    for (uint64_t a = 0; a < num_aggs; ++a) {
      AggSpec spec;
      SKALLA_ASSIGN_OR_RETURN(uint8_t kind, reader->ReadByte());
      if (kind > static_cast<uint8_t>(AggKind::kSumSq)) {
        return Status::IOError(StrCat("bad aggregate kind tag ", int{kind}));
      }
      spec.kind = static_cast<AggKind>(kind);
      SKALLA_ASSIGN_OR_RETURN(spec.input, ReadString(reader));
      SKALLA_ASSIGN_OR_RETURN(spec.output, ReadString(reader));
      block.aggs.push_back(std::move(spec));
    }
    SKALLA_ASSIGN_OR_RETURN(block.theta, ReadExpr(reader));
    op.blocks.push_back(std::move(block));
  }
  return op;
}

std::vector<uint8_t> EncodeBeginPlanRequest(const BeginPlanRequest& req) {
  std::vector<uint8_t> out;
  out.push_back(req.columnar_sites ? 1 : 0);
  PutVarint(&out, req.eval_threads);
  PutVarint(&out, req.query_id);
  PutVarint(&out, static_cast<uint64_t>(req.engine));
  return out;
}

Result<BeginPlanRequest> DecodeBeginPlanRequest(
    const std::vector<uint8_t>& payload) {
  ByteReader reader(payload.data(), payload.size());
  SKALLA_ASSIGN_OR_RETURN(uint8_t flags, ReadFlags(&reader));
  BeginPlanRequest req;
  req.columnar_sites = (flags & 1) != 0;
  SKALLA_ASSIGN_OR_RETURN(uint64_t eval_threads, reader.ReadVarint());
  req.eval_threads = static_cast<size_t>(eval_threads);
  SKALLA_ASSIGN_OR_RETURN(req.query_id, reader.ReadVarint());
  SKALLA_ASSIGN_OR_RETURN(uint64_t engine_raw, reader.ReadVarint());
  if (engine_raw > static_cast<uint64_t>(EvalEngine::kColumnar)) {
    return Status::IOError("unknown eval engine");
  }
  req.engine = static_cast<EvalEngine>(engine_raw);
  return req;
}

std::vector<uint8_t> EncodeEndPlanRequest(uint64_t query_id) {
  std::vector<uint8_t> out;
  PutVarint(&out, query_id);
  return out;
}

Result<uint64_t> DecodeEndPlanRequest(const std::vector<uint8_t>& payload) {
  ByteReader reader(payload.data(), payload.size());
  SKALLA_ASSIGN_OR_RETURN(uint64_t query_id, reader.ReadVarint());
  return query_id;
}

std::vector<uint8_t> EncodeBaseRoundRequest(const BaseRoundRequest& req) {
  std::vector<uint8_t> out;
  out.push_back(req.ship_result ? 1 : 0);
  PutVarint(&out, req.deadline_ms);
  WriteTraceContext(&out, req.trace);
  WriteBaseQuery(&out, req.query);
  return out;
}

Result<BaseRoundRequest> DecodeBaseRoundRequest(
    const std::vector<uint8_t>& payload) {
  ByteReader reader(payload.data(), payload.size());
  SKALLA_ASSIGN_OR_RETURN(uint8_t flags, ReadFlags(&reader));
  BaseRoundRequest req;
  req.ship_result = (flags & 1) != 0;
  SKALLA_ASSIGN_OR_RETURN(req.deadline_ms, reader.ReadVarint());
  SKALLA_ASSIGN_OR_RETURN(req.trace, ReadTraceContext(&reader));
  SKALLA_ASSIGN_OR_RETURN(req.query, ReadBaseQuery(&reader));
  if (reader.remaining() != 0) {
    return Status::IOError("trailing bytes after base-round request");
  }
  return req;
}

std::vector<uint8_t> EncodeGmdjRoundRequest(
    const GmdjRoundRequest& req,
    const std::vector<uint8_t>& base_table_bytes) {
  std::vector<uint8_t> out;
  uint8_t flags = 0;
  if (req.sub_aggregates) flags |= 1;
  if (req.apply_rng) flags |= 2;
  if (req.ship_result) flags |= 4;
  if (req.has_base) flags |= 8;
  out.push_back(flags);
  PutVarint(&out, req.deadline_ms);
  WriteTraceContext(&out, req.trace);
  WriteString(&out, req.label);
  WriteGmdjOp(&out, req.op);
  if (req.has_base) {
    out.insert(out.end(), base_table_bytes.begin(), base_table_bytes.end());
  }
  return out;
}

Result<GmdjRoundRequest> DecodeGmdjRoundRequest(
    const std::vector<uint8_t>& payload) {
  ByteReader reader(payload.data(), payload.size());
  SKALLA_ASSIGN_OR_RETURN(uint8_t flags, ReadFlags(&reader));
  GmdjRoundRequest req;
  req.sub_aggregates = (flags & 1) != 0;
  req.apply_rng = (flags & 2) != 0;
  req.ship_result = (flags & 4) != 0;
  req.has_base = (flags & 8) != 0;
  SKALLA_ASSIGN_OR_RETURN(req.deadline_ms, reader.ReadVarint());
  SKALLA_ASSIGN_OR_RETURN(req.trace, ReadTraceContext(&reader));
  SKALLA_ASSIGN_OR_RETURN(req.label, ReadString(&reader));
  SKALLA_ASSIGN_OR_RETURN(req.op, ReadGmdjOp(&reader));
  size_t table_offset = payload.size() - reader.remaining();
  if (req.has_base) {
    req.base_table_bytes = payload.size() - table_offset;
    SKALLA_ASSIGN_OR_RETURN(
        req.base, ReadTable(payload.data() + table_offset,
                            payload.size() - table_offset));
  } else if (reader.remaining() != 0) {
    return Status::IOError("trailing bytes after gmdj-round request");
  }
  return req;
}

std::vector<uint8_t> EncodeCatalogResponse(
    const std::vector<CatalogEntry>& entries) {
  std::vector<uint8_t> out;
  PutVarint(&out, entries.size());
  for (const CatalogEntry& entry : entries) {
    WriteString(&out, entry.name);
    WriteSchema(&out, *entry.schema);
  }
  return out;
}

Result<std::vector<CatalogEntry>> DecodeCatalogResponse(
    const std::vector<uint8_t>& payload) {
  ByteReader reader(payload.data(), payload.size());
  SKALLA_ASSIGN_OR_RETURN(uint64_t count, reader.ReadVarint());
  std::vector<CatalogEntry> entries;
  entries.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    CatalogEntry entry;
    SKALLA_ASSIGN_OR_RETURN(entry.name, ReadString(&reader));
    SKALLA_ASSIGN_OR_RETURN(entry.schema, ReadSchema(&reader));
    entries.push_back(std::move(entry));
  }
  if (reader.remaining() != 0) {
    return Status::IOError("trailing bytes after catalog response");
  }
  return entries;
}

std::vector<uint8_t> EncodeHello(int site_id) {
  std::vector<uint8_t> out;
  PutVarint(&out, ZigzagEncode(site_id));
  return out;
}

Result<int> DecodeHello(const std::vector<uint8_t>& payload) {
  ByteReader reader(payload.data(), payload.size());
  SKALLA_ASSIGN_OR_RETURN(uint64_t raw, reader.ReadVarint());
  return static_cast<int>(ZigzagDecode(raw));
}

std::vector<uint8_t> EncodeRoundResult(
    const RoundProfile& profile, const std::vector<uint8_t>* table_bytes) {
  std::vector<uint8_t> out;
  out.push_back(table_bytes != nullptr ? 1 : 0);
  WriteRoundProfile(&out, profile);
  if (table_bytes != nullptr) {
    out.insert(out.end(), table_bytes->begin(), table_bytes->end());
  }
  return out;
}

Result<RoundResult> DecodeRoundResult(const std::vector<uint8_t>& payload) {
  ByteReader reader(payload.data(), payload.size());
  SKALLA_ASSIGN_OR_RETURN(uint8_t flags, ReadFlags(&reader));
  RoundResult result;
  result.has_table = (flags & 1) != 0;
  SKALLA_ASSIGN_OR_RETURN(result.profile, ReadRoundProfile(&reader));
  size_t table_offset = payload.size() - reader.remaining();
  if (result.has_table) {
    result.table_bytes = payload.size() - table_offset;
    SKALLA_ASSIGN_OR_RETURN(
        result.table, ReadTable(payload.data() + table_offset,
                                payload.size() - table_offset));
  } else if (reader.remaining() != 0) {
    return Status::IOError("trailing bytes after round result");
  }
  return result;
}

std::vector<uint8_t> EncodeStatsResult(const StatsResult& stats) {
  std::vector<uint8_t> out;
  PutVarint(&out, ZigzagEncode(stats.site_id));
  WriteString(&out, stats.metrics_json);
  return out;
}

Result<StatsResult> DecodeStatsResult(const std::vector<uint8_t>& payload) {
  ByteReader reader(payload.data(), payload.size());
  StatsResult stats;
  SKALLA_ASSIGN_OR_RETURN(uint64_t raw, reader.ReadVarint());
  stats.site_id = static_cast<int>(ZigzagDecode(raw));
  SKALLA_ASSIGN_OR_RETURN(stats.metrics_json, ReadString(&reader));
  if (reader.remaining() != 0) {
    return Status::IOError("trailing bytes after stats result");
  }
  return stats;
}

}  // namespace rpc
}  // namespace skalla
