// Binary encoding of the query-shaped halves of the rpc protocol:
// expressions, base queries, GMDJ operators, schemas, and statuses. Table
// payloads reuse net/serde (the same bytes the simulated network has
// always shipped); this module covers everything else a site must decode
// to evaluate a round it has never seen.
//
// All encodings are varint/tag based, little-endian, and carry no frame
// header — framing (magic, version, checksum) is rpc/frame.h's job.

#ifndef SKALLA_RPC_PLAN_SERDE_H_
#define SKALLA_RPC_PLAN_SERDE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/eval_context.h"
#include "core/gmdj.h"
#include "expr/expr.h"
#include "net/serde.h"
#include "obs/trace.h"
#include "relalg/operators.h"
#include "storage/table.h"
#include "types/schema.h"

namespace skalla {
namespace rpc {

// --- Primitives ----------------------------------------------------------

void WriteString(std::vector<uint8_t>* out, std::string_view s);
Result<std::string> ReadString(ByteReader* reader);

/// Expression trees (named column references; resolved indices are not
/// shipped — sites Bind against their local schemas). A null ExprPtr
/// encodes as an absence marker and decodes back to nullptr.
void WriteExpr(std::vector<uint8_t>* out, const ExprPtr& expr);
Result<ExprPtr> ReadExpr(ByteReader* reader);

void WriteSchema(std::vector<uint8_t>* out, const Schema& schema);
Result<SchemaPtr> ReadSchema(ByteReader* reader);

/// Status <-> kError payload. Decoding reproduces the original code, so a
/// site-side NotFound surfaces at the coordinator as NotFound — not as a
/// generic transport error. A malformed payload decodes to an IOError
/// (an error either way; the caller just propagates it).
void WriteStatusPayload(std::vector<uint8_t>* out, const Status& status);
Status ReadStatusPayload(const std::vector<uint8_t>& payload);

// --- Plan pieces ---------------------------------------------------------

void WriteBaseQuery(std::vector<uint8_t>* out, const BaseQuery& query);
Result<BaseQuery> ReadBaseQuery(ByteReader* reader);

void WriteGmdjOp(std::vector<uint8_t>* out, const GmdjOp& op);
Result<GmdjOp> ReadGmdjOp(ByteReader* reader);

// --- Tracing / profiling payloads ----------------------------------------

/// Trace context a coordinator propagates with every round request so a
/// site's spans and metrics land in the same distributed trace. All
/// fields zero = untraced (sites skip span capture). Wire format: three
/// varints after deadline_ms in BaseRound/GmdjRound (protocol version 4;
/// always present, zeros when tracing is off).
struct TraceContext {
  uint64_t trace_id = 0;        // Coordinator tracer identity (diagnostic).
  uint64_t parent_span_id = 0;  // Coordinator span the round runs under.
  uint64_t query_id = 0;        // Coordinator query id (tags site telemetry).
};
void WriteTraceContext(std::vector<uint8_t>* out, const TraceContext& ctx);
Result<TraceContext> ReadTraceContext(ByteReader* reader);

/// What one site measured evaluating one round. Travels back to the
/// coordinator inside every kRoundResult payload, self-delimiting so the
/// table payload can follow it.
struct RoundProfile {
  int site_id = 0;
  uint64_t wall_us = 0;     // Round wall time inside the site service.
  uint64_t eval_us = 0;     // Of which: base/GMDJ evaluation proper.
  uint64_t morsel_us = 0;   // Summed per-morsel time (overlaps if parallel).
  uint64_t rows_scanned = 0;
  uint64_t rows_matched = 0;
  uint64_t index_hits = 0;
  uint64_t bytes_in = 0;    // Table payload bytes the request carried.
  uint64_t bytes_out = 0;   // Table payload bytes the response carries.
  uint64_t result_rows = 0;
  uint64_t duplicate_rounds = 0;  // Idempotency-cache replays so far.
  uint64_t chaos_faults = 0;      // Transport faults injected so far.
  /// GMDJ kernels the round's evaluation used (kEngineBitRow /
  /// kEngineBitColumnar OR-ed; zero for base rounds). Wire format:
  /// varint after chaos_faults (protocol version 6).
  uint8_t engines_used = 0;
  /// The site's span subtree for this round (empty when untraced). Span
  /// ids/parents are site-local; the coordinator remaps them on import.
  std::vector<obs::TraceEvent> spans;
};
void WriteRoundProfile(std::vector<uint8_t>* out, const RoundProfile& profile);
Result<RoundProfile> ReadRoundProfile(ByteReader* reader);

// --- Request/response payloads -------------------------------------------

/// kBeginPlan: opens (or resets) one query's round state at the site and
/// applies per-plan knobs. Since protocol version 5 a site holds one
/// such state per in-flight query id, so rounds of different queries may
/// interleave over the same connection.
struct BeginPlanRequest {
  bool columnar_sites = false;
  /// EvalContext::eval_threads for every round of the plan (0 = one
  /// worker per hardware thread of the *site* host). Wire format: varint
  /// after the flags byte (protocol version 2).
  size_t eval_threads = 1;
  /// The query this plan state belongs to; round requests select it via
  /// TraceContext::query_id. 0 = the single anonymous pre-v5 slot. Wire
  /// format: varint after eval_threads (protocol version 5).
  uint64_t query_id = 0;
  /// EvalContext::engine for every GMDJ round of the plan (routing
  /// policy in core/evaluate.h). Wire format: varint after query_id
  /// (protocol version 6).
  EvalEngine engine = EvalEngine::kAuto;
};
std::vector<uint8_t> EncodeBeginPlanRequest(const BeginPlanRequest& req);
Result<BeginPlanRequest> DecodeBeginPlanRequest(
    const std::vector<uint8_t>& payload);

/// kEndPlan: releases the site-side round state of one query (varint
/// query id). Best-effort — sites also cap and evict the state map, so a
/// coordinator that dies mid-query leaks nothing permanently.
std::vector<uint8_t> EncodeEndPlanRequest(uint64_t query_id);
Result<uint64_t> DecodeEndPlanRequest(const std::vector<uint8_t>& payload);

/// kBaseRound: evaluate the base-values query. With ship_result the
/// response is the table (kTableResult); without, the site keeps the
/// result as its carried-over base structure and responds kAck (the
/// Prop. 2 unsynchronized base round — no bytes travel back).
struct BaseRoundRequest {
  BaseQuery query;
  bool ship_result = true;
  /// Round deadline in milliseconds, 0 = none. The site arms a
  /// CancellationToken for the round's evaluation; a fired deadline
  /// surfaces as a kDeadlineExceeded error response. Wire format:
  /// varint after the flags byte (protocol version 3).
  uint64_t deadline_ms = 0;
  /// Distributed trace propagation (protocol version 4).
  TraceContext trace;
};
std::vector<uint8_t> EncodeBaseRoundRequest(const BaseRoundRequest& req);
Result<BaseRoundRequest> DecodeBaseRoundRequest(
    const std::vector<uint8_t>& payload);

/// kGmdjRound: evaluate one GMDJ operator. When has_base, the request
/// tail carries the (coordinator-filtered) base structure, encoded with
/// net/serde exactly as the simulated transports ship it; otherwise the
/// site evaluates against its carried-over local structure (Theorem 5
/// unsynchronized continuation). apply_rng mirrors Prop. 1: the site
/// drops |RNG| = 0 groups before shipping.
struct GmdjRoundRequest {
  GmdjOp op;
  std::string label;  // round label, e.g. "md2" (diagnostics)
  bool sub_aggregates = false;
  bool apply_rng = false;
  bool ship_result = true;
  bool has_base = false;
  /// Round deadline in milliseconds, 0 = none (varint after the flags
  /// byte, protocol version 3). See BaseRoundRequest::deadline_ms.
  uint64_t deadline_ms = 0;
  /// Distributed trace propagation (protocol version 4).
  TraceContext trace;
  Table base;  // meaningful when has_base
  /// Decoder-filled: size of the serialized base table tail in bytes
  /// (0 when !has_base). Lets the site report bytes_in without
  /// re-serializing the table. Not part of the wire format.
  uint64_t base_table_bytes = 0;
};

/// `base_table_bytes` must be WriteTable output (ignored unless
/// req.has_base); the caller serializes the table itself so it can
/// account those exact bytes.
std::vector<uint8_t> EncodeGmdjRoundRequest(
    const GmdjRoundRequest& req, const std::vector<uint8_t>& base_table_bytes);
Result<GmdjRoundRequest> DecodeGmdjRoundRequest(
    const std::vector<uint8_t>& payload);

/// kCatalogResponse: the site's table names and schemas, so the
/// coordinator can run schema inference without local partitions.
struct CatalogEntry {
  std::string name;
  SchemaPtr schema;
};
std::vector<uint8_t> EncodeCatalogResponse(
    const std::vector<CatalogEntry>& entries);
Result<std::vector<CatalogEntry>> DecodeCatalogResponse(
    const std::vector<uint8_t>& payload);

/// kHello: site id handshake.
std::vector<uint8_t> EncodeHello(int site_id);
Result<int> DecodeHello(const std::vector<uint8_t>& payload);

/// kRoundResult: the protocol-v4 response to every base/GMDJ round —
/// a flags byte (bit 0: a table payload follows), the round's
/// RoundProfile, then the raw net/serde table bytes when shipped. The
/// table tail is byte-identical to what a v3 kTableResult carried, so
/// `payload.size() - table offset` preserves the byte-accounting
/// contract (bytes_to_coord counts table payload bytes only).
struct RoundResult {
  RoundProfile profile;
  bool has_table = false;
  Table table;                   // meaningful when has_table
  uint64_t table_bytes = 0;      // decoder-filled size of the table tail
};

/// `table_bytes` must be WriteTable output; pass nullptr for a round
/// that ships no table (kAck-style unsynchronized rounds).
std::vector<uint8_t> EncodeRoundResult(const RoundProfile& profile,
                                       const std::vector<uint8_t>* table_bytes);
Result<RoundResult> DecodeRoundResult(const std::vector<uint8_t>& payload);

/// kStatsResult: one site's metrics snapshot (MetricsRegistry JSON).
struct StatsResult {
  int site_id = 0;
  std::string metrics_json;
};
std::vector<uint8_t> EncodeStatsResult(const StatsResult& stats);
Result<StatsResult> DecodeStatsResult(const std::vector<uint8_t>& payload);

}  // namespace rpc
}  // namespace skalla

#endif  // SKALLA_RPC_PLAN_SERDE_H_
