#include "rpc/rpc_executor.h"

#include <algorithm>
#include <utility>

#include "common/macros.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "dist/coordinator.h"
#include "net/serde.h"
#include "obs/obs.h"
#include "rpc/plan_serde.h"

namespace skalla {
namespace rpc {

namespace {

SiteRoundProfile ToSiteProfile(const RoundProfile& p) {
  SiteRoundProfile sp;
  sp.site_id = p.site_id;
  sp.wall_us = p.wall_us;
  sp.eval_us = p.eval_us;
  sp.morsel_us = p.morsel_us;
  sp.rows_scanned = p.rows_scanned;
  sp.rows_matched = p.rows_matched;
  sp.index_hits = p.index_hits;
  sp.bytes_in = p.bytes_in;
  sp.bytes_out = p.bytes_out;
  sp.result_rows = p.result_rows;
  sp.duplicate_rounds = p.duplicate_rounds;
  sp.chaos_faults = p.chaos_faults;
  sp.engines_used = p.engines_used;
  return sp;
}

}  // namespace

RpcExecutor::RpcExecutor(std::unique_ptr<Transport> transport,
                         ExecutorOptions options)
    : transport_(std::move(transport)), options_(options) {}

void RpcExecutor::AddReplica(size_t partition, size_t endpoint) {
  replica_endpoints_[partition].push_back(endpoint);
}

std::vector<size_t> RpcExecutor::ReplicaEndpoints(size_t i) const {
  std::vector<size_t> endpoints{i};
  auto it = replica_endpoints_.find(i);
  if (it != replica_endpoints_.end()) {
    endpoints.insert(endpoints.end(), it->second.begin(), it->second.end());
  }
  return endpoints;
}

bool RpcExecutor::TolerableLoss(size_t endpoint) const {
  if (endpoint >= num_sites()) return true;  // a replica: only matters
                                             // if failover reaches it
  if (options_.on_site_loss == OnSiteLoss::kDegrade) return true;
  auto it = replica_endpoints_.find(endpoint);
  return it != replica_endpoints_.end() && !it->second.empty();
}

Status RpcExecutor::Connect() {
  // Serialized: concurrent Executes race to be the first dialer; the
  // loser blocks here, then sees the populated state and returns.
  std::lock_guard<std::mutex> connect_lock(connect_mu_);
  const size_t n = transport_->num_sites();
  if (n == 0) return Status::InvalidArgument("transport has no sites");
  if (connections_.empty()) {
    connections_.resize(n);
    connection_mu_.resize(n);
    for (size_t i = 0; i < n; ++i) {
      connection_mu_[i] = std::make_unique<std::mutex>();
      SKALLA_ASSIGN_OR_RETURN(connections_[i], transport_->Connect(i));
    }
  }
  if (!schemas_.empty()) return Status::OK();
  // The catalog request doubles as the liveness probe: it forces the
  // handshake on every connection before the first round. Sites hold
  // partitions of the same relations, so any live site's schemas serve
  // for coordinator-side schema inference. A dead endpoint fails the
  // probe — fatal unless the retry -> failover -> degrade ladder can
  // absorb the loss (TolerableLoss), in which case the round machinery
  // deals with it.
  for (size_t i = 0; i < n; ++i) {
    Result<Frame> probed =
        connections_[i]->Call(MessageType::kCatalogRequest, {});
    if (!probed.ok()) {
      if (!TolerableLoss(i)) return probed.status();
      continue;
    }
    Frame response = std::move(*probed);
    if (response.type == MessageType::kError) {
      return ReadStatusPayload(response.payload);
    }
    if (response.type != MessageType::kCatalogResponse) {
      return Status::IOError("unexpected catalog response type");
    }
    if (schemas_.empty()) {
      SKALLA_ASSIGN_OR_RETURN(std::vector<CatalogEntry> entries,
                              DecodeCatalogResponse(response.payload));
      for (CatalogEntry& entry : entries) {
        schemas_[entry.name] = std::move(entry.schema);
      }
    }
  }
  if (schemas_.empty()) {
    return Status::IOError("no live site answered the catalog probe");
  }
  return Status::OK();
}

Result<SchemaPtr> RpcExecutor::TableSchema(const std::string& name) const {
  auto it = schemas_.find(name);
  if (it == schemas_.end()) {
    return Status::NotFound(StrCat("no site table named '", name, "'"));
  }
  return it->second;
}

uint64_t RpcExecutor::wire_bytes() const {
  uint64_t total = 0;
  for (const std::unique_ptr<Connection>& connection : connections_) {
    if (connection != nullptr) total += connection->wire_bytes();
  }
  return total;
}

Result<Frame> RpcExecutor::CallLocked(size_t i, MessageType type,
                                      const std::vector<uint8_t>& payload,
                                      uint64_t* wire_delta) {
  std::lock_guard<std::mutex> lock(*connection_mu_[i]);
  uint64_t wire_before = connections_[i]->wire_bytes();
  Result<Frame> response = connections_[i]->Call(type, payload);
  if (wire_delta != nullptr) {
    *wire_delta = connections_[i]->wire_bytes() - wire_before;
  }
  return response;
}

Result<Table> RpcExecutor::CallRound(size_t i, MessageType type,
                                     const std::vector<uint8_t>& payload,
                                     RoundCallStats* call_stats) {
  SKALLA_TRACE_SPAN(span, "rpc.round", "rpc");
  SKALLA_SPAN_ATTR(span, "site", static_cast<int64_t>(i));
  Stopwatch timer;
  // Coordinator clock just before the request leaves: remote span
  // timestamps are shifted so the site's earliest event aligns here.
  int64_t send_ts_us = 0;
  SKALLA_OBS_ONLY(send_ts_us = obs::Tracer::Global().NowMicros());
  (void)send_ts_us;
  uint64_t wire_delta = 0;
  Result<Frame> response = CallLocked(i, type, payload, &wire_delta);
  if (call_stats != nullptr) call_stats->wire_bytes = wire_delta;
  SKALLA_HISTOGRAM_RECORD("skalla.rpc.round_us",
                          timer.ElapsedSeconds() * 1e6);
  SKALLA_RETURN_NOT_OK(response.status());
  switch (response->type) {
    case MessageType::kError:
      // Decode the site's own status so its error code survives the
      // wire (a site-side NotFound surfaces as NotFound).
      return ReadStatusPayload(response->payload);
    case MessageType::kAck:
      if (call_stats != nullptr) call_stats->table_bytes = 0;
      return Table();
    case MessageType::kTableResult:
      if (call_stats != nullptr) {
        call_stats->table_bytes = response->payload.size();
      }
      return ReadTable(response->payload.data(), response->payload.size());
    case MessageType::kRoundResult: {
      SKALLA_ASSIGN_OR_RETURN(RoundResult result,
                              DecodeRoundResult(response->payload));
#if defined(SKALLA_TRACING) && SKALLA_TRACING
      if (!result.profile.spans.empty() &&
          obs::Tracer::Global().enabled()) {
        // Graft the site's span subtree under this call's rpc.round
        // span, in its own process lane.
        int64_t min_ts = result.profile.spans.front().ts_us;
        for (const obs::TraceEvent& e : result.profile.spans) {
          min_ts = std::min(min_ts, e.ts_us);
        }
        obs::Tracer::Global().ImportRemoteSpans(
            result.profile.spans, span.id(), send_ts_us - min_ts,
            static_cast<uint32_t>(result.profile.site_id) + 2,
            StrCat("site ", result.profile.site_id));
      }
#endif
      if (call_stats != nullptr) {
        call_stats->table_bytes = result.table_bytes;
        call_stats->has_profile = true;
        call_stats->profile = std::move(result.profile);
      }
      if (!result.has_table) return Table();
      return std::move(result.table);
    }
    default:
      return Status::IOError(
          StrCat("unexpected response type ",
                 static_cast<int>(response->type)));
  }
}

Result<Table> RpcExecutor::Execute(const DistributedPlan& plan,
                                   const QueryRun& run, ExecStats* stats) {
  const size_t total_endpoints = transport_->num_sites();
  const size_t n = num_sites();
  if (n == 0) return Status::InvalidArgument("executor has no sites");
  for (const auto& [partition, endpoints] : replica_endpoints_) {
    if (partition >= n) {
      return Status::InvalidArgument(
          StrCat("replica registered for partition ", partition, " but only ",
                 n, " partitions exist"));
    }
    for (size_t endpoint : endpoints) {
      if (endpoint < n || endpoint >= total_endpoints) {
        return Status::InvalidArgument(
            StrCat("replica endpoint ", endpoint,
                   " must index a transport endpoint in [", n, ", ",
                   total_endpoints, ")"));
      }
    }
  }
  if (!plan.stages.empty() && !plan.stages.back().sync_after) {
    return Status::InvalidArgument(
        "the final plan stage must synchronize at the coordinator");
  }
  if (plan.stages.empty() && !plan.sync_base) {
    return Status::InvalidArgument(
        "a plan without GMDJ stages must synchronize its base query");
  }
  for (const PlanStage& stage : plan.stages) {
    if (!stage.site_base_filters.empty() &&
        stage.site_base_filters.size() != n) {
      return Status::InvalidArgument(
          StrCat("stage has ", stage.site_base_filters.size(),
                 " site filters for ", n, " sites"));
    }
  }
  SKALLA_RETURN_NOT_OK(Connect());

  ExecStats local_stats;
  ExecStats& st = stats == nullptr ? local_stats : *stats;
  st.rounds.clear();

  // Every span, instant, and metric below carries this query's id; the
  // sites inherit it through the TraceContext each round request ships,
  // and key their per-query round state on it (protocol v5).
  const uint64_t query_id = ResolveQueryId(run);
  obs::QueryIdScope query_scope(query_id);
  st.query_id = query_id;
  // Wire accounting accumulates per call rather than diffing the shared
  // connection counters, so concurrent queries don't see each other's
  // traffic.
  uint64_t exec_wire = 0;

  SKALLA_TRACE_SPAN(exec_span, "exec.plan", "executor");
  SKALLA_SPAN_ATTR(exec_span, "sites", static_cast<uint64_t>(n));
  SKALLA_SPAN_ATTR(exec_span, "stages",
                   static_cast<uint64_t>(plan.stages.size()));
  SKALLA_SPAN_ATTR(exec_span, "mode", "rpc");
  SKALLA_COUNTER_ADD("skalla.exec.plans", 1);

  // Reset every site's round state (and forward the columnar knob).
  // Not routed through the retry loop: BeginPlan is not a site round,
  // and it is idempotent anyway.
  BeginPlanRequest begin;
  begin.columnar_sites = options_.columnar_sites;
  begin.eval_threads =
      run.eval_threads > 0 ? run.eval_threads : options_.eval_threads;
  begin.query_id = query_id;
  begin.engine = options_.engine;
  const std::vector<uint8_t> begin_payload = EncodeBeginPlanRequest(begin);
  // An endpoint unreachable at BeginPlan is marked down instead of
  // failing the query — when the retry -> failover -> degrade ladder
  // can absorb the loss. Round attempts at a down endpoint first re-try
  // BeginPlan (the site must not serve this plan with a stale round
  // state), so an endpoint that comes back mid-query rejoins.
  std::vector<Status> endpoint_down(total_endpoints, Status::OK());
  {
    // Broadcast to every endpoint, replicas included: a replica must be
    // in the same per-plan state as its primary to take over a round.
    for (size_t i = 0; i < total_endpoints; ++i) {
      RoundCallStats begin_call;
      Status begun =
          CallRound(i, MessageType::kBeginPlan, begin_payload, &begin_call)
              .status();
      exec_wire += begin_call.wire_bytes;
      if (begun.ok()) continue;
      if (!TolerableLoss(i)) return begun;
      endpoint_down[i] = std::move(begun);
    }
  }
  auto ensure_begun = [&](size_t endpoint) -> Status {
    if (endpoint_down[endpoint].ok()) return Status::OK();
    RoundCallStats begin_call;
    Status begun =
        CallRound(endpoint, MessageType::kBeginPlan, begin_payload,
                  &begin_call)
            .status();
    exec_wire += begin_call.wire_bytes;
    if (begun.ok()) {
      endpoint_down[endpoint] = Status::OK();
      return Status::OK();
    }
    return endpoint_down[endpoint];
  };
  // Best-effort per-query state release at the sites on every exit path
  // (sites also cap and evict, so a lost coordinator leaks nothing).
  // Excluded from this query's wire accounting: it runs after the stats
  // are finalized.
  struct EndPlanSender {
    RpcExecutor* self;
    uint64_t query_id;
    const std::vector<Status>* endpoint_down;
    ~EndPlanSender() {
      const std::vector<uint8_t> payload = EncodeEndPlanRequest(query_id);
      for (size_t i = 0; i < endpoint_down->size(); ++i) {
        if (!(*endpoint_down)[i].ok()) continue;
        (void)self->CallLocked(i, MessageType::kEndPlan, payload, nullptr);
      }
    }
  } end_plan{this, query_id, &endpoint_down};
  (void)end_plan;

  Coordinator coordinator(plan.key_columns,
                          ResolveCoordinatorShards(
                              options_.coordinator_shards));
  bool have_global = false;
  const QueryDeadline deadline(options_, run);
  // Partitions whose every replica is gone; only OnSiteLoss::kDegrade
  // sets these — the query completes over the survivors and the loss is
  // reported in st.lost_sites / RoundStats::sites_lost.
  std::vector<uint8_t> lost(n, 0);
  st.lost_sites.clear();
  // The deadline each round request ships to the sites: the tighter of
  // the per-round deadline and the remaining query budget, 0 = none.
  auto shipped_deadline_ms = [&]() -> uint64_t {
    uint64_t ms = options_.round_deadline_ms;
    int64_t left = deadline.RemainingQueryMs();
    if (left >= 0) {
      uint64_t left_ms = left == 0 ? 1 : static_cast<uint64_t>(left);
      ms = ms == 0 ? left_ms : std::min(ms, left_ms);
    }
    return ms;
  };

  // Schema inference chain, driven from the catalog schemas fetched at
  // Connect (the coordinator holds no partitions of its own).
  SKALLA_ASSIGN_OR_RETURN(SchemaPtr base_schema,
                          TableSchema(plan.base.table));
  SKALLA_ASSIGN_OR_RETURN(SchemaPtr upstream,
                          plan.base.OutputSchema(*base_schema));

  // ---- Base-values stage -------------------------------------------------
  {
    RoundStats rs;
    rs.label = "base";
    rs.synchronized = plan.sync_base;
    SKALLA_TRACE_SPAN(round_span, "round:base", "executor");
    SKALLA_SPAN_ATTR(round_span, "sync", plan.sync_base ? "true" : "false");
    Stopwatch wall;
    CancellationToken round_cancel;
    SKALLA_RETURN_NOT_OK(deadline.ArmRound(rs.label, &round_cancel));

    BaseRoundRequest request;
    request.query = plan.base;
    request.ship_result = plan.sync_base;
    request.deadline_ms = shipped_deadline_ms();
    request.trace.query_id = query_id;
    SKALLA_OBS_ONLY(if (round_span.armed()) {
      request.trace.trace_id = query_id;
      request.trace.parent_span_id = round_span.id();
    });
    std::vector<uint8_t> payload = EncodeBaseRoundRequest(request);

    if (plan.sync_base) SKALLA_RETURN_NOT_OK(coordinator.InitBase(upstream));
    for (size_t i = 0; i < n; ++i) {
      Stopwatch timer;
      SiteRoundCounts counts;
      RoundCallStats call;
      const std::vector<size_t> endpoints = ReplicaEndpoints(i);
      std::vector<int> ids;
      for (size_t endpoint : endpoints) {
        ids.push_back(static_cast<int>(endpoint));
      }
      Result<Table> fragment = ExecuteSiteRoundReplicated(
          options_, ids, rs.label,
          [&](size_t r) -> Result<Table> {
            SKALLA_RETURN_NOT_OK(ensure_begun(endpoints[r]));
            call = RoundCallStats();
            Result<Table> attempt = CallRound(
                endpoints[r], MessageType::kBaseRound, payload, &call);
            rs.wire_bytes += call.wire_bytes;
            exec_wire += call.wire_bytes;
            return attempt;
          },
          &counts, &round_cancel);
      rs.site_retries += counts.retries;
      rs.site_failovers += counts.failovers;
      if (!fragment.ok()) {
        if (options_.on_site_loss != OnSiteLoss::kDegrade ||
            fragment.status().IsDeadlineExceeded()) {
          return fragment.status();
        }
        lost[i] = 1;
        st.lost_sites.push_back(static_cast<int>(i));
        continue;
      }
      double elapsed = timer.ElapsedSeconds();
      rs.site_time_max = std::max(rs.site_time_max, elapsed);
      rs.site_time_sum += elapsed;
      if (call.has_profile) {
        rs.site_profiles.push_back(ToSiteProfile(call.profile));
      }
      if (plan.sync_base) {
        rs.bytes_to_coord += call.table_bytes;
        rs.tuples_to_coord += fragment->num_rows();
        Stopwatch merge_timer;
        SKALLA_RETURN_NOT_OK(coordinator.MergeBaseFragment(*fragment));
        rs.coord_time += merge_timer.ElapsedSeconds();
      }
    }
    if (plan.sync_base) {
      Stopwatch finalize_timer;
      SKALLA_RETURN_NOT_OK(coordinator.FinalizeBase());
      rs.coord_time += finalize_timer.ElapsedSeconds();
      have_global = true;
    }
    for (size_t i = 0; i < n; ++i) rs.sites_lost += lost[i];
    rs.wall_time = wall.ElapsedSeconds();
    SKALLA_COUNTER_ADD("skalla.round.bytes_to_coord", rs.bytes_to_coord);
    SKALLA_COUNTER_ADD("skalla.round.tuples_to_coord", rs.tuples_to_coord);
    st.rounds.push_back(std::move(rs));
  }

  // ---- GMDJ stages ---------------------------------------------------------
  for (size_t k = 0; k < plan.stages.size(); ++k) {
    const PlanStage& stage = plan.stages[k];
    RoundStats rs;
    rs.label = StrCat("md", k + 1);
    rs.synchronized = stage.sync_after;
    SKALLA_TRACE_SPAN(round_span, StrCat("round:", rs.label), "executor");
    SKALLA_SPAN_ATTR(round_span, "sync", stage.sync_after ? "true" : "false");
    Stopwatch wall;
    CancellationToken round_cancel;
    SKALLA_RETURN_NOT_OK(deadline.ArmRound(rs.label, &round_cancel));

    SKALLA_ASSIGN_OR_RETURN(SchemaPtr detail_schema,
                            TableSchema(stage.op.detail_table));

    GmdjRoundRequest request;
    request.op = stage.op;
    request.label = rs.label;
    request.sub_aggregates = stage.sync_after;
    request.apply_rng = stage.sync_after && stage.indep_group_reduction;
    request.ship_result = stage.sync_after;
    request.deadline_ms = shipped_deadline_ms();
    request.trace.query_id = query_id;
    SKALLA_OBS_ONLY(if (round_span.armed()) {
      request.trace.trace_id = query_id;
      request.trace.parent_span_id = round_span.id();
    });

    // Distribution: with a global structure, each site gets its
    // (possibly reduction-filtered) copy inside the round request; a
    // site whose filtered structure is empty sits a synchronized round
    // out entirely, exactly like DistributedExecutor.
    std::vector<uint8_t> active(n, 1);
    std::vector<std::vector<uint8_t>> payloads(n);
    if (have_global) {
      request.has_base = true;
      const Table& x = coordinator.result();
      for (size_t i = 0; i < n; ++i) {
        if (lost[i]) continue;
        const ExprPtr& filter = stage.site_base_filters.empty()
                                    ? nullptr
                                    : stage.site_base_filters[i];
        Table to_send;
        {
          Stopwatch coord_timer;
          if (filter != nullptr) {
            SKALLA_ASSIGN_OR_RETURN(to_send, FilterBaseRows(x, filter));
          } else {
            to_send = x;
          }
          rs.coord_time += coord_timer.ElapsedSeconds();
        }
        if (filter != nullptr && to_send.empty() && stage.sync_after) {
          active[i] = 0;
          ++rs.sites_skipped;
          continue;
        }
        std::vector<uint8_t> base_bytes;
        WriteTable(to_send, &base_bytes);
        rs.bytes_to_sites += base_bytes.size();
        rs.tuples_to_sites += to_send.num_rows();
        payloads[i] = EncodeGmdjRoundRequest(request, base_bytes);
      }
    } else {
      request.has_base = false;
      std::vector<uint8_t> shared = EncodeGmdjRoundRequest(request, {});
      for (size_t i = 0; i < n; ++i) payloads[i] = shared;
    }

    // Site evaluation (and, for synchronized stages, fragment return).
    // A round that carries the base structure in the request is
    // self-contained and may fail over to a replica endpoint; a round
    // consuming the site's carried-over local structure must stay on
    // the primary (the replica process never built that structure).
    std::vector<Table> outputs(n);
    for (size_t i = 0; i < n; ++i) {
      if (!active[i] || lost[i]) continue;
      Stopwatch timer;
      SiteRoundCounts counts;
      RoundCallStats call;
      std::vector<size_t> endpoints =
          request.has_base ? ReplicaEndpoints(i) : std::vector<size_t>{i};
      std::vector<int> ids;
      for (size_t endpoint : endpoints) {
        ids.push_back(static_cast<int>(endpoint));
      }
      Result<Table> fragment = ExecuteSiteRoundReplicated(
          options_, ids, rs.label,
          [&](size_t r) -> Result<Table> {
            SKALLA_RETURN_NOT_OK(ensure_begun(endpoints[r]));
            call = RoundCallStats();
            Result<Table> attempt = CallRound(
                endpoints[r], MessageType::kGmdjRound, payloads[i], &call);
            rs.wire_bytes += call.wire_bytes;
            exec_wire += call.wire_bytes;
            return attempt;
          },
          &counts, &round_cancel);
      rs.site_retries += counts.retries;
      rs.site_failovers += counts.failovers;
      if (!fragment.ok()) {
        if (options_.on_site_loss != OnSiteLoss::kDegrade ||
            fragment.status().IsDeadlineExceeded()) {
          return fragment.status();
        }
        lost[i] = 1;
        st.lost_sites.push_back(static_cast<int>(i));
        continue;
      }
      double elapsed = timer.ElapsedSeconds();
      rs.site_time_max = std::max(rs.site_time_max, elapsed);
      rs.site_time_sum += elapsed;
      if (call.has_profile) {
        st.engines_used |= call.profile.engines_used;
        rs.site_profiles.push_back(ToSiteProfile(call.profile));
      }
      if (stage.sync_after) {
        rs.bytes_to_coord += call.table_bytes;
        rs.tuples_to_coord += fragment->num_rows();
        outputs[i] = std::move(*fragment);
      }
    }

    if (stage.sync_after) {
      Stopwatch begin_timer;
      SKALLA_RETURN_NOT_OK(coordinator.BeginRound(
          stage.op, *upstream, *detail_schema,
          /*from_scratch=*/!have_global));
      rs.coord_time += begin_timer.ElapsedSeconds();
      for (size_t i = 0; i < n; ++i) {
        if (!active[i] || lost[i]) continue;
        Stopwatch merge_timer;
        SKALLA_RETURN_NOT_OK(coordinator.MergeFragment(outputs[i]));
        rs.coord_time += merge_timer.ElapsedSeconds();
        outputs[i] = Table();
      }
      Stopwatch finalize_timer;
      SKALLA_RETURN_NOT_OK(coordinator.FinalizeRound());
      rs.coord_time += finalize_timer.ElapsedSeconds();
      have_global = true;
    } else {
      // Outputs stay at the sites (their carried-over structures).
      have_global = false;
    }

    SKALLA_ASSIGN_OR_RETURN(upstream,
                            stage.op.OutputSchema(*upstream, *detail_schema));
    for (size_t i = 0; i < n; ++i) rs.sites_lost += lost[i];
    rs.wall_time = wall.ElapsedSeconds();
    SKALLA_COUNTER_ADD("skalla.round.bytes_to_sites", rs.bytes_to_sites);
    SKALLA_COUNTER_ADD("skalla.round.bytes_to_coord", rs.bytes_to_coord);
    SKALLA_COUNTER_ADD("skalla.round.tuples_to_sites", rs.tuples_to_sites);
    SKALLA_COUNTER_ADD("skalla.round.tuples_to_coord", rs.tuples_to_coord);
    st.rounds.push_back(std::move(rs));
  }

  if (!have_global) {
    return Status::Internal("plan finished without a global result");
  }
  std::sort(st.lost_sites.begin(), st.lost_sites.end());
  st.total_wire_bytes = exec_wire;
  uint64_t round_wire = 0;
  for (const RoundStats& rs : st.rounds) round_wire += rs.wire_bytes;
  st.setup_wire_bytes = st.total_wire_bytes - round_wire;
  return coordinator.result();
}

Result<StatsResult> RpcExecutor::SiteStats(size_t endpoint) {
  SKALLA_RETURN_NOT_OK(Connect());
  if (endpoint >= connections_.size() || connections_[endpoint] == nullptr) {
    return Status::InvalidArgument(
        StrCat("no connection for endpoint ", endpoint));
  }
  SKALLA_ASSIGN_OR_RETURN(
      Frame response, CallLocked(endpoint, MessageType::kGetStats, {}, nullptr));
  if (response.type == MessageType::kError) {
    return ReadStatusPayload(response.payload);
  }
  if (response.type != MessageType::kStatsResult) {
    return Status::IOError(StrCat("unexpected stats response type ",
                                  static_cast<int>(response.type)));
  }
  return DecodeStatsResult(response.payload);
}

Status RpcExecutor::Shutdown() {
  if (connections_.empty()) {
    std::lock_guard<std::mutex> connect_lock(connect_mu_);
    const size_t n = transport_->num_sites();
    if (connections_.empty()) {
      connections_.resize(n);
      connection_mu_.resize(n);
      for (size_t i = 0; i < n; ++i) {
        connection_mu_[i] = std::make_unique<std::mutex>();
        Result<std::unique_ptr<Connection>> connection =
            transport_->Connect(i);
        if (connection.ok()) connections_[i] = std::move(*connection);
      }
    }
  }
  Status first_error;
  for (size_t i = 0; i < connections_.size(); ++i) {
    if (connections_[i] == nullptr) continue;
    Status s = CallRound(i, MessageType::kShutdown, {}, nullptr).status();
    if (!s.ok() && first_error.ok()) first_error = s;
  }
  return first_error;
}

}  // namespace rpc
}  // namespace skalla
