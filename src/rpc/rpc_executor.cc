#include "rpc/rpc_executor.h"

#include <algorithm>
#include <utility>

#include "common/macros.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "dist/coordinator.h"
#include "net/serde.h"
#include "obs/obs.h"
#include "rpc/plan_serde.h"

namespace skalla {
namespace rpc {

RpcExecutor::RpcExecutor(std::unique_ptr<Transport> transport,
                         ExecutorOptions options)
    : transport_(std::move(transport)), options_(options) {}

Status RpcExecutor::Connect() {
  const size_t n = transport_->num_sites();
  if (n == 0) return Status::InvalidArgument("transport has no sites");
  if (connections_.empty()) {
    connections_.resize(n);
    for (size_t i = 0; i < n; ++i) {
      SKALLA_ASSIGN_OR_RETURN(connections_[i], transport_->Connect(i));
    }
  }
  if (!schemas_.empty()) return Status::OK();
  // The catalog request doubles as the liveness probe: it forces the
  // handshake on every connection before the first round. Sites hold
  // partitions of the same relations, so any site's schemas serve for
  // coordinator-side schema inference; take site 0's.
  for (size_t i = 0; i < n; ++i) {
    SKALLA_ASSIGN_OR_RETURN(Frame response, connections_[i]->Call(
                                                MessageType::kCatalogRequest,
                                                {}));
    if (response.type == MessageType::kError) {
      return ReadStatusPayload(response.payload);
    }
    if (response.type != MessageType::kCatalogResponse) {
      return Status::IOError("unexpected catalog response type");
    }
    if (i == 0) {
      SKALLA_ASSIGN_OR_RETURN(std::vector<CatalogEntry> entries,
                              DecodeCatalogResponse(response.payload));
      for (CatalogEntry& entry : entries) {
        schemas_[entry.name] = std::move(entry.schema);
      }
    }
  }
  return Status::OK();
}

Result<SchemaPtr> RpcExecutor::TableSchema(const std::string& name) const {
  auto it = schemas_.find(name);
  if (it == schemas_.end()) {
    return Status::NotFound(StrCat("no site table named '", name, "'"));
  }
  return it->second;
}

uint64_t RpcExecutor::wire_bytes() const {
  uint64_t total = 0;
  for (const std::unique_ptr<Connection>& connection : connections_) {
    if (connection != nullptr) total += connection->wire_bytes();
  }
  return total;
}

Result<Table> RpcExecutor::CallRound(size_t i, MessageType type,
                                     const std::vector<uint8_t>& payload,
                                     uint64_t* table_payload_bytes) {
  SKALLA_TRACE_SPAN(span, "rpc.round", "rpc");
  SKALLA_SPAN_ATTR(span, "site", static_cast<int64_t>(i));
  Stopwatch timer;
  uint64_t wire_before = connections_[i]->wire_bytes();
  Result<Frame> response = connections_[i]->Call(type, payload);
  SKALLA_COUNTER_ADD("skalla.rpc.bytes",
                     connections_[i]->wire_bytes() - wire_before);
  SKALLA_HISTOGRAM_RECORD("skalla.rpc.round_us",
                          timer.ElapsedSeconds() * 1e6);
  SKALLA_RETURN_NOT_OK(response.status());
  switch (response->type) {
    case MessageType::kError:
      // Decode the site's own status so its error code survives the
      // wire (a site-side NotFound surfaces as NotFound).
      return ReadStatusPayload(response->payload);
    case MessageType::kAck:
      if (table_payload_bytes != nullptr) *table_payload_bytes = 0;
      return Table();
    case MessageType::kTableResult:
      if (table_payload_bytes != nullptr) {
        *table_payload_bytes = response->payload.size();
      }
      return ReadTable(response->payload.data(), response->payload.size());
    default:
      return Status::IOError(
          StrCat("unexpected response type ",
                 static_cast<int>(response->type)));
  }
}

Result<Table> RpcExecutor::Execute(const DistributedPlan& plan,
                                   ExecStats* stats) {
  const size_t n = transport_->num_sites();
  if (n == 0) return Status::InvalidArgument("executor has no sites");
  if (!plan.stages.empty() && !plan.stages.back().sync_after) {
    return Status::InvalidArgument(
        "the final plan stage must synchronize at the coordinator");
  }
  if (plan.stages.empty() && !plan.sync_base) {
    return Status::InvalidArgument(
        "a plan without GMDJ stages must synchronize its base query");
  }
  for (const PlanStage& stage : plan.stages) {
    if (!stage.site_base_filters.empty() &&
        stage.site_base_filters.size() != n) {
      return Status::InvalidArgument(
          StrCat("stage has ", stage.site_base_filters.size(),
                 " site filters for ", n, " sites"));
    }
  }
  SKALLA_RETURN_NOT_OK(Connect());

  ExecStats local_stats;
  ExecStats& st = stats == nullptr ? local_stats : *stats;
  st.rounds.clear();

  SKALLA_TRACE_SPAN(exec_span, "exec.plan", "executor");
  SKALLA_SPAN_ATTR(exec_span, "sites", static_cast<uint64_t>(n));
  SKALLA_SPAN_ATTR(exec_span, "stages",
                   static_cast<uint64_t>(plan.stages.size()));
  SKALLA_SPAN_ATTR(exec_span, "mode", "rpc");
  SKALLA_COUNTER_ADD("skalla.exec.plans", 1);

  // Reset every site's round state (and forward the columnar knob).
  // Not routed through the retry loop: BeginPlan is not a site round,
  // and it is idempotent anyway.
  {
    BeginPlanRequest begin;
    begin.columnar_sites = options_.columnar_sites;
    begin.eval_threads = options_.eval_threads;
    std::vector<uint8_t> payload = EncodeBeginPlanRequest(begin);
    for (size_t i = 0; i < n; ++i) {
      SKALLA_RETURN_NOT_OK(
          CallRound(i, MessageType::kBeginPlan, payload, nullptr).status());
    }
  }

  Coordinator coordinator(plan.key_columns,
                          ResolveCoordinatorShards(
                              options_.coordinator_shards));
  bool have_global = false;

  // Schema inference chain, driven from the catalog schemas fetched at
  // Connect (the coordinator holds no partitions of its own).
  SKALLA_ASSIGN_OR_RETURN(SchemaPtr base_schema,
                          TableSchema(plan.base.table));
  SKALLA_ASSIGN_OR_RETURN(SchemaPtr upstream,
                          plan.base.OutputSchema(*base_schema));

  // ---- Base-values stage -------------------------------------------------
  {
    RoundStats rs;
    rs.label = "base";
    rs.synchronized = plan.sync_base;
    SKALLA_TRACE_SPAN(round_span, "round:base", "executor");
    SKALLA_SPAN_ATTR(round_span, "sync", plan.sync_base ? "true" : "false");
    Stopwatch wall;

    BaseRoundRequest request;
    request.query = plan.base;
    request.ship_result = plan.sync_base;
    std::vector<uint8_t> payload = EncodeBaseRoundRequest(request);

    if (plan.sync_base) SKALLA_RETURN_NOT_OK(coordinator.InitBase(upstream));
    for (size_t i = 0; i < n; ++i) {
      Stopwatch timer;
      size_t retries = 0;
      uint64_t fragment_bytes = 0;
      Result<Table> fragment = ExecuteSiteRound(
          options_, static_cast<int>(i), rs.label,
          [&] {
            return CallRound(i, MessageType::kBaseRound, payload,
                             &fragment_bytes);
          },
          &retries);
      if (!fragment.ok()) return fragment.status();
      double elapsed = timer.ElapsedSeconds();
      rs.site_time_max = std::max(rs.site_time_max, elapsed);
      rs.site_time_sum += elapsed;
      rs.site_retries += retries;
      if (plan.sync_base) {
        rs.bytes_to_coord += fragment_bytes;
        rs.tuples_to_coord += fragment->num_rows();
        Stopwatch merge_timer;
        SKALLA_RETURN_NOT_OK(coordinator.MergeBaseFragment(*fragment));
        rs.coord_time += merge_timer.ElapsedSeconds();
      }
    }
    if (plan.sync_base) {
      Stopwatch finalize_timer;
      SKALLA_RETURN_NOT_OK(coordinator.FinalizeBase());
      rs.coord_time += finalize_timer.ElapsedSeconds();
      have_global = true;
    }
    rs.wall_time = wall.ElapsedSeconds();
    SKALLA_COUNTER_ADD("skalla.round.bytes_to_coord", rs.bytes_to_coord);
    SKALLA_COUNTER_ADD("skalla.round.tuples_to_coord", rs.tuples_to_coord);
    st.rounds.push_back(std::move(rs));
  }

  // ---- GMDJ stages ---------------------------------------------------------
  for (size_t k = 0; k < plan.stages.size(); ++k) {
    const PlanStage& stage = plan.stages[k];
    RoundStats rs;
    rs.label = StrCat("md", k + 1);
    rs.synchronized = stage.sync_after;
    SKALLA_TRACE_SPAN(round_span, StrCat("round:", rs.label), "executor");
    SKALLA_SPAN_ATTR(round_span, "sync", stage.sync_after ? "true" : "false");
    Stopwatch wall;

    SKALLA_ASSIGN_OR_RETURN(SchemaPtr detail_schema,
                            TableSchema(stage.op.detail_table));

    GmdjRoundRequest request;
    request.op = stage.op;
    request.label = rs.label;
    request.sub_aggregates = stage.sync_after;
    request.apply_rng = stage.sync_after && stage.indep_group_reduction;
    request.ship_result = stage.sync_after;

    // Distribution: with a global structure, each site gets its
    // (possibly reduction-filtered) copy inside the round request; a
    // site whose filtered structure is empty sits a synchronized round
    // out entirely, exactly like DistributedExecutor.
    std::vector<uint8_t> active(n, 1);
    std::vector<std::vector<uint8_t>> payloads(n);
    if (have_global) {
      request.has_base = true;
      const Table& x = coordinator.result();
      for (size_t i = 0; i < n; ++i) {
        const ExprPtr& filter = stage.site_base_filters.empty()
                                    ? nullptr
                                    : stage.site_base_filters[i];
        Table to_send;
        {
          Stopwatch coord_timer;
          if (filter != nullptr) {
            SKALLA_ASSIGN_OR_RETURN(to_send, FilterBaseRows(x, filter));
          } else {
            to_send = x;
          }
          rs.coord_time += coord_timer.ElapsedSeconds();
        }
        if (filter != nullptr && to_send.empty() && stage.sync_after) {
          active[i] = 0;
          ++rs.sites_skipped;
          continue;
        }
        std::vector<uint8_t> base_bytes;
        WriteTable(to_send, &base_bytes);
        rs.bytes_to_sites += base_bytes.size();
        rs.tuples_to_sites += to_send.num_rows();
        payloads[i] = EncodeGmdjRoundRequest(request, base_bytes);
      }
    } else {
      request.has_base = false;
      std::vector<uint8_t> shared = EncodeGmdjRoundRequest(request, {});
      for (size_t i = 0; i < n; ++i) payloads[i] = shared;
    }

    // Site evaluation (and, for synchronized stages, fragment return).
    std::vector<Table> outputs(n);
    for (size_t i = 0; i < n; ++i) {
      if (!active[i]) continue;
      Stopwatch timer;
      size_t retries = 0;
      uint64_t fragment_bytes = 0;
      Result<Table> fragment = ExecuteSiteRound(
          options_, static_cast<int>(i), rs.label,
          [&] {
            return CallRound(i, MessageType::kGmdjRound, payloads[i],
                             &fragment_bytes);
          },
          &retries);
      if (!fragment.ok()) return fragment.status();
      double elapsed = timer.ElapsedSeconds();
      rs.site_time_max = std::max(rs.site_time_max, elapsed);
      rs.site_time_sum += elapsed;
      rs.site_retries += retries;
      if (stage.sync_after) {
        rs.bytes_to_coord += fragment_bytes;
        rs.tuples_to_coord += fragment->num_rows();
        outputs[i] = std::move(*fragment);
      }
    }

    if (stage.sync_after) {
      Stopwatch begin_timer;
      SKALLA_RETURN_NOT_OK(coordinator.BeginRound(
          stage.op, *upstream, *detail_schema,
          /*from_scratch=*/!have_global));
      rs.coord_time += begin_timer.ElapsedSeconds();
      for (size_t i = 0; i < n; ++i) {
        if (!active[i]) continue;
        Stopwatch merge_timer;
        SKALLA_RETURN_NOT_OK(coordinator.MergeFragment(outputs[i]));
        rs.coord_time += merge_timer.ElapsedSeconds();
        outputs[i] = Table();
      }
      Stopwatch finalize_timer;
      SKALLA_RETURN_NOT_OK(coordinator.FinalizeRound());
      rs.coord_time += finalize_timer.ElapsedSeconds();
      have_global = true;
    } else {
      // Outputs stay at the sites (their carried-over structures).
      have_global = false;
    }

    SKALLA_ASSIGN_OR_RETURN(upstream,
                            stage.op.OutputSchema(*upstream, *detail_schema));
    rs.wall_time = wall.ElapsedSeconds();
    SKALLA_COUNTER_ADD("skalla.round.bytes_to_sites", rs.bytes_to_sites);
    SKALLA_COUNTER_ADD("skalla.round.bytes_to_coord", rs.bytes_to_coord);
    SKALLA_COUNTER_ADD("skalla.round.tuples_to_sites", rs.tuples_to_sites);
    SKALLA_COUNTER_ADD("skalla.round.tuples_to_coord", rs.tuples_to_coord);
    st.rounds.push_back(std::move(rs));
  }

  if (!have_global) {
    return Status::Internal("plan finished without a global result");
  }
  return coordinator.result();
}

Status RpcExecutor::Shutdown() {
  if (connections_.empty()) {
    const size_t n = transport_->num_sites();
    connections_.resize(n);
    for (size_t i = 0; i < n; ++i) {
      Result<std::unique_ptr<Connection>> connection =
          transport_->Connect(i);
      if (connection.ok()) connections_[i] = std::move(*connection);
    }
  }
  Status first_error;
  for (size_t i = 0; i < connections_.size(); ++i) {
    if (connections_[i] == nullptr) continue;
    Status s = CallRound(i, MessageType::kShutdown, {}, nullptr).status();
    if (!s.ok() && first_error.ok()) first_error = s;
  }
  return first_error;
}

}  // namespace rpc
}  // namespace skalla
