// RpcExecutor: the coordinator side of the distributed runtime when
// sites are real processes. Implements skalla::Executor against a
// Transport (in-process services or TCP-connected skalla-site
// processes), driving the same DistributedPlan round structure as
// DistributedExecutor and filling the same ExecStats contract.
//
// Accounting semantics (docs/RPC.md): bytes_to_sites / bytes_to_coord
// count table payload bytes only, exactly as the simulated engines do,
// so results AND byte counts are identical across transports. Frame
// headers and handshakes land in the skalla.rpc.bytes.sent/.recv
// metrics and in RoundStats::wire_bytes / ExecStats::*_wire_bytes
// instead.
// site_time_* is the measured request round-trip (it includes real
// network time — there is no simulated model to separate it, so
// comm_time stays 0); wall_time is real elapsed time per round.

#ifndef SKALLA_RPC_RPC_EXECUTOR_H_
#define SKALLA_RPC_RPC_EXECUTOR_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "dist/executor.h"
#include "rpc/plan_serde.h"
#include "rpc/transport.h"
#include "types/schema.h"

namespace skalla {
namespace rpc {

/// What one CallRound observed: the accounted table payload bytes, the
/// framed wire bytes the call moved (all attempts' frames, headers and
/// CRCs included), and the site's RoundProfile when the response was a
/// kRoundResult.
struct RoundCallStats {
  uint64_t table_bytes = 0;
  uint64_t wire_bytes = 0;
  bool has_profile = false;
  RoundProfile profile;
};

class RpcExecutor : public Executor {
 public:
  /// `options` maps as documented in docs/RPC.md: fault_injector and
  /// max_site_retries drive the retry loop (with the TCP transport, a
  /// retry reconnects with backoff); columnar_sites is forwarded to the
  /// sites via kBeginPlan; ship_block_rows is ignored (fragments ship
  /// whole, like AsyncExecutor); parallel_sites/num_threads are ignored
  /// (rounds are driven sequentially per site); coordinator_shards works
  /// unchanged.
  RpcExecutor(std::unique_ptr<Transport> transport, ExecutorOptions options);

  /// Dials every site (TCP: kHello handshake) and fetches the catalog
  /// schemas the coordinator needs for schema inference. Idempotent and
  /// thread-safe; Execute calls it on demand.
  Status Connect();

  /// Thread-safe: concurrent Executes with distinct runs multiplex their
  /// round frames over the shared connections (each request/response
  /// pair holds its connection's lock — frame-granularity interleaving),
  /// tagged with the run's query id so v5 sites keep the queries' round
  /// states apart.
  using Executor::Execute;
  Result<Table> Execute(const DistributedPlan& plan, const QueryRun& run,
                        ExecStats* stats) override;

  /// Declares transport endpoint `endpoint` (an index into the
  /// transport's sites, >= num_sites()) to be a replica of partition
  /// `partition`: a separate site process holding the same partition
  /// data. Rounds fail over to replicas in registration order when the
  /// primary endpoint exhausts its retries. Failover is limited to
  /// self-contained rounds (base rounds, and GMDJ rounds that carry the
  /// base structure in the request) — a round that consumes a site's
  /// carried-over local structure cannot move to a process that never
  /// saw the prior rounds.
  void AddReplica(size_t partition, size_t endpoint);

  const char* name() const override { return "rpc"; }

  /// Number of partitions (primary endpoints); replica endpoints are
  /// not counted.
  size_t num_sites() const override {
    size_t replicas = 0;
    for (const auto& [partition, endpoints] : replica_endpoints_) {
      (void)partition;
      replicas += endpoints.size();
    }
    return transport_->num_sites() - replicas;
  }

  /// Asks every site process to exit (kShutdown). Best effort: returns
  /// the first error but keeps notifying the remaining sites.
  Status Shutdown();

  /// Total wire bytes (frame headers included) over all connections.
  uint64_t wire_bytes() const;

  /// Schema of a site-resident table, once connected.
  Result<SchemaPtr> TableSchema(const std::string& name) const;

  /// Pulls one endpoint's metrics snapshot (kGetStats): the site
  /// process's MetricsRegistry as JSON, plus its site id.
  Result<StatsResult> SiteStats(size_t endpoint);

 private:
  /// One request/response against site `i`, translating the response:
  /// kRoundResult decodes to the table plus the site's RoundProfile
  /// (remote spans are merged into the coordinator tracer, parented
  /// under this call's rpc.round span); kTableResult / kAck are the
  /// pre-v4 shapes; kError decodes back to the site's original Status.
  /// `call_stats` (may be nullptr) receives per-call accounting even
  /// when the call fails.
  Result<Table> CallRound(size_t i, MessageType type,
                          const std::vector<uint8_t>& payload,
                          RoundCallStats* call_stats);

  /// One Call against endpoint `i` under its connection lock; the wire
  /// delta the call moved lands in *wire_delta (exact even when other
  /// queries share the connection, because the lock spans the
  /// measurement). The lock also means a whole frame exchange is atomic
  /// per connection — requests of different queries interleave between
  /// calls, never inside one.
  Result<Frame> CallLocked(size_t i, MessageType type,
                           const std::vector<uint8_t>& payload,
                           uint64_t* wire_delta);

  // Endpoint indices of partition i's evaluation chain: primary, then
  // replicas in registration order.
  std::vector<size_t> ReplicaEndpoints(size_t i) const;

  // Whether losing `endpoint` entirely (unreachable at connect or
  // BeginPlan) can be absorbed by the retry -> failover -> degrade
  // ladder instead of failing the query up front: true for replica
  // endpoints, under kDegrade, and for primaries that have replicas.
  bool TolerableLoss(size_t endpoint) const;

  std::unique_ptr<Transport> transport_;
  ExecutorOptions options_;
  std::vector<std::unique_ptr<Connection>> connections_;
  // One lock per connection: Connection::Call is single-caller by
  // contract, so every exchange (and its wire-byte measurement) runs
  // under the matching lock. unique_ptr keeps the vector movable.
  std::vector<std::unique_ptr<std::mutex>> connection_mu_;
  std::mutex connect_mu_;  // guards lazy init of connections_/schemas_
  std::map<size_t, std::vector<size_t>> replica_endpoints_;
  std::map<std::string, SchemaPtr> schemas_;
};

}  // namespace rpc
}  // namespace skalla

#endif  // SKALLA_RPC_RPC_EXECUTOR_H_
