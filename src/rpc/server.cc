#include "rpc/server.h"

#include <poll.h>

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/macros.h"
#include "obs/obs.h"

namespace skalla {
namespace rpc {

namespace {

// splitmix64 finalizer: decisions depend only on (seed, request index),
// never on timing, so a chaos schedule replays exactly from its seed.
double ChaosUnit(uint64_t seed, uint64_t index) {
  uint64_t h = seed + 0x9E3779B97F4A7C15ull * (index + 1);
  h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ull;
  h = (h ^ (h >> 27)) * 0x94D049BB133111EBull;
  h ^= h >> 31;
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

enum class ChaosFault { kNone, kDropResponse, kCorruptCrc, kResetMidFrame,
                        kDelay };

ChaosFault PickChaosFault(const SiteServerOptions::TransportChaos& chaos,
                          uint64_t index) {
  const double u = ChaosUnit(chaos.seed, index);
  double edge = chaos.drop_response_prob;
  if (u < edge) return ChaosFault::kDropResponse;
  edge += chaos.corrupt_crc_prob;
  if (u < edge) return ChaosFault::kCorruptCrc;
  edge += chaos.reset_midframe_prob;
  if (u < edge) return ChaosFault::kResetMidFrame;
  edge += chaos.delay_prob;
  if (u < edge) return ChaosFault::kDelay;
  return ChaosFault::kNone;
}

}  // namespace

Status SiteServer::Start() {
  SKALLA_ASSIGN_OR_RETURN(listener_,
                          TcpListener::Bind(options_.host, options_.port));
  return Status::OK();
}

Status SiteServer::Serve() {
  if (!listener_.valid()) SKALLA_RETURN_NOT_OK(Start());
  while (!stop_.load()) {
    SKALLA_ASSIGN_OR_RETURN(std::optional<TcpSocket> accepted,
                            listener_.Accept(options_.accept_timeout_s));
    if (!accepted.has_value()) continue;  // poll the stop flag
    SKALLA_COUNTER_ADD("skalla.rpc.server.connections", 1);
    // Per-connection errors (peer vanished, garbled frame) end the
    // connection, not the server; the coordinator reconnects.
    Status connection_status = ServeConnection(&*accepted);
    (void)connection_status;
    if (service_->shutdown_requested()) stop_.store(true);
  }
  return Status::OK();
}

Status SiteServer::ServeConnection(TcpSocket* connection) {
  while (!stop_.load()) {
    // Idle-wait for the next request in small slices so Stop() and
    // shutdown are noticed; only a started frame is held to io_timeout.
    struct pollfd pfd;
    pfd.fd = connection->fd();
    pfd.events = POLLIN;
    int rc = ::poll(&pfd, 1,
                    static_cast<int>(options_.accept_timeout_s * 1e3));
    if (rc == 0) continue;
    if (rc < 0) return Status::IOError("poll on connection failed");

    Result<Frame> received =
        RecvFrame(connection, options_.io_timeout_s, nullptr);
    if (!received.ok()) {
      // A frame from a foreign protocol version gets the typed status
      // back before the hangup, so a mixed deployment fails loudly with
      // kVersionMismatch instead of a silent dropped connection. (The
      // header parsed fine; only the payload is unread, and we drop the
      // connection right after, so the stream never desyncs.)
      if (received.status().IsVersionMismatch()) {
        Frame error = ErrorFrame(received.status());
        (void)SendFrame(connection, error.type, error.payload,
                        options_.io_timeout_s, nullptr);
      }
      return received.status();
    }
    Frame request = std::move(*received);
    int request_index = -1;
    if (request.type != MessageType::kHello) {
      request_index = requests_seen_++;
      if (request_index == options_.drop_request_index) {
        // Injected mid-round failure: hang up without answering. The
        // request was NOT handled, so the coordinator's retry re-runs
        // the round from the site's intact state.
        connection->Close();
        return Status::OK();
      }
    }
    Result<Frame> response = service_->Handle(request);
    if (!response.ok()) {
      // Malformed request: report it, then drop the connection (the
      // stream may be out of sync).
      Frame error = ErrorFrame(response.status());
      (void)SendFrame(connection, error.type, error.payload,
                      options_.io_timeout_s, nullptr);
      return response.status();
    }
    // Seeded transport chaos, round requests only: the request was
    // handled, the response gets lost or mangled in flight. Never two
    // in a row, so the coordinator's reconnect-and-retry recovers.
    const bool round_request = request.type == MessageType::kBaseRound ||
                               request.type == MessageType::kGmdjRound;
    if (round_request && options_.chaos.seed != 0) {
      ChaosFault fault =
          chaos_last_faulted_
              ? ChaosFault::kNone
              : PickChaosFault(options_.chaos,
                               static_cast<uint64_t>(request_index));
      chaos_last_faulted_ = fault != ChaosFault::kNone &&
                            fault != ChaosFault::kDelay;
      switch (fault) {
        case ChaosFault::kNone:
          break;
        case ChaosFault::kDropResponse:
          chaos_faults_.fetch_add(1);
          SKALLA_COUNTER_ADD("skalla.rpc.server.chaos_faults", 1);
          connection->Close();
          return Status::OK();
        case ChaosFault::kCorruptCrc: {
          chaos_faults_.fetch_add(1);
          SKALLA_COUNTER_ADD("skalla.rpc.server.chaos_faults", 1);
          std::vector<uint8_t> wire =
              EncodeFrame(response->type, response->payload);
          wire[12] ^= 0xFF;  // one CRC byte; the receiver must reject
          (void)connection->SendAll(wire.data(), wire.size(),
                                    options_.io_timeout_s);
          connection->Close();
          return Status::OK();
        }
        case ChaosFault::kResetMidFrame: {
          chaos_faults_.fetch_add(1);
          SKALLA_COUNTER_ADD("skalla.rpc.server.chaos_faults", 1);
          std::vector<uint8_t> wire =
              EncodeFrame(response->type, response->payload);
          size_t partial = std::min<size_t>(8, wire.size());
          (void)connection->SendAll(wire.data(), partial,
                                    options_.io_timeout_s);
          connection->Close();
          return Status::OK();
        }
        case ChaosFault::kDelay:
          chaos_faults_.fetch_add(1);
          SKALLA_COUNTER_ADD("skalla.rpc.server.chaos_faults", 1);
          std::this_thread::sleep_for(
              std::chrono::milliseconds(options_.chaos.delay_ms));
          break;
      }
    } else if (round_request) {
      chaos_last_faulted_ = false;
    }
    SKALLA_RETURN_NOT_OK(SendFrame(connection, response->type,
                                   response->payload, options_.io_timeout_s,
                                   nullptr));
    if (service_->shutdown_requested()) return Status::OK();
  }
  return Status::OK();
}

}  // namespace rpc
}  // namespace skalla
