#include "rpc/server.h"

#include <poll.h>

#include "common/macros.h"
#include "obs/obs.h"

namespace skalla {
namespace rpc {

Status SiteServer::Start() {
  SKALLA_ASSIGN_OR_RETURN(listener_,
                          TcpListener::Bind(options_.host, options_.port));
  return Status::OK();
}

Status SiteServer::Serve() {
  if (!listener_.valid()) SKALLA_RETURN_NOT_OK(Start());
  while (!stop_.load()) {
    SKALLA_ASSIGN_OR_RETURN(std::optional<TcpSocket> accepted,
                            listener_.Accept(options_.accept_timeout_s));
    if (!accepted.has_value()) continue;  // poll the stop flag
    SKALLA_COUNTER_ADD("skalla.rpc.server.connections", 1);
    // Per-connection errors (peer vanished, garbled frame) end the
    // connection, not the server; the coordinator reconnects.
    Status connection_status = ServeConnection(&*accepted);
    (void)connection_status;
    if (service_->shutdown_requested()) stop_.store(true);
  }
  return Status::OK();
}

Status SiteServer::ServeConnection(TcpSocket* connection) {
  while (!stop_.load()) {
    // Idle-wait for the next request in small slices so Stop() and
    // shutdown are noticed; only a started frame is held to io_timeout.
    struct pollfd pfd;
    pfd.fd = connection->fd();
    pfd.events = POLLIN;
    int rc = ::poll(&pfd, 1,
                    static_cast<int>(options_.accept_timeout_s * 1e3));
    if (rc == 0) continue;
    if (rc < 0) return Status::IOError("poll on connection failed");

    Result<Frame> received =
        RecvFrame(connection, options_.io_timeout_s, nullptr);
    if (!received.ok()) {
      // A frame from a foreign protocol version gets the typed status
      // back before the hangup, so a mixed deployment fails loudly with
      // kVersionMismatch instead of a silent dropped connection. (The
      // header parsed fine; only the payload is unread, and we drop the
      // connection right after, so the stream never desyncs.)
      if (received.status().IsVersionMismatch()) {
        Frame error = ErrorFrame(received.status());
        (void)SendFrame(connection, error.type, error.payload,
                        options_.io_timeout_s, nullptr);
      }
      return received.status();
    }
    Frame request = std::move(*received);
    if (request.type != MessageType::kHello) {
      int index = requests_seen_++;
      if (index == options_.drop_request_index) {
        // Injected mid-round failure: hang up without answering. The
        // request was NOT handled, so the coordinator's retry re-runs
        // the round from the site's intact state.
        connection->Close();
        return Status::OK();
      }
    }
    Result<Frame> response = service_->Handle(request);
    if (!response.ok()) {
      // Malformed request: report it, then drop the connection (the
      // stream may be out of sync).
      Frame error = ErrorFrame(response.status());
      (void)SendFrame(connection, error.type, error.payload,
                      options_.io_timeout_s, nullptr);
      return response.status();
    }
    SKALLA_RETURN_NOT_OK(SendFrame(connection, response->type,
                                   response->payload, options_.io_timeout_s,
                                   nullptr));
    if (service_->shutdown_requested()) return Status::OK();
  }
  return Status::OK();
}

}  // namespace rpc
}  // namespace skalla
