// SiteServer: the accept/serve loop of a skalla-site process. Owns a
// TcpListener, accepts one coordinator connection at a time, and feeds
// received frames to a SiteService. A dropped connection does not lose
// site state — the service (and its carried-over round structures)
// outlives connections, which is what makes coordinator-side
// reconnect-and-retry recovery work.

#ifndef SKALLA_RPC_SERVER_H_
#define SKALLA_RPC_SERVER_H_

#include <atomic>
#include <string>

#include "common/result.h"
#include "rpc/site_service.h"
#include "rpc/tcp.h"

namespace skalla {
namespace rpc {

struct SiteServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral; read the bound port back with port().
  int port = 0;
  /// Accept poll granularity — how quickly Stop() is noticed.
  double accept_timeout_s = 0.2;
  /// Per-frame receive/send timeout once a connection is up. Idle waits
  /// for the next request poll in accept_timeout_s slices, so a quiet
  /// coordinator does not trip this.
  double io_timeout_s = 30.0;
  /// Fault hook for tests: when >= 0, the server closes the connection
  /// instead of answering the Nth request it receives (counted across
  /// connections, handshakes excluded, one-shot). Simulates a site
  /// falling over mid-round.
  int drop_request_index = -1;
};

class SiteServer {
 public:
  SiteServer(SiteService* service, SiteServerOptions options)
      : service_(service), options_(options) {}

  /// Binds the listener; port() is valid afterwards.
  Status Start();

  int port() const { return listener_.port(); }

  /// Serves until a kShutdown request is acknowledged or Stop() is
  /// called. Returns non-OK only for listener-level failures; per
  /// connection errors just drop the connection.
  Status Serve();

  /// Asks Serve to return; callable from another thread.
  void Stop() { stop_.store(true); }

 private:
  Status ServeConnection(TcpSocket* connection);

  SiteService* service_;
  SiteServerOptions options_;
  TcpListener listener_;
  std::atomic<bool> stop_{false};
  int requests_seen_ = 0;
};

}  // namespace rpc
}  // namespace skalla

#endif  // SKALLA_RPC_SERVER_H_
