// SiteServer: the accept/serve loop of a skalla-site process. Owns a
// TcpListener, accepts one coordinator connection at a time, and feeds
// received frames to a SiteService. A dropped connection does not lose
// site state — the service (and its carried-over round structures)
// outlives connections, which is what makes coordinator-side
// reconnect-and-retry recovery work.

#ifndef SKALLA_RPC_SERVER_H_
#define SKALLA_RPC_SERVER_H_

#include <atomic>
#include <string>

#include "common/result.h"
#include "rpc/site_service.h"
#include "rpc/tcp.h"

namespace skalla {
namespace rpc {

struct SiteServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral; read the bound port back with port().
  int port = 0;
  /// Accept poll granularity — how quickly Stop() is noticed.
  double accept_timeout_s = 0.2;
  /// Per-frame receive/send timeout once a connection is up. Idle waits
  /// for the next request poll in accept_timeout_s slices, so a quiet
  /// coordinator does not trip this.
  double io_timeout_s = 30.0;
  /// Fault hook for tests: when >= 0, the server closes the connection
  /// instead of answering the Nth request it receives (counted across
  /// connections, handshakes excluded, one-shot). Simulates a site
  /// falling over mid-round.
  int drop_request_index = -1;
  /// Seeded transport-level chaos (docs/FAULTS.md). Applied only to
  /// round requests (kBaseRound / kGmdjRound), after the request has
  /// been handled — the site's state advances, the coordinator's
  /// response is lost or mangled, and its retry path must recover.
  /// Decisions are a pure function of (seed, request index), so a given
  /// seed replays the same fault schedule; two consecutive requests are
  /// never both faulted, so any retry budget >= 1 makes progress.
  struct TransportChaos {
    uint64_t seed = 0;  // 0 = chaos disabled
    double drop_response_prob = 0.0;   // close without answering
    double corrupt_crc_prob = 0.0;     // flip a CRC byte, send, close
    double reset_midframe_prob = 0.0;  // send 8 bytes of the frame, close
    double delay_prob = 0.0;           // sleep delay_ms, then answer
    uint64_t delay_ms = 5;
  };
  TransportChaos chaos;
};

class SiteServer {
 public:
  SiteServer(SiteService* service, SiteServerOptions options)
      : service_(service), options_(options) {}

  /// Binds the listener; port() is valid afterwards.
  Status Start();

  int port() const { return listener_.port(); }

  /// Serves until a kShutdown request is acknowledged or Stop() is
  /// called. Returns non-OK only for listener-level failures; per
  /// connection errors just drop the connection.
  Status Serve();

  /// Asks Serve to return; callable from another thread.
  void Stop() { stop_.store(true); }

  /// Transport faults injected so far (for chaos-test assertions).
  int chaos_faults_injected() const { return chaos_faults_.load(); }

  /// The live fault counter, for wiring into
  /// SiteService::set_chaos_faults_counter so RoundProfiles report it.
  const std::atomic<int>* chaos_faults_counter() const {
    return &chaos_faults_;
  }

 private:
  Status ServeConnection(TcpSocket* connection);

  SiteService* service_;
  SiteServerOptions options_;
  TcpListener listener_;
  std::atomic<bool> stop_{false};
  int requests_seen_ = 0;
  bool chaos_last_faulted_ = false;
  std::atomic<int> chaos_faults_{0};
};

}  // namespace rpc
}  // namespace skalla

#endif  // SKALLA_RPC_SERVER_H_
