#include "rpc/site_service.h"

#include "common/macros.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/eval_context.h"
#include "dist/executor.h"
#include "net/serde.h"
#include "obs/obs.h"
#include "rpc/plan_serde.h"

namespace skalla {
namespace rpc {

Frame ErrorFrame(const Status& status) {
  Frame frame;
  frame.type = MessageType::kError;
  WriteStatusPayload(&frame.payload, status);
  return frame;
}

namespace {

Frame AckFrame() {
  Frame frame;
  frame.type = MessageType::kAck;
  return frame;
}

/// Captures the site-side span subtree recorded while one round runs:
/// take a commit watermark up front, drain everything committed after
/// it once the round's spans have ended. When the request is traced but
/// this process isn't exporting a trace of its own, the tracer is
/// enabled just for the capture window and drained afterwards so the
/// per-thread buffers don't grow without bound across rounds.
class RoundTraceCapture {
 public:
  explicit RoundTraceCapture(bool traced) : traced_(traced) {
    obs::Tracer& tracer = obs::Tracer::Global();
    if (traced_ && !tracer.enabled()) {
      owned_ = true;
      tracer.set_enabled(true);
    }
    mark_ = tracer.CommitMark();
  }

  ~RoundTraceCapture() {
    if (owned_) {
      obs::Tracer& tracer = obs::Tracer::Global();
      tracer.Clear();
      tracer.set_enabled(false);
    }
  }

  std::vector<obs::TraceEvent> Drain() const {
    if (!traced_) return {};
    return obs::Tracer::Global().SnapshotSince(mark_);
  }

 private:
  bool traced_;
  bool owned_ = false;
  uint64_t mark_ = 0;
};

/// Builds the kRoundResult response. Fills the profile's bytes_out /
/// result_rows from the serialized table so the coordinator's
/// byte-accounting reconciles exactly.
Frame RoundResultFrame(RoundProfile* profile, const Table* table) {
  Frame frame;
  frame.type = MessageType::kRoundResult;
  if (table != nullptr) {
    std::vector<uint8_t> table_bytes;
    WriteTable(*table, &table_bytes);
    profile->bytes_out = table_bytes.size();
    profile->result_rows = table->num_rows();
    frame.payload = EncodeRoundResult(*profile, &table_bytes);
  } else {
    frame.payload = EncodeRoundResult(*profile, nullptr);
  }
  return frame;
}

}  // namespace

size_t SiteService::open_plans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return plans_.size();
}

SiteService::PlanState& SiteService::PlanFor(uint64_t query_id) {
  auto it = plans_.find(query_id);
  if (it != plans_.end()) return it->second;
  if (plans_.size() >= kMaxOpenPlans && !plan_order_.empty()) {
    plans_.erase(plan_order_.front());
    plan_order_.pop_front();
  }
  plan_order_.push_back(query_id);
  return plans_[query_id];
}

Result<Frame> SiteService::Handle(const Frame& request) {
  // One round at a time per site: concurrent coordinator threads (the
  // in-process transport under a scheduler) queue here, which is exactly
  // the per-site round queue the serving layer relies on.
  std::lock_guard<std::mutex> lock(mu_);
  SKALLA_TRACE_SPAN(span, "rpc.handle", "rpc");
  SKALLA_SPAN_ATTR(span, "type",
                   static_cast<int64_t>(static_cast<uint8_t>(request.type)));
  switch (request.type) {
    case MessageType::kHello: {
      SKALLA_RETURN_NOT_OK(DecodeHello(request.payload).status());
      Frame frame;
      frame.type = MessageType::kHello;
      frame.payload = EncodeHello(site_.id());
      return frame;
    }
    case MessageType::kCatalogRequest: {
      std::vector<CatalogEntry> entries;
      for (const std::string& name : site_.catalog().TableNames()) {
        SKALLA_ASSIGN_OR_RETURN(const DataProvider* table,
                                site_.catalog().GetProvider(name));
        entries.push_back(CatalogEntry{name, table->schema()});
      }
      Frame frame;
      frame.type = MessageType::kCatalogResponse;
      frame.payload = EncodeCatalogResponse(entries);
      return frame;
    }
    case MessageType::kBeginPlan:
      return HandleBeginPlan(request);
    case MessageType::kEndPlan:
      return HandleEndPlan(request);
    case MessageType::kBaseRound:
      return HandleBaseRound(request);
    case MessageType::kGmdjRound:
      return HandleGmdjRound(request);
    case MessageType::kGetStats: {
      Frame frame;
      frame.type = MessageType::kStatsResult;
      StatsResult stats;
      stats.site_id = site_.id();
      stats.metrics_json = obs::MetricsRegistry::Global().ToJson();
      frame.payload = EncodeStatsResult(stats);
      return frame;
    }
    case MessageType::kShutdown:
      shutdown_ = true;
      return AckFrame();
    default:
      return ErrorFrame(Status::InvalidArgument(
          StrCat("site cannot serve message type ",
                 static_cast<int>(request.type))));
  }
}

Result<Frame> SiteService::HandleBeginPlan(const Frame& request) {
  SKALLA_ASSIGN_OR_RETURN(BeginPlanRequest req,
                          DecodeBeginPlanRequest(request.payload));
  PlanState& plan = PlanFor(req.query_id);
  plan.local_base = Table();
  plan.last_round.clear();
  plan.last_input = Table();
  plan.eval_threads = req.eval_threads;
  plan.engine = req.engine;
  if (req.columnar_sites && !site_.columnar_enabled()) {
    Status built = site_.EnableColumnarCache();
    if (!built.ok()) return ErrorFrame(built);
  }
  return AckFrame();
}

Result<Frame> SiteService::HandleEndPlan(const Frame& request) {
  SKALLA_ASSIGN_OR_RETURN(uint64_t query_id,
                          DecodeEndPlanRequest(request.payload));
  plans_.erase(query_id);
  for (auto it = plan_order_.begin(); it != plan_order_.end(); ++it) {
    if (*it == query_id) {
      plan_order_.erase(it);
      break;
    }
  }
  return AckFrame();
}

Result<Frame> SiteService::HandleBaseRound(const Frame& request) {
  SKALLA_ASSIGN_OR_RETURN(BaseRoundRequest req,
                          DecodeBaseRoundRequest(request.payload));
  PlanState& plan = PlanFor(req.trace.query_id);
  Stopwatch wall;
  const bool traced =
      req.trace.parent_span_id != 0 || req.trace.trace_id != 0;
  RoundTraceCapture capture(traced);
  obs::QueryIdScope query_scope(req.trace.query_id);
  RoundProfile profile;
  profile.site_id = site_.id();
  // The coordinator ships the remaining round budget; a fired deadline
  // surfaces as a typed kDeadlineExceeded error response. Base queries
  // poll between pipeline steps rather than per-morsel, so the token
  // mainly guards the (cheap) setup; evaluation itself is short.
  CancellationToken cancel;
  if (req.deadline_ms > 0) {
    cancel.ArmDeadline(req.deadline_ms, StrCat("site ", site_.id(), " base"));
  }
  Status armed = cancel.Check();
  if (!armed.ok()) return ErrorFrame(armed);
  // Recomputing from the durable local partition makes retries of this
  // round naturally idempotent.
  Result<Table> base = Status::Internal("unset");
  {
    obs::Span round_span =
        traced ? obs::Tracer::Global().StartSpan("site.round:base", "site")
               : obs::Span();
    if (round_span.armed()) {
      round_span.AddAttr("site", static_cast<int64_t>(site_.id()));
    }
    Stopwatch eval_watch;
    base = site_.ExecuteBaseQuery(req.query);
    profile.eval_us = static_cast<uint64_t>(eval_watch.ElapsedMicros());
  }
  if (base.ok()) {
    Status after = cancel.Check();
    if (!after.ok()) return ErrorFrame(after);
  }
  if (!base.ok()) return ErrorFrame(base.status());
  profile.duplicate_rounds = duplicate_rounds_;
  profile.chaos_faults =
      chaos_faults_ == nullptr
          ? 0
          : static_cast<uint64_t>(chaos_faults_->load(std::memory_order_relaxed));
  profile.result_rows = base->num_rows();
  if (req.ship_result) {
    profile.wall_us = static_cast<uint64_t>(wall.ElapsedMicros());
    profile.spans = capture.Drain();
    return RoundResultFrame(&profile, &*base);
  }
  plan.local_base = std::move(*base);
  plan.last_round.clear();
  plan.last_input = Table();
  profile.wall_us = static_cast<uint64_t>(wall.ElapsedMicros());
  profile.spans = capture.Drain();
  return RoundResultFrame(&profile, nullptr);
}

Result<Frame> SiteService::HandleGmdjRound(const Frame& request) {
  SKALLA_ASSIGN_OR_RETURN(GmdjRoundRequest req,
                          DecodeGmdjRoundRequest(request.payload));
  PlanState& plan = PlanFor(req.trace.query_id);
  Stopwatch wall;
  const bool traced =
      req.trace.parent_span_id != 0 || req.trace.trace_id != 0;
  RoundTraceCapture capture(traced);
  obs::QueryIdScope query_scope(req.trace.query_id);
  RoundProfile profile;
  profile.site_id = site_.id();
  profile.bytes_in = req.base_table_bytes;

  Table input;
  if (req.has_base) {
    input = std::move(req.base);
  } else if (!req.label.empty() && req.label == plan.last_round) {
    // A coordinator retry of the round that already consumed the carried
    // structure: re-evaluate from the saved input, do not double-apply.
    ++duplicate_rounds_;
    input = plan.last_input;
  } else {
    input = std::move(plan.local_base);
  }

  // Arm the coordinator-shipped round deadline; the morsel loops poll
  // the token, so an expired deadline stops evaluation within one
  // morsel's worth of work and surfaces as kDeadlineExceeded.
  CancellationToken cancel;
  if (req.deadline_ms > 0) {
    cancel.ArmDeadline(req.deadline_ms,
                       StrCat("site ", site_.id(), " ", req.label));
  }
  EvalProfile eval_profile;
  EvalContext eval_context;
  eval_context.sub_aggregates = req.sub_aggregates;
  eval_context.compute_rng = req.apply_rng;
  eval_context.eval_threads = plan.eval_threads;
  eval_context.engine = plan.engine;
  eval_context.cancellation = req.deadline_ms > 0 ? &cancel : nullptr;
  eval_context.query_id = req.trace.query_id;
  eval_context.profile = &eval_profile;
  Result<Table> h = Status::Internal("unset");
  {
    obs::Span round_span =
        traced ? obs::Tracer::Global().StartSpan(
                     StrCat("site.round:", req.label), "site")
               : obs::Span();
    if (round_span.armed()) {
      round_span.AddAttr("site", static_cast<int64_t>(site_.id()));
      round_span.AddAttr("label", req.label);
    }
    eval_context.trace_parent_span = round_span.id();
    Stopwatch eval_watch;
    h = site_.EvalGmdjRound(input, req.op, eval_context);
    if (h.ok() && req.apply_rng) h = ApplyRngFilter(*h);
    profile.eval_us = static_cast<uint64_t>(eval_watch.ElapsedMicros());
  }
  if (!h.ok()) return ErrorFrame(h.status());

  if (req.has_base) {
    plan.last_round.clear();
    plan.last_input = Table();
  } else {
    plan.last_round = req.label;
    plan.last_input = std::move(input);
  }
  profile.morsel_us = eval_profile.morsel_us.load(std::memory_order_relaxed);
  profile.rows_scanned =
      eval_profile.rows_scanned.load(std::memory_order_relaxed);
  profile.rows_matched =
      eval_profile.rows_matched.load(std::memory_order_relaxed);
  profile.index_hits = eval_profile.index_hits.load(std::memory_order_relaxed);
  profile.engines_used =
      eval_profile.engines_used.load(std::memory_order_relaxed);
  profile.duplicate_rounds = duplicate_rounds_;
  profile.chaos_faults =
      chaos_faults_ == nullptr
          ? 0
          : static_cast<uint64_t>(chaos_faults_->load(std::memory_order_relaxed));
  profile.result_rows = h->num_rows();
  if (req.ship_result) {
    plan.local_base = Table();
    profile.wall_us = static_cast<uint64_t>(wall.ElapsedMicros());
    profile.spans = capture.Drain();
    return RoundResultFrame(&profile, &*h);
  }
  plan.local_base = std::move(*h);
  profile.wall_us = static_cast<uint64_t>(wall.ElapsedMicros());
  profile.spans = capture.Drain();
  return RoundResultFrame(&profile, nullptr);
}

}  // namespace rpc
}  // namespace skalla
