#include "rpc/site_service.h"

#include "common/macros.h"
#include "common/string_util.h"
#include "dist/executor.h"
#include "net/serde.h"
#include "obs/obs.h"
#include "rpc/plan_serde.h"

namespace skalla {
namespace rpc {

Frame ErrorFrame(const Status& status) {
  Frame frame;
  frame.type = MessageType::kError;
  WriteStatusPayload(&frame.payload, status);
  return frame;
}

namespace {

Frame AckFrame() {
  Frame frame;
  frame.type = MessageType::kAck;
  return frame;
}

Frame TableFrame(const Table& table) {
  Frame frame;
  frame.type = MessageType::kTableResult;
  WriteTable(table, &frame.payload);
  return frame;
}

}  // namespace

Result<Frame> SiteService::Handle(const Frame& request) {
  SKALLA_TRACE_SPAN(span, "rpc.handle", "rpc");
  SKALLA_SPAN_ATTR(span, "type",
                   static_cast<int64_t>(static_cast<uint8_t>(request.type)));
  switch (request.type) {
    case MessageType::kHello: {
      SKALLA_RETURN_NOT_OK(DecodeHello(request.payload).status());
      Frame frame;
      frame.type = MessageType::kHello;
      frame.payload = EncodeHello(site_.id());
      return frame;
    }
    case MessageType::kCatalogRequest: {
      std::vector<CatalogEntry> entries;
      for (const std::string& name : site_.catalog().TableNames()) {
        SKALLA_ASSIGN_OR_RETURN(const Table* table, site_.catalog().Get(name));
        entries.push_back(CatalogEntry{name, table->schema()});
      }
      Frame frame;
      frame.type = MessageType::kCatalogResponse;
      frame.payload = EncodeCatalogResponse(entries);
      return frame;
    }
    case MessageType::kBeginPlan:
      return HandleBeginPlan(request);
    case MessageType::kBaseRound:
      return HandleBaseRound(request);
    case MessageType::kGmdjRound:
      return HandleGmdjRound(request);
    case MessageType::kShutdown:
      shutdown_ = true;
      return AckFrame();
    default:
      return ErrorFrame(Status::InvalidArgument(
          StrCat("site cannot serve message type ",
                 static_cast<int>(request.type))));
  }
}

Result<Frame> SiteService::HandleBeginPlan(const Frame& request) {
  SKALLA_ASSIGN_OR_RETURN(BeginPlanRequest req,
                          DecodeBeginPlanRequest(request.payload));
  local_base_ = Table();
  last_round_.clear();
  last_input_ = Table();
  eval_threads_ = req.eval_threads;
  if (req.columnar_sites && !site_.columnar_enabled()) {
    Status built = site_.EnableColumnarCache();
    if (!built.ok()) return ErrorFrame(built);
  }
  return AckFrame();
}

Result<Frame> SiteService::HandleBaseRound(const Frame& request) {
  SKALLA_ASSIGN_OR_RETURN(BaseRoundRequest req,
                          DecodeBaseRoundRequest(request.payload));
  // The coordinator ships the remaining round budget; a fired deadline
  // surfaces as a typed kDeadlineExceeded error response. Base queries
  // poll between pipeline steps rather than per-morsel, so the token
  // mainly guards the (cheap) setup; evaluation itself is short.
  CancellationToken cancel;
  if (req.deadline_ms > 0) {
    cancel.ArmDeadline(req.deadline_ms, StrCat("site ", site_.id(), " base"));
  }
  Status armed = cancel.Check();
  if (!armed.ok()) return ErrorFrame(armed);
  // Recomputing from the durable local partition makes retries of this
  // round naturally idempotent.
  Result<Table> base = site_.ExecuteBaseQuery(req.query);
  if (base.ok()) {
    Status after = cancel.Check();
    if (!after.ok()) return ErrorFrame(after);
  }
  if (!base.ok()) return ErrorFrame(base.status());
  if (req.ship_result) return TableFrame(*base);
  local_base_ = std::move(*base);
  last_round_.clear();
  last_input_ = Table();
  return AckFrame();
}

Result<Frame> SiteService::HandleGmdjRound(const Frame& request) {
  SKALLA_ASSIGN_OR_RETURN(GmdjRoundRequest req,
                          DecodeGmdjRoundRequest(request.payload));
  Table input;
  if (req.has_base) {
    input = std::move(req.base);
  } else if (!req.label.empty() && req.label == last_round_) {
    // A coordinator retry of the round that already consumed the carried
    // structure: re-evaluate from the saved input, do not double-apply.
    input = last_input_;
  } else {
    input = std::move(local_base_);
  }

  // Arm the coordinator-shipped round deadline; the morsel loops poll
  // the token, so an expired deadline stops evaluation within one
  // morsel's worth of work and surfaces as kDeadlineExceeded.
  CancellationToken cancel;
  if (req.deadline_ms > 0) {
    cancel.ArmDeadline(req.deadline_ms,
                       StrCat("site ", site_.id(), " ", req.label));
  }
  EvalContext eval_context;
  eval_context.sub_aggregates = req.sub_aggregates;
  eval_context.compute_rng = req.apply_rng;
  eval_context.eval_threads = eval_threads_;
  eval_context.cancellation = req.deadline_ms > 0 ? &cancel : nullptr;
  Result<Table> h = site_.EvalGmdjRound(input, req.op, eval_context);
  if (h.ok() && req.apply_rng) h = ApplyRngFilter(*h);
  if (!h.ok()) return ErrorFrame(h.status());

  if (req.has_base) {
    last_round_.clear();
    last_input_ = Table();
  } else {
    last_round_ = req.label;
    last_input_ = std::move(input);
  }
  if (req.ship_result) {
    local_base_ = Table();
    return TableFrame(*h);
  }
  local_base_ = std::move(*h);
  return AckFrame();
}

}  // namespace rpc
}  // namespace skalla
