// SiteService: the server half of the rpc protocol. Handles decoded
// request frames against one Site and owns the site's state between
// rounds — the carried-over local base-result structure that
// unsynchronized plans rely on (Prop. 2 / Theorem 5).
//
// Transport-agnostic: SiteServer drives it from a TCP connection, the
// in-process transport calls it directly. Not thread-safe; each service
// is driven by one connection at a time (the coordinator link).

#ifndef SKALLA_RPC_SITE_SERVICE_H_
#define SKALLA_RPC_SITE_SERVICE_H_

#include <atomic>
#include <string>
#include <utility>

#include "common/result.h"
#include "dist/site.h"
#include "rpc/frame.h"

namespace skalla {
namespace rpc {

/// Builds a kError frame carrying `status` (code preserved end to end).
Frame ErrorFrame(const Status& status);

class SiteService {
 public:
  explicit SiteService(Site site) : site_(std::move(site)) {}

  int site_id() const { return site_.id(); }
  const Site& site() const { return site_; }

  /// Handles one request and produces the response frame. Evaluation
  /// failures become kError frames; a non-OK Result means the request
  /// itself was malformed (the connection should drop).
  Result<Frame> Handle(const Frame& request);

  /// True once a kShutdown request has been acknowledged.
  bool shutdown_requested() const { return shutdown_; }

  /// Wires the transport's chaos-fault counter into RoundProfile
  /// reporting (SiteServer::chaos_faults_counter()). Not owned; may be
  /// nullptr (in-process transport has no chaos layer here).
  void set_chaos_faults_counter(const std::atomic<int>* counter) {
    chaos_faults_ = counter;
  }

  /// Idempotency-cache replays served so far (coordinator retries of a
  /// round that already consumed the carried structure).
  uint64_t duplicate_rounds() const { return duplicate_rounds_; }

 private:
  Result<Frame> HandleBeginPlan(const Frame& request);
  Result<Frame> HandleBaseRound(const Frame& request);
  Result<Frame> HandleGmdjRound(const Frame& request);

  Site site_;

  // Intra-site eval parallelism for the current plan, set by BeginPlan
  // (EvalContext::eval_threads; never changes results).
  size_t eval_threads_ = 1;

  // Carried-over base structure between unsynchronized rounds.
  Table local_base_;

  // Idempotent retries: the label of the last round that consumed the
  // carried structure, and the input it consumed. A re-sent round (a
  // coordinator retry after a dropped connection or lost response)
  // re-evaluates from the saved input instead of double-applying the
  // operator to its own output.
  std::string last_round_;
  Table last_input_;

  bool shutdown_ = false;

  // RoundProfile inputs: replay count and (optional) transport chaos
  // fault counter.
  uint64_t duplicate_rounds_ = 0;
  const std::atomic<int>* chaos_faults_ = nullptr;
};

}  // namespace rpc
}  // namespace skalla

#endif  // SKALLA_RPC_SITE_SERVICE_H_
