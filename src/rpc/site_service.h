// SiteService: the server half of the rpc protocol. Handles decoded
// request frames against one Site and owns the site's state between
// rounds — the carried-over local base-result structure that
// unsynchronized plans rely on (Prop. 2 / Theorem 5).
//
// Since protocol v5 the service multiplexes queries: it holds one round
// state per in-flight query id (BeginPlan opens one, EndPlan releases
// it, round requests select theirs via TraceContext::query_id), so a
// coordinator may interleave rounds of different queries over a single
// connection. The state map is capped; the oldest entry is evicted when
// a coordinator never sends EndPlan.
//
// Transport-agnostic: SiteServer drives it from a TCP connection, the
// in-process transport calls it directly. Handle() is serialized by an
// internal mutex, so concurrent in-process callers are safe; evaluation
// of different queries still interleaves at round granularity.

#ifndef SKALLA_RPC_SITE_SERVICE_H_
#define SKALLA_RPC_SITE_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <utility>

#include "common/result.h"
#include "dist/site.h"
#include "rpc/frame.h"

namespace skalla {
namespace rpc {

/// Builds a kError frame carrying `status` (code preserved end to end).
Frame ErrorFrame(const Status& status);

class SiteService {
 public:
  explicit SiteService(Site site) : site_(std::move(site)) {}

  int site_id() const { return site_.id(); }
  const Site& site() const { return site_; }

  /// Handles one request and produces the response frame. Evaluation
  /// failures become kError frames; a non-OK Result means the request
  /// itself was malformed (the connection should drop). Thread-safe
  /// (requests serialize on an internal mutex).
  Result<Frame> Handle(const Frame& request);

  /// True once a kShutdown request has been acknowledged.
  bool shutdown_requested() const { return shutdown_; }

  /// Wires the transport's chaos-fault counter into RoundProfile
  /// reporting (SiteServer::chaos_faults_counter()). Not owned; may be
  /// nullptr (in-process transport has no chaos layer here).
  void set_chaos_faults_counter(const std::atomic<int>* counter) {
    chaos_faults_ = counter;
  }

  /// Idempotency-cache replays served so far (coordinator retries of a
  /// round that already consumed the carried structure).
  uint64_t duplicate_rounds() const { return duplicate_rounds_; }

  /// Number of per-query round states currently held (diagnostics).
  size_t open_plans() const;

 private:
  /// Round state for one in-flight query (protocol v5: one per query
  /// id; id 0 is the anonymous pre-v5 slot).
  struct PlanState {
    // Intra-site eval parallelism for this plan, set by BeginPlan
    // (EvalContext::eval_threads; never changes results).
    size_t eval_threads = 1;

    // GMDJ kernel selection for this plan, set by BeginPlan
    // (EvalContext::engine; never changes results).
    EvalEngine engine = EvalEngine::kAuto;

    // Carried-over base structure between unsynchronized rounds.
    Table local_base;

    // Idempotent retries: the label of the last round that consumed the
    // carried structure, and the input it consumed. A re-sent round (a
    // coordinator retry after a dropped connection or lost response)
    // re-evaluates from the saved input instead of double-applying the
    // operator to its own output.
    std::string last_round;
    Table last_input;
  };

  Result<Frame> HandleBeginPlan(const Frame& request);
  Result<Frame> HandleEndPlan(const Frame& request);
  Result<Frame> HandleBaseRound(const Frame& request);
  Result<Frame> HandleGmdjRound(const Frame& request);

  /// The round state for `query_id`, creating it (and evicting the
  /// oldest beyond kMaxOpenPlans) if absent. Caller holds mu_.
  PlanState& PlanFor(uint64_t query_id);

  /// Coordinators that never EndPlan are bounded by eviction: oldest
  /// BeginPlan order first. Generous — an evicted-but-live query only
  /// loses its carried-over structure, which self-contained rounds
  /// rebuild.
  static constexpr size_t kMaxOpenPlans = 64;

  Site site_;

  mutable std::mutex mu_;  // serializes Handle (concurrent callers)

  std::map<uint64_t, PlanState> plans_;     // keyed by query id
  std::deque<uint64_t> plan_order_;         // BeginPlan order, for eviction

  bool shutdown_ = false;

  // RoundProfile inputs: replay count and (optional) transport chaos
  // fault counter.
  uint64_t duplicate_rounds_ = 0;
  const std::atomic<int>* chaos_faults_ = nullptr;
};

}  // namespace rpc
}  // namespace skalla

#endif  // SKALLA_RPC_SITE_SERVICE_H_
