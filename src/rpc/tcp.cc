#include "rpc/tcp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/macros.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "obs/obs.h"
#include "rpc/plan_serde.h"

namespace skalla {
namespace rpc {

namespace {

Status Errno(const char* what) {
  return Status::IOError(StrCat(what, ": ", std::strerror(errno)));
}

// Remaining milliseconds of a deadline for poll(); at least 1 so a
// positive remaining time never busy-spins as a zero-timeout poll.
int RemainingMs(const Stopwatch& timer, double timeout_s) {
  double left = timeout_s - timer.ElapsedSeconds();
  if (left <= 0) return 0;
  int ms = static_cast<int>(left * 1e3);
  return ms < 1 ? 1 : ms;
}

Status WaitReadable(int fd, const Stopwatch& timer, double timeout_s) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = POLLIN;
  for (;;) {
    int ms = RemainingMs(timer, timeout_s);
    if (ms == 0) return Status::IOError("read timed out");
    int rc = ::poll(&pfd, 1, ms);
    if (rc > 0) return Status::OK();
    if (rc == 0) return Status::IOError("read timed out");
    if (errno != EINTR) return Errno("poll");
  }
}

Status WaitWritable(int fd, const Stopwatch& timer, double timeout_s) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = POLLOUT;
  for (;;) {
    int ms = RemainingMs(timer, timeout_s);
    if (ms == 0) return Status::IOError("write timed out");
    int rc = ::poll(&pfd, 1, ms);
    if (rc > 0) return Status::OK();
    if (rc == 0) return Status::IOError("write timed out");
    if (errno != EINTR) return Errno("poll");
  }
}

Result<struct sockaddr_in> ResolveV4(const std::string& host, int port) {
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument(
        StrCat("not an IPv4 address: '", host, "'"));
  }
  return addr;
}

}  // namespace

TcpSocket& TcpSocket::operator=(TcpSocket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void TcpSocket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<TcpSocket> TcpSocket::ConnectTo(const std::string& host, int port,
                                       double timeout_s) {
  SKALLA_ASSIGN_OR_RETURN(struct sockaddr_in addr, ResolveV4(host, port));
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  TcpSocket socket(fd);

  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  Stopwatch timer;
  int rc = ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                     sizeof(addr));
  if (rc != 0) {
    if (errno != EINPROGRESS) return Errno("connect");
    SKALLA_RETURN_NOT_OK(WaitWritable(fd, timer, timeout_s));
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
      return Errno("getsockopt");
    }
    if (err != 0) {
      return Status::IOError(StrCat("connect to ", host, ":", port, ": ",
                                    std::strerror(err)));
    }
  }
  return socket;
}

Status TcpSocket::SendAll(const uint8_t* data, size_t size,
                          double timeout_s) {
  if (!valid()) return Status::IOError("socket is closed");
  Stopwatch timer;
  size_t sent = 0;
  while (sent < size) {
    ssize_t n = ::send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      SKALLA_RETURN_NOT_OK(WaitWritable(fd_, timer, timeout_s));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Errno("send");
  }
  return Status::OK();
}

Status TcpSocket::RecvAll(uint8_t* data, size_t size, double timeout_s) {
  if (!valid()) return Status::IOError("socket is closed");
  Stopwatch timer;
  size_t got = 0;
  while (got < size) {
    ssize_t n = ::recv(fd_, data + got, size - got, 0);
    if (n > 0) {
      got += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) return Status::IOError("connection closed by peer");
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      SKALLA_RETURN_NOT_OK(WaitReadable(fd_, timer, timeout_s));
      continue;
    }
    if (errno == EINTR) continue;
    return Errno("recv");
  }
  return Status::OK();
}

Status SendFrame(TcpSocket* socket, MessageType type,
                 const std::vector<uint8_t>& payload, double timeout_s,
                 uint64_t* wire_bytes) {
  SKALLA_OBS_ONLY(Stopwatch frame_watch);
  std::vector<uint8_t> wire = EncodeFrame(type, payload);
  SKALLA_HISTOGRAM_RECORD("skalla.rpc.frame_us",
                          frame_watch.ElapsedSeconds() * 1e6);
  SKALLA_RETURN_NOT_OK(socket->SendAll(wire.data(), wire.size(), timeout_s));
  if (wire_bytes != nullptr) *wire_bytes += wire.size();
  SKALLA_COUNTER_ADD("skalla.rpc.bytes.sent", wire.size());
  return Status::OK();
}

Result<Frame> RecvFrame(TcpSocket* socket, double timeout_s,
                        uint64_t* wire_bytes) {
  uint8_t header[kFrameHeaderSize];
  SKALLA_RETURN_NOT_OK(socket->RecvAll(header, sizeof(header), timeout_s));
  SKALLA_OBS_ONLY(Stopwatch frame_watch);
  MessageType type;
  uint32_t expected_crc = 0;
  SKALLA_ASSIGN_OR_RETURN(
      uint32_t payload_len,
      DecodeFrameHeader(header, sizeof(header), &type, &expected_crc));
  Frame frame;
  frame.type = type;
  frame.payload.resize(payload_len);
  if (payload_len > 0) {
    SKALLA_RETURN_NOT_OK(
        socket->RecvAll(frame.payload.data(), payload_len, timeout_s));
  }
  SKALLA_OBS_ONLY(frame_watch.Reset());
  if (FrameCrc(header, frame.payload.data(), frame.payload.size()) !=
      expected_crc) {
    return Status::IOError("frame checksum mismatch");
  }
  SKALLA_HISTOGRAM_RECORD("skalla.rpc.frame_us",
                          frame_watch.ElapsedSeconds() * 1e6);
  if (wire_bytes != nullptr) *wire_bytes += kFrameHeaderSize + payload_len;
  SKALLA_COUNTER_ADD("skalla.rpc.bytes.recv", kFrameHeaderSize + payload_len);
  return frame;
}

Result<TcpListener> TcpListener::Bind(const std::string& host, int port) {
  SKALLA_ASSIGN_OR_RETURN(struct sockaddr_in addr, ResolveV4(host, port));
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  TcpListener listener;
  listener.socket_ = TcpSocket(fd);

  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Errno("bind");
  }
  if (::listen(fd, 16) != 0) return Errno("listen");

  struct sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound), &len) !=
      0) {
    return Errno("getsockname");
  }
  listener.port_ = ntohs(bound.sin_port);
  return listener;
}

Result<std::optional<TcpSocket>> TcpListener::Accept(double timeout_s) {
  if (!socket_.valid()) return Status::IOError("listener is closed");
  Stopwatch timer;
  for (;;) {
    int accepted = ::accept4(socket_.fd(), nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (accepted >= 0) {
      int one = 1;
      ::setsockopt(accepted, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return std::optional<TcpSocket>(TcpSocket(accepted));
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      struct pollfd pfd;
      pfd.fd = socket_.fd();
      pfd.events = POLLIN;
      int ms = RemainingMs(timer, timeout_s);
      if (ms == 0) return std::optional<TcpSocket>();
      int rc = ::poll(&pfd, 1, ms);
      if (rc == 0) return std::optional<TcpSocket>();
      if (rc < 0 && errno != EINTR) return Errno("poll");
      continue;
    }
    if (errno == EINTR) continue;
    return Errno("accept");
  }
}

Status TcpConnection::EnsureConnected() {
  if (socket_.valid()) return Status::OK();
  if (consecutive_failures_ > 0) {
    // Exponential backoff before reconnecting, capped; retries of a
    // crashed-and-restarting site should not hammer the port.
    double delay = options_.backoff_initial_s *
                   static_cast<double>(1u << std::min(consecutive_failures_ -
                                                          1,
                                                      20u));
    if (delay > options_.backoff_max_s) delay = options_.backoff_max_s;
    std::this_thread::sleep_for(std::chrono::duration<double>(delay));
  }
  SKALLA_TRACE_SPAN(span, "rpc.connect", "rpc");
  SKALLA_SPAN_ATTR(span, "host", endpoint_.host);
  SKALLA_SPAN_ATTR(span, "port", static_cast<int64_t>(endpoint_.port));
  Result<TcpSocket> connected = TcpSocket::ConnectTo(
      endpoint_.host, endpoint_.port, options_.connect_timeout_s);
  if (!connected.ok()) {
    ++consecutive_failures_;
    return connected.status();
  }
  socket_ = std::move(*connected);
  ++reconnects_;

  // Handshake: both ends announce their site id; a mismatch means the
  // endpoint list is wired to the wrong process.
  Status hello = SendFrame(&socket_, MessageType::kHello,
                           EncodeHello(expected_site_id_),
                           options_.io_timeout_s, &wire_bytes_);
  Result<Frame> reply =
      hello.ok() ? RecvFrame(&socket_, options_.io_timeout_s, &wire_bytes_)
                 : Result<Frame>(hello);
  if (!reply.ok()) {
    socket_.Close();
    ++consecutive_failures_;
    return reply.status();
  }
  if (reply->type != MessageType::kHello) {
    socket_.Close();
    ++consecutive_failures_;
    return Status::IOError("handshake: unexpected response type");
  }
  Result<int> peer_id = DecodeHello(reply->payload);
  if (!peer_id.ok()) {
    socket_.Close();
    ++consecutive_failures_;
    return peer_id.status();
  }
  if (*peer_id != expected_site_id_) {
    socket_.Close();
    ++consecutive_failures_;
    return Status::InvalidArgument(
        StrCat("endpoint ", endpoint_.host, ":", endpoint_.port,
               " serves site ", *peer_id, ", expected site ",
               expected_site_id_));
  }
  consecutive_failures_ = 0;
  return Status::OK();
}

Result<Frame> TcpConnection::Call(MessageType type,
                                  const std::vector<uint8_t>& payload) {
  SKALLA_RETURN_NOT_OK(EnsureConnected());
  Status sent =
      SendFrame(&socket_, type, payload, options_.io_timeout_s, &wire_bytes_);
  if (!sent.ok()) {
    socket_.Close();
    ++consecutive_failures_;
    return sent;
  }
  Result<Frame> response =
      RecvFrame(&socket_, options_.io_timeout_s, &wire_bytes_);
  if (!response.ok()) {
    socket_.Close();
    ++consecutive_failures_;
    return response.status();
  }
  consecutive_failures_ = 0;
  return response;
}

Result<std::unique_ptr<Connection>> TcpTransport::Connect(size_t site_index) {
  if (site_index >= endpoints_.size()) {
    return Status::InvalidArgument(
        StrCat("no site ", site_index, " (transport has ", endpoints_.size(),
               " endpoints)"));
  }
  return std::unique_ptr<Connection>(std::make_unique<TcpConnection>(
      endpoints_[site_index], static_cast<int>(site_index), options_));
}

}  // namespace rpc
}  // namespace skalla
