// POSIX TCP plumbing for the rpc layer: a move-only socket wrapper with
// deadline-bounded connect/read/write, a listener, framed send/receive
// over a socket, and the TcpTransport/TcpConnection pair the RpcExecutor
// uses to drive skalla-site processes.
//
// Failure model: every Call is one attempt. A transport error closes the
// connection and the next Call reconnects lazily, sleeping an
// exponentially growing backoff per consecutive failure; the *retry*
// decision stays with the coordinator's ExecuteSiteRound /
// max_site_retries machinery, so the recovery policy is identical across
// the simulated and the real transports.

#ifndef SKALLA_RPC_TCP_H_
#define SKALLA_RPC_TCP_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "rpc/frame.h"
#include "rpc/transport.h"

namespace skalla {
namespace rpc {

/// Knobs for one TCP connection. Defaults suit localhost tests; real
/// deployments raise the timeouts.
struct TcpOptions {
  double connect_timeout_s = 5.0;
  double io_timeout_s = 30.0;
  /// First reconnect delay after a failure; doubles per consecutive
  /// failure up to backoff_max_s. The first connect never sleeps.
  double backoff_initial_s = 0.02;
  double backoff_max_s = 1.0;
};

/// Move-only owner of a connected (or accepted) socket fd.
class TcpSocket {
 public:
  TcpSocket() = default;
  explicit TcpSocket(int fd) : fd_(fd) {}
  ~TcpSocket() { Close(); }

  TcpSocket(TcpSocket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  TcpSocket& operator=(TcpSocket&& other) noexcept;
  TcpSocket(const TcpSocket&) = delete;
  TcpSocket& operator=(const TcpSocket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void Close();

  /// Connects to host:port, failing after `timeout_s`.
  static Result<TcpSocket> ConnectTo(const std::string& host, int port,
                                     double timeout_s);

  /// Writes exactly `size` bytes, failing if the deadline expires first.
  Status SendAll(const uint8_t* data, size_t size, double timeout_s);

  /// Reads exactly `size` bytes, failing on EOF or deadline.
  Status RecvAll(uint8_t* data, size_t size, double timeout_s);

 private:
  int fd_ = -1;
};

/// Sends one framed message over the socket. Adds the bytes put on the
/// wire (header included) to *wire_bytes when non-null.
Status SendFrame(TcpSocket* socket, MessageType type,
                 const std::vector<uint8_t>& payload, double timeout_s,
                 uint64_t* wire_bytes);

/// Receives one framed message, validating header and checksum.
Result<Frame> RecvFrame(TcpSocket* socket, double timeout_s,
                        uint64_t* wire_bytes);

/// A listening socket. Bind with port 0 for an ephemeral port and read
/// the chosen one back with port().
class TcpListener {
 public:
  TcpListener() = default;

  static Result<TcpListener> Bind(const std::string& host, int port);

  bool valid() const { return socket_.valid(); }
  int port() const { return port_; }
  void Close() { socket_.Close(); }

  /// Waits up to `timeout_s` for a connection; nullopt on timeout (so a
  /// serve loop can poll a stop flag between waits).
  Result<std::optional<TcpSocket>> Accept(double timeout_s);

 private:
  TcpSocket socket_;
  int port_ = 0;
};

/// Where one site process listens.
struct SiteEndpoint {
  std::string host = "127.0.0.1";
  int port = 0;
};

/// Connection to one skalla-site process. Connects lazily on the first
/// Call, performs the kHello handshake (verifying the peer is the site
/// the executor thinks it is), and reconnects with backoff after
/// transport failures.
class TcpConnection : public Connection {
 public:
  TcpConnection(SiteEndpoint endpoint, int expected_site_id,
                TcpOptions options)
      : endpoint_(std::move(endpoint)),
        expected_site_id_(expected_site_id),
        options_(options) {}

  Result<Frame> Call(MessageType type,
                     const std::vector<uint8_t>& payload) override;

  uint64_t wire_bytes() const override { return wire_bytes_; }

  bool connected() const { return socket_.valid(); }
  uint64_t reconnects() const { return reconnects_; }

 private:
  Status EnsureConnected();

  SiteEndpoint endpoint_;
  int expected_site_id_;
  TcpOptions options_;
  TcpSocket socket_;
  uint64_t wire_bytes_ = 0;
  uint64_t reconnects_ = 0;
  uint32_t consecutive_failures_ = 0;
};

/// Transport over a fixed list of site endpoints; endpoint i must be the
/// process serving site id i.
class TcpTransport : public Transport {
 public:
  explicit TcpTransport(std::vector<SiteEndpoint> endpoints,
                        TcpOptions options = {})
      : endpoints_(std::move(endpoints)), options_(options) {}

  size_t num_sites() const override { return endpoints_.size(); }

  Result<std::unique_ptr<Connection>> Connect(size_t site_index) override;

 private:
  std::vector<SiteEndpoint> endpoints_;
  TcpOptions options_;
};

}  // namespace rpc
}  // namespace skalla

#endif  // SKALLA_RPC_TCP_H_
