#include "rpc/transport.h"

#include <utility>

#include "common/macros.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "obs/obs.h"

namespace skalla {
namespace rpc {

namespace {

// Every exchange encodes to wire bytes and decodes back, so the
// in-process path validates magic/version/checksum exactly like a
// socket peer would.
class InProcessConnection : public Connection {
 public:
  explicit InProcessConnection(SiteService* service) : service_(service) {}

  Result<Frame> Call(MessageType type,
                     const std::vector<uint8_t>& payload) override {
    SKALLA_OBS_ONLY(Stopwatch frame_watch);
    std::vector<uint8_t> request_wire = EncodeFrame(type, payload);
    SKALLA_HISTOGRAM_RECORD("skalla.rpc.frame_us",
                            frame_watch.ElapsedSeconds() * 1e6);
    wire_bytes_ += request_wire.size();
    SKALLA_COUNTER_ADD("skalla.rpc.bytes.sent", request_wire.size());
    SKALLA_ASSIGN_OR_RETURN(Frame request, DecodeFrame(request_wire));
    SKALLA_ASSIGN_OR_RETURN(Frame response, service_->Handle(request));
    SKALLA_OBS_ONLY(frame_watch.Reset());
    std::vector<uint8_t> response_wire =
        EncodeFrame(response.type, response.payload);
    Result<Frame> decoded = DecodeFrame(response_wire);
    SKALLA_HISTOGRAM_RECORD("skalla.rpc.frame_us",
                            frame_watch.ElapsedSeconds() * 1e6);
    wire_bytes_ += response_wire.size();
    SKALLA_COUNTER_ADD("skalla.rpc.bytes.recv", response_wire.size());
    return decoded;
  }

  uint64_t wire_bytes() const override { return wire_bytes_; }

 private:
  SiteService* service_;
  uint64_t wire_bytes_ = 0;
};

}  // namespace

InProcessTransport::InProcessTransport(std::vector<Site> sites) {
  services_.reserve(sites.size());
  for (Site& site : sites) {
    services_.push_back(std::make_unique<SiteService>(std::move(site)));
  }
}

Result<std::unique_ptr<Connection>> InProcessTransport::Connect(
    size_t site_index) {
  if (site_index >= services_.size()) {
    return Status::InvalidArgument(
        StrCat("no site ", site_index, " (transport has ", services_.size(),
               " sites)"));
  }
  return std::unique_ptr<Connection>(
      std::make_unique<InProcessConnection>(services_[site_index].get()));
}

}  // namespace rpc
}  // namespace skalla
