// Transport: how the RpcExecutor reaches its sites. A Transport hands
// out one Connection per site; a Connection is a synchronous
// request/response pipe speaking the framed protocol (rpc/frame.h).
//
// Two implementations:
//   - InProcessTransport: sites live in this process as SiteService
//     objects; every exchange still round-trips through EncodeFrame /
//     DecodeFrame, so the in-process path exercises the identical wire
//     bytes the TCP path ships.
//   - TcpTransport (rpc/tcp.h): sites are separate skalla-site processes
//     reached over sockets, with timeouts and reconnect backoff.

#ifndef SKALLA_RPC_TRANSPORT_H_
#define SKALLA_RPC_TRANSPORT_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "dist/site.h"
#include "rpc/frame.h"
#include "rpc/site_service.h"

namespace skalla {
namespace rpc {

/// One coordinator<->site pipe. Not thread-safe; the executor drives
/// each connection from one thread at a time.
class Connection {
 public:
  virtual ~Connection() = default;

  /// One request/response exchange. Returns the decoded response frame
  /// (which may be kError — protocol-level success, application-level
  /// failure). A non-OK Result is a transport failure: the request may
  /// or may not have reached the site, and the caller's retry policy
  /// (ExecuteSiteRound + max_site_retries) decides what happens next.
  virtual Result<Frame> Call(MessageType type,
                             const std::vector<uint8_t>& payload) = 0;

  /// Total bytes moved over the wire by this connection so far, frame
  /// headers included (feeds the skalla.rpc.bytes counter).
  virtual uint64_t wire_bytes() const = 0;
};

class Transport {
 public:
  virtual ~Transport() = default;

  virtual size_t num_sites() const = 0;

  /// Opens (or reopens) the connection to site `site_index`.
  virtual Result<std::unique_ptr<Connection>> Connect(size_t site_index) = 0;
};

/// Sites hosted in this process. Owns one SiteService per site; the
/// services' round state persists across Connect calls, like a site
/// process that outlives a dropped coordinator connection.
class InProcessTransport : public Transport {
 public:
  explicit InProcessTransport(std::vector<Site> sites);

  size_t num_sites() const override { return services_.size(); }

  Result<std::unique_ptr<Connection>> Connect(size_t site_index) override;

  SiteService* service(size_t site_index) {
    return services_[site_index].get();
  }

 private:
  std::vector<std::unique_ptr<SiteService>> services_;
};

}  // namespace rpc
}  // namespace skalla

#endif  // SKALLA_RPC_TRANSPORT_H_
