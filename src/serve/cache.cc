#include "serve/cache.h"

#include "common/hash.h"
#include "net/serde.h"
#include "obs/obs.h"
#include "rpc/plan_serde.h"

namespace skalla {
namespace serve {

uint64_t PlanFingerprint(const DistributedPlan& plan) {
  // Canonical bytes: the same encoders the rpc protocol ships plans
  // with, so semantically identical plans (however they were built)
  // produce identical buffers.
  std::vector<uint8_t> buf;
  rpc::WriteBaseQuery(&buf, plan.base);
  buf.push_back(plan.sync_base ? 1 : 0);
  PutVarint(&buf, plan.stages.size());
  for (const PlanStage& stage : plan.stages) {
    rpc::WriteGmdjOp(&buf, stage.op);
    buf.push_back(static_cast<uint8_t>((stage.sync_after ? 1 : 0) |
                                       (stage.indep_group_reduction ? 2 : 0)));
    PutVarint(&buf, stage.site_base_filters.size());
    for (const ExprPtr& filter : stage.site_base_filters) {
      rpc::WriteExpr(&buf, filter);
    }
  }
  PutVarint(&buf, plan.key_columns.size());
  for (const std::string& column : plan.key_columns) {
    rpc::WriteString(&buf, column);
  }
  return HashBytes(buf.data(), buf.size());
}

std::optional<Table> SubAggregateCache::Lookup(uint64_t fingerprint,
                                               uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(Key{fingerprint, epoch});
  if (it == entries_.end()) {
    ++stats_.misses;
    SKALLA_COUNTER_ADD("skalla.serve.cache.misses", 1);
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  ++stats_.hits;
  SKALLA_COUNTER_ADD("skalla.serve.cache.hits", 1);
  SKALLA_COUNTER_ADD("skalla.serve.cache.hit_bytes", it->second.bytes);
  return it->second.result;
}

void SubAggregateCache::Insert(uint64_t fingerprint, uint64_t epoch,
                               const Table& result) {
  const uint64_t bytes = SerializedTableSize(result);
  if (bytes > max_bytes_) return;  // covers max_bytes_ == 0 (disabled)
  std::lock_guard<std::mutex> lock(mu_);
  const Key key{fingerprint, epoch};
  if (entries_.count(key) > 0) return;  // concurrent miss already filled it
  EvictLockedUntil(bytes);
  lru_.push_front(key);
  entries_[key] = Entry{result, bytes, lru_.begin()};
  ++stats_.insertions;
  stats_.resident_bytes += bytes;
  stats_.entries = entries_.size();
  SKALLA_COUNTER_ADD("skalla.serve.cache.insertions", 1);
  SKALLA_GAUGE_SET("skalla.serve.cache.resident_bytes",
                   static_cast<double>(stats_.resident_bytes));
}

void SubAggregateCache::EvictBefore(uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first.second < epoch) {
      stats_.resident_bytes -= it->second.bytes;
      ++stats_.evictions;
      lru_.erase(it->second.lru_it);
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  stats_.entries = entries_.size();
  SKALLA_GAUGE_SET("skalla.serve.cache.resident_bytes",
                   static_cast<double>(stats_.resident_bytes));
}

void SubAggregateCache::EvictLockedUntil(uint64_t needed_bytes) {
  while (!lru_.empty() && stats_.resident_bytes + needed_bytes > max_bytes_) {
    const Key victim = lru_.back();
    lru_.pop_back();
    auto it = entries_.find(victim);
    stats_.resident_bytes -= it->second.bytes;
    entries_.erase(it);
    ++stats_.evictions;
    SKALLA_COUNTER_ADD("skalla.serve.cache.evictions", 1);
  }
}

CacheStats SubAggregateCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  CacheStats out = stats_;
  out.entries = entries_.size();
  return out;
}

}  // namespace serve
}  // namespace skalla
