// SubAggregateCache: a coordinator-side result cache for the serving
// layer. A repeated query — same optimized plan over unchanged partition
// data — skips all evaluation rounds entirely: the scheduler answers
// from the cached final base-result structure and marks the query's
// ExecStats from_cache, which EXPLAIN ANALYZE renders as a cache HIT
// with zero rounds.
//
// Keying: (plan fingerprint, partition epoch). The fingerprint hashes
// the plan's full semantic content through the rpc wire encoders (base
// query, stages with their operators / sync flags / reduction filters,
// key columns), so two plans fingerprint equal iff a site could not
// tell their rounds apart. The epoch is bumped by the owner whenever
// partition data changes; entries from older epochs can never be
// returned and are dropped lazily by the LRU.

#ifndef SKALLA_SERVE_CACHE_H_
#define SKALLA_SERVE_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <utility>

#include "dist/plan.h"
#include "storage/table.h"

namespace skalla {
namespace serve {

/// Order-sensitive 64-bit hash of everything that determines the plan's
/// result: base query, stage operators and flags, per-site reduction
/// filters, and key columns. Deterministic across processes (FNV over
/// the canonical wire encoding).
uint64_t PlanFingerprint(const DistributedPlan& plan);

/// Hit/miss/byte accounting, readable at any time.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  /// Serialized bytes of every resident entry (net/serde sizes — the
  /// same accounting unit the transfer counters use).
  uint64_t resident_bytes = 0;
  uint64_t entries = 0;
};

/// Thread-safe LRU over (fingerprint, epoch) -> final result table,
/// capacity-bounded by serialized result bytes. All methods lock; the
/// scheduler calls Lookup/Insert from its worker threads.
class SubAggregateCache {
 public:
  /// `max_bytes` bounds the sum of serialized entry sizes; 0 disables
  /// caching entirely (Lookup always misses, Insert is a no-op).
  explicit SubAggregateCache(uint64_t max_bytes) : max_bytes_(max_bytes) {}

  /// The cached result for this (fingerprint, epoch), or nullopt.
  /// Counts a hit or miss either way (mirrored into the
  /// skalla.serve.cache.* metrics).
  std::optional<Table> Lookup(uint64_t fingerprint, uint64_t epoch);

  /// Caches `result`. Entries larger than the whole capacity are not
  /// admitted; otherwise least-recently-used entries are evicted until
  /// the new entry fits.
  void Insert(uint64_t fingerprint, uint64_t epoch, const Table& result);

  /// Drops every entry with epoch < `epoch` immediately (the lazy LRU
  /// would get there eventually; this reclaims the bytes now).
  void EvictBefore(uint64_t epoch);

  CacheStats stats() const;

 private:
  using Key = std::pair<uint64_t, uint64_t>;  // (fingerprint, epoch)
  struct Entry {
    Table result;
    uint64_t bytes = 0;
    std::list<Key>::iterator lru_it;
  };

  void EvictLockedUntil(uint64_t needed_bytes);

  const uint64_t max_bytes_;
  mutable std::mutex mu_;
  std::map<Key, Entry> entries_;
  std::list<Key> lru_;  // front = most recent
  CacheStats stats_;
};

}  // namespace serve
}  // namespace skalla

#endif  // SKALLA_SERVE_CACHE_H_
