#include "serve/scheduler.h"

#include <algorithm>
#include <utility>

#include "common/string_util.h"
#include "obs/obs.h"
#include "obs/trace.h"

namespace skalla {
namespace serve {

QueryScheduler::QueryScheduler(Executor* executor, SchedulerOptions options)
    : executor_(executor),
      options_(options),
      cache_(options.cache_max_bytes) {
  const size_t width = std::max<size_t>(1, options_.max_concurrent_queries);
  workers_.reserve(width);
  for (size_t i = 0; i < width; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryScheduler::~QueryScheduler() {
  std::deque<std::shared_ptr<Ticket>> orphaned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    orphaned.swap(queue_);
    for (const auto& ticket : orphaned) {
      live_.erase(ticket->query_id);
    }
  }
  work_cv_.notify_all();
  for (const auto& ticket : orphaned) {
    ticket->promise.set_value(
        Status::Cancelled("scheduler shut down before the query ran"));
  }
  for (std::thread& worker : workers_) worker.join();
}

QueryScheduler::Submission QueryScheduler::Submit(DistributedPlan plan,
                                                  QueryOptions options) {
  auto ticket = std::make_shared<Ticket>();
  ticket->query_id = obs::NextQueryId();
  ticket->plan = std::move(plan);
  ticket->options = options;

  Submission submission;
  submission.query_id = ticket->query_id;
  submission.result = ticket->promise.get_future();

  bool rejected = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      rejected = true;
    } else {
      queue_.push_back(ticket);
      live_[ticket->query_id] = ticket;
    }
  }
  if (rejected) {
    ticket->promise.set_value(
        Status::Cancelled("scheduler is shut down; query not admitted"));
  } else {
    SKALLA_COUNTER_ADD("skalla.serve.submitted", 1);
    work_cv_.notify_one();
  }
  return submission;
}

bool QueryScheduler::Cancel(uint64_t query_id) {
  std::shared_ptr<Ticket> ticket;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = live_.find(query_id);
    if (it == live_.end()) return false;
    ticket = it->second;
  }
  // The worker observes the latched token: a queued ticket resolves
  // Cancelled without running, a running one stops at the next
  // morsel/round boundary via the QueryRun parent chain.
  ticket->cancel.Cancel(
      Status::Cancelled(StrCat("query ", query_id, " cancelled")));
  SKALLA_COUNTER_ADD("skalla.serve.cancelled", 1);
  return true;
}

void QueryScheduler::BumpPartitionEpoch() {
  uint64_t next;
  {
    std::lock_guard<std::mutex> lock(mu_);
    next = ++epoch_;
  }
  if (options_.partition_epoch_source) {
    next += options_.partition_epoch_source();
  }
  cache_.EvictBefore(next);
}

uint64_t QueryScheduler::partition_epoch() const {
  uint64_t external = options_.partition_epoch_source
                          ? options_.partition_epoch_source()
                          : 0;
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_ + external;
}

size_t QueryScheduler::running_queries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

size_t QueryScheduler::queued_queries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void QueryScheduler::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Ticket> ticket;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown_ with a drained queue
      ticket = queue_.front();
      queue_.pop_front();
      ++running_;
    }
    Serve(ticket);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --running_;
      live_.erase(ticket->query_id);
    }
  }
}

void QueryScheduler::Serve(const std::shared_ptr<Ticket>& ticket) {
  const double queue_wait_s = ticket->queued_at.ElapsedSeconds();
  obs::QueryIdScope query_scope(ticket->query_id);
  SKALLA_TRACE_SPAN(serve_span, "serve.query", "serve");
  SKALLA_SPAN_ATTR(serve_span, "query_id", ticket->query_id);
  SKALLA_SPAN_ATTR(serve_span, "queue_wait_us", queue_wait_s * 1e6);
  SKALLA_HISTOGRAM_RECORD("skalla.serve.queue_wait_us", queue_wait_s * 1e6);

  if (ticket->cancel.cancelled()) {
    SKALLA_SPAN_ATTR(serve_span, "outcome", "cancelled_in_queue");
    ticket->promise.set_value(ticket->cancel.Check());
    return;
  }

  // Queue wait consumes the deadline budget: the query's latency clock
  // started at Submit, not at admission.
  const uint64_t deadline_ms = ticket->options.query_deadline_ms > 0
                                   ? ticket->options.query_deadline_ms
                                   : options_.default_query_deadline_ms;
  uint64_t remaining_ms = 0;
  if (deadline_ms > 0) {
    const uint64_t waited_ms = static_cast<uint64_t>(queue_wait_s * 1e3);
    if (waited_ms >= deadline_ms) {
      SKALLA_SPAN_ATTR(serve_span, "outcome", "deadline_in_queue");
      ticket->promise.set_value(Status::DeadlineExceeded(
          StrCat("query deadline (", deadline_ms,
                 " ms) expired after ", waited_ms, " ms in the queue")));
      return;
    }
    remaining_ms = deadline_ms - waited_ms;
  }

  // Fair share: the global worker budget divided by the admission width,
  // so a full scheduler never oversubscribes intra-site evaluation. The
  // static divisor keeps per-query behavior (and results) independent of
  // what else happens to be running.
  size_t eval_threads = ticket->options.eval_threads;
  if (eval_threads == 0 && options_.global_eval_threads > 0) {
    const size_t width = std::max<size_t>(1, options_.max_concurrent_queries);
    eval_threads = std::max<size_t>(1, options_.global_eval_threads / width);
  }

  const uint64_t fingerprint = PlanFingerprint(ticket->plan);
  const uint64_t epoch = partition_epoch();

  QueryResult answer;
  answer.stats.query_id = ticket->query_id;
  if (ticket->options.use_cache) {
    std::optional<Table> hit = cache_.Lookup(fingerprint, epoch);
    if (hit.has_value()) {
      SKALLA_SPAN_ATTR(serve_span, "outcome", "cache_hit");
      answer.table = std::move(*hit);
      answer.stats.from_cache = true;
      ticket->promise.set_value(std::move(answer));
      return;
    }
  }

  QueryRun run;
  run.query_id = ticket->query_id;
  run.cancellation = &ticket->cancel;
  run.query_deadline_ms = remaining_ms;
  run.eval_threads = eval_threads;
  Result<Table> result = executor_->Execute(ticket->plan, run, &answer.stats);
  if (!result.ok()) {
    SKALLA_SPAN_ATTR(serve_span, "outcome", "error");
    ticket->promise.set_value(result.status());
    return;
  }
  SKALLA_SPAN_ATTR(serve_span, "outcome", "ok");
  answer.table = std::move(*result);
  // Only exact answers are cacheable: a degraded (partial) result must
  // not be replayed after the lost sites come back.
  if (ticket->options.use_cache && answer.stats.complete()) {
    cache_.Insert(fingerprint, epoch, answer.table);
  }
  ticket->promise.set_value(std::move(answer));
}

}  // namespace serve
}  // namespace skalla
