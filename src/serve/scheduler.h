// QueryScheduler: admits, runs, and cancels many queries concurrently
// against one executor (and therefore one pool of sites). The serving
// core of skalla-coord and QuerySession.
//
// Admission is FIFO with a fixed width: at most max_concurrent_queries
// plans execute at once; the rest wait in the queue, their deadline
// budget ticking (queue wait is part of the query's latency, so a query
// whose budget expires while queued fails with DeadlineExceeded without
// ever reaching the sites). Each admitted query gets a fair share of
// the global intra-site worker budget: eval_threads =
// max(1, global_eval_threads / width), carved into its QueryRun.
//
// Repeated queries are answered from the SubAggregateCache (cache.h)
// when the plan fingerprint and partition epoch match a resident entry:
// the promise resolves with the cached table, the stats show zero
// rounds and from_cache = true, and the sites never hear about it.
//
// Concurrency safety is the executor's contract (Executor::Execute with
// distinct QueryRuns): the in-process engines serialize per-site rounds
// on the Site round locks, the rpc engine interleaves tagged frames per
// connection. The scheduler adds no cross-query ordering beyond
// admission.

#ifndef SKALLA_SERVE_SCHEDULER_H_
#define SKALLA_SERVE_SCHEDULER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/result.h"
#include "core/cancellation.h"
#include "dist/executor.h"
#include "dist/plan.h"
#include "serve/cache.h"

namespace skalla {
namespace serve {

struct SchedulerOptions {
  /// Admission width: plans executing at once. 0 = 1.
  size_t max_concurrent_queries = 4;

  /// Global intra-site worker budget, divided fairly across the
  /// admission width (each admitted query runs with
  /// max(1, global_eval_threads / width) workers per site round).
  /// 0 = inherit the executor's own eval_threads untouched.
  size_t global_eval_threads = 0;

  /// Default per-query deadline for submissions that do not set their
  /// own, in milliseconds; 0 = unbounded. Queue wait counts against it.
  uint64_t default_query_deadline_ms = 0;

  /// SubAggregateCache capacity in serialized result bytes; 0 disables
  /// result caching.
  uint64_t cache_max_bytes = 64ull << 20;

  /// External component of the partition epoch, added to the scheduler's
  /// own counter — wire a warehouse's data_epoch here (QuerySession::
  /// Open does) so reloading a table's storage invalidates cached
  /// results without anyone calling BumpPartitionEpoch. Entries cached
  /// under an older external epoch stop being served immediately; they
  /// are physically evicted at the next BumpPartitionEpoch or by
  /// capacity pressure. Must be safe to call from any thread.
  std::function<uint64_t()> partition_epoch_source;
};

/// Per-submission knobs (the serving-layer analogue of QueryRun; zero
/// means "scheduler decides").
struct QueryOptions {
  uint64_t query_deadline_ms = 0;  // 0 = SchedulerOptions default
  size_t eval_threads = 0;         // 0 = fair share
  bool use_cache = true;           // lookup AND fill
};

/// What a served query resolves to: the final base-result structure and
/// its accounting (from_cache = true for cache hits).
struct QueryResult {
  Table table;
  ExecStats stats;
};

class QueryScheduler {
 public:
  /// `executor` is borrowed, not owned, and must outlive the scheduler.
  QueryScheduler(Executor* executor, SchedulerOptions options);

  /// Drains: queued queries are cancelled, running ones are allowed to
  /// finish, workers join.
  ~QueryScheduler();

  QueryScheduler(const QueryScheduler&) = delete;
  QueryScheduler& operator=(const QueryScheduler&) = delete;

  struct Submission {
    uint64_t query_id = 0;
    std::future<Result<QueryResult>> result;
  };

  /// Enqueues the plan; returns immediately with the assigned query id
  /// and the future the answer resolves through. Thread-safe.
  Submission Submit(DistributedPlan plan, QueryOptions options = {});

  /// Cancels the query: a queued one resolves Cancelled without running;
  /// a running one stops at the next morsel/round boundary through the
  /// QueryRun cancellation chain. Returns false when the id is unknown
  /// or already finished.
  bool Cancel(uint64_t query_id);

  /// Marks the partition data changed: subsequent lookups miss, stale
  /// cache entries are dropped.
  void BumpPartitionEpoch();
  uint64_t partition_epoch() const;

  const SubAggregateCache& cache() const { return cache_; }

  /// Queries admitted and not yet finished (excludes queued).
  size_t running_queries() const;
  /// Queries waiting for admission.
  size_t queued_queries() const;

 private:
  struct Ticket {
    uint64_t query_id = 0;
    DistributedPlan plan;
    QueryOptions options;
    std::promise<Result<QueryResult>> promise;
    CancellationToken cancel;
    Stopwatch queued_at;
  };

  void WorkerLoop();
  void Serve(const std::shared_ptr<Ticket>& ticket);

  Executor* const executor_;
  const SchedulerOptions options_;
  SubAggregateCache cache_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::shared_ptr<Ticket>> queue_;
  std::map<uint64_t, std::shared_ptr<Ticket>> live_;  // queued + running
  uint64_t epoch_ = 1;
  size_t running_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace serve
}  // namespace skalla

#endif  // SKALLA_SERVE_SCHEDULER_H_
