#include "serve/session.h"

#include "common/macros.h"
#include "rpc/tcp.h"

namespace skalla {
namespace serve {

namespace {

// Distribution-free planning: what a coordinator without partition
// statistics can do (the rpc and Wrap paths). The optimizer applies the
// distribution-independent subset of `options`.
QuerySession::Planner GenericPlanner(OptimizerOptions options,
                                     size_t num_sites) {
  return [options, num_sites](
             const GmdjExpr& expr) -> Result<DistributedPlan> {
    Egil optimizer(options, num_sites);
    return optimizer.Optimize(expr);
  };
}

}  // namespace

Result<QuerySession> QuerySession::Open(const DistributedWarehouse* warehouse,
                                        SessionOptions options) {
  if (warehouse == nullptr) {
    return Status::InvalidArgument("QuerySession::Open: null warehouse");
  }
  QuerySession session;
  session.executor_ = warehouse->MakeExecutor(options.net, options.exec);
  // Fold the warehouse's data epoch into the cache epoch: a ReloadTable
  // (or table replacement) invalidates this session's cached results
  // without any explicit InvalidateCachedResults call. The handle is a
  // shared_ptr, so the wiring survives the warehouse being moved.
  if (!options.scheduler.partition_epoch_source) {
    auto epoch = warehouse->data_epoch_handle();
    options.scheduler.partition_epoch_source = [epoch] {
      return epoch->load(std::memory_order_relaxed);
    };
  }
  session.scheduler_ = std::make_unique<QueryScheduler>(
      session.executor_.get(), options.scheduler);
  const OptimizerOptions optimize = options.optimize;
  session.planner_ = [warehouse, optimize](const GmdjExpr& expr) {
    return warehouse->Plan(expr, optimize);
  };
  return session;
}

Result<QuerySession> QuerySession::Open(
    std::vector<rpc::SiteEndpoint> endpoints, SessionOptions options) {
  if (endpoints.empty()) {
    return Status::InvalidArgument("QuerySession::Open: no endpoints");
  }
  auto transport =
      std::make_unique<rpc::TcpTransport>(std::move(endpoints));
  auto executor = std::make_unique<rpc::RpcExecutor>(std::move(transport),
                                                     options.exec);
  for (const auto& [partition, endpoint] : options.replicas) {
    executor->AddReplica(partition, endpoint);
  }
  SKALLA_RETURN_NOT_OK(executor->Connect());

  QuerySession session;
  session.rpc_ = executor.get();
  session.executor_ = std::move(executor);
  session.scheduler_ = std::make_unique<QueryScheduler>(
      session.executor_.get(), options.scheduler);
  session.planner_ =
      GenericPlanner(options.optimize, session.executor_->num_sites());
  return session;
}

QuerySession QuerySession::Wrap(std::unique_ptr<Executor> executor,
                                SessionOptions options) {
  QuerySession session;
  session.executor_ = std::move(executor);
  session.scheduler_ = std::make_unique<QueryScheduler>(
      session.executor_.get(), options.scheduler);
  session.planner_ =
      GenericPlanner(options.optimize, session.executor_->num_sites());
  return session;
}

Result<QueryScheduler::Submission> QuerySession::Submit(
    const GmdjExpr& query, QueryOptions options) {
  SKALLA_ASSIGN_OR_RETURN(DistributedPlan plan, planner_(query));
  return SubmitPlan(std::move(plan), options);
}

QueryScheduler::Submission QuerySession::SubmitPlan(DistributedPlan plan,
                                                    QueryOptions options) {
  return scheduler_->Submit(std::move(plan), options);
}

Result<DistributedPlan> QuerySession::Plan(const GmdjExpr& query) const {
  return planner_(query);
}

}  // namespace serve
}  // namespace skalla
