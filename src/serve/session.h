// QuerySession: THE public entry point for running Skalla queries. One
// session = one shared pool of sites (in-process partitions or remote
// skalla-site processes) plus the scheduler that admits, runs, caches,
// and cancels many queries against it concurrently.
//
//   // In-process, against a warehouse:
//   SKALLA_ASSIGN_OR_RETURN(auto session,
//                           serve::QuerySession::Open(&warehouse, {}));
//   auto q = session.Submit(expr);        // returns immediately
//   auto r = q->result.get();             // Result<QueryResult>
//
//   // Remote, against running skalla-site processes:
//   SKALLA_ASSIGN_OR_RETURN(auto session,
//                           serve::QuerySession::Open(endpoints, opts));
//
// Everything below the session — Executor::Execute, the engines, the
// scheduler — is library internals: tools, shells, and benches should
// submit through a session. The classic synchronous call is one line:
// Submit(...)->result.get().

#ifndef SKALLA_SERVE_SESSION_H_
#define SKALLA_SERVE_SESSION_H_

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/result.h"
#include "core/gmdj.h"
#include "dist/warehouse.h"
#include "net/network.h"
#include "opt/optimizer.h"
#include "rpc/rpc_executor.h"
#include "rpc/tcp.h"
#include "serve/scheduler.h"

namespace skalla {
namespace serve {

struct SessionOptions {
  /// Engine configuration for the session's executor. For the warehouse
  /// path these replace the warehouse's own executor options (a session
  /// is a serving configuration of its own).
  ExecutorOptions exec;

  /// Network cost model for the in-process path (ignored over rpc —
  /// the network is real there).
  NetworkConfig net;

  /// Admission width, worker budget, deadlines, cache capacity.
  SchedulerOptions scheduler;

  /// How Submit(GmdjExpr) plans. Distribution-aware reductions apply
  /// only when the planner has partition statistics (the warehouse
  /// path); over rpc the distribution-independent subset applies.
  OptimizerOptions optimize = OptimizerOptions::All();

  /// Rpc path only: replica endpoints, as (partition, endpoint) pairs —
  /// endpoint indexes the endpoint list, partition the primaries.
  std::vector<std::pair<size_t, size_t>> replicas;
};

class QuerySession {
 public:
  /// How Submit(GmdjExpr) turns a query into a plan.
  using Planner = std::function<Result<DistributedPlan>(const GmdjExpr&)>;

  /// Opens a session over a warehouse's partitions: builds one
  /// persistent star executor (sites shared by every query this session
  /// admits) and plans with the warehouse's distribution knowledge.
  /// `warehouse` is borrowed and must outlive the session.
  static Result<QuerySession> Open(const DistributedWarehouse* warehouse,
                                   SessionOptions options = {});

  /// Opens a session over running skalla-site processes: dials every
  /// endpoint now (errors surface here, not at the first query) and
  /// multiplexes all submitted queries over the shared connections.
  static Result<QuerySession> Open(std::vector<rpc::SiteEndpoint> endpoints,
                                   SessionOptions options = {});

  /// Wraps a caller-built executor (any engine: star, async, tree, rpc)
  /// in a session. Plans with generic (distribution-free) optimization.
  static QuerySession Wrap(std::unique_ptr<Executor> executor,
                           SessionOptions options = {});

  /// Plans `query` and submits the plan; returns immediately. The
  /// returned Submission's future resolves to the answer (table +
  /// ExecStats) or the query's error.
  Result<QueryScheduler::Submission> Submit(const GmdjExpr& query,
                                            QueryOptions options = {});

  /// Submits an already-built plan (bypasses the session planner).
  QueryScheduler::Submission SubmitPlan(DistributedPlan plan,
                                        QueryOptions options = {});

  /// The session planner by itself, for EXPLAIN-style callers that want
  /// the plan before (or without) running it.
  Result<DistributedPlan> Plan(const GmdjExpr& query) const;

  /// Cancels an in-flight query by the id Submit returned. Queued
  /// queries resolve Cancelled without running; running ones stop at
  /// the next morsel/round boundary. False when unknown or finished.
  bool Cancel(uint64_t query_id) { return scheduler_->Cancel(query_id); }

  /// Tells the session (and its sub-aggregate cache) that partition
  /// data changed: cached results of the old epoch are dropped.
  void InvalidateCachedResults() { scheduler_->BumpPartitionEpoch(); }

  QueryScheduler& scheduler() { return *scheduler_; }
  Executor& executor() { return *executor_; }
  size_t num_sites() const { return executor_->num_sites(); }

  /// The underlying rpc executor when this session was opened over
  /// endpoints (for site stats / site shutdown); nullptr otherwise.
  rpc::RpcExecutor* rpc_executor() { return rpc_; }

 private:
  QuerySession() = default;

  std::unique_ptr<Executor> executor_;
  std::unique_ptr<QueryScheduler> scheduler_;
  Planner planner_;
  rpc::RpcExecutor* rpc_ = nullptr;  // aliases executor_ when rpc-backed
};

}  // namespace serve
}  // namespace skalla

#endif  // SKALLA_SERVE_SESSION_H_
